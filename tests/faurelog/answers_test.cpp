// Tests for certain / possible answer classification
// (faurelog/answers.hpp), validated against brute-force world
// enumeration.
#include "faurelog/answers.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "relational/worlds.hpp"

namespace faure::fl {
namespace {

using smt::CmpOp;
using smt::Formula;

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

class AnswersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = db_.cvars().declareInt("x_", 0, 1);
    y_ = db_.cvars().declareInt("y_", 0, 1);
    auto& t = db_.create(anySchema("T", 1));
    t.insertConcrete({Value::fromInt(1)});  // certain
    t.insert({Value::fromInt(2)}, bit(x_, 1));  // possible only
    t.insert({Value::fromInt(3)},
             Formula::disj2(bit(x_, 0), bit(x_, 1)));  // certain (valid)
    t.insert({Value::fromInt(4)},
             Formula::conj2(bit(x_, 1), bit(x_, 0)));  // impossible
  }

  Formula bit(CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
  }

  rel::Database db_;
  CVarId x_ = 0, y_ = 0;
};

TEST_F(AnswersTest, PointQueries) {
  smt::NativeSolver solver(db_.cvars());
  const auto& t = db_.table("T");
  EXPECT_TRUE(isCertain(t, {Value::fromInt(1)}, solver));
  EXPECT_TRUE(isPossible(t, {Value::fromInt(1)}, solver));
  EXPECT_FALSE(isCertain(t, {Value::fromInt(2)}, solver));
  EXPECT_TRUE(isPossible(t, {Value::fromInt(2)}, solver));
  EXPECT_TRUE(isCertain(t, {Value::fromInt(3)}, solver));
  EXPECT_FALSE(isPossible(t, {Value::fromInt(4)}, solver));
  EXPECT_FALSE(isPossible(t, {Value::fromInt(99)}, solver));  // absent
}

TEST_F(AnswersTest, Classification) {
  smt::NativeSolver solver(db_.cvars());
  AnswerClasses classes = classifyAnswers(db_.table("T"), solver);
  EXPECT_EQ(classes.certain.size(), 2u);   // 1 and 3
  EXPECT_EQ(classes.possible.size(), 3u);  // 1, 2 and 3
  EXPECT_TRUE(classes.open.empty());
}

TEST_F(AnswersTest, OpenRowsReportedSeparately) {
  db_.table("T").insertConcrete({Value::cvar(y_)});
  smt::NativeSolver solver(db_.cvars());
  AnswerClasses classes = classifyAnswers(db_.table("T"), solver);
  EXPECT_EQ(classes.open.size(), 1u);
}

TEST_F(AnswersTest, AgreesWithWorldEnumeration) {
  // Derived relation: R = T joined with itself on equality; classify and
  // cross-check against per-world membership.
  auto res = evalFaure(
      dl::parseProgram("R(v) :- T(v).", db_.cvars()), db_);
  smt::NativeSolver solver(db_.cvars());
  AnswerClasses classes = classifyAnswers(res.relation("R"), solver);

  int worlds = 0;
  std::map<std::vector<Value>, int> membership;
  rel::forEachWorld(db_, 1u << 10,
                    [&](const smt::Assignment& a, const rel::World&) {
                      ++worlds;
                      for (const auto& vals :
                           rel::instantiate(res.relation("R"), a)) {
                        membership[vals]++;
                      }
                    });
  for (const auto& vals : classes.certain) {
    EXPECT_EQ(membership[vals], worlds) << "not actually certain";
  }
  for (const auto& vals : classes.possible) {
    EXPECT_GT(membership[vals], 0) << "not actually possible";
  }
  for (const auto& [vals, count] : membership) {
    bool listed = false;
    for (const auto& p : classes.possible) {
      if (p == vals) listed = true;
    }
    EXPECT_TRUE(listed) << "possible answer missing from classification";
  }
}

TEST_F(AnswersTest, DuplicateDataPartsClassifiedOnce) {
  rel::CTable t(anySchema("U", 1));
  t.append({Value::fromInt(5)}, bit(x_, 0));
  t.append({Value::fromInt(5)}, bit(x_, 1));
  smt::NativeSolver solver(db_.cvars());
  AnswerClasses classes = classifyAnswers(t, solver);
  ASSERT_EQ(classes.possible.size(), 1u);
  // The OR of the duplicate conditions is valid: certain.
  EXPECT_EQ(classes.certain.size(), 1u);
}

}  // namespace
}  // namespace faure::fl
