// Tests for the textual database format (faurelog/textio.hpp).
#include "faurelog/textio.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "util/error.hpp"

namespace faure::fl {
namespace {

using smt::CmpOp;
using smt::Formula;

TEST(TextIoTest, VariableDeclarations) {
  rel::Database db = parseDatabase(
      "var x_ int 0 1\n"
      "var p_ int\n"
      "var s_ sym { Mkt, R&D }\n"
      "var d_ prefix\n"
      "var q_ any\n");
  const auto& reg = db.cvars();
  ASSERT_EQ(reg.size(), 5u);
  EXPECT_EQ(reg.info(reg.find("x_")).domain.size(), 2u);
  EXPECT_TRUE(reg.info(reg.find("p_")).domain.empty());
  EXPECT_EQ(reg.info(reg.find("s_")).type, ValueType::Sym);
  EXPECT_EQ(reg.info(reg.find("s_")).domain[1], Value::sym("R&D"));
  EXPECT_EQ(reg.info(reg.find("d_")).type, ValueType::Prefix);
  EXPECT_EQ(reg.info(reg.find("q_")).type, ValueType::Any);
}

TEST(TextIoTest, NegativeIntRange) {
  rel::Database db = parseDatabase("var t_ int -2 2\n");
  EXPECT_EQ(db.cvars().info(0).domain.size(), 5u);
}

TEST(TextIoTest, TablesAndRows) {
  rel::Database db = parseDatabase(
      "var x_ int 0 1\n"
      "table F(flow sym, from int, to int)\n"
      "row F f0 1 2 | x_ = 1\n"
      "row F f0 4 5\n");
  const auto& f = db.table("F");
  EXPECT_EQ(f.size(), 2u);
  CVarId x = db.cvars().find("x_");
  EXPECT_EQ(f.conditionOf({Value::sym("f0"), Value::fromInt(1),
                           Value::fromInt(2)}),
            Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)));
  EXPECT_TRUE(f.conditionOf({Value::sym("f0"), Value::fromInt(4),
                             Value::fromInt(5)})
                  .isTrue());
}

TEST(TextIoTest, AllValueKindsInRows) {
  rel::Database db = parseDatabase(
      "var v_ any\n"
      "table T(a any, b any, c any, d any, e any)\n"
      "row T 1.2.3.0/24 [A B C] 'quoted sym' -7 v_\n");
  const auto& row = db.table("T").rows()[0];
  EXPECT_EQ(row.vals[0], Value::parsePrefix("1.2.3.0/24"));
  EXPECT_EQ(row.vals[1], Value::path({"A", "B", "C"}));
  EXPECT_EQ(row.vals[2], Value::sym("quoted sym"));
  EXPECT_EQ(row.vals[3], Value::fromInt(-7));
  EXPECT_TRUE(row.vals[4].isCVar());
}

TEST(TextIoTest, DisjunctiveAndParenthesizedConditions) {
  rel::Database db = parseDatabase(
      "var x_ int 0 1\n"
      "var y_ int 0 1\n"
      "table T(a int)\n"
      "row T 1 | x_ = 1 | y_ = 1\n"
      "row T 2 | (x_ = 1 | y_ = 1) & x_ + y_ < 2\n");
  CVarId x = db.cvars().find("x_");
  CVarId y = db.cvars().find("y_");
  Formula c1 = db.table("T").conditionOf({Value::fromInt(1)});
  EXPECT_EQ(c1, Formula::disj2(
                    Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)),
                    Formula::cmp(Value::cvar(y), CmpOp::Eq,
                                 Value::fromInt(1))));
  Formula c2 = db.table("T").conditionOf({Value::fromInt(2)});
  smt::NativeSolver solver(db.cvars());
  // (x=1 | y=1) & x+y<2: exactly one of the two is 1.
  EXPECT_EQ(solver.check(c2), smt::Sat::Sat);
  EXPECT_TRUE(solver.definitelyUnsat(Formula::conj(
      {c2, Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)),
       Formula::cmp(Value::cvar(y), CmpOp::Eq, Value::fromInt(1))})));
}

TEST(TextIoTest, LowercaseIdentifiersAreSymbols) {
  // Unlike programs, the row format has no program variables.
  rel::Database db = parseDatabase(
      "table T(a any)\n"
      "row T hello\n");
  EXPECT_EQ(db.table("T").rows()[0].vals[0], Value::sym("hello"));
}

TEST(TextIoTest, Errors) {
  EXPECT_THROW(parseDatabase("bogus Z\n"), ParseError);
  EXPECT_THROW(parseDatabase("var x_ float\n"), ParseError);
  EXPECT_THROW(parseDatabase("row T 1\n"), ParseError);  // undeclared table
  EXPECT_THROW(parseDatabase("table T(a int)\nrow T x_\n"),
               ParseError);  // undeclared c-var
  EXPECT_THROW(parseDatabase("var s_ sym 0 1\n"), ParseError);
  // Type mismatch between schema and value.
  EXPECT_THROW(parseDatabase("table T(a int)\nrow T Mkt\n"), TypeError);
}

TEST(TextIoTest, RoundTrip) {
  const char* text =
      "var x_ int 0 1\n"
      "var s_ sym { Mkt, R&D }\n"
      "table F(flow sym, from int, to int)\n"
      "table P(dest prefix, path path)\n"
      "row F f0 1 2 | x_ = 1\n"
      "row F f0 1 3 | x_ = 0 & s_ != Mkt\n"
      "row P 1.2.3.4 [A B C]\n";
  rel::Database db = parseDatabase(text);
  std::string formatted = formatDatabase(db);
  rel::Database db2 = parseDatabase(formatted);
  EXPECT_EQ(db.cvars().size(), db2.cvars().size());
  for (const auto& [name, table] : db.tables()) {
    ASSERT_TRUE(db2.has(name));
    ASSERT_EQ(db2.table(name).size(), table.size());
    for (const auto& row : table.rows()) {
      EXPECT_EQ(db2.table(name).conditionOf(row.vals), row.cond)
          << "row mismatch in " << name;
    }
  }
}

TEST(TextIoTest, ParsedDatabaseEvaluates) {
  rel::Database db = parseDatabase(
      "var x_ int 0 1\n"
      "table F(flow sym, from int, to int)\n"
      "row F f0 1 2 | x_ = 1\n"
      "row F f0 2 3\n");
  auto res = evalFaure(
      dl::parseProgram("R(f,a,b) :- F(f,a,b).\n"
                       "R(f,a,b) :- F(f,a,c), R(f,c,b).\n",
                       db.cvars()),
      db);
  CVarId x = db.cvars().find("x_");
  EXPECT_EQ(res.relation("R").conditionOf(
                {Value::sym("f0"), Value::fromInt(1), Value::fromInt(3)}),
            Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)));
}

}  // namespace
}  // namespace faure::fl
