// Degradation behaviour of the fauré-log evaluator under resource
// governance (EvalOptions::guard): budget exhaustion must return the
// tuples derived so far flagged incomplete — never crash, never hang —
// and an unconfigured/unlimited guard must not change results.
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "util/error.hpp"
#include "util/resource_guard.hpp"
#include "util/timer.hpp"

namespace faure::fl {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

class EvalBudgetTest : public ::testing::Test {
 protected:
  rel::Database db_;

  dl::Program parse(const char* text) {
    return dl::parseProgram(text, db_.cvars());
  }

  EvalResult eval(const char* text, const EvalOptions& opts) {
    smt::NativeSolver solver(db_.cvars());
    return evalFaure(parse(text), db_, &solver, opts);
  }

  /// A chain graph 0 -> 1 -> ... -> n: transitive closure derives
  /// n*(n+1)/2 reachability tuples, enough work to trip small budgets.
  void loadChain(int n) {
    auto& e = db_.create(anySchema("E", 2));
    for (int i = 0; i < n; ++i) {
      e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
    }
  }

  static constexpr const char* kClosure =
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n";
};

TEST_F(EvalBudgetTest, TupleBudgetReturnsPartialResultFlaggedIncomplete) {
  loadChain(12);  // full closure: 78 tuples
  ResourceLimits limits;
  limits.maxTuples = 20;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  EvalResult res = eval(kClosure, opts);
  EXPECT_TRUE(res.incomplete);
  EXPECT_EQ(res.tripped, Budget::Tuples);
  EXPECT_EQ(res.degradeReason, "tuples(limit=20)");
  EXPECT_EQ(res.stats.budgetTrips, 1u);
  // Degrade, not die: the tuples derived before the trip are returned,
  // and each is genuinely derivable (spot-check the base edges).
  const auto& r = res.relation("R");
  EXPECT_GT(r.size(), 0u);
  EXPECT_LT(r.size(), 78u);
  EXPECT_TRUE(
      r.conditionOf({Value::fromInt(0), Value::fromInt(1)}).isTrue());
}

TEST_F(EvalBudgetTest, StepBudgetTripsOnJoinWork) {
  loadChain(12);
  ResourceLimits limits;
  limits.maxSteps = 10;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  opts.threads = 1;  // exact charge totals are a serial-schedule property
  EvalResult res = eval(kClosure, opts);
  EXPECT_TRUE(res.incomplete);
  EXPECT_EQ(res.tripped, Budget::Steps);
  EXPECT_EQ(guard.counters().steps, 11u);  // trip charge included
}

TEST_F(EvalBudgetTest, DeadlineReturnsPromptlyInsteadOfRunningToFixpoint) {
  loadChain(64);  // enough closure work to outlast a ~0 deadline
  ResourceLimits limits;
  limits.deadlineSeconds = 1e-4;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  util::Stopwatch watch;
  EvalResult res = eval(kClosure, opts);
  EXPECT_LT(watch.elapsed(), 2.0);
  EXPECT_TRUE(res.incomplete);
  EXPECT_EQ(res.tripped, Budget::Deadline);
}

TEST_F(EvalBudgetTest, CancellationStopsTheFixpoint) {
  loadChain(12);
  ResourceLimits limits;
  limits.maxSteps = 1u << 30;  // active guard, no budget will trip
  ResourceGuard guard(limits);
  guard.cancel();
  EvalOptions opts;
  opts.guard = &guard;
  EvalResult res = eval(kClosure, opts);
  EXPECT_TRUE(res.incomplete);
  EXPECT_EQ(res.tripped, Budget::Cancelled);
  EXPECT_EQ(res.degradeReason, "cancelled");
}

TEST_F(EvalBudgetTest, UnlimitedGuardMatchesUngovernedEvaluation) {
  loadChain(8);
  EvalResult plain = evalFaure(parse(kClosure), db_);

  ResourceLimits limits;
  limits.maxTuples = 1u << 30;
  limits.maxSteps = 1u << 30;
  limits.deadlineSeconds = 3600.0;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  smt::NativeSolver solver(db_.cvars());
  EvalResult governed = evalFaure(parse(kClosure), db_, &solver, opts);

  EXPECT_FALSE(plain.incomplete);
  EXPECT_FALSE(governed.incomplete);
  ASSERT_EQ(governed.relation("R").size(), plain.relation("R").size());
  for (const auto& row : plain.relation("R").rows()) {
    EXPECT_TRUE(governed.relation("R").conditionOf(row.vals).isTrue());
  }
}

TEST_F(EvalBudgetTest, ThrowOnBudgetRaisesBudgetExceeded) {
  loadChain(12);
  ResourceLimits limits;
  limits.maxTuples = 5;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  opts.throwOnBudget = true;
  try {
    eval(kClosure, opts);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.budget(), "tuples");
    EXPECT_EQ(e.reason(), "tuples(limit=5)");
  }
}

TEST_F(EvalBudgetTest, FaultInjectionProducesDeterministicPartialResults) {
  loadChain(12);
  auto runWithFault = [&](uint64_t n) {
    ResourceGuard guard;
    guard.failAfter(n);
    EvalOptions opts;
    opts.guard = &guard;
    opts.threads = 1;  // the fault clock counts serial-schedule charges
    return eval(kClosure, opts);
  };
  EvalResult a = runWithFault(40);
  EvalResult b = runWithFault(40);
  EXPECT_TRUE(a.incomplete);
  EXPECT_EQ(a.tripped, Budget::Fault);
  EXPECT_EQ(a.relation("R").size(), b.relation("R").size());
  // A later fault admits at least as much work.
  EvalResult c = runWithFault(400);
  EXPECT_GE(c.relation("R").size(), a.relation("R").size());
}

TEST_F(EvalBudgetTest, SolverBudgetTripSurfacesThroughEvaluation) {
  // The evaluator shares its guard with the solver (ResourceGuardScope):
  // when the solver-check budget trips mid-evaluation, pruning degrades
  // to "keep" and the eval-side charges report the trip.
  loadChain(12);
  db_.cvars().declareInt("x_", 0, 1);
  ResourceLimits limits;
  limits.maxSolverChecks = 3;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  smt::NativeSolver solver(db_.cvars());
  EvalResult res =
      evalFaure(parse("R(x,y) :- E(x,y), x_ = 0.\n"
                      "R(x,y) :- E(x,z), R(z,y), x_ = 0.\n"),
                db_, &solver, opts);
  EXPECT_TRUE(res.incomplete);
  EXPECT_EQ(res.tripped, Budget::SolverChecks);
  EXPECT_GE(solver.stats().budgetTrips, 1u);
}

}  // namespace
}  // namespace faure::fl
