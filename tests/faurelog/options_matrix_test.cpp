// The loss-less property must hold under EVERY evaluator configuration:
// (semi-naive × solver pruning × merge subsumption × consolidation) are
// performance knobs, never semantics knobs. This sweeps the full option
// matrix over a fixed conditional workload and cross-checks both the
// per-world expansion and pairwise agreement between configurations.
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "datalog/pure_eval.hpp"
#include "faurelog/eval.hpp"
#include "relational/worlds.hpp"

namespace faure::fl {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

/// Fixed workload: a conditional diamond with a cycle and a negation
/// consumer — exercises recursion, merging, pruning, and stratification.
rel::Database buildWorkload() {
  rel::Database db;
  CVarId a = db.cvars().declareInt("a_", 0, 1);
  CVarId b = db.cvars().declareInt("b_", 0, 1);
  CVarId c = db.cvars().declareInt("c_", 0, 1);
  auto bit = [](CVarId v, int64_t k) {
    return smt::Formula::cmp(Value::cvar(v), smt::CmpOp::Eq,
                             Value::fromInt(k));
  };
  auto& e = db.create(anySchema("E", 2));
  e.insert({Value::fromInt(1), Value::fromInt(2)}, bit(a, 1));
  e.insert({Value::fromInt(1), Value::fromInt(3)}, bit(a, 0));
  e.insert({Value::fromInt(2), Value::fromInt(4)}, bit(b, 1));
  e.insert({Value::fromInt(3), Value::fromInt(4)}, bit(b, 0));
  e.insert({Value::fromInt(4), Value::fromInt(1)}, bit(c, 1));  // cycle
  e.insertConcrete({Value::fromInt(4), Value::fromInt(5)});
  auto& t = db.create(anySchema("T", 1));
  for (int i = 1; i <= 5; ++i) t.insertConcrete({Value::fromInt(i)});
  return db;
}

const char* kProgram =
    "R(x,y) :- E(x,y).\n"
    "R(x,y) :- E(x,z), R(z,y).\n"
    "Iso(x) :- T(x), !R(1,x).\n";

struct MatrixCase {
  bool semiNaive;
  bool prune;
  bool subsume;
  bool consolidate;
};

class OptionsMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(OptionsMatrix, LossLessUnderEveryConfiguration) {
  const MatrixCase& mc = GetParam();
  rel::Database db = buildWorkload();
  CVarRegistry progReg;
  dl::Program prog = dl::parseProgram(kProgram, progReg);

  smt::NativeSolver solver(db.cvars());
  EvalOptions opts;
  opts.semiNaive = mc.semiNaive;
  opts.pruneWithSolver = mc.prune;
  opts.mergeSubsumption = mc.subsume && mc.prune;  // subsume needs solver
  opts.consolidate = mc.consolidate;
  auto res = evalFaure(prog, db, &solver, opts);

  bool ran = rel::forEachWorld(
      db, 1u << 10,
      [&](const smt::Assignment& a, const rel::World& world) {
        rel::Database ground;
        for (const auto& [name, rows] : world) {
          auto& table =
              ground.create(anySchema(name, rows.empty()
                                                ? (name == "T" ? 1 : 2)
                                                : rows.begin()->size()));
          for (const auto& row : rows) table.insertConcrete(row);
        }
        auto pure = dl::evalPure(prog, ground);
        for (const auto& pred : prog.idbPredicates()) {
          rel::GroundRelation got = rel::instantiate(res.relation(pred), a);
          rel::GroundRelation want;
          for (const auto& row : pure.relation(pred).rows()) {
            want.insert(row.vals);
          }
          ASSERT_EQ(got, want) << pred << " disagrees under config "
                               << mc.semiNaive << mc.prune << mc.subsume
                               << mc.consolidate;
        }
      });
  ASSERT_TRUE(ran);
}

std::vector<MatrixCase> allConfigs() {
  std::vector<MatrixCase> out;
  for (int m = 0; m < 16; ++m) {
    out.push_back(MatrixCase{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0,
                             (m & 8) != 0});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, OptionsMatrix, ::testing::ValuesIn(allConfigs()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      const MatrixCase& c = info.param;
      std::string name;
      name += c.semiNaive ? "semi" : "naive";
      name += c.prune ? "_prune" : "_noprune";
      name += c.subsume ? "_sub" : "_nosub";
      name += c.consolidate ? "_cons" : "_nocons";
      return name;
    });

}  // namespace
}  // namespace faure::fl
