// The paper's central loss-less claim (§4), checked by brute force:
//
//   rep(q^F(T))  ==  { q(I) : I ∈ rep(T) }
//
// world by world — evaluating a fauré-log program on a random c-table
// database and instantiating the result must equal running pure datalog
// on every possible instance of the database.
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "datalog/pure_eval.hpp"
#include "faurelog/eval.hpp"
#include "relational/worlds.hpp"
#include "util/rng.hpp"

namespace faure::fl {
namespace {

using smt::CmpOp;
using smt::Formula;

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

/// Builds a random database over E(a,b), T(a): node ids 1..4 plus up to 3
/// bit-domain c-variables appearing both as data entries and in
/// conditions.
rel::Database randomDb(util::Rng& rng) {
  rel::Database db;
  std::vector<CVarId> bits;
  for (int i = 0; i < 3; ++i) {
    bits.push_back(
        db.cvars().declareInt("b" + std::to_string(i) + "_", 0, 1));
  }
  // Node-valued variables range over the same small constants used in the
  // data so that pattern matches genuinely overlap.
  std::vector<Value> nodes;
  for (int i = 1; i <= 4; ++i) nodes.push_back(Value::fromInt(i));
  std::vector<CVarId> nodeVars;
  for (int i = 0; i < 2; ++i) {
    nodeVars.push_back(db.cvars().declare("n" + std::to_string(i) + "_",
                                          ValueType::Int, nodes));
  }

  auto randomNodeValue = [&]() -> Value {
    if (rng.chance(0.25)) return Value::cvar(nodeVars[rng.below(2)]);
    return nodes[rng.below(nodes.size())];
  };
  auto randomCond = [&]() -> Formula {
    if (rng.chance(0.4)) return Formula::top();
    Formula a = Formula::cmp(Value::cvar(bits[rng.below(3)]), CmpOp::Eq,
                             Value::fromInt(rng.range(0, 1)));
    if (rng.chance(0.5)) return a;
    Formula b = Formula::cmp(Value::cvar(bits[rng.below(3)]), CmpOp::Eq,
                             Value::fromInt(rng.range(0, 1)));
    return rng.chance(0.5) ? Formula::conj2(a, b) : Formula::disj2(a, b);
  };

  auto& e = db.create(anySchema("E", 2));
  size_t edges = 3 + rng.below(4);
  for (size_t i = 0; i < edges; ++i) {
    e.insert({randomNodeValue(), randomNodeValue()}, randomCond());
  }
  auto& t = db.create(anySchema("T", 1));
  size_t rows = 1 + rng.below(3);
  for (size_t i = 0; i < rows; ++i) {
    t.insert({randomNodeValue()}, randomCond());
  }
  return db;
}

const char* kPrograms[] = {
    // Join.
    "Q(x,z) :- E(x,y), E(y,z).",
    // Transitive closure.
    "R(x,y) :- E(x,y).\nR(x,y) :- E(x,z), R(z,y).",
    // Negation (stratified).
    "V(x) :- E(x,y).\nIso(x) :- T(x), !V(x).",
    // Comparison on data values.
    "S(x,y) :- E(x,y), x != y.",
    // Constant pattern match.
    "P(y) :- E(1, y).",
    // Arithmetic comparison.
    "A(x,y) :- E(x,y), x + y < 5.",
    // Mixed: recursion + negation head.
    "R(x,y) :- E(x,y).\nR(x,y) :- E(x,z), R(z,y).\n"
    "Dead(x) :- T(x), !R(x,x).",
};

struct Case {
  int seed;
  int program;
};

class LossLess : public ::testing::TestWithParam<Case> {};

TEST_P(LossLess, FaureEqualsPerWorldPureDatalog) {
  util::Rng rng(static_cast<uint64_t>(GetParam().seed) * 0x2545f491u + 17);
  rel::Database db = randomDb(rng);
  CVarRegistry progReg;  // programs are c-variable-free
  dl::Program prog = dl::parseProgram(kPrograms[GetParam().program], progReg);

  auto faure = evalFaure(prog, db);

  bool ran = rel::forEachWorld(
      db, 1u << 12,
      [&](const smt::Assignment& a, const rel::World& world) {
        // Ground database for this world.
        rel::Database ground;
        for (const auto& [name, rows] : world) {
          auto& table = ground.create(
              anySchema(name, db.table(name).schema().arity()));
          for (const auto& row : rows) table.insertConcrete(row);
        }
        auto pure = dl::evalPure(prog, ground);
        for (const auto& pred : prog.idbPredicates()) {
          rel::GroundRelation got =
              rel::instantiate(faure.relation(pred), a);
          rel::GroundRelation want;
          for (const auto& row : pure.relation(pred).rows()) {
            want.insert(row.vals);
          }
          ASSERT_EQ(got, want)
              << "world disagreement on " << pred << " under program\n"
              << kPrograms[GetParam().program];
        }
      });
  ASSERT_TRUE(ran);
}

std::vector<Case> allCases() {
  std::vector<Case> cases;
  for (int seed = 0; seed < 6; ++seed) {
    for (int prog = 0; prog < 7; ++prog) cases.push_back(Case{seed, prog});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LossLess, ::testing::ValuesIn(allCases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_prog" +
                                  std::to_string(info.param.program);
                         });

}  // namespace
}  // namespace faure::fl
