// End-to-end reproduction of the paper's worked examples:
//   - Table 2 + Listing 1: q1 over PATH, q2/q3 over PATH' (c-table P^i)
//   - Figure 1 + Table 3 + Listing 2: fast-reroute reachability under
//     link failures (q4-q8)
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "relational/worlds.hpp"

namespace faure::fl {
namespace {

using smt::CmpOp;
using smt::Formula;

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

/// Table 2: the fauré database PATH' = {P^i, C}.
class Table2 : public ::testing::Test {
 protected:
  void SetUp() override {
    abc_ = Value::path({"ABC"});
    adec_ = Value::path({"ADEC"});
    abe_ = Value::path({"ABE"});
    x_ = db_.cvars().declare("x_", ValueType::Path, {abc_, adec_, abe_});
    y_ = db_.cvars().declare("y_", ValueType::Prefix,
                             {Value::parsePrefix("1.2.3.4"),
                              Value::parsePrefix("1.2.3.5"),
                              Value::parsePrefix("1.2.3.6")});
    auto& p = db_.create(anySchema("P", 2));
    p.insert({Value::parsePrefix("1.2.3.4"), Value::cvar(x_)},
             Formula::disj2(Formula::cmp(Value::cvar(x_), CmpOp::Eq, abc_),
                            Formula::cmp(Value::cvar(x_), CmpOp::Eq, adec_)));
    p.insert({Value::cvar(y_), abe_},
             Formula::cmp(Value::cvar(y_), CmpOp::Ne,
                          Value::parsePrefix("1.2.3.4")));
    p.insertConcrete({Value::parsePrefix("1.2.3.6"), adec_});

    auto& c = db_.create(anySchema("C", 2));
    c.insertConcrete({abc_, Value::fromInt(3)});
    c.insertConcrete({adec_, Value::fromInt(4)});
    c.insertConcrete({abe_, Value::fromInt(3)});
  }

  rel::Database db_;
  Value abc_, adec_, abe_;
  CVarId x_ = 0, y_ = 0;
};

TEST_F(Table2, Q2ConditionalAnswers) {
  // q2: Q2(z) :- P(1.2.3.4, y), C(y, z), via explicit equality in
  // fauré-log. Expected: {<3>[x_ = ABC], <4>[x_ = ADEC]}.
  auto res = evalFaure(
      dl::parseProgram("Q2(z) :- P(1.2.3.4, y), C(y, z).", db_.cvars()), db_);
  const auto& q2 = res.relation("Q2");
  ASSERT_EQ(q2.size(), 2u);
  smt::NativeSolver solver(db_.cvars());
  Formula c3 = q2.conditionOf({Value::fromInt(3)});
  Formula c4 = q2.conditionOf({Value::fromInt(4)});
  // Answer 3 exactly when x_ = ABC; answer 4 exactly when x_ = ADEC.
  EXPECT_TRUE(solver.equivalent(
      c3, Formula::cmp(Value::cvar(x_), CmpOp::Eq, abc_)));
  EXPECT_TRUE(solver.equivalent(
      c4, Formula::cmp(Value::cvar(x_), CmpOp::Eq, adec_)));
}

TEST_F(Table2, Q3PatternMatchingOnCVarRow) {
  // q3: P(1.2.3.5, y) matches the second tuple; q3(PATH') = {<3>}
  // (the condition y_ != 1.2.3.4 & y_ = 1.2.3.5 is satisfiable).
  auto res = evalFaure(
      dl::parseProgram("Q3(z) :- P(1.2.3.5, y), C(y, z).", db_.cvars()), db_);
  const auto& q3 = res.relation("Q3");
  ASSERT_EQ(q3.size(), 1u);
  EXPECT_EQ(q3.rows()[0].vals[0], Value::fromInt(3));
  smt::NativeSolver solver(db_.cvars());
  EXPECT_EQ(solver.check(q3.rows()[0].cond), smt::Sat::Sat);
}

TEST_F(Table2, LossLessAgainstAllWorlds) {
  // The central claim on this example: evaluating q2 on PATH' agrees,
  // world by world, with evaluating it on each possible instance.
  dl::Program q =
      dl::parseProgram("Q(z) :- P(1.2.3.4, y), C(y, z).", db_.cvars());
  auto res = evalFaure(q, db_);
  bool ran = rel::forEachWorld(
      db_, 1u << 20,
      [&](const smt::Assignment& a, const rel::World& world) {
        // Expected: run the query over the ground world by hand (joins on
        // the ground tables).
        std::set<std::vector<Value>> expect;
        for (const auto& prow : world.at("P")) {
          if (prow[0] != Value::parsePrefix("1.2.3.4")) continue;
          for (const auto& crow : world.at("C")) {
            if (crow[0] == prow[1]) expect.insert({crow[1]});
          }
        }
        rel::GroundRelation got = rel::instantiate(res.relation("Q"), a);
        EXPECT_EQ(got, expect);
      });
  EXPECT_TRUE(ran);
}

/// Figure 1 / Table 3 / Listing 2: the fast-reroute example.
///
/// Topology reconstruction (the paper shows only a fragment): nodes
/// 1..5; protected links (1,2) with bit x_, (2,3) with bit y_, (3,5)
/// with bit z_ (1 = up, 0 = failed); backups 1->3, 2->4, 3->4; link
/// (4,5) is unprotected. All forwarding is for one flow f0.
class FastReroute : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = db_.cvars().declareInt("x_", 0, 1);
    y_ = db_.cvars().declareInt("y_", 0, 1);
    z_ = db_.cvars().declareInt("z_", 0, 1);
    auto& f = db_.create(anySchema("F", 3));
    auto bit = [&](CVarId v, int64_t k) {
      return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
    };
    auto add = [&](int a, int b, Formula cond) {
      f.insert({flow(), Value::fromInt(a), Value::fromInt(b)},
               std::move(cond));
    };
    add(1, 2, bit(x_, 1));
    add(1, 3, bit(x_, 0));
    add(2, 3, bit(y_, 1));
    add(2, 4, bit(y_, 0));
    add(3, 5, bit(z_, 1));
    add(3, 4, bit(z_, 0));
    add(4, 5, Formula::top());
  }

  Value flow() { return Value::sym("f0"); }
  Formula bitEq(CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
  }

  EvalResult reach() {
    return evalFaure(
        dl::parseProgram("R(f,n1,n2) :- F(f,n1,n2).\n"
                         "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
                         db_.cvars()),
        db_);
  }

  rel::Database db_;
  CVarId x_ = 0, y_ = 0, z_ = 0;
};

TEST_F(FastReroute, Table3ReachabilityRows) {
  auto res = reach();
  const auto& r = res.relation("R");
  smt::NativeSolver solver(db_.cvars());

  // Row (1,2)[x_ = 1] — first row of the R fragment in Table 3.
  EXPECT_TRUE(solver.equivalent(
      r.conditionOf({flow(), Value::fromInt(1), Value::fromInt(2)}),
      bitEq(x_, 1)));
  // Row (2,3)[y_ = 1] — last row of the fragment.
  EXPECT_TRUE(solver.equivalent(
      r.conditionOf({flow(), Value::fromInt(2), Value::fromInt(3)}),
      bitEq(y_, 1)));

  // The four (1,5) conditions listed in Table 3 must each imply
  // reachability.
  Formula c15 =
      r.conditionOf({flow(), Value::fromInt(1), Value::fromInt(5)});
  auto implies15 = [&](std::vector<Formula> parts) {
    EXPECT_TRUE(solver.implies(Formula::conj(std::move(parts)), c15));
  };
  implies15({bitEq(x_, 1), bitEq(y_, 1), bitEq(z_, 1)});
  implies15({bitEq(x_, 0), bitEq(z_, 1)});
  implies15({bitEq(x_, 0), bitEq(z_, 0)});
  implies15({bitEq(x_, 1), bitEq(y_, 0)});
  // In this reconstruction node 5 is reachable from 1 under every
  // failure combination (the fifth case x_=1, y_=1, z_=0 routes
  // 1->2->3->4->5); Table 3 shows only a fragment.
  EXPECT_TRUE(solver.equivalent(c15, Formula::top()));
}

TEST_F(FastReroute, LossLessReachability) {
  // Per-world differential check of q4/q5 against ground reachability.
  auto res = reach();
  bool ran = rel::forEachWorld(
      db_, 1u << 10,
      [&](const smt::Assignment& a, const rel::World& world) {
        // Ground transitive closure of the instantiated F.
        std::set<std::pair<int64_t, int64_t>> edges;
        for (const auto& row : world.at("F")) {
          edges.emplace(row[1].asInt(), row[2].asInt());
        }
        std::set<std::pair<int64_t, int64_t>> closure = edges;
        bool grew = true;
        while (grew) {
          grew = false;
          for (const auto& [u, v] : edges) {
            for (const auto& [v2, w] : closure) {
              if (v == v2 && closure.emplace(u, w).second) grew = true;
            }
          }
        }
        rel::GroundRelation got = rel::instantiate(res.relation("R"), a);
        std::set<std::pair<int64_t, int64_t>> gotPairs;
        for (const auto& row : got) {
          gotPairs.emplace(row[1].asInt(), row[2].asInt());
        }
        EXPECT_EQ(gotPairs, closure);
      });
  EXPECT_TRUE(ran);
}

TEST_F(FastReroute, Q6TwoLinkFailurePattern) {
  // q6: T1 = R under x_ + y_ + z_ = 1 (exactly one link up = two failed).
  auto& r = db_.put(reach().relation("R"));
  (void)r;
  auto res = evalFaure(
      dl::parseProgram(
          "T1(f,n1,n2) :- R(f,n1,n2), x_ + y_ + z_ = 1.", db_.cvars()),
      db_);
  const auto& t1 = res.relation("T1");
  smt::NativeSolver solver(db_.cvars());
  // (1,2) requires x_=1 and the pattern forces y_=z_=0.
  Formula c = t1.conditionOf({flow(), Value::fromInt(1), Value::fromInt(2)});
  EXPECT_TRUE(solver.equivalent(
      c, Formula::conj({bitEq(x_, 1), bitEq(y_, 0), bitEq(z_, 0)})));
  // (2,3) requires y_=1: consistent with the pattern.
  EXPECT_EQ(solver.check(t1.conditionOf(
                {flow(), Value::fromInt(2), Value::fromInt(3)})),
            smt::Sat::Sat);
}

TEST_F(FastReroute, Q7NestedQuery) {
  // q7: T2(f,2,5) :- T1(f,2,5), y_ = 0 — reachability between 2 and 5
  // under a 2-link failure where (2,3) is one of the failed links.
  db_.put(reach().relation("R"));
  auto res = evalFaure(
      dl::parseProgram(
          "T1(f,n1,n2) :- R(f,n1,n2), x_ + y_ + z_ = 1.\n"
          "T2(f,2,5) :- T1(f,2,5), y_ = 0.\n",
          db_.cvars()),
      db_);
  const auto& t2 = res.relation("T2");
  ASSERT_EQ(t2.size(), 1u);
  smt::NativeSolver solver(db_.cvars());
  // 2->4->5 works whenever y_=0; with the pattern: x_+z_ = 1.
  EXPECT_EQ(solver.check(t2.rows()[0].cond), smt::Sat::Sat);
  // And y_ = 1 contradicts it.
  EXPECT_TRUE(solver.definitelyUnsat(
      Formula::conj2(t2.rows()[0].cond, bitEq(y_, 1))));
}

TEST_F(FastReroute, Q8AtLeastOneFailure) {
  // q8: T3(f,1,n2) :- R(f,1,n2), y_ + z_ < 2.
  db_.put(reach().relation("R"));
  auto res = evalFaure(
      dl::parseProgram("T3(f,1,n2) :- R(f,1,n2), y_ + z_ < 2.", db_.cvars()),
      db_);
  const auto& t3 = res.relation("T3");
  // From 1 every node 2..5 appears under some condition.
  smt::NativeSolver solver(db_.cvars());
  int reachable = 0;
  for (int n = 2; n <= 5; ++n) {
    Formula c = t3.conditionOf({flow(), Value::fromInt(1), Value::fromInt(n)});
    if (solver.check(c) == smt::Sat::Sat) ++reachable;
  }
  EXPECT_EQ(reachable, 4);
  // T3 must not contain anything satisfiable with y_ = z_ = 1.
  for (const auto& row : t3.rows()) {
    EXPECT_TRUE(solver.definitelyUnsat(
        Formula::conj({row.cond, bitEq(y_, 1), bitEq(z_, 1)})));
  }
}

}  // namespace
}  // namespace faure::fl
