// Chaos contract of supervised evaluation (DESIGN.md §9): with
// EvalOptions::supervision enabled, results must be bit-identical to an
// unsupervised run when no faults fire; with a seeded FaultPlan and a
// native fallback, injected faults must change *no* result bits either
// (the default plan only ever faults the primary, which fails over) —
// at any thread count, with the verdict cache on or off, for the same
// seed every time.
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "smt/verdict_cache.hpp"
#include "util/fault_plan.hpp"

namespace faure::fl {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

constexpr const char* kClosure =
    "R(x,y) :- E(x,y).\n"
    "R(x,y) :- E(x,z), R(z,y).\n"
    "Far(x,y) :- R(x,y), x < y, y > 8.\n"
    "Stuck(x,y) :- E(x,y), !Far(x,y).\n";

class ChaosEvalTest : public ::testing::Test {
 protected:
  rel::Database db_;

  void SetUp() override {
    // A chain graph with a c-variable condition on every third edge, so
    // closure derives condition-bearing tuples and the solver step has
    // real work to fault.
    CVarId x = db_.cvars().declareInt("x_", 0, 1);
    auto& e = db_.create(anySchema("E", 2));
    for (int i = 0; i < 18; ++i) {
      if (i % 3 == 0) {
        e.insert({Value::fromInt(i), Value::fromInt(i + 1)},
                 smt::Formula::cmp(Value::cvar(x), smt::CmpOp::Eq,
                                   Value::fromInt(i % 2)));
      } else {
        e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
      }
    }
  }

  struct Run {
    EvalResult res;
    smt::SolverStats solver;
  };

  Run eval(EvalOptions opts, unsigned threads, bool cache) {
    // When supervision is requested, wrap here (rather than letting
    // evalFaure wrap internally) so the outer solver's logical stats
    // stream stays observable after the run — and so the evaluator's
    // "already supervised, don't double-wrap" guard is exercised.
    smt::NativeSolver inner(db_.cvars());
    std::unique_ptr<smt::SupervisedSolver> sup;
    smt::SolverBase* solver = &inner;
    if (opts.supervision && opts.supervision->enabled) {
      sup = std::make_unique<smt::SupervisedSolver>(db_.cvars(),
                                                    *opts.supervision);
      sup->addBackend("primary", &inner);
      if (opts.supervision->failover) sup->addNativeFallback();
      solver = sup.get();
    }
    std::unique_ptr<smt::VerdictCache> vc;
    if (cache) {
      vc = std::make_unique<smt::VerdictCache>(db_.cvars(), 4096);
      solver->setVerdictCache(vc.get());
    }
    opts.threads = threads;
    Run r;
    r.res = evalFaure(dl::parseProgram(kClosure, db_.cvars()), db_, solver,
                      opts);
    r.solver = solver->stats();
    return r;
  }

  static void expectIdentical(const Run& a, const Run& b,
                              const std::string& label) {
    SCOPED_TRACE(label);
    ASSERT_EQ(a.res.idb.size(), b.res.idb.size());
    for (const auto& [name, table] : a.res.idb) {
      auto it = b.res.idb.find(name);
      ASSERT_NE(it, b.res.idb.end()) << "missing relation " << name;
      const auto& rows = table.rows();
      const auto& other = it->second.rows();
      ASSERT_EQ(rows.size(), other.size()) << "size of " << name;
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].vals, other[i].vals) << name << " row " << i;
        EXPECT_EQ(rows[i].cond, other[i].cond) << name << " row " << i;
      }
    }
    EXPECT_EQ(a.res.stats.derivations, b.res.stats.derivations);
    EXPECT_EQ(a.res.stats.inserted, b.res.stats.inserted);
    EXPECT_EQ(a.res.stats.prunedUnsat, b.res.stats.prunedUnsat);
    EXPECT_EQ(a.res.stats.subsumed, b.res.stats.subsumed);
    EXPECT_EQ(a.res.stats.iterations, b.res.stats.iterations);
    EXPECT_EQ(a.res.incomplete, b.res.incomplete);
  }

  static smt::SupervisionOptions chaosOptions(uint64_t seed) {
    smt::SupervisionOptions sup;
    sup.enabled = true;
    sup.failover = true;
    sup.seed = seed;
    sup.chaos = util::FaultPlan::defaultChaos(seed);
    return sup;
  }
};

TEST_F(ChaosEvalTest, SupervisionWithZeroFaultsIsBitIdentical) {
  Run plain = eval({}, 1, /*cache=*/true);
  EvalOptions supervised;
  smt::SupervisionOptions sup;
  sup.enabled = true;
  sup.maxRetries = 3;
  sup.failover = true;
  supervised.supervision = sup;
  for (unsigned threads : {1u, 4u}) {
    Run run = eval(supervised, threads, /*cache=*/true);
    expectIdentical(plain, run,
                    "zero-fault threads=" + std::to_string(threads));
    // Including the logical solver stream — supervision must not add,
    // drop, or re-order a single check.
    EXPECT_EQ(run.solver.checks, plain.solver.checks);
    EXPECT_EQ(run.solver.unsat, plain.solver.unsat);
    EXPECT_EQ(run.solver.unknown, plain.solver.unknown);
    EXPECT_EQ(run.solver.enumerations, plain.solver.enumerations);
  }
}

TEST_F(ChaosEvalTest, SeededChaosWithFailoverChangesNoResultBits) {
  Run plain = eval({}, 1, /*cache=*/true);
  for (uint64_t seed : {1ull, 20260807ull, 64206ull}) {
    EvalOptions chaotic;
    chaotic.supervision = chaosOptions(seed);
    for (unsigned threads : {1u, 2u, 8u}) {
      for (bool cache : {true, false}) {
        Run run = eval(chaotic, threads, cache);
        expectIdentical(plain, run,
                        "seed=" + std::to_string(seed) +
                            " threads=" + std::to_string(threads) +
                            " cache=" + (cache ? "on" : "off"));
      }
    }
  }
}

TEST_F(ChaosEvalTest, PermanentPrimaryCrashCompletesViaFailover) {
  // Every attempt against the primary dies; the native fallback carries
  // the whole run and the results still match a healthy evaluation.
  util::FaultSpec spec;
  spec.crash = 1.0;
  spec.clearsOnRetry = false;
  auto plan = std::make_shared<util::FaultPlan>(13);
  plan->configure(std::string(util::FaultPlan::kPrimaryTag), spec);

  Run plain = eval({}, 1, /*cache=*/true);
  EvalOptions dying;
  smt::SupervisionOptions sup;
  sup.enabled = true;
  sup.maxRetries = 1;
  sup.failover = true;
  sup.chaos = plan;
  dying.supervision = sup;
  for (unsigned threads : {1u, 4u}) {
    Run run = eval(dying, threads, /*cache=*/true);
    expectIdentical(plain, run,
                    "dead-primary threads=" + std::to_string(threads));
    EXPECT_FALSE(run.res.incomplete);
  }
}

TEST_F(ChaosEvalTest, SameSeedReplaysTheSameDegradedRun) {
  // Chain of one (no fallback): injected faults that exhaust retries
  // degrade checks to Unknown. Degraded or not, a fixed seed must give
  // byte-identical results at every thread count.
  util::FaultSpec spec;
  spec.spuriousUnknown = 0.25;
  spec.clearsOnRetry = false;  // retries cannot clear it: some degrade
  auto plan = std::make_shared<util::FaultPlan>(7);
  plan->configure(std::string(util::FaultPlan::kPrimaryTag), spec);

  EvalOptions degraded;
  smt::SupervisionOptions sup;
  sup.enabled = true;
  sup.maxRetries = 1;
  sup.chaos = plan;
  degraded.supervision = sup;

  Run first = eval(degraded, 1, /*cache=*/true);
  for (unsigned threads : {1u, 2u, 8u}) {
    Run replay = eval(degraded, threads, /*cache=*/true);
    expectIdentical(first, replay,
                    "replay threads=" + std::to_string(threads));
  }
  // And the degradation is real: spurious Unknowns leave tuples that a
  // healthy run would have pruned.
  Run plain = eval({}, 1, /*cache=*/true);
  EXPECT_GE(first.res.stats.inserted, plain.res.stats.inserted);
}

}  // namespace
}  // namespace faure::fl
