// Cost-based join planning (faurelog/plan.hpp, DESIGN.md §11): unit
// tests for the rule-shape analysis and the greedy planner, and the
// byte-identity contract end to end — for any plan mode, thread count
// and workload shape (reordered literals, wild c-variable rows, chunked
// parallel rounds, recursive delta pinning) the evaluator must produce
// results bit-identical to the pristine program-order path, including
// the logical counters. Also pins the satellite contract that a
// persistent index is built once per (relation, key-set, epoch), never
// once per chunk.
#include "faurelog/plan.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "datalog/analysis.hpp"
#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "faurelog/incremental.hpp"
#include "faurelog/textio.hpp"
#include "obs/trace.hpp"

namespace faure::fl {
namespace {

RuleShape analyzeFirstRule(const dl::Program& program) {
  const dl::Rule& rule = program.rules.at(0);
  std::vector<std::string> vars = dl::ruleVariables(rule);
  std::unordered_map<std::string, size_t> slotOf;
  for (size_t i = 0; i < vars.size(); ++i) slotOf[vars[i]] = i;
  return RuleShape::analyze(rule, slotOf);
}

class PlanShapeTest : public ::testing::Test {
 protected:
  rel::Database db_;

  RuleShape shape(const char* text) {
    return analyzeFirstRule(dl::parseProgram(text, db_.cvars()));
  }
};

TEST_F(PlanShapeTest, MirrorsSerialBoundProgression) {
  RuleShape s = shape("T(x,z) :- A(x,y), B(y,z), C(z).\n");
  ASSERT_EQ(s.lits.size(), 3u);
  // A(x,y): both args bind; nothing is hashable yet.
  EXPECT_EQ(s.lits[0].args[0].kind, RuleShape::Arg::Kind::FreeVar);
  EXPECT_EQ(s.lits[0].args[1].kind, RuleShape::Arg::Kind::FreeVar);
  EXPECT_TRUE(s.lits[0].serialKeyArgs.empty());
  // B(y,z): y was bound by A -> the serial evaluator hashes on arg 0.
  EXPECT_EQ(s.lits[1].args[0].kind, RuleShape::Arg::Kind::BoundVar);
  EXPECT_TRUE(s.lits[1].args[0].boundBefore);
  EXPECT_EQ(s.lits[1].serialKeyArgs, (std::vector<size_t>{0}));
  // C(z): z was bound by B.
  EXPECT_EQ(s.lits[2].serialKeyArgs, (std::vector<size_t>{0}));
  // y's binder is A's second argument; it occurs in A and B.
  size_t ySlot = s.lits[0].args[1].slot;
  EXPECT_EQ(s.binders[ySlot].lit, 0u);
  EXPECT_EQ(s.binders[ySlot].arg, 1u);
  EXPECT_EQ(s.occurrences[ySlot].size(), 2u);
}

TEST_F(PlanShapeTest, SameLiteralRepeatIsBoundButNotHashable) {
  // A(x,x): the second x is bound *by this row*, so the serial
  // evaluator cannot hash on it (boundBefore == false).
  RuleShape s = shape("S(x) :- A(x,x).\n");
  ASSERT_EQ(s.lits.size(), 1u);
  EXPECT_EQ(s.lits[0].args[1].kind, RuleShape::Arg::Kind::BoundVar);
  EXPECT_FALSE(s.lits[0].args[1].boundBefore);
  EXPECT_TRUE(s.lits[0].serialKeyArgs.empty());
}

TEST_F(PlanShapeTest, ConstantsAreFixedKeysAndNegationIsSkipped) {
  RuleShape s = shape("P(x) :- A(7, x), !B(x).\n");
  ASSERT_EQ(s.lits.size(), 1u);  // only positive literals
  EXPECT_EQ(s.lits[0].args[0].kind, RuleShape::Arg::Kind::Fixed);
  EXPECT_EQ(s.lits[0].args[0].value, Value::fromInt(7));
  EXPECT_EQ(s.lits[0].serialKeyArgs, (std::vector<size_t>{0}));
}

class PlanRuleTest : public PlanShapeTest {};

TEST_F(PlanRuleTest, DeltaLiteralIsPinnedFirst) {
  RuleShape s = shape("T(x,z) :- A(x,y), B(y,z), C(z).\n");
  std::vector<LitStats> stats = {{nullptr, 100}, {nullptr, 100},
                                 {nullptr, 2}};
  RulePlan plan = planRule(s, /*deltaLit=*/1, stats);
  ASSERT_EQ(plan.order.size(), 3u);
  EXPECT_EQ(plan.order[0].lit, 1u);
  EXPECT_TRUE(plan.reordered);
}

TEST_F(PlanRuleTest, GreedyPlacesSelectiveLiteralFirst) {
  RuleShape s = shape("T(x,z) :- A(x,y), B(y,z), C(z).\n");
  std::vector<LitStats> stats = {{nullptr, 100}, {nullptr, 100},
                                 {nullptr, 2}};
  RulePlan plan = planRule(s, SIZE_MAX, stats);
  EXPECT_EQ(plan.order[0].lit, 2u);
  EXPECT_TRUE(plan.reordered);
}

TEST_F(PlanRuleTest, TiesKeepProgramOrderUnreordered) {
  RuleShape s = shape("T(x,z) :- A(x,y), B(y,z), C(z).\n");
  std::vector<LitStats> stats = {{nullptr, 10}, {nullptr, 10},
                                 {nullptr, 10}};
  RulePlan plan = planRule(s, SIZE_MAX, stats);
  EXPECT_FALSE(plan.reordered);
  for (size_t i = 0; i < plan.order.size(); ++i) {
    EXPECT_EQ(plan.order[i].lit, i);
  }
}

TEST_F(PlanRuleTest, NonBinderOccurrencesAreNeverJoinedToEachOther) {
  // y binds in A; B and C carry later occurrences. When B and C are
  // both placed before A, C must NOT probe on B's y value — serial
  // evaluation links each occurrence to the *binder*, not pairwise, so
  // keying C on B could drop combinations serial keeps.
  RuleShape s = shape("T(x) :- A(x,y), B(p,y), C(q,y).\n");
  std::vector<LitStats> stats = {{nullptr, 50}, {nullptr, 1}, {nullptr, 2}};
  RulePlan plan = planRule(s, SIZE_MAX, stats);
  ASSERT_EQ(plan.order.size(), 3u);
  EXPECT_EQ(plan.order[0].lit, 1u);  // B: cheapest scan
  EXPECT_EQ(plan.order[1].lit, 2u);  // C: y from B is NOT probe-able
  EXPECT_TRUE(plan.order[1].probes.empty());
  // A (the binder) may probe: equality is symmetric, any placed
  // occurrence feeds the binder column — the first in visit order (B).
  EXPECT_EQ(plan.order[2].lit, 0u);
  ASSERT_EQ(plan.order[2].probes.size(), 1u);
  EXPECT_EQ(plan.order[2].probes[0].arg, 1u);
  EXPECT_FALSE(plan.order[2].probes[0].fixed);
  EXPECT_EQ(plan.order[2].probes[0].srcLit, 1u);
}

TEST(PlanModeTest, ResolutionPrefersExplicitThenEnv) {
  EXPECT_EQ(resolvePlanMode(PlanMode::Off), PlanMode::Off);
  setenv("FAURE_PLAN", "off", 1);
  EXPECT_EQ(resolvePlanMode(std::nullopt), PlanMode::Off);
  EXPECT_EQ(resolvePlanMode(PlanMode::On), PlanMode::On);  // flag wins
  setenv("FAURE_PLAN", "0", 1);
  EXPECT_EQ(resolvePlanMode(std::nullopt), PlanMode::Off);
  setenv("FAURE_PLAN", "explain", 1);
  EXPECT_EQ(resolvePlanMode(std::nullopt), PlanMode::Explain);
  setenv("FAURE_PLAN", "on", 1);
  EXPECT_EQ(resolvePlanMode(std::nullopt), PlanMode::On);
  unsetenv("FAURE_PLAN");
  EXPECT_EQ(resolvePlanMode(std::nullopt), PlanMode::On);  // default
}

/// End-to-end byte identity: every workload below is evaluated with the
/// planner off (serial program order — the pristine baseline) and
/// compared bit for bit against planner-on runs at several thread
/// counts.
class PlanIdentityTest : public ::testing::Test {
 protected:
  struct EvalRun {
    EvalResult res;
    smt::SolverStats solver;
  };

  EvalRun eval(const std::string& dbText, const char* progText,
               PlanMode plan, unsigned threads) {
    rel::Database db = parseDatabase(dbText);
    dl::Program program = dl::parseProgram(progText, db.cvars());
    smt::NativeSolver solver(db.cvars());
    EvalOptions opts;
    opts.plan = plan;
    opts.threads = threads;
    EvalRun r;
    r.res = evalFaure(program, db, &solver, opts);
    r.solver = solver.stats();
    return r;
  }

  static void expectIdentical(const EvalRun& off, const EvalRun& on,
                              const std::string& label) {
    SCOPED_TRACE(label);
    const EvalResult& a = off.res;
    const EvalResult& b = on.res;
    ASSERT_EQ(a.idb.size(), b.idb.size());
    for (const auto& [name, table] : a.idb) {
      auto it = b.idb.find(name);
      ASSERT_NE(it, b.idb.end()) << "missing relation " << name;
      const auto& rows = table.rows();
      const auto& other = it->second.rows();
      ASSERT_EQ(rows.size(), other.size()) << "size of " << name;
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].vals, other[i].vals)
            << name << " row " << i << " data";
        EXPECT_EQ(rows[i].cond, other[i].cond)
            << name << " row " << i << " condition";
      }
    }
    // Logical counters: the planner must not change which candidates
    // are derived or which conditions reach the solver — only how the
    // rows were found.
    EXPECT_EQ(a.stats.derivations, b.stats.derivations);
    EXPECT_EQ(a.stats.inserted, b.stats.inserted);
    EXPECT_EQ(a.stats.prunedUnsat, b.stats.prunedUnsat);
    EXPECT_EQ(a.stats.subsumed, b.stats.subsumed);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
    EXPECT_EQ(off.solver.checks, on.solver.checks);
    EXPECT_EQ(off.solver.unsat, on.solver.unsat);
    EXPECT_EQ(off.solver.enumerations, on.solver.enumerations);
  }

  void expectPlanInvisible(const std::string& dbText, const char* progText) {
    EvalRun baseline = eval(dbText, progText, PlanMode::Off, 1);
    for (unsigned threads : {1u, 2u, 8u}) {
      EvalRun planned = eval(dbText, progText, PlanMode::On, threads);
      expectIdentical(baseline, planned,
                      "plan=on threads=" + std::to_string(threads));
      EvalRun unplanned = eval(dbText, progText, PlanMode::Off, threads);
      expectIdentical(baseline, unplanned,
                      "plan=off threads=" + std::to_string(threads));
    }
  }
};

TEST_F(PlanIdentityTest, SelectiveLastLiteralReordersInvisibly) {
  // Program order A x B is the wrong order; the 2-row C should drive.
  std::string db =
      "table A(x int, y int)\n"
      "table B(y int, z int)\n"
      "table C(z int)\n";
  for (int i = 0; i < 40; ++i) {
    db += "row A " + std::to_string(i) + " " + std::to_string(i % 4) + "\n";
    db += "row B " + std::to_string(i % 4) + " " + std::to_string(i) + "\n";
  }
  db += "row C 0\nrow C 20\n";
  expectPlanInvisible(db, "T(x,z) :- A(x,y), B(y,z), C(z).\n");
}

TEST_F(PlanIdentityTest, WildRowsAndConditionsSurviveReordering) {
  std::string db =
      "var u_ int 0 3\n"
      "var w_ int 0 1\n"
      "table A(x int, y int)\n"
      "table B(y int, z int)\n"
      "table C(z int)\n";
  for (int i = 0; i < 24; ++i) {
    db += "row A " + std::to_string(i) + " " + std::to_string(i % 4) + "\n";
    db += "row B " + std::to_string(i % 4) + " " + std::to_string(i) + "\n";
  }
  // Wild rows (c-variable key columns) and conditional rows: index
  // probes must still visit them in serial row order.
  db += "row A 100 u_\n";
  db += "row A 101 2 | w_ = 1\n";
  db += "row B u_ 7\n";
  db += "row C 4\nrow C 7\n";
  expectPlanInvisible(db, "T(x,z) :- A(x,y), B(y,z), C(z).\n");
}

TEST_F(PlanIdentityTest, NonBinderOccurrencesAreNotOverPruned) {
  // The over-pruning trap: A's wild row binds y := u_; B carries y=2
  // and C carries y=3. Serial derives the candidate with condition
  // u_ = 2 AND u_ = 3 and lets the *solver* prune it. A planner that
  // joined B's and C's y occurrences directly would never enumerate
  // the combination — visible as a derivations/solver-checks drift.
  std::string db =
      "var u_ int 0 9\n"
      "table A(x int, y int)\n"
      "table B(p int, y int)\n"
      "table C(q int, y int)\n"
      "row A 1 u_\n"
      "row A 2 5\n"
      "row A 3 2\n"
      "row B 7 2\n"
      "row C 8 3\n"
      "row C 9 2\n";
  expectPlanInvisible(db, "T(x) :- A(x,y), B(p,y), C(q,y).\n");
}

TEST_F(PlanIdentityTest, RecursiveClosureKeepsDeltaSemantics) {
  // Chain closure: the semi-naive delta literal is pinned first by the
  // planner, and the final fixpoint round runs with an empty delta.
  std::string db =
      "var x_ int 0 1\n"
      "table E(a int, b int)\n";
  for (int i = 0; i < 24; ++i) {
    db += "row E " + std::to_string(i) + " " + std::to_string(i + 1);
    if (i % 3 == 0) db += " | x_ = " + std::to_string(i % 2);
    db += "\n";
  }
  expectPlanInvisible(db,
                      "R(x,y) :- E(x,y).\n"
                      "R(x,y) :- E(x,z), R(z,y).\n");
}

TEST_F(PlanIdentityTest, ChunkedParallelRoundsStayCanonical) {
  // 1100 rows in the first literal crosses the partition threshold, so
  // threads=8 splits the delta range into chunks whose planned results
  // must concatenate back into the serial order; the first round's
  // delta is the full range.
  std::string db =
      "table E(x int, y int)\n"
      "table E2(y int, z int)\n";
  for (int i = 0; i < 1100; ++i) {
    db += "row E " + std::to_string(i) + " " + std::to_string(i % 8) + "\n";
  }
  db += "row E2 3 0\nrow E2 5 1\n";
  expectPlanInvisible(db, "T(x,z) :- E(x,y), E2(y,z).\n");
}

TEST_F(PlanIdentityTest, ExplainModeMatchesAndDumpsPlans) {
  std::string db =
      "table A(x int, y int)\n"
      "table B(y int, z int)\n"
      "row A 1 2\nrow A 3 4\n"
      "row B 2 5\nrow B 4 6\n";
  const char* prog = "T(x,z) :- A(x,y), B(y,z).\n";
  EvalRun baseline = eval(db, prog, PlanMode::Off, 1);
  testing::internal::CaptureStderr();
  EvalRun explained = eval(db, prog, PlanMode::Explain, 1);
  std::string dump = testing::internal::GetCapturedStderr();
  expectIdentical(baseline, explained, "plan=explain");
  EXPECT_NE(dump.find("plan T(x, z)"), std::string::npos) << dump;
  EXPECT_NE(dump.find("probe["), std::string::npos) << dump;
}

/// Satellite regression: one persistent index build per (relation,
/// key-set, epoch) — chunked parallel rounds share the index instead of
/// rebuilding it per chunk, and a later epoch extends rather than
/// rebuilds.
TEST_F(PlanIdentityTest, IndexBuiltOncePerRelationKeysetAndEpoch) {
  std::string dbText =
      "table E(x int, y int)\n"
      "table E2(y int, z int)\n";
  for (int i = 0; i < 1100; ++i) {
    dbText +=
        "row E " + std::to_string(i) + " " + std::to_string(i % 8) + "\n";
  }
  dbText += "row E2 3 0\nrow E2 5 1\n";
  rel::Database db = parseDatabase(dbText);
  dl::Program program =
      dl::parseProgram("T(x,z) :- E(x,y), E2(y,z).\n", db.cvars());
  smt::NativeSolver solver(db.cvars());
  obs::Tracer tracer;
  EvalOptions opts;
  opts.plan = PlanMode::On;
  opts.threads = 4;  // E crosses kPartitionMinRows -> chunked round
  opts.tracer = &tracer;
  IncrementalEngine eng(std::move(program), db, &solver, opts);
  eng.setIncremental(true);
  eng.reevaluate();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [key, value] : tracer.metrics().snapshot().counters) {
      if (key == name) return value;
    }
    return 0;
  };
  auto builds = [&] { return counter("eval.plan.index_builds"); };
  // The tiny E2 is reordered first and E probes its y column (the
  // binder keyed by E2's placed occurrence): exactly one index build,
  // no matter how many chunks probed it.
  EXPECT_EQ(builds(), 1u);
  // Second epoch: the edit grows the probed E; the retained index is
  // extended by watermark, not rebuilt.
  std::vector<Edit> edits = parseEditScript("+E(2000, 3)\n", db);
  eng.apply(edits.at(0));
  eng.reevaluate();
  EXPECT_EQ(builds(), 1u);
  EXPECT_GE(counter("eval.plan.index_extensions"), 1u);
}

}  // namespace
}  // namespace faure::fl
