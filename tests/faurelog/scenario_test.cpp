// Tests for the concurrent scenario service (faurelog/scenario.hpp):
// the fork-isolation contract (scenarios editing the same relation
// divergently never observe each other, and a budget-tripped scenario
// degrades alone), the fork-vs-fresh byte-identity contract at every
// fan-out width (including under seeded chaos), the scenarios-file
// split, and the Database::clone() snapshot the forks are built on.
#include "faurelog/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datalog/parser.hpp"
#include "faurelog/textio.hpp"
#include "util/fault_plan.hpp"

namespace faure::fl {
namespace {

// The two-team shape from data/whatif_reach.fl: recursive reachability
// units ({R}, {Deliver}) and policy units ({Open}, {Lockdown}).
constexpr const char* kDb =
    "var l_ int 0 1\n"
    "table F(flow sym, from int, to int)\n"
    "table Acl(app sym, port int)\n"
    "row F f0 1 2 | l_ = 1\n"
    "row F f0 1 4 | l_ = 0\n"
    "row F f0 4 2\n"
    "row F f0 2 3\n"
    "row Acl web 80\n"
    "row Acl legacy 8080\n";

constexpr const char* kProgram =
    "R(f,a,b) :- F(f,a,b).\n"
    "R(f,a,b) :- F(f,a,c), R(f,c,b).\n"
    "Deliver(f) :- R(f,1,3).\n"
    "Open(app,p) :- Acl(app,p), p < 1024.\n"
    "Lockdown(app) :- Acl(app,p), !Open(app,p).\n";

ScenarioSet makeSet(ScenarioSetOptions opts = {}) {
  rel::Database db = parseDatabase(kDb);
  dl::Program program = dl::parseProgram(kProgram, db.cvars());
  return ScenarioSet(std::move(program), std::move(db), std::move(opts));
}

/// The fork-vs-fresh oracle: the scenario replayed through its own
/// single-scenario set (fresh parse, fresh epoch 0, serial, no chaos).
ScenarioOutcome freshRun(const Scenario& s, int mode = -1) {
  ScenarioSetOptions opts;
  opts.eval.threads = 1;
  opts.mode = mode;
  ScenarioSet one = makeSet(std::move(opts));
  return one.evaluate({s}).front();
}

TEST(ParseScenarioFile, SplitsOnDelimiterLines) {
  std::vector<Scenario> s = parseScenarioFile(
      "+F(f0, 2, 3)\n---\n-Acl(web, 80)\n+Acl(web, 81)\n");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].id, "1");
  EXPECT_EQ(s[0].edits, "+F(f0, 2, 3)\n");
  EXPECT_EQ(s[1].id, "2");
  EXPECT_EQ(s[1].edits, "-Acl(web, 80)\n+Acl(web, 81)\n\n");
}

TEST(ParseScenarioFile, OuterEmptyBlocksDropInteriorOnesStay) {
  // Leading/trailing delimiters are formatting; an *interior* empty
  // block is a real epoch-0-only scenario.
  std::vector<Scenario> s =
      parseScenarioFile("---\n+F(f0, 2, 3)\n---\n\n---\n-Acl(web, 80)\n---\n");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].edits, "+F(f0, 2, 3)\n");
  EXPECT_EQ(s[1].edits, "\n");
  EXPECT_EQ(s[2].edits, "-Acl(web, 80)\n");
}

TEST(ParseScenarioFile, WhitespaceOnlyFileHasNoScenarios) {
  EXPECT_TRUE(parseScenarioFile("").empty());
  EXPECT_TRUE(parseScenarioFile("\n  \n---\n\n").empty());
}

TEST(DatabaseClone, ForkEditsNeverReachTheOriginal) {
  rel::Database db = parseDatabase(kDb);
  const std::string before = db.table("F").toString(&db.cvars());
  rel::Database fork = db.clone();
  // Registry ids survive the copy: a formula minted against the base
  // registry renders identically against the fork's.
  EXPECT_EQ(db.cvars().size(), fork.cvars().size());
  for (const Edit& e : parseEditScript("-F(f0, 2, 3)\n+F(f0, 2, 9)\n", fork)) {
    if (e.kind == Edit::Kind::Insert) {
      fork.table(e.pred).insert(e.vals, e.cond);
    } else {
      fork.table(e.pred).eraseWithData(e.vals);
    }
  }
  EXPECT_EQ(db.table("F").toString(&db.cvars()), before);
  EXPECT_NE(fork.table("F").toString(&fork.cvars()), before);
}

TEST(ScenarioSetTest, DivergentEditsToTheSameRelationStayIsolated) {
  // Two scenarios pull the same link in opposite directions; a third
  // leaves the reachability team alone entirely. Each must match its
  // fresh single-scenario run byte for byte, and the base snapshot must
  // come through untouched.
  std::vector<Scenario> scenarios = {
      {"drop", "-F(f0, 2, 3)\n"},
      {"reroute", "-F(f0, 2, 3)\n+F(f0, 2, 9)\n+F(f0, 9, 3)\n"},
      {"policy", "+Acl(web, 8443)\n-Acl(legacy, 8080)\n"},
  };
  ScenarioSet set = makeSet();
  const std::string baseBefore =
      set.base().table("F").toString(&set.base().cvars());
  std::vector<ScenarioOutcome> out = set.evaluate(scenarios);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    ScenarioOutcome fresh = freshRun(scenarios[i]);
    EXPECT_EQ(out[i].id, scenarios[i].id);
    EXPECT_EQ(out[i].exitCode, 0) << out[i].message;
    EXPECT_EQ(out[i].output, fresh.output) << "scenario " << scenarios[i].id;
  }
  EXPECT_EQ(set.base().table("F").toString(&set.base().cvars()), baseBefore);
}

TEST(ScenarioSetTest, EmptyScriptIsServedFromTheSharedSnapshot) {
  ScenarioSet set = makeSet();
  std::vector<ScenarioOutcome> out = set.evaluate({{"base", ""}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].exitCode, 0);
  EXPECT_EQ(out[0].epochs, 1u);
  EXPECT_EQ(out[0].output.rfind("== epoch 0: initial ==\n", 0), 0u);
}

TEST(ScenarioSetTest, ParseErrorReportsExitOneWithoutOutput) {
  ScenarioSet set = makeSet();
  std::vector<ScenarioOutcome> out =
      set.evaluate({{"bad", "+Nope(1, 2)\n"}, {"good", "+Acl(db, 5432)\n"}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].exitCode, 1);
  EXPECT_TRUE(out[0].output.empty());
  EXPECT_NE(out[0].message.find("undeclared table"), std::string::npos);
  EXPECT_EQ(out[1].exitCode, 0) << out[1].message;
}

TEST(ScenarioSetTest, BudgetTrippedScenarioDegradesAlone) {
  // maxTuples = 40 clears epoch 0 (< 20 tuples on this fixture) and the
  // light scenarios, but the cycle-building scenario's later epochs
  // derive well past it under the full-recompute oracle. The degraded
  // scenario must report exit-code-2 semantics by itself — siblings
  // evaluated in the same batch stay byte-identical to unguarded runs.
  std::vector<Scenario> scenarios = {
      {"heavy", "+F(f0, 3, 5)\n+F(f0, 5, 1)\n"},
      {"light", "-Acl(legacy, 8080)\n"},
      {"base", ""},
  };
  ScenarioSetOptions opts;
  opts.eval.threads = 2;
  opts.mode = 0;  // full recompute: per-epoch tuple counts are fixed
  opts.limits.maxTuples = 40;
  ScenarioSet set = makeSet(std::move(opts));
  std::vector<ScenarioOutcome> out = set.evaluate(scenarios);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].exitCode, 2);
  EXPECT_NE(out[0].message.find("tuples(limit=40)"), std::string::npos)
      << out[0].message;
  // Partial output: the epochs before the trip are retained.
  EXPECT_NE(out[0].output.find("== epoch 1: "), std::string::npos);
  EXPECT_EQ(out[1].exitCode, 0) << out[1].message;
  EXPECT_EQ(out[2].exitCode, 0) << out[2].message;
  EXPECT_EQ(out[1].output, freshRun(scenarios[1], /*mode=*/0).output);
  EXPECT_EQ(out[2].output, freshRun(scenarios[2], /*mode=*/0).output);
}

TEST(ScenarioSetTest, ForkMatchesFreshAtWidthEightUnderChaos) {
  // The widest isolation claim in one go: eight divergent scenarios
  // fanned out at threads=8, forks supervised with a seeded chaos plan
  // (primary faults + native failover) — every outcome must still be
  // byte-identical to a serial, chaos-free single-scenario run.
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 8; ++i) {
    const std::string port = std::to_string(1000 + i * 7);
    std::string edits;
    if (i % 2 == 0) {
      edits = "-F(f0, 2, 3)\n+F(f0, 2, " + std::to_string(10 + i) + ")\n";
    } else {
      edits = "+Acl(app" + std::to_string(i) + ", " + port + ")\n";
    }
    scenarios.push_back({std::to_string(i + 1), std::move(edits)});
  }
  ScenarioSetOptions opts;
  opts.eval.threads = 8;
  opts.supervision.enabled = true;
  opts.supervision.failover = true;
  opts.supervision.chaos = util::FaultPlan::defaultChaos(20260807);
  ScenarioSet set = makeSet(std::move(opts));
  std::vector<ScenarioOutcome> out = set.evaluate(scenarios);
  ASSERT_EQ(out.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    ScenarioOutcome fresh = freshRun(scenarios[i]);
    EXPECT_EQ(out[i].exitCode, 0) << out[i].message;
    EXPECT_EQ(out[i].output, fresh.output) << "scenario " << scenarios[i].id;
  }
}

TEST(ScenarioSetTest, BatchesReuseOnePreparedSnapshot) {
  ScenarioSet set = makeSet();
  const EvalResult& base = set.prepare();
  EXPECT_FALSE(base.incomplete);
  // Two batches over the same set: the second must not re-derive epoch
  // 0 (prepare is idempotent) and must produce identical bytes.
  std::vector<ScenarioOutcome> a = set.evaluate({{"x", "-F(f0, 2, 3)\n"}});
  std::vector<ScenarioOutcome> b = set.evaluate({{"x", "-F(f0, 2, 3)\n"}});
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].output, b[0].output);
  EXPECT_EQ(a[0].exitCode, 0);
}

}  // namespace
}  // namespace faure::fl
