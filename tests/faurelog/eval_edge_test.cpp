// Edge cases and hardening tests for the fauré-log evaluator.
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "util/error.hpp"

namespace faure::fl {
namespace {

using smt::CmpOp;
using smt::Formula;

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

class EvalEdgeTest : public ::testing::Test {
 protected:
  rel::Database db_;
  dl::Program parse(const char* text) {
    return dl::parseProgram(text, db_.cvars());
  }
};

TEST_F(EvalEdgeTest, EmptyProgram) {
  auto res = evalFaure(parse(""), db_);
  EXPECT_TRUE(res.idb.empty());
}

TEST_F(EvalEdgeTest, FactOnlyProgram) {
  auto res = evalFaure(parse("Lb(Mkt, CS).\nLb(R&D, GS).\n"), db_);
  EXPECT_EQ(res.relation("Lb").size(), 2u);
}

TEST_F(EvalEdgeTest, BodylessRuleWithComparisonDerivesConditionally) {
  // A rule whose body is only a comparison derives its head under that
  // condition — the degenerate case of constraint rules.
  db_.cvars().declareInt("x_", 0, 1);
  auto res = evalFaure(parse("panic :- x_ = 1."), db_);
  Formula cond;
  ASSERT_TRUE(res.derived("panic", &cond));
  CVarId x = db_.cvars().find("x_");
  EXPECT_EQ(cond,
            Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)));
}

TEST_F(EvalEdgeTest, PrefixConstantsMatchAndCompare) {
  auto& t = db_.create(anySchema("T", 1));
  t.insertConcrete({Value::parsePrefix("10.0.0.0/8")});
  t.insertConcrete({Value::parsePrefix("10.0.0.0/16")});
  auto res = evalFaure(parse("Q(x) :- T(x), x != 10.0.0.0/16."), db_);
  ASSERT_EQ(res.relation("Q").size(), 1u);
  EXPECT_EQ(res.relation("Q").rows()[0].vals[0],
            Value::parsePrefix("10.0.0.0/8"));
}

TEST_F(EvalEdgeTest, PathConstantsInRules) {
  auto& t = db_.create(anySchema("T", 2));
  t.insertConcrete({Value::fromInt(1), Value::path({"A", "B"})});
  t.insertConcrete({Value::fromInt(2), Value::path({"C"})});
  auto res = evalFaure(parse("Q(x) :- T(x, [A B])."), db_);
  ASSERT_EQ(res.relation("Q").size(), 1u);
  EXPECT_EQ(res.relation("Q").rows()[0].vals[0], Value::fromInt(1));
}

TEST_F(EvalEdgeTest, ThreeStrataPipeline) {
  auto& e = db_.create(anySchema("E", 2));
  e.insertConcrete({Value::fromInt(1), Value::fromInt(2)});
  e.insertConcrete({Value::fromInt(2), Value::fromInt(3)});
  auto res = evalFaure(parse("Src(x) :- E(x,y).\n"
                             "NotSrc(y) :- E(x,y), !Src(y).\n"
                             "Alarm(y) :- NotSrc(y), !Whitelist(y).\n"
                             "Whitelist(3).\n"),
                       db_);
  // Src = {1,2}; NotSrc = {3}; Whitelist = {3}; Alarm empty.
  EXPECT_EQ(res.relation("Src").size(), 2u);
  EXPECT_EQ(res.relation("NotSrc").size(), 1u);
  EXPECT_TRUE(res.relation("Alarm").empty());
}

TEST_F(EvalEdgeTest, NegationOverSameStratumThrows) {
  db_.create(anySchema("E", 2));
  EXPECT_THROW(
      evalFaure(parse("Win(x) :- E(x,y), !Win(y)."), db_), EvalError);
}

TEST_F(EvalEdgeTest, SelfJoinOnCVarData) {
  // E(x, x) against a row (a_, b_): matches with condition a_ = b_.
  CVarId a = db_.cvars().declareInt("a_", 0, 3);
  CVarId b = db_.cvars().declareInt("b_", 0, 3);
  auto& e = db_.create(anySchema("E", 2));
  e.insertConcrete({Value::cvar(a), Value::cvar(b)});
  auto res = evalFaure(parse("Loop(x) :- E(x, x)."), db_);
  ASSERT_EQ(res.relation("Loop").size(), 1u);
  EXPECT_EQ(res.relation("Loop").rows()[0].cond,
            Formula::cmp(Value::cvar(a), CmpOp::Eq, Value::cvar(b)));
}

TEST_F(EvalEdgeTest, CVarJoinAcrossLiterals) {
  // Join through a variable bound to a c-variable: conditions must link
  // the two unknowns.
  CVarId a = db_.cvars().declareInt("a_", 0, 3);
  CVarId b = db_.cvars().declareInt("b_", 0, 3);
  auto& e = db_.create(anySchema("E", 2));
  auto& f = db_.create(anySchema("F", 2));
  e.insertConcrete({Value::fromInt(1), Value::cvar(a)});
  f.insertConcrete({Value::cvar(b), Value::fromInt(9)});
  auto res = evalFaure(parse("Q(x, z) :- E(x, y), F(y, z)."), db_);
  ASSERT_EQ(res.relation("Q").size(), 1u);
  EXPECT_EQ(res.relation("Q").rows()[0].cond,
            Formula::cmp(Value::cvar(a), CmpOp::Eq, Value::cvar(b)));
}

TEST_F(EvalEdgeTest, ConsolidateOffKeepsDuplicates) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& e = db_.create(anySchema("E", 1));
  auto& f = db_.create(anySchema("F", 1));
  e.insert({Value::fromInt(7)}, Formula::cmp(Value::cvar(x), CmpOp::Eq,
                                             Value::fromInt(0)));
  f.insert({Value::fromInt(7)}, Formula::cmp(Value::cvar(x), CmpOp::Eq,
                                             Value::fromInt(1)));
  smt::NativeSolver solver(db_.cvars());
  EvalOptions opts;
  opts.consolidate = false;
  auto res = evalFaure(parse("Q(v) :- E(v).\nQ(v) :- F(v).\n"), db_,
                       &solver, opts);
  EXPECT_EQ(res.relation("Q").size(), 2u);
  // conditionOf still reports the OR of the duplicates.
  smt::NativeSolver judge(db_.cvars());
  EXPECT_TRUE(judge.implies(smt::Formula::top(),
                            res.relation("Q").conditionOf(
                                {Value::fromInt(7)})));
}

TEST_F(EvalEdgeTest, SimplifyResultsCollapsesValidConditions) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& e = db_.create(anySchema("E", 1));
  auto& f = db_.create(anySchema("F", 1));
  e.insert({Value::fromInt(7)}, Formula::cmp(Value::cvar(x), CmpOp::Eq,
                                             Value::fromInt(0)));
  f.insert({Value::fromInt(7)}, Formula::cmp(Value::cvar(x), CmpOp::Eq,
                                             Value::fromInt(1)));
  smt::NativeSolver solver(db_.cvars());
  EvalOptions opts;
  opts.simplifyResults = true;
  auto res = evalFaure(parse("Q(v) :- E(v).\nQ(v) :- F(v).\n"), db_,
                       &solver, opts);
  ASSERT_EQ(res.relation("Q").size(), 1u);
  EXPECT_TRUE(res.relation("Q").rows()[0].cond.isTrue());
}

TEST_F(EvalEdgeTest, HeadCVarsSurviveIntoResults) {
  // The Vt(x_, CS, p_) pattern: heads may introduce c-variables.
  db_.cvars().declare("s_", ValueType::Sym);
  auto& r = db_.create(anySchema("R", 1));
  r.insertConcrete({Value::sym("Mkt")});
  auto res = evalFaure(parse("V(s_, CS) :- R(s_)."), db_);
  ASSERT_EQ(res.relation("V").size(), 1u);
  EXPECT_TRUE(res.relation("V").rows()[0].vals[0].isCVar());
  EXPECT_EQ(res.relation("V").rows()[0].vals[1], Value::sym("CS"));
}

TEST_F(EvalEdgeTest, ArityMismatchAgainstEdbThrows) {
  db_.create(anySchema("E", 2));
  EXPECT_THROW(evalFaure(parse("Q(x) :- E(x)."), db_), EvalError);
}

TEST_F(EvalEdgeTest, IterationCapTriggers) {
  auto& e = db_.create(anySchema("E", 2));
  for (int i = 0; i < 20; ++i) {
    e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
  }
  smt::NativeSolver solver(db_.cvars());
  EvalOptions opts;
  opts.maxIterations = 2;
  EXPECT_THROW(evalFaure(parse("R(x,y) :- E(x,y).\n"
                               "R(x,y) :- E(x,z), R(z,y).\n"),
                         db_, &solver, opts),
               EvalError);
}

TEST_F(EvalEdgeTest, ComparisonBetweenTwoBoundVars) {
  auto& e = db_.create(anySchema("E", 2));
  e.insertConcrete({Value::fromInt(3), Value::fromInt(5)});
  e.insertConcrete({Value::fromInt(5), Value::fromInt(3)});
  auto res = evalFaure(parse("Inc(x,y) :- E(x,y), x < y."), db_);
  ASSERT_EQ(res.relation("Inc").size(), 1u);
  EXPECT_EQ(res.relation("Inc").rows()[0].vals[0], Value::fromInt(3));
}

TEST_F(EvalEdgeTest, OrderedComparisonOnSymbolsThrows) {
  auto& e = db_.create(anySchema("E", 2));
  e.insertConcrete({Value::sym("A"), Value::sym("B")});
  EXPECT_THROW(evalFaure(parse("Q(x,y) :- E(x,y), x < y."), db_), TypeError);
}

}  // namespace
}  // namespace faure::fl
