// Engine-level tests for the fauré-log evaluator (faurelog/eval.hpp):
// c-valuation matching, condition propagation, negation, recursion,
// pruning and merge behaviour.
#include "faurelog/eval.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "util/error.hpp"

namespace faure::fl {
namespace {

using smt::CmpOp;
using smt::Formula;

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

class FaureEvalTest : public ::testing::Test {
 protected:
  rel::Database db_;

  dl::Program parse(const char* text) {
    return dl::parseProgram(text, db_.cvars());
  }
  Formula eq(CVarId v, Value val) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, val);
  }
};

TEST_F(FaureEvalTest, GroundDataBehavesLikePureDatalog) {
  auto& e = db_.create(anySchema("E", 2));
  e.insertConcrete({Value::fromInt(1), Value::fromInt(2)});
  e.insertConcrete({Value::fromInt(2), Value::fromInt(3)});
  auto res = evalFaure(parse("R(x,y) :- E(x,y).\n"
                             "R(x,y) :- E(x,z), R(z,y).\n"),
                       db_);
  EXPECT_EQ(res.relation("R").size(), 3u);
  EXPECT_TRUE(res.relation("R")
                  .conditionOf({Value::fromInt(1), Value::fromInt(3)})
                  .isTrue());
}

TEST_F(FaureEvalTest, ConstantMatchesCVarByConditioning) {
  // P(1.2.3.5, y) must match the row (y_, ABE)[y_ != 1.2.3.4] with the
  // extra condition y_ = 1.2.3.5 — the paper's q3.
  CVarId y = db_.cvars().declare("y_", ValueType::Prefix);
  auto& p = db_.create(anySchema("P", 2));
  p.insert({Value::cvar(y), Value::path({"ABE"})},
           Formula::cmp(Value::cvar(y), CmpOp::Ne,
                        Value::parsePrefix("1.2.3.4")));
  auto res = evalFaure(parse("Q(z) :- P(1.2.3.5, z)."), db_);
  ASSERT_EQ(res.relation("Q").size(), 1u);
  const auto& row = res.relation("Q").rows()[0];
  EXPECT_EQ(row.vals[0], Value::path({"ABE"}));
  // Condition: y_ != 1.2.3.4 & y_ = 1.2.3.5 (satisfiable).
  smt::NativeSolver solver(db_.cvars());
  EXPECT_EQ(solver.check(row.cond), smt::Sat::Sat);
  EXPECT_FALSE(row.cond.isTrue());
}

TEST_F(FaureEvalTest, SyntacticContradictionDiesBeforeTheSolver) {
  // P(1.2.3.4, z) against (y_, ABE)[y_ != 1.2.3.4]: the match condition
  // y_ = 1.2.3.4 is the exact complement of the row condition, so the
  // frame folds to false with no solver involvement.
  CVarId y = db_.cvars().declare("y_", ValueType::Prefix);
  auto& p = db_.create(anySchema("P", 2));
  p.insert({Value::cvar(y), Value::path({"ABE"})},
           Formula::cmp(Value::cvar(y), CmpOp::Ne,
                        Value::parsePrefix("1.2.3.4")));
  auto res = evalFaure(parse("Q(z) :- P(1.2.3.4, z)."), db_);
  EXPECT_TRUE(res.relation("Q").empty());
  EXPECT_EQ(res.stats.prunedUnsat, 0u);
}

TEST_F(FaureEvalTest, SemanticContradictionNeedsTheSolverStep) {
  // x_ = 0 & x_ + y_ = 3 over bits is only refutable semantically.
  db_.cvars().declareInt("x_", 0, 1);
  db_.cvars().declareInt("y_", 0, 1);
  auto& t = db_.create(anySchema("T", 1));
  t.insertConcrete({Value::fromInt(7)});
  dl::Program p = parse("S(v) :- T(v), x_ = 0, x_ + y_ = 3.");

  auto pruned = evalFaure(p, db_);
  EXPECT_TRUE(pruned.relation("S").empty());
  EXPECT_EQ(pruned.stats.prunedUnsat, 1u);

  // Without the solver step the contradictory row is kept — sound (its
  // condition never holds) but larger; this is what the Z3 step buys.
  smt::NativeSolver solver(db_.cvars());
  EvalOptions opts;
  opts.pruneWithSolver = false;
  opts.mergeSubsumption = false;
  auto kept = evalFaure(p, db_, &solver, opts);
  ASSERT_EQ(kept.relation("S").size(), 1u);
  EXPECT_EQ(solver.check(kept.relation("S").rows()[0].cond),
            smt::Sat::Unsat);
}

TEST_F(FaureEvalTest, RuleCVarsUnifyWithRowValues) {
  // Rule argument x_ against concrete rows adds x_ = <value>.
  CVarId x = db_.cvars().declare("x_", ValueType::Sym);
  (void)x;
  auto& r = db_.create(anySchema("R", 1));
  r.insertConcrete({Value::sym("Mkt")});
  auto res = evalFaure(parse("V(x_) :- R(x_)."), db_);
  ASSERT_EQ(res.relation("V").size(), 1u);
  const auto& row = res.relation("V").rows()[0];
  EXPECT_TRUE(row.vals[0].isCVar());
  EXPECT_EQ(row.cond,
            Formula::cmp(row.vals[0], CmpOp::Eq, Value::sym("Mkt")));
}

TEST_F(FaureEvalTest, ComparisonsBecomeConditions) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& t = db_.create(anySchema("T", 1));
  t.insertConcrete({Value::fromInt(7)});
  auto res = evalFaure(parse("S(v) :- T(v), x_ = 1."), db_);
  ASSERT_EQ(res.relation("S").size(), 1u);
  EXPECT_EQ(res.relation("S").rows()[0].cond, eq(x, Value::fromInt(1)));
}

TEST_F(FaureEvalTest, LinearComparisonConditions) {
  db_.cvars().declareInt("x_", 0, 1);
  db_.cvars().declareInt("y_", 0, 1);
  auto& t = db_.create(anySchema("T", 1));
  t.insertConcrete({Value::fromInt(7)});
  auto res = evalFaure(parse("S(v) :- T(v), x_ + y_ = 2."), db_);
  ASSERT_EQ(res.relation("S").size(), 1u);
  // x_ + y_ = 2 over bits is satisfiable (both 1).
  smt::NativeSolver solver(db_.cvars());
  EXPECT_EQ(solver.check(res.relation("S").rows()[0].cond), smt::Sat::Sat);
  auto res2 = evalFaure(parse("S2(v) :- T(v), x_ + y_ = 3."), db_);
  EXPECT_TRUE(res2.relation("S2").empty());  // pruned as unsat
}

TEST_F(FaureEvalTest, NegationComplementsConditions) {
  // E has a conditional row; !E(v) must carry its complement.
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& t = db_.create(anySchema("T", 1));
  t.insertConcrete({Value::fromInt(5)});
  auto& e = db_.create(anySchema("E", 1));
  e.insert({Value::fromInt(5)}, eq(x, Value::fromInt(1)));
  auto res = evalFaure(parse("S(v) :- T(v), !E(v)."), db_);
  ASSERT_EQ(res.relation("S").size(), 1u);
  // The complement surfaces as x_ != 1, semantically x_ = 0 over {0,1}.
  smt::NativeSolver solver(db_.cvars());
  EXPECT_TRUE(solver.equivalent(res.relation("S").rows()[0].cond,
                                eq(x, Value::fromInt(0))));
}

TEST_F(FaureEvalTest, NegationAgainstUnconditionalRowKillsFrame) {
  auto& t = db_.create(anySchema("T", 1));
  t.insertConcrete({Value::fromInt(5)});
  auto& e = db_.create(anySchema("E", 1));
  e.insertConcrete({Value::fromInt(5)});
  auto res = evalFaure(parse("S(v) :- T(v), !E(v)."), db_);
  EXPECT_TRUE(res.relation("S").empty());
}

TEST_F(FaureEvalTest, NegationOverCVarRowConditionsOnDisequality) {
  // !E(7) where E contains (z_): survives exactly when z_ != 7.
  CVarId z = db_.cvars().declareInt("z_", 5, 9);
  auto& t = db_.create(anySchema("T", 1));
  t.insertConcrete({Value::fromInt(7)});
  auto& e = db_.create(anySchema("E", 1));
  e.insertConcrete({Value::cvar(z)});
  auto res = evalFaure(parse("S(v) :- T(v), !E(v)."), db_);
  ASSERT_EQ(res.relation("S").size(), 1u);
  EXPECT_EQ(res.relation("S").rows()[0].cond,
            Formula::cmp(Value::cvar(z), CmpOp::Ne, Value::fromInt(7)));
}

TEST_F(FaureEvalTest, RecursionOverConditionalEdgesTerminates) {
  // A conditional cycle: recursion must converge via condition dedup.
  CVarId a = db_.cvars().declareInt("a_", 0, 1);
  CVarId b = db_.cvars().declareInt("b_", 0, 1);
  auto& e = db_.create(anySchema("E", 2));
  e.insert({Value::fromInt(1), Value::fromInt(2)}, eq(a, Value::fromInt(1)));
  e.insert({Value::fromInt(2), Value::fromInt(1)}, eq(b, Value::fromInt(1)));
  auto res = evalFaure(parse("R(x,y) :- E(x,y).\n"
                             "R(x,y) :- E(x,z), R(z,y).\n"),
                       db_);
  // R(1,1) requires both links up.
  Formula c11 = res.relation("R")
                    .conditionOf({Value::fromInt(1), Value::fromInt(1)});
  EXPECT_EQ(c11, Formula::conj2(eq(a, Value::fromInt(1)),
                                eq(b, Value::fromInt(1))));
}

TEST_F(FaureEvalTest, DuplicateDerivationsMergeToOr) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& e = db_.create(anySchema("E", 2));
  // Two edges into the same pair under different conditions.
  e.insert({Value::fromInt(1), Value::fromInt(2)}, eq(x, Value::fromInt(1)));
  auto& f = db_.create(anySchema("F", 2));
  f.insert({Value::fromInt(1), Value::fromInt(2)}, eq(x, Value::fromInt(0)));
  auto res = evalFaure(parse("R(a,b) :- E(a,b).\n"
                             "R(a,b) :- F(a,b).\n"),
                       db_);
  ASSERT_EQ(res.relation("R").size(), 1u);
  EXPECT_EQ(res.relation("R").rows()[0].cond,
            Formula::disj2(eq(x, Value::fromInt(0)),
                           eq(x, Value::fromInt(1))));
}

TEST_F(FaureEvalTest, FactsExtendEdbRelations) {
  // The paper's q19: a fact on an EDB relation name extends its contents.
  auto& lb = db_.create(anySchema("Lb", 2));
  lb.insertConcrete({Value::sym("Mkt"), Value::sym("CS")});
  auto res = evalFaure(parse("Lb(R&D, GS).\n"
                             "All(x,y) :- Lb(x,y).\n"),
                       db_);
  EXPECT_EQ(res.relation("All").size(), 2u);
  EXPECT_EQ(res.relation("Lb").size(), 2u);
}

TEST_F(FaureEvalTest, DerivedGoalWithCondition) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& t = db_.create(anySchema("T", 1));
  t.insert({Value::fromInt(1)}, eq(x, Value::fromInt(1)));
  auto res = evalFaure(parse("panic :- T(v)."), db_);
  Formula cond;
  EXPECT_TRUE(res.derived("panic", &cond));
  EXPECT_EQ(cond, eq(x, Value::fromInt(1)));
  EXPECT_FALSE(res.derived("nothing"));
}

TEST_F(FaureEvalTest, OpenWorldNegationMatchesOnlyListedFacts) {
  auto& r = db_.create(anySchema("R", 2));
  r.insertConcrete({Value::sym("Mkt"), Value::sym("CS")});
  NegativeFacts neg;
  neg.facts["Fw"] = {{Value::sym("Mkt"), Value::sym("CS")}};
  smt::NativeSolver solver(db_.cvars());
  EvalOptions opts;
  opts.openWorldNegation = &neg;

  // !Fw(Mkt,CS) matches the listed absence: panic derives.
  auto res =
      evalFaure(parse("panic :- R(x,y), !Fw(x,y)."), db_, &solver, opts);
  EXPECT_TRUE(res.derived("panic"));

  // !Lb(Mkt,CS) has no listed absence: nothing derives.
  auto res2 =
      evalFaure(parse("panic :- R(x,y), !Lb(x,y)."), db_, &solver, opts);
  EXPECT_FALSE(res2.derived("panic"));
}

TEST_F(FaureEvalTest, SemiNaiveMatchesNaive) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& e = db_.create(anySchema("E", 2));
  for (int i = 0; i < 6; ++i) {
    e.insert({Value::fromInt(i), Value::fromInt((i + 1) % 6)},
             eq(x, Value::fromInt(i % 2)));
  }
  dl::Program p = parse("R(a,b) :- E(a,b).\nR(a,b) :- E(a,z), R(z,b).\n");
  smt::NativeSolver s1(db_.cvars());
  smt::NativeSolver s2(db_.cvars());
  EvalOptions naive;
  naive.semiNaive = false;
  auto a = evalFaure(p, db_, &s1, naive);
  auto b = evalFaure(p, db_, &s2, EvalOptions{});
  ASSERT_EQ(a.relation("R").size(), b.relation("R").size());
  smt::NativeSolver judge(db_.cvars());
  for (const auto& row : a.relation("R").rows()) {
    EXPECT_TRUE(
        judge.equivalent(row.cond, b.relation("R").conditionOf(row.vals)))
        << "mismatch on a row";
  }
}

TEST_F(FaureEvalTest, SolverRequiredWhenPruning) {
  db_.create(anySchema("E", 1));
  EvalOptions opts;
  EXPECT_THROW(evalFaure(parse("V(x) :- E(x)."), db_, nullptr, opts),
               EvalError);
  opts.pruneWithSolver = false;
  opts.mergeSubsumption = false;
  EXPECT_NO_THROW(evalFaure(parse("V(x) :- E(x)."), db_, nullptr, opts));
}

TEST_F(FaureEvalTest, StatsSplitSqlAndSolverTime) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& e = db_.create(anySchema("E", 1));
  e.insert({Value::fromInt(1)}, eq(x, Value::fromInt(1)));
  auto res = evalFaure(parse("V(v) :- E(v), x_ = 0."), db_);
  EXPECT_GE(res.stats.solverChecks, 1u);
  EXPECT_GE(res.stats.sqlSeconds, 0.0);
  EXPECT_GE(res.stats.solverSeconds, 0.0);
}

}  // namespace
}  // namespace faure::fl
