// Determinism contract of the parallel fixpoint engine (DESIGN.md §7):
// for any EvalOptions::threads the evaluator must produce results that
// are bit-identical to serial — same rows, same row order, same
// conditions, same logical counters (EvalStats and solver.* stats) —
// and resource-budget trips must degrade with the same machine-readable
// reason as a serial run. Also covers the threads-resolution rules
// (explicit > FAURE_THREADS env > serial default, 0 = hardware).
#include <gtest/gtest.h>

#include <cstdlib>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace faure::fl {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

struct EvalRun {
  EvalResult res;
  smt::SolverStats solver;
};

class ParallelEvalTest : public ::testing::Test {
 protected:
  rel::Database db_;

  dl::Program parse(const char* text) {
    return dl::parseProgram(text, db_.cvars());
  }

  EvalRun eval(const char* text, unsigned threads, EvalOptions opts = {}) {
    smt::NativeSolver solver(db_.cvars());
    opts.threads = threads;
    EvalRun r;
    r.res = evalFaure(parse(text), db_, &solver, opts);
    r.solver = solver.stats();
    return r;
  }

  /// Byte-level result identity: same relations, same rows in the same
  /// order, identical condition formulas, identical logical counters.
  static void expectIdentical(const EvalRun& serial, const EvalRun& parallel,
                              const char* label) {
    SCOPED_TRACE(label);
    const EvalResult& a = serial.res;
    const EvalResult& b = parallel.res;
    ASSERT_EQ(a.idb.size(), b.idb.size());
    for (const auto& [name, table] : a.idb) {
      auto it = b.idb.find(name);
      ASSERT_NE(it, b.idb.end()) << "missing relation " << name;
      const auto& rows = table.rows();
      const auto& other = it->second.rows();
      ASSERT_EQ(rows.size(), other.size()) << "size of " << name;
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].vals, other[i].vals)
            << name << " row " << i << " data";
        EXPECT_EQ(rows[i].cond, other[i].cond)
            << name << " row " << i << " condition";
      }
    }
    EXPECT_EQ(a.stats.derivations, b.stats.derivations);
    EXPECT_EQ(a.stats.inserted, b.stats.inserted);
    EXPECT_EQ(a.stats.prunedUnsat, b.stats.prunedUnsat);
    EXPECT_EQ(a.stats.subsumed, b.stats.subsumed);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
    EXPECT_EQ(a.stats.solverChecks, b.stats.solverChecks);
    EXPECT_EQ(a.incomplete, b.incomplete);
    EXPECT_EQ(a.tripped, b.tripped);
    EXPECT_EQ(a.degradeReason, b.degradeReason);
    // The logical solver stream is replayed identically (DESIGN.md §7).
    EXPECT_EQ(serial.solver.checks, parallel.solver.checks);
    EXPECT_EQ(serial.solver.unsat, parallel.solver.unsat);
    EXPECT_EQ(serial.solver.unknown, parallel.solver.unknown);
    EXPECT_EQ(serial.solver.enumerations, parallel.solver.enumerations);
  }

  void expectDeterministicAcrossThreadCounts(const char* program,
                                             EvalOptions opts = {}) {
    EvalRun serial = eval(program, 1, opts);
    for (unsigned threads : {2u, 8u}) {
      EvalRun par = eval(program, threads, opts);
      expectIdentical(serial, par,
                      ("threads=" + std::to_string(threads)).c_str());
    }
  }

  /// A chain graph 0 -> 1 -> ... -> n with a c-variable condition on
  /// every third edge, so closure derives condition-bearing tuples.
  void loadChain(int n) {
    CVarId x = db_.cvars().declareInt("x_", 0, 1);
    auto& e = db_.create(anySchema("E", 2));
    for (int i = 0; i < n; ++i) {
      if (i % 3 == 0) {
        e.insert({Value::fromInt(i), Value::fromInt(i + 1)},
                 smt::Formula::cmp(Value::cvar(x), smt::CmpOp::Eq,
                                   Value::fromInt(i % 2)));
      } else {
        e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
      }
    }
  }
};

TEST_F(ParallelEvalTest, RecursiveClosureIsThreadCountInvariant) {
  loadChain(24);
  expectDeterministicAcrossThreadCounts(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n");
}

TEST_F(ParallelEvalTest, NegationAndComparisonsAreThreadCountInvariant) {
  loadChain(16);
  // Three strata: closure, a comparison filter, closed-world negation
  // over the lower stratum.
  expectDeterministicAcrossThreadCounts(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n"
      "Far(x,y) :- R(x,y), x < y, y > 8.\n"
      "Stuck(x,y) :- E(x,y), !Far(x,y).\n");
}

TEST_F(ParallelEvalTest, LargeRelationPartitioningIsThreadCountInvariant) {
  // 2048 rows crosses the delta-partitioning threshold, so chunked scans
  // of the first literal are exercised, not just rule-level parallelism.
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  auto& e = db_.create(anySchema("E", 2));
  for (int i = 0; i < 2048; ++i) {
    if (i % 97 == 0) {
      e.insert({Value::fromInt(i), Value::fromInt(i + 1)},
               smt::Formula::cmp(Value::cvar(x), smt::CmpOp::Eq,
                                 Value::fromInt(0)));
    } else {
      e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
    }
  }
  expectDeterministicAcrossThreadCounts(
      "Q(x,y) :- E(x,y), x < y, y < 2000.\n"
      "P(x,z) :- E(x,y), E(y,z), x < 100.\n");
}

TEST_F(ParallelEvalTest, NaiveModeAndNoSolverModeStayInvariant) {
  loadChain(12);
  EvalOptions naive;
  naive.semiNaive = false;
  expectDeterministicAcrossThreadCounts(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n",
      naive);

  EvalOptions noSolver;
  noSolver.pruneWithSolver = false;
  expectDeterministicAcrossThreadCounts(
      "S(x,y) :- E(x,y), x < 6.\n", noSolver);
}

TEST_F(ParallelEvalTest, TupleBudgetTripDegradesWithTheSerialReason) {
  // The ISSUE's degradation contract: a budget tripped under -j4 must
  // abort all workers and surface the same machine-readable
  // `kind(limit=N)` reason as serial — not crash, not hang, not a
  // different reason.
  loadChain(12);
  ResourceLimits limits;
  limits.maxTuples = 20;
  const char* kClosure =
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n";

  ResourceGuard serialGuard(limits);
  EvalOptions serialOpts;
  serialOpts.guard = &serialGuard;
  EvalRun serial = eval(kClosure, 1, serialOpts);

  ResourceGuard parGuard(limits);
  EvalOptions parOpts;
  parOpts.guard = &parGuard;
  EvalRun par = eval(kClosure, 4, parOpts);

  EXPECT_TRUE(serial.res.incomplete);
  EXPECT_TRUE(par.res.incomplete);
  EXPECT_EQ(par.res.tripped, Budget::Tuples);
  EXPECT_EQ(par.res.degradeReason, "tuples(limit=20)");
  EXPECT_EQ(par.res.degradeReason, serial.res.degradeReason);
  EXPECT_EQ(par.res.stats.budgetTrips, 1u);
}

TEST_F(ParallelEvalTest, SolverCheckBudgetTripDegradesWithTheSerialReason) {
  loadChain(12);
  ResourceLimits limits;
  limits.maxSolverChecks = 3;
  const char* kProgram =
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n";

  ResourceGuard serialGuard(limits);
  EvalOptions serialOpts;
  serialOpts.guard = &serialGuard;
  EvalRun serial = eval(kProgram, 1, serialOpts);

  ResourceGuard parGuard(limits);
  EvalOptions parOpts;
  parOpts.guard = &parGuard;
  EvalRun par = eval(kProgram, 4, parOpts);

  EXPECT_TRUE(serial.res.incomplete);
  EXPECT_TRUE(par.res.incomplete);
  EXPECT_EQ(par.res.tripped, Budget::SolverChecks);
  EXPECT_EQ(par.res.degradeReason, "solver-checks(limit=3)");
  EXPECT_EQ(par.res.degradeReason, serial.res.degradeReason);
}

TEST_F(ParallelEvalTest, CancellationStopsParallelEvaluation) {
  loadChain(12);
  ResourceLimits limits;
  limits.maxSteps = 1u << 30;  // active guard, no budget will trip
  ResourceGuard guard(limits);
  guard.cancel();
  EvalOptions opts;
  opts.guard = &guard;
  EvalRun r = eval(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n",
      4, opts);
  EXPECT_TRUE(r.res.incomplete);
  EXPECT_EQ(r.res.tripped, Budget::Cancelled);
  EXPECT_EQ(r.res.degradeReason, "cancelled");
}

TEST_F(ParallelEvalTest, ThrowOnBudgetPropagatesFromWorkers) {
  loadChain(12);
  ResourceLimits limits;
  limits.maxTuples = 5;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  opts.throwOnBudget = true;
  try {
    eval(
        "R(x,y) :- E(x,y).\n"
        "R(x,y) :- E(x,z), R(z,y).\n",
        4, opts);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), "tuples(limit=5)");
  }
}

TEST(ResolveThreadsTest, ExplicitEnvAndHardwareRules) {
  EvalOptions opts;

  // Unset + no env: serial.
  ::unsetenv("FAURE_THREADS");
  EXPECT_EQ(resolveThreads(opts), 1u);

  // Unset + env: the environment decides (the TSan CI job relies on
  // forcing parallelism into every test through this knob).
  ::setenv("FAURE_THREADS", "3", 1);
  EXPECT_EQ(resolveThreads(opts), 3u);

  // Explicit threads override the environment entirely.
  opts.threads = 1;
  EXPECT_EQ(resolveThreads(opts), 1u);
  opts.threads = 5;
  EXPECT_EQ(resolveThreads(opts), 5u);

  // 0 means hardware concurrency, from either source.
  opts.threads = 0;
  EXPECT_EQ(resolveThreads(opts), util::ThreadPool::hardwareConcurrency());
  opts.threads.reset();
  ::setenv("FAURE_THREADS", "0", 1);
  EXPECT_EQ(resolveThreads(opts), util::ThreadPool::hardwareConcurrency());

  ::unsetenv("FAURE_THREADS");
}

}  // namespace
}  // namespace faure::fl
