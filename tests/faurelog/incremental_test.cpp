// Tests for the incremental what-if engine (faurelog/incremental.hpp):
// the oracle contract (incremental epochs byte-identical to a full
// recompute for any edit sequence), the refined-partition reuse that
// makes incrementality worth having, and the lifecycle edges
// (invalidation, budget-tripped epochs, environment toggles).
#include "faurelog/incremental.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "datalog/parser.hpp"
#include "faurelog/textio.hpp"
#include "util/error.hpp"
#include "util/resource_guard.hpp"

namespace faure::fl {
namespace {

// The two-team shape from data/whatif_reach.fl: recursive reachability
// units ({R}, {Deliver}) and policy units ({Open}, {Lockdown}) over
// disjoint base relations.
constexpr const char* kDb =
    "var l_ int 0 1\n"
    "table F(flow sym, from int, to int)\n"
    "table Acl(app sym, port int)\n"
    "row F f0 1 2 | l_ = 1\n"
    "row F f0 1 4 | l_ = 0\n"
    "row F f0 4 2\n"
    "row F f0 2 3\n"
    "row Acl web 80\n"
    "row Acl legacy 8080\n";

constexpr const char* kProgram =
    "R(f,a,b) :- F(f,a,b).\n"
    "R(f,a,b) :- F(f,a,c), R(f,c,b).\n"
    "Deliver(f) :- R(f,1,3).\n"
    "Open(app,p) :- Acl(app,p), p < 1024.\n"
    "Lockdown(app) :- Acl(app,p), !Open(app,p).\n";

class IncrementalTest : public ::testing::Test {
 protected:
  rel::Database db_ = parseDatabase(kDb);
  smt::NativeSolver solver_{db_.cvars()};

  IncrementalEngine engine(EvalOptions opts = {}) {
    return IncrementalEngine(dl::parseProgram(kProgram, db_.cvars()), db_,
                             &solver_, opts);
  }

  /// Canonical rendering of every derived relation — the byte-level
  /// view the oracle contract is stated over.
  std::string render(const EvalResult& res) {
    std::string out;
    for (const auto& [name, table] : res.idb) {
      out += "== " + name + " ==\n" + table.toString(&db_.cvars());
    }
    return out;
  }
};

TEST_F(IncrementalTest, FirstReevaluateIsAFullRun) {
  auto eng = engine();
  EvalResult res = eng.reevaluate();
  EXPECT_FALSE(res.incomplete);
  EXPECT_EQ(eng.stats().epochs, 1u);
  EXPECT_EQ(eng.stats().fullRecomputes, 1u);
  EXPECT_TRUE(eng.state().valid);
  // All four units materialised and their row counts are retained as
  // provenance.
  EXPECT_EQ(eng.state().provenance.count("R"), 1u);
  EXPECT_EQ(eng.state().provenance.count("Lockdown"), 1u);
}

TEST_F(IncrementalTest, OracleByteIdentityAcrossMixedEdits) {
  // Same edit sequence replayed against a second database instance with
  // incrementality off; every epoch must render identically.
  rel::Database oracleDb = parseDatabase(kDb);
  smt::NativeSolver oracleSolver(oracleDb.cvars());
  IncrementalEngine oracle(dl::parseProgram(kProgram, oracleDb.cvars()),
                           oracleDb, &oracleSolver);
  oracle.setIncremental(false);
  auto eng = engine();
  eng.setIncremental(true);

  EXPECT_EQ(render(eng.reevaluate()), render(oracle.reevaluate()));
  const char* script =
      "+Acl(mail, 25)\n"
      "-Acl(legacy, 8080)\n"
      "-F(f0, 2, 3)\n"
      "+F(f0, 2, 3) | l_ = 0\n"
      "+Acl(db, 5432)\n"
      "-F(f0, 1, 2)\n";
  std::vector<Edit> edits = parseEditScript(script, db_);
  std::vector<Edit> oracleEdits = parseEditScript(script, oracleDb);
  for (size_t i = 0; i < edits.size(); ++i) {
    eng.apply(edits[i]);
    oracle.apply(oracleEdits[i]);
    EXPECT_EQ(render(eng.reevaluate()), render(oracle.reevaluate()))
        << "diverged after edit " << i;
  }
  // The incremental run did strictly less work than the oracle, which
  // re-fires every rule every epoch.
  EXPECT_LT(eng.stats().refiredRules, oracle.stats().refiredRules);
  EXPECT_GT(eng.stats().reusedStrata, 0u);
  EXPECT_EQ(eng.stats().epochs, oracle.stats().epochs);
}

TEST_F(IncrementalTest, PositiveUnitsAreSkippedIndependently) {
  // dl::stratify alone would put every positive rule in stratum 0; the
  // refined partition lets an Acl-only edit reuse the reachability
  // units even though nothing is negated between them.
  auto eng = engine();
  eng.setIncremental(true);
  eng.reevaluate();
  eng.insertFact("Acl", {Value::sym("mail"), Value::fromInt(25)});
  EvalResult res = eng.reevaluate();
  EXPECT_EQ(res.idb.at("Open").size(), 2u);  // web:80, mail:25
  // {R} and {Deliver} reused; {Open} and {Lockdown} re-fired.
  EXPECT_EQ(eng.stats().reusedStrata, 2u);
  EXPECT_EQ(eng.stats().dirtyStrata, 4u + 2u);  // epoch 0 + this epoch
  EXPECT_EQ(eng.stats().deltaInserts, 1u);
}

TEST_F(IncrementalTest, RetractionPropagates) {
  auto eng = engine();
  eng.setIncremental(true);
  EvalResult before = eng.reevaluate();
  EXPECT_EQ(before.idb.at("Deliver").size(), 1u);
  // Cutting 2->3 severs every 1->3 derivation regardless of l_.
  EXPECT_EQ(eng.retractFact("F", {Value::sym("f0"), Value::fromInt(2),
                                  Value::fromInt(3)}),
            1u);
  EvalResult after = eng.reevaluate();
  EXPECT_EQ(after.idb.at("Deliver").size(), 0u);
  EXPECT_EQ(eng.stats().deltaRetracts, 1u);
}

TEST_F(IncrementalTest, RetractingAnAbsentFactIsANoOpEdit) {
  auto eng = engine();
  eng.setIncremental(true);
  std::string base = render(eng.reevaluate());
  EXPECT_EQ(eng.retractFact("F", {Value::sym("f9"), Value::fromInt(7),
                                  Value::fromInt(7)}),
            0u);
  // The relation is still marked dirty (an epoch runs), but the output
  // is unchanged.
  EXPECT_EQ(eng.pendingDirty().count("F"), 1u);
  EXPECT_EQ(render(eng.reevaluate()), base);
}

TEST_F(IncrementalTest, UnknownRelationIsAnError) {
  auto eng = engine();
  EXPECT_THROW(eng.insertFact("Nope", {Value::fromInt(1)}), EvalError);
  EXPECT_THROW(eng.retractFact("Nope", {Value::fromInt(1)}), EvalError);
}

TEST_F(IncrementalTest, InsertMergesConditionsByDataPart) {
  auto eng = engine();
  eng.setIncremental(true);
  eng.reevaluate();
  // Same data part under the complementary condition: the row's
  // condition becomes (l_ = 1 | l_ = 0), so 1->2 reaches in all worlds.
  eng.insertFact("F",
                 {Value::sym("f0"), Value::fromInt(1), Value::fromInt(2)},
                 smt::Formula::cmp(Value::cvar(db_.cvars().find("l_")),
                                   smt::CmpOp::Eq, Value::fromInt(0)));
  EvalResult res = eng.reevaluate();
  EXPECT_EQ(db_.table("F").size(), 4u);  // merged, not appended
  EXPECT_EQ(res.idb.at("Deliver").size(), 1u);
}

TEST_F(IncrementalTest, InvalidateForcesAFullRecompute) {
  auto eng = engine();
  eng.setIncremental(true);
  eng.reevaluate();
  eng.invalidate();
  eng.reevaluate();  // no pending edits, but the state was dropped
  EXPECT_EQ(eng.stats().fullRecomputes, 2u);
}

TEST_F(IncrementalTest, IncompleteEpochPoisonsRetainedState) {
  ResourceLimits limits;
  limits.maxTuples = 1;
  ResourceGuard guard(limits);
  EvalOptions opts;
  opts.guard = &guard;
  auto eng = engine(opts);
  eng.setIncremental(true);
  EvalResult res = eng.reevaluate();
  EXPECT_TRUE(res.incomplete);
  EXPECT_FALSE(eng.state().valid);
  EXPECT_TRUE(eng.state().idb.empty());
  // The next epoch cannot reuse the partial tables: it is a full run.
  guard.rearm();
  eng.reevaluate();
  EXPECT_EQ(eng.stats().fullRecomputes, 2u);
}

TEST_F(IncrementalTest, SimplifyResultsIsRejected) {
  EvalOptions opts;
  opts.simplifyResults = true;
  EXPECT_THROW(engine(opts), EvalError);
}

TEST_F(IncrementalTest, EnvironmentTogglesTheDefault) {
  ::setenv("FAURE_INCREMENTAL", "0", 1);
  EXPECT_FALSE(engine().incremental());
  ::setenv("FAURE_INCREMENTAL", "1", 1);
  EXPECT_TRUE(engine().incremental());
  ::unsetenv("FAURE_INCREMENTAL");
  EXPECT_TRUE(engine().incremental());
}

TEST_F(IncrementalTest, OracleModeStillRetainsState) {
  // Incrementality off updates the retained state anyway, so flipping
  // it on later reuses the last oracle epoch instead of recomputing.
  auto eng = engine();
  eng.setIncremental(false);
  eng.reevaluate();
  eng.setIncremental(true);
  eng.insertFact("Acl", {Value::sym("mail"), Value::fromInt(25)});
  eng.reevaluate();
  EXPECT_EQ(eng.stats().fullRecomputes, 1u);
  EXPECT_GT(eng.stats().reusedStrata, 0u);
}

}  // namespace
}  // namespace faure::fl
