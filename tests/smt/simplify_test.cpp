// Tests for semantic condition simplification (smt/simplify.hpp).
#include "smt/simplify.hpp"

#include <gtest/gtest.h>

namespace faure::smt {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 1);
  CVarId p_ = reg_.declare("p_", ValueType::Int);
  NativeSolver solver_{reg_};

  Formula eq(CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
  }
};

TEST_F(SimplifyTest, AtomsAndConstantsUntouched) {
  EXPECT_EQ(simplify(Formula::top(), solver_), Formula::top());
  EXPECT_EQ(simplify(Formula::bottom(), solver_), Formula::bottom());
  EXPECT_EQ(simplify(eq(x_, 1), solver_), eq(x_, 1));
}

TEST_F(SimplifyTest, DropsUnsatCubes) {
  // (x=1 & x=... semantic contradiction) | y=1 -> y=1.
  Formula contradiction = Formula::conj2(eq(x_, 1), eq(p_, 5));
  contradiction = Formula::conj2(
      contradiction,
      Formula::lin(LinTerm::make({{p_, 1}, {x_, 1}}, -2), CmpOp::Eq));
  // p=5 & x=1 & p+x=2: unsat.
  Formula f = Formula::disj2(contradiction, eq(y_, 1));
  EXPECT_EQ(simplify(f, solver_), eq(y_, 1));
}

TEST_F(SimplifyTest, AllCubesUnsatGivesFalse) {
  Formula bad = Formula::conj2(
      eq(x_, 1),
      Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}}, -3), CmpOp::Eq));
  EXPECT_TRUE(simplify(bad, solver_).isFalse());
}

TEST_F(SimplifyTest, DropsSubsumedCubes) {
  // (x=1 & y=1) | x=1  ->  x=1.
  Formula f = Formula::disj2(Formula::conj2(eq(x_, 1), eq(y_, 1)),
                             eq(x_, 1));
  EXPECT_EQ(simplify(f, solver_), eq(x_, 1));
}

TEST_F(SimplifyTest, MinimizesCubeAtoms) {
  // x=1 & x>=1 : the interval atom is implied by the equality.
  Formula f = Formula::conj2(
      eq(x_, 1), Formula::cmp(Value::cvar(x_), CmpOp::Ge, Value::fromInt(1)));
  Formula s = simplify(f, solver_);
  EXPECT_TRUE(solver_.equivalent(s, eq(x_, 1)));
  EXPECT_TRUE(s.isAtom());
}

TEST_F(SimplifyTest, DetectsValidity) {
  // x=0 | x=1 over domain {0,1} is valid.
  Formula f = Formula::disj2(eq(x_, 0), eq(x_, 1));
  EXPECT_TRUE(simplify(f, solver_).isTrue());
}

TEST_F(SimplifyTest, ValidityDetectionCanBeDisabled) {
  // Validity spanning three cubes (over a {0,1,2} domain) is not caught
  // by pairwise consensus merging, only by the final validity check.
  CVarId t = reg_.declareInt("t_", 0, 2);
  Formula f = Formula::disj({eq(t, 0), eq(t, 1), eq(t, 2)});
  EXPECT_TRUE(simplify(f, solver_).isTrue());
  SimplifyOptions opts;
  opts.detectValidity = false;
  EXPECT_FALSE(simplify(f, solver_, opts).isTrue());
}

TEST_F(SimplifyTest, ConsensusMergesComplementaryCubes) {
  // (x=1 & y=0) | (x=1 & y=1) -> x=1 without the validity step.
  Formula f = Formula::disj2(Formula::conj2(eq(x_, 1), eq(y_, 0)),
                             Formula::conj2(eq(x_, 1), eq(y_, 1)));
  SimplifyOptions opts;
  opts.detectValidity = false;
  EXPECT_EQ(simplify(f, solver_, opts), eq(x_, 1));
}

TEST_F(SimplifyTest, ResultIsAlwaysEquivalent) {
  // A mixed formula: simplification must preserve meaning.
  Formula f = Formula::disj(
      {Formula::conj2(eq(x_, 1), eq(y_, 0)),
       Formula::conj2(eq(x_, 1), eq(y_, 1)),
       Formula::conj2(eq(x_, 0),
                      Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}}, -9),
                                   CmpOp::Eq))});
  Formula s = simplify(f, solver_);
  EXPECT_TRUE(solver_.equivalent(f, s));
  // x=1 covers the first two cubes; the third is unsat.
  EXPECT_EQ(s, eq(x_, 1));
}

TEST_F(SimplifyTest, OverBudgetReturnsInput) {
  // Build a formula whose DNF exceeds a tiny budget.
  Formula f = Formula::conj2(Formula::disj2(eq(x_, 0), eq(x_, 1)),
                             Formula::disj2(eq(y_, 0), eq(y_, 1)));
  SimplifyOptions opts;
  opts.maxCubes = 2;
  EXPECT_EQ(simplify(f, solver_, opts), f);
}

}  // namespace
}  // namespace faure::smt
