// Tests for substitution and DNF conversion (smt/transform.hpp).
#include "smt/transform.hpp"

#include <gtest/gtest.h>

namespace faure::smt {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 1);
  CVarId z_ = reg_.declareInt("z_", 0, 1);

  Formula eq(CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
  }
};

TEST_F(TransformTest, SubstituteFoldsAtom) {
  Formula f = eq(x_, 1);
  EXPECT_TRUE(substitute(f, {{x_, Value::fromInt(1)}}).isTrue());
  EXPECT_TRUE(substitute(f, {{x_, Value::fromInt(0)}}).isFalse());
  EXPECT_EQ(substitute(f, {{y_, Value::fromInt(0)}}), f);
}

TEST_F(TransformTest, SubstituteIntoLinear) {
  Formula f = Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}, {z_, 1}}, -1),
                           CmpOp::Eq);  // x+y+z = 1
  Formula g = substitute(f, {{x_, Value::fromInt(0)}});
  // y + z = 1 remains.
  EXPECT_EQ(g, Formula::lin(LinTerm::make({{y_, 1}, {z_, 1}}, -1), CmpOp::Eq));
  Formula h = substitute(
      g, {{y_, Value::fromInt(1)}, {z_, Value::fromInt(0)}});
  EXPECT_TRUE(h.isTrue());
}

TEST_F(TransformTest, SubstitutePartialAndIntoBoolean) {
  Formula f = Formula::disj2(Formula::conj2(eq(x_, 1), eq(y_, 1)),
                             eq(z_, 0));
  Formula g = substitute(f, {{z_, Value::fromInt(1)}});
  EXPECT_EQ(g, Formula::conj2(eq(x_, 1), eq(y_, 1)));
  Formula h = substitute(g, {{x_, Value::fromInt(1)}});
  EXPECT_EQ(h, eq(y_, 1));
}

TEST_F(TransformTest, DnfOfAtomIsSingleton) {
  auto dnf = toDnf(eq(x_, 1), 10);
  ASSERT_TRUE(dnf.has_value());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].size(), 1u);
}

TEST_F(TransformTest, DnfDistributes) {
  // (a | b) & (c | d) -> 4 cubes.
  Formula f = Formula::conj2(Formula::disj2(eq(x_, 0), eq(x_, 1)),
                             Formula::disj2(eq(y_, 0), eq(y_, 1)));
  auto dnf = toDnf(f, 10);
  ASSERT_TRUE(dnf.has_value());
  EXPECT_EQ(dnf->size(), 4u);
}

TEST_F(TransformTest, DnfRespectsBudget) {
  // (a|b) & (c|d) & (e|f) -> 8 cubes; budget 4 must fail.
  Formula f = Formula::conj(
      {Formula::disj2(eq(x_, 0), eq(x_, 1)),
       Formula::disj2(eq(y_, 0), eq(y_, 1)),
       Formula::disj2(eq(z_, 0), eq(z_, 1))});
  EXPECT_FALSE(toDnf(f, 4).has_value());
  EXPECT_TRUE(toDnf(f, 8).has_value());
}

TEST_F(TransformTest, FromDnfRoundTrip) {
  Formula f = Formula::disj2(Formula::conj2(eq(x_, 1), eq(y_, 0)), eq(z_, 1));
  auto dnf = toDnf(f, 100);
  ASSERT_TRUE(dnf.has_value());
  EXPECT_EQ(fromDnf(*dnf), f);
}

TEST_F(TransformTest, DnfOfFalseIsEmpty) {
  auto dnf = toDnf(Formula::bottom(), 10);
  ASSERT_TRUE(dnf.has_value());
  EXPECT_TRUE(dnf->empty());
}

}  // namespace
}  // namespace faure::smt
