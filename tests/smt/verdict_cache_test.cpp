// Hash-consed formulas + the solver verdict cache (DESIGN.md §8).
//
// Covers the contract that makes caching invisible: pointer-identity of
// interned nodes, hit/miss/eviction bookkeeping, LRU order, the
// budget-trip exclusion (degraded Unknown is a resource outcome, never a
// verdict), registry-epoch invalidation, and the end-to-end promise that
// evaluation results and the logical solver.* counter stream are
// identical with the cache on or off at any thread count.
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "smt/interner.hpp"
#include "smt/solver.hpp"
#include "smt/verdict_cache.hpp"
#include "util/error.hpp"
#include "util/resource_guard.hpp"

namespace faure::smt {
namespace {

class VerdictCacheTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 1);

  static Formula eq(CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
  }
};

// ---------------------------------------------------------------------
// FormulaInterner: structural equality is pointer identity.

TEST_F(VerdictCacheTest, InternerSharesStructurallyEqualNodes) {
  Formula a = Formula::conj2(eq(x_, 1), eq(y_, 0));
  Formula b = Formula::conj2(eq(x_, 1), eq(y_, 0));
  EXPECT_EQ(&a.node(), &b.node());  // one shared node
  EXPECT_EQ(a, b);                  // operator== is that pointer compare

  Formula c = Formula::conj2(eq(x_, 1), eq(y_, 1));
  EXPECT_NE(&a.node(), &c.node());
  EXPECT_NE(a, c);
}

TEST_F(VerdictCacheTest, InternerSharesTrueAndFalseSingletons) {
  EXPECT_EQ(&Formula::top().node(), &Formula::top().node());
  EXPECT_EQ(&Formula::bottom().node(), &Formula::bottom().node());
  // Simplification reaches the same singletons.
  Formula t = Formula::disj2(Formula::top(), eq(x_, 1));
  EXPECT_EQ(&t.node(), &Formula::top().node());
}

TEST_F(VerdictCacheTest, InternerCountsHitsAndMisses) {
  FormulaInterner::Stats before = FormulaInterner::instance().stats();
  Formula a = Formula::conj2(eq(x_, 1), Formula::neg(eq(y_, 1)));
  Formula b = Formula::conj2(eq(x_, 1), Formula::neg(eq(y_, 1)));
  (void)a;
  (void)b;
  FormulaInterner::Stats after = FormulaInterner::instance().stats();
  EXPECT_GT(after.hits, before.hits);    // b's nodes all existed
  EXPECT_GE(after.misses, before.misses);
}

// ---------------------------------------------------------------------
// VerdictCache bookkeeping.

TEST_F(VerdictCacheTest, MissThenStoreThenHit) {
  VerdictCache cache(reg_, 8);
  Formula f = eq(x_, 1);
  EXPECT_FALSE(cache.lookupCheck(f).has_value());
  cache.storeCheck(f, Sat::Sat, 3);
  auto hit = cache.lookupCheck(f);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sat, Sat::Sat);
  EXPECT_EQ(hit->enumerations, 3u);
  VerdictCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(VerdictCacheTest, ImpliesKeysAreOrderedPairs) {
  VerdictCache cache(reg_, 8);
  Formula a = eq(x_, 1);
  Formula b = eq(y_, 1);
  cache.storeImplies(a, b, Sat::Unsat, 0);
  EXPECT_TRUE(cache.lookupImplies(a, b).has_value());
  EXPECT_FALSE(cache.lookupImplies(b, a).has_value());  // ordered
  // The pair key is also distinct from the single-formula key.
  EXPECT_FALSE(cache.lookupCheck(a).has_value());
}

TEST_F(VerdictCacheTest, LruEvictsLeastRecentlyUsed) {
  VerdictCache cache(reg_, 2);
  Formula a = eq(x_, 0);
  Formula b = eq(x_, 1);
  Formula c = eq(y_, 0);
  cache.storeCheck(a, Sat::Sat, 0);
  cache.storeCheck(b, Sat::Sat, 0);
  ASSERT_TRUE(cache.lookupCheck(a).has_value());  // a is now MRU
  cache.storeCheck(c, Sat::Sat, 0);               // evicts b, not a
  EXPECT_TRUE(cache.lookupCheck(a).has_value());
  EXPECT_FALSE(cache.lookupCheck(b).has_value());
  EXPECT_TRUE(cache.lookupCheck(c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST_F(VerdictCacheTest, ZeroCapacityNeverStores) {
  VerdictCache cache(reg_, 0);
  Formula f = eq(x_, 1);
  cache.storeCheck(f, Sat::Sat, 0);
  EXPECT_FALSE(cache.lookupCheck(f).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------
// Registry-epoch invalidation.

TEST_F(VerdictCacheTest, DomainMutationInvalidates) {
  CVarRegistry reg;
  CVarId v = reg.declareInt("v_", 0, 1);
  VerdictCache cache(reg, 8);
  Formula f = Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(2));
  cache.storeCheck(f, Sat::Unsat, 2);  // true for domain {0,1}
  ASSERT_TRUE(cache.lookupCheck(f).has_value());

  // Growing v's domain to include 2 flips the verdict: the cache must
  // drop everything rather than replay a stale Unsat.
  reg.setDomain(v, {Value::fromInt(0), Value::fromInt(1), Value::fromInt(2)});
  EXPECT_FALSE(cache.lookupCheck(f).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST_F(VerdictCacheTest, FreshDeclarationsDoNotInvalidate) {
  CVarRegistry reg;
  CVarId v = reg.declareInt("v_", 0, 1);
  VerdictCache cache(reg, 8);
  Formula f = Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(1));
  cache.storeCheck(f, Sat::Sat, 2);
  reg.declareInt("w_", 0, 7);  // cannot affect f's verdict
  EXPECT_TRUE(cache.lookupCheck(f).has_value());
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

// ---------------------------------------------------------------------
// Solver integration: hits replay the logical stream exactly.

TEST_F(VerdictCacheTest, SetVerdictCacheRejectsForeignRegistry) {
  CVarRegistry other;
  VerdictCache cache(other, 8);
  NativeSolver solver(reg_);
  EXPECT_THROW(solver.setVerdictCache(&cache), EvalError);
}

TEST_F(VerdictCacheTest, RepeatedChecksHitTheCache) {
  VerdictCache cache(reg_, 64);
  NativeSolver solver(reg_);
  solver.setVerdictCache(&cache);
  Formula f = Formula::conj2(eq(x_, 1), eq(x_, 0));  // unsat
  EXPECT_EQ(solver.check(f), Sat::Unsat);
  EXPECT_EQ(solver.check(f), Sat::Unsat);
  EXPECT_EQ(solver.check(f), Sat::Unsat);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Logical accounting is unchanged: three checks, three unsats.
  EXPECT_EQ(solver.stats().checks, 3u);
  EXPECT_EQ(solver.stats().unsat, 3u);
}

TEST_F(VerdictCacheTest, CachedStreamMatchesUncachedStream) {
  // The same check/implies sequence against a cached and an uncached
  // solver must produce identical SolverStats (minus wall time).
  VerdictCache cache(reg_, 64);
  NativeSolver cached(reg_);
  cached.setVerdictCache(&cache);
  NativeSolver plain(reg_);

  auto drive = [&](SolverBase& s) {
    Formula sat = Formula::disj2(eq(x_, 0), eq(x_, 1));
    Formula unsat = Formula::conj2(eq(y_, 0), eq(y_, 1));
    for (int i = 0; i < 3; ++i) {
      s.check(sat);
      s.check(unsat);
      s.implies(eq(x_, 1), Formula::disj2(eq(x_, 0), eq(x_, 1)));
      s.implies(eq(x_, 1), eq(y_, 1));
    }
  };
  drive(cached);
  drive(plain);
  EXPECT_EQ(cached.stats().checks, plain.stats().checks);
  EXPECT_EQ(cached.stats().unsat, plain.stats().unsat);
  EXPECT_EQ(cached.stats().unknown, plain.stats().unknown);
  EXPECT_EQ(cached.stats().enumerations, plain.stats().enumerations);
  EXPECT_EQ(cached.stats().budgetTrips, plain.stats().budgetTrips);
  EXPECT_GT(cache.stats().hits, 0u);  // the cache did real work
}

TEST_F(VerdictCacheTest, BudgetTrippedUnknownIsNotCached) {
  VerdictCache cache(reg_, 64);
  NativeSolver solver(reg_);
  solver.setVerdictCache(&cache);

  ResourceLimits limits;
  limits.maxSolverChecks = 2;
  ResourceGuard guard(limits);
  solver.setGuard(&guard);

  Formula f = Formula::disj2(eq(x_, 0), eq(x_, 1));
  EXPECT_EQ(solver.check(f), Sat::Sat);      // physical check, charge 1
  EXPECT_EQ(solver.check(f), Sat::Sat);      // cache hit, still charge 2
  Formula g = Formula::conj2(eq(y_, 0), eq(y_, 1));
  EXPECT_EQ(solver.check(g), Sat::Unknown);  // budget-tripped: degraded
  EXPECT_GT(solver.stats().budgetTrips, 0u);
  // The degraded Unknown must not be stored: an unconstrained solver
  // still decides g.
  EXPECT_FALSE(cache.lookupCheck(g).has_value());
  solver.setGuard(nullptr);
  EXPECT_EQ(solver.check(g), Sat::Unsat);
}

TEST_F(VerdictCacheTest, CacheHitStillChargesTheGuard) {
  // A replayed verdict charges the solver-check budget exactly like a
  // physical check, so governed runs degrade at the same point with the
  // cache on or off.
  VerdictCache cache(reg_, 64);
  Formula f = Formula::disj2(eq(x_, 0), eq(x_, 1));
  {
    NativeSolver warm(reg_);
    warm.setVerdictCache(&cache);
    EXPECT_EQ(warm.check(f), Sat::Sat);  // prime the cache
  }
  NativeSolver solver(reg_);
  solver.setVerdictCache(&cache);
  ResourceLimits limits;
  limits.maxSolverChecks = 1;
  ResourceGuard guard(limits);
  solver.setGuard(&guard);
  EXPECT_EQ(solver.check(f), Sat::Sat);      // hit, charges the budget
  EXPECT_EQ(solver.check(f), Sat::Unknown);  // budget exhausted: degraded
  EXPECT_GT(solver.stats().budgetTrips, 0u);
}

// ---------------------------------------------------------------------
// End to end: evaluation is byte-identical with the cache on or off,
// serial and parallel.

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

struct EvalRun {
  fl::EvalResult res;
  SolverStats solver;
};

class CachedEvalTest : public ::testing::Test {
 protected:
  static constexpr const char* kProgram =
      "R(a,b) :- E(a,b).\n"
      "R(a,b) :- E(a,c), R(c,b).\n";

  void loadChain(rel::Database& db, int n) {
    CVarId x = db.cvars().declareInt("x_", 0, 1);
    auto& e = db.create(anySchema("E", 2));
    for (int i = 0; i < n; ++i) {
      if (i % 3 == 0) {
        e.insert({Value::fromInt(i), Value::fromInt(i + 1)},
                 Formula::cmp(Value::cvar(x), CmpOp::Eq,
                              Value::fromInt(i % 2)));
      } else {
        e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
      }
    }
  }

  EvalRun eval(unsigned threads, size_t cacheEntries) {
    rel::Database db;
    loadChain(db, 12);
    NativeSolver solver(db.cvars());
    std::unique_ptr<VerdictCache> cache;
    if (cacheEntries > 0) {
      cache = std::make_unique<VerdictCache>(db.cvars(), cacheEntries);
      solver.setVerdictCache(cache.get());
    }
    fl::EvalOptions opts;
    opts.threads = threads;
    EvalRun r;
    r.res = fl::evalFaure(dl::parseProgram(kProgram, db.cvars()), db, &solver,
                          opts);
    r.solver = solver.stats();
    return r;
  }

  static void expectIdentical(const EvalRun& a, const EvalRun& b,
                              const std::string& label) {
    SCOPED_TRACE(label);
    ASSERT_EQ(a.res.idb.size(), b.res.idb.size());
    for (const auto& [name, table] : a.res.idb) {
      auto it = b.res.idb.find(name);
      ASSERT_NE(it, b.res.idb.end());
      const auto& rows = table.rows();
      const auto& other = it->second.rows();
      ASSERT_EQ(rows.size(), other.size()) << name;
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].vals, other[i].vals) << name << " row " << i;
        EXPECT_EQ(rows[i].cond, other[i].cond) << name << " row " << i;
      }
    }
    EXPECT_EQ(a.res.stats.derivations, b.res.stats.derivations);
    EXPECT_EQ(a.res.stats.inserted, b.res.stats.inserted);
    EXPECT_EQ(a.res.stats.prunedUnsat, b.res.stats.prunedUnsat);
    EXPECT_EQ(a.res.stats.iterations, b.res.stats.iterations);
    EXPECT_EQ(a.res.stats.solverChecks, b.res.stats.solverChecks);
    EXPECT_EQ(a.solver.checks, b.solver.checks);
    EXPECT_EQ(a.solver.unsat, b.solver.unsat);
    EXPECT_EQ(a.solver.unknown, b.solver.unknown);
    EXPECT_EQ(a.solver.enumerations, b.solver.enumerations);
  }
};

TEST_F(CachedEvalTest, CacheOnOffIdenticalAcrossThreadCounts) {
  EvalRun baseline = eval(1, 0);  // serial, no cache
  for (unsigned threads : {1u, 4u}) {
    for (size_t entries : {size_t{0}, size_t{1} << 12}) {
      if (threads == 1 && entries == 0) continue;
      EvalRun run = eval(threads, entries);
      expectIdentical(baseline, run,
                      "threads=" + std::to_string(threads) +
                          " cache=" + std::to_string(entries));
    }
  }
}

}  // namespace
}  // namespace faure::smt
