// Tests for existential projection (smt/transform.hpp,
// projectExistentials) — the quantifier-elimination step of the §5
// containment reduction.
#include <gtest/gtest.h>

#include "smt/solver.hpp"
#include "smt/transform.hpp"

namespace faure::smt {
namespace {

class ProjectTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId u_ = reg_.declare("u_", ValueType::Any);        // universal
  CVarId e1_ = reg_.declare("e1_", ValueType::Any);      // existential
  CVarId e2_ = reg_.declare("e2_", ValueType::Any);      // existential
  CVarId ef_ = reg_.declareInt("ef_", 0, 1);             // finite exist.
  NativeSolver solver_{reg_};

  Formula eq(CVarId a, Value b) {
    return Formula::cmp(Value::cvar(a), CmpOp::Eq, b);
  }
  Formula eqv(CVarId a, CVarId b) {
    return Formula::cmp(Value::cvar(a), CmpOp::Eq, Value::cvar(b));
  }
};

TEST_F(ProjectTest, NoExistentialsIsIdentity) {
  Formula f = eq(u_, Value::fromInt(1));
  EXPECT_EQ(projectExistentials(f, {}, reg_), f);
}

TEST_F(ProjectTest, EqualityBindingEliminates) {
  // ∃e1: e1 = Mkt ∧ u = e1  <=>  u = Mkt.
  Formula f = Formula::conj2(eq(e1_, Value::sym("Mkt")), eqv(u_, e1_));
  Formula p = projectExistentials(f, {e1_}, reg_);
  EXPECT_EQ(p, eq(u_, Value::sym("Mkt")));
}

TEST_F(ProjectTest, ChainedBindings) {
  // ∃e1,e2: e1 = e2 ∧ e2 = u ∧ e1 = CS  <=>  u = CS.
  Formula f = Formula::conj(
      {eqv(e1_, e2_), eqv(e2_, u_), eq(e1_, Value::sym("CS"))});
  Formula p = projectExistentials(f, {e1_, e2_}, reg_);
  EXPECT_TRUE(solver_.equivalent(p, eq(u_, Value::sym("CS"))));
}

TEST_F(ProjectTest, FullyExistentialCubeBecomesTrue) {
  // ∃e1: e1 = Mkt  <=>  true.
  Formula f = eq(e1_, Value::sym("Mkt"));
  EXPECT_TRUE(projectExistentials(f, {e1_}, reg_).isTrue());
}

TEST_F(ProjectTest, UnboundedDisequalityDrops) {
  // ∃e1: e1 != 7000 ∧ u = Mkt  <=>  u = Mkt (a witness always exists).
  Formula f = Formula::conj2(
      Formula::cmp(Value::cvar(e1_), CmpOp::Ne, Value::fromInt(7000)),
      eq(u_, Value::sym("Mkt")));
  EXPECT_EQ(projectExistentials(f, {e1_}, reg_), eq(u_, Value::sym("Mkt")));
}

TEST_F(ProjectTest, FiniteDomainResidualDropsCube) {
  // ef_ has domain {0,1}; a bare disequality on it is NOT dropped (the
  // projection is conservative) — the cube disappears.
  Formula f = Formula::conj2(
      Formula::cmp(Value::cvar(ef_), CmpOp::Ne, Value::fromInt(0)),
      eq(u_, Value::sym("Mkt")));
  EXPECT_TRUE(projectExistentials(f, {ef_}, reg_).isFalse());
}

TEST_F(ProjectTest, DisjunctionProjectsPerCube) {
  // (∃e1: e1 = u ∧ e1 = Mkt) ∨ (u = CS).
  Formula f = Formula::disj2(
      Formula::conj2(eqv(e1_, u_), eq(e1_, Value::sym("Mkt"))),
      eq(u_, Value::sym("CS")));
  Formula p = projectExistentials(f, {e1_}, reg_);
  EXPECT_TRUE(solver_.equivalent(
      p, Formula::disj2(eq(u_, Value::sym("Mkt")),
                        eq(u_, Value::sym("CS")))));
}

TEST_F(ProjectTest, ResultImpliesExistential) {
  // Soundness on a mixed case: result must imply ∃E.f, here checked by
  // hand on a formula where projection drops a cube.
  Formula f = Formula::disj2(
      Formula::conj2(eqv(e1_, u_), eq(e1_, Value::sym("Mkt"))),
      // unprojectable: ordered residual on existential
      Formula::cmp(Value::cvar(ef_), CmpOp::Ne, Value::fromInt(1)));
  Formula p = projectExistentials(f, {e1_, ef_}, reg_);
  EXPECT_EQ(p, eq(u_, Value::sym("Mkt")));  // second cube dropped
}

TEST_F(ProjectTest, ContradictionStaysFalse) {
  Formula f = Formula::conj2(eq(e1_, Value::sym("Mkt")),
                             eq(e1_, Value::sym("CS")));
  // Substituting e1 = Mkt folds Mkt = CS to false.
  EXPECT_TRUE(projectExistentials(f, {e1_}, reg_).isFalse());
}

}  // namespace
}  // namespace faure::smt
