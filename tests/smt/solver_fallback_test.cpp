// Solver fallback / incompleteness-envelope tests: DNF-overflow
// enumeration, Unknown answers on unbounded arithmetic, and the
// soundness contract (Unknown never replaces a decidable answer within
// the documented fragment).
#include <gtest/gtest.h>

#include "smt/solver.hpp"

namespace faure::smt {
namespace {

Formula bitEq(CVarId v, int64_t k) {
  return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
}

TEST(SolverFallbackTest, DnfOverflowFallsBackToEnumeration) {
  CVarRegistry reg;
  std::vector<CVarId> bits;
  for (int i = 0; i < 8; ++i) {
    bits.push_back(reg.declareInt("b" + std::to_string(i) + "_", 0, 1));
  }
  // (b0=0|b0=1) & ... & (b7=0|b7=1): DNF has 256 cubes.
  std::vector<Formula> parts;
  for (CVarId b : bits) {
    parts.push_back(Formula::disj2(bitEq(b, 0), bitEq(b, 1)));
  }
  Formula valid = Formula::conj(parts);
  NativeSolver::Options opts;
  opts.maxDnfCubes = 16;  // force the fallback
  NativeSolver solver(reg, opts);
  EXPECT_EQ(solver.check(valid), Sat::Sat);
  EXPECT_GE(solver.stats().enumerations, 1u);
  // And an unsatisfiable variant.
  parts.push_back(Formula::lin(
      LinTerm::make({{bits[0], 1}, {bits[1], 1}}, -5), CmpOp::Eq));
  EXPECT_EQ(solver.check(Formula::conj(parts)), Sat::Unsat);
}

TEST(SolverFallbackTest, DnfOverflowWithUnboundedVarIsUnknown) {
  CVarRegistry reg;
  CVarId p = reg.declare("p_", ValueType::Int);  // unbounded
  std::vector<CVarId> bits;
  for (int i = 0; i < 8; ++i) {
    bits.push_back(reg.declareInt("b" + std::to_string(i) + "_", 0, 1));
  }
  std::vector<Formula> parts;
  for (CVarId b : bits) {
    parts.push_back(Formula::disj2(bitEq(b, 0), bitEq(b, 1)));
  }
  parts.push_back(Formula::cmp(Value::cvar(p), CmpOp::Gt, Value::fromInt(0)));
  NativeSolver::Options opts;
  opts.maxDnfCubes = 16;
  NativeSolver solver(reg, opts);
  // Enumeration cannot cover p_: the solver must admit Unknown rather
  // than guess.
  EXPECT_EQ(solver.check(Formula::conj(parts)), Sat::Unknown);
}

TEST(SolverFallbackTest, MultiVarArithmeticOverUnboundedIsUnknown) {
  CVarRegistry reg;
  CVarId a = reg.declare("a_", ValueType::Int);
  CVarId b = reg.declare("b_", ValueType::Int);
  // a + b = 1 with both unbounded: satisfiable, but the native solver's
  // residual machinery cannot enumerate — expect Unknown (sound).
  Formula f = Formula::lin(LinTerm::make({{a, 1}, {b, 1}}, -1), CmpOp::Eq);
  NativeSolver solver(reg);
  EXPECT_EQ(solver.check(f), Sat::Unknown);
}

TEST(SolverFallbackTest, IntervalRefutationBeatsUnknown) {
  CVarRegistry reg;
  CVarId a = reg.declare("a_", ValueType::Int);
  CVarId b = reg.declare("b_", ValueType::Int);
  // a >= 10, b >= 10, a + b < 5: impossible by interval propagation even
  // though the variables are unbounded.
  Formula f = Formula::conj(
      {Formula::cmp(Value::cvar(a), CmpOp::Ge, Value::fromInt(10)),
       Formula::cmp(Value::cvar(b), CmpOp::Ge, Value::fromInt(10)),
       Formula::lin(LinTerm::make({{a, 1}, {b, 1}}, -5), CmpOp::Lt)});
  NativeSolver solver(reg);
  EXPECT_EQ(solver.check(f), Sat::Unsat);
}

TEST(SolverFallbackTest, BoundedIntervalEnumerates) {
  CVarRegistry reg;
  CVarId a = reg.declare("a_", ValueType::Int);
  CVarId b = reg.declare("b_", ValueType::Int);
  // Comparisons bound both variables into small intervals; the residual
  // a + b = 7 is then decidable by enumeration.
  Formula bounds = Formula::conj(
      {Formula::cmp(Value::cvar(a), CmpOp::Ge, Value::fromInt(0)),
       Formula::cmp(Value::cvar(a), CmpOp::Le, Value::fromInt(3)),
       Formula::cmp(Value::cvar(b), CmpOp::Ge, Value::fromInt(0)),
       Formula::cmp(Value::cvar(b), CmpOp::Le, Value::fromInt(3))});
  NativeSolver solver(reg);
  EXPECT_EQ(solver.check(Formula::conj2(
                bounds, Formula::lin(LinTerm::make({{a, 1}, {b, 1}}, -7),
                                     CmpOp::Ne))),
            Sat::Sat);
  EXPECT_EQ(solver.check(Formula::conj2(
                bounds, Formula::lin(LinTerm::make({{a, 1}, {b, 1}}, -7),
                                     CmpOp::Eq))),
            Sat::Unsat);  // max is 6
}

TEST(SolverFallbackTest, UnknownIsConservativeForImplies) {
  CVarRegistry reg;
  CVarId a = reg.declare("a_", ValueType::Int);
  CVarId b = reg.declare("b_", ValueType::Int);
  Formula f = Formula::lin(LinTerm::make({{a, 1}, {b, 1}}, -1), CmpOp::Eq);
  NativeSolver solver(reg);
  // a+b=1 does imply a+b!=2, but deciding it needs more than the native
  // fragment: implies() must answer false (conservative), never true
  // wrongly — and definitely not throw.
  EXPECT_FALSE(solver.implies(
      f, Formula::lin(LinTerm::make({{a, 1}, {b, 1}}, -2), CmpOp::Ne)));
}

TEST(SolverFallbackTest, StatsCountUnknown) {
  CVarRegistry reg;
  CVarId a = reg.declare("a_", ValueType::Int);
  CVarId b = reg.declare("b_", ValueType::Int);
  NativeSolver solver(reg);
  solver.check(Formula::lin(LinTerm::make({{a, 1}, {b, 1}}, -1), CmpOp::Eq));
  EXPECT_EQ(solver.stats().unknown, 1u);
}

}  // namespace
}  // namespace faure::smt
