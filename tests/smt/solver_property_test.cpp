// Property tests: the native solver must agree with brute-force model
// enumeration on randomly generated formulas over finite domains.
#include <gtest/gtest.h>

#include "smt/solver.hpp"
#include "util/rng.hpp"

namespace faure::smt {
namespace {

/// Generates a random formula over the given integer-bit variables.
Formula randomFormula(util::Rng& rng, const std::vector<CVarId>& vars,
                      int depth) {
  if (depth == 0 || rng.chance(0.4)) {
    // Leaf atom.
    switch (rng.below(3)) {
      case 0: {
        CVarId v = vars[rng.below(vars.size())];
        auto op = rng.chance(0.5) ? CmpOp::Eq : CmpOp::Ne;
        return Formula::cmp(Value::cvar(v), op,
                            Value::fromInt(rng.range(0, 1)));
      }
      case 1: {
        CVarId a = vars[rng.below(vars.size())];
        CVarId b = vars[rng.below(vars.size())];
        static const CmpOp ops[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                                    CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
        return Formula::cmp(Value::cvar(a), ops[rng.below(6)],
                            Value::cvar(b));
      }
      default: {
        // Linear sum over a random subset.
        std::vector<std::pair<CVarId, int64_t>> entries;
        for (CVarId v : vars) {
          if (rng.chance(0.6)) entries.emplace_back(v, rng.range(-2, 2));
        }
        static const CmpOp ops[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                                    CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
        return Formula::lin(LinTerm::make(entries, rng.range(-2, 2)),
                            ops[rng.below(6)]);
      }
    }
  }
  switch (rng.below(3)) {
    case 0:
      return Formula::conj2(randomFormula(rng, vars, depth - 1),
                            randomFormula(rng, vars, depth - 1));
    case 1:
      return Formula::disj2(randomFormula(rng, vars, depth - 1),
                            randomFormula(rng, vars, depth - 1));
    default:
      return Formula::neg(randomFormula(rng, vars, depth - 1));
  }
}

class SolverAgreesWithEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreesWithEnumeration, RandomFormulas) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 0x9e3779b9u + 1);
  CVarRegistry reg;
  std::vector<CVarId> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(reg.declareInt("v" + std::to_string(i) + "_", 0, 1));
  }
  NativeSolver solver(reg);
  for (int trial = 0; trial < 50; ++trial) {
    Formula f = randomFormula(rng, vars, 3);
    bool anyModel = false;
    ASSERT_TRUE(
        forEachModel(f, reg, vars, [&](const Assignment&) { anyModel = true; }));
    Sat got = solver.check(f);
    ASSERT_NE(got, Sat::Unknown)
        << "finite-domain formula should be decided: " << f.toString(&reg);
    EXPECT_EQ(got == Sat::Sat, anyModel)
        << "disagreement on " << f.toString(&reg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreesWithEnumeration,
                         ::testing::Range(0, 8));

class ImplicationAgreesWithEnumeration
    : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationAgreesWithEnumeration, RandomPairs) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 0x51ed2701u + 7);
  CVarRegistry reg;
  std::vector<CVarId> vars;
  for (int i = 0; i < 3; ++i) {
    vars.push_back(reg.declareInt("w" + std::to_string(i) + "_", 0, 1));
  }
  NativeSolver solver(reg);
  for (int trial = 0; trial < 30; ++trial) {
    Formula a = randomFormula(rng, vars, 2);
    Formula b = randomFormula(rng, vars, 2);
    // Ground truth: a implies b iff no model of a fails b.
    bool truth = true;
    forEachModel(a, reg, vars, [&](const Assignment& m) {
      if (!substitute(b, m).isTrue()) truth = false;
    });
    EXPECT_EQ(solver.implies(a, b), truth)
        << "a = " << a.toString(&reg) << "\nb = " << b.toString(&reg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationAgreesWithEnumeration,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace faure::smt
