// Budget-exhaustion behaviour of the solver backends: exceeding
// maxDnfCubes/maxEnum or a ResourceGuard budget must degrade to
// Sat::Unknown — never a wrong answer, never unbounded work — and the
// degradation must be visible in SolverStats.
#include <gtest/gtest.h>

#include "smt/solver.hpp"
#include "smt/z3_solver.hpp"
#include "util/resource_guard.hpp"

namespace faure::smt {
namespace {

class SolverBudgetTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  // Unbounded-domain variables: once the DNF budget trips, enumeration
  // cannot rescue the answer and the solver must say Unknown.
  CVarId p_ = reg_.declare("p_", ValueType::Int);
  CVarId q_ = reg_.declare("q_", ValueType::Int);
  CVarId r_ = reg_.declare("r_", ValueType::Int);
  // Bounded {0,1} variables for the enumeration-budget cases.
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 1);

  static Formula eq(CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
  }
  /// (p=1 | p=2) & (q=1 | q=2) & (r=1 | r=2): 8 DNF cubes, satisfiable.
  Formula wideSat() const {
    return Formula::conj({Formula::disj2(eq(p_, 1), eq(p_, 2)),
                          Formula::disj2(eq(q_, 1), eq(q_, 2)),
                          Formula::disj2(eq(r_, 1), eq(r_, 2))});
  }

  /// wideSat() & p=3: unsatisfiable however the cubes fall.
  Formula wideUnsat() const { return Formula::conj2(wideSat(), eq(p_, 3)); }
};

TEST_F(SolverBudgetTest, DnfOverflowOnUnboundedVarsDegradesToUnknown) {
  NativeSolver::Options opts;
  opts.maxDnfCubes = 4;  // wideSat needs 8
  NativeSolver solver(reg_, opts);
  EXPECT_EQ(solver.check(wideSat()), Sat::Unknown);
  EXPECT_EQ(solver.stats().checks, 1u);
  EXPECT_EQ(solver.stats().unknown, 1u);
}

TEST_F(SolverBudgetTest, DnfOverflowNeverFlipsTheAnswer) {
  // With a roomy budget both formulas are decided; with a tiny budget the
  // answers may only weaken to Unknown, never invert.
  NativeSolver full(reg_);
  ASSERT_EQ(full.check(wideSat()), Sat::Sat);
  ASSERT_EQ(full.check(wideUnsat()), Sat::Unsat);

  NativeSolver::Options tiny;
  tiny.maxDnfCubes = 2;
  NativeSolver solver(reg_, tiny);
  EXPECT_NE(solver.check(wideSat()), Sat::Unsat);
  EXPECT_NE(solver.check(wideUnsat()), Sat::Sat);
}

TEST_F(SolverBudgetTest, EnumBudgetExhaustionDegradesToUnknown) {
  // Over finite {0,1} domains the DNF overflow falls back to model
  // enumeration; an enumeration budget of 1 assignment cannot cover
  // 2 variables, so the answer degrades to Unknown.
  NativeSolver::Options opts;
  opts.maxDnfCubes = 1;
  opts.maxEnum = 1;
  NativeSolver solver(reg_, opts);
  Formula f = Formula::conj2(Formula::disj2(eq(x_, 0), eq(x_, 1)),
                             Formula::disj2(eq(y_, 0), eq(y_, 1)));
  EXPECT_EQ(solver.check(f), Sat::Unknown);
  EXPECT_EQ(solver.stats().unknown, 1u);

  // The same formula with enough enumeration budget is decided Sat.
  NativeSolver::Options enough;
  enough.maxDnfCubes = 1;
  enough.maxEnum = 16;
  NativeSolver big(reg_, enough);
  EXPECT_EQ(big.check(f), Sat::Sat);
}

TEST_F(SolverBudgetTest, UnknownIsCountedOncePerDegradedCheck) {
  NativeSolver::Options opts;
  opts.maxDnfCubes = 2;
  NativeSolver solver(reg_, opts);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(solver.check(wideSat()), Sat::Unknown);
  }
  EXPECT_EQ(solver.stats().checks, 3u);
  EXPECT_EQ(solver.stats().unknown, 3u);
}

TEST_F(SolverBudgetTest, SolverCheckBudgetDegradesFurtherChecks) {
  ResourceLimits limits;
  limits.maxSolverChecks = 2;
  ResourceGuard guard(limits);
  NativeSolver solver(reg_);
  solver.setGuard(&guard);
  EXPECT_EQ(solver.check(eq(x_, 0)), Sat::Sat);
  EXPECT_EQ(solver.check(eq(x_, 7)), Sat::Unsat);
  // Budget exhausted: checks still answer — Unknown — and count trips.
  EXPECT_EQ(solver.check(eq(x_, 0)), Sat::Unknown);
  EXPECT_EQ(solver.check(Formula::top()), Sat::Unknown);
  EXPECT_EQ(solver.stats().checks, 4u);
  EXPECT_EQ(solver.stats().unknown, 2u);
  EXPECT_EQ(solver.stats().budgetTrips, 2u);
  EXPECT_EQ(guard.trippedBudget(), Budget::SolverChecks);
}

TEST_F(SolverBudgetTest, FaultInjectionExercisesTheDegradedPath) {
  ResourceGuard guard;
  guard.failAfter(1);
  NativeSolver solver(reg_);
  solver.setGuard(&guard);
  EXPECT_EQ(solver.check(eq(x_, 0)), Sat::Unknown);
  EXPECT_EQ(solver.stats().budgetTrips, 1u);
  EXPECT_EQ(guard.trippedBudget(), Budget::Fault);
  // implies()/definitelyUnsat() stay conservative under degradation:
  // x=0 => x<1 needs a solver check, which the tripped guard degrades.
  Formula lt1 = Formula::cmp(Value::cvar(x_), CmpOp::Lt, Value::fromInt(1));
  EXPECT_FALSE(solver.implies(eq(x_, 0), lt1));
  solver.setGuard(nullptr);
  EXPECT_TRUE(solver.implies(eq(x_, 0), lt1));
}

TEST_F(SolverBudgetTest, DetachedGuardRestoresNormalService) {
  ResourceGuard guard;
  guard.failAfter(1);
  NativeSolver solver(reg_);
  solver.setGuard(&guard);
  EXPECT_EQ(solver.check(eq(x_, 0)), Sat::Unknown);
  solver.setGuard(nullptr);
  EXPECT_EQ(solver.check(eq(x_, 0)), Sat::Sat);
}

TEST_F(SolverBudgetTest, Z3BackendHonoursTheGuard) {
  if (!z3Available()) GTEST_SKIP() << "built without Z3";
  auto z3 = makeZ3Solver(reg_);
  ResourceGuard guard;
  guard.failAfter(1);
  z3->setGuard(&guard);
  EXPECT_EQ(z3->check(eq(x_, 0)), Sat::Unknown);
  EXPECT_EQ(z3->stats().budgetTrips, 1u);
  z3->setGuard(nullptr);
  EXPECT_EQ(z3->check(eq(x_, 0)), Sat::Sat);
}

}  // namespace
}  // namespace faure::smt
