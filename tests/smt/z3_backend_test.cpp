// Differential tests: the Z3 backend (when built in) must agree with the
// native solver on the condition fragment.
#include <gtest/gtest.h>

#include "smt/solver.hpp"
#include "smt/z3_solver.hpp"
#include "util/rng.hpp"

namespace faure::smt {
namespace {

TEST(Z3Backend, AvailabilityMatchesFactory) {
  CVarRegistry reg;
  auto solver = makeZ3Solver(reg);
  EXPECT_EQ(z3Available(), solver != nullptr);
}

class Z3Agreement : public ::testing::TestWithParam<int> {};

TEST_P(Z3Agreement, AgreesWithNativeOnBits) {
  CVarRegistry reg;
  std::vector<CVarId> vars;
  for (int i = 0; i < 3; ++i) {
    vars.push_back(reg.declareInt("b" + std::to_string(i) + "_", 0, 1));
  }
  auto z3 = makeZ3Solver(reg);
  if (z3 == nullptr) GTEST_SKIP() << "built without Z3";
  NativeSolver native(reg);
  util::Rng rng(static_cast<uint64_t>(GetParam()) + 99);

  auto atom = [&](CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), rng.chance(0.5) ? CmpOp::Eq
                                                        : CmpOp::Ne,
                        Value::fromInt(k));
  };
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Formula> parts;
    for (int i = 0; i < 4; ++i) {
      parts.push_back(atom(vars[rng.below(3)], rng.range(0, 1)));
    }
    parts.push_back(Formula::lin(
        LinTerm::make({{vars[0], 1}, {vars[1], 1}, {vars[2], 1}},
                      rng.range(-3, 0)),
        CmpOp::Eq));
    Formula f = rng.chance(0.5) ? Formula::conj(parts) : Formula::disj(parts);
    Sat a = native.check(f);
    Sat b = z3->check(f);
    ASSERT_NE(a, Sat::Unknown);
    ASSERT_NE(b, Sat::Unknown);
    EXPECT_EQ(a, b) << f.toString(&reg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Z3Agreement, ::testing::Range(0, 4));

TEST(Z3Backend, SymbolDomains) {
  CVarRegistry reg;
  CVarId s = reg.declare("s_", ValueType::Sym,
                         {Value::sym("Mkt"), Value::sym("R&D")});
  auto z3 = makeZ3Solver(reg);
  if (z3 == nullptr) GTEST_SKIP() << "built without Z3";
  Formula out = Formula::conj2(
      Formula::cmp(Value::cvar(s), CmpOp::Ne, Value::sym("Mkt")),
      Formula::cmp(Value::cvar(s), CmpOp::Ne, Value::sym("R&D")));
  EXPECT_EQ(z3->check(out), Sat::Unsat);
  EXPECT_EQ(z3->check(Formula::cmp(Value::cvar(s), CmpOp::Ne,
                                   Value::sym("Mkt"))),
            Sat::Sat);
}

TEST(Z3Backend, CrossTypeEqualityIsFalse) {
  CVarRegistry reg;
  CVarId v = reg.declare("v_", ValueType::Any);
  auto z3 = makeZ3Solver(reg);
  if (z3 == nullptr) GTEST_SKIP() << "built without Z3";
  Formula f = Formula::conj2(
      Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(3)),
      Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::sym("three")));
  EXPECT_EQ(z3->check(f), Sat::Unsat);
}

}  // namespace
}  // namespace faure::smt
