// Tests for the per-worker solver pool (smt/solver_pool.hpp): clones
// agree with the prototype on every verdict, lanes are independent,
// pooled stats add up, and the delegated-accounting replay path
// (SolverBase::consumeDelegated) reproduces a serial solver's logical
// counter stream.
#include "smt/solver_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "smt/verdict_cache.hpp"
#include "util/error.hpp"
#include "util/resource_guard.hpp"
#include "value/value.hpp"

namespace faure::smt {
namespace {

class SolverPoolTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 3);

  Formula eq(CVarId v, int64_t n) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(n));
  }
};

TEST_F(SolverPoolTest, NativePrototypeClonesOneSolverPerLane) {
  NativeSolver proto(reg_);
  SolverPool pool(proto, 4);
  EXPECT_TRUE(pool.concurrent());
  EXPECT_EQ(pool.lanes(), 4u);
}

TEST_F(SolverPoolTest, EveryLaneMatchesThePrototypeVerdict) {
  NativeSolver proto(reg_);
  SolverPool pool(proto, 3);
  const Formula cases[] = {
      eq(x_, 0),                                    // Sat
      Formula::conj2(eq(x_, 0), eq(x_, 1)),          // Unsat
      Formula::conj2(eq(y_, 2), eq(x_, 1)),          // Sat
      Formula::conj2(eq(y_, 5), Formula::top()), // Unsat (domain)
  };
  for (const Formula& f : cases) {
    Sat want = proto.check(f);
    for (size_t lane = 0; lane < pool.lanes(); ++lane) {
      SolverPool::Outcome o = pool.check(lane, f);
      EXPECT_EQ(o.verdict, want);
      EXPECT_GE(o.seconds, 0.0);
    }
  }
}

TEST_F(SolverPoolTest, PooledStatsSumAcrossLanesWithoutTouchingPrototype) {
  NativeSolver proto(reg_);
  SolverPool pool(proto, 2);
  pool.check(0, eq(x_, 0));
  pool.check(1, Formula::conj2(eq(x_, 0), eq(x_, 1)));
  pool.check(1, eq(y_, 3));
  SolverStats pooled = pool.pooledStats();
  EXPECT_EQ(pooled.checks, 3u);
  EXPECT_EQ(pooled.unsat, 1u);
  // Physical pool work never shows up in the prototype's logical stream.
  EXPECT_EQ(proto.stats().checks, 0u);
}

TEST_F(SolverPoolTest, ConsumeDelegatedMatchesALocalCheckLogically) {
  // Two solvers over the same registry: one checks locally, the other
  // replays the pool outcome. Their stats must agree field for field —
  // this is the invariant keeping `solver.*` serial-identical.
  NativeSolver local(reg_);
  NativeSolver replay(reg_);
  SolverPool pool(replay, 1);

  Formula f = Formula::conj2(eq(x_, 0), eq(x_, 1));
  Sat direct = local.check(f);
  SolverPool::Outcome o = pool.check(0, f);
  Sat replayed = replay.consumeDelegated(o.verdict, o.seconds, o.enumerations);

  EXPECT_EQ(replayed, direct);
  EXPECT_EQ(replay.stats().checks, local.stats().checks);
  EXPECT_EQ(replay.stats().unsat, local.stats().unsat);
  EXPECT_EQ(replay.stats().unknown, local.stats().unknown);
  EXPECT_EQ(replay.stats().enumerations, local.stats().enumerations);
}

TEST_F(SolverPoolTest, ConsumeDelegatedHonoursATrippedCheckBudget) {
  // Replay charges the replaying solver's guard exactly like check():
  // past the budget the delegated verdict degrades to Unknown with a
  // budget-trip recorded — same machine-readable degradation as serial.
  NativeSolver solver(reg_);
  ResourceLimits limits;
  limits.maxSolverChecks = 1;
  ResourceGuard guard(limits);
  solver.setGuard(&guard);

  EXPECT_EQ(solver.consumeDelegated(Sat::Unsat, 0.0, 0), Sat::Unsat);
  EXPECT_EQ(solver.consumeDelegated(Sat::Unsat, 0.0, 0), Sat::Unknown);
  EXPECT_EQ(solver.stats().budgetTrips, 1u);
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.reason(), "solver-checks(limit=1)");
}

/// Lane instances that consume a shared failure budget: while the
/// budget lasts, a check raises SolverBackendError; after that every
/// instance behaves like NativeSolver. Cloned lanes (and the lanes
/// cloned to replace dead ones) share the same budget, so tests can
/// script "first lane check dies, its replacement survives".
class SharedFailureBudgetSolver : public NativeSolver {
 public:
  SharedFailureBudgetSolver(const CVarRegistry& reg,
                            std::shared_ptr<std::atomic<int>> budget)
      : NativeSolver(reg), budget_(std::move(budget)) {}

  std::unique_ptr<SolverBase> cloneForLane(size_t) const override {
    return std::make_unique<SharedFailureBudgetSolver>(registry(), budget_);
  }

 protected:
  Sat checkUncached(const Formula& f) override {
    if (budget_->fetch_sub(1) > 0) {
      throw SolverBackendError("shared-flaky", "injected lane death");
    }
    return NativeSolver::checkUncached(f);
  }

 private:
  std::shared_ptr<std::atomic<int>> budget_;
};

TEST_F(SolverPoolTest, DeadLaneIsReplacedAndTheCheckRetriedOnce) {
  auto budget = std::make_shared<std::atomic<int>>(1);
  SharedFailureBudgetSolver proto(reg_, budget);
  SolverPool pool(proto, 2);
  ASSERT_TRUE(pool.concurrent());

  // First check kills the lane; the pool clones a replacement, retries,
  // and the replacement (budget spent) answers correctly.
  SolverPool::Outcome o =
      pool.check(0, Formula::conj2(eq(x_, 0), eq(x_, 1)));
  EXPECT_EQ(o.verdict, Sat::Unsat);
  EXPECT_EQ(pool.laneReplacements(), 1u);
  EXPECT_EQ(pool.poisonedChecks(), 0u);

  // The replaced lane keeps serving checks afterwards.
  EXPECT_EQ(pool.check(0, eq(x_, 0)).verdict, Sat::Sat);
  EXPECT_EQ(pool.laneReplacements(), 1u);
}

TEST_F(SolverPoolTest, SecondLaneDeathPoisonsOnlyTheCheck) {
  auto budget = std::make_shared<std::atomic<int>>(2);
  SharedFailureBudgetSolver proto(reg_, budget);
  SolverPool pool(proto, 2);

  // Both the lane and its replacement die on this formula: the outcome
  // degrades to Unknown (conservative for the replay path)...
  SolverPool::Outcome o =
      pool.check(1, Formula::conj2(eq(x_, 0), eq(x_, 1)));
  EXPECT_EQ(o.verdict, Sat::Unknown);
  EXPECT_EQ(pool.laneReplacements(), 2u);
  EXPECT_EQ(pool.poisonedChecks(), 1u);

  // ...but the lane itself is healthy again and the pool keeps going.
  EXPECT_EQ(pool.check(1, eq(x_, 0)).verdict, Sat::Sat);
  EXPECT_EQ(pool.check(0, eq(x_, 1)).verdict, Sat::Sat);
  EXPECT_EQ(pool.poisonedChecks(), 1u);
}

TEST_F(SolverPoolTest, ReplacementLanesInheritTheSharedVerdictCache) {
  VerdictCache cache(reg_, 64);
  auto budget = std::make_shared<std::atomic<int>>(1);
  SharedFailureBudgetSolver proto(reg_, budget);
  proto.setVerdictCache(&cache);
  SolverPool pool(proto, 1);

  Formula f = Formula::conj2(eq(x_, 0), eq(x_, 1));
  EXPECT_EQ(pool.check(0, f).verdict, Sat::Unsat);  // dies, replaced
  EXPECT_EQ(pool.laneReplacements(), 1u);
  ASSERT_EQ(cache.stats().entries, 1u);  // replacement stored its verdict
  uint64_t hitsBefore = cache.stats().hits;
  EXPECT_EQ(pool.check(0, f).verdict, Sat::Unsat);
  EXPECT_EQ(cache.stats().hits, hitsBefore + 1);
}

TEST_F(SolverPoolTest, SharedPrototypeFallbackStaysUsable) {
  // Lanes = 0 forces the shared-prototype mode the Z3 backend would get:
  // not concurrent, but check() still answers through the prototype.
  NativeSolver proto(reg_);
  SolverPool pool(proto, 0);
  EXPECT_FALSE(pool.concurrent());
  SolverPool::Outcome o = pool.check(0, Formula::conj2(eq(x_, 0), eq(x_, 1)));
  EXPECT_EQ(o.verdict, Sat::Unsat);
}

}  // namespace
}  // namespace faure::smt
