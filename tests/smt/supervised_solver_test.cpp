// Tests for the fault-tolerance layer (smt/supervised_solver.hpp):
// zero-fault bit-identity with the unwrapped backend, bounded retry,
// failover, circuit breaker, quarantine, deterministic chaos injection,
// cache-admission gating for supervision-shaped verdicts, and the typed
// SolverBackendError surface (requireZ3Solver).
#include "smt/supervised_solver.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "smt/verdict_cache.hpp"
#include "smt/z3_solver.hpp"
#include "util/error.hpp"
#include "util/fault_plan.hpp"
#include "util/resource_guard.hpp"
#include "value/value.hpp"

namespace faure::smt {
namespace {

/// A backend that raises SolverBackendError for its first `failFirst`
/// checks, then behaves exactly like NativeSolver. Gives the breaker /
/// retry / quarantine tests precise control without probability draws.
class FlakySolver : public NativeSolver {
 public:
  FlakySolver(const CVarRegistry& reg, int failFirst)
      : NativeSolver(reg), remainingFailures_(failFirst) {}

  int calls = 0;  // attempts that reached this backend

 protected:
  Sat checkUncached(const Formula& f) override {
    ++calls;
    if (remainingFailures_ != 0) {
      if (remainingFailures_ > 0) --remainingFailures_;
      throw SolverBackendError("flaky", "injected engine failure");
    }
    return NativeSolver::checkUncached(f);
  }

 private:
  int remainingFailures_;  // < 0: fail forever
};

/// A working backend whose lanes cannot be cloned (like Z3).
class UncloneableSolver : public NativeSolver {
 public:
  explicit UncloneableSolver(const CVarRegistry& reg) : NativeSolver(reg) {}
  std::unique_ptr<SolverBase> cloneForLane(size_t) const override {
    return nullptr;
  }
};

class SupervisedSolverTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 3);

  Formula eq(CVarId v, int64_t n) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(n));
  }

  std::vector<Formula> sampleFormulas() {
    return {
        eq(x_, 0),                                          // Sat
        Formula::conj2(eq(x_, 0), eq(x_, 1)),               // Unsat
        Formula::conj2(eq(y_, 2), eq(x_, 1)),               // Sat
        Formula::disj2(eq(y_, 5), Formula::bottom()),       // Unsat (domain)
        Formula::conj2(eq(y_, 3), Formula::neg(eq(x_, 0))), // Sat
    };
  }

  /// Wrapper with one owned native backend and the given options.
  std::unique_ptr<SupervisedSolver> makeSupervised(SupervisionOptions opts) {
    auto sup = std::make_unique<SupervisedSolver>(reg_, std::move(opts));
    sup->addBackend("native", std::make_unique<NativeSolver>(reg_));
    return sup;
  }
};

TEST_F(SupervisedSolverTest, ZeroFaultsIsBitIdenticalToUnwrappedBackend) {
  NativeSolver bare(reg_);
  auto supPtr = makeSupervised({});
  SupervisedSolver& sup = *supPtr;
  for (const Formula& f : sampleFormulas()) {
    EXPECT_EQ(sup.check(f), bare.check(f));
  }
  // The logical counter stream matches field for field (seconds are
  // wall-clock and excluded by design).
  EXPECT_EQ(sup.stats().checks, bare.stats().checks);
  EXPECT_EQ(sup.stats().unsat, bare.stats().unsat);
  EXPECT_EQ(sup.stats().unknown, bare.stats().unknown);
  EXPECT_EQ(sup.stats().enumerations, bare.stats().enumerations);
  EXPECT_EQ(sup.stats().budgetTrips, bare.stats().budgetTrips);
  const SupervisionStats& s = sup.supervisionStats();
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.failovers, 0u);
  EXPECT_EQ(s.degradedUnknown, 0u);
}

TEST_F(SupervisedSolverTest, TransientBackendErrorIsRetriedToSuccess) {
  SupervisionOptions opts;
  opts.maxRetries = 2;
  SupervisedSolver sup(reg_, opts);
  auto flaky = std::make_unique<FlakySolver>(reg_, 1);
  FlakySolver* probe = flaky.get();
  sup.addBackend("flaky", std::move(flaky));

  EXPECT_EQ(sup.check(Formula::conj2(eq(x_, 0), eq(x_, 1))), Sat::Unsat);
  EXPECT_EQ(probe->calls, 2);  // one failure + one successful retry
  EXPECT_EQ(sup.supervisionStats().retries, 1u);
  EXPECT_EQ(sup.supervisionStats().failovers, 0u);
  EXPECT_EQ(sup.stats().checks, 1u);  // one *logical* check
  EXPECT_EQ(sup.stats().unsat, 1u);
}

TEST_F(SupervisedSolverTest, PermanentPrimaryFailureFailsOverToNative) {
  NativeSolver bare(reg_);
  SupervisionOptions opts;
  opts.maxRetries = 1;
  SupervisedSolver sup(reg_, opts);
  sup.addBackend("flaky", std::make_unique<FlakySolver>(reg_, -1));
  sup.addNativeFallback();

  for (const Formula& f : sampleFormulas()) {
    EXPECT_EQ(sup.check(f), bare.check(f));
  }
  EXPECT_GE(sup.supervisionStats().failovers, 1u);
  EXPECT_EQ(sup.supervisionStats().degradedUnknown, 0u);
  // Failed attempts do no solver work, so the logical stream still
  // matches a healthy backend's.
  EXPECT_EQ(sup.stats().checks, bare.stats().checks);
  EXPECT_EQ(sup.stats().unsat, bare.stats().unsat);
  EXPECT_EQ(sup.stats().enumerations, bare.stats().enumerations);
}

TEST_F(SupervisedSolverTest, ExhaustedChainDegradesToUnknownNeverThrows) {
  SupervisionOptions opts;
  opts.maxRetries = 1;
  SupervisedSolver sup(reg_, opts);
  sup.addBackend("flaky", std::make_unique<FlakySolver>(reg_, -1));

  Sat v = Sat::Sat;
  EXPECT_NO_THROW(v = sup.check(eq(x_, 0)));
  EXPECT_EQ(v, Sat::Unknown);
  EXPECT_EQ(sup.supervisionStats().degradedUnknown, 1u);
  EXPECT_EQ(sup.stats().unknown, 1u);
}

TEST_F(SupervisedSolverTest, BreakerOpensAndSkipsTheBackendDuringCooldown) {
  SupervisionOptions opts;
  opts.maxRetries = 0;
  opts.breakerThreshold = 2;
  opts.breakerCooldownChecks = 3;
  opts.quarantineThreshold = 100;  // keep quarantine out of the picture
  SupervisedSolver sup(reg_, opts);
  auto flaky = std::make_unique<FlakySolver>(reg_, -1);
  FlakySolver* probe = flaky.get();
  sup.addBackend("flaky", std::move(flaky));
  sup.addNativeFallback();

  Formula f = eq(x_, 0);
  sup.check(f);
  EXPECT_EQ(sup.breakerState(0), SupervisedSolver::BreakerState::Closed);
  sup.check(f);  // second consecutive failure trips the breaker
  EXPECT_EQ(sup.breakerState(0), SupervisedSolver::BreakerState::Open);
  EXPECT_EQ(sup.supervisionStats().breakerOpens, 1u);

  // While open, checks skip the backend entirely (and still answer via
  // the fallback).
  int callsWhenOpened = probe->calls;
  EXPECT_EQ(sup.check(f), Sat::Sat);
  EXPECT_EQ(sup.check(f), Sat::Sat);
  EXPECT_EQ(probe->calls, callsWhenOpened);

  // Cooldown spent: one half-open probe reaches the backend again; its
  // failure re-opens the breaker.
  sup.check(f);
  EXPECT_EQ(probe->calls, callsWhenOpened + 1);
  EXPECT_EQ(sup.breakerState(0), SupervisedSolver::BreakerState::Open);
  EXPECT_EQ(sup.supervisionStats().breakerOpens, 2u);
}

TEST_F(SupervisedSolverTest, HalfOpenProbeSuccessClosesTheBreaker) {
  SupervisionOptions opts;
  opts.maxRetries = 0;
  opts.breakerThreshold = 1;
  opts.breakerCooldownChecks = 2;
  SupervisedSolver sup(reg_, opts);
  sup.addBackend("flaky", std::make_unique<FlakySolver>(reg_, 1));
  sup.addNativeFallback();

  Formula f = eq(x_, 0);
  sup.check(f);  // fails once: breaker opens
  EXPECT_EQ(sup.breakerState(0), SupervisedSolver::BreakerState::Open);
  sup.check(f);  // cooldown
  sup.check(f);  // half-open probe: the backend recovered
  EXPECT_EQ(sup.breakerState(0), SupervisedSolver::BreakerState::Closed);
  EXPECT_EQ(sup.supervisionStats().breakerResets, 1u);
}

TEST_F(SupervisedSolverTest, QueriesThatKeepKillingABackendAreQuarantined) {
  SupervisionOptions opts;
  opts.maxRetries = 0;
  opts.breakerThreshold = 100;  // keep the breaker out of the picture
  opts.quarantineThreshold = 2;
  SupervisedSolver sup(reg_, opts);
  auto flaky = std::make_unique<FlakySolver>(reg_, -1);
  FlakySolver* probe = flaky.get();
  sup.addBackend("flaky", std::move(flaky));
  sup.addNativeFallback();

  Formula killer = Formula::conj2(eq(x_, 0), eq(y_, 1));
  sup.check(killer);
  sup.check(killer);  // second hard failure quarantines the query
  EXPECT_EQ(sup.supervisionStats().quarantined, 1u);

  int callsBefore = probe->calls;
  EXPECT_EQ(sup.check(killer), Sat::Sat);  // straight to the fallback
  EXPECT_EQ(probe->calls, callsBefore);
  EXPECT_EQ(sup.supervisionStats().quarantineSkips, 1u);
}

TEST_F(SupervisedSolverTest, SupervisionShapedVerdictsNeverEnterTheCache) {
  SupervisionOptions opts;
  opts.maxRetries = 0;
  SupervisedSolver sup(reg_, opts);
  sup.addBackend("flaky", std::make_unique<FlakySolver>(reg_, -1));
  sup.addNativeFallback();
  VerdictCache cache(reg_, 64);
  sup.setVerdictCache(&cache);

  Formula f = Formula::conj2(eq(x_, 0), eq(x_, 1));
  EXPECT_EQ(sup.check(f), Sat::Unsat);   // correct — but via failover
  EXPECT_EQ(cache.stats().entries, 0u);  // so it must not be memoized
  EXPECT_EQ(sup.check(f), Sat::Unsat);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_GE(sup.supervisionStats().failovers, 2u);
}

TEST_F(SupervisedSolverTest, CleanVerdictsAreStillCachedNormally) {
  auto supPtr = makeSupervised({});
  SupervisedSolver& sup = *supPtr;
  VerdictCache cache(reg_, 64);
  sup.setVerdictCache(&cache);

  Formula f = Formula::conj2(eq(x_, 0), eq(x_, 1));
  EXPECT_EQ(sup.check(f), Sat::Unsat);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(sup.check(f), Sat::Unsat);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(SupervisedSolverTest, InjectedTimeoutsCountWatchdogTripsAndFailOver) {
  util::FaultSpec spec;
  spec.timeout = 1.0;  // every attempt against the primary times out
  spec.clearsOnRetry = false;
  auto plan = std::make_shared<util::FaultPlan>(42);
  plan->configure("flaky", spec);

  NativeSolver bare(reg_);
  SupervisionOptions opts;
  opts.maxRetries = 1;
  opts.chaos = plan;
  SupervisedSolver sup(reg_, opts);
  auto flaky = std::make_unique<FlakySolver>(reg_, 0);  // healthy, in fact
  FlakySolver* probe = flaky.get();
  sup.addBackend("flaky", std::move(flaky));
  sup.addNativeFallback();

  Formula f = eq(x_, 0);
  EXPECT_EQ(sup.check(f), bare.check(f));
  EXPECT_EQ(probe->calls, 0);  // faults fire before the backend is touched
  EXPECT_EQ(sup.supervisionStats().watchdogTrips, 2u);  // attempt + retry
  EXPECT_EQ(sup.supervisionStats().faultsInjected, 2u);
  EXPECT_EQ(sup.supervisionStats().failovers, 1u);
}

TEST_F(SupervisedSolverTest, SolverCheckBudgetDegradesExactlyLikeUnwrapped) {
  auto runWithBudget = [&](SolverBase& solver) {
    ResourceLimits limits;
    limits.maxSolverChecks = 2;
    ResourceGuard guard(limits);
    solver.setGuard(&guard);
    std::vector<Sat> out;
    for (const Formula& f : sampleFormulas()) out.push_back(solver.check(f));
    solver.setGuard(nullptr);
    return out;
  };
  NativeSolver bare(reg_);
  auto supPtr = makeSupervised({});
  SupervisedSolver& sup = *supPtr;
  EXPECT_EQ(runWithBudget(sup), runWithBudget(bare));
  EXPECT_EQ(sup.stats().budgetTrips, bare.stats().budgetTrips);
  EXPECT_EQ(sup.stats().unknown, bare.stats().unknown);
}

TEST_F(SupervisedSolverTest, BackoffSleepsAreDeterministicAndBounded) {
  std::vector<double> delays;
  SupervisionOptions opts;
  opts.maxRetries = 2;
  opts.backoffBaseMs = 4.0;
  opts.backoffMaxMs = 100.0;
  opts.sleeper = [&delays](double ms) { delays.push_back(ms); };
  auto run = [&] {
    SupervisedSolver sup(reg_, opts);
    sup.addBackend("flaky", std::make_unique<FlakySolver>(reg_, 2));
    EXPECT_EQ(sup.check(eq(x_, 0)), Sat::Sat);
  };
  run();
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_GE(delays[0], 2.0);  // 4·2^0·[0.5, 1.0)
  EXPECT_LT(delays[0], 4.0);
  EXPECT_GE(delays[1], 4.0);  // 4·2^1·[0.5, 1.0)
  EXPECT_LT(delays[1], 8.0);

  std::vector<double> first = delays;
  delays.clear();
  run();  // same seed, same key, same attempts → same jitter
  EXPECT_EQ(delays, first);
}

TEST_F(SupervisedSolverTest, DefaultChaosPlanIsOutputTransparent) {
  // The CI chaos oracle: defaultChaos(seed) faults only the primary and
  // clears on retry, so with a native fallback every verdict matches a
  // fault-free run — only supervise counters differ.
  NativeSolver bare(reg_);
  SupervisionOptions opts;
  opts.chaos = util::FaultPlan::defaultChaos(20260807);
  opts.seed = 20260807;
  SupervisedSolver sup(reg_, opts);
  sup.addBackend("primary", std::make_unique<NativeSolver>(reg_));
  sup.addNativeFallback();

  std::vector<Formula> formulas;
  for (int i = 0; i <= 3; ++i) {
    formulas.push_back(eq(y_, i));
    formulas.push_back(Formula::conj2(eq(y_, i), eq(x_, 1)));
    formulas.push_back(Formula::conj2(eq(y_, i), Formula::neg(eq(y_, i))));
  }
  for (const Formula& f : formulas) {
    EXPECT_EQ(sup.check(f), bare.check(f));
  }
  EXPECT_EQ(sup.stats().checks, bare.stats().checks);
  EXPECT_EQ(sup.stats().unsat, bare.stats().unsat);
  EXPECT_EQ(sup.stats().unknown, bare.stats().unknown);
  EXPECT_EQ(sup.stats().enumerations, bare.stats().enumerations);
}

TEST_F(SupervisedSolverTest, FaultPlanDecisionsIgnoreCallOrder) {
  auto plan = util::FaultPlan::defaultChaos(7);
  const uint64_t keys[] = {11, 22, 33, 44, 55, 66, 77, 88};
  std::vector<util::FaultKind> forward;
  for (uint64_t k : keys) {
    forward.push_back(plan->decide(util::FaultPlan::kPrimaryTag, k, 0));
  }
  // Re-query in reverse and repeatedly: a pure function of the key, so
  // scheduling (call order, thread interleaving) cannot change it.
  for (int round = 0; round < 3; ++round) {
    for (size_t j = 8; j-- > 0;) {
      EXPECT_EQ(plan->decide(util::FaultPlan::kPrimaryTag, keys[j], 0),
                forward[j]);
    }
  }
}

TEST_F(SupervisedSolverTest, FromEnvReadsTheSupervisionVariables) {
  // The suite may itself run under ambient chaos (tools/ci.sh chaos
  // stage exports FAURE_CHAOS_SEED); this test owns the env knobs.
  for (const char* var : {"FAURE_RETRIES", "FAURE_SOLVER_TIMEOUT_MS",
                          "FAURE_FAILOVER", "FAURE_CHAOS_SEED"}) {
    ::unsetenv(var);
  }
  ::setenv("FAURE_RETRIES", "5", 1);
  ::setenv("FAURE_CHAOS_SEED", "99", 1);
  SupervisionOptions opts = SupervisionOptions::fromEnv();
  ::unsetenv("FAURE_RETRIES");
  ::unsetenv("FAURE_CHAOS_SEED");
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.maxRetries, 5);
  ASSERT_NE(opts.chaos, nullptr);
  EXPECT_EQ(opts.chaos->seed(), 99u);
  EXPECT_TRUE(opts.failover);  // chaos implies a native last resort

  SupervisionOptions off = SupervisionOptions::fromEnv();
  EXPECT_FALSE(off.enabled);
}

TEST_F(SupervisedSolverTest, CloneForLaneClonesTheWholeChain) {
  SupervisionOptions opts;
  opts.maxRetries = 1;
  SupervisedSolver sup(reg_, opts);
  sup.addBackend("a", std::make_unique<NativeSolver>(reg_));
  sup.addBackend("b", std::make_unique<NativeSolver>(reg_));

  std::unique_ptr<SolverBase> clone = sup.cloneForLane(3);
  ASSERT_NE(clone, nullptr);
  for (const Formula& f : sampleFormulas()) {
    EXPECT_EQ(clone->check(f), sup.check(f));
  }
  auto* typed = dynamic_cast<SupervisedSolver*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->backends(), 2u);
}

TEST_F(SupervisedSolverTest, ChainsWithUncloneableBackendsDoNotClone) {
  SupervisedSolver sup(reg_, {});
  sup.addBackend("stuck", std::make_unique<UncloneableSolver>(reg_));
  EXPECT_EQ(sup.cloneForLane(0), nullptr);
}

TEST_F(SupervisedSolverTest, TakeBackendRestoresTheAdoptedCache) {
  VerdictCache cache(reg_, 64);
  auto native = std::make_unique<NativeSolver>(reg_);
  native->setVerdictCache(&cache);

  SupervisedSolver sup(reg_, {});
  sup.addBackend("native", std::move(native));
  EXPECT_EQ(sup.verdictCache(), &cache);  // adopted at the wrapper
  EXPECT_EQ(sup.backend(0).verdictCache(), nullptr);

  std::unique_ptr<SolverBase> unwrapped = sup.takeBackend(0);
  EXPECT_EQ(unwrapped->verdictCache(), &cache);  // handed back
  EXPECT_EQ(sup.verdictCache(), nullptr);
  EXPECT_EQ(sup.backends(), 0u);
}

TEST_F(SupervisedSolverTest, BorrowedBackendWiringIsRestoredOnDestruction) {
  VerdictCache cache(reg_, 64);
  NativeSolver borrowed(reg_);
  borrowed.setVerdictCache(&cache);
  {
    SupervisedSolver sup(reg_, {});
    sup.addBackend("borrowed", &borrowed);
    EXPECT_EQ(borrowed.verdictCache(), nullptr);  // stripped for the wrap
    EXPECT_EQ(sup.verdictCache(), &cache);
    EXPECT_EQ(sup.check(eq(x_, 0)), Sat::Sat);
  }
  EXPECT_EQ(borrowed.verdictCache(), &cache);  // restored on destruction
}

TEST_F(SupervisedSolverTest, RequireZ3SolverThrowsATypedErrorWithoutZ3) {
  if (z3Available()) {
    EXPECT_NE(requireZ3Solver(reg_), nullptr);
    return;
  }
  try {
    requireZ3Solver(reg_);
    FAIL() << "expected SolverBackendError";
  } catch (const SolverBackendError& e) {
    EXPECT_EQ(e.backend(), "z3");
    EXPECT_NE(std::string(e.what()).find("z3"), std::string::npos);
  }
}

}  // namespace
}  // namespace faure::smt
