// Unit tests for the condition-formula AST and its constructor
// normalization (smt/formula.hpp).
#include "smt/formula.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace faure::smt {
namespace {

using faure::Value;

class FormulaTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 1);
  CVarId p_ = reg_.declare("p_", ValueType::Int);

  Value xv() const { return Value::cvar(x_); }
  Value yv() const { return Value::cvar(y_); }
  Value pv() const { return Value::cvar(p_); }
};

TEST_F(FormulaTest, DefaultIsTrue) {
  Formula f;
  EXPECT_TRUE(f.isTrue());
  EXPECT_EQ(f, Formula::top());
}

TEST_F(FormulaTest, ConstantComparisonFolds) {
  EXPECT_TRUE(Formula::cmp(Value::fromInt(3), CmpOp::Eq, Value::fromInt(3))
                  .isTrue());
  EXPECT_TRUE(Formula::cmp(Value::fromInt(3), CmpOp::Eq, Value::fromInt(4))
                  .isFalse());
  EXPECT_TRUE(Formula::cmp(Value::fromInt(3), CmpOp::Lt, Value::fromInt(4))
                  .isTrue());
}

TEST_F(FormulaTest, SymbolEqualityFolds) {
  EXPECT_TRUE(
      Formula::cmp(Value::sym("Mkt"), CmpOp::Eq, Value::sym("Mkt")).isTrue());
  EXPECT_TRUE(
      Formula::cmp(Value::sym("Mkt"), CmpOp::Eq, Value::sym("CS")).isFalse());
  EXPECT_TRUE(
      Formula::cmp(Value::sym("Mkt"), CmpOp::Ne, Value::sym("CS")).isTrue());
}

TEST_F(FormulaTest, OrderedComparisonOnSymbolsThrows) {
  EXPECT_THROW(
      Formula::cmp(Value::sym("A"), CmpOp::Lt, Value::sym("B")), TypeError);
}

TEST_F(FormulaTest, SameVariableFolds) {
  EXPECT_TRUE(Formula::cmp(xv(), CmpOp::Eq, xv()).isTrue());
  EXPECT_TRUE(Formula::cmp(xv(), CmpOp::Ne, xv()).isFalse());
  EXPECT_TRUE(Formula::cmp(xv(), CmpOp::Le, xv()).isTrue());
  EXPECT_TRUE(Formula::cmp(xv(), CmpOp::Lt, xv()).isFalse());
}

TEST_F(FormulaTest, NormalizesConstantToRight) {
  Formula a = Formula::cmp(Value::fromInt(5), CmpOp::Lt, xv());
  Formula b = Formula::cmp(xv(), CmpOp::Gt, Value::fromInt(5));
  EXPECT_EQ(a, b);
}

TEST_F(FormulaTest, NormalizesVariableOrder) {
  Formula a = Formula::cmp(yv(), CmpOp::Eq, xv());
  Formula b = Formula::cmp(xv(), CmpOp::Eq, yv());
  EXPECT_EQ(a, b);
}

TEST_F(FormulaTest, ConjunctionFlattensAndDedups) {
  Formula atom = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  Formula f = Formula::conj({atom, Formula::conj({atom, Formula::top()})});
  EXPECT_EQ(f, atom);
}

TEST_F(FormulaTest, ConjunctionOrderInsensitive) {
  Formula a = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  Formula b = Formula::cmp(yv(), CmpOp::Eq, Value::fromInt(0));
  EXPECT_EQ(Formula::conj({a, b}), Formula::conj({b, a}));
  EXPECT_EQ(Formula::disj({a, b}), Formula::disj({b, a}));
}

TEST_F(FormulaTest, ConjunctionWithFalseIsFalse) {
  Formula a = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  EXPECT_TRUE(Formula::conj({a, Formula::bottom()}).isFalse());
}

TEST_F(FormulaTest, ConjunctionOfComplementsIsFalse) {
  Formula a = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  EXPECT_TRUE(Formula::conj({a, Formula::neg(a)}).isFalse());
}

TEST_F(FormulaTest, DisjunctionOfComplementsIsTrue) {
  Formula a = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  EXPECT_TRUE(Formula::disj({a, Formula::neg(a)}).isTrue());
}

TEST_F(FormulaTest, NegationPushesIntoComparison) {
  Formula a = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  Formula na = Formula::neg(a);
  EXPECT_EQ(na, Formula::cmp(xv(), CmpOp::Ne, Value::fromInt(1)));
  EXPECT_EQ(Formula::neg(na), a);
}

TEST_F(FormulaTest, DeMorgan) {
  Formula a = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  Formula b = Formula::cmp(yv(), CmpOp::Eq, Value::fromInt(0));
  Formula f = Formula::neg(Formula::conj({a, b}));
  EXPECT_EQ(f, Formula::disj({Formula::neg(a), Formula::neg(b)}));
}

TEST_F(FormulaTest, LinearFoldsConstant) {
  EXPECT_TRUE(Formula::lin(LinTerm::make({}, 0), CmpOp::Eq).isTrue());
  EXPECT_TRUE(Formula::lin(LinTerm::make({}, 1), CmpOp::Eq).isFalse());
  EXPECT_TRUE(Formula::lin(LinTerm::make({}, -1), CmpOp::Lt).isTrue());
}

TEST_F(FormulaTest, LinearLowersSingleUnitVariable) {
  // x - 1 = 0 should lower to x = 1.
  Formula f = Formula::lin(LinTerm::make({{x_, 1}}, -1), CmpOp::Eq);
  EXPECT_EQ(f, Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1)));
  // -x + 1 = 0 also lowers to x = 1.
  Formula g = Formula::lin(LinTerm::make({{x_, -1}}, 1), CmpOp::Eq);
  EXPECT_EQ(g, Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1)));
}

TEST_F(FormulaTest, LinTermArithmetic) {
  LinTerm a = LinTerm::make({{x_, 1}, {y_, 2}}, 3);
  LinTerm b = LinTerm::make({{y_, 2}, {x_, 1}}, 3);
  EXPECT_EQ(a, b);
  LinTerm diff = a.minus(b);
  EXPECT_TRUE(diff.isConstant());
  EXPECT_EQ(diff.cst, 0);
  LinTerm sum = a.plus(a);
  EXPECT_EQ(sum, a.scaled(2));
}

TEST_F(FormulaTest, LinTermMergesDuplicateEntries) {
  LinTerm t = LinTerm::make({{x_, 1}, {x_, 2}, {y_, 1}, {y_, -1}}, 0);
  ASSERT_EQ(t.coefs.size(), 1u);
  EXPECT_EQ(t.coefs[0].first, x_);
  EXPECT_EQ(t.coefs[0].second, 3);
}

TEST_F(FormulaTest, ToStringUsesRegistryNames) {
  Formula f = Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1));
  EXPECT_EQ(f.toString(&reg_), "x_ = 1");
  Formula g = Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}}, -1), CmpOp::Eq);
  EXPECT_EQ(g.toString(&reg_), "x_ + y_ - 1 = 0");
}

TEST_F(FormulaTest, CollectVars) {
  Formula f = Formula::conj2(
      Formula::cmp(xv(), CmpOp::Eq, Value::fromInt(1)),
      Formula::lin(LinTerm::make({{y_, 1}, {p_, 1}}, 0), CmpOp::Ge));
  std::vector<CVarId> vars;
  f.collectVars(vars);
  EXPECT_EQ(vars.size(), 3u);
}

}  // namespace
}  // namespace faure::smt
