// Unit tests for the native condition solver (smt/solver.hpp).
#include "smt/solver.hpp"

#include <gtest/gtest.h>

namespace faure::smt {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declareInt("x_", 0, 1);
  CVarId y_ = reg_.declareInt("y_", 0, 1);
  CVarId z_ = reg_.declareInt("z_", 0, 1);
  CVarId s_ = reg_.declare("s_", ValueType::Sym,
                           {Value::sym("Mkt"), Value::sym("R&D")});
  CVarId p_ = reg_.declare("p_", ValueType::Int);  // unbounded port
  CVarId q_ = reg_.declare("q_", ValueType::Any);  // untyped, unbounded
  NativeSolver solver_{reg_};

  Formula eq(CVarId v, int64_t k) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(k));
  }
  Formula eqSym(CVarId v, const char* s) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::sym(s));
  }
  Formula vv(CVarId a, CmpOp op, CVarId b) {
    return Formula::cmp(Value::cvar(a), op, Value::cvar(b));
  }
};

TEST_F(SolverTest, Trivia) {
  EXPECT_EQ(solver_.check(Formula::top()), Sat::Sat);
  EXPECT_EQ(solver_.check(Formula::bottom()), Sat::Unsat);
}

TEST_F(SolverTest, SimpleAtoms) {
  EXPECT_EQ(solver_.check(eq(x_, 1)), Sat::Sat);
  EXPECT_EQ(solver_.check(eq(x_, 7)), Sat::Unsat);  // outside {0,1}
  EXPECT_EQ(solver_.check(Formula::conj2(eq(x_, 1), eq(x_, 0))), Sat::Unsat);
  EXPECT_EQ(solver_.check(Formula::disj2(eq(x_, 1), eq(x_, 0))), Sat::Sat);
}

TEST_F(SolverTest, EqualityChains) {
  // x = y, y = z, x = 1, z = 0 -> unsat.
  Formula f = Formula::conj({vv(x_, CmpOp::Eq, y_), vv(y_, CmpOp::Eq, z_),
                             eq(x_, 1), eq(z_, 0)});
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
  Formula g = Formula::conj({vv(x_, CmpOp::Eq, y_), vv(y_, CmpOp::Eq, z_),
                             eq(x_, 1), eq(z_, 1)});
  EXPECT_EQ(solver_.check(g), Sat::Sat);
}

TEST_F(SolverTest, DisequalityOnMergedClassIsUnsat) {
  Formula f = Formula::conj({vv(x_, CmpOp::Eq, y_), vv(x_, CmpOp::Ne, y_)});
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
}

TEST_F(SolverTest, DisequalityPigeonhole) {
  // Domain {0,1} cannot 3-color x != y, y != z, x != z.
  Formula f = Formula::conj({vv(x_, CmpOp::Ne, y_), vv(y_, CmpOp::Ne, z_),
                             vv(x_, CmpOp::Ne, z_)});
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
  // Two variables are fine.
  EXPECT_EQ(solver_.check(vv(x_, CmpOp::Ne, y_)), Sat::Sat);
}

TEST_F(SolverTest, ExcludedDomainExhaustion) {
  Formula f = Formula::conj2(
      Formula::cmp(Value::cvar(s_), CmpOp::Ne, Value::sym("Mkt")),
      Formula::cmp(Value::cvar(s_), CmpOp::Ne, Value::sym("R&D")));
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
}

TEST_F(SolverTest, TypeMismatchIsUnsat) {
  // An Int-typed variable cannot equal a symbol.
  EXPECT_EQ(solver_.check(eqSym(x_, "Mkt")), Sat::Unsat);
  // Nor can a Sym-domain variable take a value outside its domain.
  EXPECT_EQ(solver_.check(eqSym(s_, "CS")), Sat::Unsat);
  EXPECT_EQ(solver_.check(eqSym(s_, "Mkt")), Sat::Sat);
}

TEST_F(SolverTest, UnboundedIntervals) {
  Formula f = Formula::conj2(
      Formula::cmp(Value::cvar(p_), CmpOp::Gt, Value::fromInt(80)),
      Formula::cmp(Value::cvar(p_), CmpOp::Lt, Value::fromInt(80)));
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
  Formula g = Formula::conj2(
      Formula::cmp(Value::cvar(p_), CmpOp::Ge, Value::fromInt(80)),
      Formula::cmp(Value::cvar(p_), CmpOp::Le, Value::fromInt(80)));
  EXPECT_EQ(solver_.check(g), Sat::Sat);  // p = 80
  Formula h = Formula::conj(
      {g, Formula::cmp(Value::cvar(p_), CmpOp::Ne, Value::fromInt(80))});
  EXPECT_EQ(solver_.check(h), Sat::Unsat);
}

TEST_F(SolverTest, PortExclusionsStaySatisfiable) {
  // p != 80, p != 344, p != 7000 over unbounded ints: satisfiable.
  Formula f = Formula::conj(
      {Formula::cmp(Value::cvar(p_), CmpOp::Ne, Value::fromInt(80)),
       Formula::cmp(Value::cvar(p_), CmpOp::Ne, Value::fromInt(344)),
       Formula::cmp(Value::cvar(p_), CmpOp::Ne, Value::fromInt(7000))});
  EXPECT_EQ(solver_.check(f), Sat::Sat);
}

TEST_F(SolverTest, LinearSumOverBits) {
  // x+y+z = 1 over {0,1}^3: satisfiable.
  Formula sum1 =
      Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}, {z_, 1}}, -1), CmpOp::Eq);
  EXPECT_EQ(solver_.check(sum1), Sat::Sat);
  // x+y+z = 5: unsatisfiable.
  Formula sum5 =
      Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}, {z_, 1}}, -5), CmpOp::Eq);
  EXPECT_EQ(solver_.check(sum5), Sat::Unsat);
  // x+y+z = 1 and x = 1 forces y = z = 0: still satisfiable; adding y = 1
  // contradicts.
  EXPECT_EQ(solver_.check(Formula::conj({sum1, eq(x_, 1)})), Sat::Sat);
  EXPECT_EQ(solver_.check(Formula::conj({sum1, eq(x_, 1), eq(y_, 1)})),
            Sat::Unsat);
}

TEST_F(SolverTest, LinearOrderedOverBits) {
  // y + z < 2 fails only when y = z = 1.
  Formula f = Formula::lin(LinTerm::make({{y_, 1}, {z_, 1}}, -2), CmpOp::Lt);
  EXPECT_EQ(solver_.check(f), Sat::Sat);
  EXPECT_EQ(solver_.check(Formula::conj({f, eq(y_, 1), eq(z_, 1)})),
            Sat::Unsat);
}

TEST_F(SolverTest, CoefficientDivisibility) {
  // 2x = 1 has no integer solution.
  Formula f = Formula::lin(LinTerm::make({{p_, 2}}, -1), CmpOp::Eq);
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
  // 2x = 4 -> x = 2.
  Formula g = Formula::lin(LinTerm::make({{p_, 2}}, -4), CmpOp::Eq);
  EXPECT_EQ(solver_.check(g), Sat::Sat);
  EXPECT_EQ(solver_.check(Formula::conj(
                {g, Formula::cmp(Value::cvar(p_), CmpOp::Ne,
                                 Value::fromInt(2))})),
            Sat::Unsat);
}

TEST_F(SolverTest, IntervalRefutationOnUnboundedVars) {
  // p >= 10, q' unbounded... p + 1 <= 5 with p >= 10: unsat by intervals.
  Formula f = Formula::conj2(
      Formula::cmp(Value::cvar(p_), CmpOp::Ge, Value::fromInt(10)),
      Formula::lin(LinTerm::make({{p_, 1}}, -5), CmpOp::Le));
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
}

TEST_F(SolverTest, MixedDnfAcrossDisjunction) {
  // (x=1 | y=1) & x=0 & y=0 -> unsat.
  Formula f = Formula::conj({Formula::disj2(eq(x_, 1), eq(y_, 1)), eq(x_, 0),
                             eq(y_, 0)});
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
}

TEST_F(SolverTest, ImpliesAndEquivalent) {
  Formula sum1 =
      Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}, {z_, 1}}, -1), CmpOp::Eq);
  Formula xOnly = Formula::conj({eq(x_, 1), eq(y_, 0), eq(z_, 0)});
  EXPECT_TRUE(solver_.implies(xOnly, sum1));
  EXPECT_FALSE(solver_.implies(sum1, xOnly));
  // x+y+z=1 over bits is equivalent to "exactly one is 1".
  Formula exactlyOne = Formula::disj(
      {Formula::conj({eq(x_, 1), eq(y_, 0), eq(z_, 0)}),
       Formula::conj({eq(x_, 0), eq(y_, 1), eq(z_, 0)}),
       Formula::conj({eq(x_, 0), eq(y_, 0), eq(z_, 1)})});
  EXPECT_TRUE(solver_.equivalent(sum1, exactlyOne));
}

TEST_F(SolverTest, UntypedVariableJoinsBothWorlds) {
  // q_ = 1 and q_ = Mkt cannot hold together.
  Formula f = Formula::conj2(eq(q_, 1), eqSym(q_, "Mkt"));
  EXPECT_EQ(solver_.check(f), Sat::Unsat);
  EXPECT_EQ(solver_.check(eqSym(q_, "Mkt")), Sat::Sat);
}

TEST_F(SolverTest, VarVarOrderedComparison) {
  // x < y over {0,1} forces x=0, y=1.
  Formula f = vv(x_, CmpOp::Lt, y_);
  EXPECT_EQ(solver_.check(f), Sat::Sat);
  EXPECT_EQ(solver_.check(Formula::conj({f, eq(y_, 0)})), Sat::Unsat);
  EXPECT_EQ(solver_.check(Formula::conj({f, eq(x_, 1)})), Sat::Unsat);
}

TEST_F(SolverTest, StatsAccumulate) {
  solver_.resetStats();
  solver_.check(eq(x_, 1));
  solver_.check(Formula::conj2(eq(x_, 1), eq(x_, 0)));
  EXPECT_EQ(solver_.stats().checks, 2u);
  EXPECT_EQ(solver_.stats().unsat, 1u);
}

TEST_F(SolverTest, ModelEnumeration) {
  Formula sum1 =
      Formula::lin(LinTerm::make({{x_, 1}, {y_, 1}, {z_, 1}}, -1), CmpOp::Eq);
  int count = 0;
  bool ok = forEachModel(sum1, reg_, {x_, y_, z_},
                         [&](const Assignment&) { ++count; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 3);
  // Enumeration over an unbounded variable is refused.
  EXPECT_FALSE(forEachModel(sum1, reg_, {x_, p_}, [](const Assignment&) {}));
}

}  // namespace
}  // namespace faure::smt
