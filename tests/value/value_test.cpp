// Unit tests for the c-domain value type and the c-variable registry
// (value/value.hpp).
#include "value/value.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/error.hpp"

namespace faure {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.kind(), Value::Kind::Int);
  EXPECT_EQ(v.asInt(), 0);
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::fromInt(-42);
  EXPECT_EQ(v.asInt(), -42);
  EXPECT_EQ(v.toString(), "-42");
  EXPECT_TRUE(v.isConstant());
  EXPECT_EQ(v.constantType(), ValueType::Int);
}

TEST(ValueTest, SymbolInterning) {
  Value a = Value::sym("Mkt");
  Value b = Value::sym("Mkt");
  Value c = Value::sym("CS");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.toString(), "Mkt");
}

TEST(ValueTest, PrefixParsing) {
  Value v = Value::parsePrefix("10.1.2.0/24");
  EXPECT_EQ(v.prefixLen(), 24);
  EXPECT_EQ(v.toString(), "10.1.2.0/24");
  Value host = Value::parsePrefix("1.2.3.4");
  EXPECT_EQ(host.prefixLen(), 32);
  EXPECT_EQ(host.toString(), "1.2.3.4");
}

TEST(ValueTest, PrefixNormalizesMaskedBits) {
  // Bits below the mask are zeroed so equal prefixes compare equal.
  Value a = Value::parsePrefix("10.1.2.255/24");
  Value b = Value::parsePrefix("10.1.2.0/24");
  EXPECT_EQ(a, b);
}

TEST(ValueTest, PrefixErrors) {
  EXPECT_THROW(Value::parsePrefix("1.2.3"), TypeError);
  EXPECT_THROW(Value::parsePrefix("1.2.3.999"), TypeError);
  EXPECT_THROW(Value::parsePrefix("1.2.3.4/40"), TypeError);
  EXPECT_THROW(Value::parsePrefix("abc"), TypeError);
}

TEST(ValueTest, PathsCompareByContent) {
  Value a = Value::path({"A", "B", "C"});
  Value b = Value::path({"A", "B", "C"});
  Value c = Value::path({"A", "B"});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.toString(), "[A B C]");
}

TEST(ValueTest, CrossKindInequality) {
  // An Int 0 and a Sym interned first (id 0) must not compare equal.
  Value i = Value::fromInt(0);
  Value s = Value::sym("zero");
  EXPECT_NE(i, s);
  std::set<Value> all{i, s, Value::path({"zero"}),
                      Value::parsePrefix("0.0.0.0")};
  EXPECT_EQ(all.size(), 4u);
}

TEST(ValueTest, HashingSupportsUnorderedContainers) {
  std::unordered_set<Value> set;
  for (int i = 0; i < 100; ++i) set.insert(Value::fromInt(i));
  set.insert(Value::sym("A"));
  set.insert(Value::path({"A"}));
  EXPECT_EQ(set.size(), 102u);
  EXPECT_TRUE(set.count(Value::fromInt(50)) == 1);
}

TEST(ValueTest, CVarIdentity) {
  Value a = Value::cvar(3);
  Value b = Value::cvar(3);
  Value c = Value::cvar(4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.isCVar());
  EXPECT_THROW(a.constantType(), TypeError);
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::vector<Value> vals{Value::fromInt(2),  Value::fromInt(1),
                          Value::sym("B"),    Value::sym("A"),
                          Value::cvar(1),     Value::cvar(0),
                          Value::path({"X"}), Value::parsePrefix("1.1.1.1")};
  std::sort(vals.begin(), vals.end());
  for (size_t i = 1; i < vals.size(); ++i) {
    EXPECT_FALSE(vals[i] < vals[i - 1]);
  }
}

TEST(CVarRegistryTest, DeclareAndFind) {
  CVarRegistry reg;
  CVarId x = reg.declare("x_", ValueType::Int);
  EXPECT_EQ(reg.find("x_"), x);
  EXPECT_EQ(reg.find("nope_"), CVarRegistry::kNotFound);
  EXPECT_EQ(reg.info(x).name, "x_");
  EXPECT_THROW(reg.declare("x_", ValueType::Int), TypeError);
  EXPECT_THROW(reg.info(99), TypeError);
}

TEST(CVarRegistryTest, DeclareIntBuildsDomain) {
  CVarRegistry reg;
  CVarId x = reg.declareInt("x_", -1, 2);
  EXPECT_EQ(reg.info(x).domain.size(), 4u);
  EXPECT_THROW(reg.declareInt("bad_", 3, 1), TypeError);
}

TEST(CVarRegistryTest, DomainsMustBeConstants) {
  CVarRegistry reg;
  EXPECT_THROW(reg.declare("x_", ValueType::Any, {Value::cvar(0)}),
               TypeError);
}

TEST(CVarRegistryTest, DeclareFreshAvoidsCollisions) {
  CVarRegistry reg;
  reg.declare("v$f", ValueType::Any);
  CVarId a = reg.declareFresh("v$f", ValueType::Any);
  CVarId b = reg.declareFresh("v$f", ValueType::Any);
  EXPECT_NE(a, b);
  EXPECT_NE(reg.info(a).name, reg.info(b).name);
}

TEST(CVarRegistryTest, WorldCount) {
  CVarRegistry reg;
  EXPECT_TRUE(reg.allFinite());  // vacuously
  EXPECT_EQ(reg.worldCount(), 1u);
  reg.declareInt("a_", 0, 1);
  reg.declareInt("b_", 0, 2);
  EXPECT_TRUE(reg.allFinite());
  EXPECT_EQ(reg.worldCount(), 6u);
  reg.declare("open_", ValueType::Int);
  EXPECT_FALSE(reg.allFinite());
  EXPECT_EQ(reg.worldCount(), 0u);
}

TEST(CVarRegistryTest, WorldCountClampsAtCap) {
  CVarRegistry reg;
  for (int i = 0; i < 40; ++i) {
    reg.declareInt("b" + std::to_string(i) + "_", 0, 1);
  }
  EXPECT_EQ(reg.worldCount(1000), 1000u);
}

TEST(CVarRegistryTest, RegistryIsCopyable) {
  // Canonical databases copy the source registry to preserve c-var ids.
  CVarRegistry a;
  CVarId x = a.declareInt("x_", 0, 1);
  CVarRegistry b = a;
  b.declare("extra_", ValueType::Sym);
  EXPECT_EQ(b.find("x_"), x);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

}  // namespace
}  // namespace faure
