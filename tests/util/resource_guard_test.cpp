// Unit tests for resource governance (util/resource_guard.hpp): budget
// accounting, deadline sampling, cancellation, fault injection, and the
// strict-mode error type.
#include "util/resource_guard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace faure {
namespace {

TEST(ResourceGuardTest, DefaultGuardIsInactiveAndNeverTrips) {
  ResourceGuard g;
  EXPECT_FALSE(g.active());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(g.chargeSteps());
    EXPECT_TRUE(g.chargeTuples());
    EXPECT_TRUE(g.chargeSolverChecks());
    EXPECT_TRUE(g.chargeMemory(1 << 20));
    EXPECT_TRUE(g.checkDeadline());
  }
  EXPECT_FALSE(g.tripped());
  EXPECT_EQ(g.trippedBudget(), Budget::None);
  EXPECT_EQ(g.reason(), "");
  // Inactive guards do not count work.
  EXPECT_EQ(g.counters().charges, 0u);
}

TEST(ResourceGuardTest, StepBudgetTripsExactlyAtTheLimit) {
  ResourceLimits limits;
  limits.maxSteps = 10;
  ResourceGuard g(limits);
  EXPECT_TRUE(g.active());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(g.chargeSteps());
  EXPECT_FALSE(g.chargeSteps());
  EXPECT_EQ(g.trippedBudget(), Budget::Steps);
  EXPECT_EQ(g.reason(), "steps(limit=10)");
  // Tripped guards stay tripped for every class.
  EXPECT_FALSE(g.chargeTuples());
  EXPECT_FALSE(g.checkDeadline());
}

TEST(ResourceGuardTest, BudgetClassesAreIndependent) {
  ResourceLimits limits;
  limits.maxTuples = 2;
  ResourceGuard g(limits);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(g.chargeSteps());
  EXPECT_TRUE(g.chargeTuples(2));
  EXPECT_FALSE(g.chargeTuples());
  EXPECT_EQ(g.trippedBudget(), Budget::Tuples);
}

TEST(ResourceGuardTest, MemoryChargesAccumulateBytes) {
  ResourceLimits limits;
  limits.maxMemoryBytes = 1024;
  ResourceGuard g(limits);
  EXPECT_TRUE(g.chargeMemory(512));
  EXPECT_TRUE(g.chargeMemory(512));
  EXPECT_FALSE(g.chargeMemory(1));
  EXPECT_EQ(g.trippedBudget(), Budget::Memory);
}

TEST(ResourceGuardTest, DeadlineTripsAndIsObservedPromptly) {
  ResourceLimits limits;
  limits.deadlineSeconds = 0.02;
  ResourceGuard g(limits);
  util::Stopwatch watch;
  // The engine charges in a loop; the guard must trip within ~2x the
  // configured deadline even with amortized clock sampling.
  while (g.chargeSteps()) {
    ASSERT_LT(watch.elapsed(), 2.0) << "deadline never observed";
  }
  EXPECT_EQ(g.trippedBudget(), Budget::Deadline);
  EXPECT_LT(watch.elapsed(), 2 * 0.02 + 0.05);
  EXPECT_EQ(g.remainingSeconds(), 0.0);
}

TEST(ResourceGuardTest, RemainingSecondsIsInfiniteWithoutDeadline) {
  ResourceLimits limits;
  limits.maxSteps = 5;
  ResourceGuard g(limits);
  EXPECT_TRUE(std::isinf(g.remainingSeconds()));
}

TEST(ResourceGuardTest, CancellationTripsAtTheNextCharge) {
  ResourceLimits limits;
  limits.maxSteps = 1u << 30;  // active, but no budget will trip
  ResourceGuard g(limits);
  EXPECT_TRUE(g.chargeSteps());
  g.cancel();
  EXPECT_FALSE(g.chargeSteps());
  EXPECT_EQ(g.trippedBudget(), Budget::Cancelled);
  EXPECT_EQ(g.reason(), "cancelled");
}

TEST(ResourceGuardTest, FaultInjectionTripsOnTheNthCharge) {
  ResourceGuard g;
  g.failAfter(3);
  EXPECT_TRUE(g.active());
  EXPECT_TRUE(g.chargeSteps());
  EXPECT_TRUE(g.chargeTuples());  // classes share the fault clock
  EXPECT_FALSE(g.chargeSolverChecks());
  EXPECT_EQ(g.trippedBudget(), Budget::Fault);
  EXPECT_NE(g.reason().find("fault-injection"), std::string::npos);
}

TEST(ResourceGuardTest, RearmClearsTheTripAndRestartsCounters) {
  ResourceLimits limits;
  limits.maxSteps = 1;
  ResourceGuard g(limits);
  EXPECT_TRUE(g.chargeSteps());
  EXPECT_FALSE(g.chargeSteps());
  g.rearm();
  EXPECT_FALSE(g.tripped());
  EXPECT_EQ(g.counters().steps, 0u);
  EXPECT_TRUE(g.chargeSteps());
  EXPECT_FALSE(g.chargeSteps());
}

TEST(ResourceGuardTest, ArmWithEmptyLimitsDeactivates) {
  ResourceLimits limits;
  limits.maxSteps = 1;
  ResourceGuard g(limits);
  g.arm(ResourceLimits{});
  EXPECT_FALSE(g.active());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(g.chargeSteps());
}

TEST(ResourceGuardTest, FromEnvReadsAllKnobs) {
  ::setenv("FAURE_DEADLINE", "1.5", 1);
  ::setenv("FAURE_MAX_STEPS", "100", 1);
  ::setenv("FAURE_MAX_TUPLES", "200", 1);
  ::setenv("FAURE_MAX_SOLVER_CHECKS", "300", 1);
  ::setenv("FAURE_MAX_MEMORY", "400", 1);
  ::setenv("FAURE_FAIL_AFTER", "500", 1);
  ResourceLimits limits = ResourceLimits::fromEnv();
  EXPECT_DOUBLE_EQ(limits.deadlineSeconds, 1.5);
  EXPECT_EQ(limits.maxSteps, 100u);
  EXPECT_EQ(limits.maxTuples, 200u);
  EXPECT_EQ(limits.maxSolverChecks, 300u);
  EXPECT_EQ(limits.maxMemoryBytes, 400u);
  EXPECT_EQ(limits.failAfter, 500u);
  ::unsetenv("FAURE_DEADLINE");
  ::unsetenv("FAURE_MAX_STEPS");
  ::unsetenv("FAURE_MAX_TUPLES");
  ::unsetenv("FAURE_MAX_SOLVER_CHECKS");
  ::unsetenv("FAURE_MAX_MEMORY");
  ::unsetenv("FAURE_FAIL_AFTER");
  EXPECT_FALSE(ResourceLimits::fromEnv().any());
}

TEST(ResourceGuardTest, ThrowTrippedCarriesKindAndLimit) {
  ResourceLimits limits;
  limits.maxTuples = 7;
  ResourceGuard g(limits);
  while (g.chargeTuples()) {
  }
  try {
    g.throwTripped();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.budget(), "tuples");
    EXPECT_EQ(e.reason(), "tuples(limit=7)");
    EXPECT_NE(std::string(e.what()).find("tuples(limit=7)"),
              std::string::npos);
  }
  // BudgetExceeded is catchable through the family hierarchy.
  ResourceGuard h;
  h.failAfter(1);
  h.chargeSteps();
  EXPECT_THROW(h.throwTripped(), ResourceError);
  EXPECT_THROW(h.throwTripped(), Error);
}

TEST(ResourceGuardTest, OnTripCallbackFiresOnceWithReason) {
  ResourceLimits limits;
  limits.maxTuples = 2;
  ResourceGuard guard(limits);
  int fired = 0;
  Budget seenKind = Budget::None;
  std::string seenReason;
  guard.onTrip([&](Budget kind, const std::string& reason) {
    ++fired;
    seenKind = kind;
    seenReason = reason;
  });
  EXPECT_TRUE(guard.chargeTuples(1));
  EXPECT_TRUE(guard.chargeTuples(1));
  EXPECT_FALSE(guard.chargeTuples(1));  // trips here
  EXPECT_FALSE(guard.chargeTuples(1));  // already tripped: no re-fire
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(seenKind, Budget::Tuples);
  EXPECT_EQ(seenReason, guard.reason());
  EXPECT_EQ(seenReason, "tuples(limit=2)");

  // rearm() restores the budget; the callback stays attached.
  guard.rearm();
  EXPECT_TRUE(guard.chargeTuples(2));
  EXPECT_FALSE(guard.chargeTuples(1));
  EXPECT_EQ(fired, 2);

  guard.onTrip(nullptr);  // detach
  guard.rearm();
  guard.chargeTuples(3);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace faure
