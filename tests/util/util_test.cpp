// Unit tests for util: interning, string helpers, deterministic RNG,
// and the monotonic stopwatch.
#include <gtest/gtest.h>

#include <set>

#include "util/interner.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace faure::util {
namespace {

TEST(InternerTest, SymbolsAreStable) {
  SymbolId a = sym("alpha-test-symbol");
  SymbolId b = sym("alpha-test-symbol");
  SymbolId c = sym("beta-test-symbol");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(symText(a), "alpha-test-symbol");
}

TEST(InternerTest, ManySymbolsKeepValidReferences) {
  // Interning must not invalidate earlier texts (the index holds views
  // into stored strings).
  std::vector<SymbolId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(sym("stress-" + std::to_string(i)));
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(symText(ids[static_cast<size_t>(i)]),
              "stress-" + std::to_string(i));
    // Re-interning returns the same id.
    EXPECT_EQ(sym("stress-" + std::to_string(i)), ids[static_cast<size_t>(i)]);
  }
}

TEST(InternerTest, PathsInternBySequence) {
  auto& paths = PathTable::instance();
  PathId a = paths.intern({sym("A"), sym("B")});
  PathId b = paths.intern({sym("A"), sym("B")});
  PathId c = paths.intern({sym("B"), sym("A")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(paths.text(a), "[A B]");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
}

TEST(StringsTest, FormatSeconds) {
  EXPECT_EQ(formatSeconds(0.0000005), "0.5us");
  EXPECT_EQ(formatSeconds(0.005), "5.00ms");
  EXPECT_EQ(formatSeconds(2.5), "2.50s");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, BelowAndRangeStayInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    int64_t r = rng.range(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, RangeCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.range(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch w;
  double a = w.elapsed();
  double b = w.elapsed();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_TRUE(w.running());
}

TEST(StopwatchTest, ResetClearsTotals) {
  Stopwatch w;
  while (w.elapsed() <= 0.0) {
  }
  w.reset();
  EXPECT_LT(w.elapsed(), 1.0);
  EXPECT_TRUE(w.running());
}

TEST(StopwatchTest, LapCarvesConsecutiveSegments) {
  Stopwatch w;
  double lap1 = w.lap();
  double lap2 = w.lap();
  EXPECT_GE(lap1, 0.0);
  EXPECT_GE(lap2, 0.0);
  // Laps partition the running total: their sum never exceeds elapsed.
  EXPECT_LE(lap1 + lap2, w.elapsed() + lap1 + lap2);
  double total = w.elapsed();
  EXPECT_GE(total, lap1 + lap2);
}

TEST(StopwatchTest, PauseExcludesTime) {
  Stopwatch w;
  w.pause();
  EXPECT_FALSE(w.running());
  double frozen = w.elapsed();
  // Burn some real time while paused; the reading must not move.
  double spinUntil = monotonicSeconds() + 0.01;
  while (monotonicSeconds() < spinUntil) {
  }
  EXPECT_DOUBLE_EQ(w.elapsed(), frozen);
  w.pause();  // idempotent
  EXPECT_DOUBLE_EQ(w.elapsed(), frozen);
  w.resume();
  w.resume();  // idempotent
  EXPECT_TRUE(w.running());
  EXPECT_GE(w.elapsed(), frozen);
}

TEST(StopwatchTest, LapWhilePausedReturnsAccumulatedSegment) {
  Stopwatch w;
  double spinUntil = monotonicSeconds() + 0.002;
  while (monotonicSeconds() < spinUntil) {
  }
  w.pause();
  double lap = w.lap();
  EXPECT_GT(lap, 0.0);
  // The lap was consumed: the next one (still paused) is empty.
  EXPECT_DOUBLE_EQ(w.lap(), 0.0);
}

}  // namespace
}  // namespace faure::util
