// Tests for the fixed-size worker pool behind the parallel fixpoint
// engine (util/thread_pool.hpp): barrier semantics, lane indexing,
// cross-lane concurrency (work stealing keeps lanes busy), exception
// transport, cooperative cancellation, and batch reuse.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace faure::util {
namespace {

std::vector<std::function<void(size_t)>> batchOf(
    size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::function<void(size_t)>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) tasks.push_back(fn);
  return tasks;
}

TEST(ThreadPoolTest, RunIsABarrierAndExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> ran{0};
  pool.run(batchOf(64, [&](size_t) { ran.fetch_add(1); }));
  // run() returned, so every task of the batch must have finished.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, LaneIndexIsWithinBounds) {
  // Which lanes end up executing tasks is scheduling-dependent (work
  // stealing can empty a queue before its owner drains it), so only
  // the index contract is asserted: every reported lane is one of the
  // workers() + 1 lanes, caller last.
  ThreadPool pool(2);
  std::mutex mu;
  std::set<size_t> lanes;
  pool.run(batchOf(128, [&](size_t lane) {
    EXPECT_LE(lane, pool.workers());
    std::lock_guard<std::mutex> lock(mu);
    lanes.insert(lane);
  }));
  EXPECT_GE(lanes.size(), 1u);
}

TEST(ThreadPoolTest, LanesRunConcurrently) {
  // One task blocks until the other has run. If the pool executed the
  // batch on a single thread this would deadlock (guarded by timeout);
  // completing proves the worker and the caller drain in parallel.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  bool waiterSawRelease = false;
  std::vector<std::function<void(size_t)>> tasks;
  tasks.push_back([&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    waiterSawRelease = cv.wait_for(lock, std::chrono::seconds(10),
                                   [&] { return released; });
  });
  tasks.push_back([&](size_t) {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  });
  pool.run(std::move(tasks));
  EXPECT_TRUE(waiterSawRelease);
}

TEST(ThreadPoolTest, FirstTaskExceptionIsRethrownOnTheCaller) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto tasks = batchOf(32, [&](size_t) { ran.fetch_add(1); });
  tasks[0] = [](size_t) { throw std::runtime_error("boom"); };
  try {
    pool.run(std::move(tasks));
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The batch still reached the barrier: every task either ran or was
  // discarded by the failure, never left dangling.
  EXPECT_LE(ran.load(), 31);

  // The pool stays usable for the next batch after an exception.
  std::atomic<int> again{0};
  pool.run(batchOf(8, [&](size_t) { again.fetch_add(1); }));
  EXPECT_EQ(again.load(), 8);
}

TEST(ThreadPoolTest, CancelDiscardsQueuedTasksButRunStillReturns) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::vector<std::function<void(size_t)>> tasks;
  tasks.push_back([&](size_t) {
    ran.fetch_add(1);
    pool.cancel();  // running task keeps going; queued ones are dropped
  });
  for (int i = 0; i < 63; ++i) {
    tasks.push_back([&](size_t) { ran.fetch_add(1); });
  }
  pool.run(std::move(tasks));
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 64);

  // Cancellation is per batch: the next run() executes fully.
  std::atomic<int> again{0};
  pool.run(batchOf(8, [&](size_t) { again.fetch_add(1); }));
  EXPECT_EQ(again.load(), 8);
}

TEST(ThreadPoolTest, RepeatedFailingBatchesKeepTransportingExceptions) {
  // A pool that survives one failure must survive a storm of them: every
  // failing batch rethrows *its* first error on the caller, and a clean
  // batch in between runs to completion — nothing about cancellation or
  // error state leaks from batch to batch.
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    auto tasks = batchOf(16, [](size_t) {});
    tasks[round % 16] = [round](size_t) {
      throw std::runtime_error("boom " + std::to_string(round));
    };
    try {
      pool.run(std::move(tasks));
      FAIL() << "expected runtime_error in round " << round;
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "boom " + std::to_string(round));
    }
    std::atomic<int> clean{0};
    pool.run(batchOf(8, [&](size_t) { clean.fetch_add(1); }));
    EXPECT_EQ(clean.load(), 8) << "round " << round;
  }
}

TEST(ThreadPoolTest, EveryTaskFailingStillReachesTheBarrierOnce) {
  // All 32 tasks throw concurrently; exactly one exception wins the
  // race to the caller and the rest are swallowed by cancellation.
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        pool.run(batchOf(32,
                         [](size_t) { throw std::runtime_error("die"); })),
        std::runtime_error);
  }
  std::atomic<int> again{0};
  pool.run(batchOf(8, [&](size_t) { again.fetch_add(1); }));
  EXPECT_EQ(again.load(), 8);
}

TEST(ThreadPoolTest, NonStdExceptionsAreTransportedToo) {
  ThreadPool pool(2);
  auto tasks = batchOf(4, [](size_t) {});
  tasks[2] = [](size_t) { throw 42; };  // exception_ptr carries anything
  try {
    pool.run(std::move(tasks));
    FAIL() << "expected int exception";
  } catch (int v) {
    EXPECT_EQ(v, 42);
  }
  std::atomic<int> again{0};
  pool.run(batchOf(4, [&](size_t) { again.fetch_add(1); }));
  EXPECT_EQ(again.load(), 4);
}

TEST(ThreadPoolTest, EmptyBatchAndRepeatedBatchesAreFine) {
  ThreadPool pool(2);
  pool.run({});  // no tasks: immediate return
  int total = 0;
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    pool.run(batchOf(16, [&](size_t) { ran.fetch_add(1); }));
    total += ran.load();
  }
  EXPECT_EQ(total, 160);
}

TEST(ThreadPoolTest, HardwareConcurrencyHasASaneFloor) {
  EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

}  // namespace
}  // namespace faure::util
