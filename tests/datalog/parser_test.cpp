// Parser tests (datalog/parser.hpp), covering the paper's listings.
#include "datalog/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace faure::dl {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
};

TEST_F(ParserTest, SimpleRule) {
  Rule r = parseRule("R(f,n1,n2) :- F(f,n1,n2).", reg_);
  EXPECT_EQ(r.head.pred, "R");
  ASSERT_EQ(r.head.args.size(), 3u);
  EXPECT_TRUE(r.head.args[0].isVar());
  EXPECT_EQ(r.head.args[0].var, "f");
  ASSERT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.body[0].atom.pred, "F");
  EXPECT_FALSE(r.body[0].negated);
}

TEST_F(ParserTest, Fact) {
  Rule r = parseRule("Lb(R&D, GS).", reg_);
  EXPECT_TRUE(r.isFact());
  ASSERT_EQ(r.head.args.size(), 2u);
  EXPECT_EQ(r.head.args[0].constant, Value::sym("R&D"));
  EXPECT_EQ(r.head.args[1].constant, Value::sym("GS"));
}

TEST_F(ParserTest, CVarsAreDeclaredOnSight) {
  Rule r = parseRule("Vt(x_, CS, p_) :- R(x_, CS, p_), x_ != Mkt.", reg_);
  EXPECT_NE(reg_.find("x_"), CVarRegistry::kNotFound);
  EXPECT_NE(reg_.find("p_"), CVarRegistry::kNotFound);
  EXPECT_TRUE(r.head.args[0].isCVar());
  ASSERT_EQ(r.cmps.size(), 1u);
  EXPECT_EQ(r.cmps[0].op, smt::CmpOp::Ne);
}

TEST_F(ParserTest, CVarsReusePriorDeclaration) {
  CVarId x = reg_.declareInt("x_", 0, 1);
  Rule r = parseRule("T(f) :- R(f), x_ = 0.", reg_);
  ASSERT_EQ(r.cmps.size(), 1u);
  ASSERT_EQ(r.cmps[0].lhs.terms.size(), 1u);
  EXPECT_EQ(r.cmps[0].lhs.terms[0].first.cvar, x);
}

TEST_F(ParserTest, LinearComparison) {
  Rule r = parseRule("T1(f,n1,n2) :- R(f,n1,n2), x_ + y_ + z_ = 1.", reg_);
  ASSERT_EQ(r.cmps.size(), 1u);
  EXPECT_EQ(r.cmps[0].lhs.terms.size(), 3u);
  EXPECT_EQ(r.cmps[0].rhs.cst, 1);
  EXPECT_EQ(r.cmps[0].op, smt::CmpOp::Eq);
}

TEST_F(ParserTest, CoefficientsAndMinus) {
  Rule r = parseRule("T(x) :- R(x), 2*x_ - y_ >= 3.", reg_);
  ASSERT_EQ(r.cmps.size(), 1u);
  EXPECT_EQ(r.cmps[0].lhs.terms[0].second, 2);
  EXPECT_EQ(r.cmps[0].lhs.terms[1].second, -1);
}

TEST_F(ParserTest, Negation) {
  Rule r = parseRule("panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).", reg_);
  EXPECT_EQ(r.head.pred, "panic");
  EXPECT_TRUE(r.head.args.empty());
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_FALSE(r.body[0].negated);
  EXPECT_TRUE(r.body[1].negated);
  EXPECT_EQ(r.body[1].atom.pred, "Fw");
}

TEST_F(ParserTest, NotKeyword) {
  Rule r = parseRule("panic :- R(R&D, y_, 7000), not Lb(R&D, y_).", reg_);
  EXPECT_TRUE(r.body[1].negated);
  EXPECT_EQ(r.body[0].atom.args[2].constant, Value::fromInt(7000));
}

TEST_F(ParserTest, AnnotationComparisonsJoinTheRule) {
  Rule r = parseRule("Lb2(x_, y_) :- Lb1(x_, y_)[x_ != Mkt].", reg_);
  ASSERT_EQ(r.cmps.size(), 1u);
  EXPECT_EQ(r.cmps[0].op, smt::CmpOp::Ne);
}

TEST_F(ParserTest, MetavariableAnnotationsAreDropped) {
  Rule r = parseRule("R(f,n1,n2)[phi] :- F(f,n1,n2)[phi].", reg_);
  EXPECT_TRUE(r.cmps.empty());
  // phi must not become a c-variable or a program variable.
  EXPECT_EQ(reg_.find("phi"), CVarRegistry::kNotFound);
}

TEST_F(ParserTest, MixedAnnotation) {
  Rule r = parseRule(
      "T1(f,n1,n2)[phi & x_ + y_ + z_ = 1] :- R(f,n1,n2)[phi], "
      "x_ + y_ + z_ = 1.",
      reg_);
  // Head annotation dropped entirely; body comparison kept once.
  ASSERT_EQ(r.cmps.size(), 1u);
}

TEST_F(ParserTest, AnnotationOnNegatedAtomRejected) {
  EXPECT_THROW(parseRule("P(x) :- R(x), !Q(x)[x != 1].", reg_), ParseError);
}

TEST_F(ParserTest, ConstantsOfAllKinds) {
  Rule r = parseRule("P(1.2.3.4, [ABC], 'lit', Mkt, 42, 10.0.0.0/8).", reg_);
  ASSERT_EQ(r.head.args.size(), 6u);
  EXPECT_EQ(r.head.args[0].constant, Value::parsePrefix("1.2.3.4"));
  EXPECT_EQ(r.head.args[1].constant, Value::path({"ABC"}));
  EXPECT_EQ(r.head.args[2].constant, Value::sym("lit"));
  EXPECT_EQ(r.head.args[3].constant, Value::sym("Mkt"));
  EXPECT_EQ(r.head.args[4].constant, Value::fromInt(42));
  EXPECT_EQ(r.head.args[5].constant, Value::parsePrefix("10.0.0.0/8"));
}

TEST_F(ParserTest, MultiElementPath) {
  Rule r = parseRule("P([A, B, C]).", reg_);
  EXPECT_EQ(r.head.args[0].constant, Value::path({"A", "B", "C"}));
  Rule r2 = parseRule("P([A B C]).", reg_);
  EXPECT_EQ(r2.head.args[0].constant, Value::path({"A", "B", "C"}));
}

TEST_F(ParserTest, LowercaseIsVariableUppercaseIsSymbol) {
  Rule r = parseRule("P(x, Mkt) :- Q(x).", reg_);
  EXPECT_TRUE(r.head.args[0].isVar());
  EXPECT_TRUE(r.head.args[1].isConst());
}

TEST_F(ParserTest, ProgramOfMultipleRules) {
  Program p = parseProgram(
      "R(f,n1,n2) :- F(f,n1,n2).\n"
      "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
      reg_);
  EXPECT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.idbPredicates(), std::vector<std::string>{"R"});
  auto preds = p.predicates();
  EXPECT_EQ(preds.size(), 2u);
}

TEST_F(ParserTest, VariableComparison) {
  Rule r = parseRule("Q(y) :- P(x, y), x != 1.2.3.4.", reg_);
  ASSERT_EQ(r.cmps.size(), 1u);
  EXPECT_TRUE(r.cmps[0].lhs.terms[0].first.isVar());
  // Non-integer constants ride in `terms` (only Int literals fold into
  // the constant part of a linear expression).
  ASSERT_EQ(r.cmps[0].rhs.terms.size(), 1u);
  EXPECT_EQ(r.cmps[0].rhs.terms[0].first.constant,
            Value::parsePrefix("1.2.3.4"));
}

TEST_F(ParserTest, ZeroAryBodyAtom) {
  Rule r = parseRule("alarm :- panic.", reg_);
  ASSERT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.body[0].atom.pred, "panic");
  EXPECT_TRUE(r.body[0].atom.args.empty());
}

TEST_F(ParserTest, SyntaxErrors) {
  EXPECT_THROW(parseRule("P(x :- Q(x).", reg_), ParseError);
  EXPECT_THROW(parseRule("P(x)", reg_), ParseError);           // missing dot
  EXPECT_THROW(parseRule("P(x) :- .", reg_), ParseError);      // empty body
  EXPECT_THROW(parseRule(":- Q(x).", reg_), ParseError);       // no head
}

TEST_F(ParserTest, RoundTripToString) {
  const char* text = "panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).";
  Rule r = parseRule(text, reg_);
  // toString must re-parse to the same structure.
  Rule r2 = parseRule(r.toString(&reg_), reg_);
  EXPECT_EQ(r2.toString(&reg_), r.toString(&reg_));
}

}  // namespace
}  // namespace faure::dl
