// Robustness: arbitrary (even adversarial) input must produce ParseError
// or a successful parse — never a crash, hang, or other exception type.
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/textio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace faure::dl {
namespace {

const char* kFragments[] = {
    "R",    "(",   ")",    ",",    ".",   ":-",  "!",   "x",  "X_",
    "x_",   "1",   "-",    "+",    "*",   "=",   "!=",  "<",  "<=",
    "[",    "]",   "{",    "}",    "|",   "&",   "1.2.3.4", "'s'",
    "panic", "not", "%c\n", "R&D", "10.0.0.0/8", "9999999",
};

std::string randomText(util::Rng& rng, size_t pieces) {
  std::string out;
  for (size_t i = 0; i < pieces; ++i) {
    out += kFragments[rng.below(std::size(kFragments))];
    if (rng.chance(0.6)) out += ' ';
  }
  return out;
}

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, NeverCrashesOnGarbage) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 1099511628211ULL + 3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = randomText(rng, 1 + rng.below(30));
    CVarRegistry reg;
    try {
      Program p = parseProgram(text, reg);
      (void)p;
    } catch (const ParseError&) {
      // expected for garbage
    } catch (const TypeError&) {
      // e.g. ordered comparison between symbol constants folds at parse
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(0, 6));

class TextIoRobustness : public ::testing::TestWithParam<int> {};

TEST_P(TextIoRobustness, NeverCrashesOnGarbage) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 0x9e3779b9ULL + 11);
  const char* starters[] = {"var ", "table ", "row ", ""};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = starters[rng.below(4)] + randomText(rng, rng.below(20));
    try {
      rel::Database db = fl::parseDatabase(text);
      (void)db;
    } catch (const Error&) {
      // ParseError / TypeError / EvalError are all acceptable outcomes.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextIoRobustness, ::testing::Range(0, 6));

TEST(ParserRobustnessFixed, DeepNestingDoesNotOverflow) {
  // Deeply nested parentheses in a condition: parser recursion must
  // either handle or reject it, not smash the stack (depth kept modest).
  std::string cond(200, '(');
  cond += "x_ = 1";
  cond += std::string(200, ')');
  std::string text = "var x_ int 0 1\ntable T(a int)\nrow T 1 | " + cond +
                     "\n";
  EXPECT_NO_THROW(fl::parseDatabase(text));
}

TEST(ParserRobustnessFixed, LongLinearChains) {
  CVarRegistry reg;
  std::string rule = "T(x) :- R(x)";
  for (int i = 0; i < 200; ++i) rule += ", x > " + std::to_string(i);
  rule += ".";
  EXPECT_NO_THROW(parseRule(rule, reg));
}

}  // namespace
}  // namespace faure::dl
