// Tokenizer tests (datalog/lexer.hpp).
#include "datalog/lexer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace faure::dl {
namespace {

std::vector<Tok> kinds(std::string_view text) {
  std::vector<Tok> out;
  for (const auto& t : lex(text)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, SimpleRule) {
  auto ks = kinds("R(f,n1,n2) :- F(f,n1,n2).");
  std::vector<Tok> want = {
      Tok::Ident, Tok::LParen, Tok::Ident, Tok::Comma, Tok::Ident,
      Tok::Comma, Tok::Ident,  Tok::RParen, Tok::ColonDash,
      Tok::Ident, Tok::LParen, Tok::Ident, Tok::Comma, Tok::Ident,
      Tok::Comma, Tok::Ident,  Tok::RParen, Tok::Dot,   Tok::End};
  EXPECT_EQ(ks, want);
}

TEST(LexerTest, CVarNames) {
  auto ts = lex("x_ + y_ = 1");
  EXPECT_EQ(ts[0].kind, Tok::CVarName);
  EXPECT_EQ(ts[0].text, "x_");
  EXPECT_EQ(ts[1].kind, Tok::Plus);
  EXPECT_EQ(ts[2].kind, Tok::CVarName);
  EXPECT_EQ(ts[3].kind, Tok::Eq);
  EXPECT_EQ(ts[4].kind, Tok::Int);
  EXPECT_EQ(ts[4].intVal, 1);
}

TEST(LexerTest, Comparisons) {
  EXPECT_EQ(kinds("= != < <= > >="),
            (std::vector<Tok>{Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt,
                              Tok::Ge, Tok::End}));
}

TEST(LexerTest, NegationForms) {
  auto a = kinds("!F(x)");
  auto b = kinds("not F(x)");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], Tok::Bang);
}

TEST(LexerTest, PrefixLiterals) {
  auto ts = lex("1.2.3.4 10.0.0.0/8 42");
  EXPECT_EQ(ts[0].kind, Tok::PrefixLit);
  EXPECT_EQ(ts[0].text, "1.2.3.4");
  EXPECT_EQ(ts[1].kind, Tok::PrefixLit);
  EXPECT_EQ(ts[1].text, "10.0.0.0/8");
  EXPECT_EQ(ts[2].kind, Tok::Int);
  EXPECT_EQ(ts[2].intVal, 42);
}

TEST(LexerTest, AmpersandInIdentifier) {
  auto ts = lex("R&D");
  EXPECT_EQ(ts[0].kind, Tok::Ident);
  EXPECT_EQ(ts[0].text, "R&D");
}

TEST(LexerTest, Comments) {
  auto ks = kinds("A. % trailing comment\n// full line\nB.");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::Ident, Tok::Dot, Tok::Ident, Tok::Dot,
                                  Tok::End}));
}

TEST(LexerTest, QuotedStrings) {
  auto ts = lex("'hello world' \"two\"");
  EXPECT_EQ(ts[0].kind, Tok::Str);
  EXPECT_EQ(ts[0].text, "hello world");
  EXPECT_EQ(ts[1].kind, Tok::Str);
  EXPECT_EQ(ts[1].text, "two");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto ts = lex("A.\n  B.");
  EXPECT_EQ(ts[0].line, 1);
  EXPECT_EQ(ts[2].line, 2);
  EXPECT_GT(ts[2].column, 1);
}

TEST(LexerTest, ErrorsCarryPosition) {
  try {
    lex("A :~ B.");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
  }
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_THROW(lex("'oops"), ParseError);
}

}  // namespace
}  // namespace faure::dl
