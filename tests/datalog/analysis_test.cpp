// Tests for safety, arity checking, and stratification
// (datalog/analysis.hpp).
#include "datalog/analysis.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "util/error.hpp"

namespace faure::dl {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  Program parse(const char* text) { return parseProgram(text, reg_); }
};

TEST_F(AnalysisTest, SafeProgramPasses) {
  Program p = parse(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n");
  EXPECT_NO_THROW(checkSafety(p));
}

TEST_F(AnalysisTest, UnboundHeadVariableRejected) {
  Program p = parse("R(x,y) :- E(x,x).\n");
  EXPECT_THROW(checkSafety(p), EvalError);
}

TEST_F(AnalysisTest, UnboundNegatedVariableRejected) {
  Program p = parse("R(x) :- E(x), !F(y).\n");
  EXPECT_THROW(checkSafety(p), EvalError);
}

TEST_F(AnalysisTest, UnboundComparisonVariableRejected) {
  Program p = parse("R(x) :- E(x), y > 3.\n");
  EXPECT_THROW(checkSafety(p), EvalError);
}

TEST_F(AnalysisTest, CVarsAreAlwaysSafe) {
  // c-variables are domain elements, not valuation variables.
  Program p = parse("R(x_) :- E(y_), x_ != y_.\n");
  EXPECT_NO_THROW(checkSafety(p));
}

TEST_F(AnalysisTest, NonGroundFactRejected) {
  Program p = parse("R(x).\n");
  EXPECT_THROW(checkSafety(p), EvalError);
}

TEST_F(AnalysisTest, ArityMismatchRejected) {
  Program p = parse(
      "R(x) :- E(x).\n"
      "S(x) :- E(x, x).\n");
  EXPECT_THROW(checkArities(p), EvalError);
}

TEST_F(AnalysisTest, ExternalArityRespected) {
  Program p = parse("R(x) :- E(x).\n");
  EXPECT_THROW(checkArities(p, {{"E", 2}}), EvalError);
  EXPECT_NO_THROW(checkArities(p, {{"E", 1}}));
}

TEST_F(AnalysisTest, StratifiesPositiveRecursion) {
  Program p = parse(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n");
  Stratification s = stratify(p);
  EXPECT_EQ(s.ruleStrata.size(), 1u);
  EXPECT_EQ(s.ruleStrata[0].size(), 2u);
}

TEST_F(AnalysisTest, NegationForcesHigherStratum) {
  Program p = parse(
      "R(x) :- E(x).\n"
      "S(x) :- E(x), !R(x).\n");
  Stratification s = stratify(p);
  EXPECT_EQ(s.stratumOf.at("R"), 0);
  EXPECT_EQ(s.stratumOf.at("S"), 1);
  ASSERT_EQ(s.ruleStrata.size(), 2u);
  EXPECT_EQ(s.ruleStrata[0], std::vector<size_t>{0});
  EXPECT_EQ(s.ruleStrata[1], std::vector<size_t>{1});
}

TEST_F(AnalysisTest, NegationThroughRecursionRejected) {
  Program p = parse(
      "Win(x) :- Move(x,y), !Win(y).\n");
  EXPECT_THROW(stratify(p), EvalError);
}

TEST_F(AnalysisTest, MutualRecursionThroughNegationRejected) {
  Program p = parse(
      "A(x) :- E(x), !B(x).\n"
      "B(x) :- E(x), !A(x).\n");
  EXPECT_THROW(stratify(p), EvalError);
}

TEST_F(AnalysisTest, DeepStrataChain) {
  Program p = parse(
      "A(x) :- E(x).\n"
      "B(x) :- E(x), !A(x).\n"
      "C(x) :- E(x), !B(x).\n"
      "D(x) :- E(x), !C(x).\n");
  Stratification s = stratify(p);
  EXPECT_EQ(s.stratumOf.at("D"), 3);
  EXPECT_EQ(s.ruleStrata.size(), 4u);
}

TEST_F(AnalysisTest, RuleVariablesFirstOccurrenceOrder) {
  Program p = parse("R(y,x) :- E(x,y), F(y,z).\n");
  auto vars = ruleVariables(p.rules[0]);
  EXPECT_EQ(vars, (std::vector<std::string>{"y", "x", "z"}));
}

}  // namespace
}  // namespace faure::dl
