// Classical canonical-database containment tests (datalog/containment.hpp).
#include "datalog/containment.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "util/error.hpp"

namespace faure::dl {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  Rule rule(const char* text) { return parseRule(text, reg_); }
  Program prog(const char* text) { return parseProgram(text, reg_); }
};

TEST_F(ContainmentTest, IdenticalQueriesContained) {
  Rule q = rule("Q(x) :- E(x,y).");
  EXPECT_TRUE(cqContained(q, q));
}

TEST_F(ContainmentTest, MoreConstrainedIsContained) {
  // q1 asks for a 2-path; q2 asks for any edge source: q1 ⊆ q2.
  Rule q1 = rule("Q(x) :- E(x,y), E(y,z).");
  Rule q2 = rule("Q(x) :- E(x,y).");
  EXPECT_TRUE(cqContained(q1, q2));
  EXPECT_FALSE(cqContained(q2, q1));
}

TEST_F(ContainmentTest, ConstantsBlockContainment) {
  Rule q1 = rule("Q(x) :- E(x, 5).");
  Rule q2 = rule("Q(x) :- E(x, y).");
  EXPECT_TRUE(cqContained(q1, q2));   // specific ⊆ general
  EXPECT_FALSE(cqContained(q2, q1));  // general ⊄ specific
}

TEST_F(ContainmentTest, TriangleVsPath) {
  // Triangle ⊆ 2-path-with-endpoints (classic homomorphism example).
  Rule tri = rule("Q() :- E(x,y), E(y,z), E(z,x).");
  Rule path = rule("Q() :- E(x,y), E(y,z).");
  EXPECT_TRUE(cqContained(tri, path));
  EXPECT_FALSE(cqContained(path, tri));
}

TEST_F(ContainmentTest, SelfJoinFolding) {
  // E(x,x) maps into E(x,y),E(y,x)? A homomorphism q2 -> q1 sends both
  // atoms onto the loop: yes.
  Rule loop = rule("Q() :- E(x,x).");
  Rule twoCycle = rule("Q() :- E(x,y), E(y,x).");
  EXPECT_TRUE(cqContained(loop, twoCycle));
  EXPECT_FALSE(cqContained(twoCycle, loop));
}

TEST_F(ContainmentTest, IncompatibleHeadsThrow) {
  Rule q1 = rule("Q(x) :- E(x,y).");
  Rule q2 = rule("R(x) :- E(x,y).");
  EXPECT_THROW(cqContained(q1, q2), EvalError);
}

TEST_F(ContainmentTest, NegationRejected) {
  Rule q1 = rule("Q(x) :- E(x,y), !F(x).");
  Rule q2 = rule("Q(x) :- E(x,y).");
  EXPECT_THROW(cqContained(q1, q2), EvalError);
}

TEST_F(ContainmentTest, ComparisonRejected) {
  Rule q1 = rule("Q(x) :- E(x,y), y > 3.");
  Rule q2 = rule("Q(x) :- E(x,y).");
  EXPECT_THROW(cqContained(q1, q2), EvalError);
}

TEST_F(ContainmentTest, ConstraintSubsumptionPositive) {
  // T: Mkt traffic to CS exists. C: any traffic to CS exists -> T ⊆ C.
  Program t = prog("panic :- R(Mkt, CS, p).");
  Program c = prog("panic :- R(x, CS, p).");
  EXPECT_TRUE(constraintSubsumedCanonical(t, c));
  EXPECT_FALSE(constraintSubsumedCanonical(c, t));
}

TEST_F(ContainmentTest, SubsumptionThroughAuxPredicates) {
  Program t = prog("panic :- R(Mkt, CS, p).");
  Program c = prog(
      "panic :- V(x,y,p).\n"
      "V(x,y,p) :- R(x,y,p).\n");
  EXPECT_TRUE(constraintSubsumedCanonical(t, c));
}

TEST_F(ContainmentTest, MultiRuleSubsumee) {
  Program t = prog(
      "panic :- R(Mkt, CS, p).\n"
      "panic :- R(R&D, GS, p).\n");
  Program cAll = prog("panic :- R(x, y, p).");
  Program cCsOnly = prog("panic :- R(x, CS, p).");
  EXPECT_TRUE(constraintSubsumedCanonical(t, cAll));
  // The R&D->GS rule is not covered by a CS-only constraint.
  EXPECT_FALSE(constraintSubsumedCanonical(t, cCsOnly));
}

TEST_F(ContainmentTest, MissingGoalThrows) {
  Program t = prog("alarm :- R(x,y,p).");
  Program c = prog("panic :- R(x,y,p).");
  EXPECT_THROW(constraintSubsumedCanonical(t, c), EvalError);
}

}  // namespace
}  // namespace faure::dl
