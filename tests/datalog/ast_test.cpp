// AST construction and printing tests (datalog/ast.hpp).
#include "datalog/ast.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "util/error.hpp"

namespace faure::dl {
namespace {

TEST(AstTest, TermFactories) {
  Term c = Term::constant_(Value::fromInt(5));
  Term v = Term::variable("x");
  Term cv = Term::cvariable(3);
  EXPECT_TRUE(c.isConst());
  EXPECT_TRUE(v.isVar());
  EXPECT_TRUE(cv.isCVar());
  EXPECT_EQ(c.asValue(), Value::fromInt(5));
  EXPECT_EQ(cv.asValue(), Value::cvar(3));
  EXPECT_THROW(v.asValue(), EvalError);
}

TEST(AstTest, TermEquality) {
  EXPECT_EQ(Term::variable("x"), Term::variable("x"));
  EXPECT_FALSE(Term::variable("x") == Term::variable("y"));
  EXPECT_FALSE(Term::variable("x") == Term::constant_(Value::sym("x")));
  EXPECT_EQ(Term::cvariable(1), Term::cvariable(1));
}

TEST(AstTest, LinExprHelpers) {
  LinExpr e = LinExpr::of(Term::variable("x"));
  EXPECT_TRUE(e.isSingleTerm());
  LinExpr k = LinExpr::constant(4);
  EXPECT_FALSE(k.isSingleTerm());
  EXPECT_EQ(k.cst, 4);
}

TEST(AstTest, RuleToStringForms) {
  CVarRegistry reg;
  EXPECT_EQ(parseRule("Lb(R&D, GS).", reg).toString(&reg), "Lb(R&D, GS).");
  EXPECT_EQ(parseRule("panic :- R(x), !F(x).", reg).toString(&reg),
            "panic :- R(x), !F(x).");
  EXPECT_EQ(parseRule("T(f) :- R(f), x_ + y_ = 1.", reg).toString(&reg),
            "T(f) :- R(f), x_ + y_ = 1.");
  EXPECT_EQ(parseRule("Q(z) :- P(1.2.3.4, [A B], 'two words', z).", reg)
                .toString(&reg),
            "Q(z) :- P(1.2.3.4, [A B], two words, z).");
}

TEST(AstTest, ComparisonToString) {
  CVarRegistry reg;
  Rule r = parseRule("T(x) :- R(x), 2*x_ - 3 >= x.", reg);
  ASSERT_EQ(r.cmps.size(), 1u);
  EXPECT_EQ(r.cmps[0].toString(&reg), "2*x_ - 3 >= x");
}

TEST(AstTest, ProgramPredicateHelpers) {
  CVarRegistry reg;
  Program p = parseProgram(
      "A(x) :- E(x).\n"
      "B(x) :- A(x), F(x).\n"
      "A(x) :- G(x).\n",
      reg);
  EXPECT_EQ(p.idbPredicates(), (std::vector<std::string>{"A", "B"}));
  auto preds = p.predicates();
  EXPECT_EQ(preds.size(), 5u);  // A B E F G
}

TEST(AstTest, ProgramConcat) {
  CVarRegistry reg;
  Program a = parseProgram("A(x) :- E(x).\n", reg);
  Program b = parseProgram("B(x) :- F(x).\n", reg);
  Program c = Program::concat(a, b);
  EXPECT_EQ(c.rules.size(), 2u);
  EXPECT_EQ(a.rules.size(), 1u);  // inputs untouched
}

TEST(AstTest, ProgramToStringReparses) {
  CVarRegistry reg;
  const char* text =
      "R(f,n1,n2) :- F(f,n1,n2).\n"
      "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n"
      "T1(f,n1,n2) :- R(f,n1,n2), x_ + y_ + z_ = 1.\n"
      "panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).\n";
  Program p = parseProgram(text, reg);
  Program p2 = parseProgram(p.toString(&reg), reg);
  EXPECT_EQ(p2.toString(&reg), p.toString(&reg));
  EXPECT_EQ(p2.rules.size(), p.rules.size());
}

}  // namespace
}  // namespace faure::dl
