// Pure datalog engine tests (datalog/pure_eval.hpp), including the
// paper's q1 over the regular PATH database of Table 2.
#include "datalog/pure_eval.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "util/error.hpp"

namespace faure::dl {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

class PureEvalTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  rel::Database db_;

  void addEdge(const std::string& rel, int a, int b) {
    if (!db_.has(rel)) db_.create(anySchema(rel, 2));
    db_.table(rel).insertConcrete({Value::fromInt(a), Value::fromInt(b)});
  }
};

TEST_F(PureEvalTest, SingleRuleProjection) {
  addEdge("E", 1, 2);
  addEdge("E", 2, 3);
  Program p = parseProgram("V(x) :- E(x,y).", reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("V").size(), 2u);
  EXPECT_TRUE(
      res.relation("V").conditionOf({Value::fromInt(1)}).isTrue());
}

TEST_F(PureEvalTest, TransitiveClosure) {
  addEdge("E", 1, 2);
  addEdge("E", 2, 3);
  addEdge("E", 3, 4);
  Program p = parseProgram(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n",
      reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("R").size(), 6u);  // 12 13 14 23 24 34
  EXPECT_TRUE(res.relation("R")
                  .conditionOf({Value::fromInt(1), Value::fromInt(4)})
                  .isTrue());
}

TEST_F(PureEvalTest, CyclicGraphTerminates) {
  addEdge("E", 1, 2);
  addEdge("E", 2, 1);
  Program p = parseProgram(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n",
      reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("R").size(), 4u);  // 12 21 11 22
}

TEST_F(PureEvalTest, NaiveAndSemiNaiveAgree) {
  for (int i = 0; i < 12; ++i) addEdge("E", i, (i * 7 + 3) % 12);
  Program p = parseProgram(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n",
      reg_);
  PureEvalOptions naive;
  naive.semiNaive = false;
  auto a = evalPure(p, db_, naive);
  auto b = evalPure(p, db_);
  EXPECT_EQ(a.relation("R").size(), b.relation("R").size());
  for (const auto& row : a.relation("R").rows()) {
    EXPECT_TRUE(b.relation("R").conditionOf(row.vals).isTrue());
  }
  // Semi-naive does strictly fewer derivations on this input.
  EXPECT_LT(b.stats.derivations, a.stats.derivations);
}

TEST_F(PureEvalTest, ConstantsFilterInBody) {
  addEdge("E", 1, 2);
  addEdge("E", 2, 3);
  Program p = parseProgram("V(y) :- E(2, y).", reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("V").size(), 1u);
  EXPECT_TRUE(res.relation("V").conditionOf({Value::fromInt(3)}).isTrue());
}

TEST_F(PureEvalTest, RepeatedVariablesInAtom) {
  addEdge("E", 1, 1);
  addEdge("E", 1, 2);
  Program p = parseProgram("L(x) :- E(x,x).", reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("L").size(), 1u);
  EXPECT_TRUE(res.relation("L").conditionOf({Value::fromInt(1)}).isTrue());
}

TEST_F(PureEvalTest, ComparisonsFilter) {
  addEdge("E", 1, 5);
  addEdge("E", 2, 8);
  Program p = parseProgram("Big(x) :- E(x,y), y > 6.", reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("Big").size(), 1u);
  EXPECT_TRUE(res.relation("Big").conditionOf({Value::fromInt(2)}).isTrue());
}

TEST_F(PureEvalTest, ArithmeticComparison) {
  addEdge("E", 1, 5);
  addEdge("E", 3, 4);
  Program p = parseProgram("S(x) :- E(x,y), x + y = 7.", reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("S").size(), 1u);
  EXPECT_TRUE(res.relation("S").conditionOf({Value::fromInt(3)}).isTrue());
}

TEST_F(PureEvalTest, NegationClosedWorld) {
  addEdge("E", 1, 2);
  addEdge("E", 2, 3);
  addEdge("Block", 2, 3);
  Program p = parseProgram("Ok(x,y) :- E(x,y), !Block(x,y).", reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("Ok").size(), 1u);
  EXPECT_TRUE(res.relation("Ok")
                  .conditionOf({Value::fromInt(1), Value::fromInt(2)})
                  .isTrue());
}

TEST_F(PureEvalTest, NegationOverIdb) {
  addEdge("E", 1, 2);
  addEdge("E", 3, 4);
  Program p = parseProgram(
      "Src(x) :- E(x,y).\n"
      "Dst(y) :- E(x,y).\n"
      "Sink(x) :- Dst(x), !Src(x).\n",
      reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("Sink").size(), 2u);  // 2 and 4
}

TEST_F(PureEvalTest, Facts) {
  Program p = parseProgram(
      "Lb(Mkt, CS).\n"
      "Has(x) :- Lb(x, y).\n",
      reg_);
  auto res = evalPure(p, db_);
  EXPECT_EQ(res.relation("Has").size(), 1u);
  EXPECT_TRUE(res.relation("Has").conditionOf({Value::sym("Mkt")}).isTrue());
}

TEST_F(PureEvalTest, PaperQ1OverRegularPath) {
  // Table 2 / Listing 1: q1(PATH) = {<3>}.
  auto& p = db_.create(anySchema("P", 2));
  p.insertConcrete({Value::parsePrefix("1.2.3.4"), Value::path({"ABC"})});
  p.insertConcrete({Value::parsePrefix("1.2.3.5"), Value::path({"ABE"})});
  p.insertConcrete({Value::parsePrefix("1.2.3.6"), Value::path({"ADEC"})});
  auto& c = db_.create(anySchema("C", 2));
  c.insertConcrete({Value::path({"ABC"}), Value::fromInt(3)});
  c.insertConcrete({Value::path({"ADEC"}), Value::fromInt(4)});
  c.insertConcrete({Value::path({"ABE"}), Value::fromInt(3)});

  Program q1 = parseProgram("Q1(z) :- P(1.2.3.4, y), C(y, z).", reg_);
  auto res = evalPure(q1, db_);
  EXPECT_EQ(res.relation("Q1").size(), 1u);
  EXPECT_TRUE(res.relation("Q1").conditionOf({Value::fromInt(3)}).isTrue());
}

TEST_F(PureEvalTest, RejectsCTableInput) {
  auto& t = db_.create(anySchema("T", 1));
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  t.insertConcrete({Value::cvar(x)});
  Program p = parseProgram("V(y) :- T(y).", reg_);
  EXPECT_THROW(evalPure(p, db_), EvalError);
}

TEST_F(PureEvalTest, UnknownRelationThrows) {
  Program p = parseProgram("V(x) :- Nope(x).", reg_);
  EXPECT_THROW(evalPure(p, db_), EvalError);
}

TEST_F(PureEvalTest, EmptyRelationGivesEmptyResult) {
  db_.create(anySchema("E", 2));
  Program p = parseProgram(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n",
      reg_);
  auto res = evalPure(p, db_);
  EXPECT_TRUE(res.relation("R").empty());
}

}  // namespace
}  // namespace faure::dl
