// Tests for the Table-4 pipeline (net/pipeline.hpp) at a small scale,
// checking structural invariants rather than timing.
#include "net/pipeline.hpp"

#include <gtest/gtest.h>

namespace faure::net {
namespace {

TEST(PipelineTest, RunsEndToEndAndPopulatesRelations) {
  RibConfig cfg;
  cfg.numPrefixes = 30;
  cfg.hubProbability = 0.8;  // make q7's hub pair well-populated
  rel::Database db;
  auto rib = generateRib(db, cfg);
  smt::NativeSolver solver(db.cvars());
  Table4Result r = runTable4(db, rib, solver);

  // Reachability strictly extends forwarding (transitive pairs appear).
  EXPECT_GT(r.q45.tuples, rib.forwardingRows);
  EXPECT_TRUE(db.has("R"));
  EXPECT_TRUE(db.has("T1"));
  EXPECT_TRUE(db.has("T2"));
  EXPECT_TRUE(db.has("T3"));

  // q6 keeps at most the R rows (the failure pattern can only restrict).
  EXPECT_LE(r.q6.tuples, r.q45.tuples);
  // q7 restricts T1 to one (src,dst) pair: far smaller than q6.
  EXPECT_LE(r.q7.tuples, r.q6.tuples);
  // q8 restricts R to sources = hubA.
  EXPECT_LE(r.q8.tuples, r.q45.tuples);

  // Every surviving condition is satisfiable (the solver step ran).
  for (const auto& row : db.table("T1").rows()) {
    EXPECT_NE(solver.check(row.cond), smt::Sat::Unsat);
  }
}

TEST(PipelineTest, T1ConditionsRespectTheFailurePattern) {
  RibConfig cfg;
  cfg.numPrefixes = 10;
  rel::Database db;
  auto rib = generateRib(db, cfg);
  smt::NativeSolver solver(db.cvars());
  runTable4(db, rib, solver);
  // Every T1 condition forces x_ + y_ + z_ = 1.
  CVarId x = db.cvars().find("x_");
  CVarId y = db.cvars().find("y_");
  CVarId z = db.cvars().find("z_");
  smt::Formula pattern = smt::Formula::lin(
      smt::LinTerm::make({{x, 1}, {y, 1}, {z, 1}}, -1), smt::CmpOp::Eq);
  for (const auto& row : db.table("T1").rows()) {
    EXPECT_TRUE(solver.implies(row.cond, pattern));
  }
}

TEST(PipelineTest, TuplesGrowWithScale) {
  RibConfig small, large;
  small.numPrefixes = 10;
  large.numPrefixes = 40;
  rel::Database db1, db2;
  auto rib1 = generateRib(db1, small);
  auto rib2 = generateRib(db2, large);
  smt::NativeSolver s1(db1.cvars()), s2(db2.cvars());
  auto r1 = runTable4(db1, rib1, s1);
  auto r2 = runTable4(db2, rib2, s2);
  EXPECT_GT(r2.q45.tuples, r1.q45.tuples);
  EXPECT_GT(r2.q6.tuples, r1.q6.tuples);
}

TEST(PipelineTest, FormattingProducesAlignedRows) {
  Table4Result r;
  r.q45.tuples = 10;
  std::string header = table4Header();
  std::string row = formatTable4Row(1000, r);
  EXPECT_NE(header.find("#prefix"), std::string::npos);
  EXPECT_NE(row.find("1000"), std::string::npos);
}

}  // namespace
}  // namespace faure::net
