// Tests for the synthetic RIB generator and text loader (net/rib_gen.hpp).
#include "net/rib_gen.hpp"

#include <gtest/gtest.h>

#include "relational/worlds.hpp"
#include "smt/solver.hpp"
#include "util/error.hpp"

namespace faure::net {
namespace {

TEST(RibGenTest, DeterministicInSeed) {
  RibConfig cfg;
  cfg.numPrefixes = 20;
  rel::Database db1, db2;
  auto r1 = generateRib(db1, cfg);
  auto r2 = generateRib(db2, cfg);
  EXPECT_EQ(r1.forwardingRows, r2.forwardingRows);
  ASSERT_EQ(db1.table("F").size(), db2.table("F").size());
  for (const auto& row : db1.table("F").rows()) {
    EXPECT_EQ(db2.table("F").conditionOf(row.vals), row.cond);
  }
}

TEST(RibGenTest, DifferentSeedsDiffer) {
  RibConfig a, b;
  a.numPrefixes = b.numPrefixes = 20;
  b.seed = 777;
  rel::Database db1, db2;
  generateRib(db1, a);
  generateRib(db2, b);
  size_t same = 0;
  for (const auto& row : db1.table("F").rows()) {
    if (!db2.table("F").conditionOf(row.vals).isFalse()) ++same;
  }
  EXPECT_LT(same, db1.table("F").size());
}

TEST(RibGenTest, DeclaresNamedBits) {
  RibConfig cfg;
  cfg.numPrefixes = 5;
  cfg.pathsPerPrefix = 5;
  rel::Database db;
  auto r = generateRib(db, cfg);
  EXPECT_EQ(r.bits.size(), 4u);
  EXPECT_EQ(db.cvars().find("x_"), r.bits[0]);
  EXPECT_EQ(db.cvars().find("y_"), r.bits[1]);
  EXPECT_EQ(db.cvars().find("z_"), r.bits[2]);
  EXPECT_EQ(db.cvars().find("b3_"), r.bits[3]);
}

TEST(RibGenTest, GuardsPartitionFailureSpace) {
  // The documented guard scheme — primary needs bit0 = 1, backup k needs
  // bits 0..k-1 = 0 and bit k = 1, the last resort needs all 0 — must
  // partition the failure space: exactly one path active in every world.
  RibConfig cfg;
  cfg.numPrefixes = 1;
  cfg.pathsPerPrefix = 4;  // 3 bits -> 8 worlds, enumerable
  rel::Database db;
  auto r = generateRib(db, cfg);
  ASSERT_EQ(r.bits.size(), 3u);
  auto bitEq = [&](size_t i, int64_t k) {
    return smt::Formula::cmp(Value::cvar(r.bits[i]), smt::CmpOp::Eq,
                             Value::fromInt(k));
  };
  std::vector<smt::Formula> guards;
  for (size_t rank = 0; rank < cfg.pathsPerPrefix; ++rank) {
    std::vector<smt::Formula> parts;
    for (size_t i = 0; i < rank; ++i) parts.push_back(bitEq(i, 0));
    if (rank + 1 < cfg.pathsPerPrefix) parts.push_back(bitEq(rank, 1));
    guards.push_back(smt::Formula::conj(std::move(parts)));
  }
  int worlds = 0;
  smt::forEachModel(smt::Formula::top(), db.cvars(), r.bits,
                    [&](const smt::Assignment& a) {
                      ++worlds;
                      int active = 0;
                      for (const auto& g : guards) {
                        if (smt::substitute(g, a).isTrue()) ++active;
                      }
                      EXPECT_EQ(active, 1);
                    });
  EXPECT_EQ(worlds, 8);
  // Every emitted row condition is realizable.
  smt::NativeSolver solver(db.cvars());
  for (const auto& row : db.table("F").rows()) {
    EXPECT_EQ(solver.check(row.cond), smt::Sat::Sat);
  }
}

TEST(RibGenTest, RowsScaleWithPrefixCount) {
  RibConfig small, large;
  small.numPrefixes = 10;
  large.numPrefixes = 100;
  rel::Database db1, db2;
  auto a = generateRib(db1, small);
  auto b = generateRib(db2, large);
  EXPECT_GT(b.forwardingRows, 5 * a.forwardingRows);
}

TEST(RibGenTest, RejectsDegenerateConfig) {
  RibConfig cfg;
  cfg.pathsPerPrefix = 1;
  rel::Database db;
  EXPECT_THROW(generateRib(db, cfg), EvalError);
}

TEST(RibLoaderTest, ParsesRoutesWithPreferenceOrder) {
  const char* text =
      "# comment\n"
      "1.2.3.0/24 7 8 9\n"
      "1.2.3.0/24 7 10 9\n"
      "4.5.6.0/24 11 12\n";
  rel::Database db;
  auto r = loadRibText(db, text);
  EXPECT_EQ(r.bits.size(), 1u);
  const auto& f = db.table("F");
  // Primary hops unconditional on bit... guard of rank 0 is bit0=1.
  Value flow = Value::parsePrefix("1.2.3.0/24");
  EXPECT_FALSE(
      f.conditionOf({flow, Value::fromInt(7), Value::fromInt(8)}).isFalse());
  EXPECT_FALSE(
      f.conditionOf({flow, Value::fromInt(7), Value::fromInt(10)}).isFalse());
  // The single-path prefix's hops carry the last-resort guard for a
  // 1-path group: empty condition.
  Value flow2 = Value::parsePrefix("4.5.6.0/24");
  EXPECT_TRUE(f.conditionOf({flow2, Value::fromInt(11), Value::fromInt(12)})
                  .isTrue());
}

TEST(RibLoaderTest, RejectsMalformedLines) {
  rel::Database db;
  EXPECT_THROW(loadRibText(db, "1.2.3.0/24\n"), EvalError);
  rel::Database db2;
  EXPECT_THROW(loadRibText(db2, "\n\n"), EvalError);
}

}  // namespace
}  // namespace faure::net
