// Integration check: the full Table-4 pipeline is loss-less at a scale
// where every possible world can be enumerated (2 prefixes, 5 paths
// each -> 4 failure bits -> 16 worlds).
#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "datalog/pure_eval.hpp"
#include "net/pipeline.hpp"
#include "relational/worlds.hpp"

namespace faure::net {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

TEST(PipelineLossLess, ReachabilityMatchesEveryWorld) {
  RibConfig cfg;
  cfg.numPrefixes = 2;
  rel::Database db;
  RibGenResult rib = generateRib(db, cfg);
  ASSERT_EQ(rib.bits.size(), 4u);  // 16 worlds

  smt::NativeSolver solver(db.cvars());
  Table4Result result = runTable4(db, rib, solver);
  (void)result;

  CVarRegistry pureReg;
  dl::Program reach = dl::parseProgram(
      "R(f,n1,n2) :- F(f,n1,n2).\n"
      "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
      pureReg);

  // Compare the pipeline's R (left in db) against pure reachability on
  // each instantiated forwarding world. db also holds T1..T3 now, so
  // enumerate worlds of a single-table view sharing the registry.
  rel::Database fOnly;
  fOnly.cvars() = db.cvars();
  fOnly.put(db.table("F"));

  int worlds = 0;
  bool ran = rel::forEachWorld(
      fOnly, 1u << 10,
      [&](const smt::Assignment& a, const rel::World& world) {
        ++worlds;
        rel::Database ground;
        auto& f = ground.create(anySchema("F", 3));
        for (const auto& row : world.at("F")) f.insertConcrete(row);
        auto pure = dl::evalPure(reach, ground);
        rel::GroundRelation want;
        for (const auto& row : pure.relation("R").rows()) {
          want.insert(row.vals);
        }
        rel::GroundRelation got = rel::instantiate(db.table("R"), a);
        ASSERT_EQ(got, want);
      });
  ASSERT_TRUE(ran);
  EXPECT_EQ(worlds, 16);
}

TEST(PipelineLossLess, T1MatchesFilteredWorlds) {
  // q6's T1 must equal R restricted to worlds with x_+y_+z_ = 1.
  RibConfig cfg;
  cfg.numPrefixes = 2;
  rel::Database db;
  RibGenResult rib = generateRib(db, cfg);
  smt::NativeSolver solver(db.cvars());
  runTable4(db, rib, solver);

  rel::Database view;
  view.cvars() = db.cvars();
  view.put(db.table("R"));
  view.put(db.table("T1"));

  CVarId x = db.cvars().find("x_");
  CVarId y = db.cvars().find("y_");
  CVarId z = db.cvars().find("z_");
  bool ran = rel::forEachWorld(
      view, 1u << 10,
      [&](const smt::Assignment& a, const rel::World& world) {
        int64_t sum = a.at(x).asInt() + a.at(y).asInt() + a.at(z).asInt();
        if (sum == 1) {
          EXPECT_EQ(world.at("T1"), world.at("R"));
        } else {
          EXPECT_TRUE(world.at("T1").empty());
        }
      });
  ASSERT_TRUE(ran);
}

}  // namespace
}  // namespace faure::net
