// Tests for the FRR builder (net/frr.hpp) against Figure 1 / Table 3.
#include "net/frr.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"

namespace faure::net {
namespace {

using smt::CmpOp;
using smt::Formula;

TEST(FrrTest, DeclareBitIsIdempotent) {
  rel::Database db;
  CVarId a = FrrNetwork::declareBit(db, "x_");
  CVarId b = FrrNetwork::declareBit(db, "x_");
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.cvars().info(a).domain.size(), 2u);
}

TEST(FrrTest, Figure1TableMatchesTable3) {
  rel::Database db;
  FrrNetwork::figure1().buildForwarding(db);
  const auto& f = db.table("F");
  EXPECT_EQ(f.size(), 7u);
  CVarId x = db.cvars().find("x_");
  ASSERT_NE(x, CVarRegistry::kNotFound);
  // Row (1,2)[x_ = 1], row (1,3)[x_ = 0] — first two rows of Table 3.
  Value f0 = Value::sym("f0");
  EXPECT_EQ(f.conditionOf({f0, Value::fromInt(1), Value::fromInt(2)}),
            Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)));
  EXPECT_EQ(f.conditionOf({f0, Value::fromInt(1), Value::fromInt(3)}),
            Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(0)));
  // (4,5) unconditional.
  EXPECT_TRUE(
      f.conditionOf({f0, Value::fromInt(4), Value::fromInt(5)}).isTrue());
}

TEST(FrrTest, CustomNetworkTwoFlows) {
  rel::Database db;
  FrrNetwork net;
  net.add("a", {1, 2, "l0_", 1});
  net.add("a", {1, 3, "l0_", 0});
  net.add("b", {1, 2, "", 1});
  net.buildForwarding(db);
  EXPECT_EQ(db.table("F").size(), 3u);
  // Flows are distinct data parts.
  EXPECT_TRUE(db.table("F")
                  .conditionOf({Value::sym("b"), Value::fromInt(1),
                                Value::fromInt(2)})
                  .isTrue());
}

TEST(FrrTest, ReachabilityRespectsFlowSeparation) {
  rel::Database db;
  FrrNetwork net;
  net.add("a", {1, 2, "", 1});
  net.add("b", {2, 3, "", 1});
  net.buildForwarding(db);
  auto res = fl::evalFaure(
      dl::parseProgram("R(f,n1,n2) :- F(f,n1,n2).\n"
                       "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
                       db.cvars()),
      db);
  // No cross-flow path 1 -> 3.
  EXPECT_TRUE(res.relation("R")
                  .conditionOf({Value::sym("a"), Value::fromInt(1),
                                Value::fromInt(3)})
                  .isFalse());
}

}  // namespace
}  // namespace faure::net
