// Tests for topology generators and FRR derivation (net/topology.hpp).
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "util/error.hpp"

namespace faure::net {
namespace {

TEST(TopologyTest, Line) {
  Topology t = makeLine(5);
  EXPECT_EQ(t.nodeCount, 5);
  EXPECT_EQ(t.links.size(), 4u);
  EXPECT_EQ(t.neighbors(1), (std::vector<int64_t>{2}));
  EXPECT_EQ(t.neighbors(3), (std::vector<int64_t>{2, 4}));
}

TEST(TopologyTest, Ring) {
  Topology t = makeRing(4);
  EXPECT_EQ(t.links.size(), 4u);
  EXPECT_EQ(t.neighbors(1), (std::vector<int64_t>{2, 4}));
  EXPECT_THROW(makeRing(2), EvalError);
}

TEST(TopologyTest, Star) {
  Topology t = makeStar(5);
  EXPECT_EQ(t.neighbors(1).size(), 4u);
  EXPECT_EQ(t.neighbors(3), (std::vector<int64_t>{1}));
}

TEST(TopologyTest, ClosShape) {
  Topology t = makeClos(2, 3, 2);
  EXPECT_EQ(t.nodeCount, 2 + 3 + 6);
  // Each spine neighbors every leaf.
  EXPECT_EQ(t.neighbors(1), (std::vector<int64_t>{3, 4, 5}));
  // Each leaf: both spines + its hosts.
  EXPECT_EQ(t.neighbors(3), (std::vector<int64_t>{1, 2, 6, 7}));
  // Hosts hang off one leaf.
  EXPECT_EQ(t.neighbors(6), (std::vector<int64_t>{3}));
}

TEST(TopologyTest, RandomIsConnectedAndDeterministic) {
  Topology a = makeRandom(10, 0.3, 7);
  Topology b = makeRandom(10, 0.3, 7);
  EXPECT_EQ(a.links.size(), b.links.size());
  // The spanning line keeps it connected.
  EXPECT_GE(a.links.size(), 9u);
}

TEST(FrrDerivationTest, LineForwardsDownhill) {
  Topology t = makeLine(4);
  FrrFromTopologyOptions opts;
  opts.protectedFraction = 0.0;
  FrrDerivation frr = deriveFrrTowards(t, 1, opts);
  EXPECT_TRUE(frr.bits.empty());
  rel::Database db;
  frr.network.buildForwarding(db);
  // Unconditional chain 4->3->2->1.
  EXPECT_EQ(db.table("F").size(), 3u);
  for (const auto& row : db.table("F").rows()) {
    EXPECT_TRUE(row.cond.isTrue());
  }
}

TEST(FrrDerivationTest, ProtectedLinksNeedAlternatives) {
  // On a line there is a single downhill neighbor: nothing can be
  // protected even when requested.
  Topology line = makeLine(4);
  FrrFromTopologyOptions all;
  all.protectedFraction = 1.0;
  EXPECT_TRUE(deriveFrrTowards(line, 1, all).bits.empty());
  // In a Clos fabric, leaves have two spines: protection appears.
  Topology clos = makeClos(2, 2, 1);
  FrrDerivation frr = deriveFrrTowards(clos, /*dst=*/5, all);
  EXPECT_FALSE(frr.bits.empty());
}

TEST(FrrDerivationTest, ReachabilityHoldsUnderAllFailures) {
  // Destination host on a Clos fabric: every node reaches it in every
  // failure world (each protected link has a live detour).
  Topology clos = makeClos(2, 3, 2);
  FrrFromTopologyOptions opts;
  opts.protectedFraction = 1.0;
  FrrDerivation frr = deriveFrrTowards(clos, 6, opts);
  rel::Database db;
  frr.network.buildForwarding(db);
  smt::NativeSolver solver(db.cvars());
  auto res = fl::evalFaure(
      dl::parseProgram("R(f,a,b) :- F(f,a,b).\n"
                       "R(f,a,b) :- F(f,a,c), R(f,c,b).\n",
                       db.cvars()),
      db, &solver, fl::EvalOptions{});
  for (int64_t n = 1; n <= clos.nodeCount; ++n) {
    if (n == 6) continue;
    smt::Formula c = res.relation("R").conditionOf(
        {Value::sym("f0"), Value::fromInt(n), Value::fromInt(6)});
    EXPECT_TRUE(solver.implies(smt::Formula::top(), c))
        << "node " << n << " not always-reachable: " << c.toString();
  }
}

TEST(FrrDerivationTest, BadDestinationThrows) {
  Topology t = makeLine(3);
  EXPECT_THROW(deriveFrrTowards(t, 9), EvalError);
  EXPECT_THROW(deriveFrrTowards(t, 0), EvalError);
}

}  // namespace
}  // namespace faure::net
