// Tests for the Database container (relational/database.hpp).
#include "relational/database.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace faure::rel {
namespace {

Schema s(const std::string& name, size_t arity) {
  std::vector<Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return Schema(name, attrs);
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  CTable& t = db.create(s("T", 2));
  EXPECT_TRUE(db.has("T"));
  EXPECT_FALSE(db.has("U"));
  EXPECT_EQ(&db.table("T"), &t);
  EXPECT_EQ(db.find("T"), &t);
  EXPECT_EQ(db.find("U"), nullptr);
  EXPECT_THROW(db.table("U"), EvalError);
  EXPECT_THROW(db.create(s("T", 2)), EvalError);
}

TEST(DatabaseTest, PutInsertsOrReplaces) {
  Database db;
  CTable fresh(s("T", 1));
  fresh.insertConcrete({Value::fromInt(1)});
  db.put(fresh);
  EXPECT_EQ(db.table("T").size(), 1u);

  CTable replacement(s("T", 1));
  replacement.insertConcrete({Value::fromInt(2)});
  replacement.insertConcrete({Value::fromInt(3)});
  db.put(replacement);
  EXPECT_EQ(db.table("T").size(), 2u);
  EXPECT_TRUE(db.table("T").conditionOf({Value::fromInt(1)}).isFalse());
}

TEST(DatabaseTest, MoveTransfersEverything) {
  Database a;
  a.cvars().declareInt("x_", 0, 1);
  a.create(s("T", 1)).insertConcrete({Value::fromInt(7)});
  Database b = std::move(a);
  EXPECT_TRUE(b.has("T"));
  EXPECT_EQ(b.cvars().size(), 1u);
}

TEST(DatabaseTest, ToStringListsTables) {
  Database db;
  db.create(s("B", 1)).insertConcrete({Value::fromInt(1)});
  db.create(s("A", 1));
  std::string out = db.toString();
  // Tables print in name order with their rows.
  EXPECT_NE(out.find("A(a0)"), std::string::npos);
  EXPECT_NE(out.find("B(a0)"), std::string::npos);
  EXPECT_LT(out.find("A(a0)"), out.find("B(a0)"));
}

TEST(DatabaseTest, RegistryAssignmentPreservesIds) {
  CVarRegistry reg;
  CVarId x = reg.declareInt("x_", 0, 1);
  Database db;
  db.cvars() = reg;
  EXPECT_EQ(db.cvars().find("x_"), x);
  // The copy is independent.
  db.cvars().declare("extra_", ValueType::Sym);
  EXPECT_EQ(reg.find("extra_"), CVarRegistry::kNotFound);
}

}  // namespace
}  // namespace faure::rel
