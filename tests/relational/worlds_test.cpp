// Tests for possible-world enumeration (relational/worlds.hpp) — the
// rep() semantics that loss-less modeling is defined against.
#include "relational/worlds.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace faure::rel {
namespace {

using smt::CmpOp;
using smt::Formula;

TEST(WorldsTest, InstantiateSubstitutesAndFilters) {
  Database db;
  CVarId x = db.cvars().declareInt("x_", 0, 1);
  CTable& t = db.create(Schema("T", {{"a", ValueType::Any}}));
  t.insert({Value::cvar(x)},
           Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)));
  t.insertConcrete({Value::fromInt(9)});

  GroundRelation r1 = instantiate(db.table("T"), {{x, Value::fromInt(1)}});
  EXPECT_EQ(r1.size(), 2u);
  EXPECT_TRUE(r1.count({Value::fromInt(1)}) == 1);
  EXPECT_TRUE(r1.count({Value::fromInt(9)}) == 1);

  GroundRelation r0 = instantiate(db.table("T"), {{x, Value::fromInt(0)}});
  EXPECT_EQ(r0.size(), 1u);
  EXPECT_TRUE(r0.count({Value::fromInt(9)}) == 1);
}

TEST(WorldsTest, InstantiateRejectsPartialAssignment) {
  Database db;
  CVarId x = db.cvars().declareInt("x_", 0, 1);
  CTable& t = db.create(Schema("T", {{"a", ValueType::Any}}));
  t.insertConcrete({Value::cvar(x)});
  EXPECT_THROW(instantiate(db.table("T"), {}), EvalError);
}

TEST(WorldsTest, ForEachWorldCountsAssignments) {
  Database db;
  db.cvars().declareInt("x_", 0, 1);
  db.cvars().declareInt("y_", 0, 2);
  db.create(Schema("T", {{"a", ValueType::Any}}));
  int count = 0;
  ASSERT_TRUE(forEachWorld(db, 1000,
                           [&](const smt::Assignment&, const World&) {
                             ++count;
                           }));
  EXPECT_EQ(count, 2 * 3);
}

TEST(WorldsTest, ForEachWorldRefusesUnboundedDomains) {
  Database db;
  db.cvars().declare("p_", ValueType::Int);
  db.create(Schema("T", {{"a", ValueType::Any}}));
  EXPECT_FALSE(
      forEachWorld(db, 1000, [](const smt::Assignment&, const World&) {}));
}

TEST(WorldsTest, RepCollapsesEquivalentWorlds) {
  // A table whose contents do not depend on y_ has fewer distinct ground
  // relations than assignments.
  Database db;
  CVarId x = db.cvars().declareInt("x_", 0, 1);
  db.cvars().declareInt("y_", 0, 1);
  CTable& t = db.create(Schema("T", {{"a", ValueType::Any}}));
  t.insert({Value::fromInt(7)},
           Formula::cmp(Value::cvar(x), CmpOp::Eq, Value::fromInt(1)));
  auto rep = repOfTable(db.table("T"), db.cvars());
  // Two distinct relations: {} and {(7)}.
  EXPECT_EQ(rep.size(), 2u);
}

TEST(WorldsTest, TableTwoRepExample) {
  // The paper's P^i (Table 2) denotes one regular relation per choice of
  // (x_, y_): x_ ∈ {ABC, ADEC} matters, y_ ranges over 3 prefixes but
  // y_ = 1.2.3.4 kills the second row.
  Database db;
  Value abc = Value::path({"ABC"});
  Value adec = Value::path({"ADEC"});
  Value abe = Value::path({"ABE"});
  CVarId x = db.cvars().declare("x_", ValueType::Path, {abc, adec});
  CVarId y = db.cvars().declare("y_", ValueType::Prefix,
                                {Value::parsePrefix("1.2.3.4"),
                                 Value::parsePrefix("1.2.3.5"),
                                 Value::parsePrefix("1.2.3.6")});
  CTable& p = db.create(Schema("Pi", {{"dest", ValueType::Any},
                                      {"path", ValueType::Any}}));
  p.insert({Value::parsePrefix("1.2.3.4"), Value::cvar(x)},
           Formula::disj2(Formula::cmp(Value::cvar(x), CmpOp::Eq, abc),
                          Formula::cmp(Value::cvar(x), CmpOp::Eq, adec)));
  p.insert({Value::cvar(y), abe},
           Formula::cmp(Value::cvar(y), CmpOp::Ne,
                        Value::parsePrefix("1.2.3.4")));
  p.insertConcrete({Value::parsePrefix("1.2.3.6"), adec});

  auto rep = repOfTable(db.table("Pi"), db.cvars());
  // x_ choice (2) × y_ outcome (1.2.3.4 -> row absent; .5/.6 -> row
  // present with that dest) = 2 × 3 assignments, but .5 and .6 give
  // distinct relations while .4 collapses: 2 * 3 = 6 distinct relations.
  EXPECT_EQ(rep.size(), 6u);
  // Every world contains the unconditional row.
  for (const auto& ground : rep) {
    EXPECT_TRUE(ground.count({Value::parsePrefix("1.2.3.6"), adec}) == 1);
  }
}

}  // namespace
}  // namespace faure::rel
