// Unit tests for persistent secondary join indexes (rel::JoinIndex,
// relational/ctable.hpp): lazy watermark builds, wild-row handling for
// c-variable key columns, in-place remaps under pruneIf/eraseWithData,
// the consolidate rebuild dropping indexes, and cross-copy persistence
// (the incremental engine retains tables — and their indexes — by
// copying them across epochs).
#include <gtest/gtest.h>

#include "relational/ctable.hpp"

namespace faure::rel {
namespace {

using smt::CmpOp;
using smt::Formula;

class JoinIndexTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId u_ = reg_.declareInt("u_", 0, 9);

  Schema schema() {
    return Schema("E", {{"a", ValueType::Int}, {"b", ValueType::Int}});
  }
  Value v(int64_t n) { return Value::fromInt(n); }
  static size_t hashOf(const Value& val) {
    return JoinIndex::hashStep(JoinIndex::hashInit(), val);
  }
};

TEST_F(JoinIndexTest, LazyBuildBucketsByKeyColumn) {
  CTable t(schema());
  t.insertConcrete({v(1), v(10)});
  t.insertConcrete({v(2), v(10)});
  t.insertConcrete({v(3), v(20)});
  const JoinIndex& idx = t.ensureJoinIndex({1});
  EXPECT_EQ(idx.keyArgs(), (std::vector<size_t>{1}));
  EXPECT_EQ(idx.builtUpTo(), 3u);
  EXPECT_EQ(idx.indexedRows(), 3u);
  EXPECT_EQ(idx.wildCount(), 0u);
  const std::vector<size_t>* b10 = idx.bucket(hashOf(v(10)));
  ASSERT_NE(b10, nullptr);
  EXPECT_EQ(*b10, (std::vector<size_t>{0, 1}));  // ascending
  const std::vector<size_t>* b20 = idx.bucket(hashOf(v(20)));
  ASSERT_NE(b20, nullptr);
  EXPECT_EQ(*b20, (std::vector<size_t>{2}));
  EXPECT_EQ(idx.bucket(hashOf(v(99))), nullptr);
  EXPECT_EQ(t.joinIndexCount(), 1u);
}

TEST_F(JoinIndexTest, WatermarkExtensionCoversOnlyNewRows) {
  CTable t(schema());
  t.insertConcrete({v(1), v(10)});
  t.ensureJoinIndex({1});
  t.insertConcrete({v(2), v(10)});
  t.insertConcrete({v(3), v(30)});
  // findJoinIndex never builds: the watermark is stale until ensure.
  const JoinIndex* stale = t.findJoinIndex({1});
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->builtUpTo(), 1u);
  const JoinIndex& idx = t.ensureJoinIndex({1});
  EXPECT_EQ(idx.builtUpTo(), 3u);
  EXPECT_EQ(*idx.bucket(hashOf(v(10))), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(*idx.bucket(hashOf(v(30))), (std::vector<size_t>{2}));
}

TEST_F(JoinIndexTest, CVarKeyColumnsLandInWildRows) {
  CTable t(schema());
  t.insertConcrete({v(1), v(10)});
  t.insertConcrete({v(2), Value::cvar(u_)});
  t.insertConcrete({v(3), v(10)});
  const JoinIndex& idx = t.ensureJoinIndex({1});
  EXPECT_EQ(idx.indexedRows(), 2u);
  EXPECT_EQ(idx.wildRows(), (std::vector<size_t>{1}));
  // A c-variable in a non-key column does not make the row wild.
  const JoinIndex& byA = t.ensureJoinIndex({0});
  EXPECT_EQ(byA.wildCount(), 0u);
  EXPECT_EQ(byA.indexedRows(), 3u);
  EXPECT_EQ(t.joinIndexCount(), 2u);
}

TEST_F(JoinIndexTest, PruneIfRemapsAllIndexesInPlace) {
  CTable t(schema());
  for (int i = 0; i < 6; ++i) t.insertConcrete({v(i), v(i % 2)});
  t.insertConcrete({v(6), Value::cvar(u_)});
  t.ensureJoinIndex({1});
  t.ensureJoinIndex({0});
  // Drop rows 1 and 3 (a=1, a=3); survivors shift down monotonically.
  size_t removed = t.pruneIf([](const Row& r) {
    return r.vals[0] == Value::fromInt(1) || r.vals[0] == Value::fromInt(3);
  });
  EXPECT_EQ(removed, 2u);
  const JoinIndex* idx = t.findJoinIndex({1});
  ASSERT_NE(idx, nullptr);
  // Old rows {0,2,4} (b=0) -> new {0,1,2}; old {5} (b=1) -> {3}; the
  // wild row 6 -> 4. The watermark still covers the whole table.
  EXPECT_EQ(*idx->bucket(hashOf(v(0))), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(*idx->bucket(hashOf(v(1))), (std::vector<size_t>{3}));
  EXPECT_EQ(idx->wildRows(), (std::vector<size_t>{4}));
  EXPECT_EQ(idx->builtUpTo(), t.size());
  EXPECT_EQ(idx->indexedRows(), 4u);
}

TEST_F(JoinIndexTest, EmptiedBucketsAreErased) {
  CTable t(schema());
  t.insertConcrete({v(1), v(10)});
  t.insertConcrete({v(2), v(20)});
  t.ensureJoinIndex({1});
  t.eraseWithData({v(1), v(10)});
  const JoinIndex* idx = t.findJoinIndex({1});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->bucket(hashOf(v(10))), nullptr);
  EXPECT_EQ(*idx->bucket(hashOf(v(20))), (std::vector<size_t>{0}));
  EXPECT_EQ(idx->builtUpTo(), 1u);
}

TEST_F(JoinIndexTest, ConsolidateRebuildDropsIndexes) {
  CTable t(schema());
  Formula c1 = Formula::cmp(Value::cvar(u_), CmpOp::Eq, v(1));
  Formula c2 = Formula::cmp(Value::cvar(u_), CmpOp::Eq, v(2));
  t.append({v(1), v(10)}, c1);
  t.append({v(1), v(10)}, c2);  // duplicate data part -> merge on consolidate
  t.ensureJoinIndex({1});
  t.consolidate();
  EXPECT_EQ(t.size(), 1u);
  // The merge renumbered rows; stale indexes would probe wrong rows, so
  // the rebuild drops them and the next ensure starts fresh.
  EXPECT_EQ(t.joinIndexCount(), 0u);
  EXPECT_EQ(t.ensureJoinIndex({1}).builtUpTo(), 1u);
}

TEST_F(JoinIndexTest, ConsolidateWithoutMergeKeepsIndexes) {
  CTable t(schema());
  t.insertConcrete({v(1), v(10)});
  t.insertConcrete({v(2), v(20)});
  t.ensureJoinIndex({1});
  t.consolidate();  // nothing merges: rows (and indexes) untouched
  EXPECT_EQ(t.joinIndexCount(), 1u);
  EXPECT_EQ(t.findJoinIndex({1})->builtUpTo(), 2u);
}

TEST_F(JoinIndexTest, CopiesCarryIndexesAcrossEpochs) {
  CTable t(schema());
  t.insertConcrete({v(1), v(10)});
  t.ensureJoinIndex({1});
  CTable copy = t;  // the incremental engine's epoch retention
  const JoinIndex* idx = copy.findJoinIndex({1});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->builtUpTo(), 1u);
  // The copy's index is independent: extending it leaves the original's
  // watermark alone.
  copy.insertConcrete({v(2), v(10)});
  copy.ensureJoinIndex({1});
  EXPECT_EQ(copy.findJoinIndex({1})->builtUpTo(), 2u);
  EXPECT_EQ(t.findJoinIndex({1})->builtUpTo(), 1u);
}

}  // namespace
}  // namespace faure::rel
