// Unit tests for c-tables (relational/ctable.hpp).
#include "relational/ctable.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace faure::rel {
namespace {

using smt::CmpOp;
using smt::Formula;

class CTableTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  CVarId x_ = reg_.declare("x_", ValueType::Path);

  Schema pathSchema() {
    return Schema("P", {{"dest", ValueType::Prefix}, {"path", ValueType::Path}});
  }
  Value dest(const char* s) { return Value::parsePrefix(s); }
  Value path(std::initializer_list<const char*> names) {
    return Value::path(std::vector<std::string>(names.begin(), names.end()));
  }
};

TEST_F(CTableTest, InsertAndLookup) {
  CTable t(pathSchema());
  EXPECT_TRUE(t.insertConcrete({dest("1.2.3.4"), path({"ABC"})}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.conditionOf({dest("1.2.3.4"), path({"ABC"})}).isTrue());
  EXPECT_TRUE(t.conditionOf({dest("1.2.3.5"), path({"ABC"})}).isFalse());
}

TEST_F(CTableTest, DuplicateInsertIsNoChange) {
  CTable t(pathSchema());
  EXPECT_TRUE(t.insertConcrete({dest("1.2.3.4"), path({"ABC"})}));
  EXPECT_FALSE(t.insertConcrete({dest("1.2.3.4"), path({"ABC"})}));
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(CTableTest, ConditionsMergeWithOr) {
  CTable t(pathSchema());
  Formula c1 = Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ABC"}));
  Formula c2 = Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ADEC"}));
  EXPECT_TRUE(t.insert({dest("1.2.3.4"), Value::cvar(x_)}, c1));
  EXPECT_TRUE(t.insert({dest("1.2.3.4"), Value::cvar(x_)}, c2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.conditionOf({dest("1.2.3.4"), Value::cvar(x_)}),
            Formula::disj2(c1, c2));
  // Re-inserting an already-covered condition changes nothing.
  EXPECT_FALSE(t.insert({dest("1.2.3.4"), Value::cvar(x_)}, c1));
}

TEST_F(CTableTest, FalseConditionRowsAreDropped) {
  CTable t(pathSchema());
  EXPECT_FALSE(t.insert({dest("1.2.3.4"), path({"ABC"})}, Formula::bottom()));
  EXPECT_TRUE(t.empty());
}

TEST_F(CTableTest, ArityMismatchThrows) {
  CTable t(pathSchema());
  EXPECT_THROW(t.insertConcrete({dest("1.2.3.4")}), EvalError);
}

TEST_F(CTableTest, TypeMismatchThrows) {
  CTable t(pathSchema());
  EXPECT_THROW(t.insertConcrete({Value::fromInt(5), path({"ABC"})}),
               TypeError);
}

TEST_F(CTableTest, CVarEntriesBypassTypeCheck) {
  CTable t(pathSchema());
  EXPECT_TRUE(t.insertConcrete({dest("1.2.3.4"), Value::cvar(x_)}));
}

TEST_F(CTableTest, AppendKeepsDuplicates) {
  CTable t(pathSchema());
  Formula c1 = Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ABC"}));
  Formula c2 = Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ADEC"}));
  EXPECT_TRUE(t.append({dest("1.2.3.4"), path({"X"})}, c1));
  EXPECT_TRUE(t.append({dest("1.2.3.4"), path({"X"})}, c2));
  EXPECT_EQ(t.size(), 2u);
  // conditionOf ORs duplicates.
  EXPECT_EQ(t.conditionOf({dest("1.2.3.4"), path({"X"})}),
            Formula::disj2(c1, c2));
  EXPECT_EQ(t.rowsWithData({dest("1.2.3.4"), path({"X"})}).size(), 2u);
  t.consolidate();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.conditionOf({dest("1.2.3.4"), path({"X"})}),
            Formula::disj2(c1, c2));
}

TEST_F(CTableTest, PruneIf) {
  CTable t(pathSchema());
  t.insertConcrete({dest("1.2.3.4"), path({"A"})});
  t.insertConcrete({dest("1.2.3.5"), path({"B"})});
  t.insertConcrete({dest("1.2.3.6"), path({"C"})});
  size_t removed = t.pruneIf([&](const Row& r) {
    return r.vals[0] == dest("1.2.3.5");
  });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(t.size(), 2u);
  // Index is rebuilt correctly.
  EXPECT_TRUE(t.conditionOf({dest("1.2.3.5"), path({"B"})}).isFalse());
  EXPECT_TRUE(t.conditionOf({dest("1.2.3.6"), path({"C"})}).isTrue());
}

TEST_F(CTableTest, CollectVars) {
  CTable t(pathSchema());
  t.insert({dest("1.2.3.4"), Value::cvar(x_)},
           Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ABC"})));
  auto vars = t.collectVars();
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], x_);
}

TEST_F(CTableTest, EraseWithData) {
  CTable t(pathSchema());
  t.insertConcrete({dest("1.2.3.4"), path({"ABC"})});
  t.insert({dest("1.2.3.4"), Value::cvar(x_)},
           Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ABC"})));
  t.insertConcrete({dest("5.6.7.8"), path({"D"})});
  // Retraction is by exact data part, whatever the row's condition.
  EXPECT_EQ(t.eraseWithData({dest("1.2.3.4"), Value::cvar(x_)}), 1u);
  EXPECT_EQ(t.size(), 2u);
  // A miss is 0, not an error — and leaves the table alone.
  EXPECT_EQ(t.eraseWithData({dest("9.9.9.9"), path({"Z"})}), 0u);
  EXPECT_EQ(t.size(), 2u);
  // Survivors are still findable through the rebuilt index.
  EXPECT_EQ(t.rowsWithData({dest("1.2.3.4"), path({"ABC"})}).size(), 1u);
  // Arity violations go through the usual row check.
  EXPECT_THROW(t.eraseWithData({dest("1.2.3.4")}), EvalError);
}

TEST_F(CTableTest, SchemaHelpers) {
  Schema s = pathSchema();
  EXPECT_EQ(s.indexOf("dest"), 0u);
  EXPECT_EQ(s.indexOf("path"), 1u);
  EXPECT_EQ(s.indexOf("nope"), SIZE_MAX);
  Schema r = s.renamed("Q");
  EXPECT_EQ(r.name(), "Q");
  EXPECT_EQ(r.arity(), 2u);
}

}  // namespace
}  // namespace faure::rel
