// Tests for the extended relational algebra over c-tables — including the
// paper's Table-2 join example.
#include "relational/algebra.hpp"

#include <gtest/gtest.h>

#include "relational/database.hpp"
#include "relational/worlds.hpp"
#include "util/error.hpp"

namespace faure::rel {
namespace {

using smt::CmpOp;
using smt::Formula;

Value path(std::initializer_list<const char*> names) {
  return Value::path(std::vector<std::string>(names.begin(), names.end()));
}

/// Builds the paper's PATH' database (Table 2): c-table P^i plus the
/// regular cost table C.
class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = db_.cvars().declare(
        "x_", ValueType::Path, {path({"ABC"}), path({"ADEC"}), path({"ABE"})});
    y_ = db_.cvars().declare("y_", ValueType::Prefix,
                             {Value::parsePrefix("1.2.3.4"),
                              Value::parsePrefix("1.2.3.5"),
                              Value::parsePrefix("1.2.3.6")});
    CTable& p = db_.create(Schema(
        "Pi", {{"dest", ValueType::Any}, {"path", ValueType::Any}}));
    p.insert({Value::parsePrefix("1.2.3.4"), Value::cvar(x_)},
             Formula::disj2(
                 Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ABC"})),
                 Formula::cmp(Value::cvar(x_), CmpOp::Eq, path({"ADEC"}))));
    p.insert({Value::cvar(y_), path({"ABE"})},
             Formula::cmp(Value::cvar(y_), CmpOp::Ne,
                          Value::parsePrefix("1.2.3.4")));
    p.insertConcrete({Value::parsePrefix("1.2.3.6"), path({"ADEC"})});

    CTable& c = db_.create(
        Schema("C", {{"path", ValueType::Path}, {"cost", ValueType::Int}}));
    c.insertConcrete({path({"ABC"}), Value::fromInt(3)});
    c.insertConcrete({path({"ADEC"}), Value::fromInt(4)});
    c.insertConcrete({path({"ABE"}), Value::fromInt(3)});
  }

  Database db_;
  CVarId x_ = 0;
  CVarId y_ = 0;
};

TEST_F(AlgebraTest, SelectOnConstantColumn) {
  // dest = 1.2.3.6 matches the concrete row outright and the y_ row
  // conditionally.
  CTable out = select(db_.table("Pi"), 0, CmpOp::Eq,
                      Value::parsePrefix("1.2.3.6"));
  EXPECT_EQ(out.size(), 2u);
  Formula condConcrete =
      out.conditionOf({Value::parsePrefix("1.2.3.6"), path({"ADEC"})});
  EXPECT_TRUE(condConcrete.isTrue());
  Formula condVar = out.conditionOf({Value::cvar(y_), path({"ABE"})});
  EXPECT_FALSE(condVar.isFalse());
}

TEST_F(AlgebraTest, SelectDropsContradictedRows) {
  CTable out = select(db_.table("Pi"), 1, CmpOp::Eq, path({"ZZZ"}));
  // The two concrete-path rows fold to false; only the x_ row survives
  // with an (unsatisfiable under its domain, but syntactically open)
  // condition.
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AlgebraTest, JoinConcatenatesConditions) {
  // P^i ⋈ C on path: the Table-2 example join behind q2.
  CTable out = join(db_.table("Pi"), db_.table("C"), {{1, 0}}, "J");
  // The x_ row joins all three cost rows (conditionally); ABE row joins
  // ABE; concrete ADEC row joins ADEC.
  EXPECT_EQ(out.schema().arity(), 4u);
  smt::NativeSolver solver(db_.cvars());
  size_t pruned = pruneUnsat(out, solver);
  (void)pruned;
  // After pruning, x_ = ABE is incompatible with the first row's
  // condition (x_ = ABC | x_ = ADEC).
  for (const auto& row : out.rows()) {
    EXPECT_NE(solver.check(row.cond), smt::Sat::Unsat);
  }
}

TEST_F(AlgebraTest, ProjectMergesConditions) {
  CTable out = project(db_.table("Pi"), {1}, "Paths");
  EXPECT_EQ(out.schema().arity(), 1u);
  // Rows: x_, ABE, ADEC.
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(AlgebraTest, UnionMergesEqualDataParts) {
  CTable a = db_.table("C");
  CTable out = unionAll(a, a, "U");
  EXPECT_EQ(out.size(), a.size());
}

TEST_F(AlgebraTest, RenameKeepsRows) {
  CTable out = rename(db_.table("C"), "C2");
  EXPECT_EQ(out.schema().name(), "C2");
  EXPECT_EQ(out.size(), db_.table("C").size());
}

TEST_F(AlgebraTest, DifferenceNegatesMatches) {
  // C - (rows with path ABC): removing a concrete row.
  CTable abc(db_.table("C").schema().renamed("D"));
  abc.insertConcrete({path({"ABC"}), Value::fromInt(3)});
  CTable out = difference(db_.table("C"), abc, "Diff");
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.conditionOf({path({"ABC"}), Value::fromInt(3)}).isFalse());
}

TEST_F(AlgebraTest, DifferenceConditionalRow) {
  // Pi - {(1.2.3.6, ADEC)}: the concrete row disappears; the y_ row picks
  // up the condition that it differs from the removed tuple.
  CTable rm(Schema("Rm", {{"dest", ValueType::Any}, {"path", ValueType::Any}}));
  rm.insertConcrete({Value::parsePrefix("1.2.3.6"), path({"ADEC"})});
  CTable out = difference(db_.table("Pi"), rm, "Diff");
  EXPECT_TRUE(
      out.conditionOf({Value::parsePrefix("1.2.3.6"), path({"ADEC"})})
          .isFalse());
  // The ABE row survives: its path differs from ADEC, so the negated
  // equality folds away entirely.
  Formula abe = out.conditionOf({Value::cvar(y_), path({"ABE"})});
  EXPECT_FALSE(abe.isFalse());
}

TEST_F(AlgebraTest, SelectCols) {
  // σ over two columns: rows of C where path "equals" cost never hold
  // (different types fold to false); equal columns hold outright.
  CTable out = selectCols(db_.table("C"), 0, CmpOp::Eq, 0);
  EXPECT_EQ(out.size(), db_.table("C").size());
  CTable none = selectCols(db_.table("C"), 0, CmpOp::Eq, 1);
  EXPECT_TRUE(none.empty());
  EXPECT_THROW(selectCols(db_.table("C"), 0, CmpOp::Eq, 9), EvalError);
}

TEST_F(AlgebraTest, SelectColsConditionsOnCVars) {
  // Pi's first row has a c-variable path: comparing dest with path
  // produces a conditional row, not a dropped one.
  CTable out = selectCols(db_.table("Pi"), 0, CmpOp::Ne, 1);
  // All three rows survive: constants differ outright, c-vars carry the
  // disequality condition.
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(AlgebraTest, UnionArityMismatchThrows) {
  EXPECT_THROW(unionAll(db_.table("Pi"), project(db_.table("C"), {0}, "P1"),
                        "U"),
               EvalError);
  EXPECT_THROW(
      difference(db_.table("Pi"), project(db_.table("C"), {0}, "P1"), "D"),
      EvalError);
}

TEST_F(AlgebraTest, TupleEqualityFolds) {
  EXPECT_TRUE(tupleEquality({Value::fromInt(1)}, {Value::fromInt(1)})
                  .isTrue());
  EXPECT_TRUE(tupleEquality({Value::fromInt(1)}, {Value::fromInt(2)})
                  .isFalse());
  Formula f = tupleEquality({Value::cvar(y_)}, {Value::parsePrefix("1.2.3.4")});
  EXPECT_FALSE(f.isTrue());
  EXPECT_FALSE(f.isFalse());
}

}  // namespace
}  // namespace faure::rel
