// Metrics registry (obs/metrics.hpp): handle stability, accumulation,
// snapshot determinism, and the reset semantics Session::resetStats
// relies on.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace faure::obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  Registry reg;
  Counter& c = reg.counter("eval.derivations");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, HandlesAreStableAcrossLookups) {
  Registry reg;
  Counter& a = reg.counter("x");
  // Enough churn to force rehashing in a node-unstable container.
  for (int i = 0; i < 256; ++i) {
    reg.counter("churn." + std::to_string(i));
  }
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  Registry reg;
  Gauge& g = reg.gauge("table4[1000].wall_seconds");
  g.set(1.5);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsTest, HistogramSummarises) {
  Registry reg;
  Histogram& h = reg.histogram("solver.check_seconds");
  EXPECT_EQ(h.summary().count, 0u);
  h.observe(0.25);
  h.observe(0.75);
  h.observe(0.5);
  Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 1.5);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 0.75);
}

TEST(MetricsTest, SnapshotIsSortedAndComplete) {
  Registry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(3.0);
  reg.histogram("h").observe(4.0);
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  EXPECT_EQ(snap.counter("b"), 2u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.histogram("h").count, 1u);
  EXPECT_EQ(snap.histogram("absent").count, 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 3.0);
}

TEST(MetricsTest, ResetZeroesButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(5.0);
  h.observe(5.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.summary().count, 0u);
  // Handles stay live and usable after the reset.
  c.add(1);
  EXPECT_EQ(reg.snapshot().counter("c"), 1u);
}

TEST(MetricsTest, ConcurrentCounterUpdatesAreLossless) {
  Registry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace faure::obs
