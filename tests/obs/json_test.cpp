// JSON writer/parser (obs/json.hpp): escaping, compact numbers, writer
// structure, and writer -> parser round trips — the exporters and the
// report tests both lean on these guarantees.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace faure::obs::json {
namespace {

TEST(JsonTest, QuoteEscapes) {
  EXPECT_EQ(quote("plain"), "\"plain\"");
  EXPECT_EQ(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonTest, NumberIsCompactAndFinite) {
  EXPECT_EQ(number(3.0), "3");
  EXPECT_EQ(number(0.25), "0.25");
  EXPECT_EQ(number(-2.0), "-2");
  // Non-finite values must never produce non-JSON tokens.
  EXPECT_EQ(number(std::nan("")), "0");
  Value v = parse(number(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(v.kind, Value::Kind::Number);
}

TEST(JsonTest, WriterBuildsNestedStructure) {
  Writer w;
  w.beginObject()
      .member("name", "faure")
      .member("count", uint64_t{3})
      .key("nested")
      .beginArray()
      .value(1)
      .value(true)
      .null()
      .endArray()
      .endObject();
  EXPECT_EQ(w.str(), "{\"name\":\"faure\",\"count\":3,"
                     "\"nested\":[1,true,null]}");
}

TEST(JsonTest, RoundTripThroughParser) {
  Writer w;
  w.beginObject()
      .member("schema", "faure.run_report/1")
      .member("wall", 0.125)
      .key("spans")
      .beginArray()
      .beginObject()
      .member("id", 0)
      .member("name", "eval \"quoted\"")
      .endObject()
      .endArray()
      .endObject();
  Value v = parse(w.str());
  ASSERT_TRUE(v.isObject());
  ASSERT_NE(v.find("schema"), nullptr);
  EXPECT_EQ(v.find("schema")->str, "faure.run_report/1");
  EXPECT_DOUBLE_EQ(v.find("wall")->num, 0.125);
  ASSERT_TRUE(v.find("spans")->isArray());
  ASSERT_EQ(v.find("spans")->items.size(), 1u);
  EXPECT_EQ(v.find("spans")->items[0].find("name")->str, "eval \"quoted\"");
}

TEST(JsonTest, ParserHandlesEscapesAndLiterals) {
  Value v = parse(R"({"s":"a\u0041\n","t":true,"f":false,"n":null})");
  EXPECT_EQ(v.find("s")->str, "aA\n");
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_FALSE(v.find("f")->boolean);
  EXPECT_EQ(v.find("n")->kind, Value::Kind::Null);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{} trailing"), Error);
  EXPECT_THROW(parse("'single'"), Error);
}

}  // namespace
}  // namespace faure::obs::json
