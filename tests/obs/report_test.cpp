// Run reports (obs/report.hpp): schema round trip through the JSON
// parser, metric/span/event export, and budget-trip events carrying the
// guard's machine-readable reason.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "obs/json.hpp"
#include "util/resource_guard.hpp"

namespace faure::obs {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

TEST(ReportTest, SchemaAndMetaRoundTrip) {
  Tracer tracer;
  {
    Span s(&tracer, "run");
    tracer.metrics().counter("eval.inserted").add(3);
    tracer.metrics().gauge("table4[10].wall_seconds").set(1.25);
    tracer.metrics().histogram("solver.check_seconds").observe(0.5);
  }
  ReportMeta meta;
  meta.command = "run";
  meta.add("database", "x.fdb");
  meta.add("verdict", "holds");

  json::Value v = json::parse(runReportJson(tracer, meta));
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("schema")->str, std::string(kReportSchema));
  EXPECT_EQ(v.find("tool")->str, "faure");
  EXPECT_EQ(v.find("command")->str, "run");
  EXPECT_EQ(v.find("info")->find("database")->str, "x.fdb");
  EXPECT_EQ(v.find("info")->find("verdict")->str, "holds");
  EXPECT_GE(v.find("wall_seconds")->num, 0.0);
  EXPECT_DOUBLE_EQ(v.find("dropped_spans")->num, 0.0);

  const json::Value* spans = v.find("spans");
  ASSERT_TRUE(spans->isArray());
  ASSERT_EQ(spans->items.size(), 1u);
  EXPECT_EQ(spans->items[0].find("name")->str, "run");
  EXPECT_EQ(spans->items[0].find("parent")->kind, json::Value::Kind::Null);

  const json::Value* metrics = v.find("metrics");
  EXPECT_DOUBLE_EQ(metrics->find("counters")->find("eval.inserted")->num,
                   3.0);
  EXPECT_DOUBLE_EQ(
      metrics->find("gauges")->find("table4[10].wall_seconds")->num, 1.25);
  const json::Value* hist =
      metrics->find("histograms")->find("solver.check_seconds");
  EXPECT_DOUBLE_EQ(hist->find("count")->num, 1.0);
  EXPECT_DOUBLE_EQ(hist->find("mean")->num, 0.5);
}

TEST(ReportTest, MetricsOnlyVariant) {
  Registry reg;
  reg.counter("solver.checks").add(9);
  ReportMeta meta;
  meta.command = "bench";
  json::Value v = json::parse(runReportJson(reg, meta));
  EXPECT_EQ(v.find("schema")->str, std::string(kReportSchema));
  EXPECT_EQ(v.find("spans")->items.size(), 0u);
  EXPECT_DOUBLE_EQ(
      v.find("metrics")->find("counters")->find("solver.checks")->num, 9.0);
}

// A governed evaluation that trips its tuple budget must surface the trip
// as a `budget.trip` event whose detail equals the guard's reason().
TEST(ReportTest, BudgetTripEventMatchesGuardReason) {
  rel::Database db;
  auto& e = db.create(anySchema("E", 2));
  for (int i = 0; i < 12; ++i) {
    e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
  }
  ResourceLimits limits;
  limits.maxTuples = 1;
  ResourceGuard guard(limits);
  Tracer tracer;
  guard.onTrip([&tracer](Budget, const std::string& reason) {
    tracer.event("budget.trip", reason);
  });
  fl::EvalOptions opts;
  opts.guard = &guard;
  opts.tracer = &tracer;
  smt::NativeSolver solver(db.cvars());
  auto res = fl::evalFaure(
      dl::parseProgram("R(x,y) :- E(x,y).\n"
                       "R(x,y) :- E(x,z), R(z,y).\n",
                       db.cvars()),
      db, &solver, opts);
  ASSERT_TRUE(res.incomplete);

  auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "budget.trip");
  EXPECT_EQ(events[0].detail, guard.reason());
  EXPECT_EQ(events[0].detail, "tuples(limit=1)");

  json::Value v = json::parse(runReportJson(tracer, ReportMeta{}));
  const json::Value* evs = v.find("events");
  ASSERT_EQ(evs->items.size(), 1u);
  EXPECT_EQ(evs->items[0].find("name")->str, "budget.trip");
  EXPECT_EQ(evs->items[0].find("detail")->str, "tuples(limit=1)");
  EXPECT_DOUBLE_EQ(v.find("metrics")
                       ->find("counters")
                       ->find("events.budget.trip")
                       ->num,
                   1.0);
  EXPECT_DOUBLE_EQ(
      v.find("metrics")->find("counters")->find("eval.budget_trips")->num,
      1.0);
}

// Per-rule counters on a fully known fixpoint: chain 1->2->3->4, so the
// base rule inserts the 3 edges and the recursive rule the 3 longer
// paths (1->3, 2->4, 1->4).
TEST(ReportTest, PerRuleCountersOnKnownFixpoint) {
  rel::Database db;
  auto& e = db.create(anySchema("E", 2));
  for (int i = 1; i < 4; ++i) {
    e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
  }
  Tracer tracer;
  fl::EvalOptions opts;
  opts.tracer = &tracer;
  smt::NativeSolver solver(db.cvars());
  auto res = fl::evalFaure(
      dl::parseProgram("R(x,y) :- E(x,y).\n"
                       "R(x,y) :- E(x,z), R(z,y).\n",
                       db.cvars()),
      db, &solver, opts);
  EXPECT_EQ(res.relation("R").size(), 6u);

  MetricsSnapshot snap = tracer.metrics().snapshot();
  EXPECT_EQ(snap.counter("eval.rule[0:R].inserted"), 3u);
  EXPECT_EQ(snap.counter("eval.rule[1:R].inserted"), 3u);
  EXPECT_EQ(snap.counter("eval.inserted"), 6u);
  EXPECT_EQ(snap.counter("eval.rule[0:R].derivations") +
                snap.counter("eval.rule[1:R].derivations"),
            snap.counter("eval.derivations"));
  EXPECT_EQ(snap.counter("eval.evaluations"), 1u);
  EXPECT_GE(snap.counter("eval.stratum[0].rounds"), 3u);
  EXPECT_EQ(snap.counter("eval.stratum[0].rounds"),
            snap.counter("eval.rounds"));
}

}  // namespace
}  // namespace faure::obs
