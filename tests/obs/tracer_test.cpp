// Span tracer (obs/trace.hpp) wired through the evaluator: span nesting
// under recursion, event attribution, the span cap, and the contract
// that a disabled tracer changes nothing about evaluation results.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "obs/json.hpp"

namespace faure::obs {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

/// Chain graph 0 -> 1 -> ... -> n plus the transitive-closure program:
/// recursion deep enough for a multi-round fixpoint.
void loadChain(rel::Database& db, int n) {
  auto& e = db.create(anySchema("E", 2));
  for (int i = 0; i < n; ++i) {
    e.insertConcrete({Value::fromInt(i), Value::fromInt(i + 1)});
  }
}

constexpr const char* kClosure =
    "R(x,y) :- E(x,y).\n"
    "R(x,y) :- E(x,z), R(z,y).\n";

int depthOf(const std::vector<SpanRecord>& spans, const SpanRecord& s) {
  int depth = 0;
  size_t parent = s.parent;
  while (parent != kNoSpan) {
    ++depth;
    parent = spans[parent].parent;
  }
  return depth;
}

TEST(TracerTest, SpanBasics) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer");
    outer.note("k", "v");
    Span inner(&tracer, "inner");
  }
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  for (const auto& s : spans) {
    EXPECT_GE(s.end, s.start);  // all closed
  }
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
}

TEST(TracerTest, NullTracerSpansAreNoops) {
  Span s(nullptr, "ghost");
  s.note("k", "v");
  EXPECT_FALSE(static_cast<bool>(s));
}

TEST(TracerTest, RecursiveEvaluationNestsAtLeastThreeLevels) {
  rel::Database db;
  loadChain(db, 8);
  Tracer tracer;
  fl::EvalOptions opts;
  opts.tracer = &tracer;
  smt::NativeSolver solver(db.cvars());
  auto res = fl::evalFaure(dl::parseProgram(kClosure, db.cvars()), db,
                           &solver, opts);
  EXPECT_EQ(res.relation("R").size(), 36u);

  auto spans = tracer.spans();
  int maxDepth = 0;
  bool sawEval = false, sawStratum = false, sawRule = false;
  for (const auto& s : spans) {
    maxDepth = std::max(maxDepth, depthOf(spans, s));
    if (s.name == "eval") sawEval = true;
    if (s.name == "stratum[0]") sawStratum = true;
    if (s.name == "rule[1:R]") sawRule = true;
  }
  // eval (0) -> stratum (1) -> rule (2): three levels of nesting.
  EXPECT_GE(maxDepth, 2);
  EXPECT_TRUE(sawEval);
  EXPECT_TRUE(sawStratum);
  EXPECT_TRUE(sawRule);

  // The recursive rule runs once per fixpoint round: more rule spans
  // than rules proves the tree tracks rounds, not just program shape.
  size_t ruleSpans = 0;
  for (const auto& s : spans) {
    if (s.name.rfind("rule[", 0) == 0) ++ruleSpans;
  }
  EXPECT_GT(ruleSpans, 2u);

  // Per-rule counters: the base rule inserts the 8 edges; both rules
  // together account for every aggregate derivation.
  MetricsSnapshot snap = tracer.metrics().snapshot();
  EXPECT_EQ(snap.counter("eval.rule[0:R].inserted"), 8u);
  EXPECT_EQ(snap.counter("eval.rule[0:R].inserted") +
                snap.counter("eval.rule[1:R].inserted"),
            snap.counter("eval.inserted"));
  EXPECT_EQ(snap.counter("eval.rule[0:R].derivations") +
                snap.counter("eval.rule[1:R].derivations"),
            snap.counter("eval.derivations"));
  EXPECT_EQ(snap.counter("eval.inserted"), 36u);
}

TEST(TracerTest, DisabledTracerYieldsIdenticalResults) {
  auto evalOnce = [](Tracer* tracer) {
    rel::Database db;
    loadChain(db, 10);
    fl::EvalOptions opts;
    opts.tracer = tracer;
    smt::NativeSolver solver(db.cvars());
    return fl::evalFaure(dl::parseProgram(kClosure, db.cvars()), db, &solver,
                         opts);
  };
  Tracer tracer;
  auto traced = evalOnce(&tracer);
  auto plain = evalOnce(nullptr);
  EXPECT_EQ(plain.relation("R").size(), traced.relation("R").size());
  EXPECT_EQ(plain.stats.derivations, traced.stats.derivations);
  EXPECT_EQ(plain.stats.inserted, traced.stats.inserted);
  EXPECT_EQ(plain.stats.iterations, traced.stats.iterations);
}

TEST(TracerTest, EventsAttachToInnermostSpanAndCount) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer");
    {
      Span inner(&tracer, "inner");
      tracer.event("budget.trip", "tuples(limit=1)");
    }
    tracer.event("budget.trip", "steps(limit=2)");
  }
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].span, 1u);  // inner
  EXPECT_EQ(events[0].detail, "tuples(limit=1)");
  EXPECT_EQ(events[1].span, 0u);  // outer again after inner closed
  EXPECT_EQ(tracer.metrics().snapshot().counter("events.budget.trip"), 2u);
}

TEST(TracerTest, SpanCapDropsButStaysBalanced) {
  TracerOptions opts;
  opts.maxSpans = 2;
  Tracer tracer(opts);
  {
    Span a(&tracer, "a");
    Span b(&tracer, "b");
    Span c(&tracer, "c");  // over the cap: dropped
    Span d(&tracer, "d");  // dropped too
  }
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.droppedSpans(), 2u);
  // The stack unwound cleanly: a new root span is recorded as a root.
  {
    Span e(&tracer, "e");
  }
  EXPECT_EQ(tracer.droppedSpans(), 3u);  // still capped, but balanced
}

TEST(TracerTest, DumpTreeShowsHierarchyDurationsAndEvents) {
  Tracer tracer;
  {
    Span outer(&tracer, "eval");
    outer.note("rules", "2");
    Span inner(&tracer, "stratum[0]");
    tracer.event("budget.trip", "deadline(limit=0.1s)");
  }
  std::string tree = tracer.dumpTree();
  EXPECT_NE(tree.find("eval"), std::string::npos);
  EXPECT_NE(tree.find("  stratum[0]"), std::string::npos);
  EXPECT_NE(tree.find("rules=2"), std::string::npos);
  EXPECT_NE(tree.find("budget.trip"), std::string::npos);
  EXPECT_NE(tree.find("s"), std::string::npos);  // durations present
}

TEST(TracerTest, ChromeTraceIsValidJson) {
  Tracer tracer;
  {
    Span outer(&tracer, "run");
    outer.note("database", "x.fdb");
    Span inner(&tracer, "eval");
    tracer.event("budget.trip", "tuples(limit=1)");
  }
  json::Value v = json::parse(tracer.chromeTrace());
  ASSERT_TRUE(v.isArray());
  // Two complete events + one instant event.
  ASSERT_EQ(v.items.size(), 3u);
  bool sawComplete = false, sawInstant = false;
  for (const auto& ev : v.items) {
    ASSERT_NE(ev.find("ph"), nullptr);
    if (ev.find("ph")->str == "X") sawComplete = true;
    if (ev.find("ph")->str == "i") sawInstant = true;
  }
  EXPECT_TRUE(sawComplete);
  EXPECT_TRUE(sawInstant);
}

}  // namespace
}  // namespace faure::obs
