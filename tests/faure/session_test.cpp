// Tests for the high-level Session facade (faure/faure.hpp).
#include "faure/faure.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/error.hpp"

namespace faure {
namespace {

TEST(SessionTest, LoadRunCheckRoundTrip) {
  Session s;
  s.load(
      "var x_ int 0 1\n"
      "table F(flow sym, from int, to int)\n"
      "row F f0 1 2 | x_ = 1\n"
      "row F f0 2 3\n");
  auto res = s.run(
      "R(f,a,b) :- F(f,a,b).\n"
      "R(f,a,b) :- F(f,a,c), R(f,c,b).\n");
  EXPECT_EQ(res.relation("R").size(), 3u);
  // Derived relations are stored back into the database.
  EXPECT_TRUE(s.db().has("R"));

  // A follow-up program can build on R.
  auto res2 = s.run("Pair(a,b) :- R('f0', a, b).");
  EXPECT_EQ(res2.relation("Pair").size(), 3u);

  // Constraint check: 1 -> 3 requires x_ = 1.
  auto check = s.check("panic :- !R('f0', 1, 3).");
  EXPECT_EQ(check.verdict, verify::Verdict::ConditionallyViolated);
  CVarId x = s.vars().find("x_");
  smt::NativeSolver judge(s.vars());
  EXPECT_TRUE(judge.equivalent(
      check.condition,
      smt::Formula::cmp(Value::cvar(x), smt::CmpOp::Eq, Value::fromInt(0))));
}

TEST(SessionTest, IncrementalLoads) {
  Session s;
  s.load("var x_ int 0 1\ntable T(a int)\n");
  s.load("row T 1 | x_ = 1\n");
  s.load("row T 2\n");
  EXPECT_EQ(s.db().table("T").size(), 2u);
  // Redeclaring a table throws.
  EXPECT_THROW(s.load("table T(a int)\n"), EvalError);
  // Redeclaring a c-variable throws.
  EXPECT_THROW(s.load("var x_ int 0 1\n"), TypeError);
}

TEST(SessionTest, SubsumptionThroughSession) {
  Session s;
  auto t1 = s.constraint("T1", "panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).");
  auto cs = s.constraint(
      "Cs",
      "panic :- Vs(x, y, p).\n"
      "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), !Fw(xs_, ys_).\n");
  EXPECT_EQ(s.subsumed(t1, {cs}), verify::Verdict::Holds);
  EXPECT_EQ(s.subsumed(cs, {t1}), verify::Verdict::Unknown);
}

TEST(SessionTest, UpdatePathThroughSession) {
  Session s;
  s.vars().declare("y_", ValueType::Sym,
                   {Value::sym("CS"), Value::sym("GS")});
  auto t2 = s.constraint("T2", "panic :- R(R&D, y_, 7000), !Lb(R&D, y_).");
  auto clb = s.constraint(
      "Clb",
      "panic :- Vt(x, y, p).\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), !Lb(xt_, CS).\n");
  verify::Update u;
  u.insert("Lb", {dl::Term::constant_(Value::sym("R&D")),
                  dl::Term::constant_(Value::sym("GS"))});
  EXPECT_EQ(s.subsumed(t2, {clb}), verify::Verdict::Unknown);
  EXPECT_EQ(s.subsumedAfterUpdate(t2, {clb}, u), verify::Verdict::Holds);
}

TEST(SessionTest, OptionsApply) {
  Session s;
  s.load(
      "var x_ int 0 1\n"
      "table E(a int)\n"
      "table F(a int)\n"
      "row E 7 | x_ = 0\n"
      "row F 7 | x_ = 1\n");
  s.options().simplifyResults = true;
  auto res = s.run("Q(v) :- E(v).\nQ(v) :- F(v).\n");
  ASSERT_EQ(res.relation("Q").size(), 1u);
  EXPECT_TRUE(res.relation("Q").rows()[0].cond.isTrue());
}

TEST(SessionTest, ResourceLimitsGovernEveryOperation) {
  Session s;
  s.load(
      "table E(a int, b int)\n"
      "row E 1 2\nrow E 2 3\nrow E 3 4\nrow E 4 5\n");
  ResourceLimits limits;
  limits.maxTuples = 3;
  s.setResourceLimits(limits);
  auto res = s.run(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n");
  EXPECT_TRUE(res.incomplete);
  EXPECT_EQ(res.tripped, Budget::Tuples);
  EXPECT_TRUE(s.guard().tripped());

  // Each governed operation re-arms the guard: a check after the
  // degraded run gets a fresh budget (and 3 tuples suffice here).
  auto check = s.check("panic :- E(9, 9).");
  EXPECT_EQ(check.verdict, verify::Verdict::Holds);
  EXPECT_FALSE(check.incomplete);

  // Disarming restores ungoverned behaviour.
  s.setResourceLimits(ResourceLimits{});
  auto full = s.run(
      "S(x,y) :- E(x,y).\n"
      "S(x,y) :- E(x,z), S(z,y).\n");
  EXPECT_FALSE(full.incomplete);
  EXPECT_EQ(full.relation("S").size(), 10u);
}

TEST(SessionTest, Z3BackendIfAvailable) {
  if (!smt::z3Available()) {
    EXPECT_THROW(Session s(Session::Backend::Z3), SolverBackendError);
    return;
  }
  Session s(Session::Backend::Z3);
  s.load(
      "var x_ int 0 1\n"
      "table T(a int)\n"
      "row T 1 | x_ = 1\n");
  auto res = s.run("Q(v) :- T(v), x_ = 0.");
  EXPECT_TRUE(res.relation("Q").empty());  // pruned by Z3
}

TEST(SessionTest, TracerRecordsSpansMetricsAndBudgetTrips) {
  Session s;
  obs::Tracer tracer;
  s.setTracer(&tracer);
  EXPECT_EQ(s.tracer(), &tracer);
  s.load(
      "table E(a int, b int)\n"
      "row E 1 2\nrow E 2 3\nrow E 3 4\n");
  auto res = s.run(
      "R(x,y) :- E(x,y).\n"
      "R(x,y) :- E(x,z), R(z,y).\n");
  EXPECT_EQ(res.relation("R").size(), 6u);

  // session.run -> eval -> stratum -> rule nesting.
  auto spans = tracer.spans();
  bool sawRun = false, sawEval = false, sawRule = false;
  for (const auto& sp : spans) {
    if (sp.name == "session.run") sawRun = true;
    if (sp.name == "eval") sawEval = true;
    if (sp.name.rfind("rule[", 0) == 0) sawRule = true;
  }
  EXPECT_TRUE(sawRun);
  EXPECT_TRUE(sawEval);
  EXPECT_TRUE(sawRule);
  obs::MetricsSnapshot snap = tracer.metrics().snapshot();
  EXPECT_EQ(snap.counter("eval.inserted"), 6u);
  EXPECT_GT(snap.counter("solver.checks"), 0u);

  // A governed, starved operation surfaces its trip as a budget.trip
  // event carrying the guard's reason.
  ResourceLimits limits;
  limits.maxTuples = 1;
  s.setResourceLimits(limits);
  auto degraded = s.run(
      "S(x,y) :- E(x,y).\n"
      "S(x,y) :- E(x,z), S(z,y).\n");
  EXPECT_TRUE(degraded.incomplete);
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "budget.trip");
  EXPECT_EQ(events[0].detail, "tuples(limit=1)");

  // Detaching stops recording.
  s.setTracer(nullptr);
  s.setResourceLimits(ResourceLimits{});
  s.run("T(x) :- E(x, y).");
  EXPECT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.metrics().snapshot().counter("eval.evaluations"), 2u);
}

TEST(SessionTest, ResetStatsZeroesSolverAndRegistry) {
  Session s;
  obs::Tracer tracer;
  s.setTracer(&tracer);
  s.load("table E(a int, b int)\nrow E 1 2\n");
  s.run("R(x,y) :- E(x,y).");
  EXPECT_GT(s.solver().stats().checks, 0u);
  EXPECT_GT(tracer.metrics().snapshot().counter("solver.checks"), 0u);
  s.resetStats();
  EXPECT_EQ(s.solver().stats().checks, 0u);
  EXPECT_EQ(tracer.metrics().snapshot().counter("solver.checks"), 0u);
  EXPECT_EQ(tracer.metrics().snapshot().counter("eval.evaluations"), 0u);
}

TEST(SessionTest, PerOperationResetMakesStatsPerCall) {
  Session s;
  s.load(
      "table E(a int, b int)\n"
      "row E 1 2\nrow E 2 3\nrow E 3 4\n");

  // Default: stats accumulate across operations.
  s.run("R(x,y) :- E(x,y).");
  uint64_t afterFirst = s.solver().stats().checks;
  EXPECT_GT(afterFirst, 0u);
  s.run("S(x,y) :- E(x,y).");
  EXPECT_GT(s.solver().stats().checks, afterFirst);

  // Per-operation mode: each call starts from zero.
  s.resetStatsPerOperation(true);
  s.run("T(x,y) :- E(x,y).");
  uint64_t perOp = s.solver().stats().checks;
  EXPECT_GT(perOp, 0u);
  s.run("U(x,y) :- E(x,y).");
  EXPECT_EQ(s.solver().stats().checks, perOp);  // same work, fresh counter

  // Switching back restores accumulation.
  s.resetStatsPerOperation(false);
  uint64_t base = s.solver().stats().checks;
  s.run("V(x,y) :- E(x,y).");
  EXPECT_GT(s.solver().stats().checks, base);
}

constexpr const char* kSupervisionDb =
    "var x_ int 0 1\n"
    "table F(flow sym, from int, to int)\n"
    "row F f0 1 2 | x_ = 1\n"
    "row F f0 2 3\n";
constexpr const char* kSupervisionProgram =
    "R(f,a,b) :- F(f,a,b).\n"
    "R(f,a,b) :- F(f,a,c), R(f,c,b).\n";

/// Clears the supervision env knobs: sessions constructed afterwards
/// are plain. The suite may itself run under ambient chaos (tools/ci.sh
/// chaos stage exports FAURE_CHAOS_SEED), so tests that assert the
/// *unsupervised* structure of a Session must own these variables.
void clearSupervisionEnv() {
  for (const char* var : {"FAURE_RETRIES", "FAURE_SOLVER_TIMEOUT_MS",
                          "FAURE_FAILOVER", "FAURE_CHAOS_SEED"}) {
    ::unsetenv(var);
  }
}

TEST(SessionTest, SetSupervisionWrapsAndUnwrapsWithoutChangingResults) {
  clearSupervisionEnv();
  Session plain;
  plain.load(kSupervisionDb);
  auto want = plain.run(kSupervisionProgram);

  Session s;
  s.load(kSupervisionDb);
  EXPECT_EQ(s.supervisedSolver(), nullptr);
  smt::SupervisionOptions sup;
  sup.enabled = true;
  sup.maxRetries = 2;
  sup.failover = true;
  s.setSupervision(sup);
  ASSERT_NE(s.supervisedSolver(), nullptr);
  EXPECT_EQ(s.supervisedSolver()->backends(), 2u);  // native + fallback
  // The session cache moved into the wrapper rather than being lost.
  EXPECT_EQ(s.solver().verdictCache(), s.solverCache());

  auto res = s.run(kSupervisionProgram);
  EXPECT_EQ(res.relation("R").size(), want.relation("R").size());
  auto check = s.check("panic :- !R('f0', 1, 3).");
  EXPECT_EQ(check.verdict, verify::Verdict::ConditionallyViolated);

  // Disabling unwraps back to the bare backend, cache intact.
  s.setSupervision(smt::SupervisionOptions{});
  EXPECT_EQ(s.supervisedSolver(), nullptr);
  EXPECT_EQ(s.solver().verdictCache(), s.solverCache());
  auto res2 = s.run(kSupervisionProgram);
  EXPECT_EQ(res2.relation("R").size(), want.relation("R").size());
}

TEST(SessionTest, SupervisionEnvironmentActivatesAtConstruction) {
  clearSupervisionEnv();
  ::setenv("FAURE_CHAOS_SEED", "20260807", 1);
  ::setenv("FAURE_RETRIES", "2", 1);
  Session chaotic;
  clearSupervisionEnv();

  ASSERT_NE(chaotic.supervisedSolver(), nullptr);
  ASSERT_NE(chaotic.supervisedSolver()->supervision().chaos, nullptr);
  EXPECT_EQ(chaotic.supervisedSolver()->supervision().chaos->seed(),
            20260807u);

  // Chaos with the native fallback is output-transparent: the run and
  // the verdict match an unsupervised session bit for bit.
  Session plain;
  plain.load(kSupervisionDb);
  chaotic.load(kSupervisionDb);
  auto want = plain.run(kSupervisionProgram);
  auto got = chaotic.run(kSupervisionProgram);
  ASSERT_EQ(got.relation("R").size(), want.relation("R").size());
  for (size_t i = 0; i < want.relation("R").rows().size(); ++i) {
    EXPECT_EQ(got.relation("R").rows()[i].vals,
              want.relation("R").rows()[i].vals);
    EXPECT_EQ(got.relation("R").rows()[i].cond,
              want.relation("R").rows()[i].cond);
  }
  EXPECT_EQ(chaotic.check("panic :- !R('f0', 1, 3).").verdict,
            plain.check("panic :- !R('f0', 1, 3).").verdict);

  // A session constructed with a clean environment stays unsupervised.
  Session normal;
  EXPECT_EQ(normal.supervisedSolver(), nullptr);
}

TEST(SessionTest, WatchDeltaApiReevaluatesIncrementally) {
  Session s;
  s.load(
      "var x_ int 0 1\n"
      "table F(flow sym, from int, to int)\n"
      "table Acl(app sym, port int)\n"
      "row F f0 1 2 | x_ = 1\n"
      "row F f0 2 3\n"
      "row Acl web 80\n");
  auto res = s.watch(
      "R(f,a,b) :- F(f,a,b).\n"
      "R(f,a,b) :- F(f,a,c), R(f,c,b).\n"
      "Open(app,p) :- Acl(app,p), p < 1024.\n");
  EXPECT_EQ(res.idb.at("R").size(), 3u);
  ASSERT_NE(s.incrementalEngine(), nullptr);

  // Security-team edit: the reachability unit is reused verbatim.
  s.incrementalEngine()->setIncremental(true);
  s.insertFact("Acl", {Value::sym("mail"), Value::fromInt(25)});
  auto res2 = s.reevaluate();
  EXPECT_EQ(res2.idb.at("Open").size(), 2u);
  EXPECT_EQ(res2.idb.at("R").size(), 3u);
  EXPECT_GT(s.incrementalEngine()->stats().reusedStrata, 0u);

  // Script-driven edits go through the same engine.
  s.applyEdits("-F(f0, 2, 3)\n+Acl(db, 5432)\n");
  auto res3 = s.reevaluate();
  EXPECT_EQ(res3.idb.at("R").size(), 1u);
  EXPECT_EQ(res3.idb.at("Open").size(), 2u);  // db:5432 not < 1024

  // Watched evaluation never stores derived tables into the database.
  EXPECT_FALSE(s.db().has("R"));
}

TEST(SessionTest, WatchEndsOnLoadRunOrSupervisionChange) {
  Session s;
  s.load("table T(a int)\nrow T 1\n");
  s.watch("U(a) :- T(a).");
  ASSERT_NE(s.incrementalEngine(), nullptr);
  s.load("row T 2\n");  // out-of-band mutation invalidates the watch
  EXPECT_EQ(s.incrementalEngine(), nullptr);
  EXPECT_THROW(s.reevaluate(), EvalError);
  EXPECT_THROW(s.insertFact("T", {Value::fromInt(3)}), EvalError);

  s.watch("U(a) :- T(a).");
  ASSERT_NE(s.incrementalEngine(), nullptr);
  s.run("V(a) :- T(a).");  // run() stores IDB back — also out-of-band
  EXPECT_EQ(s.incrementalEngine(), nullptr);

  s.watch("U(a) :- T(a).");
  smt::SupervisionOptions sup;
  sup.enabled = true;
  s.setSupervision(sup);  // replaces the solver the engine points at
  EXPECT_EQ(s.incrementalEngine(), nullptr);
}

}  // namespace
}  // namespace faure
