// End-to-end reproduction of §5: the enterprise network managed by a TE
// team and a security team (Listings 3 and 4).
//
// Constraint c-variables are rule-scoped, so each program uses its own
// names; the target T2's y_ is the unknown server of the R&D traffic and
// ranges over the deployed servers {CS, GS} (the paper's c-domain
// {CS, GS, ȳ}).
#include <gtest/gtest.h>

#include "verify/verifier.hpp"

namespace faure::verify {
namespace {

using dl::Term;

class Section5 : public ::testing::Test {
 protected:
  void SetUp() override {
    reg_.declare("y_", ValueType::Sym, {Value::sym("CS"), Value::sym("GS")});
    // T1 (q9): Mkt traffic to CS must pass a firewall.
    t1_ = Constraint::parse("T1",
                            "panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).", reg_);
    // T2 (q10): R&D traffic (port 7000) to any server must be load
    // balanced.
    t2_ = Constraint::parse(
        "T2", "panic :- R(R&D, y_, 7000), !Lb(R&D, y_).", reg_);
    // Clb (q11, q13-q15): the TE team's own policy.
    clb_ = Constraint::parse(
        "Clb",
        "panic :- Vt(x, y, p).\n"
        "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), xt_ != Mkt, xt_ != R&D.\n"
        "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), !Lb(xt_, CS).\n"
        "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), pt_ != 7000.\n",
        reg_);
    // Cs (q16-q18): the security team's policy.
    cs_ = Constraint::parse(
        "Cs",
        "panic :- Vs(x, y, p).\n"
        "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), !Fw(xs_, ys_).\n"
        "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), ps_ != 80, ps_ != 344, "
        "ps_ != 7000.\n",
        reg_);
  }

  CVarRegistry reg_;
  Constraint t1_, t2_, clb_, cs_;
};

TEST_F(Section5, CategoryOneSubsumesT1) {
  // {Clb, Cs} subsume T1: q9 is a special case of q17.
  RelativeVerifier v(reg_);
  EXPECT_EQ(v.checkSubsumption(t1_, {clb_, cs_}), Verdict::Holds);
  // Cs alone suffices.
  EXPECT_EQ(v.checkSubsumption(t1_, {cs_}), Verdict::Holds);
  // Clb alone does not (it says nothing about firewalls).
  EXPECT_EQ(v.checkSubsumption(t1_, {clb_}), Verdict::Unknown);
}

TEST_F(Section5, CategoryOneUnknownOnT2) {
  // {Clb, Cs} do not subsume T2: category (i) answers "unknown".
  RelativeVerifier v(reg_);
  EXPECT_EQ(v.checkSubsumption(t2_, {clb_, cs_}), Verdict::Unknown);
  // The verifier exposes the uncovered rule for diagnostics.
  ASSERT_TRUE(v.lastWitness().has_value());
  EXPECT_EQ(v.lastWitness()->head.pred, "panic");
}

TEST_F(Section5, CategoryTwoDecidesT2UnderTheUpdate) {
  // Listing 4: the TE team removes load balancing between Mkt and CS and
  // adds it for R&D and GS. Incorporating the update rewrites T2 into T2'
  // whose only open case is y_ = CS, which Clb's q14 covers.
  Update u;
  u.insert("Lb", {Term::constant_(Value::sym("R&D")),
                  Term::constant_(Value::sym("GS"))});
  u.remove("Lb", {Term::constant_(Value::sym("Mkt")),
                  Term::constant_(Value::sym("CS"))});
  RelativeVerifier v(reg_);
  EXPECT_EQ(v.checkWithUpdate(t2_, {clb_, cs_}, u), Verdict::Holds);
  // Without Clb the update alone is not enough.
  EXPECT_EQ(v.checkWithUpdate(t2_, {cs_}, u), Verdict::Unknown);
}

TEST_F(Section5, SelfSubsumption) {
  RelativeVerifier v(reg_);
  EXPECT_EQ(v.checkSubsumption(t1_, {t1_}), Verdict::Holds);
  EXPECT_EQ(v.checkSubsumption(t2_, {t2_}), Verdict::Holds);
  EXPECT_EQ(v.checkSubsumption(clb_, {clb_}), Verdict::Holds);
  EXPECT_EQ(v.checkSubsumption(cs_, {cs_}), Verdict::Holds);
}

TEST_F(Section5, LevelThreeStateCheck) {
  // With the state visible, the verifier decides outright.
  rel::Database db;
  db.cvars() = reg_;
  auto anySchema = [](const std::string& name, size_t arity) {
    std::vector<rel::Attribute> attrs(arity);
    for (size_t i = 0; i < arity; ++i) {
      attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
    }
    return rel::Schema(name, attrs);
  };
  db.create(anySchema("R", 3));
  db.create(anySchema("Fw", 2));
  db.create(anySchema("Lb", 2));
  db.table("R").insertConcrete(
      {Value::sym("Mkt"), Value::sym("CS"), Value::fromInt(7000)});
  smt::NativeSolver solver(db.cvars());

  // No firewall deployed: T1 violated in every world.
  auto bad = RelativeVerifier::checkOnState(t1_, db, solver);
  EXPECT_EQ(bad.verdict, Verdict::Violated);

  // Deploy the firewall: T1 holds.
  db.table("Fw").insertConcrete({Value::sym("Mkt"), Value::sym("CS")});
  auto good = RelativeVerifier::checkOnState(t1_, db, solver);
  EXPECT_EQ(good.verdict, Verdict::Holds);
}

TEST_F(Section5, LevelThreeConditionalViolation) {
  // R&D traffic to the unknown server y_: T2 is violated exactly in the
  // worlds where y_ = GS (only CS is load-balanced).
  rel::Database db;
  db.cvars() = reg_;
  auto anySchema = [](const std::string& name, size_t arity) {
    std::vector<rel::Attribute> attrs(arity);
    for (size_t i = 0; i < arity; ++i) {
      attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
    }
    return rel::Schema(name, attrs);
  };
  CVarId y = db.cvars().find("y_");
  db.create(anySchema("R", 3));
  db.create(anySchema("Lb", 2));
  db.table("R").insertConcrete(
      {Value::sym("R&D"), Value::cvar(y), Value::fromInt(7000)});
  db.table("Lb").insertConcrete({Value::sym("R&D"), Value::sym("CS")});
  smt::NativeSolver solver(db.cvars());
  auto check = RelativeVerifier::checkOnState(t2_, db, solver);
  EXPECT_EQ(check.verdict, Verdict::ConditionallyViolated);
  EXPECT_TRUE(solver.equivalent(
      check.condition,
      smt::Formula::cmp(Value::cvar(y), smt::CmpOp::Eq, Value::sym("GS"))));
}

}  // namespace
}  // namespace faure::verify
