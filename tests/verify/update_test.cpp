// Tests for the update rewrite (verify/update.hpp) — Listing 4 semantics:
// C' holds before the update iff C holds after it.
#include "verify/update.hpp"

#include <gtest/gtest.h>

#include "faurelog/eval.hpp"
#include "util/error.hpp"

namespace faure::verify {
namespace {

using dl::Term;

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

Term sym(const char* s) { return Term::constant_(Value::sym(s)); }

/// Applies an update concretely to a ground database.
void applyUpdate(rel::Database& db, const Update& u) {
  for (const auto& op : u.ops) {
    std::vector<Value> vals;
    for (const auto& t : op.tuple) vals.push_back(t.asValue());
    if (!db.has(op.pred)) db.create(anySchema(op.pred, vals.size()));
    if (op.kind == UpdateOp::Kind::Insert) {
      db.table(op.pred).insertConcrete(vals);
    } else {
      db.table(op.pred).pruneIf(
          [&](const rel::Row& r) { return r.vals == vals; });
    }
  }
}

class UpdateTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  Constraint parse(const char* name, const char* text) {
    return Constraint::parse(name, text, reg_);
  }
};

TEST_F(UpdateTest, PositiveLiteralInsertAddsEqualityRule) {
  Constraint c = parse("c", "panic :- Lb(Mkt, CS).");
  Update u;
  u.insert("Lb", {sym("Mkt"), sym("CS")});
  Constraint c2 = rewriteForUpdate(c, u);
  // Two rules: the original plus the trivially-true tuple-equality one.
  ASSERT_EQ(c2.program.rules.size(), 2u);
  // One of them has an empty body (the equality folded away entirely).
  bool foundEmpty = false;
  for (const auto& r : c2.program.rules) {
    if (r.body.empty() && r.cmps.empty()) foundEmpty = true;
  }
  EXPECT_TRUE(foundEmpty);
}

TEST_F(UpdateTest, PositiveLiteralDeleteForksPerColumn) {
  Constraint c = parse("c", "panic :- Lb(x_, y_).");
  Update u;
  u.remove("Lb", {sym("Mkt"), sym("CS")});
  Constraint c2 = rewriteForUpdate(c, u);
  ASSERT_EQ(c2.program.rules.size(), 2u);
  for (const auto& r : c2.program.rules) {
    ASSERT_EQ(r.body.size(), 1u);
    ASSERT_EQ(r.cmps.size(), 1u);
    EXPECT_EQ(r.cmps[0].op, smt::CmpOp::Ne);
  }
}

TEST_F(UpdateTest, NegatedLiteralRewrite) {
  // The paper's T2 under Listing 4's update.
  reg_.declare("y_", ValueType::Sym, {Value::sym("CS"), Value::sym("GS")});
  Constraint t2 = parse("T2", "panic :- R(R&D, y_, 7000), !Lb(R&D, y_).");
  Update u;
  u.insert("Lb", {sym("R&D"), sym("GS")});
  u.remove("Lb", {sym("Mkt"), sym("CS")});
  Constraint t2p = rewriteForUpdate(t2, u);
  // Expected single surviving rule: panic :- R(R&D,y_,7000),
  // !Lb(R&D,y_), y_ != GS. (The R&D != R&D fork and the R&D = Mkt branch
  // both fold away.)
  ASSERT_EQ(t2p.program.rules.size(), 1u);
  const auto& r = t2p.program.rules[0];
  EXPECT_EQ(r.body.size(), 2u);
  ASSERT_EQ(r.cmps.size(), 1u);
  EXPECT_EQ(r.cmps[0].op, smt::CmpOp::Ne);
}

TEST_F(UpdateTest, GroundTruthEquivalenceOnConcreteStates) {
  // For every small concrete state: C' before the update <=> C after it.
  reg_.declare("s_", ValueType::Sym, {Value::sym("A"), Value::sym("B")});
  Constraint c = parse("c", "panic :- R(A, s_), !Lb(A, s_).");
  Update u;
  u.insert("Lb", {sym("A"), sym("B")});
  u.remove("Lb", {sym("A"), sym("A")});
  Constraint cp = rewriteForUpdate(c, u);

  // Enumerate all states over R, Lb ⊆ {A} x {A,B}.
  for (int mask = 0; mask < 16; ++mask) {
    rel::Database before;
    before.cvars() = reg_;
    before.create(anySchema("R", 2));
    before.create(anySchema("Lb", 2));
    const char* servers[] = {"A", "B"};
    for (int i = 0; i < 2; ++i) {
      if (mask & (1 << i)) {
        before.table("R").insertConcrete(
            {Value::sym("A"), Value::sym(servers[i])});
      }
      if (mask & (4 << i)) {
        before.table("Lb").insertConcrete(
            {Value::sym("A"), Value::sym(servers[i])});
      }
    }
    rel::Database after;
    after.cvars() = reg_;
    after.put(before.table("R"));
    after.put(before.table("Lb"));
    applyUpdate(after, u);

    smt::NativeSolver s1(before.cvars());
    smt::NativeSolver s2(after.cvars());
    auto primeBefore = fl::evalFaure(cp.program, before, &s1,
                                     fl::EvalOptions{});
    auto origAfter = fl::evalFaure(c.program, after, &s2, fl::EvalOptions{});
    smt::Formula f1, f2;
    primeBefore.derived("panic", &f1);
    origAfter.derived("panic", &f2);
    smt::NativeSolver judge(before.cvars());
    EXPECT_TRUE(judge.equivalent(f1, f2)) << "state mask " << mask;
  }
}

TEST_F(UpdateTest, ArityMismatchThrows) {
  Constraint c = parse("c", "panic :- Lb(Mkt, CS).");
  Update u;
  u.insert("Lb", {sym("Mkt")});
  EXPECT_THROW(rewriteForUpdate(c, u), EvalError);
}

TEST_F(UpdateTest, ProgramVariableInTupleThrows) {
  Constraint c = parse("c", "panic :- Lb(Mkt, CS).");
  Update u;
  u.insert("Lb", {Term::variable("x"), sym("CS")});
  EXPECT_THROW(rewriteForUpdate(c, u), EvalError);
}

TEST_F(UpdateTest, UnrelatedPredicatesUntouched) {
  Constraint c = parse("c", "panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).");
  Update u;
  u.insert("Lb", {sym("R&D"), sym("GS")});
  Constraint c2 = rewriteForUpdate(c, u);
  ASSERT_EQ(c2.program.rules.size(), 1u);
  EXPECT_EQ(c2.program.rules[0].toString(), c.program.rules[0].toString());
}

}  // namespace
}  // namespace faure::verify
