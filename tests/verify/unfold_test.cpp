// Tests for constraint-rule unfolding (verify/unfold.hpp).
#include "verify/unfold.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "util/error.hpp"

namespace faure::verify {
namespace {

class UnfoldTest : public ::testing::Test {
 protected:
  CVarRegistry reg_;
  dl::Program parse(const char* text) {
    return dl::parseProgram(text, reg_);
  }
};

TEST_F(UnfoldTest, AlreadyFlatRuleIsReturnedAsIs) {
  auto p = parse("panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).");
  auto flat = unfoldGoalRules(p, "panic");
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].body.size(), 2u);
}

TEST_F(UnfoldTest, SingleAuxiliaryExpansion) {
  // The Cs pattern (q16-q18).
  auto p = parse(
      "panic :- Vs(x, y, p).\n"
      "Vs(x_, y_, p_) :- R(x_, y_, p_), !Fw(x_, y_).\n"
      "Vs(x_, y_, p_) :- R(x_, y_, p_), p_ != 80, p_ != 344, p_ != 7000.\n");
  auto flat = unfoldGoalRules(p, "panic");
  ASSERT_EQ(flat.size(), 2u);
  for (const auto& r : flat) {
    EXPECT_EQ(r.head.pred, "panic");
    for (const auto& lit : r.body) {
      EXPECT_TRUE(lit.atom.pred == "R" || lit.atom.pred == "Fw");
    }
  }
}

TEST_F(UnfoldTest, ConstantsUnifyWithAuxHeadCVars) {
  // Calling V with a constant where the definition has a c-variable must
  // surface the equality as a comparison.
  auto p = parse(
      "panic :- V(Mkt, p).\n"
      "V(x_, p_) :- R(x_, p_), x_ != R&D.\n");
  auto flat = unfoldGoalRules(p, "panic");
  ASSERT_EQ(flat.size(), 1u);
  // Comparisons: x_ != R&D plus Mkt = x_.
  EXPECT_EQ(flat[0].cmps.size(), 2u);
}

TEST_F(UnfoldTest, MismatchedConstantsPruneExpansion) {
  auto p = parse(
      "panic :- V(Mkt).\n"
      "V(CS) :- R(CS).\n"
      "V(Mkt) :- S(Mkt).\n");
  auto flat = unfoldGoalRules(p, "panic");
  // Only the Mkt-headed definition survives.
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].body[0].atom.pred, "S");
}

TEST_F(UnfoldTest, NestedExpansion) {
  auto p = parse(
      "panic :- A(x).\n"
      "A(x) :- B(x), E(x).\n"
      "B(x) :- F(x), G(x).\n");
  auto flat = unfoldGoalRules(p, "panic");
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].body.size(), 3u);  // F, G, E
}

TEST_F(UnfoldTest, MultipleDefinitionsMultiplyRules) {
  auto p = parse(
      "panic :- A(x), B(x).\n"
      "A(x) :- E(x).\n"
      "A(x) :- F(x).\n"
      "B(x) :- G(x).\n"
      "B(x) :- H(x).\n");
  auto flat = unfoldGoalRules(p, "panic");
  EXPECT_EQ(flat.size(), 4u);
}

TEST_F(UnfoldTest, VariableCollisionsAreFreshened) {
  // Both the goal rule and the aux rule use `x`; expansion must not
  // conflate them.
  auto p = parse(
      "panic :- A(x), E(x).\n"
      "A(y) :- F(y, x).\n");
  auto flat = unfoldGoalRules(p, "panic");
  ASSERT_EQ(flat.size(), 1u);
  // The goal's x and the aux rule's local x must stay distinct while the
  // unified variable is used consistently across F and E.
  const auto& f = flat[0].body[0].atom;
  const auto& e = flat[0].body[1].atom;
  ASSERT_EQ(f.pred, "F");
  ASSERT_EQ(e.pred, "E");
  EXPECT_EQ(f.args[0].var, e.args[0].var);
  EXPECT_NE(f.args[1].var, f.args[0].var);
}

TEST_F(UnfoldTest, NegatedIdbRejected) {
  auto p = parse(
      "panic :- R(x), !A(x).\n"
      "A(x) :- E(x).\n");
  EXPECT_THROW(unfoldGoalRules(p, "panic"), EvalError);
}

TEST_F(UnfoldTest, MissingGoalRejected) {
  auto p = parse("A(x) :- E(x).\n");
  EXPECT_THROW(unfoldGoalRules(p, "panic"), EvalError);
}

TEST_F(UnfoldTest, RecursiveAuxOverflowsBudget) {
  auto p = parse(
      "panic :- A(x).\n"
      "A(x) :- E(x).\n"
      "A(x) :- E(x), A(x).\n");
  EXPECT_THROW(unfoldGoalRules(p, "panic", 16), EvalError);
}

}  // namespace
}  // namespace faure::verify
