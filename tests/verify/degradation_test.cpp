// Degradation at the verification layer: when a resource budget trips,
// every verdict weakens to UNKNOWN — never to a wrong Holds/Violated —
// and the degradation is distinguishable from genuinely missing
// information via StateCheck::incomplete / lastDegradeReason().
#include "verify/verifier.hpp"

#include <gtest/gtest.h>

#include "util/resource_guard.hpp"

namespace faure::verify {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

/// A state on which the constraint plainly holds (panic cannot derive):
/// degradation must weaken that answer to Unknown, not corrupt it.
rel::Database holdsState() {
  rel::Database db;
  db.create(anySchema("T", 1)).insertConcrete({Value::fromInt(1)});
  return db;
}

TEST(DegradationTest, StateCheckDegradesToUnknownWithReason) {
  rel::Database db = holdsState();
  Constraint c = Constraint::parse(
      "c", "panic :- T(v), T(w), v != w.", db.cvars());
  smt::NativeSolver solver(db.cvars());
  ASSERT_EQ(RelativeVerifier::checkOnState(c, db, solver).verdict,
            Verdict::Holds);

  ResourceGuard guard;
  guard.failAfter(1);
  solver.setGuard(&guard);
  StateCheck check = RelativeVerifier::checkOnState(c, db, solver);
  EXPECT_EQ(check.verdict, Verdict::Unknown);
  EXPECT_TRUE(check.incomplete);
  EXPECT_EQ(check.reason, guard.reason());
  EXPECT_NE(check.reason.find("fault-injection"), std::string::npos);
}

TEST(DegradationTest, StateCheckRecoversWithARoomierBudget) {
  rel::Database db = holdsState();
  Constraint c = Constraint::parse(
      "c", "panic :- T(v), T(w), v != w.", db.cvars());
  smt::NativeSolver solver(db.cvars());
  ResourceLimits tight;
  tight.maxSteps = 1;
  ResourceGuard guard(tight);
  solver.setGuard(&guard);
  ASSERT_EQ(RelativeVerifier::checkOnState(c, db, solver).verdict,
            Verdict::Unknown);
  // Same guard re-armed with room to finish: the degraded UNKNOWN was
  // transient, exactly as the CLI's "rerun with more resources" advises.
  ResourceLimits roomy;
  roomy.maxSteps = 1u << 30;
  guard.arm(roomy);
  StateCheck check = RelativeVerifier::checkOnState(c, db, solver);
  EXPECT_EQ(check.verdict, Verdict::Holds);
  EXPECT_FALSE(check.incomplete);
}

TEST(DegradationTest, SubsumptionDegradesToUnknownNotToHolds) {
  CVarRegistry reg;
  Constraint narrow =
      Constraint::parse("narrow", "panic :- R(Mkt, CS, p_).", reg);
  Constraint broad =
      Constraint::parse("broad", "panic :- R(xs_, ys_, ps_).", reg);
  {
    RelativeVerifier v(reg);
    ASSERT_EQ(v.checkSubsumption(narrow, {broad}), Verdict::Holds);
  }
  ResourceGuard guard;
  guard.failAfter(1);
  SubsumptionOptions opts;
  opts.guard = &guard;
  RelativeVerifier v(reg, opts);
  EXPECT_EQ(v.checkSubsumption(narrow, {broad}), Verdict::Unknown);
  EXPECT_FALSE(v.lastDegradeReason().empty());
  EXPECT_NE(v.lastDegradeReason().find("fault-injection"),
            std::string::npos);
}

TEST(DegradationTest, GenuineUnknownCarriesNoDegradeReason) {
  CVarRegistry reg;
  Constraint narrow =
      Constraint::parse("narrow", "panic :- R(Mkt, CS, p_).", reg);
  Constraint broad =
      Constraint::parse("broad", "panic :- R(xs_, ys_, ps_).", reg);
  RelativeVerifier v(reg);
  // Unknown because the information is genuinely insufficient, not
  // because a budget tripped: no degrade reason.
  EXPECT_EQ(v.checkSubsumption(broad, {narrow}), Verdict::Unknown);
  EXPECT_TRUE(v.lastDegradeReason().empty());
  EXPECT_TRUE(v.lastWitness().has_value());
}

TEST(DegradationTest, SubsumptionResultCarriesTheTripCode) {
  CVarRegistry reg;
  Constraint narrow =
      Constraint::parse("narrow", "panic :- R(Mkt, CS, p_).", reg);
  Constraint broad =
      Constraint::parse("broad", "panic :- R(xs_, ys_, ps_).", reg);
  ResourceLimits limits;
  limits.maxSolverChecks = 1;
  ResourceGuard guard(limits);
  SubsumptionOptions opts;
  opts.guard = &guard;
  SubsumptionResult r = subsumes(narrow, {broad}, reg, opts);
  EXPECT_FALSE(r.subsumed);
  EXPECT_TRUE(r.incomplete);
  EXPECT_EQ(r.reason, "solver-checks(limit=1)");
}

}  // namespace
}  // namespace faure::verify
