// Paper fidelity for Listing 4: the chained-auxiliary-predicate form of
// the update rewrite (q19-q24, evaluated directly with stratified
// negation over the IDB chain) must agree state-by-state with this
// library's flattened rewriteForUpdate form.
#include <gtest/gtest.h>

#include "faurelog/eval.hpp"
#include "verify/update.hpp"

namespace faure::verify {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

TEST(Listing4Test, ChainFormAgreesWithFlattenedRewrite) {
  CVarRegistry reg;
  reg.declare("y_", ValueType::Sym, {Value::sym("CS"), Value::sym("GS")});

  // The paper's Listing 4 structure (q19-q22 build Lb2; q24 is T2 over
  // Lb2). The overbarred x̄,ȳ of q20-q22 range over *rows* — i.e. they
  // act as ordinary datalog variables (the paper's SQL compilation
  // valuates them per row), so they are written as program variables
  // here; annotation syntax is kept as printed.
  const char* listing4 =
      "Lb(R&D, GS).\n"                          // q19
      "Lb1(a, b) :- Lb(a, b).\n"                // q20
      "Lb2(a, b) :- Lb1(a, b)[a != Mkt].\n"     // q21
      "Lb2(a, b) :- Lb1(a, b)[b != CS].\n"      // q22
      "panic :- R(R&D, y_, 7000), !Lb2(R&D, y_).\n";  // q24

  // This library's form: rewrite T2 for the same update.
  Constraint t2 = Constraint::parse(
      "T2", "panic :- R(R&D, y_, 7000), !Lb(R&D, y_).", reg);
  Update u;
  u.insert("Lb", {dl::Term::constant_(Value::sym("R&D")),
                  dl::Term::constant_(Value::sym("GS"))});
  u.remove("Lb", {dl::Term::constant_(Value::sym("Mkt")),
                  dl::Term::constant_(Value::sym("CS"))});
  Constraint t2p = rewriteForUpdate(t2, u);

  // Compare on every concrete pre-update state over
  //   R ⊆ {R&D} x {CS,GS} x {7000},  Lb ⊆ {R&D,Mkt} x {CS,GS}.
  const char* subnets[] = {"R&D", "Mkt"};
  const char* servers[] = {"CS", "GS"};
  CVarRegistry chainReg = reg;  // a_/b_ declared lazily by the parser
  dl::Program chain = dl::parseProgram(listing4, chainReg);

  for (int mask = 0; mask < 64; ++mask) {
    rel::Database db;
    db.cvars() = chainReg;
    db.create(anySchema("R", 3));
    db.create(anySchema("Lb", 2));
    for (int i = 0; i < 2; ++i) {
      if (mask & (1 << i)) {
        db.table("R").insertConcrete({Value::sym("R&D"),
                                      Value::sym(servers[i]),
                                      Value::fromInt(7000)});
      }
    }
    for (int s = 0; s < 2; ++s) {
      for (int v = 0; v < 2; ++v) {
        if (mask & (4 << (s * 2 + v))) {
          db.table("Lb").insertConcrete(
              {Value::sym(subnets[s]), Value::sym(servers[v])});
        }
      }
    }
    smt::NativeSolver s1(db.cvars());
    smt::NativeSolver s2(db.cvars());
    auto chainRes = fl::evalFaure(chain, db, &s1, fl::EvalOptions{});
    auto flatRes = fl::evalFaure(t2p.program, db, &s2, fl::EvalOptions{});
    smt::Formula f1, f2;
    chainRes.derived("panic", &f1);
    flatRes.derived("panic", &f2);
    smt::NativeSolver judge(db.cvars());
    EXPECT_TRUE(judge.equivalent(f1, f2))
        << "state mask " << mask << ": chain=" << f1.toString(&db.cvars())
        << " flat=" << f2.toString(&db.cvars());
  }
}

}  // namespace
}  // namespace faure::verify
