// Differential property test for §5: on positive constraint programs
// (where the classical canonical-database method is applicable), the
// fauré-log containment-by-evaluation reduction must agree with it.
#include <gtest/gtest.h>

#include "datalog/containment.hpp"
#include "util/rng.hpp"
#include "verify/containment.hpp"

namespace faure::verify {
namespace {

/// Random positive 0-ary constraint over relations R0..R2 (arity 3) with
/// a mix of shared variables and constants.
dl::Program randomConstraint(util::Rng& rng, CVarRegistry& reg) {
  const char* consts[] = {"Mkt", "CS", "GS", "Web"};
  int atoms = 1 + static_cast<int>(rng.below(3));
  std::string text = "panic :- ";
  for (int i = 0; i < atoms; ++i) {
    if (i > 0) text += ", ";
    text += "R" + std::to_string(rng.below(3)) + "(";
    for (int a = 0; a < 3; ++a) {
      if (a > 0) text += ", ";
      if (rng.chance(0.35)) {
        text += consts[rng.below(4)];
      } else {
        // Shared variable pool keeps joins non-trivial.
        text += "v" + std::to_string(rng.below(4));
      }
    }
    text += ")";
  }
  text += ".";
  return dl::parseProgram(text, reg);
}

class ContainmentAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentAgreement, ReductionMatchesClassical) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 0x7f4a7c15u + 5);
  CVarRegistry reg;
  int agreeHold = 0;
  int agreeFail = 0;
  for (int trial = 0; trial < 40; ++trial) {
    dl::Program a = randomConstraint(rng, reg);
    dl::Program b = randomConstraint(rng, reg);
    bool classical = dl::constraintSubsumedCanonical(a, b);
    SubsumptionResult reduction =
        subsumes(Constraint{"a", a}, {Constraint{"b", b}}, reg);
    EXPECT_EQ(classical, reduction.subsumed)
        << "A:\n"
        << a.toString(&reg) << "B:\n"
        << b.toString(&reg);
    (classical ? agreeHold : agreeFail)++;
  }
  // The generator must exercise both outcomes for the test to mean
  // anything.
  EXPECT_GT(agreeFail, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentAgreement, ::testing::Range(0, 8));

TEST(ContainmentAgreementFixed, PositiveHoldingPairProduced) {
  // Deterministic sanity case where subsumption holds both ways.
  CVarRegistry reg;
  dl::Program specific =
      dl::parseProgram("panic :- R0(Mkt, CS, v0).", reg);
  dl::Program general = dl::parseProgram("panic :- R0(v0, v1, v2).", reg);
  EXPECT_TRUE(dl::constraintSubsumedCanonical(specific, general));
  EXPECT_TRUE(subsumes(Constraint{"s", specific}, {Constraint{"g", general}},
                       reg)
                  .subsumed);
  EXPECT_FALSE(dl::constraintSubsumedCanonical(general, specific));
  EXPECT_FALSE(subsumes(Constraint{"g", general}, {Constraint{"s", specific}},
                        reg)
                   .subsumed);
}

}  // namespace
}  // namespace faure::verify
