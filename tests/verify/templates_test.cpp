// Tests for the constraint-template builders (verify/templates.hpp).
#include "verify/templates.hpp"

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "verify/verifier.hpp"

namespace faure::verify {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

class TemplatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.create(anySchema("R", 3));
  }
  void addReach(int64_t a, int64_t b, smt::Formula cond = smt::Formula()) {
    db_.table("R").insert(
        {Value::sym("f0"), Value::fromInt(a), Value::fromInt(b)},
        std::move(cond));
  }
  Verdict check(const Constraint& c) {
    smt::NativeSolver solver(db_.cvars());
    return RelativeVerifier::checkOnState(c, db_, solver).verdict;
  }

  rel::Database db_;
};

TEST_F(TemplatesTest, MustReach) {
  Constraint c = mustReach(db_.cvars(), "f0", 1, 5);
  EXPECT_EQ(check(c), Verdict::Violated);  // nothing reaches anything yet
  addReach(1, 5);
  EXPECT_EQ(check(c), Verdict::Holds);
}

TEST_F(TemplatesTest, MustReachConditional) {
  CVarId x = db_.cvars().declareInt("x_", 0, 1);
  addReach(1, 5, smt::Formula::cmp(Value::cvar(x), smt::CmpOp::Eq,
                                   Value::fromInt(1)));
  Constraint c = mustReach(db_.cvars(), "f0", 1, 5);
  smt::NativeSolver solver(db_.cvars());
  StateCheck s = RelativeVerifier::checkOnState(c, db_, solver);
  EXPECT_EQ(s.verdict, Verdict::ConditionallyViolated);
  // Violated exactly when the link is down.
  EXPECT_TRUE(solver.equivalent(
      s.condition,
      smt::Formula::cmp(Value::cvar(x), smt::CmpOp::Eq, Value::fromInt(0))));
}

TEST_F(TemplatesTest, MustNotReach) {
  Constraint c = mustNotReach(db_.cvars(), "f0", 3, 4);
  EXPECT_EQ(check(c), Verdict::Holds);
  addReach(3, 4);
  EXPECT_EQ(check(c), Verdict::Violated);
}

TEST_F(TemplatesTest, Waypoint) {
  Constraint c = waypoint(db_.cvars(), "f0", 1, 5, 3);
  // No end-to-end reachability: trivially holds.
  EXPECT_EQ(check(c), Verdict::Holds);
  // End-to-end without the waypoint legs: violated.
  addReach(1, 5);
  EXPECT_EQ(check(c), Verdict::Violated);
  // Both legs present: holds again.
  addReach(1, 3);
  addReach(3, 5);
  EXPECT_EQ(check(c), Verdict::Holds);
}

TEST_F(TemplatesTest, RequireMiddlebox) {
  db_.create(anySchema("Fw", 2));
  Constraint c = requireMiddlebox(db_.cvars(), "Mkt", "CS", "Fw");
  EXPECT_EQ(check(c), Verdict::Holds);  // no traffic
  db_.table("R").insertConcrete(
      {Value::sym("Mkt"), Value::sym("CS"), Value::fromInt(80)});
  EXPECT_EQ(check(c), Verdict::Violated);
  db_.table("Fw").insertConcrete({Value::sym("Mkt"), Value::sym("CS")});
  EXPECT_EQ(check(c), Verdict::Holds);
}

TEST_F(TemplatesTest, RequireMiddleboxSubsumedBySecurityPolicy) {
  // The template instance reproduces the paper's T1 ⊆ Cs relationship.
  CVarRegistry reg;
  Constraint t1 = requireMiddlebox(reg, "Mkt", "CS", "Fw");
  Constraint cs = Constraint::parse(
      "Cs",
      "panic :- Vs(x, y, p).\n"
      "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), !Fw(xs_, ys_).\n",
      reg);
  RelativeVerifier v(reg);
  EXPECT_EQ(v.checkSubsumption(t1, {cs}), Verdict::Holds);
}

TEST_F(TemplatesTest, AllowedPorts) {
  Constraint c = allowedPorts(db_.cvars(), {80, 443});
  db_.table("R").insertConcrete(
      {Value::sym("Mkt"), Value::sym("CS"), Value::fromInt(80)});
  EXPECT_EQ(check(c), Verdict::Holds);
  db_.table("R").insertConcrete(
      {Value::sym("Mkt"), Value::sym("CS"), Value::fromInt(22)});
  EXPECT_EQ(check(c), Verdict::Violated);
}

TEST_F(TemplatesTest, AllowedPortsWithUnknownPort) {
  CVarId p = db_.cvars().declare("openport_", ValueType::Int);
  db_.table("R").insertConcrete(
      {Value::sym("Mkt"), Value::sym("CS"), Value::cvar(p)});
  Constraint c = allowedPorts(db_.cvars(), {80, 443});
  smt::NativeSolver solver(db_.cvars());
  StateCheck s = RelativeVerifier::checkOnState(c, db_, solver);
  // The unknown port may or may not be allowed.
  EXPECT_EQ(s.verdict, Verdict::ConditionallyViolated);
}

}  // namespace
}  // namespace faure::verify
