// Unit tests for RelativeVerifier plumbing (verify/verifier.hpp) not
// covered by the §5 scenario test.
#include "verify/verifier.hpp"

#include <gtest/gtest.h>

namespace faure::verify {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

TEST(VerifierTest, VerdictText) {
  EXPECT_EQ(verdictText(Verdict::Holds), "holds");
  EXPECT_EQ(verdictText(Verdict::Unknown), "unknown");
  EXPECT_EQ(verdictText(Verdict::Violated), "violated");
  EXPECT_EQ(verdictText(Verdict::ConditionallyViolated),
            "conditionally-violated");
}

TEST(VerifierTest, WitnessSetOnUnknownClearedOnHolds) {
  CVarRegistry reg;
  Constraint narrow = Constraint::parse(
      "narrow", "panic :- R(Mkt, CS, p_).", reg);
  Constraint broad = Constraint::parse(
      "broad", "panic :- R(xs_, ys_, ps_).", reg);
  RelativeVerifier v(reg);
  EXPECT_EQ(v.checkSubsumption(broad, {narrow}), Verdict::Unknown);
  ASSERT_TRUE(v.lastWitness().has_value());
  EXPECT_EQ(v.checkSubsumption(narrow, {broad}), Verdict::Holds);
  EXPECT_FALSE(v.lastWitness().has_value());
}

TEST(VerifierTest, StateCheckHoldsWhenPanicUnsatisfiable) {
  // The panic condition derives but can never hold: x_ = 0 & x_ + y_ = 3
  // over bits.
  rel::Database db;
  db.cvars().declareInt("x_", 0, 1);
  db.cvars().declareInt("y_", 0, 1);
  db.create(anySchema("T", 1)).insertConcrete({Value::fromInt(1)});
  Constraint c = Constraint::parse(
      "c", "panic :- T(v), x_ = 0, x_ + y_ = 3.", db.cvars());
  smt::NativeSolver solver(db.cvars());
  StateCheck check = RelativeVerifier::checkOnState(c, db, solver);
  EXPECT_EQ(check.verdict, Verdict::Holds);
}

TEST(VerifierTest, StateCheckViolatedWhenUnconditional) {
  rel::Database db;
  db.create(anySchema("T", 1)).insertConcrete({Value::fromInt(1)});
  Constraint c = Constraint::parse("c", "panic :- T(v).", db.cvars());
  smt::NativeSolver solver(db.cvars());
  EXPECT_EQ(RelativeVerifier::checkOnState(c, db, solver).verdict,
            Verdict::Violated);
}

TEST(VerifierTest, StateCheckProjectsQueryLocalUnknowns) {
  // The constraint's own c-variable p_ matches the concrete port 80;
  // since p_ is query-local, the verdict must be Violated outright, not
  // conditional on p_.
  rel::Database db;
  db.create(anySchema("R", 2));
  db.table("R").insertConcrete({Value::sym("Mkt"), Value::fromInt(80)});
  Constraint c =
      Constraint::parse("c", "panic :- R(Mkt, p_).", db.cvars());
  smt::NativeSolver solver(db.cvars());
  StateCheck check = RelativeVerifier::checkOnState(c, db, solver);
  EXPECT_EQ(check.verdict, Verdict::Violated);
}

TEST(VerifierTest, EmptyConstraintSetNeverSubsumes) {
  CVarRegistry reg;
  Constraint t = Constraint::parse("t", "panic :- R(Mkt, CS, p_).", reg);
  RelativeVerifier v(reg);
  // Evaluating an empty constraint union derives nothing.
  EXPECT_EQ(v.checkSubsumption(t, {}), Verdict::Unknown);
}

TEST(VerifierTest, VacuousTargetIsAlwaysSubsumed) {
  // A target whose premise is contradictory can never fire: covered.
  CVarRegistry reg;
  Constraint t = Constraint::parse(
      "t", "panic :- R(x, p), x != Mkt, x = Mkt.", reg);
  Constraint any = Constraint::parse("any", "panic :- S(q).", reg);
  RelativeVerifier v(reg);
  EXPECT_EQ(v.checkSubsumption(t, {any}), Verdict::Holds);
}

}  // namespace
}  // namespace faure::verify
