// `faure` — command-line front end to the library.
//
//   faure run <db.fdb> <program.fl> [options]   evaluate a fauré-log
//                                               program on a database
//   faure check <db.fdb> <constraint.fl>        state-level constraint
//                                               verdict (§5 level iii)
//   faure worlds <db.fdb> [cap]                 enumerate possible worlds
//   faure fmt <db.fdb>                          parse and reprint
//
// Options for `run`:
//   --relation NAME   print only this derived relation
//   --simplify        semantically simplify result conditions
//   --solver z3       use the Z3 backend (if built in)
//   --stats           print evaluation statistics
//
// Database files use the textio format (see src/faurelog/textio.hpp);
// programs are fauré-log text (see src/datalog/lexer.hpp).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "faurelog/textio.hpp"
#include "relational/worlds.hpp"
#include "smt/z3_solver.hpp"
#include "util/error.hpp"
#include "verify/verifier.hpp"

using namespace faure;

namespace {

std::string readFile(const char* path) {
  std::ifstream in(path);
  if (!in) throw Error(std::string("cannot open '") + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  faure run <db.fdb> <program.fl> [--relation NAME] [--simplify]\n"
      "            [--solver native|z3] [--stats] [--db-out FILE]\n"
      "  faure check <db.fdb> <constraint.fl>\n"
      "  faure worlds <db.fdb> [cap]\n"
      "  faure fmt <db.fdb>\n");
  return 2;
}

std::unique_ptr<smt::SolverBase> makeSolver(const rel::Database& db,
                                            const char* which) {
  if (std::strcmp(which, "z3") == 0) {
    auto z3 = smt::makeZ3Solver(db.cvars());
    if (z3 == nullptr) throw Error("this build has no Z3 backend");
    return z3;
  }
  if (std::strcmp(which, "native") != 0) {
    throw Error(std::string("unknown solver '") + which + "'");
  }
  return std::make_unique<smt::NativeSolver>(db.cvars());
}

int cmdRun(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* relation = nullptr;
  const char* solverName = "native";
  const char* dbOut = nullptr;
  bool simplify = false;
  bool stats = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relation") == 0 && i + 1 < argc) {
      relation = argv[++i];
    } else if (std::strcmp(argv[i], "--simplify") == 0) {
      simplify = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--solver") == 0 && i + 1 < argc) {
      solverName = argv[++i];
    } else if (std::strcmp(argv[i], "--db-out") == 0 && i + 1 < argc) {
      dbOut = argv[++i];
    } else {
      return usage();
    }
  }
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  dl::Program program = dl::parseProgram(readFile(argv[1]), db.cvars());
  auto solver = makeSolver(db, solverName);
  fl::EvalOptions opts;
  opts.simplifyResults = simplify;
  fl::EvalResult res = fl::evalFaure(program, db, solver.get(), opts);
  for (const auto& [pred, table] : res.idb) {
    if (relation != nullptr && pred != relation) continue;
    std::printf("%s\n", table.toString(&db.cvars()).c_str());
  }
  if (dbOut != nullptr) {
    // Write the input state plus every derived relation: later `faure`
    // invocations can query the results (the q6/q7 nesting pattern).
    for (auto& [pred, table] : res.idb) db.put(std::move(table));
    std::ofstream out(dbOut);
    if (!out) throw Error(std::string("cannot write '") + dbOut + "'");
    out << fl::formatDatabase(db);
  }
  if (stats) {
    std::printf(
        "stats: %llu derivations, %llu inserted, %llu pruned-unsat, "
        "%llu subsumed, %zu rounds, sql %.3fs, solver %.3fs "
        "(%llu checks)\n",
        static_cast<unsigned long long>(res.stats.derivations),
        static_cast<unsigned long long>(res.stats.inserted),
        static_cast<unsigned long long>(res.stats.prunedUnsat),
        static_cast<unsigned long long>(res.stats.subsumed),
        res.stats.iterations, res.stats.sqlSeconds,
        res.stats.solverSeconds,
        static_cast<unsigned long long>(res.stats.solverChecks));
  }
  return 0;
}

int cmdCheck(int argc, char** argv) {
  if (argc != 2) return usage();
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  verify::Constraint c =
      verify::Constraint::parse("constraint", readFile(argv[1]), db.cvars());
  smt::NativeSolver solver(db.cvars());
  verify::StateCheck check =
      verify::RelativeVerifier::checkOnState(c, db, solver);
  std::printf("verdict: %s\n",
              std::string(verify::verdictText(check.verdict)).c_str());
  if (check.verdict == verify::Verdict::ConditionallyViolated) {
    std::printf("violated exactly when: %s\n",
                check.condition.toString(&db.cvars()).c_str());
  }
  return check.verdict == verify::Verdict::Holds ? 0 : 1;
}

int cmdWorlds(int argc, char** argv) {
  if (argc < 1 || argc > 2) return usage();
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  uint64_t cap = argc == 2 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  size_t count = 0;
  bool ok = rel::forEachWorld(
      db, cap, [&](const smt::Assignment& a, const rel::World& world) {
        std::printf("---- world %zu ----\n", count++);
        for (const auto& [var, val] : a) {
          std::printf("  %s = %s\n", db.cvars().info(var).name.c_str(),
                      val.toString(&db.cvars()).c_str());
        }
        for (const auto& [name, rows] : world) {
          for (const auto& row : rows) {
            std::printf("  %s(", name.c_str());
            for (size_t i = 0; i < row.size(); ++i) {
              std::printf("%s%s", i > 0 ? ", " : "",
                          row[i].toString(&db.cvars()).c_str());
            }
            std::printf(")\n");
          }
        }
      });
  if (!ok) {
    std::fprintf(stderr,
                 "world space not enumerable (unbounded domain or more "
                 "than %llu worlds)\n",
                 static_cast<unsigned long long>(cap));
    return 1;
  }
  std::printf("%zu possible worlds\n", count);
  return 0;
}

int cmdFmt(int argc, char** argv) {
  if (argc != 1) return usage();
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  std::printf("%s", fl::formatDatabase(db).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "run") == 0) return cmdRun(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "check") == 0) {
      return cmdCheck(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "worlds") == 0) {
      return cmdWorlds(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "fmt") == 0) return cmdFmt(argc - 2, argv + 2);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "faure: %s\n", e.what());
    return 1;
  }
}
