// `faure` — command-line front end to the library.
//
//   faure run <db.fdb> <program.fl> [options]   evaluate a fauré-log
//                                               program on a database
//   faure whatif <db.fdb> <program.fl> <edits.fl>
//                                               evaluate, then replay a
//                                               +Fact/-Fact edit script
//                                               incrementally (§10)
//   faure serve <db.fdb> <program.fl>           concurrent scenario
//                                               service (§12): EVAL/GO
//                                               line protocol on stdin
//                                               or a unix socket
//   faure check <db.fdb> <constraint.fl>        state-level constraint
//                                               verdict (§5 level iii)
//   faure worlds <db.fdb> [cap]                 enumerate possible worlds
//   faure fmt <db.fdb>                          parse and reprint
//
// `whatif` prints the derived relations once per epoch (the initial
// state, then after each edit) under `== epoch N: ... ==` headers. The
// incremental engine re-fires only strata affected by each edit;
// FAURE_INCREMENTAL=0 or --full-recompute selects the full-recompute
// oracle, whose output is byte-identical (DESIGN.md §10).
//
// `whatif --scenarios FILE` evaluates N independent edit scripts (one
// per `---`-delimited block of FILE) concurrently against one shared
// base snapshot (DESIGN.md §12), printing each scenario's epochs —
// byte-identical to N single whatif runs — under
// `=== scenario I: exit E ===` frames in input order. `serve` exposes
// the same engine as a long-lived service: `EVAL <id> <script>` queues
// a scenario (`;` separates edits), an empty line or `GO` evaluates
// the queued batch concurrently and answers
// `RESULT <id> <exit> <nbytes> [reason]` + nbytes payload per request
// in queue order, `PING` answers `PONG`, `QUIT`/EOF drains the queue
// and closes, `SHUTDOWN` additionally stops a socket server
// (--socket PATH listens on a unix socket instead of stdin/stdout).
//
// Options for `run`:
//   --relation NAME   print only this derived relation
//   --simplify        semantically simplify result conditions
//   --solver z3       use the Z3 backend (if built in)
//   --stats           print evaluation + solver statistics
//   --plan MODE       cost-based join planning: on | off | explain
//                     (run and whatif; default FAURE_PLAN env, else on)
//
// Observability (run and check; see DESIGN.md "Observability"):
//   --trace           human-readable span tree on stderr
//   --trace=FILE      Chrome trace_event JSON to FILE (about://tracing)
//   --metrics         JSON run report on stdout (replaces normal output,
//                     so the stream stays parseable)
//   --metrics=FILE    JSON run report to FILE, normal output kept
// FAURE_TRACE_FINE=1 additionally records per-join / per-solver-check
// spans (they dominate the span count on solver-heavy runs).
//
// Resource governance (run and check; see DESIGN.md "Resource
// governance & degradation"): on budget exhaustion the engine degrades —
// run prints the tuples derived so far plus `incomplete: <reason>` and
// exits 2; check answers `unknown` with the reason.
//   --deadline S            wall-clock deadline in seconds
//   --max-steps N           relational work budget
//   --max-tuples N          derivation budget
//   --max-solver-checks N   satisfiability-check budget
//   --fail-after N          deterministic fault injection (testing)
// Environment defaults: FAURE_DEADLINE, FAURE_MAX_STEPS,
// FAURE_MAX_TUPLES, FAURE_MAX_SOLVER_CHECKS, FAURE_MAX_MEMORY,
// FAURE_FAIL_AFTER.
//
// Fault tolerance (run and check; see DESIGN.md §9): any of these wraps
// the solver in a SupervisedSolver (watchdog, bounded deterministic
// retry, circuit breaker, failover, seeded chaos injection):
//   --retries N             retry a failed backend call up to N times
//   --solver-timeout-ms MS  per-attempt watchdog deadline
//   --failover              append a native last-resort backend
//   --chaos-seed N          deterministic fault injection (implies
//                           --failover; N = 0 disables)
// Environment defaults: FAURE_RETRIES, FAURE_SOLVER_TIMEOUT_MS,
// FAURE_FAILOVER, FAURE_CHAOS_SEED.
//
// Exit codes (stable contract, tested by tests/cli):
//   0  definite result — run completed; check verdict is holds /
//      violated / conditionally-violated
//   1  hard error — bad usage, unreadable input, parse failure
//   2  degraded result — run incomplete (budget) or check verdict
//      unknown: rerun with more resources
//
// Database files use the textio format (see src/faurelog/textio.hpp);
// programs are fauré-log text (see src/datalog/lexer.hpp).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "faurelog/incremental.hpp"
#include "faurelog/scenario.hpp"
#include "faurelog/textio.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "relational/worlds.hpp"
#include "smt/supervised_solver.hpp"
#include "smt/verdict_cache.hpp"
#include "smt/z3_solver.hpp"
#include "util/error.hpp"
#include "util/fault_plan.hpp"
#include "util/resource_guard.hpp"
#include "verify/verifier.hpp"

using namespace faure;

namespace {

std::string readFile(const char* path) {
  std::ifstream in(path);
  if (!in) throw Error(std::string("cannot open '") + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  faure run <db.fdb> <program.fl> [--relation NAME] [--simplify]\n"
      "            [--solver native|z3] [--stats] [--db-out FILE]\n"
      "            [--threads N | -jN] [--plan MODE] [--solver-cache N]\n"
      "            [observability options] [budget options]\n"
      "  faure whatif <db.fdb> <program.fl> <edits.fl> [--relation NAME]\n"
      "            [--incremental | --full-recompute] [--solver native|z3]\n"
      "            [--stats] [--threads N | -jN] [--plan MODE]\n"
      "            [--solver-cache N]\n"
      "            [observability options] [budget options]\n"
      "            (default mode: FAURE_INCREMENTAL env, on unless \"0\";\n"
      "             both modes print byte-identical epochs)\n"
      "  faure whatif <db.fdb> <program.fl> --scenarios FILE [...]\n"
      "            evaluate one scenario per ----delimited block of FILE\n"
      "            concurrently against a shared base snapshot; -jN sets\n"
      "            the fan-out width, output is byte-identical to N\n"
      "            single whatif runs (framed per scenario, input order)\n"
      "  faure serve <db.fdb> <program.fl> [--socket PATH] [whatif flags]\n"
      "            scenario service: EVAL/GO/PING/QUIT/SHUTDOWN line\n"
      "            protocol on stdin/stdout, or on a unix socket\n"
      "  faure check <db.fdb> <constraint.fl> [--stats] [--solver-cache N]\n"
      "            [observability options] [budget options]\n"
      "  faure worlds <db.fdb> [cap]\n"
      "  faure fmt <db.fdb>\n"
      "parallelism (DESIGN.md \"Parallel execution\"):\n"
      "  --threads N / -jN  evaluation threads; 0 = hardware concurrency.\n"
      "                     Default: FAURE_THREADS env, else serial.\n"
      "                     Results are identical for every N.\n"
      "join planning (DESIGN.md \"Cost-based join planning\"):\n"
      "  --plan MODE  on: reorder body literals by estimated selectivity\n"
      "               and probe persistent c-table indexes; off: pristine\n"
      "               program-order joins; explain: plan and dump each\n"
      "               chosen plan to stderr. Default: FAURE_PLAN env,\n"
      "               else on. Results are identical in every mode.\n"
      "solver verdict cache (DESIGN.md \"Condition performance\"):\n"
      "  --solver-cache N  memoized check()/implies() verdicts (LRU\n"
      "                    entries); 0 disables. Default: FAURE_SOLVER_CACHE\n"
      "                    env, else 65536. Results are identical for\n"
      "                    every N; only physical solver work changes.\n"
      "observability options (DESIGN.md \"Observability\"):\n"
      "  --trace[=FILE]    span tree on stderr / Chrome trace to FILE\n"
      "  --metrics[=FILE]  JSON run report on stdout / to FILE\n"
      "budget options (degrade to incomplete/unknown, never hang):\n"
      "  --deadline S  --max-steps N  --max-tuples N\n"
      "  --max-solver-checks N  --fail-after N\n"
      "fault-tolerance options (DESIGN.md \"Fault tolerance\"):\n"
      "  --retries N  --solver-timeout-ms MS  --failover  --chaos-seed N\n"
      "exit codes: 0 definite result, 1 hard error, 2 degraded result\n"
      "            (run incomplete / check verdict unknown)\n");
  return 1;
}

/// Parses one budget flag at argv[i] (advancing i past its value);
/// returns false when argv[i] is not a budget flag.
bool parseBudgetFlag(int argc, char** argv, int& i, ResourceLimits& limits) {
  auto need = [&](uint64_t& out) {
    if (i + 1 >= argc) throw Error("missing value for budget option");
    out = std::strtoull(argv[++i], nullptr, 10);
  };
  if (std::strcmp(argv[i], "--deadline") == 0) {
    if (i + 1 >= argc) throw Error("missing value for --deadline");
    limits.deadlineSeconds = std::strtod(argv[++i], nullptr);
  } else if (std::strcmp(argv[i], "--max-steps") == 0) {
    need(limits.maxSteps);
  } else if (std::strcmp(argv[i], "--max-tuples") == 0) {
    need(limits.maxTuples);
  } else if (std::strcmp(argv[i], "--max-solver-checks") == 0) {
    need(limits.maxSolverChecks);
  } else if (std::strcmp(argv[i], "--fail-after") == 0) {
    need(limits.failAfter);
  } else {
    return false;
  }
  return true;
}

/// Parses a thread-count flag (`--threads N`, `--threads=N`, `-jN`,
/// `-j N`) at argv[i], advancing i past any separate value; returns
/// false when argv[i] is not a thread flag.
bool parseThreadsFlag(int argc, char** argv, int& i,
                      std::optional<unsigned>& threads) {
  auto parse = [](const char* s) {
    return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
  };
  if (std::strncmp(argv[i], "--threads=", 10) == 0) {
    threads = parse(argv[i] + 10);
  } else if (std::strcmp(argv[i], "--threads") == 0) {
    if (i + 1 >= argc) throw Error("missing value for --threads");
    threads = parse(argv[++i]);
  } else if (std::strncmp(argv[i], "-j", 2) == 0) {
    if (argv[i][2] != '\0') {
      threads = parse(argv[i] + 2);
    } else {
      if (i + 1 >= argc) throw Error("missing value for -j");
      threads = parse(argv[++i]);
    }
  } else {
    return false;
  }
  return true;
}

/// Parses `--solver-cache N` / `--solver-cache=N` (verdict-cache LRU
/// entries; 0 disables) at argv[i], advancing i past any separate value;
/// returns false when argv[i] is not the cache flag.
bool parseSolverCacheFlag(int argc, char** argv, int& i, size_t& entries) {
  if (std::strncmp(argv[i], "--solver-cache=", 15) == 0) {
    entries = static_cast<size_t>(std::strtoull(argv[i] + 15, nullptr, 10));
  } else if (std::strcmp(argv[i], "--solver-cache") == 0) {
    if (i + 1 >= argc) throw Error("missing value for --solver-cache");
    entries = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
  } else {
    return false;
  }
  return true;
}

/// Parses `--plan MODE` / `--plan=MODE` (MODE: on|off|explain; the
/// cost-based join planner, DESIGN.md §11) at argv[i], advancing i past
/// any separate value; returns false when argv[i] is not the plan flag.
bool parsePlanFlag(int argc, char** argv, int& i,
                   std::optional<fl::PlanMode>& plan) {
  const char* value = nullptr;
  if (std::strncmp(argv[i], "--plan=", 7) == 0) {
    value = argv[i] + 7;
  } else if (std::strcmp(argv[i], "--plan") == 0) {
    if (i + 1 >= argc) throw Error("missing value for --plan");
    value = argv[++i];
  } else {
    return false;
  }
  if (std::strcmp(value, "off") == 0) {
    plan = fl::PlanMode::Off;
  } else if (std::strcmp(value, "on") == 0) {
    plan = fl::PlanMode::On;
  } else if (std::strcmp(value, "explain") == 0) {
    plan = fl::PlanMode::Explain;
  } else {
    throw Error("--plan expects on, off or explain");
  }
  return true;
}

const char* planModeName(fl::PlanMode m) {
  switch (m) {
    case fl::PlanMode::Off:
      return "off";
    case fl::PlanMode::Explain:
      return "explain";
    case fl::PlanMode::On:
      break;
  }
  return "on";
}

/// Parses one fault-tolerance flag at argv[i] (advancing i past its
/// value); returns false when argv[i] is not a supervision flag. `sup`
/// starts from SupervisionOptions::fromEnv(), so flags override the
/// FAURE_* environment defaults.
bool parseSupervisionFlag(int argc, char** argv, int& i,
                          smt::SupervisionOptions& sup) {
  auto need = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) {
      throw Error(std::string("missing value for ") + flag);
    }
    return argv[++i];
  };
  if (std::strcmp(argv[i], "--retries") == 0) {
    sup.maxRetries =
        static_cast<int>(std::strtol(need("--retries"), nullptr, 10));
    sup.enabled = true;
  } else if (std::strcmp(argv[i], "--solver-timeout-ms") == 0) {
    sup.watchdogMs = std::strtod(need("--solver-timeout-ms"), nullptr);
    sup.enabled = true;
  } else if (std::strcmp(argv[i], "--failover") == 0) {
    sup.failover = true;
    sup.enabled = true;
  } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
    uint64_t seed = std::strtoull(need("--chaos-seed"), nullptr, 10);
    if (seed == 0) {
      sup.chaos = nullptr;
    } else {
      sup.chaos = util::FaultPlan::defaultChaos(seed);
      sup.seed = seed;
      // The default plan faults only the primary backend; the native
      // last resort keeps chaos runs output-transparent.
      sup.failover = true;
      sup.enabled = true;
    }
  } else {
    return false;
  }
  return true;
}

/// Wraps `solver` in a SupervisedSolver when supervision is enabled
/// (the wrapper adopts the solver's verdict cache).
void superviseSolver(std::unique_ptr<smt::SolverBase>& solver,
                     const char* name, const rel::Database& db,
                     const smt::SupervisionOptions& sup) {
  if (!sup.enabled) return;
  auto wrapped = std::make_unique<smt::SupervisedSolver>(db.cvars(), sup);
  wrapped->addBackend(name, std::move(solver));
  if (sup.failover) wrapped->addNativeFallback();
  solver = std::move(wrapped);
}

/// Supervision entries for the run report / --stats.
void addSupervisionMeta(obs::ReportMeta& meta,
                        const smt::SupervisionOptions& sup) {
  if (!sup.enabled) return;
  meta.add("supervision", "on");
  if (sup.chaos != nullptr) {
    meta.add("chaos_seed", std::to_string(sup.chaos->seed()));
  }
}

void printSuperviseStats(const obs::MetricsSnapshot& snap) {
  std::printf(
      "supervise: %llu retries, %llu failovers, %llu breaker-open, "
      "%llu quarantined, %llu watchdog-trips, %llu faults-injected\n",
      static_cast<unsigned long long>(
          snap.counter("solver.supervise.retries")),
      static_cast<unsigned long long>(
          snap.counter("solver.supervise.failovers")),
      static_cast<unsigned long long>(
          snap.counter("solver.supervise.breaker_open")),
      static_cast<unsigned long long>(
          snap.counter("solver.supervise.quarantined")),
      static_cast<unsigned long long>(
          snap.counter("solver.supervise.watchdog_trips")),
      static_cast<unsigned long long>(
          snap.counter("solver.supervise.faults_injected")));
}

/// Observability flags shared by run and check.
struct ObsFlags {
  bool stats = false;
  bool trace = false;
  const char* traceFile = nullptr;  // null: human tree on stderr
  bool metrics = false;
  const char* metricsFile = nullptr;  // null: report on stdout

  bool any() const { return stats || trace || metrics; }
  /// Bare --metrics owns stdout: normal output is suppressed so the
  /// stream is a single parseable JSON document.
  bool quietStdout() const { return metrics && metricsFile == nullptr; }
};

bool parseObsFlag(const char* arg, ObsFlags& obs) {
  if (std::strcmp(arg, "--stats") == 0) {
    obs.stats = true;
  } else if (std::strcmp(arg, "--trace") == 0) {
    obs.trace = true;
  } else if (std::strncmp(arg, "--trace=", 8) == 0) {
    obs.trace = true;
    obs.traceFile = arg + 8;
  } else if (std::strcmp(arg, "--metrics") == 0) {
    obs.metrics = true;
  } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
    obs.metrics = true;
    obs.metricsFile = arg + 10;
  } else {
    return false;
  }
  return true;
}

/// One tracer per invocation when any observability output is requested
/// (--stats reads its numbers back from the registry).
std::unique_ptr<obs::Tracer> makeTracer(const ObsFlags& flags) {
  if (!flags.any()) return nullptr;
  obs::TracerOptions topts;
  const char* fine = std::getenv("FAURE_TRACE_FINE");
  topts.fineSpans = fine != nullptr && *fine != '\0' && *fine != '0';
  return std::make_unique<obs::Tracer>(topts);
}

void writeFileOrThrow(const char* path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw Error(std::string("cannot write '") + path + "'");
  out << text;
}

/// Emits the requested --trace / --metrics artifacts. Called after the
/// top-level span is closed so the exported tree is complete.
void exportObs(const obs::Tracer& tracer, const ObsFlags& flags,
               const obs::ReportMeta& meta) {
  if (flags.trace) {
    if (flags.traceFile != nullptr) {
      writeFileOrThrow(flags.traceFile, tracer.chromeTrace());
    } else {
      std::fputs(tracer.dumpTree().c_str(), stderr);
    }
  }
  if (flags.metrics) {
    std::string report = obs::runReportJson(tracer, meta);
    if (flags.metricsFile != nullptr) {
      writeFileOrThrow(flags.metricsFile, report);
    } else {
      std::printf("%s\n", report.c_str());
    }
  }
}

/// `--stats` output, sourced from the metrics registry (the canonical
/// store; the line format predates it and is kept stable for scripts).
void printSolverStats(const obs::MetricsSnapshot& snap) {
  std::printf(
      "solver: %llu checks, %llu unsat, %llu unknown, "
      "%llu budget-trips, %llu enumerations, %.3fs\n",
      static_cast<unsigned long long>(snap.counter("solver.checks")),
      static_cast<unsigned long long>(snap.counter("solver.unsat")),
      static_cast<unsigned long long>(snap.counter("solver.unknown")),
      static_cast<unsigned long long>(snap.counter("solver.budget_trips")),
      static_cast<unsigned long long>(snap.counter("solver.enumerations")),
      snap.histogram("solver.check_seconds").sum);
}

void printEvalStats(const obs::MetricsSnapshot& snap) {
  std::printf(
      "stats: %llu derivations, %llu inserted, %llu pruned-unsat, "
      "%llu subsumed, %zu rounds, %llu budget-trips, sql %.3fs, "
      "solver %.3fs (%llu checks)\n",
      static_cast<unsigned long long>(snap.counter("eval.derivations")),
      static_cast<unsigned long long>(snap.counter("eval.inserted")),
      static_cast<unsigned long long>(snap.counter("eval.pruned_unsat")),
      static_cast<unsigned long long>(snap.counter("eval.subsumed")),
      static_cast<size_t>(snap.counter("eval.rounds")),
      static_cast<unsigned long long>(snap.counter("eval.budget_trips")),
      snap.histogram("eval.sql_seconds").sum,
      snap.histogram("eval.solver_seconds").sum,
      static_cast<unsigned long long>(snap.counter("solver.checks")));
}

std::unique_ptr<smt::SolverBase> makeSolver(const rel::Database& db,
                                            const char* which) {
  if (std::strcmp(which, "z3") == 0) {
    auto z3 = smt::makeZ3Solver(db.cvars());
    if (z3 == nullptr) throw Error("this build has no Z3 backend");
    return z3;
  }
  if (std::strcmp(which, "native") != 0) {
    throw Error(std::string("unknown solver '") + which + "'");
  }
  return std::make_unique<smt::NativeSolver>(db.cvars());
}

int cmdRun(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* relation = nullptr;
  const char* solverName = "native";
  const char* dbOut = nullptr;
  bool simplify = false;
  std::optional<unsigned> threads;
  std::optional<fl::PlanMode> plan;
  size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
  ObsFlags obsFlags;
  ResourceLimits limits = ResourceLimits::fromEnv();
  smt::SupervisionOptions sup = smt::SupervisionOptions::fromEnv();
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relation") == 0 && i + 1 < argc) {
      relation = argv[++i];
    } else if (std::strcmp(argv[i], "--simplify") == 0) {
      simplify = true;
    } else if (std::strcmp(argv[i], "--solver") == 0 && i + 1 < argc) {
      solverName = argv[++i];
    } else if (std::strcmp(argv[i], "--db-out") == 0 && i + 1 < argc) {
      dbOut = argv[++i];
    } else if (parseThreadsFlag(argc, argv, i, threads)) {
      continue;
    } else if (parsePlanFlag(argc, argv, i, plan)) {
      continue;
    } else if (parseSolverCacheFlag(argc, argv, i, cacheEntries)) {
      continue;
    } else if (parseObsFlag(argv[i], obsFlags)) {
      continue;
    } else if (parseBudgetFlag(argc, argv, i, limits)) {
      continue;
    } else if (parseSupervisionFlag(argc, argv, i, sup)) {
      continue;
    } else {
      return usage();
    }
  }
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  dl::Program program = dl::parseProgram(readFile(argv[1]), db.cvars());
  auto solver = makeSolver(db, solverName);
  std::unique_ptr<smt::VerdictCache> cache;
  if (cacheEntries > 0) {
    cache = std::make_unique<smt::VerdictCache>(db.cvars(), cacheEntries);
    solver->setVerdictCache(cache.get());
  }
  superviseSolver(solver, solverName, db, sup);
  std::unique_ptr<obs::Tracer> tracer = makeTracer(obsFlags);
  ResourceGuard guard(limits);
  fl::EvalOptions opts;
  opts.simplifyResults = simplify;
  opts.threads = threads;
  opts.plan = plan;
  opts.tracer = tracer.get();
  if (guard.active()) {
    opts.guard = &guard;
    solver->setGuard(&guard);
    if (tracer != nullptr) {
      guard.onTrip([&tracer](Budget, const std::string& reason) {
        tracer->event("budget.trip", reason);
      });
    }
  }
  fl::EvalResult res;
  {
    obs::Span top(tracer.get(), "run");
    if (top) {
      top.note("database", argv[0]);
      top.note("program", argv[1]);
    }
    res = fl::evalFaure(program, db, solver.get(), opts);
  }
  for (const auto& [pred, table] : res.idb) {
    if (obsFlags.quietStdout()) break;
    if (relation != nullptr && pred != relation) continue;
    std::printf("%s\n", table.toString(&db.cvars()).c_str());
  }
  if (dbOut != nullptr) {
    // Write the input state plus every derived relation: later `faure`
    // invocations can query the results (the q6/q7 nesting pattern).
    for (auto& [pred, table] : res.idb) db.put(std::move(table));
    std::ofstream out(dbOut);
    if (!out) throw Error(std::string("cannot write '") + dbOut + "'");
    out << fl::formatDatabase(db);
  }
  if (obsFlags.stats && !obsFlags.quietStdout()) {
    obs::MetricsSnapshot snap = tracer->metrics().snapshot();
    printEvalStats(snap);
    printSolverStats(snap);
    if (sup.enabled) printSuperviseStats(snap);
  }
  if (tracer != nullptr) {
    obs::ReportMeta meta;
    meta.command = "run";
    meta.add("database", argv[0]);
    meta.add("program", argv[1]);
    meta.add("solver", solverName);
    meta.add("threads", std::to_string(fl::resolveThreads(opts)));
    meta.add("plan", planModeName(fl::resolvePlanMode(opts.plan)));
    addSupervisionMeta(meta, sup);
    if (res.incomplete) meta.add("incomplete", res.degradeReason);
    exportObs(*tracer, obsFlags, meta);
  }
  if (res.incomplete) {
    std::fprintf(stderr,
                 "incomplete: %s — results above are the tuples derived "
                 "before the budget tripped\n",
                 res.degradeReason.c_str());
    return 2;
  }
  return 0;
}

void printIncStats(const fl::IncStats& inc) {
  std::printf(
      "incremental: %llu epochs (%llu full), %llu refired rules, "
      "%llu skipped rules, %llu reused strata, %llu dirty strata, "
      "+%llu/-%llu edits\n",
      static_cast<unsigned long long>(inc.epochs),
      static_cast<unsigned long long>(inc.fullRecomputes),
      static_cast<unsigned long long>(inc.refiredRules),
      static_cast<unsigned long long>(inc.skippedRules),
      static_cast<unsigned long long>(inc.reusedStrata),
      static_cast<unsigned long long>(inc.dirtyStrata),
      static_cast<unsigned long long>(inc.deltaInserts),
      static_cast<unsigned long long>(inc.deltaRetracts));
}

int cmdWhatifBatch(int argc, char** argv);

int cmdWhatif(int argc, char** argv) {
  // `--scenarios FILE` anywhere switches to batch mode: no positional
  // edit script, one scenario per `---`-delimited block of FILE.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenarios") == 0 ||
        std::strncmp(argv[i], "--scenarios=", 12) == 0) {
      return cmdWhatifBatch(argc, argv);
    }
  }
  if (argc < 3) return usage();
  const char* relation = nullptr;
  const char* solverName = "native";
  std::optional<unsigned> threads;
  std::optional<fl::PlanMode> plan;
  size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
  ObsFlags obsFlags;
  ResourceLimits limits = ResourceLimits::fromEnv();
  smt::SupervisionOptions sup = smt::SupervisionOptions::fromEnv();
  int mode = -1;  // -1: FAURE_INCREMENTAL env; 0: oracle; 1: incremental
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relation") == 0 && i + 1 < argc) {
      relation = argv[++i];
    } else if (std::strcmp(argv[i], "--solver") == 0 && i + 1 < argc) {
      solverName = argv[++i];
    } else if (std::strcmp(argv[i], "--incremental") == 0) {
      mode = 1;
    } else if (std::strcmp(argv[i], "--full-recompute") == 0) {
      mode = 0;
    } else if (parseThreadsFlag(argc, argv, i, threads)) {
      continue;
    } else if (parsePlanFlag(argc, argv, i, plan)) {
      continue;
    } else if (parseSolverCacheFlag(argc, argv, i, cacheEntries)) {
      continue;
    } else if (parseObsFlag(argv[i], obsFlags)) {
      continue;
    } else if (parseBudgetFlag(argc, argv, i, limits)) {
      continue;
    } else if (parseSupervisionFlag(argc, argv, i, sup)) {
      continue;
    } else {
      return usage();
    }
  }
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  dl::Program program = dl::parseProgram(readFile(argv[1]), db.cvars());
  std::vector<fl::Edit> edits = fl::parseEditScript(readFile(argv[2]), db);
  auto solver = makeSolver(db, solverName);
  std::unique_ptr<smt::VerdictCache> cache;
  if (cacheEntries > 0) {
    cache = std::make_unique<smt::VerdictCache>(db.cvars(), cacheEntries);
    solver->setVerdictCache(cache.get());
  }
  superviseSolver(solver, solverName, db, sup);
  std::unique_ptr<obs::Tracer> tracer = makeTracer(obsFlags);
  ResourceGuard guard(limits);
  fl::EvalOptions opts;
  opts.threads = threads;
  opts.plan = plan;
  opts.tracer = tracer.get();
  if (guard.active()) {
    opts.guard = &guard;
    solver->setGuard(&guard);
    if (tracer != nullptr) {
      guard.onTrip([&tracer](Budget, const std::string& reason) {
        tracer->event("budget.trip", reason);
      });
    }
  }
  fl::IncrementalEngine eng(std::move(program), db, solver.get(), opts);
  if (mode >= 0) eng.setIncremental(mode == 1);

  auto printEpoch = [&](const fl::EvalResult& res) {
    for (const auto& [pred, table] : res.idb) {
      if (obsFlags.quietStdout()) break;
      if (relation != nullptr && pred != relation) continue;
      std::printf("%s\n", table.toString(&db.cvars()).c_str());
    }
  };

  int exitCode = 0;
  size_t epochsRun = 0;
  std::string degradeReason;
  {
    obs::Span top(tracer.get(), "whatif");
    if (top) {
      top.note("database", argv[0]);
      top.note("program", argv[1]);
      top.note("edits", argv[2]);
    }
    if (!obsFlags.quietStdout()) std::printf("== epoch 0: initial ==\n");
    // Budgets are per epoch: every reevaluation gets the full allowance,
    // like one Session operation.
    if (guard.active()) guard.rearm();
    fl::EvalResult res = eng.reevaluate();
    ++epochsRun;
    printEpoch(res);
    if (res.incomplete) {
      exitCode = 2;
      degradeReason = res.degradeReason;
    }
    for (size_t e = 0; exitCode == 0 && e < edits.size(); ++e) {
      eng.apply(edits[e]);
      if (!obsFlags.quietStdout()) {
        std::printf("== epoch %zu: %s ==\n", e + 1,
                    fl::formatEdit(edits[e], db.cvars()).c_str());
      }
      if (guard.active()) guard.rearm();
      res = eng.reevaluate();
      ++epochsRun;
      printEpoch(res);
      if (res.incomplete) {
        exitCode = 2;
        degradeReason = res.degradeReason;
      }
    }
  }
  if (obsFlags.stats && !obsFlags.quietStdout()) {
    obs::MetricsSnapshot snap = tracer->metrics().snapshot();
    printEvalStats(snap);
    printSolverStats(snap);
    printIncStats(eng.stats());
    if (sup.enabled) printSuperviseStats(snap);
  }
  if (tracer != nullptr) {
    obs::ReportMeta meta;
    meta.command = "whatif";
    meta.add("database", argv[0]);
    meta.add("program", argv[1]);
    meta.add("edits", argv[2]);
    meta.add("solver", solverName);
    meta.add("threads", std::to_string(fl::resolveThreads(opts)));
    meta.add("plan", planModeName(fl::resolvePlanMode(opts.plan)));
    meta.add("incremental", eng.incremental() ? "on" : "off");
    meta.add("epochs", std::to_string(epochsRun));
    addSupervisionMeta(meta, sup);
    if (exitCode == 2) meta.add("incomplete", degradeReason);
    exportObs(*tracer, obsFlags, meta);
  }
  if (exitCode == 2) {
    std::fprintf(stderr,
                 "incomplete: %s — the epoch above holds only the tuples "
                 "derived before the budget tripped; later edits were not "
                 "replayed\n",
                 degradeReason.c_str());
  }
  return exitCode;
}

/// Flags shared by `whatif --scenarios` and `serve` (the scenario
/// engine takes the same knobs as single-scenario whatif).
struct ScenarioCliFlags {
  const char* relation = nullptr;
  const char* solverName = "native";
  std::optional<unsigned> threads;
  std::optional<fl::PlanMode> plan;
  size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
  ObsFlags obs;
  ResourceLimits limits = ResourceLimits::fromEnv();
  smt::SupervisionOptions sup = smt::SupervisionOptions::fromEnv();
  int mode = -1;  // -1: FAURE_INCREMENTAL env; 0: oracle; 1: incremental
};

bool parseScenarioCommonFlag(int argc, char** argv, int& i,
                             ScenarioCliFlags& f) {
  if (std::strcmp(argv[i], "--relation") == 0 && i + 1 < argc) {
    f.relation = argv[++i];
  } else if (std::strcmp(argv[i], "--solver") == 0 && i + 1 < argc) {
    f.solverName = argv[++i];
  } else if (std::strcmp(argv[i], "--incremental") == 0) {
    f.mode = 1;
  } else if (std::strcmp(argv[i], "--full-recompute") == 0) {
    f.mode = 0;
  } else if (parseThreadsFlag(argc, argv, i, f.threads)) {
  } else if (parsePlanFlag(argc, argv, i, f.plan)) {
  } else if (parseSolverCacheFlag(argc, argv, i, f.cacheEntries)) {
  } else if (parseObsFlag(argv[i], f.obs)) {
  } else if (parseBudgetFlag(argc, argv, i, f.limits)) {
  } else if (parseSupervisionFlag(argc, argv, i, f.sup)) {
  } else {
    return false;
  }
  return true;
}

fl::ScenarioSetOptions buildScenarioOptions(const ScenarioCliFlags& f,
                                            obs::Tracer* tracer) {
  fl::ScenarioSetOptions sopts;
  sopts.eval.threads = f.threads;  // reinterpreted as the fan-out width
  sopts.eval.plan = f.plan;
  sopts.eval.tracer = tracer;
  sopts.limits = f.limits;
  sopts.supervision = f.sup;
  sopts.mode = f.mode;
  if (f.relation != nullptr) sopts.relation = f.relation;
  sopts.cacheEntries = f.cacheEntries;
  sopts.solverName = f.solverName;
  return sopts;
}

void printServeStats(const obs::MetricsSnapshot& snap) {
  std::printf(
      "serve: %llu scenarios, %llu epochs, %llu degraded, %llu errors\n",
      static_cast<unsigned long long>(snap.counter("serve.scenarios")),
      static_cast<unsigned long long>(snap.counter("serve.epochs")),
      static_cast<unsigned long long>(snap.counter("serve.degraded")),
      static_cast<unsigned long long>(snap.counter("serve.errors")));
}

/// `faure whatif <db> <prog> --scenarios FILE`: batch front end over
/// fl::ScenarioSet. Exit code aggregates the per-scenario contract:
/// 1 if any scenario hard-errored, else 2 if any degraded, else 0.
int cmdWhatifBatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* scenariosFile = nullptr;
  ScenarioCliFlags flags;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      scenariosFile = argv[++i];
    } else if (std::strncmp(argv[i], "--scenarios=", 12) == 0) {
      scenariosFile = argv[i] + 12;
    } else if (parseScenarioCommonFlag(argc, argv, i, flags)) {
      continue;
    } else {
      return usage();
    }
  }
  if (scenariosFile == nullptr) return usage();
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  dl::Program program = dl::parseProgram(readFile(argv[1]), db.cvars());
  std::vector<fl::Scenario> scenarios =
      fl::parseScenarioFile(readFile(scenariosFile));
  std::unique_ptr<obs::Tracer> tracer = makeTracer(flags.obs);
  fl::ScenarioSet set(std::move(program), std::move(db),
                      buildScenarioOptions(flags, tracer.get()));
  std::vector<fl::ScenarioOutcome> results;
  {
    obs::Span top(tracer.get(), "whatif.batch");
    if (top) {
      top.note("database", argv[0]);
      top.note("program", argv[1]);
      top.note("scenarios", scenariosFile);
    }
    results = set.evaluate(scenarios);
  }
  int exitCode = 0;
  for (const fl::ScenarioOutcome& r : results) {
    if (!flags.obs.quietStdout()) {
      std::printf("=== scenario %s: exit %d ===\n", r.id.c_str(),
                  r.exitCode);
      std::fwrite(r.output.data(), 1, r.output.size(), stdout);
    }
    if (!r.message.empty()) {
      std::fprintf(stderr, "scenario %s: %s\n", r.id.c_str(),
                   r.message.c_str());
    }
    if (r.exitCode == 1) {
      exitCode = 1;
    } else if (r.exitCode == 2 && exitCode == 0) {
      exitCode = 2;
    }
  }
  if (flags.obs.stats && !flags.obs.quietStdout()) {
    obs::MetricsSnapshot snap = tracer->metrics().snapshot();
    printEvalStats(snap);
    printSolverStats(snap);
    printServeStats(snap);
    if (flags.sup.enabled) printSuperviseStats(snap);
  }
  if (tracer != nullptr) {
    fl::EvalOptions fanout;
    fanout.threads = flags.threads;
    obs::ReportMeta meta;
    meta.command = "whatif";
    meta.add("database", argv[0]);
    meta.add("program", argv[1]);
    meta.add("scenarios", scenariosFile);
    meta.add("scenario_count", std::to_string(results.size()));
    meta.add("solver", flags.solverName);
    meta.add("threads", std::to_string(fl::resolveThreads(fanout)));
    meta.add("plan", planModeName(fl::resolvePlanMode(flags.plan)));
    addSupervisionMeta(meta, flags.sup);
    exportObs(*tracer, flags.obs, meta);
  }
  return exitCode;
}

/// One client conversation over the serve line protocol (see the file
/// header). Returns true when the client asked for SHUTDOWN. Queued
/// requests are always drained before returning — graceful shutdown
/// never drops accepted work.
bool serveLoop(fl::ScenarioSet& set, FILE* in, FILE* out) {
  std::vector<fl::Scenario> queue;
  bool shutdown = false;
  auto flush = [&] {
    if (queue.empty()) return;
    std::vector<fl::ScenarioOutcome> results = set.evaluate(queue);
    for (const fl::ScenarioOutcome& r : results) {
      std::string reason = r.message;
      for (char& c : reason) {  // RESULT is line-framed
        if (c == '\n' || c == '\r') c = ' ';
      }
      std::fprintf(out, "RESULT %s %d %zu%s%s\n", r.id.c_str(), r.exitCode,
                   r.output.size(), reason.empty() ? "" : " ",
                   reason.c_str());
      std::fwrite(r.output.data(), 1, r.output.size(), out);
    }
    std::fflush(out);
    queue.clear();
  };
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len;
  while ((len = ::getline(&line, &cap, in)) != -1) {
    std::string_view cmd(line, static_cast<size_t>(len));
    while (!cmd.empty() && (cmd.back() == '\n' || cmd.back() == '\r')) {
      cmd.remove_suffix(1);
    }
    if (cmd.empty() || cmd == "GO") {
      flush();
    } else if (cmd == "PING") {
      std::fputs("PONG\n", out);
      std::fflush(out);
    } else if (cmd == "QUIT") {
      break;
    } else if (cmd == "SHUTDOWN") {
      shutdown = true;
      break;
    } else if (cmd.rfind("EVAL ", 0) == 0) {
      std::string_view rest = cmd.substr(5);
      size_t sp = rest.find(' ');
      std::string id(rest.substr(0, sp));
      std::string script(sp == std::string_view::npos
                             ? std::string_view()
                             : rest.substr(sp + 1));
      for (char& c : script) {  // `;` separates edits on the wire
        if (c == ';') c = '\n';
      }
      if (id.empty()) {
        std::fputs("ERR EVAL needs an id\n", out);
        std::fflush(out);
      } else {
        queue.push_back({std::move(id), std::move(script)});
      }
    } else {
      std::fprintf(out, "ERR unknown command: %.*s\n",
                   static_cast<int>(cmd.size()), cmd.data());
      std::fflush(out);
    }
  }
  std::free(line);
  flush();
  return shutdown;
}

/// Accept loop for `serve --socket PATH`: one client at a time (each
/// batch already fans out internally), until a client sends SHUTDOWN.
int serveOnSocket(fl::ScenarioSet& set, const char* path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(std::string("socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (std::strlen(path) >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw Error(std::string("--socket path too long: ") + path);
  }
  std::strncpy(addr.sun_path, path, sizeof(addr.sun_path) - 1);
  ::unlink(path);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("cannot listen on '" + std::string(path) + "': " + err);
  }
  // Handshake on stdout so scripts can wait for the socket to exist.
  std::printf("READY %s\n", path);
  std::fflush(stdout);
  bool shutdown = false;
  while (!shutdown) {
    int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;
    FILE* cin = ::fdopen(client, "r");
    FILE* cout = cin != nullptr ? ::fdopen(::dup(client), "w") : nullptr;
    if (cout == nullptr) {
      if (cin != nullptr) {
        std::fclose(cin);
      } else {
        ::close(client);
      }
      continue;
    }
    shutdown = serveLoop(set, cin, cout);
    std::fclose(cout);
    std::fclose(cin);
  }
  ::close(fd);
  ::unlink(path);
  return 0;
}

int cmdServe(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* socketPath = nullptr;
  ScenarioCliFlags flags;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socketPath = argv[++i];
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socketPath = argv[i] + 9;
    } else if (parseScenarioCommonFlag(argc, argv, i, flags)) {
      continue;
    } else {
      return usage();
    }
  }
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  dl::Program program = dl::parseProgram(readFile(argv[1]), db.cvars());
  std::unique_ptr<obs::Tracer> tracer = makeTracer(flags.obs);
  fl::ScenarioSet set(std::move(program), std::move(db),
                      buildScenarioOptions(flags, tracer.get()));
  // Front-load the shared epoch 0 so the first request pays only its
  // own marginal cost.
  set.prepare();
  if (socketPath != nullptr) return serveOnSocket(set, socketPath);
  std::printf("READY\n");
  std::fflush(stdout);
  serveLoop(set, stdin, stdout);
  return 0;
}

int cmdCheck(int argc, char** argv) {
  if (argc < 2) return usage();
  ObsFlags obsFlags;
  size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
  ResourceLimits limits = ResourceLimits::fromEnv();
  smt::SupervisionOptions sup = smt::SupervisionOptions::fromEnv();
  for (int i = 2; i < argc; ++i) {
    if (parseObsFlag(argv[i], obsFlags)) {
      continue;
    } else if (parseSolverCacheFlag(argc, argv, i, cacheEntries)) {
      continue;
    } else if (parseBudgetFlag(argc, argv, i, limits)) {
      continue;
    } else if (parseSupervisionFlag(argc, argv, i, sup)) {
      continue;
    } else {
      return usage();
    }
  }
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  verify::Constraint c =
      verify::Constraint::parse("constraint", readFile(argv[1]), db.cvars());
  std::unique_ptr<smt::SolverBase> solver =
      std::make_unique<smt::NativeSolver>(db.cvars());
  std::unique_ptr<smt::VerdictCache> cache;
  if (cacheEntries > 0) {
    cache = std::make_unique<smt::VerdictCache>(db.cvars(), cacheEntries);
    solver->setVerdictCache(cache.get());
  }
  superviseSolver(solver, "native", db, sup);
  std::unique_ptr<obs::Tracer> tracer = makeTracer(obsFlags);
  solver->setTracer(tracer.get());
  ResourceGuard guard(limits);
  if (guard.active()) {
    solver->setGuard(&guard);
    if (tracer != nullptr) {
      guard.onTrip([&tracer](Budget, const std::string& reason) {
        tracer->event("budget.trip", reason);
      });
    }
  }
  verify::StateCheck check;
  {
    obs::Span top(tracer.get(), "check");
    if (top) {
      top.note("database", argv[0]);
      top.note("constraint", argv[1]);
    }
    check = verify::RelativeVerifier::checkOnState(c, db, *solver);
  }
  if (!obsFlags.quietStdout()) {
    std::printf("verdict: %s\n",
                std::string(verify::verdictText(check.verdict)).c_str());
    if (check.verdict == verify::Verdict::ConditionallyViolated) {
      std::printf("violated exactly when: %s\n",
                  check.condition.toString(&db.cvars()).c_str());
    }
    if (check.incomplete) {
      std::printf("reason: %s (budget tripped; rerun with more resources)\n",
                  check.reason.c_str());
    }
    if (obsFlags.stats) {
      obs::MetricsSnapshot snap = tracer->metrics().snapshot();
      printSolverStats(snap);
      if (sup.enabled) printSuperviseStats(snap);
    }
  }
  if (tracer != nullptr) {
    obs::ReportMeta meta;
    meta.command = "check";
    meta.add("database", argv[0]);
    meta.add("constraint", argv[1]);
    meta.add("verdict", std::string(verify::verdictText(check.verdict)));
    addSupervisionMeta(meta, sup);
    if (check.incomplete) meta.add("incomplete", check.reason);
    exportObs(*tracer, obsFlags, meta);
  }
  // Exit-code contract (see the file header): any *definite* verdict —
  // holds, violated, conditionally-violated — is a successful analysis
  // and exits 0; unknown means "rerun with more resources" and exits 2.
  return check.verdict == verify::Verdict::Unknown ? 2 : 0;
}

int cmdWorlds(int argc, char** argv) {
  if (argc < 1 || argc > 2) return usage();
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  uint64_t cap = argc == 2 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  size_t count = 0;
  bool ok = rel::forEachWorld(
      db, cap, [&](const smt::Assignment& a, const rel::World& world) {
        std::printf("---- world %zu ----\n", count++);
        for (const auto& [var, val] : a) {
          std::printf("  %s = %s\n", db.cvars().info(var).name.c_str(),
                      val.toString(&db.cvars()).c_str());
        }
        for (const auto& [name, rows] : world) {
          for (const auto& row : rows) {
            std::printf("  %s(", name.c_str());
            for (size_t i = 0; i < row.size(); ++i) {
              std::printf("%s%s", i > 0 ? ", " : "",
                          row[i].toString(&db.cvars()).c_str());
            }
            std::printf(")\n");
          }
        }
      });
  if (!ok) {
    std::fprintf(stderr,
                 "world space not enumerable (unbounded domain or more "
                 "than %llu worlds)\n",
                 static_cast<unsigned long long>(cap));
    return 1;
  }
  std::printf("%zu possible worlds\n", count);
  return 0;
}

int cmdFmt(int argc, char** argv) {
  if (argc != 1) return usage();
  rel::Database db = fl::parseDatabase(readFile(argv[0]));
  std::printf("%s", fl::formatDatabase(db).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "run") == 0) return cmdRun(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "whatif") == 0) {
      return cmdWhatif(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "serve") == 0) {
      return cmdServe(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "check") == 0) {
      return cmdCheck(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "worlds") == 0) {
      return cmdWorlds(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "fmt") == 0) return cmdFmt(argc - 2, argv + 2);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "faure: %s\n", e.what());
    return 1;
  }
}
