#!/usr/bin/env python3
"""Bench-regression gate over a bench-harness run report.

Two report families are understood (--family):

  table4       BENCH_table4.json from bench/table4_reachability:
               `table4[N].wall_seconds` plus `threads[T].` / `nocache.`
               variants, gated against bench/baseline_table4.json.
  incremental  BENCH_incremental.json from bench/whatif_incremental:
               `incremental[N].wall_seconds` (the full-recompute
               oracle) plus the `inc.` variant (delta propagation on),
               gated against bench/baseline_incremental.json.
  join         BENCH_join.json from bench/join_planner:
               `join[N].wall_seconds` (cost-based planning on) plus the
               `noplan.` variant (pristine program-order joins), gated
               against bench/baseline_join.json. A planner regression
               shows up directly; a noplan-relative regression means
               the speedup collapsed.

Compares the fresh report against the committed baseline and fails
when any measured wall time regressed beyond the tolerance. Because absolute seconds are
machine-dependent (CI runners differ run to run, let alone from the
box that recorded the baseline), times are *calibrated* first: the
serial wall of the smallest common size is taken as the machine's speed
unit, every comparison is done on times rescaled by that unit, and the
calibration entry itself is exempt. A genuine O(...) regression moves
the rescaled ratio no matter how fast the runner is; a uniformly
slower runner moves nothing.

    bench_check.py --current BENCH_table4.json \
        --baseline bench/baseline_table4.json \
        [--family table4] [--tolerance 0.30] [--diff-out diff.json] \
        [--update] [--allow-missing]

Exit status: 0 when every entry is within tolerance (improvements are
reported, never fatal), 1 on regression or missing entries. --update
rewrites the baseline from the current report instead of comparing
(commit the result deliberately). --allow-missing downgrades baseline
entries absent from the current report to a warning — for CI legs that
deliberately run a reduced matrix (e.g. the chaos job skips the
threaded repeats). Malformed inputs (absent files, non-JSON, a report
without the expected gauges) are diagnosed on stderr with a next-step
hint, never a traceback.
"""

import argparse
import json
import re
import sys


def fail(message, hint=None):
    """Diagnose a usage/input problem without a traceback."""
    print(f"bench_check: error: {message}", file=sys.stderr)
    if hint:
        print(f"bench_check: hint: {hint}", file=sys.stderr)
    sys.exit(1)


def load_json(path, role, family="table4"):
    """Reads a JSON file with friendly diagnostics for the two ways this
    goes wrong in CI: the file was never produced (harness crashed or the
    artifact was not downloaded) or it is not JSON (truncated upload)."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        hint = (
            f"run `{FAMILIES[family]['harness']}` to produce a report"
            if role == "current"
            else "regenerate it with `bench_check.py --update` and commit "
            "the result"
        )
        fail(f"{role} report not found: {path}", hint)
    except OSError as e:
        fail(f"cannot read {role} report {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        fail(
            f"{role} report {path} is not valid JSON "
            f"(line {e.lineno}: {e.msg})",
            "the file may be truncated; regenerate it",
        )

# Per-family report shape. `wall` parses gauge names into
# (size, threads, variant) keys: group 1 = size, group 2 = thread count
# (absent = 1), group 3 = the variant tag (table4's cache-off control /
# the incremental engine's delta-propagation run). The calibration
# entry is always the smallest un-tagged serial row — the full-recompute
# oracle for the incremental family.
FAMILIES = {
    "table4": {
        "wall": re.compile(
            r"^table4\[(\d+)\]\.(?:threads\[(\d+)\]\.|(nocache)\.)?"
            r"wall_seconds$"
        ),
        "variant": "nocache",
        "example": "table4[8].wall_seconds",
        "harness": "bench/table4_reachability",
    },
    "incremental": {
        "wall": re.compile(
            r"^incremental\[(\d+)\]\.(?:()(inc)\.)?wall_seconds$"
        ),
        "variant": "inc",
        "example": "incremental[80].wall_seconds",
        "harness": "bench/whatif_incremental",
    },
    "join": {
        "wall": re.compile(r"^join\[(\d+)\]\.(?:()(noplan)\.)?wall_seconds$"),
        "variant": "noplan",
        "example": "join[600].wall_seconds",
        "harness": "bench/join_planner",
    },
    "scenario": {
        "wall": re.compile(
            r"^scenario\[(\d+)\]\.(?:()(batch)\.)?wall_seconds$"
        ),
        "variant": "batch",
        "example": "scenario[8].wall_seconds",
        "harness": "bench/scenario_batch",
    },
}


def extract(report_path, family):
    """-> {(size, threads, variant): wall_seconds} from a run report.

    table4 records one serial row per size (solver verdict cache on),
    the threaded repeats, and one `nocache.` serial control; the
    incremental family records the full-recompute oracle wall and the
    `inc.` delta-propagation wall per size.
    """
    spec = FAMILIES[family]
    report = load_json(report_path, "current", family)
    walls = {}
    for name, value in report.get("metrics", {}).get("gauges", {}).items():
        m = spec["wall"].match(name)
        if m:
            size = int(m.group(1))
            threads = int(m.group(2)) if m.group(2) else 1
            variant = m.group(3) is not None
            walls[(size, threads, variant)] = float(value)
    if not walls:
        fail(
            f"no {family}[...].wall_seconds gauges in {report_path}",
            f"is this really a {family} harness report? expected "
            f"metrics.gauges keys like `{spec['example']}`",
        )
    return walls


def key_str(key, variant_label):
    size, threads, variant = key
    return f"size={size} threads={threads}" + (
        f" {variant_label}" if variant else ""
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--family",
        choices=sorted(FAMILIES),
        default="table4",
        help="which harness report shape to gate (default: table4)",
    )
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--diff-out", help="write a JSON comparison artifact")
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from --current instead of comparing",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="warn (instead of fail) when baseline entries are absent "
        "from the current report",
    )
    opts = parser.parse_args()

    variant = FAMILIES[opts.family]["variant"]
    current = extract(opts.current, opts.family)
    if opts.update:
        payload = {
            "comment": "regenerate with: bench_check.py --update "
            "(committed values are calibrated, not absolute; see tool doc)",
            "family": opts.family,
            "walls": {
                key_str(k, variant): v for k, v in sorted(current.items())
            },
        }
        with open(opts.baseline, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"baseline rewritten: {opts.baseline} ({len(current)} entries)")
        return 0

    baseline_doc = load_json(opts.baseline, "baseline")
    if "walls" not in baseline_doc:
        fail(
            f"baseline {opts.baseline} has no `walls` object",
            "regenerate it with `bench_check.py --update`",
        )
    if baseline_doc.get("family", "table4") != opts.family:
        fail(
            f"baseline {opts.baseline} was recorded for family "
            f"{baseline_doc.get('family', 'table4')!r}, not {opts.family!r}",
            "point --baseline at the matching file or re-record it with "
            "`bench_check.py --update --family " + opts.family + "`",
        )
    baseline = {}
    for text, value in baseline_doc["walls"].items():
        m = re.match(rf"size=(\d+) threads=(\d+)( {variant})?$", text)
        if m is None:
            fail(
                f"baseline {opts.baseline} has an unparseable entry key: "
                f"{text!r}",
                "expected keys like `size=8 threads=2`; regenerate with "
                "`bench_check.py --update`",
            )
        key = (int(m.group(1)), int(m.group(2)), m.group(3) is not None)
        baseline[key] = float(value)

    common = sorted(set(current) & set(baseline))
    missing = sorted(set(baseline) - set(current))
    if not common:
        fail(
            "no overlapping (size, threads) entries to compare",
            "the current report and the baseline measure disjoint "
            "configurations; re-record the baseline or fix the harness "
            "invocation",
        )

    # Calibration unit: cached serial wall of the smallest common size.
    serial = [k for k in common if k[1] == 1 and not k[2]]
    if not serial:
        fail(
            "no common serial cached entry to calibrate against",
            "both reports need at least one `size=N threads=1` row "
            "(no nocache suffix)",
        )
    cal = min(serial)
    unit_now, unit_base = current[cal], baseline[cal]

    rows, regressions = [], []
    for key in common:
        ratio_now = current[key] / unit_now
        ratio_base = baseline[key] / unit_base
        drift = ratio_now / ratio_base - 1.0
        verdict = "calibration" if key == cal else (
            "REGRESSED" if drift > opts.tolerance else
            "improved" if drift < -opts.tolerance else "ok"
        )
        rows.append(
            {
                "entry": key_str(key, variant),
                "current_seconds": current[key],
                "baseline_seconds": baseline[key],
                "calibrated_drift": round(drift, 4),
                "verdict": verdict,
            }
        )
        if verdict == "REGRESSED":
            regressions.append(key)
        print(
            f"{key_str(key, variant):28s} {current[key]:9.4f}s vs "
            f"{baseline[key]:9.4f}s  drift {drift:+7.1%}  {verdict}"
        )
    for key in missing:
        tag = "missing (allowed)" if opts.allow_missing else "MISSING"
        print(f"{key_str(key, variant):28s} {tag} from current report")

    if opts.diff_out:
        with open(opts.diff_out, "w") as fh:
            json.dump(
                {
                    "schema": "faure.bench_diff/1",
                    "tolerance": opts.tolerance,
                    "calibration_entry": key_str(cal, variant),
                    "rows": rows,
                    "missing": [key_str(k, variant) for k in missing],
                },
                fh,
                indent=1,
            )
            fh.write("\n")

    fatal_missing = [] if opts.allow_missing else missing
    if regressions or fatal_missing:
        print(
            f"FAIL: {len(regressions)} regression(s), "
            f"{len(fatal_missing)} missing entr(ies) "
            f"(tolerance ±{opts.tolerance:.0%})",
            file=sys.stderr,
        )
        return 1
    skipped = f", {len(missing)} skipped" if missing else ""
    print(
        f"bench gate passed ({len(common)} entries{skipped}, "
        f"±{opts.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
