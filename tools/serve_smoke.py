#!/usr/bin/env python3
"""Smoke test for the scenario service front-ends (DESIGN.md §12).

Drives the two serve entry points end to end against the shipped
what-if fixtures and a batch `whatif --scenarios` run:

  1. batch    — `faure whatif --scenarios FILE`: every scenario frame
                must report exit 0 and carry a non-empty body.
  2. stdin    — `faure serve` line protocol over a pipe: READY
                handshake, PING/PONG, EVAL + GO round-trip with a
                byte-counted RESULT payload, graceful drain on QUIT.
  3. socket   — `faure serve --socket PATH`: same protocol over an
                AF_UNIX socket, then SHUTDOWN stops the server with
                exit 0 and unlinks the socket path.

Shared by the `serve` CI job and the serve stage of tools/ci.sh so the
workflow and the local script cannot drift. Exits non-zero with a
one-line reason on the first failed check.
"""

import argparse
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

FRAME = re.compile(rb"^=== scenario (\S+) exit (\d+) ===$")
RESULT = re.compile(rb"RESULT (\S+) (\d+) (\d+)(?: [^\n]*)?\n")


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_batch(faure, db, prog, scenarios):
    proc = subprocess.run(
        [faure, "whatif", db, prog, "--scenarios", scenarios],
        capture_output=True, timeout=600,
    )
    if proc.returncode != 0:
        fail(f"batch whatif exited {proc.returncode}: {proc.stderr[:200]!r}")
    frames = re.findall(
        rb"^=== scenario (\S+): exit (\d+) ===$", proc.stdout, re.M
    )
    if not frames:
        fail("batch whatif printed no scenario frames")
    for sid, code in frames:
        if code != b"0":
            fail(f"batch scenario {sid.decode()} reported exit {code.decode()}")
    print(f"serve_smoke: batch ok ({len(frames)} scenarios, all exit 0)")


def parse_result(buf, where):
    m = RESULT.match(buf)
    if not m:
        fail(f"{where}: expected a RESULT frame, got {buf[:80]!r}")
    sid, code, nbytes = m.group(1), int(m.group(2)), int(m.group(3))
    body = buf[m.end():m.end() + nbytes]
    if len(body) != nbytes:
        fail(f"{where}: RESULT payload truncated ({len(body)}/{nbytes})")
    return sid, code, body, buf[m.end() + nbytes:]


def check_stdin(faure, db, prog):
    script = "+Acl(web, 8443);-Acl(legacy, 23)"
    conversation = f"PING\nEVAL q1 {script}\nGO\nQUIT\n"
    proc = subprocess.run(
        [faure, "serve", db, prog],
        input=conversation.encode(), capture_output=True, timeout=600,
    )
    if proc.returncode != 0:
        fail(f"stdin serve exited {proc.returncode}: {proc.stderr[:200]!r}")
    out = proc.stdout
    for prefix in (b"READY\n", b"PONG\n"):
        if not out.startswith(prefix):
            fail(f"stdin serve: expected {prefix!r}, got {out[:40]!r}")
        out = out[len(prefix):]
    sid, code, body, out = parse_result(out, "stdin serve")
    if sid != b"q1" or code != 0 or not body:
        fail(f"stdin serve: bad RESULT (id={sid!r} exit={code} "
             f"{len(body)} bytes)")
    print(f"serve_smoke: stdin ok (RESULT q1 exit 0, {len(body)} bytes)")


def check_socket(faure, db, prog):
    path = os.path.join(tempfile.mkdtemp(prefix="faure_serve_"), "sock")
    server = subprocess.Popen(
        [faure, "serve", db, prog, "--socket", path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        ready = server.stdout.readline()
        if not ready.startswith(b"READY "):
            fail(f"socket serve: bad handshake {ready!r}")
        deadline = time.monotonic() + 30
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        while True:
            try:
                client.connect(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                if time.monotonic() > deadline:
                    fail("socket serve: socket never became connectable")
                time.sleep(0.05)
        client.sendall(b"PING\nEVAL s1 -F(f0, 2, 3)\nGO\nSHUTDOWN\n")
        buf = b""
        while True:
            chunk = client.recv(65536)
            if not chunk:
                break
            buf += chunk
        client.close()
        if not buf.startswith(b"PONG\n"):
            fail(f"socket serve: expected PONG, got {buf[:40]!r}")
        sid, code, body, _ = parse_result(buf[len(b"PONG\n"):], "socket serve")
        if sid != b"s1" or code != 0 or not body:
            fail(f"socket serve: bad RESULT (id={sid!r} exit={code} "
                 f"{len(body)} bytes)")
        if server.wait(timeout=30) != 0:
            fail(f"socket serve: server exited {server.returncode} "
                 f"after SHUTDOWN: {server.stderr.read()[:200]!r}")
        if os.path.exists(path):
            fail("socket serve: socket path not unlinked on shutdown")
        print(f"serve_smoke: socket ok (RESULT s1 exit 0, {len(body)} bytes, "
              "clean shutdown)")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--faure", default="build/tools/faure")
    ap.add_argument("db", nargs="?", default="data/whatif_net.fdb")
    ap.add_argument("prog", nargs="?", default="data/whatif_reach.fl")
    ap.add_argument("--scenarios", default="data/whatif_scenarios.fl")
    opts = ap.parse_args()
    check_batch(opts.faure, opts.db, opts.prog, opts.scenarios)
    check_stdin(opts.faure, opts.db, opts.prog)
    check_socket(opts.faure, opts.db, opts.prog)
    print("serve_smoke: all front-ends ok")


if __name__ == "__main__":
    main()
