#!/usr/bin/env python3
"""Byte-level determinism gate for the parallel fixpoint engine.

The parallel evaluator (DESIGN.md "Parallel execution") promises results
bit-identical to serial for every thread count. This script enforces the
promise end to end through the CLI: for each (database, program) pair it
runs

    faure run <db> <program> --stats          (plain output + counters)
    faure run <db> <program> --metrics        (machine-readable report)

once per requested FAURE_THREADS value and fails if

  * the plain stdout (tables, conditions, counter lines — wall-clock
    seconds on the stats lines are masked first) differs by a single
    byte from the serial run, or the exit code differs, or
  * the logical counters of the run report differ. Physical metrics are
    normalized away first: `eval.par.*` (pool-side telemetry that only
    exists in parallel runs), all gauges/histograms (timings), span
    trees and wall clocks. Everything logical — derivations, inserts,
    prunes, per-rule breakdowns, solver.* checks/unsat/enumerations —
    must match exactly.

Usage:
    determinism_check.py --faure build/tools/faure [--threads 1,2,8] \
        db1.fdb prog1.fl [db2.fdb prog2.fl ...]

Exit status: 0 when every pair is deterministic, 1 otherwise (with a
unified diff of the first divergence on stderr).
"""

import argparse
import difflib
import json
import os
import re
import subprocess
import sys

# Wall-clock fields on the `stats:` / `solver:` lines — the only
# legitimately thread-dependent bytes in `run --stats` output.
SECONDS = re.compile(r"\b(sql|solver|in) \d+\.\d+s|\b\d+\.\d+s\b")


def run_cli(faure, args, threads):
    env = dict(os.environ)
    env["FAURE_THREADS"] = str(threads)
    # Fault-injection knobs would make charge clocks (and thus trip
    # points) schedule-dependent; determinism is only promised without
    # them (tests/faurelog/eval_budget_test.cpp pins those serial).
    env.pop("FAURE_FAIL_AFTER", None)
    proc = subprocess.run(
        [faure] + args, env=env, capture_output=True, text=True, timeout=600
    )
    return proc.returncode, proc.stdout


def normalize_stats(text):
    """Masks wall-clock seconds on stats lines; everything else — every
    table row, condition, and counter — stays byte-compared."""
    out = []
    for line in text.splitlines(keepends=True):
        if line.startswith(("stats:", "solver:")):
            line = SECONDS.sub("<t>", line)
        out.append(line)
    return "".join(out)


def normalize_report(text):
    """Reduces a run report to its thread-count-invariant core."""
    report = json.loads(text)
    counters = {
        name: value
        for name, value in report.get("metrics", {}).get("counters", {}).items()
        if not name.startswith("eval.par.")
    }
    info = {
        key: value
        for key, value in report.get("info", {}).items()
        if key != "threads"
    }
    # Events keep name + detail (budget trips and their machine-readable
    # reasons are part of the contract) but drop timestamps and span ids.
    events = [
        {"name": e.get("name"), "detail": e.get("detail")}
        for e in report.get("events", [])
    ]
    return json.dumps(
        {
            "schema": report.get("schema"),
            "command": report.get("command"),
            "info": info,
            "counters": counters,
            "events": events,
        },
        indent=1,
        sort_keys=True,
    )


def diff(label, serial, other):
    lines = difflib.unified_diff(
        serial.splitlines(keepends=True),
        other.splitlines(keepends=True),
        fromfile=f"{label} [threads=serial]",
        tofile=f"{label} [threads=N]",
    )
    return "".join(lines)


def check_pair(faure, db, prog, thread_counts):
    failures = []
    for mode, args, normalize in (
        ("run --stats", [db, prog, "--stats"], normalize_stats),
        ("run --metrics", [db, prog, "--metrics"], normalize_report),
    ):
        baseline = None
        for threads in thread_counts:
            code, out = run_cli(faure, ["run"] + args, threads)
            view = normalize(out) if normalize else out
            if baseline is None:
                baseline = (threads, code, view)
                continue
            base_threads, base_code, base_view = baseline
            if code != base_code:
                failures.append(
                    f"{db} + {prog} ({mode}): exit {base_code} at "
                    f"threads={base_threads} but {code} at threads={threads}"
                )
            if view != base_view:
                failures.append(
                    f"{db} + {prog} ({mode}): output diverges at "
                    f"threads={threads}\n"
                    + diff(f"{prog} ({mode})", base_view, view)
                )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--faure", required=True, help="path to the faure CLI")
    parser.add_argument(
        "--threads",
        default="1,2,8",
        help="comma-separated FAURE_THREADS values (default: 1,2,8)",
    )
    parser.add_argument(
        "pairs",
        nargs="+",
        help="alternating database / program paths (db1 prog1 db2 prog2 ...)",
    )
    opts = parser.parse_args()
    if len(opts.pairs) % 2 != 0:
        parser.error("expected an even number of db/program paths")
    thread_counts = [int(t) for t in opts.threads.split(",") if t]
    if len(thread_counts) < 2:
        parser.error("need at least two thread counts to compare")

    failures = []
    for i in range(0, len(opts.pairs), 2):
        db, prog = opts.pairs[i], opts.pairs[i + 1]
        pair_failures = check_pair(opts.faure, db, prog, thread_counts)
        failures += pair_failures
        status = "DIVERGED" if pair_failures else "identical"
        print(
            f"{os.path.basename(db)} + {os.path.basename(prog)}: "
            f"threads {opts.threads} -> {status}"
        )

    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(f"determinism holds across threads {opts.threads}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
