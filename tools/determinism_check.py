#!/usr/bin/env python3
"""Byte-level determinism gate for the parallel fixpoint engine.

The parallel evaluator (DESIGN.md "Parallel execution") promises results
bit-identical to serial for every thread count. This script enforces the
promise end to end through the CLI: for each (database, program) pair it
runs

    faure run <db> <program> --stats          (plain output + counters)
    faure run <db> <program> --metrics        (machine-readable report)

once per requested FAURE_THREADS value and fails if

  * the plain stdout (tables, conditions, counter lines — wall-clock
    seconds on the stats lines are masked first) differs by a single
    byte from the serial run, or the exit code differs, or
  * the logical counters of the run report differ. Physical metrics are
    normalized away first: `eval.par.*` (pool-side telemetry that only
    exists in parallel runs), `eval.plan.*` (join-planner telemetry —
    when indexes are built/extended depends on scheduling, and the cost
    estimates read those live index stats), `solver.cache.*` (hit/miss
    traffic of the verdict cache depends on which thread reaches a
    formula first), all gauges/histograms (timings), span trees and
    wall clocks. Everything logical — derivations, inserts, prunes,
    per-rule breakdowns, solver.* checks/unsat/enumerations — must
    match exactly.

Each (threads) variant is additionally run with the solver verdict
cache disabled (FAURE_SOLVER_CACHE=0); cached and uncached runs must
agree byte for byte too — the cache is a physical optimisation with no
logical footprint (DESIGN.md "Condition performance").

With --chaos-seed N the whole matrix runs under seeded fault injection
(FAURE_CHAOS_SEED, DESIGN.md §9): the supervised solver's primary
backend suffers deterministic crashes/timeouts/spurious Unknowns and
fails over to the native fallback. The default chaos plan only ever
faults the primary, so every *result* bit must still match the
baseline — that is the supervision transparency contract this mode
enforces. Fault-handling telemetry is physical, not logical: the
`supervise:` stats line, `solver.supervise.*` / `events.supervise.*`
counters, and `supervise.*` events are masked before comparison (which
checks reach a backend — and hence can fault — depends on cache hits
and thread scheduling).

With --edit-script EDITS the gate targets the incremental engine's
oracle contract (DESIGN.md §10) instead: for each (database, program)
pair it replays the edit script through `faure whatif` under every
{--incremental, --full-recompute} x threads x cache combination and
byte-compares the raw epoch output (whatif prints no timings, so no
normalization is needed) against the full-recompute serial cached
baseline. It then runs `whatif --metrics` once per mode and asserts
the point of incrementality from the `eval.inc.*` counters: both modes
complete the same number of epochs, the incremental run re-fires
strictly fewer rules than the oracle, and at least one stratum was
reused verbatim. --edit-script and --chaos-seed are mutually
exclusive — chaos failover is supervised-run telemetry, while the
oracle contract is about retained-state reuse.

With --scenarios FILE the gate targets the concurrent scenario engine
(DESIGN.md §12): the baseline is N single-scenario `faure whatif` runs,
one per `---`-delimited block of FILE (serial, cache on, defaults), and
every {--incremental, --full-recompute} x threads x cache (x plan with
--plan) variant of `faure whatif --scenarios FILE` must reproduce each
block's stdout byte for byte (and its exit code) inside its
`=== scenario I: exit E ===` frame — the fan-out width (FAURE_THREADS)
must be invisible in the bytes. One `faure serve` round-trip (EVAL/GO/
QUIT over stdin at the widest thread count) must answer the same bytes
through RESULT frames. --scenarios composes with --chaos-seed: the
batch then runs under seeded fault injection while the baselines stay
chaos-free, extending the supervision transparency contract to the
scenario service.

Usage:
    determinism_check.py --faure build/tools/faure [--threads 1,2,8] \
        [--chaos-seed N | --edit-script edits.fl] [--scenarios FILE] \
        db1.fdb prog1.fl [db2.fdb prog2.fl ...]

Exit status: 0 when every pair is deterministic, 1 otherwise (with a
unified diff of the first divergence on stderr).
"""

import argparse
import difflib
import json
import os
import re
import subprocess
import sys

# Wall-clock fields on the `stats:` / `solver:` lines — the only
# legitimately thread-dependent bytes in `run --stats` output.
SECONDS = re.compile(r"\b(sql|solver|in) \d+\.\d+s|\b\d+\.\d+s\b")


def run_cli(faure, args, threads, cache=True, chaos_seed=None, plan=None):
    env = dict(os.environ)
    env["FAURE_THREADS"] = str(threads)
    if not cache:
        env["FAURE_SOLVER_CACHE"] = "0"
    # The plan sweep pins FAURE_PLAN per variant; an inherited value
    # must not leak into the variants that rely on the CLI default.
    env.pop("FAURE_PLAN", None)
    if plan is not None:
        env["FAURE_PLAN"] = plan
    # Fault-injection knobs would make charge clocks (and thus trip
    # points) schedule-dependent; determinism is only promised without
    # them (tests/faurelog/eval_budget_test.cpp pins those serial).
    env.pop("FAURE_FAIL_AFTER", None)
    # Solver chaos is different: seeded, formula-keyed, and failover-
    # transparent — the matrix either runs entirely under one seed
    # (--chaos-seed) or entirely without it, never mixed.
    for knob in ("FAURE_CHAOS_SEED", "FAURE_RETRIES",
                 "FAURE_SOLVER_TIMEOUT_MS", "FAURE_FAILOVER"):
        env.pop(knob, None)
    # The whatif matrix pins the mode per variant via --incremental /
    # --full-recompute; an inherited FAURE_INCREMENTAL must not leak
    # into the runs that rely on the CLI default.
    env.pop("FAURE_INCREMENTAL", None)
    if chaos_seed is not None:
        env["FAURE_CHAOS_SEED"] = str(chaos_seed)
    proc = subprocess.run(
        [faure] + args, env=env, capture_output=True, text=True, timeout=600
    )
    return proc.returncode, proc.stdout


def normalize_stats(text):
    """Masks wall-clock seconds on stats lines; everything else — every
    table row, condition, and counter — stays byte-compared. The
    `supervise:` fault-telemetry line is physical (see module doc) and
    masked entirely."""
    out = []
    for line in text.splitlines(keepends=True):
        if line.startswith("supervise:"):
            continue  # absent entirely from unsupervised runs
        if line.startswith(("stats:", "solver:")):
            line = SECONDS.sub("<t>", line)
        out.append(line)
    return "".join(out)


def normalize_report(text):
    """Reduces a run report to its thread-count-invariant core."""
    report = json.loads(text)
    counters = {
        name: value
        for name, value in report.get("metrics", {}).get("counters", {}).items()
        if not name.startswith(
            ("eval.par.", "eval.plan.", "solver.cache.",
             "solver.supervise.", "events.supervise.")
        )
    }
    info = {
        key: value
        for key, value in report.get("info", {}).items()
        if key not in ("threads", "supervision", "chaos_seed", "plan")
    }
    # Events keep name + detail (budget trips and their machine-readable
    # reasons are part of the contract) but drop timestamps and span ids.
    # `supervise.*` events (retries, faults, failovers) are per-backend-
    # touch telemetry and dropped wholesale.
    events = [
        {"name": e.get("name"), "detail": e.get("detail")}
        for e in report.get("events", [])
        if not str(e.get("name", "")).startswith("supervise.")
    ]
    return json.dumps(
        {
            "schema": report.get("schema"),
            "command": report.get("command"),
            "info": info,
            "counters": counters,
            "events": events,
        },
        indent=1,
        sort_keys=True,
    )


def diff(label, serial, other):
    lines = difflib.unified_diff(
        serial.splitlines(keepends=True),
        other.splitlines(keepends=True),
        fromfile=f"{label} [baseline]",
        tofile=f"{label} [variant]",
    )
    return "".join(lines)


def check_pair(faure, db, prog, thread_counts, chaos_seed=None,
               plan_sweep=False):
    # The baseline is serial + cache; every other (threads, cache)
    # combination must match it after normalization. Under --chaos-seed
    # the baseline additionally runs *without* injection while every
    # variant runs with it — so one sweep enforces both cross-thread
    # determinism and the fault plan's output transparency. Under --plan
    # every (threads, cache) combination runs once with the join planner
    # on and once with it off; the planner is a physical layer, so both
    # must match the baseline byte for byte.
    plans = ("on", "off") if plan_sweep else (None,)
    variants = [
        (t, c, p) for p in plans for c in (True, False) for t in thread_counts
    ]
    failures = []
    for mode, args, normalize in (
        ("run --stats", [db, prog, "--stats"], normalize_stats),
        ("run --metrics", [db, prog, "--metrics"], normalize_report),
    ):
        baseline = None
        if chaos_seed is not None:
            code, out = run_cli(faure, ["run"] + args, thread_counts[0])
            baseline = ("no-chaos baseline", code,
                        normalize(out) if normalize else out)
        for threads, cache, plan in variants:
            code, out = run_cli(faure, ["run"] + args, threads, cache,
                                chaos_seed, plan)
            view = normalize(out) if normalize else out
            label = f"threads={threads} cache={'on' if cache else 'off'}"
            if plan is not None:
                label += f" plan={plan}"
            if chaos_seed is not None:
                label += f" chaos_seed={chaos_seed}"
            if baseline is None:
                baseline = (label, code, view)
                continue
            base_label, base_code, base_view = baseline
            if code != base_code:
                failures.append(
                    f"{db} + {prog} ({mode}): exit {base_code} at "
                    f"{base_label} but {code} at {label}"
                )
            if view != base_view:
                failures.append(
                    f"{db} + {prog} ({mode}): output diverges at {label}\n"
                    + diff(f"{prog} ({mode})", base_view, view)
                )
    return failures


def inc_counters(report_text):
    """-> the eval.inc.* counters of a whatif --metrics run report."""
    report = json.loads(report_text)
    counters = report.get("metrics", {}).get("counters", {})
    return {
        name[len("eval.inc."):]: value
        for name, value in counters.items()
        if name.startswith("eval.inc.")
    }


def check_whatif_pair(faure, db, prog, edits, thread_counts,
                      plan_sweep=False):
    """Oracle-contract sweep: every {mode, threads, cache} variant of
    `faure whatif` must print byte-identical epochs, and the metrics
    reports must show the incremental mode actually skipping work. With
    plan_sweep the matrix additionally crosses FAURE_PLAN on/off — the
    planner's persistent indexes survive across epochs, so this leg is
    what proves their maintenance never changes an epoch's bytes."""
    failures = []
    args = [db, prog, edits]
    plans = ("on", "off") if plan_sweep else (None,)
    baseline = None
    for mode_flag in ("--full-recompute", "--incremental"):
        for threads in thread_counts:
            for cache in (True, False):
                for plan in plans:
                    code, out = run_cli(
                        faure, ["whatif"] + args + [mode_flag], threads,
                        cache, None, plan
                    )
                    label = (
                        f"{mode_flag} threads={threads} "
                        f"cache={'on' if cache else 'off'}"
                    )
                    if plan is not None:
                        label += f" plan={plan}"
                    if baseline is None:
                        baseline = (label, code, out)
                        continue
                    base_label, base_code, base_out = baseline
                    if code != base_code:
                        failures.append(
                            f"{db} + {prog} + {edits} (whatif): exit "
                            f"{base_code} at {base_label} but {code} at "
                            f"{label}"
                        )
                    if out != base_out:
                        failures.append(
                            f"{db} + {prog} + {edits} (whatif): output "
                            f"diverges at {label}\n"
                            + diff(f"{prog} (whatif)", base_out, out)
                        )

    # Firings assertion (serial, cache on): eval.inc.* counters are
    # recorded in both modes, so the reports quantify the reuse.
    counters = {}
    for mode_flag in ("--full-recompute", "--incremental"):
        code, out = run_cli(
            faure, ["whatif"] + args + [mode_flag, "--metrics"],
            thread_counts[0],
        )
        if code != 0:
            failures.append(
                f"{db} + {prog} + {edits} (whatif --metrics "
                f"{mode_flag}): exit {code}"
            )
            return failures
        counters[mode_flag] = inc_counters(out)
    full, inc = counters["--full-recompute"], counters["--incremental"]
    if not full or not inc:
        failures.append(
            f"{db} + {prog} + {edits}: whatif --metrics reports carry no "
            f"eval.inc.* counters"
        )
        return failures
    if inc.get("epochs") != full.get("epochs"):
        failures.append(
            f"{db} + {prog} + {edits}: epoch counts differ — "
            f"incremental {inc.get('epochs')} vs oracle {full.get('epochs')}"
        )
    if not inc.get("refired_rules", 0) < full.get("refired_rules", 0):
        failures.append(
            f"{db} + {prog} + {edits}: incremental mode re-fired "
            f"{inc.get('refired_rules')} rules, not strictly fewer than "
            f"the oracle's {full.get('refired_rules')} — no work was saved"
        )
    if not inc.get("reused_strata", 0) > 0:
        failures.append(
            f"{db} + {prog} + {edits}: incremental mode reused no strata"
        )
    if not failures:
        print(
            f"  reuse: incremental re-fired {inc['refired_rules']} rules "
            f"vs oracle {full['refired_rules']}, reused "
            f"{inc['reused_strata']} strata over {inc['epochs']} epochs"
        )
    return failures


def split_scenarios(path):
    """One block per `---` delimiter line; mirrors fl::parseScenarioFile
    (src/faurelog/scenario.cpp): a leading or trailing whitespace-only
    block is dropped, interior empty blocks are epoch-0-only scenarios."""
    with open(path) as fh:
        text = fh.read()
    blocks, cur = [], []
    for line in text.splitlines(keepends=True):
        if line.strip() == "---":
            blocks.append("".join(cur))
            cur = []
        else:
            cur.append(line)
    blocks.append("".join(cur))
    if blocks and not blocks[0].strip():
        blocks = blocks[1:]
    if blocks and not blocks[-1].strip():
        blocks = blocks[:-1]
    return blocks


FRAME = re.compile(r"^=== scenario (\S+): exit (\d+) ===$")


def parse_batch_frames(stdout):
    """-> [(id, exit, body)] from `whatif --scenarios` framed output."""
    frames, cur, body = [], None, []
    for line in stdout.splitlines(keepends=True):
        m = FRAME.match(line.rstrip("\n"))
        if m:
            if cur is not None:
                frames.append((cur[0], cur[1], "".join(body)))
            cur, body = (m.group(1), int(m.group(2))), []
        elif cur is not None:
            body.append(line)
    if cur is not None:
        frames.append((cur[0], cur[1], "".join(body)))
    return frames


def run_serve(faure, db, prog, blocks, threads, chaos_seed=None):
    """Pipes an EVAL/GO/QUIT conversation through `faure serve` on
    stdin/stdout; -> [(id, exit, body)] parsed from the RESULT frames."""
    lines = []
    for i, block in enumerate(blocks):
        # The wire format translates ';' back into newlines, so comment
        # lines (which may themselves contain ';') cannot ride along.
        script = ";".join(
            ln for ln in block.splitlines()
            if ln.strip() and not ln.lstrip().startswith("%")
        )
        lines.append(f"EVAL {i + 1} {script}")
    lines += ["GO", "QUIT", ""]
    env = dict(os.environ)
    env["FAURE_THREADS"] = str(threads)
    for knob in ("FAURE_CHAOS_SEED", "FAURE_RETRIES",
                 "FAURE_SOLVER_TIMEOUT_MS", "FAURE_FAILOVER",
                 "FAURE_INCREMENTAL", "FAURE_PLAN", "FAURE_FAIL_AFTER"):
        env.pop(knob, None)
    if chaos_seed is not None:
        env["FAURE_CHAOS_SEED"] = str(chaos_seed)
    proc = subprocess.run(
        [faure, "serve", db, prog],
        input="\n".join(lines).encode(),
        env=env, capture_output=True, timeout=600,
    )
    out = proc.stdout
    if proc.returncode != 0 or not out.startswith(b"READY\n"):
        raise RuntimeError(
            f"serve exited {proc.returncode}; stdout head "
            f"{out[:80]!r}, stderr {proc.stderr[:200]!r}"
        )
    pos = len(b"READY\n")
    results = []
    header = re.compile(rb"^RESULT (\S+) (\d+) (\d+)(?: [^\n]*)?\n")
    while pos < len(out):
        m = header.match(out[pos:])
        if m is None:
            raise RuntimeError(f"unparseable serve frame at {out[pos:pos+60]!r}")
        nbytes = int(m.group(3))
        pos += m.end()
        results.append(
            (m.group(1).decode(), int(m.group(2)),
             out[pos:pos + nbytes].decode())
        )
        pos += nbytes
    return results


def check_scenarios_pair(faure, db, prog, scenarios, thread_counts,
                         chaos_seed=None, plan_sweep=False):
    """Scenario-service sweep (DESIGN.md §12): batch and serve output
    must be byte-identical to N single-scenario whatif runs at every
    fan-out width, mode, cache and plan setting — and, with chaos_seed,
    under seeded fault injection against chaos-free baselines."""
    failures = []
    blocks = split_scenarios(scenarios)
    if not blocks:
        return [f"{scenarios}: no scenario blocks found"]

    # Baseline: one single-scenario whatif run per block — serial,
    # cache on, CLI defaults, never under chaos.
    singles = []
    for i, block in enumerate(blocks):
        # PID-qualified so concurrent checkers (e.g. two ctest trees
        # sharing one source checkout) never collide on the temp file.
        tmp = f"{scenarios}.tmp_scenario_{os.getpid()}_{i + 1}"
        with open(tmp, "w") as fh:
            fh.write(block)
        try:
            code, out = run_cli(faure, ["whatif", db, prog, tmp],
                                thread_counts[0])
        finally:
            os.unlink(tmp)
        singles.append((code, out))
    agg = (1 if any(c == 1 for c, _ in singles)
           else 2 if any(c == 2 for c, _ in singles) else 0)

    def compare(frames, label, batch_code=None):
        if len(frames) != len(singles):
            failures.append(
                f"{db} + {prog} + {scenarios} ({label}): {len(frames)} "
                f"frames for {len(singles)} scenarios"
            )
            return
        if batch_code is not None and batch_code != agg:
            failures.append(
                f"{db} + {prog} + {scenarios} ({label}): process exit "
                f"{batch_code}, expected aggregate {agg}"
            )
        for i, ((sid, ex, body), (scode, sout)) in enumerate(
                zip(frames, singles)):
            if sid != str(i + 1):
                failures.append(
                    f"{db} + {prog} + {scenarios} ({label}): frame {i} "
                    f"carries id {sid!r}, expected {i + 1}"
                )
            if ex != scode:
                failures.append(
                    f"{db} + {prog} + {scenarios} ({label}): scenario "
                    f"{i + 1} exit {ex}, single run exits {scode}"
                )
            if body != sout:
                failures.append(
                    f"{db} + {prog} + {scenarios} ({label}): scenario "
                    f"{i + 1} output diverges from its single run\n"
                    + diff(f"scenario {i + 1}", sout, body)
                )

    plans = ("on", "off") if plan_sweep else (None,)
    for mode_flag in ("--full-recompute", "--incremental"):
        for threads in thread_counts:
            for cache in (True, False):
                for plan in plans:
                    code, out = run_cli(
                        faure,
                        ["whatif", db, prog, "--scenarios", scenarios,
                         mode_flag],
                        threads, cache, chaos_seed, plan,
                    )
                    label = (
                        f"batch {mode_flag} threads={threads} "
                        f"cache={'on' if cache else 'off'}"
                    )
                    if plan is not None:
                        label += f" plan={plan}"
                    if chaos_seed is not None:
                        label += f" chaos_seed={chaos_seed}"
                    compare(parse_batch_frames(out), label, code)

    # Serve round-trip at the widest fan-out: the line protocol must
    # answer the same bytes the batch (and hence each single run) prints.
    try:
        frames = run_serve(faure, db, prog, blocks, thread_counts[-1],
                           chaos_seed)
    except RuntimeError as e:
        failures.append(f"{db} + {prog} + {scenarios} (serve): {e}")
    else:
        compare(frames, f"serve threads={thread_counts[-1]}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--faure", required=True, help="path to the faure CLI")
    parser.add_argument(
        "--threads",
        default="1,2,8",
        help="comma-separated FAURE_THREADS values (default: 1,2,8)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="run the matrix under FAURE_CHAOS_SEED=N and also compare "
        "against a no-chaos baseline (supervision transparency gate)",
    )
    parser.add_argument(
        "--edit-script",
        default=None,
        metavar="EDITS",
        help="gate `faure whatif` with this edit script instead of "
        "`faure run`: {--incremental, --full-recompute} x threads x "
        "cache must be byte-identical (the oracle contract) and the "
        "incremental mode must re-fire strictly fewer rules",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        metavar="FILE",
        help="gate the concurrent scenario engine with this ---"
        "-delimited scenarios file: `whatif --scenarios` batches and a "
        "`serve` round-trip must be byte-identical, scenario by "
        "scenario, to N single whatif runs across the whole matrix",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="cross the matrix with FAURE_PLAN on/off: the cost-based "
        "join planner (persistent indexes, literal reordering) must be "
        "byte-invisible in the results at every thread count, in both "
        "run and whatif modes",
    )
    parser.add_argument(
        "pairs",
        nargs="+",
        help="alternating database / program paths (db1 prog1 db2 prog2 ...)",
    )
    opts = parser.parse_args()
    if len(opts.pairs) % 2 != 0:
        parser.error("expected an even number of db/program paths")
    if opts.edit_script is not None and opts.chaos_seed is not None:
        parser.error(
            "--edit-script and --chaos-seed are mutually exclusive "
            "(see module doc)"
        )
    if opts.edit_script is not None and opts.scenarios is not None:
        parser.error(
            "--edit-script and --scenarios are mutually exclusive "
            "(each selects a different whatif gate)"
        )
    thread_counts = [int(t) for t in opts.threads.split(",") if t]
    if len(thread_counts) < 2:
        parser.error("need at least two thread counts to compare")

    chaos = (
        f" chaos_seed={opts.chaos_seed}" if opts.chaos_seed is not None else ""
    )
    if opts.plan:
        chaos += " x plan on/off"
    failures = []
    for i in range(0, len(opts.pairs), 2):
        db, prog = opts.pairs[i], opts.pairs[i + 1]
        if opts.scenarios is not None:
            pair_failures = check_scenarios_pair(
                opts.faure, db, prog, opts.scenarios, thread_counts,
                opts.chaos_seed, opts.plan
            )
        elif opts.edit_script is not None:
            pair_failures = check_whatif_pair(
                opts.faure, db, prog, opts.edit_script, thread_counts,
                opts.plan
            )
        else:
            pair_failures = check_pair(
                opts.faure, db, prog, thread_counts, opts.chaos_seed,
                opts.plan
            )
        failures += pair_failures
        status = "DIVERGED" if pair_failures else "identical"
        if opts.scenarios is not None:
            tag = f" + {os.path.basename(opts.scenarios)}"
        elif opts.edit_script is not None:
            tag = f" + {os.path.basename(opts.edit_script)}"
        else:
            tag = ""
        print(
            f"{os.path.basename(db)} + {os.path.basename(prog)}{tag}: "
            f"threads {opts.threads}{chaos} -> {status}"
        )

    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    if opts.scenarios is not None:
        print(
            f"scenario determinism holds across threads {opts.threads}"
            f"{chaos} (batch + serve vs single-scenario runs)"
        )
    elif opts.edit_script is not None:
        print(
            f"incremental determinism holds across threads {opts.threads}"
        )
    else:
        print(f"determinism holds across threads {opts.threads}{chaos}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
