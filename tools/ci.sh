#!/usr/bin/env bash
# CI entry point. Stages mirror the jobs of .github/workflows/ci.yml
# 1:1 — test, sanitize, tsan, chaos, serve, incremental, plan,
# coverage, bench-gate — so every job can be reproduced locally with a
# single command and "the serve stage failed" means the same thing in
# both places. Set SKIP_ASAN=1 / SKIP_TSAN=1 / SKIP_CHAOS=1 /
# SKIP_SERVE=1 / SKIP_INCREMENTAL=1 / SKIP_PLAN=1 / SKIP_BENCH_GATE=1
# to drop a stage (e.g. TSan is slow on small boxes). The coverage
# stage is the one exception: it defaults to *skipped* locally
# (gcovr + a Debug rebuild); opt in with RUN_COVERAGE=1.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "==> test (plain build + full suite)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${SKIP_ASAN:-0}" != 1 ]]; then
  echo "==> sanitize (address;undefined)"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "-DFAURE_SANITIZE=address;undefined"
  cmake --build build-asan -j "$JOBS"
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "${SKIP_TSAN:-0}" != 1 ]]; then
  echo "==> tsan (thread sanitizer, parallel evaluation forced)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFAURE_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  FAURE_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
fi

if [[ "${SKIP_CHAOS:-0}" != 1 ]]; then
  echo "==> chaos (seeded solver fault injection, DESIGN.md §9)"
  # FAURE_CHAOS_SEED activates supervision + failover everywhere the
  # environment path reaches (Session construction and the CLI): the
  # primary solver backend suffers deterministic crashes / timeouts /
  # spurious Unknowns keyed on (seed, formula hash) and fails over to
  # the native fallback, so the whole suite must stay green with
  # unchanged results. The seeds are FIXED — a failure under seed S
  # replays exactly with FAURE_CHAOS_SEED=S, any thread count:
  #   1         smallest interesting seed (fault-dense schedule)
  #   20260807  date-stamped seed used by cli_chaos_* tests and docs
  #   64206     0xFACE — historical third opinion
  # Keep this list in sync with .github/workflows/ci.yml (chaos job);
  # .github/workflows/nightly.yml additionally sweeps a fresh
  # date-derived seed every night.
  for seed in 1 20260807 64206; do
    echo "==> chaos seed ${seed} (FAURE_THREADS=4)"
    FAURE_CHAOS_SEED=$seed FAURE_THREADS=4 \
      ctest --test-dir build --output-on-failure -j "$JOBS"
  done
fi

if [[ "${SKIP_SERVE:-0}" != 1 ]]; then
  echo "==> serve (scenario service smoke + byte-identity gate)"
  # The batch front-end, the stdin line protocol, and the unix-socket
  # server (DESIGN.md §12), then the scenario gate: batch and serve
  # frames byte-identical to single-scenario whatif runs at fan-out
  # widths {1,2,8} x cache on/off. CI runs this stage under ASan; the
  # plain build keeps the local loop fast.
  python3 tools/serve_smoke.py --faure build/tools/faure
  python3 tools/determinism_check.py --faure build/tools/faure \
    --threads 1,2,8 --scenarios data/whatif_scenarios.fl \
    data/whatif_net.fdb data/whatif_reach.fl
fi

if [[ "${SKIP_INCREMENTAL:-0}" != 1 ]]; then
  echo "==> incremental (whatif oracle byte-identity + reuse)"
  # The oracle contract: every {mode, threads, cache} whatif variant
  # prints byte-identical epochs, and the incremental mode re-fires
  # strictly fewer rules (keep the script list in sync with ci.yml's
  # `incremental` job matrix).
  for edits in data/whatif_edits.fl data/whatif_churn.fl; do
    python3 tools/determinism_check.py --faure build/tools/faure \
      --threads 1,2,8 --edit-script "$edits" \
      data/whatif_net.fdb data/whatif_reach.fl
  done
fi

if [[ "${SKIP_PLAN:-0}" != 1 ]]; then
  echo "==> plan (join-planner transparency, plan on/off byte-identity)"
  # Cost-based planning is a physical layer only (DESIGN.md §11): the
  # full determinism matrix, with a plan on/off sweep folded in, must
  # stay byte-identical — for plain runs and across what-if epochs
  # (persistent indexes are retained by the incremental engine).
  python3 tools/determinism_check.py --faure build/tools/faure \
    --threads 1,2,8 --plan \
    data/figure1.fdb data/listing2.fl \
    data/enterprise.fdb data/t2_constraint.fl
  python3 tools/determinism_check.py --faure build/tools/faure \
    --threads 1,2,8 --plan --edit-script data/whatif_edits.fl \
    data/whatif_net.fdb data/whatif_reach.fl
fi

if [[ "${RUN_COVERAGE:-0}" == 1 ]]; then
  echo "==> coverage (gcovr line floor, Debug instrumented build)"
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug -DFAURE_COVERAGE=ON
  cmake --build build-cov -j "$JOBS"
  ctest --test-dir build-cov --output-on-failure -j "$JOBS"
  gcovr --root . --filter 'src/' --object-directory build-cov \
    --exclude-throw-branches --print-summary --fail-under-line 88
fi

if [[ "${SKIP_BENCH_GATE:-0}" != 1 ]]; then
  echo "==> bench-gate (Table 4, serial + -j2)"
  (cd build && FAURE_TABLE4_SIZES=200,500 FAURE_TABLE4_THREADS=1,2 \
    FAURE_BENCH_JSON=BENCH_table4_gate.json ./bench/table4_reachability)
  python3 tools/bench_check.py --current build/BENCH_table4_gate.json \
    --baseline bench/baseline_table4.json --tolerance 0.30 \
    --diff-out build/bench_diff.json

  echo "==> bench-gate (incremental what-if)"
  (cd build && FAURE_BENCH_JSON=BENCH_incremental.json \
    ./bench/whatif_incremental)
  python3 tools/bench_check.py --current build/BENCH_incremental.json \
    --baseline bench/baseline_incremental.json --family incremental \
    --tolerance 0.50 --diff-out build/bench_diff_incremental.json

  echo "==> bench-gate (join planner)"
  (cd build && FAURE_BENCH_JSON=BENCH_join.json ./bench/join_planner)
  python3 tools/bench_check.py --current build/BENCH_join.json \
    --baseline bench/baseline_join.json --family join \
    --tolerance 0.50 --diff-out build/bench_diff_join.json

  echo "==> bench-gate (scenario batch)"
  (cd build && FAURE_BENCH_JSON=BENCH_scenario.json ./bench/scenario_batch)
  python3 tools/bench_check.py --current build/BENCH_scenario.json \
    --baseline bench/baseline_scenario.json --family scenario \
    --tolerance 0.50 --diff-out build/bench_diff_scenario.json
fi

echo "==> all green"
