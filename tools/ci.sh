#!/usr/bin/env bash
# CI entry point: plain build + tests, then a second build with
# ASan/UBSan instrumentation (-DFAURE_SANITIZE=address;undefined) running
# the same suite. Mirrors .github/workflows/ci.yml so the jobs can be
# reproduced locally with a single command.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "==> plain build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> sanitizer build (address;undefined)"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DFAURE_SANITIZE=address;undefined"
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=0 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> all green"
