// Batched scenario evaluation vs sequential one-shot runs (DESIGN.md
// §12).
//
// Synthesises the whatif_incremental network (forwarding chain with
// fast-reroute pairs plus Acl policy rows) and N independent what-if
// scenarios — seeded, divergent edit scripts in the `faure whatif`
// directive syntax. Each count is answered twice:
//
//   seq   — the status quo: one fresh ScenarioSet *per scenario*, each
//           paying its own parse + epoch-0 derivation before replaying
//           its script serially. This is byte-for-byte what N separate
//           `faure whatif --edit-script` invocations cost (minus process
//           startup, which only flatters the batch). Recorded as
//           `scenario[N].wall_seconds`; the smallest count's entry is
//           the calibration unit for tools/bench_check.py --family
//           scenario against bench/baseline_scenario.json.
//   batch — one ScenarioSet: epoch 0 derived once, then all N scenarios
//           forked from the snapshot and fanned out over the thread
//           pool. Recorded as `scenario[N].batch.wall_seconds`, plus a
//           speedup gauge.
//
// Every scenario's outcome bytes are compared across the two modes and
// the harness aborts on any divergence, so a bench run is also a
// fork-isolation check on a workload larger than the data/ fixtures.
//
// Knobs: FAURE_SCEN_COUNTS (default "4,8"), FAURE_SCEN_THREADS (batch
// fan-out width, default 4), FAURE_SCEN_EDITS (epochs per scenario,
// default 3), FAURE_SCEN_LINKS (network size, default 60),
// FAURE_SOLVER_CACHE (verdict cache entries; 0 disables),
// FAURE_BENCH_JSON (report path, default BENCH_scenario.json, "0"
// skips), FAURE_BENCH_TRACE=0 detaches the tracer.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "datalog/parser.hpp"
#include "faurelog/scenario.hpp"
#include "faurelog/textio.hpp"
#include "obs/report.hpp"
#include "smt/verdict_cache.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace faure;

namespace {

constexpr const char* kProgram =
    "R(f,a,b) :- F(f,a,b).\n"
    "R(f,a,b) :- F(f,a,c), R(f,c,b).\n"
    "Deliver(f) :- R(f,1,%END%).\n"
    "Open(app,p) :- Acl(app,p), p < 1024.\n"
    "Lockdown(app) :- Acl(app,p), !Open(app,p).\n";

/// Protected links live only in this prefix — see whatif_incremental.cpp
/// for why the count must stay O(1) as the chain grows.
constexpr size_t kProtectedSpan = 42;  // 6 protected links (every 7th)

std::string makeDbText(size_t links) {
  std::string text;
  size_t prot = 0;
  for (size_t i = 0; i < links && i < kProtectedSpan; i += 7) {
    text += "var l" + std::to_string(prot++) + "_ int 0 1\n";
  }
  text += "table F(flow sym, from int, to int)\n";
  text += "table Acl(app sym, port int)\n";
  size_t detour = links + 2;
  prot = 0;
  for (size_t i = 0; i < links; ++i) {
    const std::string a = std::to_string(i + 1);
    const std::string b = std::to_string(i + 2);
    if (i % 7 == 0 && i < kProtectedSpan) {
      const std::string v = "l" + std::to_string(prot++) + "_";
      const std::string d = std::to_string(detour++);
      text += "row F f0 " + a + " " + b + " | " + v + " = 1\n";
      text += "row F f0 " + a + " " + d + " | " + v + " = 0\n";
      text += "row F f0 " + d + " " + b + "\n";
    } else {
      text += "row F f0 " + a + " " + b + "\n";
    }
  }
  util::Rng rng(0xac1dc0deULL);
  for (size_t i = 0; i < links / 2; ++i) {
    text += "row Acl app" + std::to_string(i) + " " +
            std::to_string(rng.range(20, 9000)) + "\n";
  }
  return text;
}

/// One scenario's seeded edit script: mostly Acl churn, occasional link
/// flaps. Scenarios diverge (the seed folds in the scenario index), so
/// forks genuinely edit the shared relations in conflicting directions.
std::string makeScenarioScript(size_t links, size_t edits, size_t scenario) {
  util::Rng rng(0x5ce9a210ULL + scenario * 7919 + links);
  std::string text;
  for (size_t e = 0; e < edits; ++e) {
    if (rng.chance(0.6)) {
      const std::string app = "app" + std::to_string(rng.below(links / 2));
      const std::string port = std::to_string(rng.range(20, 9000));
      text += (rng.chance(0.5) ? "+Acl(" : "-Acl(") + app + ", " + port + ")\n";
    } else {
      size_t i = rng.below(links);
      if (i % 7 == 0) ++i;  // keep protected links stable
      const std::string a = std::to_string(i + 1);
      const std::string b = std::to_string(i + 2);
      text += (rng.chance(0.5) ? "-F(f0, " : "+F(f0, ") + a + ", " + b + ")\n";
    }
  }
  return text;
}

/// Parses the workload fresh (its own registry/interner state) and
/// builds a ScenarioSet over it at the given fan-out width.
fl::ScenarioSet makeSet(size_t links, const std::string& dbText,
                       unsigned threads, obs::Tracer* tracer) {
  rel::Database db = fl::parseDatabase(dbText);
  std::string progText = kProgram;
  progText.replace(progText.find("%END%"), 5, std::to_string(links + 1));
  dl::Program program = dl::parseProgram(progText, db.cvars());
  fl::ScenarioSetOptions opts;
  opts.eval.threads = threads;
  if (tracer != nullptr) opts.eval.tracer = tracer;
  return fl::ScenarioSet(std::move(program), std::move(db), std::move(opts));
}

std::vector<size_t> parseList(const char* text) {
  std::vector<size_t> out;
  for (const char* p = text; *p != '\0';) {
    char* end = nullptr;
    unsigned long long n = std::strtoull(p, &end, 10);
    if (end == p) break;
    if (n > 0) out.push_back(static_cast<size_t>(n));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

size_t envSize(const char* name, size_t dflt) {
  if (const char* v = std::getenv(name); v != nullptr && v[0] != '\0') {
    const size_t n = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    if (n > 0) return n;
  }
  return dflt;
}

}  // namespace

int main() {
  std::vector<size_t> counts = {4, 8};
  if (const char* list = std::getenv("FAURE_SCEN_COUNTS");
      list != nullptr && list[0] != '\0') {
    counts = parseList(list);
    if (counts.empty()) counts = {4, 8};
  }
  const size_t threads = envSize("FAURE_SCEN_THREADS", 4);
  const size_t edits = envSize("FAURE_SCEN_EDITS", 3);
  const size_t links = envSize("FAURE_SCEN_LINKS", 60);

  obs::Tracer tracer;
  bool traceOn = true;
  if (const char* t = std::getenv("FAURE_BENCH_TRACE");
      t != nullptr && t[0] == '0') {
    traceOn = false;
  }
  obs::Tracer* tp = traceOn ? &tracer : nullptr;

  std::printf(
      "---- batched scenarios vs sequential one-shot runs "
      "(%zu links, %zu epochs/scenario, batch fan-out %zu) ----\n",
      links, edits, threads);
  std::printf("%6s | %10s %10s %8s\n", "#scen", "seq (s)", "batch (s)",
              "speedup");

  const std::string dbText = makeDbText(links);
  bool diverged = false;
  for (size_t n : counts) {
    std::vector<fl::Scenario> scenarios;
    for (size_t i = 0; i < n; ++i) {
      scenarios.push_back(
          {std::to_string(i + 1), makeScenarioScript(links, edits, i)});
    }

    util::Stopwatch watch;
    std::vector<fl::ScenarioOutcome> seq;
    watch.lap();
    {
      obs::Span span(tp, "scenario[n=" + std::to_string(n) + "][seq]");
      for (const fl::Scenario& s : scenarios) {
        fl::ScenarioSet one = makeSet(links, dbText, 1, tp);
        std::vector<fl::ScenarioOutcome> out = one.evaluate({s});
        seq.push_back(std::move(out.front()));
      }
    }
    const double seqSeconds = watch.lap();

    std::vector<fl::ScenarioOutcome> batch;
    watch.lap();
    {
      obs::Span span(tp, "scenario[n=" + std::to_string(n) + "][batch]");
      fl::ScenarioSet set =
          makeSet(links, dbText, static_cast<unsigned>(threads), tp);
      batch = set.evaluate(scenarios);
    }
    const double batchSeconds = watch.lap();

    for (size_t i = 0; i < n; ++i) {
      if (seq[i].exitCode != 0 || batch[i].exitCode != 0) {
        std::fprintf(stderr, "count %zu scenario %zu: nonzero exit (%d/%d)\n",
                     n, i + 1, seq[i].exitCode, batch[i].exitCode);
        diverged = true;
      } else if (seq[i].output != batch[i].output) {
        std::fprintf(stderr,
                     "count %zu scenario %zu: FORK DIVERGENCE — batched "
                     "output is not byte-identical to its one-shot run\n",
                     n, i + 1);
        diverged = true;
      }
    }

    const double speedup = batchSeconds > 0.0 ? seqSeconds / batchSeconds : 0.0;
    std::printf("%6zu | %10.4f %10.4f %7.2fx\n", n, seqSeconds, batchSeconds,
                speedup);
    std::fflush(stdout);
    if (traceOn) {
      obs::Registry& reg = tracer.metrics();
      const std::string base = "scenario[" + std::to_string(n) + "].";
      reg.gauge(base + "wall_seconds").set(seqSeconds);
      reg.gauge(base + "batch.wall_seconds").set(batchSeconds);
      reg.gauge(base + "speedup").set(speedup);
      reg.gauge(base + "threads").set(static_cast<double>(threads));
      reg.gauge(base + "epochs_per_scenario").set(static_cast<double>(edits));
    }
  }

  const char* jsonPath = std::getenv("FAURE_BENCH_JSON");
  if (jsonPath == nullptr) jsonPath = "BENCH_scenario.json";
  if (traceOn && std::strcmp(jsonPath, "0") != 0) {
    obs::ReportMeta meta;
    meta.command = "bench.scenario";
    std::string countList;
    for (size_t n : counts) {
      if (!countList.empty()) countList += ",";
      countList += std::to_string(n);
    }
    meta.add("counts", countList);
    meta.add("threads", std::to_string(threads));
    meta.add("edits", std::to_string(edits));
    meta.add("links", std::to_string(links));
    meta.add("solver_cache",
             std::to_string(smt::VerdictCache::capacityFromEnv()));
    std::ofstream out(jsonPath);
    if (out) {
      out << obs::benchReportJson(tracer, meta);
      std::printf("\nrun report written to %s\n", jsonPath);
    } else {
      std::fprintf(stderr, "cannot write '%s'\n", jsonPath);
    }
  }
  return diverged ? 1 : 0;
}
