// Constraint-subsumption ablation (§5): the classical canonical-database
// containment check vs the paper's reduction to fauré-log query
// evaluation, over generated constraint programs.
#include <benchmark/benchmark.h>

#include "datalog/containment.hpp"
#include "util/rng.hpp"
#include "verify/containment.hpp"
#include "verify/unfold.hpp"

namespace faure {
namespace {

/// Generates a family of positive panic constraints over R(a,b,c):
/// the target is a specialization (constants filled in), the general
/// constraint leaves positions open — so subsumption always holds, and
/// both methods do full work to confirm it.
struct ConstraintPair {
  verify::Constraint target;
  verify::Constraint general;
};

ConstraintPair makePair(CVarRegistry& reg, int bodyAtoms, uint64_t seed) {
  util::Rng rng(seed);
  const char* consts[] = {"Mkt", "CS", "GS", "Web"};
  std::string targetText = "panic :- ";
  std::string generalText = "panic :- ";
  for (int i = 0; i < bodyAtoms; ++i) {
    if (i > 0) {
      targetText += ", ";
      generalText += ", ";
    }
    std::string v1 = "v" + std::to_string(i) + "a";
    std::string v2 = "v" + std::to_string(i) + "b";
    // Target pins the first position to a constant; general keeps a var.
    targetText += "R" + std::to_string(i) + "(" +
                  consts[rng.below(4)] + ", " + v1 + ", " + v2 + ")";
    generalText += "R" + std::to_string(i) + "(" + v1 + "x, " + v1 + ", " +
                   v2 + ")";
  }
  targetText += ".";
  generalText += ".";
  return ConstraintPair{
      verify::Constraint::parse("target", targetText, reg),
      verify::Constraint::parse("general", generalText, reg)};
}

void BM_SubsumptionClassicalCanonicalDb(benchmark::State& state) {
  CVarRegistry reg;
  auto pair = makePair(reg, static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dl::constraintSubsumedCanonical(
        pair.target.program, pair.general.program));
  }
}
BENCHMARK(BM_SubsumptionClassicalCanonicalDb)->Arg(2)->Arg(4)->Arg(8);

void BM_SubsumptionFaureLogReduction(benchmark::State& state) {
  CVarRegistry reg;
  auto pair = makePair(reg, static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = verify::subsumes(pair.target, {pair.general}, reg);
    benchmark::DoNotOptimize(r.subsumed);
  }
}
BENCHMARK(BM_SubsumptionFaureLogReduction)->Arg(2)->Arg(4)->Arg(8);

void BM_SubsumptionSection5Scenario(benchmark::State& state) {
  // The full paper scenario, category (i): T1 against {Clb, Cs}.
  CVarRegistry reg;
  reg.declare("y_", ValueType::Sym, {Value::sym("CS"), Value::sym("GS")});
  auto t1 = verify::Constraint::parse(
      "T1", "panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).", reg);
  auto clb = verify::Constraint::parse(
      "Clb",
      "panic :- Vt(x, y, p).\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), xt_ != Mkt, xt_ != R&D.\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), !Lb(xt_, CS).\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), pt_ != 7000.\n",
      reg);
  auto cs = verify::Constraint::parse(
      "Cs",
      "panic :- Vs(x, y, p).\n"
      "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), !Fw(xs_, ys_).\n"
      "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), ps_ != 80, ps_ != 344, "
      "ps_ != 7000.\n",
      reg);
  for (auto _ : state) {
    auto r = verify::subsumes(t1, {clb, cs}, reg);
    benchmark::DoNotOptimize(r.subsumed);
  }
}
BENCHMARK(BM_SubsumptionSection5Scenario);

void BM_UnfoldClb(benchmark::State& state) {
  CVarRegistry reg;
  auto clb = verify::Constraint::parse(
      "Clb",
      "panic :- Vt(x, y, p).\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), xt_ != Mkt, xt_ != R&D.\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), !Lb(xt_, CS).\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), pt_ != 7000.\n",
      reg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::unfoldGoalRules(clb.program, "panic").size());
  }
}
BENCHMARK(BM_UnfoldClb);

}  // namespace
}  // namespace faure

BENCHMARK_MAIN();
