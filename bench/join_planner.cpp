// Cost-based join planning benchmark (DESIGN.md "Cost-based join
// planning").
//
// Synthesises a join-heavy workload where program order is the wrong
// order and per-firing index rebuilds dominate:
//
//   T(x,z)   :- A(x,y), B(y,z), C(z).    (selective C listed last)
//   Reach(b) :- Src(b).
//   Reach(b) :- Reach(a), L(a,b).        (N-round chain recursion)
//
// A and B carry N rows each (y bucketed into kBuckets values, so the
// program-order A x B prefix is ~N^2/kBuckets combinations before the
// ~N/50-row C filters anything), a few A rows hold c-variable data so
// the wild-row path of the persistent indexes is exercised, and the
// chain rule re-probes L once per fixpoint round — the case where a
// per-firing local index costs O(N) per round but a persistent
// rel::JoinIndex is built once and only probed after that.
//
// Each size runs twice:
//
//   plan   — EvalOptions::plan = PlanMode::On: greedy selectivity
//            reorder plus persistent indexes. Recorded as
//            `join[N].wall_seconds`; the smallest size's entry is the
//            calibration unit for tools/bench_check.py --family join
//            against bench/baseline_join.json.
//   noplan — PlanMode::Off, the pristine program-order path. Recorded
//            as `join[N].noplan.wall_seconds` plus a speedup gauge.
//
// Every run's derived tables are rendered to text in both modes and the
// harness aborts on any byte difference, so a bench run is also a
// planner byte-identity check on a workload larger than the data/
// fixtures. After the timed runs the planned mode repeats once under a
// tracer so the report carries the eval.plan.* counters.
//
// Knobs: FAURE_JOIN_SIZES (default "600,1200"), FAURE_JOIN_REPS
// (best-of, default 3), FAURE_SOLVER_CACHE (verdict cache entries; 0
// disables), FAURE_BENCH_JSON (report path, default BENCH_join.json,
// "0" skips), FAURE_BENCH_TRACE=0 detaches the tracer. The report is
// the span-free bench summary; FAURE_BENCH_FULL_SPANS=1 restores the
// raw span tree.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "faurelog/textio.hpp"
#include "obs/report.hpp"
#include "smt/solver.hpp"
#include "smt/verdict_cache.hpp"
#include "util/timer.hpp"

using namespace faure;

namespace {

constexpr const char* kProgram =
    "T(x,z) :- A(x,y), B(y,z), C(z).\n"
    "Reach(b) :- Src(b).\n"
    "Reach(b) :- Reach(a), L(a,b).\n";

constexpr size_t kBuckets = 16;   // distinct y values in A and B
constexpr size_t kWildRows = 4;   // A rows carrying c-variable data

/// The synthetic workload in the textual .fdb format (parsed fresh per
/// mode so neither run sees the other's interner or c-var state).
std::string makeDbText(size_t n) {
  std::string text;
  for (size_t i = 0; i < kWildRows; ++i) {
    text += "var w" + std::to_string(i) + "_ int 0 " +
            std::to_string(kBuckets - 1) + "\n";
  }
  text += "table A(x int, y int)\n";
  text += "table B(y int, z int)\n";
  text += "table C(z int)\n";
  text += "table L(a int, b int)\n";
  text += "table Src(b int)\n";
  for (size_t i = 0; i < n; ++i) {
    text += "row A " + std::to_string(i) + " " +
            std::to_string(i % kBuckets) + "\n";
    text += "row B " + std::to_string(i % kBuckets) + " " +
            std::to_string(i) + "\n";
  }
  // Wild rows: c-variable y values force every probe of A's y column
  // through the index's wild-row list.
  for (size_t i = 0; i < kWildRows; ++i) {
    text += "row A " + std::to_string(n + i) + " w" + std::to_string(i) +
            "_\n";
  }
  for (size_t z = 0; z < n; z += 50) {
    text += "row C " + std::to_string(z) + "\n";
  }
  for (size_t i = 0; i < n; ++i) {
    text += "row L " + std::to_string(i) + " " + std::to_string(i + 1) +
            "\n";
  }
  text += "row Src 0\n";
  return text;
}

struct ModeResult {
  double wallSeconds = 0.0;  // best of FAURE_JOIN_REPS evaluations
  std::string rendering;     // every derived table, text form
  bool incomplete = false;
};

ModeResult runMode(const std::string& dbText, fl::PlanMode plan,
                   size_t reps, obs::Tracer* tracer) {
  ModeResult out;
  for (size_t rep = 0; rep < reps; ++rep) {
    rel::Database db = fl::parseDatabase(dbText);
    dl::Program program = dl::parseProgram(kProgram, db.cvars());
    smt::NativeSolver solver(db.cvars());
    std::unique_ptr<smt::VerdictCache> cache;
    const size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
    if (cacheEntries > 0) {
      cache = std::make_unique<smt::VerdictCache>(db.cvars(), cacheEntries);
      solver.setVerdictCache(cache.get());
    }
    fl::EvalOptions opts;
    opts.plan = plan;
    opts.tracer = tracer;
    util::Stopwatch watch;
    watch.lap();
    fl::EvalResult res = fl::evalFaure(program, db, &solver, opts);
    const double wall = watch.lap();
    if (rep == 0 || wall < out.wallSeconds) out.wallSeconds = wall;
    out.incomplete = res.incomplete;
    out.rendering.clear();
    for (const auto& [name, table] : res.idb) {
      out.rendering += name + "\n" + table.toString(&db.cvars()) + "\n";
    }
  }
  return out;
}

std::vector<size_t> parseList(const char* text) {
  std::vector<size_t> out;
  for (const char* p = text; *p != '\0';) {
    char* end = nullptr;
    unsigned long long n = std::strtoull(p, &end, 10);
    if (end == p) break;
    if (n > 0) out.push_back(static_cast<size_t>(n));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main() {
  std::vector<size_t> sizes = {600, 1200};
  if (const char* list = std::getenv("FAURE_JOIN_SIZES");
      list != nullptr && list[0] != '\0') {
    sizes = parseList(list);
    if (sizes.empty()) sizes = {600, 1200};
  }
  size_t reps = 3;
  if (const char* n = std::getenv("FAURE_JOIN_REPS");
      n != nullptr && n[0] != '\0') {
    reps = static_cast<size_t>(std::strtoull(n, nullptr, 10));
    if (reps == 0) reps = 3;
  }

  obs::Tracer tracer;
  bool traceOn = true;
  if (const char* t = std::getenv("FAURE_BENCH_TRACE");
      t != nullptr && t[0] == '0') {
    traceOn = false;
  }

  std::printf(
      "---- cost-based join planning vs program order "
      "(best of %zu evaluations per mode) ----\n",
      reps);
  std::printf("%8s | %12s %12s %8s\n", "#rows", "noplan (s)", "plan (s)",
              "speedup");

  bool diverged = false;
  for (size_t n : sizes) {
    const std::string dbText = makeDbText(n);
    // Timed runs are untraced: the comparison is the two join paths,
    // not their span overhead.
    ModeResult noplan = runMode(dbText, fl::PlanMode::Off, reps, nullptr);
    ModeResult plan = runMode(dbText, fl::PlanMode::On, reps, nullptr);
    if (noplan.incomplete || plan.incomplete) {
      std::fprintf(stderr, "size %zu: run incomplete, skipping row\n", n);
      continue;
    }
    if (noplan.rendering != plan.rendering) {
      std::fprintf(stderr,
                   "size %zu: PLANNER DIVERGENCE — planned results are "
                   "not byte-identical to program order\n",
                   n);
      diverged = true;
      continue;
    }
    const double speedup =
        plan.wallSeconds > 0.0 ? noplan.wallSeconds / plan.wallSeconds : 0.0;
    std::printf("%8zu | %12.4f %12.4f %7.2fx\n", n, noplan.wallSeconds,
                plan.wallSeconds, speedup);
    std::fflush(stdout);
    if (traceOn) {
      // One observed planned run so the report carries eval.plan.*
      // (index builds, probe hit rates, estimate totals) per size.
      obs::Span span(&tracer, "join[size=" + std::to_string(n) + "]");
      runMode(dbText, fl::PlanMode::On, 1, &tracer);
      obs::Registry& reg = tracer.metrics();
      const std::string base = "join[" + std::to_string(n) + "].";
      reg.gauge(base + "wall_seconds").set(plan.wallSeconds);
      reg.gauge(base + "noplan.wall_seconds").set(noplan.wallSeconds);
      reg.gauge(base + "speedup").set(speedup);
    }
  }

  const char* jsonPath = std::getenv("FAURE_BENCH_JSON");
  if (jsonPath == nullptr) jsonPath = "BENCH_join.json";
  if (traceOn && std::strcmp(jsonPath, "0") != 0) {
    obs::ReportMeta meta;
    meta.command = "bench.join_planner";
    std::string sizeList;
    for (size_t n : sizes) {
      if (!sizeList.empty()) sizeList += ",";
      sizeList += std::to_string(n);
    }
    meta.add("sizes", sizeList);
    meta.add("reps", std::to_string(reps));
    meta.add("solver_cache",
             std::to_string(smt::VerdictCache::capacityFromEnv()));
    std::ofstream out(jsonPath);
    if (out) {
      out << obs::benchReportJson(tracer, meta);
      std::printf("\nrun report written to %s\n", jsonPath);
    } else {
      std::fprintf(stderr, "cannot write '%s'\n", jsonPath);
    }
  }
  return diverged ? 1 : 0;
}
