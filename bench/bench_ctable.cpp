// C-table algebra micro-benchmarks and the loss-less-modeling payoff
// (§4): one query over a single c-table vs the same query repeated over
// every possible world.
#include <benchmark/benchmark.h>

#include "datalog/parser.hpp"
#include "datalog/pure_eval.hpp"
#include "faurelog/eval.hpp"
#include "net/frr.hpp"
#include "relational/algebra.hpp"
#include "relational/worlds.hpp"
#include "util/rng.hpp"

namespace faure {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

/// A conditional table over `nBits` failure bits with `rows` rows.
struct TableFixture {
  rel::Database db;
  std::vector<CVarId> bits;

  TableFixture(size_t rows, size_t nBits) {
    for (size_t i = 0; i < nBits; ++i) {
      bits.push_back(db.cvars().declareInt("b" + std::to_string(i) + "_",
                                           0, 1));
    }
    util::Rng rng(5);
    auto& t = db.create(anySchema("T", 2));
    for (size_t i = 0; i < rows; ++i) {
      smt::Formula cond = smt::Formula::cmp(
          Value::cvar(bits[rng.below(nBits)]), smt::CmpOp::Eq,
          Value::fromInt(rng.range(0, 1)));
      t.insert({Value::fromInt(static_cast<int64_t>(rng.below(rows / 2 + 1))),
                Value::fromInt(static_cast<int64_t>(rng.below(rows / 2 + 1)))},
               cond);
    }
  }
};

void BM_CTableSelect(benchmark::State& state) {
  TableFixture f(static_cast<size_t>(state.range(0)), 8);
  for (auto _ : state) {
    auto out = rel::select(f.db.table("T"), 0, smt::CmpOp::Eq,
                           Value::fromInt(3));
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CTableSelect)->Arg(1000)->Arg(10000);

void BM_CTableJoin(benchmark::State& state) {
  TableFixture f(static_cast<size_t>(state.range(0)), 8);
  for (auto _ : state) {
    auto out = rel::join(f.db.table("T"), f.db.table("T"), {{1, 0}}, "J");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CTableJoin)->Arg(100)->Arg(400);

void BM_CTableProject(benchmark::State& state) {
  TableFixture f(static_cast<size_t>(state.range(0)), 8);
  for (auto _ : state) {
    auto out = rel::project(f.db.table("T"), {0}, "P");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CTableProject)->Arg(1000)->Arg(10000);

void BM_CTableDifference(benchmark::State& state) {
  TableFixture f(static_cast<size_t>(state.range(0)), 8);
  for (auto _ : state) {
    auto out = rel::difference(f.db.table("T"), f.db.table("T"), "D");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CTableDifference)->Arg(100)->Arg(200);

void BM_PruneUnsat(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TableFixture f(static_cast<size_t>(state.range(0)), 8);
    auto joined = rel::join(f.db.table("T"), f.db.table("T"), {{1, 0}}, "J");
    smt::NativeSolver solver(f.db.cvars());
    state.ResumeTiming();
    benchmark::DoNotOptimize(rel::pruneUnsat(joined, solver));
  }
}
BENCHMARK(BM_PruneUnsat)->Arg(100);

// ---- The loss-less payoff (§4): reachability over an FRR chain with k
// ---- protected links — one c-table query vs 2^k explicit worlds.

/// Chain 1 -> 2 -> ... -> k+1 where hop i is protected by bit bi_ and
/// detours through a dedicated backup node when the bit is 0.
void buildChain(rel::Database& db, size_t k) {
  net::FrrNetwork netw;
  for (size_t i = 1; i <= k; ++i) {
    std::string bit = "b" + std::to_string(i) + "_";
    int64_t from = static_cast<int64_t>(i);
    int64_t to = static_cast<int64_t>(i + 1);
    int64_t detour = static_cast<int64_t>(1000 + i);
    netw.add("f0", {from, to, bit, 1});
    netw.add("f0", {from, detour, bit, 0});
    netw.add("f0", {detour, to, "", 1});
  }
  netw.buildForwarding(db);
}

const char* kReach =
    "R(f,n1,n2) :- F(f,n1,n2).\n"
    "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n";

void BM_LossLessSingleCTableQuery(benchmark::State& state) {
  rel::Database db;
  buildChain(db, static_cast<size_t>(state.range(0)));
  dl::Program p = dl::parseProgram(kReach, db.cvars());
  for (auto _ : state) {
    smt::NativeSolver solver(db.cvars());
    auto res = fl::evalFaure(p, db, &solver, fl::EvalOptions{});
    benchmark::DoNotOptimize(res.relation("R").size());
  }
}
// k = 12 is feasible but takes minutes: on this adversarial chain the
// exact per-pair conditions genuinely contain 2^(j-i) cubes, so the
// symbolic representation grows as fast as the world count (see
// EXPERIMENTS.md for the honest discussion).
BENCHMARK(BM_LossLessSingleCTableQuery)->Arg(3)->Arg(6)->Arg(9);

void BM_LossLessWorldEnumeration(benchmark::State& state) {
  // The de-facto complete approach: enumerate every concrete data plane
  // (2^k of them) and run pure datalog on each.
  rel::Database db;
  buildChain(db, static_cast<size_t>(state.range(0)));
  CVarRegistry pureReg;
  dl::Program p = dl::parseProgram(kReach, pureReg);
  for (auto _ : state) {
    size_t total = 0;
    rel::forEachWorld(db, 1u << 20,
                      [&](const smt::Assignment&, const rel::World& world) {
                        rel::Database ground;
                        auto& table = ground.create(anySchema("F", 3));
                        for (const auto& row : world.at("F")) {
                          table.insertConcrete(row);
                        }
                        auto res = dl::evalPure(p, ground);
                        total += res.relation("R").size();
                      });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_LossLessWorldEnumeration)->Arg(3)->Arg(6)->Arg(9)->Arg(12);

// ---- Where the c-table approach wins decisively: many *independent*
// ---- uncertainty sources. N Figure-1 gadgets (one per flow), each with
// ---- its own 3 failure bits: the world count is 8^N while the c-table
// ---- representation and query cost stay linear in N.

void buildGadgets(rel::Database& db, size_t n) {
  net::FrrNetwork netw;
  for (size_t g = 0; g < n; ++g) {
    std::string flow = "f" + std::to_string(g);
    std::string x = "x" + std::to_string(g) + "_";
    std::string y = "y" + std::to_string(g) + "_";
    std::string z = "z" + std::to_string(g) + "_";
    netw.add(flow, {1, 2, x, 1});
    netw.add(flow, {1, 3, x, 0});
    netw.add(flow, {2, 3, y, 1});
    netw.add(flow, {2, 4, y, 0});
    netw.add(flow, {3, 5, z, 1});
    netw.add(flow, {3, 4, z, 0});
    netw.add(flow, {4, 5, "", 1});
  }
  netw.buildForwarding(db);
}

void BM_IndependentGadgetsSingleQuery(benchmark::State& state) {
  rel::Database db;
  buildGadgets(db, static_cast<size_t>(state.range(0)));
  dl::Program p = dl::parseProgram(kReach, db.cvars());
  for (auto _ : state) {
    smt::NativeSolver solver(db.cvars());
    auto res = fl::evalFaure(p, db, &solver, fl::EvalOptions{});
    benchmark::DoNotOptimize(res.relation("R").size());
  }
}
BENCHMARK(BM_IndependentGadgetsSingleQuery)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

void BM_IndependentGadgetsEnumeration(benchmark::State& state) {
  // 8^N worlds: already at N = 4 this is 4096 data planes; N = 16 would
  // be 2.8e14 — the benchmark caps where the complete approach stops
  // being runnable at all.
  rel::Database db;
  buildGadgets(db, static_cast<size_t>(state.range(0)));
  CVarRegistry pureReg;
  dl::Program p = dl::parseProgram(kReach, pureReg);
  for (auto _ : state) {
    size_t total = 0;
    bool ok = rel::forEachWorld(
        db, 1u << 20, [&](const smt::Assignment&, const rel::World& world) {
          rel::Database ground;
          auto& table = ground.create(anySchema("F", 3));
          for (const auto& row : world.at("F")) table.insertConcrete(row);
          auto res = dl::evalPure(p, ground);
          total += res.relation("R").size();
        });
    if (!ok) state.SkipWithError("world space too large to enumerate");
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_IndependentGadgetsEnumeration)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace faure

BENCHMARK_MAIN();
