// Reproduction of Table 4 (§6): running time of reachability analysis
// (q4-q8, Listing 2) on four RIB-derived forwarding states.
//
// The paper ran PostgreSQL + Z3 on a 1.4 GHz laptop against the
// route-views2 RIB (sizes 1000 / 10000 / 100000 / 922067 prefixes, '-' =
// over 2 hours). This harness runs the native engine on the synthetic
// RIB generator (DESIGN.md documents the substitution) and prints both
// the measured rows and the paper's rows for shape comparison:
//   - solver time exceeds relational ("sql") time per query class,
//   - q6 >> q8 >> q7 in tuple count (pattern selectivity),
//   - times and tuple counts grow roughly linearly in #prefixes.
//
// Sizes: 1000 and 10000 by default; set FAURE_TABLE4_FULL=1 to add
// 100000 (a few minutes) — the 922067-prefix point needs more memory
// than a CI box and is reported as extrapolation in EXPERIMENTS.md.
// FAURE_TABLE4_SIZES=10,20 overrides the size list entirely (CI smoke).
//
// Thread sweep: each size also runs under the parallel engine
// (EvalOptions::threads; DESIGN.md §7) for every count in
// FAURE_TABLE4_THREADS (default "1,4"). Thread count 1 is the paper
// row and the speedup baseline; other counts add
// `table4[N].threads[T].*` gauges and a `table4[N].speedup[T]` gauge
// (serial wall / threaded wall) to the run report. Each (size,threads)
// run regenerates the RIB so no run sees a predecessor's derived
// tables.
//
// Solver verdict cache: every (size,threads) run attaches a fresh
// VerdictCache sized by FAURE_SOLVER_CACHE (0 disables). The serial row
// records `table4[N].solver.cache.{hits,misses,evictions}` plus
// `table4[N].solver_checks_{logical,physical}` (physical = logical -
// hits: a hit replays a verdict without running the decision
// procedure), and each size gets one extra cache-off serial pass
// recorded as `table4[N].nocache.wall_seconds` so the gated baseline
// (tools/bench_check.py) tracks both configurations.
//
// Resource governance: the FAURE_DEADLINE / FAURE_MAX_* / FAURE_FAIL_AFTER
// knobs (util/resource_guard.hpp) budget each size's pipeline run; rows
// that hit a budget are annotated with the trip reason and count instead
// of the paper's silent '-'.
//
// Besides the console tables, the run is traced (obs/) and exported as a
// machine-readable run report — per-query sql/solver/tuple gauges and the
// full metric registry — to BENCH_table4.json (override the path with
// FAURE_BENCH_JSON; set it to "0" to skip the file). The report is the
// span-free bench summary; FAURE_BENCH_FULL_SPANS=1 restores the raw
// `table4[size=N]` span tree. FAURE_BENCH_TRACE=0 detaches the tracer
// entirely — the timing configuration for overhead comparisons (no
// report file).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "net/pipeline.hpp"
#include "obs/report.hpp"
#include "smt/verdict_cache.hpp"
#include "smt/z3_solver.hpp"
#include "util/resource_guard.hpp"
#include "util/timer.hpp"

using namespace faure;

namespace {

struct PaperRow {
  size_t prefixes;
  const char* q45sql;
  const char* q6sql;
  const char* q6z3;
  const char* q6tuples;
  const char* q7sql;
  const char* q7z3;
  const char* q7tuples;
  const char* q8sql;
  const char* q8z3;
  const char* q8tuples;
};

const PaperRow kPaper[] = {
    {1000, "0.625", "0.85", "796.35", "42425", "0.08", "0.27", "16", "0.15",
     "12.64", "828"},
    {10000, "5.75", "8.96", "-", "418224", "0.27", "3.41", "194", "1.8",
     "137.05", "8706"},
    {100000, "54.85", "113.48", "-", "4435862", "1.66", "25.22", "1387",
     "34.67", "1941.04", "86360"},
    {922067, "816.4", "4169.02", "-", "46503247", "11.1", "288.17", "16490",
     "267.05", "-", "858180"},
};

void printPaperTable() {
  std::printf(
      "---- paper (PostgreSQL + Z3, 1.4 GHz laptop, route-views2 RIB; "
      "seconds; '-' = over 2h) ----\n");
  std::printf("%9s | %9s | %9s %9s %9s | %9s %9s %7s | %9s %9s %8s\n",
              "#prefix", "q4-q5 sql", "q6 sql", "q6 Z3", "#tuples", "q7 sql",
              "q7 Z3", "#tuples", "q8 sql", "q8 Z3", "#tuples");
  for (const auto& r : kPaper) {
    std::printf("%9zu | %9s | %9s %9s %9s | %9s %9s %7s | %9s %9s %8s\n",
                r.prefixes, r.q45sql, r.q6sql, r.q6z3, r.q6tuples, r.q7sql,
                r.q7z3, r.q7tuples, r.q8sql, r.q8z3, r.q8tuples);
  }
}

/// Records one pipeline row into the registry under a size-scoped prefix,
/// e.g. `table4[1000].q6.solver_seconds`.
void recordRow(obs::Registry& reg, size_t n, const net::Table4Result& r,
               double wallSeconds) {
  const std::string base = "table4[" + std::to_string(n) + "].";
  auto query = [&](const char* name, const net::QueryTiming& t) {
    reg.gauge(base + name + ".sql_seconds").set(t.sqlSeconds);
    reg.gauge(base + name + ".solver_seconds").set(t.solverSeconds);
    reg.gauge(base + name + ".tuples").set(static_cast<double>(t.tuples));
  };
  query("q45", r.q45);
  query("q6", r.q6);
  query("q7", r.q7);
  query("q8", r.q8);
  reg.gauge(base + "wall_seconds").set(wallSeconds);
}

/// Records a threaded repeat of one size under
/// `table4[N].threads[T].*`, plus the serial-relative speedup.
void recordThreadedRow(obs::Registry& reg, size_t n, unsigned threads,
                       const net::Table4Result& r, double wallSeconds,
                       double serialWallSeconds) {
  const std::string base = "table4[" + std::to_string(n) + "].threads[" +
                           std::to_string(threads) + "].";
  reg.gauge(base + "wall_seconds").set(wallSeconds);
  reg.gauge(base + "solver_seconds")
      .set(r.q45.solverSeconds + r.q6.solverSeconds + r.q7.solverSeconds +
           r.q8.solverSeconds);
  if (serialWallSeconds > 0.0 && wallSeconds > 0.0) {
    reg.gauge("table4[" + std::to_string(n) + "].speedup[" +
              std::to_string(threads) + "]")
        .set(serialWallSeconds / wallSeconds);
  }
}

std::vector<size_t> parseList(const char* text) {
  std::vector<size_t> out;
  for (const char* p = text; *p != '\0';) {
    char* end = nullptr;
    unsigned long long n = std::strtoull(p, &end, 10);
    if (end == p) break;
    if (n > 0) out.push_back(static_cast<size_t>(n));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main() {
  printPaperTable();

  std::vector<size_t> sizes = {1000, 10000};
  if (const char* full = std::getenv("FAURE_TABLE4_FULL");
      full != nullptr && full[0] == '1') {
    sizes.push_back(100000);
  }
  if (const char* list = std::getenv("FAURE_TABLE4_SIZES");
      list != nullptr && list[0] != '\0') {
    sizes = parseList(list);
    if (sizes.empty()) sizes = {1000, 10000};
  }

  std::vector<size_t> threadCounts = {1, 4};
  if (const char* list = std::getenv("FAURE_TABLE4_THREADS");
      list != nullptr && list[0] != '\0') {
    threadCounts = parseList(list);
    if (threadCounts.empty()) threadCounts = {1};
  }

  obs::Tracer tracer;
  bool traceOn = true;
  if (const char* t = std::getenv("FAURE_BENCH_TRACE");
      t != nullptr && t[0] == '0') {
    traceOn = false;
  }

  std::printf(
      "\n---- this implementation (native engine + native solver, "
      "synthetic RIB) ----\n%s\n",
      net::table4Header().c_str());
  ResourceLimits limits = ResourceLimits::fromEnv();
  const size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
  util::Stopwatch watch;
  for (size_t n : sizes) {
    double serialWall = 0.0;
    for (size_t threads : threadCounts) {
      // Fresh state per (size, threads): a previous run stored its
      // derived R/T1/T2/T3 back into the database, which would seed —
      // and skew — a repeat on the same instance.
      net::RibConfig cfg;
      cfg.numPrefixes = n;
      rel::Database db;
      net::RibGenResult rib = net::generateRib(db, cfg);
      smt::NativeSolver solver(db.cvars());
      std::unique_ptr<smt::VerdictCache> cache;
      if (cacheEntries > 0) {
        cache = std::make_unique<smt::VerdictCache>(db.cvars(), cacheEntries);
        solver.setVerdictCache(cache.get());
      }
      ResourceGuard guard(limits);
      fl::EvalOptions opts;
      opts.threads = static_cast<unsigned>(threads);
      if (traceOn) opts.tracer = &tracer;
      if (guard.active()) {
        opts.guard = &guard;
        solver.setGuard(&guard);
        if (traceOn) {
          guard.onTrip([&tracer](Budget, const std::string& reason) {
            tracer.event("budget.trip", reason);
          });
        }
      }
      net::Table4Result r;
      {
        std::string tag = "table4[size=" + std::to_string(n) + "]";
        if (threads != 1) tag += "[threads=" + std::to_string(threads) + "]";
        obs::Span span(opts.tracer, tag);
        watch.lap();
        r = net::runTable4(db, rib, solver, opts);
      }
      double wall = watch.lap();
      if (threads == 1) {
        serialWall = wall;
        if (traceOn) recordRow(tracer.metrics(), n, r, wall);
        std::printf("%s\n", net::formatTable4Row(n, r).c_str());
        if (cache != nullptr) {
          // Serial accounting: every cache hit is one logical check that
          // skipped the decision procedure, so physical = logical - hits.
          const smt::VerdictCache::Stats cs = cache->stats();
          const uint64_t logical = solver.stats().checks;
          const uint64_t physical = logical - cs.hits;
          std::printf(
              "%9s cache: %llu/%llu physical/logical checks, %llu hits, "
              "%llu misses, %llu evictions\n",
              "", static_cast<unsigned long long>(physical),
              static_cast<unsigned long long>(logical),
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions));
          if (traceOn) {
            obs::Registry& reg = tracer.metrics();
            const std::string base = "table4[" + std::to_string(n) + "].";
            reg.gauge(base + "solver.cache.hits")
                .set(static_cast<double>(cs.hits));
            reg.gauge(base + "solver.cache.misses")
                .set(static_cast<double>(cs.misses));
            reg.gauge(base + "solver.cache.evictions")
                .set(static_cast<double>(cs.evictions));
            reg.gauge(base + "solver_checks_logical")
                .set(static_cast<double>(logical));
            reg.gauge(base + "solver_checks_physical")
                .set(static_cast<double>(physical));
          }
        }
      } else {
        if (traceOn) {
          recordThreadedRow(tracer.metrics(), n,
                            static_cast<unsigned>(threads), r, wall,
                            serialWall);
        }
        std::printf("%s   (threads=%zu", net::formatTable4Row(n, r).c_str(),
                    threads);
        if (serialWall > 0.0 && wall > 0.0) {
          std::printf(", %.2fx vs serial", serialWall / wall);
        }
        std::printf(")\n");
      }
      if (guard.active()) {
        std::printf(
            "%9s governed: %s, %llu eval budget-trips, %llu degraded solver "
            "checks\n",
            "", r.incomplete ? r.degradeReason.c_str() : "within budget",
            static_cast<unsigned long long>(r.budgetTrips),
            static_cast<unsigned long long>(solver.stats().budgetTrips));
      }
      std::fflush(stdout);
    }

    // Cache-off serial control: same size, no VerdictCache, so the
    // report carries both configurations for the gated baseline.
    if (cacheEntries > 0) {
      net::RibConfig cfg;
      cfg.numPrefixes = n;
      rel::Database db;
      net::RibGenResult rib = net::generateRib(db, cfg);
      smt::NativeSolver solver(db.cvars());
      ResourceGuard guard(limits);
      fl::EvalOptions opts;
      opts.threads = 1;
      if (traceOn) opts.tracer = &tracer;
      if (guard.active()) {
        opts.guard = &guard;
        solver.setGuard(&guard);
      }
      net::Table4Result r;
      {
        std::string tag = "table4[size=" + std::to_string(n) + "][nocache]";
        obs::Span span(opts.tracer, tag);
        watch.lap();
        r = net::runTable4(db, rib, solver, opts);
      }
      double wall = watch.lap();
      if (traceOn) {
        tracer.metrics()
            .gauge("table4[" + std::to_string(n) + "].nocache.wall_seconds")
            .set(wall);
        tracer.metrics()
            .gauge("table4[" + std::to_string(n) +
                   "].nocache.solver_checks_physical")
            .set(static_cast<double>(solver.stats().checks));
      }
      std::printf("%s   (cache off", net::formatTable4Row(n, r).c_str());
      if (serialWall > 0.0 && wall > 0.0) {
        std::printf(", cached serial is %.2fx", wall / serialWall);
      }
      std::printf(")\n");
      std::fflush(stdout);
    }
  }

  const char* jsonPath = std::getenv("FAURE_BENCH_JSON");
  if (jsonPath == nullptr) jsonPath = "BENCH_table4.json";
  if (traceOn && std::strcmp(jsonPath, "0") != 0) {
    obs::ReportMeta meta;
    meta.command = "bench.table4";
    std::string sizeList;
    for (size_t n : sizes) {
      if (!sizeList.empty()) sizeList += ",";
      sizeList += std::to_string(n);
    }
    meta.add("sizes", sizeList);
    std::string threadList;
    for (size_t t : threadCounts) {
      if (!threadList.empty()) threadList += ",";
      threadList += std::to_string(t);
    }
    meta.add("threads", threadList);
    meta.add("solver_cache", std::to_string(cacheEntries));
    std::ofstream out(jsonPath);
    if (out) {
      out << obs::benchReportJson(tracer, meta);
      std::printf("\nrun report written to %s\n", jsonPath);
    } else {
      std::fprintf(stderr, "cannot write '%s'\n", jsonPath);
    }
  }

  // The paper's own backend: per-derived-tuple Z3 checks. One (small)
  // size is enough to show the orders-of-magnitude gap that dominates
  // Table 4's solver columns.
  if (smt::z3Available()) {
    std::printf(
        "\n---- ablation: Z3 as the condition solver (paper-faithful "
        "backend) ----\n%s\n",
        net::table4Header().c_str());
    net::RibConfig cfg;
    cfg.numPrefixes = 100;
    rel::Database db;
    net::RibGenResult rib = net::generateRib(db, cfg);
    auto z3 = smt::makeZ3Solver(db.cvars());
    net::Table4Result r = net::runTable4(db, rib, *z3);
    std::printf("%s\n", net::formatTable4Row(cfg.numPrefixes, r).c_str());
    std::printf(
        "(solver column dominates sql exactly as in the paper's Table 4)\n");
  }
  return 0;
}
