// Evaluation-engine ablations (DESIGN.md): naive vs semi-naive fixed
// point, the solver pruning step on/off, merge subsumption on/off, and
// the cost of the c-table machinery on ground data (fauré-log vs the
// pure datalog engine).
#include <benchmark/benchmark.h>

#include "datalog/parser.hpp"
#include "datalog/pure_eval.hpp"
#include "faurelog/eval.hpp"
#include "net/rib_gen.hpp"
#include "util/rng.hpp"

namespace faure {
namespace {

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

const char* kTcProgram =
    "R(x,y) :- E(x,y).\n"
    "R(x,y) :- E(x,z), R(z,y).\n";

/// Ground random graph E over `nodes` vertices with ~2 edges per vertex.
void buildGroundGraph(rel::Database& db, size_t nodes) {
  util::Rng rng(11);
  auto& e = db.create(anySchema("E", 2));
  for (size_t i = 0; i < nodes * 2; ++i) {
    e.insertConcrete({Value::fromInt(static_cast<int64_t>(rng.below(nodes))),
                      Value::fromInt(static_cast<int64_t>(rng.below(nodes)))});
  }
}

void BM_PureDatalogTransitiveClosure(benchmark::State& state) {
  rel::Database db;
  buildGroundGraph(db, static_cast<size_t>(state.range(0)));
  CVarRegistry reg;
  dl::Program p = dl::parseProgram(kTcProgram, reg);
  for (auto _ : state) {
    auto res = dl::evalPure(p, db);
    benchmark::DoNotOptimize(res.stats.inserted);
  }
}
BENCHMARK(BM_PureDatalogTransitiveClosure)->Arg(64)->Arg(128);

void BM_PureDatalogNaive(benchmark::State& state) {
  rel::Database db;
  buildGroundGraph(db, static_cast<size_t>(state.range(0)));
  CVarRegistry reg;
  dl::Program p = dl::parseProgram(kTcProgram, reg);
  dl::PureEvalOptions opts;
  opts.semiNaive = false;
  for (auto _ : state) {
    auto res = dl::evalPure(p, db, opts);
    benchmark::DoNotOptimize(res.stats.inserted);
  }
}
BENCHMARK(BM_PureDatalogNaive)->Arg(64)->Arg(128);

void BM_FaureOnGroundData(benchmark::State& state) {
  // The c-table engine on purely ground data: measures the overhead of
  // condition plumbing relative to BM_PureDatalogTransitiveClosure.
  rel::Database db;
  buildGroundGraph(db, static_cast<size_t>(state.range(0)));
  dl::Program p = dl::parseProgram(kTcProgram, db.cvars());
  for (auto _ : state) {
    smt::NativeSolver solver(db.cvars());
    auto res = fl::evalFaure(p, db, &solver, fl::EvalOptions{});
    benchmark::DoNotOptimize(res.stats.inserted);
  }
}
BENCHMARK(BM_FaureOnGroundData)->Arg(64)->Arg(128);

/// Conditional reachability workload from the RIB generator.
struct CondFixture {
  rel::Database db;
  net::RibGenResult rib;
  dl::Program program;

  explicit CondFixture(size_t prefixes) {
    net::RibConfig cfg;
    cfg.numPrefixes = prefixes;
    rib = net::generateRib(db, cfg);
    program = dl::parseProgram(
        "R(f,n1,n2) :- F(f,n1,n2).\n"
        "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
        db.cvars());
  }
};

void runConditional(benchmark::State& state, bool semiNaive, bool prune,
                    bool subsume) {
  CondFixture fx(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    smt::NativeSolver solver(fx.db.cvars());
    fl::EvalOptions opts;
    opts.semiNaive = semiNaive;
    opts.pruneWithSolver = prune;
    opts.mergeSubsumption = subsume;
    auto res = fl::evalFaure(fx.program, fx.db, &solver, opts);
    state.counters["tuples"] =
        static_cast<double>(res.relation("R").size());
    benchmark::DoNotOptimize(res.stats.inserted);
  }
}

void BM_CondReachSemiNaive(benchmark::State& state) {
  runConditional(state, true, true, true);
}
BENCHMARK(BM_CondReachSemiNaive)->Arg(100)->Arg(300);

void BM_CondReachNaive(benchmark::State& state) {
  runConditional(state, false, true, true);
}
BENCHMARK(BM_CondReachNaive)->Arg(100)->Arg(300);

void BM_CondReachNoPrune(benchmark::State& state) {
  // Without the solver step, contradictory tuples survive and inflate
  // downstream work — the "Z3 step" ablation.
  runConditional(state, true, false, true);
}
BENCHMARK(BM_CondReachNoPrune)->Arg(100)->Arg(300);

void BM_CondReachNoSubsumption(benchmark::State& state) {
  runConditional(state, true, true, false);
}
BENCHMARK(BM_CondReachNoSubsumption)->Arg(100)->Arg(300);

void BM_CondReachSimplifyResults(benchmark::State& state) {
  // Post-hoc semantic simplification of every result condition
  // (smt/simplify.hpp): the price of small, canonical outputs.
  CondFixture fx(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    smt::NativeSolver solver(fx.db.cvars());
    fl::EvalOptions opts;
    opts.simplifyResults = true;
    auto res = fl::evalFaure(fx.program, fx.db, &solver, opts);
    benchmark::DoNotOptimize(res.stats.inserted);
  }
}
BENCHMARK(BM_CondReachSimplifyResults)->Arg(100);

}  // namespace
}  // namespace faure

BENCHMARK_MAIN();
