// Incremental what-if evaluation benchmark (DESIGN.md §10).
//
// Synthesises the two-team what-if workload at scale: a forwarding
// chain 1..N+1 for flow f0 (every seventh link protected by an l<k>_
// fast-reroute pair, as in Figure 1) plus an Acl relation with N/2
// policy rows, evaluated under the data/whatif_reach.fl program shape
// (recursive reachability units {R}, {Deliver} and policy units {Open},
// {Lockdown}). A seeded edit script (mostly security-team Acl churn
// with occasional forwarding-team link flaps — the paper's "what if"
// edits) is replayed twice per size:
//
//   full — the oracle: IncrementalEngine with incrementality off, so
//          every epoch reruns every stratum. Recorded as
//          `incremental[N].wall_seconds`; the smallest size's entry is
//          the calibration unit for tools/bench_check.py --family
//          incremental against bench/baseline_incremental.json.
//   inc  — the same engine with delta propagation on. Recorded as
//          `incremental[N].inc.wall_seconds`, plus a speedup gauge and
//          the refired/skipped rule counters from IncStats.
//
// Every epoch's derived tables are checksummed in both modes and the
// harness aborts on any divergence, so a bench run is also an oracle-
// contract check on a workload larger than the data/ fixtures.
//
// Knobs: FAURE_INC_SIZES (default "80,120"), FAURE_INC_EDITS (default
// 16), FAURE_SOLVER_CACHE (verdict cache entries; 0 disables),
// FAURE_BENCH_JSON (report path, default BENCH_incremental.json, "0"
// skips), FAURE_BENCH_TRACE=0 detaches the tracer. The report is the
// span-free bench summary; FAURE_BENCH_FULL_SPANS=1 restores the raw
// span tree for interactive profiling.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "datalog/parser.hpp"
#include "faurelog/incremental.hpp"
#include "faurelog/textio.hpp"
#include "obs/report.hpp"
#include "smt/solver.hpp"
#include "smt/verdict_cache.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace faure;

namespace {

constexpr const char* kProgram =
    "R(f,a,b) :- F(f,a,b).\n"
    "R(f,a,b) :- F(f,a,c), R(f,c,b).\n"
    "Deliver(f) :- R(f,1,%END%).\n"
    "Open(app,p) :- Acl(app,p), p < 1024.\n"
    "Lockdown(app) :- Acl(app,p), !Open(app,p).\n";

/// Protected links live only in this prefix of the chain. Every
/// protected link doubles the derivation alternatives OR-merged into
/// every downstream R tuple's condition, so the count must stay O(1)
/// as the chain grows — scaling it with N makes the formulas (and the
/// solver's enumeration) exponential in N, which would benchmark the
/// condition language rather than the incremental engine.
constexpr size_t kProtectedSpan = 42;  // 6 protected links (every 7th)

/// The synthetic network in the textual .fdb format (parsed fresh per
/// mode so neither run sees the other's interner or c-var state).
std::string makeDbText(size_t links) {
  std::string text;
  size_t prot = 0;
  for (size_t i = 0; i < links && i < kProtectedSpan; i += 7) {
    text += "var l" + std::to_string(prot++) + "_ int 0 1\n";
  }
  text += "table F(flow sym, from int, to int)\n";
  text += "table Acl(app sym, port int)\n";
  size_t detour = links + 2;  // spare node ids for reroute pairs
  prot = 0;
  for (size_t i = 0; i < links; ++i) {
    const std::string a = std::to_string(i + 1);
    const std::string b = std::to_string(i + 2);
    if (i % 7 == 0 && i < kProtectedSpan) {
      const std::string v = "l" + std::to_string(prot++) + "_";
      const std::string d = std::to_string(detour++);
      text += "row F f0 " + a + " " + b + " | " + v + " = 1\n";
      text += "row F f0 " + a + " " + d + " | " + v + " = 0\n";
      text += "row F f0 " + d + " " + b + "\n";
    } else {
      text += "row F f0 " + a + " " + b + "\n";
    }
  }
  util::Rng rng(0xac1dc0deULL);
  for (size_t i = 0; i < links / 2; ++i) {
    text += "row Acl app" + std::to_string(i) + " " +
            std::to_string(rng.range(20, 9000)) + "\n";
  }
  return text;
}

/// Seeded edit script in the `faure whatif` directive syntax: ~3/4
/// security-team Acl churn (leaves the recursive reachability units
/// untouched), ~1/4 forwarding-team link flaps (dirties them).
std::string makeEditScript(size_t links, size_t edits) {
  util::Rng rng(0x5eed5ULL + links);
  std::string text;
  for (size_t e = 0; e < edits; ++e) {
    if (rng.chance(0.75)) {
      const std::string app = "app" + std::to_string(rng.below(links / 2));
      const std::string port = std::to_string(rng.range(20, 9000));
      if (rng.chance(0.5)) {
        text += "+Acl(" + app + ", " + port + ")\n";
      } else {
        text += "-Acl(" + app + ", " + port + ")\n";
      }
    } else {
      // Flap an unprotected link: retract it, then (next trip through
      // the script, possibly) reinsert one nearby.
      size_t i = rng.below(links);
      if (i % 7 == 0) ++i;  // keep protected links stable
      const std::string a = std::to_string(i + 1);
      const std::string b = std::to_string(i + 2);
      if (rng.chance(0.5)) {
        text += "-F(f0, " + a + ", " + b + ")\n";
      } else {
        text += "+F(f0, " + a + ", " + b + ")\n";
      }
    }
  }
  return text;
}

struct ModeResult {
  double wallSeconds = 0.0;     // edit epochs only (epoch 0 excluded)
  double initialSeconds = 0.0;  // epoch 0 (identical work in both modes)
  fl::IncStats stats;
  std::vector<size_t> checksums;  // one per epoch, for the oracle check
  bool incomplete = false;
};

/// Replays the edit script in one mode; checksums every epoch's derived
/// tables so the caller can assert full/inc agreement byte-for-byte.
ModeResult runMode(size_t links, const std::string& dbText,
                   const std::string& editText, bool incremental,
                   obs::Tracer* tracer) {
  rel::Database db = fl::parseDatabase(dbText);
  std::string progText = kProgram;
  const std::string end = std::to_string(links + 1);
  progText.replace(progText.find("%END%"), 5, end);
  dl::Program program = dl::parseProgram(progText, db.cvars());
  std::vector<fl::Edit> edits = fl::parseEditScript(editText, db);

  smt::NativeSolver solver(db.cvars());
  std::unique_ptr<smt::VerdictCache> cache;
  const size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
  if (cacheEntries > 0) {
    cache = std::make_unique<smt::VerdictCache>(db.cvars(), cacheEntries);
    solver.setVerdictCache(cache.get());
  }

  fl::EvalOptions opts;
  if (tracer != nullptr) opts.tracer = tracer;
  fl::IncrementalEngine eng(std::move(program), db, &solver, opts);
  eng.setIncremental(incremental);

  ModeResult out;
  auto checksum = [&db](const fl::EvalResult& res) {
    size_t h = 0;
    for (const auto& [name, table] : res.idb) {
      h ^= std::hash<std::string>{}(name + "\n" +
                                    table.toString(&db.cvars())) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  };

  util::Stopwatch watch;
  watch.lap();
  fl::EvalResult res = eng.reevaluate();
  out.initialSeconds = watch.lap();
  out.checksums.push_back(checksum(res));
  if (res.incomplete) {
    out.incomplete = true;
    return out;
  }
  watch.lap();
  for (const fl::Edit& e : edits) {
    eng.apply(e);
    res = eng.reevaluate();
    out.checksums.push_back(checksum(res));
    if (res.incomplete) {
      out.incomplete = true;
      break;
    }
  }
  out.wallSeconds = watch.lap();
  out.stats = eng.stats();
  return out;
}

std::vector<size_t> parseList(const char* text) {
  std::vector<size_t> out;
  for (const char* p = text; *p != '\0';) {
    char* end = nullptr;
    unsigned long long n = std::strtoull(p, &end, 10);
    if (end == p) break;
    if (n > 0) out.push_back(static_cast<size_t>(n));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main() {
  std::vector<size_t> sizes = {80, 120};
  if (const char* list = std::getenv("FAURE_INC_SIZES");
      list != nullptr && list[0] != '\0') {
    sizes = parseList(list);
    if (sizes.empty()) sizes = {80, 120};
  }
  size_t edits = 16;
  if (const char* n = std::getenv("FAURE_INC_EDITS");
      n != nullptr && n[0] != '\0') {
    edits = static_cast<size_t>(std::strtoull(n, nullptr, 10));
    if (edits == 0) edits = 16;
  }

  obs::Tracer tracer;
  bool traceOn = true;
  if (const char* t = std::getenv("FAURE_BENCH_TRACE");
      t != nullptr && t[0] == '0') {
    traceOn = false;
  }

  std::printf(
      "---- incremental what-if vs full-recompute oracle "
      "(%zu edit epochs per size) ----\n",
      edits);
  std::printf("%8s | %10s %10s %8s | %8s %8s %8s\n", "#links", "full (s)",
              "inc (s)", "speedup", "refired", "skipped", "reused");

  bool diverged = false;
  for (size_t n : sizes) {
    const std::string dbText = makeDbText(n);
    const std::string editText = makeEditScript(n, edits);
    obs::Tracer* tp = traceOn ? &tracer : nullptr;
    ModeResult full, inc;
    {
      obs::Span span(tp, "incremental[size=" + std::to_string(n) + "][full]");
      full = runMode(n, dbText, editText, /*incremental=*/false, tp);
    }
    {
      obs::Span span(tp, "incremental[size=" + std::to_string(n) + "][inc]");
      inc = runMode(n, dbText, editText, /*incremental=*/true, tp);
    }
    if (full.incomplete || inc.incomplete) {
      std::fprintf(stderr, "size %zu: run incomplete, skipping row\n", n);
      continue;
    }
    if (full.checksums != inc.checksums) {
      std::fprintf(stderr,
                   "size %zu: ORACLE DIVERGENCE — incremental epochs are "
                   "not byte-identical to the full recompute\n",
                   n);
      diverged = true;
      continue;
    }
    const double speedup =
        inc.wallSeconds > 0.0 ? full.wallSeconds / inc.wallSeconds : 0.0;
    std::printf("%8zu | %10.4f %10.4f %7.2fx | %8llu %8llu %8llu\n", n,
                full.wallSeconds, inc.wallSeconds, speedup,
                static_cast<unsigned long long>(inc.stats.refiredRules),
                static_cast<unsigned long long>(inc.stats.skippedRules),
                static_cast<unsigned long long>(inc.stats.reusedStrata));
    std::fflush(stdout);
    if (traceOn) {
      obs::Registry& reg = tracer.metrics();
      const std::string base = "incremental[" + std::to_string(n) + "].";
      reg.gauge(base + "wall_seconds").set(full.wallSeconds);
      reg.gauge(base + "initial_seconds").set(full.initialSeconds);
      reg.gauge(base + "inc.wall_seconds").set(inc.wallSeconds);
      reg.gauge(base + "speedup").set(speedup);
      reg.gauge(base + "edits").set(static_cast<double>(edits));
      reg.gauge(base + "inc.refired_rules")
          .set(static_cast<double>(inc.stats.refiredRules));
      reg.gauge(base + "inc.skipped_rules")
          .set(static_cast<double>(inc.stats.skippedRules));
      reg.gauge(base + "inc.reused_strata")
          .set(static_cast<double>(inc.stats.reusedStrata));
      reg.gauge(base + "full.refired_rules")
          .set(static_cast<double>(full.stats.refiredRules));
    }
  }

  const char* jsonPath = std::getenv("FAURE_BENCH_JSON");
  if (jsonPath == nullptr) jsonPath = "BENCH_incremental.json";
  if (traceOn && std::strcmp(jsonPath, "0") != 0) {
    obs::ReportMeta meta;
    meta.command = "bench.incremental";
    std::string sizeList;
    for (size_t n : sizes) {
      if (!sizeList.empty()) sizeList += ",";
      sizeList += std::to_string(n);
    }
    meta.add("sizes", sizeList);
    meta.add("edits", std::to_string(edits));
    meta.add("solver_cache",
             std::to_string(smt::VerdictCache::capacityFromEnv()));
    std::ofstream out(jsonPath);
    if (out) {
      out << obs::benchReportJson(tracer, meta);
      std::printf("\nrun report written to %s\n", jsonPath);
    } else {
      std::fprintf(stderr, "cannot write '%s'\n", jsonPath);
    }
  }
  return diverged ? 1 : 0;
}
