// Solver micro-benchmarks: the native decision procedure vs the Z3
// backend on the condition corpora fauré actually generates (§6 step 3
// ablation). The gap explains the paper's Table-4 "Z3" columns.
#include <benchmark/benchmark.h>

#include "smt/solver.hpp"
#include "smt/verdict_cache.hpp"
#include "smt/z3_solver.hpp"
#include "util/rng.hpp"

namespace faure::smt {
namespace {

/// Corpus of reachability-style conditions: conjunctions/disjunctions of
/// bit equalities plus a linear pattern atom, like the q6 pipeline emits.
std::vector<Formula> reachabilityCorpus(const CVarRegistry& reg,
                                        const std::vector<CVarId>& bits,
                                        size_t n) {
  (void)reg;
  util::Rng rng(7);
  std::vector<Formula> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Formula> guards;
    size_t paths = 1 + rng.below(3);
    for (size_t p = 0; p < paths; ++p) {
      std::vector<Formula> conj;
      for (size_t b = 0; b < bits.size(); ++b) {
        if (rng.chance(0.6)) {
          conj.push_back(Formula::cmp(Value::cvar(bits[b]), CmpOp::Eq,
                                      Value::fromInt(rng.range(0, 1))));
        }
      }
      guards.push_back(Formula::conj(std::move(conj)));
    }
    Formula cond = Formula::disj(std::move(guards));
    // Failure pattern: x + y + z = 1.
    cond = Formula::conj2(
        cond, Formula::lin(LinTerm::make({{bits[0], 1}, {bits[1], 1},
                                          {bits[2], 1}},
                                         -1),
                           CmpOp::Eq));
    out.push_back(std::move(cond));
  }
  return out;
}

struct Fixture {
  CVarRegistry reg;
  std::vector<CVarId> bits;
  std::vector<Formula> corpus;

  Fixture() {
    for (int i = 0; i < 4; ++i) {
      bits.push_back(reg.declareInt("b" + std::to_string(i) + "_", 0, 1));
    }
    corpus = reachabilityCorpus(reg, bits, 256);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_NativeSolverReachabilityConditions(benchmark::State& state) {
  Fixture& f = fixture();
  NativeSolver solver(f.reg);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check(f.corpus[i++ % f.corpus.size()]));
  }
}
BENCHMARK(BM_NativeSolverReachabilityConditions);

void BM_Z3SolverReachabilityConditions(benchmark::State& state) {
  Fixture& f = fixture();
  auto z3 = makeZ3Solver(f.reg);
  if (z3 == nullptr) {
    state.SkipWithError("built without Z3");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z3->check(f.corpus[i++ % f.corpus.size()]));
  }
}
BENCHMARK(BM_Z3SolverReachabilityConditions);

void BM_NativeSolverCachedReachabilityConditions(benchmark::State& state) {
  // Steady state of the verdict cache on the same corpus: after one
  // sweep every check is a hit, so the loop measures pure replay cost
  // (lookup + consumeDelegated). The physical/logical counters quantify
  // how much decision-procedure work the cache removed.
  Fixture& f = fixture();
  NativeSolver solver(f.reg);
  VerdictCache cache(f.reg, size_t{1} << 16);
  solver.setVerdictCache(&cache);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check(f.corpus[i++ % f.corpus.size()]));
  }
  const VerdictCache::Stats cs = cache.stats();
  state.counters["logical_checks"] =
      static_cast<double>(solver.stats().checks);
  state.counters["physical_checks"] =
      static_cast<double>(solver.stats().checks - cs.hits);
  state.counters["cache_hits"] = static_cast<double>(cs.hits);
  state.counters["cache_misses"] = static_cast<double>(cs.misses);
}
BENCHMARK(BM_NativeSolverCachedReachabilityConditions);

void BM_NativeImplication(benchmark::State& state) {
  Fixture& f = fixture();
  NativeSolver solver(f.reg);
  size_t i = 0;
  for (auto _ : state) {
    const Formula& a = f.corpus[i % f.corpus.size()];
    const Formula& b = f.corpus[(i + 1) % f.corpus.size()];
    benchmark::DoNotOptimize(solver.implies(a, b));
    ++i;
  }
}
BENCHMARK(BM_NativeImplication);

void BM_NativeCachedImplication(benchmark::State& state) {
  // implies() memoizes per ordered (a, b) pair; the corpus gives 256
  // distinct pairs, so steady state is all hits.
  Fixture& f = fixture();
  NativeSolver solver(f.reg);
  VerdictCache cache(f.reg, size_t{1} << 16);
  solver.setVerdictCache(&cache);
  size_t i = 0;
  for (auto _ : state) {
    const Formula& a = f.corpus[i % f.corpus.size()];
    const Formula& b = f.corpus[(i + 1) % f.corpus.size()];
    benchmark::DoNotOptimize(solver.implies(a, b));
    ++i;
  }
  const VerdictCache::Stats cs = cache.stats();
  state.counters["logical_checks"] =
      static_cast<double>(solver.stats().checks);
  state.counters["cache_hits"] = static_cast<double>(cs.hits);
  state.counters["cache_misses"] = static_cast<double>(cs.misses);
}
BENCHMARK(BM_NativeCachedImplication);

void BM_NativeUnsatConjunction(benchmark::State& state) {
  // The common pruning case: a guard conjoined with its complement bit.
  Fixture& f = fixture();
  NativeSolver solver(f.reg);
  Formula contradiction = Formula::conj2(
      Formula::lin(LinTerm::make(
                       {{f.bits[0], 1}, {f.bits[1], 1}, {f.bits[2], 1}}, -3),
                   CmpOp::Eq),
      Formula::cmp(Value::cvar(f.bits[0]), CmpOp::Eq, Value::fromInt(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check(contradiction));
  }
}
BENCHMARK(BM_NativeUnsatConjunction);

void BM_DnfConversion(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(toDnf(f.corpus[i++ % f.corpus.size()], 4096));
  }
}
BENCHMARK(BM_DnfConversion);

void BM_ModelEnumeration(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    size_t models = 0;
    forEachModel(f.corpus[i++ % f.corpus.size()], f.reg, f.bits,
                 [&](const Assignment&) { ++models; });
    benchmark::DoNotOptimize(models);
  }
}
BENCHMARK(BM_ModelEnumeration);

}  // namespace
}  // namespace faure::smt

BENCHMARK_MAIN();
