// Quickstart: c-tables, fauré-log queries, and loss-less modeling on the
// paper's Table-2 example (the PATH' database).
//
//   $ ./quickstart
//
// Walks through: building a c-table with unknowns, running the q1/q2/q3
// queries of Listing 1, and demonstrating that the single c-table answer
// matches querying every possible world.
#include <cstdio>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "relational/worlds.hpp"

using namespace faure;

namespace {

rel::Schema anySchema(const std::string& name,
                      std::vector<std::string> attrs) {
  std::vector<rel::Attribute> as;
  for (auto& a : attrs) as.push_back({std::move(a), ValueType::Any});
  return rel::Schema(name, std::move(as));
}

}  // namespace

int main() {
  // ---------------------------------------------------------------- setup
  // PATH' = {P, C}: P is a c-table; x_ is an unknown path, y_ an unknown
  // destination (Table 2 of the paper).
  rel::Database db;
  Value abc = Value::path({"ABC"});
  Value adec = Value::path({"ADEC"});
  Value abe = Value::path({"ABE"});
  CVarId x = db.cvars().declare("x_", ValueType::Path, {abc, adec, abe});
  CVarId y = db.cvars().declare(
      "y_", ValueType::Prefix,
      {Value::parsePrefix("1.2.3.4"), Value::parsePrefix("1.2.3.5"),
       Value::parsePrefix("1.2.3.6")});

  auto& p = db.create(anySchema("P", {"dest", "path"}));
  using smt::CmpOp;
  using smt::Formula;
  // 1.2.3.4 routes over x_, which is either ABC or ADEC.
  p.insert({Value::parsePrefix("1.2.3.4"), Value::cvar(x)},
           Formula::disj2(Formula::cmp(Value::cvar(x), CmpOp::Eq, abc),
                          Formula::cmp(Value::cvar(x), CmpOp::Eq, adec)));
  // Any destination other than 1.2.3.4 uses ABE.
  p.insert({Value::cvar(y), abe},
           Formula::cmp(Value::cvar(y), CmpOp::Ne,
                        Value::parsePrefix("1.2.3.4")));
  // 1.2.3.6 uses ADEC unconditionally.
  p.insertConcrete({Value::parsePrefix("1.2.3.6"), adec});

  auto& c = db.create(anySchema("C", {"path", "cost"}));
  c.insertConcrete({abc, Value::fromInt(3)});
  c.insertConcrete({adec, Value::fromInt(4)});
  c.insertConcrete({abe, Value::fromInt(3)});

  std::printf("== The fauré database PATH' ==\n%s\n",
              db.toString().c_str());

  // ------------------------------------------------------------- queries
  // q2: cost of 1.2.3.4's path. Over the c-table the answer is
  // conditional: 3 when x_ = ABC, 4 when x_ = ADEC.
  auto q2 = fl::evalFaure(
      dl::parseProgram("Q2(z) :- P(1.2.3.4, w), C(w, z).", db.cvars()), db);
  std::printf("== q2: cost of 1.2.3.4's path ==\n%s\n",
              q2.relation("Q2").toString(&db.cvars()).c_str());

  // q3: the constant 1.2.3.5 pattern-matches the c-variable row (with the
  // condition y_ = 1.2.3.5 folded in): answer 3.
  auto q3 = fl::evalFaure(
      dl::parseProgram("Q3(z) :- P(1.2.3.5, w), C(w, z).", db.cvars()), db);
  std::printf("== q3: cost of 1.2.3.5's path ==\n%s\n",
              q3.relation("Q3").toString(&db.cvars()).c_str());

  // ----------------------------------------------------------- loss-less
  // The central claim: instantiating the c-table answer per world equals
  // evaluating the query on each possible world separately.
  size_t worlds = 0;
  size_t agreements = 0;
  rel::forEachWorld(
      db, 1u << 20, [&](const smt::Assignment& a, const rel::World& world) {
        ++worlds;
        std::set<std::vector<Value>> expected;
        for (const auto& prow : world.at("P")) {
          if (prow[0] != Value::parsePrefix("1.2.3.4")) continue;
          for (const auto& crow : world.at("C")) {
            if (crow[0] == prow[1]) expected.insert({crow[1]});
          }
        }
        if (rel::instantiate(q2.relation("Q2"), a) == expected) {
          ++agreements;
        }
      });
  std::printf(
      "== loss-less check ==\n"
      "possible worlds: %zu, worlds where the c-table answer matches the "
      "per-world answer: %zu\n",
      worlds, agreements);
  return worlds == agreements ? 0 : 1;
}
