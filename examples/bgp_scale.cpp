// The §6 evaluation pipeline at example scale: synthetic BGP-RIB-derived
// forwarding state, all-pairs reachability by recursion, and the three
// failure-pattern queries of Listing 2, with the paper's sql/solver
// timing split.
//
//   $ ./bgp_scale [numPrefixes]     (default 1000, the paper's smallest)
#include <cstdio>
#include <cstdlib>

#include "net/pipeline.hpp"
#include "util/strings.hpp"

using namespace faure;

int main(int argc, char** argv) {
  net::RibConfig cfg;
  cfg.numPrefixes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;

  std::printf("generating synthetic RIB: %zu prefixes, %zu paths each...\n",
              cfg.numPrefixes, cfg.pathsPerPrefix);
  rel::Database db;
  net::RibGenResult rib = net::generateRib(db, cfg);
  std::printf("forwarding table F: %zu conditional rows, %zu failure bits\n",
              rib.forwardingRows, rib.bits.size());

  smt::NativeSolver solver(db.cvars());
  net::Table4Result r = net::runTable4(db, rib, solver);

  std::printf("\n%s\n", net::table4Header().c_str());
  std::printf("%s\n", net::formatTable4Row(cfg.numPrefixes, r).c_str());

  std::printf("\nquery breakdown:\n");
  auto line = [](const char* name, const net::QueryTiming& t) {
    std::printf("  %-6s sql %-10s solver %-10s -> %llu tuples\n", name,
                util::formatSeconds(t.sqlSeconds).c_str(),
                util::formatSeconds(t.solverSeconds).c_str(),
                static_cast<unsigned long long>(t.tuples));
  };
  line("q4-q5", r.q45);
  line("q6", r.q6);
  line("q7", r.q7);
  line("q8", r.q8);

  std::printf("\nsolver stats: %llu checks, %llu unsat, %llu enumerations\n",
              static_cast<unsigned long long>(solver.stats().checks),
              static_cast<unsigned long long>(solver.stats().unsat),
              static_cast<unsigned long long>(solver.stats().enumerations));
  return 0;
}
