// Relative-complete verification in a multi-team enterprise network
// (§5, Listings 3 and 4).
//
//   $ ./multiteam_update
//
// A security team (firewalls, Cs) and a traffic-engineering team (load
// balancers, Clb) each maintain their own policy. A separate verification
// team must assure two network-wide constraints, T1 and T2, across a TE
// configuration change — with increasing levels of visibility:
//
//   level (i)   only the constraint definitions     -> subsumption test
//   level (ii)  the update is also known            -> rewrite + (i)
//   level (iii) the (partial) state is visible      -> direct evaluation
#include <cstdio>

#include "verify/verifier.hpp"

using namespace faure;
using namespace faure::verify;

int main() {
  CVarRegistry reg;
  // The unknown server of R&D traffic ranges over the deployed servers.
  reg.declare("y_", ValueType::Sym, {Value::sym("CS"), Value::sym("GS")});

  Constraint t1 = Constraint::parse(
      "T1", "panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).", reg);
  Constraint t2 = Constraint::parse(
      "T2", "panic :- R(R&D, y_, 7000), !Lb(R&D, y_).", reg);
  Constraint clb = Constraint::parse(
      "Clb",
      "panic :- Vt(x, y, p).\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), xt_ != Mkt, xt_ != R&D.\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), !Lb(xt_, CS).\n"
      "Vt(xt_, CS, pt_) :- R(xt_, CS, pt_), pt_ != 7000.\n",
      reg);
  Constraint cs = Constraint::parse(
      "Cs",
      "panic :- Vs(x, y, p).\n"
      "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), !Fw(xs_, ys_).\n"
      "Vs(xs_, ys_, ps_) :- R(xs_, ys_, ps_), ps_ != 80, ps_ != 344, "
      "ps_ != 7000.\n",
      reg);

  std::printf("Constraints under verification:\n");
  std::printf("  T1: Mkt -> CS traffic must pass a firewall\n");
  std::printf("  T2: R&D traffic (port 7000) must be load balanced\n");
  std::printf("Team policies known to hold:\n");
  std::printf("  Clb (TE team), Cs (security team)\n\n");

  RelativeVerifier verifier(reg);

  // ---- Category (i): constraint definitions only ----------------------
  std::printf("== category (i): constraint subsumption ==\n");
  Verdict v1 = verifier.checkSubsumption(t1, {clb, cs});
  std::printf("  T1 subsumed by {Clb, Cs}?  %s\n",
              std::string(verdictText(v1)).c_str());
  Verdict v2 = verifier.checkSubsumption(t2, {clb, cs});
  std::printf("  T2 subsumed by {Clb, Cs}?  %s\n",
              std::string(verdictText(v2)).c_str());
  if (v2 == Verdict::Unknown && verifier.lastWitness()) {
    std::printf("    uncovered case: %s\n",
                verifier.lastWitness()->toString(&reg).c_str());
  }

  // ---- Category (ii): the update becomes known ------------------------
  std::printf("\n== category (ii): update rewrite (Listing 4) ==\n");
  std::printf(
      "  update: remove load balancing (Mkt, CS); add (R&D, GS)\n");
  Update u;
  u.insert("Lb", {dl::Term::constant_(Value::sym("R&D")),
                  dl::Term::constant_(Value::sym("GS"))});
  u.remove("Lb", {dl::Term::constant_(Value::sym("Mkt")),
                  dl::Term::constant_(Value::sym("CS"))});
  Constraint t2p = rewriteForUpdate(t2, u);
  std::printf("  T2 rewritten to T2':\n");
  for (const auto& rule : t2p.program.rules) {
    std::printf("    %s\n", rule.toString(&reg).c_str());
  }
  Verdict v3 = verifier.checkWithUpdate(t2, {clb, cs}, u);
  std::printf("  T2 after the update?       %s\n",
              std::string(verdictText(v3)).c_str());

  // ---- Level (iii): a (partial) state is visible ----------------------
  std::printf("\n== level (iii): direct check on a partial state ==\n");
  rel::Database db;
  db.cvars() = reg;
  auto anySchema = [](const std::string& name, size_t arity) {
    std::vector<rel::Attribute> attrs(arity);
    for (size_t i = 0; i < arity; ++i) {
      attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
    }
    return rel::Schema(name, attrs);
  };
  db.create(anySchema("R", 3));
  db.create(anySchema("Fw", 2));
  db.create(anySchema("Lb", 2));
  CVarId y = db.cvars().find("y_");
  db.table("R").insertConcrete(
      {Value::sym("R&D"), Value::cvar(y), Value::fromInt(7000)});
  db.table("Lb").insertConcrete({Value::sym("R&D"), Value::sym("CS")});
  std::printf("  state: R&D sends port-7000 traffic to an unknown server "
              "y_; only (R&D, CS) is load balanced\n");
  smt::NativeSolver solver(db.cvars());
  StateCheck check = RelativeVerifier::checkOnState(t2, db, solver);
  std::printf("  T2 on this state?          %s\n",
              std::string(verdictText(check.verdict)).c_str());
  if (check.verdict == Verdict::ConditionallyViolated) {
    std::printf("    violated exactly when: %s\n",
                check.condition.toString(&db.cvars()).c_str());
  }

  bool asExpected = v1 == Verdict::Holds && v2 == Verdict::Unknown &&
                    v3 == Verdict::Holds &&
                    check.verdict == Verdict::ConditionallyViolated;
  std::printf("\n%s\n", asExpected
                            ? "All verdicts match the paper's §5 narrative."
                            : "UNEXPECTED verdicts — see above.");
  return asExpected ? 0 : 1;
}
