// Inter-domain routing with limited visibility (§1's second motivation):
// "the inability to obtain the BGP configuration inputs from external
// domains leaves most attempts to verify the global routing behavior
// futile" — unless the unknowns are modeled explicitly.
//
//   $ ./interdomain_visibility
//
// AS 1 (ours) originates a prefix. Its neighbors AS 2 and AS 3 have
// opaque export policies: whether they re-export our prefix to their own
// neighbors is unknown, encoded as {0,1} c-variables. Instead of giving
// up, fauré answers reachability questions *relative to* those unknowns,
// telling the operator exactly which foreign policy facts would decide
// the question.
#include <cstdio>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "verify/templates.hpp"
#include "verify/verifier.hpp"

using namespace faure;

int main() {
  rel::Database db;
  // Unknown export decisions of the opaque ASes:
  //   e23_: does AS2 export our routes to AS3?
  //   e24_: does AS2 export to AS4?     e34_: does AS3 export to AS4?
  CVarId e23 = db.cvars().declareInt("e23_", 0, 1);
  CVarId e24 = db.cvars().declareInt("e24_", 0, 1);
  CVarId e34 = db.cvars().declareInt("e34_", 0, 1);

  auto schema = [](const std::string& name, size_t arity) {
    std::vector<rel::Attribute> attrs(arity);
    for (size_t i = 0; i < arity; ++i) {
      attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
    }
    return rel::Schema(name, attrs);
  };

  // Origin(as, prefix): we originate 203.0.113.0/24.
  auto& origin = db.create(schema("Origin", 2));
  Value pfx = Value::parsePrefix("203.0.113.0/24");
  origin.insertConcrete({Value::fromInt(1), pfx});

  // Exports(a, b): a forwards learned routes to b. Our own exports are
  // known (we export to both neighbors); the foreign ones are partial.
  auto& exports = db.create(schema("Exports", 2));
  using smt::CmpOp;
  using smt::Formula;
  auto bit = [&](CVarId v) {
    return Formula::cmp(Value::cvar(v), CmpOp::Eq, Value::fromInt(1));
  };
  exports.insertConcrete({Value::fromInt(1), Value::fromInt(2)});
  exports.insertConcrete({Value::fromInt(1), Value::fromInt(3)});
  exports.insert({Value::fromInt(2), Value::fromInt(3)}, bit(e23));
  exports.insert({Value::fromInt(2), Value::fromInt(4)}, bit(e24));
  exports.insert({Value::fromInt(3), Value::fromInt(4)}, bit(e34));

  std::printf("== partial inter-domain state ==\n%s\n", db.toString().c_str());

  // Route propagation as recursive fauré-log.
  smt::NativeSolver solver(db.cvars());
  auto res = fl::evalFaure(
      dl::parseProgram("Carry(a, p) :- Origin(a, p).\n"
                       "Carry(b, p) :- Carry(a, p), Exports(a, b).\n",
                       db.cvars()),
      db, &solver, fl::EvalOptions{});
  db.put(res.relation("Carry"));

  std::printf("== who carries our prefix, and under what ==\n%s\n",
              res.relation("Carry").toString(&db.cvars()).c_str());

  // Does AS4 learn our prefix? The complete approach must answer "cannot
  // tell"; the partial approach answers *exactly when*.
  verify::Constraint reaches4 = verify::Constraint::parse(
      "AS4 learns our prefix", "panic :- !Carry(4, 203.0.113.0/24).",
      db.cvars());
  verify::StateCheck check =
      verify::RelativeVerifier::checkOnState(reaches4, db, solver);
  std::printf("constraint \"%s\": %s\n", reaches4.name.c_str(),
              std::string(verify::verdictText(check.verdict)).c_str());
  if (check.verdict == verify::Verdict::ConditionallyViolated) {
    std::printf(
        "  NOT learned exactly when: %s\n"
        "  -> to settle the question, learn these foreign export "
        "policies.\n",
        check.condition.toString(&db.cvars()).c_str());
  }

  // A stronger partial fact: suppose we learn (out of band) that AS3
  // does export to AS4. Re-check with that unknown pinned.
  db.table("Exports").pruneIf([&](const rel::Row& row) {
    return row.vals[0] == Value::fromInt(3) &&
           row.vals[1] == Value::fromInt(4);
  });
  db.table("Exports").insertConcrete({Value::fromInt(3), Value::fromInt(4)});
  auto res2 = fl::evalFaure(
      dl::parseProgram("Carry2(a, p) :- Origin(a, p).\n"
                       "Carry2(b, p) :- Carry2(a, p), Exports(a, b).\n",
                       db.cvars()),
      db, &solver, fl::EvalOptions{});
  db.put(res2.relation("Carry2"));
  verify::Constraint reaches4b = verify::Constraint::parse(
      "AS4 learns our prefix (after learning AS3 exports)",
      "panic :- !Carry2(4, 203.0.113.0/24).", db.cvars());
  verify::StateCheck check2 =
      verify::RelativeVerifier::checkOnState(reaches4b, db, solver);
  std::printf("constraint \"%s\": %s\n", reaches4b.name.c_str(),
              std::string(verify::verdictText(check2.verdict)).c_str());
  return 0;
}
