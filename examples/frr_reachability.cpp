// Fast-reroute reachability under link failures (§4, Figure 1 and
// Table 3; Listing 2 queries q4-q8).
//
//   $ ./frr_reachability
//
// Builds the Figure-1 network, computes all-pairs reachability once over
// the single c-table F, then asks failure-pattern questions without ever
// enumerating the 8 concrete data planes.
#include <cstdio>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "net/frr.hpp"

using namespace faure;

int main() {
  rel::Database db;
  net::FrrNetwork::figure1().buildForwarding(db);
  std::printf(
      "== F: all possible forwarding behaviours in one c-table ==\n"
      "   (x_, y_, z_ are the protected links (1,2), (2,3), (3,5);\n"
      "    1 = up, 0 = failed)\n%s\n",
      db.table("F").toString(&db.cvars()).c_str());

  smt::NativeSolver solver(db.cvars());

  // q4, q5: all-pairs reachability as a recursive fauré-log query.
  auto r = fl::evalFaure(
      dl::parseProgram("R(f,n1,n2) :- F(f,n1,n2).\n"
                       "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
                       db.cvars()),
      db, &solver, fl::EvalOptions{});
  std::printf("== R: reachability under all failure combinations ==\n%s\n",
              r.relation("R").toString(&db.cvars()).c_str());
  db.put(r.relation("R"));

  // q6: reachability under a 2-link failure (exactly one link up).
  auto t1 = fl::evalFaure(
      dl::parseProgram("T1(f,n1,n2) :- R(f,n1,n2), x_ + y_ + z_ = 1.",
                       db.cvars()),
      db, &solver, fl::EvalOptions{});
  std::printf("== q6 / T1: reachable pairs when exactly 2 links fail ==\n%s\n",
              t1.relation("T1").toString(&db.cvars()).c_str());
  db.put(t1.relation("T1"));

  // q7: 2 -> 5 under a 2-link failure where (2,3) is one of the failures.
  auto t2 = fl::evalFaure(
      dl::parseProgram("T2(f,2,5) :- T1(f,2,5), y_ = 0.", db.cvars()), db,
      &solver, fl::EvalOptions{});
  std::printf(
      "== q7 / T2: 2 -> 5 under 2-link failure, (2,3) failed ==\n%s\n",
      t2.relation("T2").toString(&db.cvars()).c_str());

  // q8: reachability from 1 with at least one of (2,3), (3,5) failed.
  auto t3 = fl::evalFaure(
      dl::parseProgram("T3(f,1,n2) :- R(f,1,n2), y_ + z_ < 2.", db.cvars()),
      db, &solver, fl::EvalOptions{});
  std::printf("== q8 / T3: reachability from 1, >=1 link failed ==\n%s\n",
              t3.relation("T3").toString(&db.cvars()).c_str());

  // Interpretation help: print where node 5 is reachable from node 1.
  smt::Formula c15 = db.table("R").conditionOf(
      {Value::sym("f0"), Value::fromInt(1), Value::fromInt(5)});
  std::printf("reach(1 -> 5) holds under: %s\n",
              c15.toString(&db.cvars()).c_str());
  std::printf("  ... which the solver reports as %s under all failures\n",
              solver.implies(smt::Formula::top(), c15) ? "VALID (always)"
                                                       : "conditional");
  return 0;
}
