// Datacenter scenario: policy checking over a Clos fabric with fast
// reroute — the workload class the paper's introduction motivates
// (datacenters / private WANs with failures), built from the library's
// topology generators and constraint templates.
//
//   $ ./datacenter_waypoint
//
// A 3-stage Clos fabric forwards host traffic toward a destination host;
// some links are protected and detour under failure. Without enumerating
// the exponential set of data planes, we check:
//   - reachability  ("host A must reach host B under every failure")
//   - isolation     ("host C must never reach host B")
//   - a waypoint    ("traffic must traverse spine 1")
// and print *conditional* verdicts where the answer depends on failures.
#include <cstdio>

#include "datalog/parser.hpp"
#include "faurelog/eval.hpp"
#include "net/topology.hpp"
#include "verify/templates.hpp"
#include "verify/verifier.hpp"

using namespace faure;

int main() {
  // Fabric: 2 spines, 3 leaves, 2 hosts per leaf.
  // Ids: spines 1-2, leaves 3-5, hosts 6-11 (6,7 on leaf 3; 8,9 on
  // leaf 4; 10,11 on leaf 5).
  net::Topology fabric = net::makeClos(2, 3, 2);
  std::printf("Clos fabric: %lld nodes, %zu links\n",
              static_cast<long long>(fabric.nodeCount),
              fabric.links.size());

  // Forwarding for one destination host (6), with protected links.
  net::FrrFromTopologyOptions opts;
  opts.protectedFraction = 1.0;  // protect every link that has a detour
  opts.seed = 3;
  net::FrrDerivation frr = net::deriveFrrTowards(fabric, /*dst=*/6, opts);
  rel::Database db;
  frr.network.buildForwarding(db);
  std::printf("forwarding rules: %zu rows, %zu failure bits (%s...)\n\n",
              db.table("F").size(), frr.bits.size(),
              frr.bits.empty() ? "-" : frr.bits[0].c_str());

  // All-pairs reachability, once, for all failure combinations.
  smt::NativeSolver solver(db.cvars());
  auto res = fl::evalFaure(
      dl::parseProgram("R(f,n1,n2) :- F(f,n1,n2).\n"
                       "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
                       db.cvars()),
      db, &solver, fl::EvalOptions{});
  db.put(res.relation("R"));

  auto report = [&](const verify::Constraint& c) {
    verify::StateCheck check =
        verify::RelativeVerifier::checkOnState(c, db, solver);
    std::printf("%-36s %s\n", c.name.c_str(),
                std::string(verify::verdictText(check.verdict)).c_str());
    if (check.verdict == verify::Verdict::ConditionallyViolated) {
      std::printf("%36s   violated iff %s\n", "",
                  check.condition.toString(&db.cvars()).c_str());
    }
  };

  std::printf("policy verdicts over ALL failure combinations at once:\n");
  // Host 8 (leaf 4) must reach host 6 under every failure combination.
  report(verify::mustReach(db.cvars(), "f0", 8, 6));
  // Host 10 (leaf 5) likewise.
  report(verify::mustReach(db.cvars(), "f0", 10, 6));
  // Spine 2 never forwards toward host 11 (not the destination of this
  // FRR tree): isolation holds trivially.
  report(verify::mustNotReach(db.cvars(), "f0", 2, 11));
  // Waypoint: traffic from host 8 to host 6 must traverse spine 1.
  report(verify::waypoint(db.cvars(), "f0", 8, 6, 1));
  // And via spine 2 — typically conditional: only when some primary
  // spine-1 path failed.
  report(verify::waypoint(db.cvars(), "f0", 8, 6, 2));
  return 0;
}
