# Empty compiler generated dependencies file for interdomain_visibility.
# This may be replaced when dependencies are built.
