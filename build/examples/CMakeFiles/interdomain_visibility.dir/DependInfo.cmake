
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/interdomain_visibility.cpp" "examples/CMakeFiles/interdomain_visibility.dir/interdomain_visibility.cpp.o" "gcc" "examples/CMakeFiles/interdomain_visibility.dir/interdomain_visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/faure_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/faure_net.dir/DependInfo.cmake"
  "/root/repo/build/src/faurelog/CMakeFiles/faure_faurelog.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/faure_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/faure_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/faure_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/faure_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faure_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
