file(REMOVE_RECURSE
  "CMakeFiles/interdomain_visibility.dir/interdomain_visibility.cpp.o"
  "CMakeFiles/interdomain_visibility.dir/interdomain_visibility.cpp.o.d"
  "interdomain_visibility"
  "interdomain_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interdomain_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
