file(REMOVE_RECURSE
  "CMakeFiles/multiteam_update.dir/multiteam_update.cpp.o"
  "CMakeFiles/multiteam_update.dir/multiteam_update.cpp.o.d"
  "multiteam_update"
  "multiteam_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiteam_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
