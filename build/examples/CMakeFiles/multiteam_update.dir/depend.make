# Empty dependencies file for multiteam_update.
# This may be replaced when dependencies are built.
