file(REMOVE_RECURSE
  "CMakeFiles/datacenter_waypoint.dir/datacenter_waypoint.cpp.o"
  "CMakeFiles/datacenter_waypoint.dir/datacenter_waypoint.cpp.o.d"
  "datacenter_waypoint"
  "datacenter_waypoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_waypoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
