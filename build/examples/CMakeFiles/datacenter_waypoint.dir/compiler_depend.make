# Empty compiler generated dependencies file for datacenter_waypoint.
# This may be replaced when dependencies are built.
