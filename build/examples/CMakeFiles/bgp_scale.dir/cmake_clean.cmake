file(REMOVE_RECURSE
  "CMakeFiles/bgp_scale.dir/bgp_scale.cpp.o"
  "CMakeFiles/bgp_scale.dir/bgp_scale.cpp.o.d"
  "bgp_scale"
  "bgp_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
