# Empty compiler generated dependencies file for bgp_scale.
# This may be replaced when dependencies are built.
