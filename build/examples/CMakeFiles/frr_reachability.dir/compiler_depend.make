# Empty compiler generated dependencies file for frr_reachability.
# This may be replaced when dependencies are built.
