file(REMOVE_RECURSE
  "CMakeFiles/frr_reachability.dir/frr_reachability.cpp.o"
  "CMakeFiles/frr_reachability.dir/frr_reachability.cpp.o.d"
  "frr_reachability"
  "frr_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frr_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
