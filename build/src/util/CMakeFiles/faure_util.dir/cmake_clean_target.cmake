file(REMOVE_RECURSE
  "libfaure_util.a"
)
