file(REMOVE_RECURSE
  "CMakeFiles/faure_util.dir/interner.cpp.o"
  "CMakeFiles/faure_util.dir/interner.cpp.o.d"
  "CMakeFiles/faure_util.dir/strings.cpp.o"
  "CMakeFiles/faure_util.dir/strings.cpp.o.d"
  "libfaure_util.a"
  "libfaure_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
