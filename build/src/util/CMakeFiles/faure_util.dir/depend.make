# Empty dependencies file for faure_util.
# This may be replaced when dependencies are built.
