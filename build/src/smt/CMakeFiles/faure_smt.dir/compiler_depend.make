# Empty compiler generated dependencies file for faure_smt.
# This may be replaced when dependencies are built.
