file(REMOVE_RECURSE
  "CMakeFiles/faure_smt.dir/formula.cpp.o"
  "CMakeFiles/faure_smt.dir/formula.cpp.o.d"
  "CMakeFiles/faure_smt.dir/simplify.cpp.o"
  "CMakeFiles/faure_smt.dir/simplify.cpp.o.d"
  "CMakeFiles/faure_smt.dir/solver.cpp.o"
  "CMakeFiles/faure_smt.dir/solver.cpp.o.d"
  "CMakeFiles/faure_smt.dir/transform.cpp.o"
  "CMakeFiles/faure_smt.dir/transform.cpp.o.d"
  "CMakeFiles/faure_smt.dir/z3_solver.cpp.o"
  "CMakeFiles/faure_smt.dir/z3_solver.cpp.o.d"
  "libfaure_smt.a"
  "libfaure_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
