
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/formula.cpp" "src/smt/CMakeFiles/faure_smt.dir/formula.cpp.o" "gcc" "src/smt/CMakeFiles/faure_smt.dir/formula.cpp.o.d"
  "/root/repo/src/smt/simplify.cpp" "src/smt/CMakeFiles/faure_smt.dir/simplify.cpp.o" "gcc" "src/smt/CMakeFiles/faure_smt.dir/simplify.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/smt/CMakeFiles/faure_smt.dir/solver.cpp.o" "gcc" "src/smt/CMakeFiles/faure_smt.dir/solver.cpp.o.d"
  "/root/repo/src/smt/transform.cpp" "src/smt/CMakeFiles/faure_smt.dir/transform.cpp.o" "gcc" "src/smt/CMakeFiles/faure_smt.dir/transform.cpp.o.d"
  "/root/repo/src/smt/z3_solver.cpp" "src/smt/CMakeFiles/faure_smt.dir/z3_solver.cpp.o" "gcc" "src/smt/CMakeFiles/faure_smt.dir/z3_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/value/CMakeFiles/faure_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faure_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
