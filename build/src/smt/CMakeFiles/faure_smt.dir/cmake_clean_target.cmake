file(REMOVE_RECURSE
  "libfaure_smt.a"
)
