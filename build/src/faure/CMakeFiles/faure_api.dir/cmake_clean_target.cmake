file(REMOVE_RECURSE
  "libfaure_api.a"
)
