# Empty dependencies file for faure_api.
# This may be replaced when dependencies are built.
