file(REMOVE_RECURSE
  "CMakeFiles/faure_api.dir/session.cpp.o"
  "CMakeFiles/faure_api.dir/session.cpp.o.d"
  "libfaure_api.a"
  "libfaure_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
