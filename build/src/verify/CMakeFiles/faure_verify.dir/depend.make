# Empty dependencies file for faure_verify.
# This may be replaced when dependencies are built.
