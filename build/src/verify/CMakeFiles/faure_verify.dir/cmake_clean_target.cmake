file(REMOVE_RECURSE
  "libfaure_verify.a"
)
