file(REMOVE_RECURSE
  "CMakeFiles/faure_verify.dir/containment.cpp.o"
  "CMakeFiles/faure_verify.dir/containment.cpp.o.d"
  "CMakeFiles/faure_verify.dir/templates.cpp.o"
  "CMakeFiles/faure_verify.dir/templates.cpp.o.d"
  "CMakeFiles/faure_verify.dir/unfold.cpp.o"
  "CMakeFiles/faure_verify.dir/unfold.cpp.o.d"
  "CMakeFiles/faure_verify.dir/update.cpp.o"
  "CMakeFiles/faure_verify.dir/update.cpp.o.d"
  "CMakeFiles/faure_verify.dir/verifier.cpp.o"
  "CMakeFiles/faure_verify.dir/verifier.cpp.o.d"
  "libfaure_verify.a"
  "libfaure_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
