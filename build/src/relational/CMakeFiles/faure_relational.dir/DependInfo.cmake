
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/algebra.cpp" "src/relational/CMakeFiles/faure_relational.dir/algebra.cpp.o" "gcc" "src/relational/CMakeFiles/faure_relational.dir/algebra.cpp.o.d"
  "/root/repo/src/relational/ctable.cpp" "src/relational/CMakeFiles/faure_relational.dir/ctable.cpp.o" "gcc" "src/relational/CMakeFiles/faure_relational.dir/ctable.cpp.o.d"
  "/root/repo/src/relational/database.cpp" "src/relational/CMakeFiles/faure_relational.dir/database.cpp.o" "gcc" "src/relational/CMakeFiles/faure_relational.dir/database.cpp.o.d"
  "/root/repo/src/relational/worlds.cpp" "src/relational/CMakeFiles/faure_relational.dir/worlds.cpp.o" "gcc" "src/relational/CMakeFiles/faure_relational.dir/worlds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/faure_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/faure_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faure_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
