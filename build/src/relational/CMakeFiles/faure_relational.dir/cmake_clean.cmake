file(REMOVE_RECURSE
  "CMakeFiles/faure_relational.dir/algebra.cpp.o"
  "CMakeFiles/faure_relational.dir/algebra.cpp.o.d"
  "CMakeFiles/faure_relational.dir/ctable.cpp.o"
  "CMakeFiles/faure_relational.dir/ctable.cpp.o.d"
  "CMakeFiles/faure_relational.dir/database.cpp.o"
  "CMakeFiles/faure_relational.dir/database.cpp.o.d"
  "CMakeFiles/faure_relational.dir/worlds.cpp.o"
  "CMakeFiles/faure_relational.dir/worlds.cpp.o.d"
  "libfaure_relational.a"
  "libfaure_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
