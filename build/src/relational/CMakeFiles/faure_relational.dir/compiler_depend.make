# Empty compiler generated dependencies file for faure_relational.
# This may be replaced when dependencies are built.
