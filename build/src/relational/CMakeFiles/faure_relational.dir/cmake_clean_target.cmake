file(REMOVE_RECURSE
  "libfaure_relational.a"
)
