file(REMOVE_RECURSE
  "libfaure_net.a"
)
