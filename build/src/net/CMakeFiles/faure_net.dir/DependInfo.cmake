
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/frr.cpp" "src/net/CMakeFiles/faure_net.dir/frr.cpp.o" "gcc" "src/net/CMakeFiles/faure_net.dir/frr.cpp.o.d"
  "/root/repo/src/net/pipeline.cpp" "src/net/CMakeFiles/faure_net.dir/pipeline.cpp.o" "gcc" "src/net/CMakeFiles/faure_net.dir/pipeline.cpp.o.d"
  "/root/repo/src/net/rib_gen.cpp" "src/net/CMakeFiles/faure_net.dir/rib_gen.cpp.o" "gcc" "src/net/CMakeFiles/faure_net.dir/rib_gen.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/faure_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/faure_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faurelog/CMakeFiles/faure_faurelog.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/faure_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/faure_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/faure_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/faure_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faure_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
