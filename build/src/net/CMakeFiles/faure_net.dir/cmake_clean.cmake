file(REMOVE_RECURSE
  "CMakeFiles/faure_net.dir/frr.cpp.o"
  "CMakeFiles/faure_net.dir/frr.cpp.o.d"
  "CMakeFiles/faure_net.dir/pipeline.cpp.o"
  "CMakeFiles/faure_net.dir/pipeline.cpp.o.d"
  "CMakeFiles/faure_net.dir/rib_gen.cpp.o"
  "CMakeFiles/faure_net.dir/rib_gen.cpp.o.d"
  "CMakeFiles/faure_net.dir/topology.cpp.o"
  "CMakeFiles/faure_net.dir/topology.cpp.o.d"
  "libfaure_net.a"
  "libfaure_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
