# Empty dependencies file for faure_net.
# This may be replaced when dependencies are built.
