# Empty compiler generated dependencies file for faure_datalog.
# This may be replaced when dependencies are built.
