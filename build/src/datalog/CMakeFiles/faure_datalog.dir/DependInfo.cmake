
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/analysis.cpp" "src/datalog/CMakeFiles/faure_datalog.dir/analysis.cpp.o" "gcc" "src/datalog/CMakeFiles/faure_datalog.dir/analysis.cpp.o.d"
  "/root/repo/src/datalog/ast.cpp" "src/datalog/CMakeFiles/faure_datalog.dir/ast.cpp.o" "gcc" "src/datalog/CMakeFiles/faure_datalog.dir/ast.cpp.o.d"
  "/root/repo/src/datalog/containment.cpp" "src/datalog/CMakeFiles/faure_datalog.dir/containment.cpp.o" "gcc" "src/datalog/CMakeFiles/faure_datalog.dir/containment.cpp.o.d"
  "/root/repo/src/datalog/lexer.cpp" "src/datalog/CMakeFiles/faure_datalog.dir/lexer.cpp.o" "gcc" "src/datalog/CMakeFiles/faure_datalog.dir/lexer.cpp.o.d"
  "/root/repo/src/datalog/parser.cpp" "src/datalog/CMakeFiles/faure_datalog.dir/parser.cpp.o" "gcc" "src/datalog/CMakeFiles/faure_datalog.dir/parser.cpp.o.d"
  "/root/repo/src/datalog/pure_eval.cpp" "src/datalog/CMakeFiles/faure_datalog.dir/pure_eval.cpp.o" "gcc" "src/datalog/CMakeFiles/faure_datalog.dir/pure_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/faure_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/faure_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/faure_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faure_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
