file(REMOVE_RECURSE
  "libfaure_datalog.a"
)
