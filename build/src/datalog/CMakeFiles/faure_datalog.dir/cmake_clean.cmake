file(REMOVE_RECURSE
  "CMakeFiles/faure_datalog.dir/analysis.cpp.o"
  "CMakeFiles/faure_datalog.dir/analysis.cpp.o.d"
  "CMakeFiles/faure_datalog.dir/ast.cpp.o"
  "CMakeFiles/faure_datalog.dir/ast.cpp.o.d"
  "CMakeFiles/faure_datalog.dir/containment.cpp.o"
  "CMakeFiles/faure_datalog.dir/containment.cpp.o.d"
  "CMakeFiles/faure_datalog.dir/lexer.cpp.o"
  "CMakeFiles/faure_datalog.dir/lexer.cpp.o.d"
  "CMakeFiles/faure_datalog.dir/parser.cpp.o"
  "CMakeFiles/faure_datalog.dir/parser.cpp.o.d"
  "CMakeFiles/faure_datalog.dir/pure_eval.cpp.o"
  "CMakeFiles/faure_datalog.dir/pure_eval.cpp.o.d"
  "libfaure_datalog.a"
  "libfaure_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
