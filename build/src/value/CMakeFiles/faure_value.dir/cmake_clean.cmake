file(REMOVE_RECURSE
  "CMakeFiles/faure_value.dir/value.cpp.o"
  "CMakeFiles/faure_value.dir/value.cpp.o.d"
  "libfaure_value.a"
  "libfaure_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
