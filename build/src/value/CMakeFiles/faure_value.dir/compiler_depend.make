# Empty compiler generated dependencies file for faure_value.
# This may be replaced when dependencies are built.
