file(REMOVE_RECURSE
  "libfaure_value.a"
)
