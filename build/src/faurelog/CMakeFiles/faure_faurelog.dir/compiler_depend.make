# Empty compiler generated dependencies file for faure_faurelog.
# This may be replaced when dependencies are built.
