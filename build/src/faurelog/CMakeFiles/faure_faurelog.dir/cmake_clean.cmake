file(REMOVE_RECURSE
  "CMakeFiles/faure_faurelog.dir/answers.cpp.o"
  "CMakeFiles/faure_faurelog.dir/answers.cpp.o.d"
  "CMakeFiles/faure_faurelog.dir/eval.cpp.o"
  "CMakeFiles/faure_faurelog.dir/eval.cpp.o.d"
  "CMakeFiles/faure_faurelog.dir/textio.cpp.o"
  "CMakeFiles/faure_faurelog.dir/textio.cpp.o.d"
  "libfaure_faurelog.a"
  "libfaure_faurelog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure_faurelog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
