
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faurelog/answers.cpp" "src/faurelog/CMakeFiles/faure_faurelog.dir/answers.cpp.o" "gcc" "src/faurelog/CMakeFiles/faure_faurelog.dir/answers.cpp.o.d"
  "/root/repo/src/faurelog/eval.cpp" "src/faurelog/CMakeFiles/faure_faurelog.dir/eval.cpp.o" "gcc" "src/faurelog/CMakeFiles/faure_faurelog.dir/eval.cpp.o.d"
  "/root/repo/src/faurelog/textio.cpp" "src/faurelog/CMakeFiles/faure_faurelog.dir/textio.cpp.o" "gcc" "src/faurelog/CMakeFiles/faure_faurelog.dir/textio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/faure_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/faure_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/faure_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/faure_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/faure_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
