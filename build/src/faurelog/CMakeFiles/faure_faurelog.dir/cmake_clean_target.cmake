file(REMOVE_RECURSE
  "libfaure_faurelog.a"
)
