file(REMOVE_RECURSE
  "CMakeFiles/faurelog_tests.dir/faurelog/answers_test.cpp.o"
  "CMakeFiles/faurelog_tests.dir/faurelog/answers_test.cpp.o.d"
  "CMakeFiles/faurelog_tests.dir/faurelog/eval_edge_test.cpp.o"
  "CMakeFiles/faurelog_tests.dir/faurelog/eval_edge_test.cpp.o.d"
  "CMakeFiles/faurelog_tests.dir/faurelog/eval_test.cpp.o"
  "CMakeFiles/faurelog_tests.dir/faurelog/eval_test.cpp.o.d"
  "CMakeFiles/faurelog_tests.dir/faurelog/lossless_property_test.cpp.o"
  "CMakeFiles/faurelog_tests.dir/faurelog/lossless_property_test.cpp.o.d"
  "CMakeFiles/faurelog_tests.dir/faurelog/options_matrix_test.cpp.o"
  "CMakeFiles/faurelog_tests.dir/faurelog/options_matrix_test.cpp.o.d"
  "CMakeFiles/faurelog_tests.dir/faurelog/paper_examples_test.cpp.o"
  "CMakeFiles/faurelog_tests.dir/faurelog/paper_examples_test.cpp.o.d"
  "CMakeFiles/faurelog_tests.dir/faurelog/textio_test.cpp.o"
  "CMakeFiles/faurelog_tests.dir/faurelog/textio_test.cpp.o.d"
  "faurelog_tests"
  "faurelog_tests.pdb"
  "faurelog_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faurelog_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
