# Empty compiler generated dependencies file for faurelog_tests.
# This may be replaced when dependencies are built.
