file(REMOVE_RECURSE
  "CMakeFiles/smt_tests.dir/smt/formula_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/formula_test.cpp.o.d"
  "CMakeFiles/smt_tests.dir/smt/project_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/project_test.cpp.o.d"
  "CMakeFiles/smt_tests.dir/smt/simplify_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/simplify_test.cpp.o.d"
  "CMakeFiles/smt_tests.dir/smt/solver_fallback_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/solver_fallback_test.cpp.o.d"
  "CMakeFiles/smt_tests.dir/smt/solver_property_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/solver_property_test.cpp.o.d"
  "CMakeFiles/smt_tests.dir/smt/solver_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/solver_test.cpp.o.d"
  "CMakeFiles/smt_tests.dir/smt/transform_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/transform_test.cpp.o.d"
  "CMakeFiles/smt_tests.dir/smt/z3_backend_test.cpp.o"
  "CMakeFiles/smt_tests.dir/smt/z3_backend_test.cpp.o.d"
  "smt_tests"
  "smt_tests.pdb"
  "smt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
