file(REMOVE_RECURSE
  "CMakeFiles/value_tests.dir/value/value_test.cpp.o"
  "CMakeFiles/value_tests.dir/value/value_test.cpp.o.d"
  "value_tests"
  "value_tests.pdb"
  "value_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
