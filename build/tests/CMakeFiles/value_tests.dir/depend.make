# Empty dependencies file for value_tests.
# This may be replaced when dependencies are built.
