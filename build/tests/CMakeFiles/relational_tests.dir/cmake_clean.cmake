file(REMOVE_RECURSE
  "CMakeFiles/relational_tests.dir/relational/algebra_test.cpp.o"
  "CMakeFiles/relational_tests.dir/relational/algebra_test.cpp.o.d"
  "CMakeFiles/relational_tests.dir/relational/ctable_test.cpp.o"
  "CMakeFiles/relational_tests.dir/relational/ctable_test.cpp.o.d"
  "CMakeFiles/relational_tests.dir/relational/database_test.cpp.o"
  "CMakeFiles/relational_tests.dir/relational/database_test.cpp.o.d"
  "CMakeFiles/relational_tests.dir/relational/worlds_test.cpp.o"
  "CMakeFiles/relational_tests.dir/relational/worlds_test.cpp.o.d"
  "relational_tests"
  "relational_tests.pdb"
  "relational_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
