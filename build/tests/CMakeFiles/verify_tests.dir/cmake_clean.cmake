file(REMOVE_RECURSE
  "CMakeFiles/verify_tests.dir/verify/containment_property_test.cpp.o"
  "CMakeFiles/verify_tests.dir/verify/containment_property_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/verify/listing4_test.cpp.o"
  "CMakeFiles/verify_tests.dir/verify/listing4_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/verify/scenario_test.cpp.o"
  "CMakeFiles/verify_tests.dir/verify/scenario_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/verify/templates_test.cpp.o"
  "CMakeFiles/verify_tests.dir/verify/templates_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/verify/unfold_test.cpp.o"
  "CMakeFiles/verify_tests.dir/verify/unfold_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/verify/update_test.cpp.o"
  "CMakeFiles/verify_tests.dir/verify/update_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/verify/verifier_test.cpp.o"
  "CMakeFiles/verify_tests.dir/verify/verifier_test.cpp.o.d"
  "verify_tests"
  "verify_tests.pdb"
  "verify_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
