# Empty compiler generated dependencies file for verify_tests.
# This may be replaced when dependencies are built.
