file(REMOVE_RECURSE
  "CMakeFiles/api_tests.dir/faure/session_test.cpp.o"
  "CMakeFiles/api_tests.dir/faure/session_test.cpp.o.d"
  "api_tests"
  "api_tests.pdb"
  "api_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
