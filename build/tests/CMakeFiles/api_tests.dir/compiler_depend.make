# Empty compiler generated dependencies file for api_tests.
# This may be replaced when dependencies are built.
