file(REMOVE_RECURSE
  "CMakeFiles/datalog_tests.dir/datalog/analysis_test.cpp.o"
  "CMakeFiles/datalog_tests.dir/datalog/analysis_test.cpp.o.d"
  "CMakeFiles/datalog_tests.dir/datalog/ast_test.cpp.o"
  "CMakeFiles/datalog_tests.dir/datalog/ast_test.cpp.o.d"
  "CMakeFiles/datalog_tests.dir/datalog/containment_test.cpp.o"
  "CMakeFiles/datalog_tests.dir/datalog/containment_test.cpp.o.d"
  "CMakeFiles/datalog_tests.dir/datalog/lexer_test.cpp.o"
  "CMakeFiles/datalog_tests.dir/datalog/lexer_test.cpp.o.d"
  "CMakeFiles/datalog_tests.dir/datalog/parser_robustness_test.cpp.o"
  "CMakeFiles/datalog_tests.dir/datalog/parser_robustness_test.cpp.o.d"
  "CMakeFiles/datalog_tests.dir/datalog/parser_test.cpp.o"
  "CMakeFiles/datalog_tests.dir/datalog/parser_test.cpp.o.d"
  "CMakeFiles/datalog_tests.dir/datalog/pure_eval_test.cpp.o"
  "CMakeFiles/datalog_tests.dir/datalog/pure_eval_test.cpp.o.d"
  "datalog_tests"
  "datalog_tests.pdb"
  "datalog_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
