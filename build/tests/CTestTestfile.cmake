# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/value_tests[1]_include.cmake")
include("/root/repo/build/tests/smt_tests[1]_include.cmake")
include("/root/repo/build/tests/relational_tests[1]_include.cmake")
include("/root/repo/build/tests/datalog_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/verify_tests[1]_include.cmake")
include("/root/repo/build/tests/faurelog_tests[1]_include.cmake")
include("/root/repo/build/tests/api_tests[1]_include.cmake")
add_test(cli_run_listing2 "/root/repo/build/tools/faure" "run" "/root/repo/data/figure1.fdb" "/root/repo/data/listing2.fl" "--relation" "T1")
set_tests_properties(cli_run_listing2 PROPERTIES  PASS_REGULAR_EXPRESSION "T1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_check_enterprise "/root/repo/build/tools/faure" "check" "/root/repo/data/enterprise.fdb" "/root/repo/data/t2_constraint.fl")
set_tests_properties(cli_check_enterprise PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;88;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_worlds_figure1 "/root/repo/build/tools/faure" "worlds" "/root/repo/data/figure1.fdb")
set_tests_properties(cli_worlds_figure1 PROPERTIES  PASS_REGULAR_EXPRESSION "8 possible worlds" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;95;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_fmt_roundtrip "/root/repo/build/tools/faure" "fmt" "/root/repo/data/figure1.fdb")
set_tests_properties(cli_fmt_roundtrip PROPERTIES  PASS_REGULAR_EXPRESSION "row F f0 4 5" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;100;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/faure" "bogus")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;105;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_db_out_pipeline "/root/repo/build/tools/faure" "run" "/root/repo/data/figure1.fdb" "/root/repo/data/listing2.fl" "--db-out" "/root/repo/build/derived.fdb")
set_tests_properties(cli_db_out_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;108;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_db_out_consume "/root/repo/build/tools/faure" "fmt" "/root/repo/build/derived.fdb")
set_tests_properties(cli_db_out_consume PROPERTIES  DEPENDS "cli_db_out_pipeline" PASS_REGULAR_EXPRESSION "table T1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;112;add_test;/root/repo/tests/CMakeLists.txt;0;")
