file(REMOVE_RECURSE
  "CMakeFiles/faure.dir/faure_cli.cpp.o"
  "CMakeFiles/faure.dir/faure_cli.cpp.o.d"
  "faure"
  "faure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
