# Empty compiler generated dependencies file for faure.
# This may be replaced when dependencies are built.
