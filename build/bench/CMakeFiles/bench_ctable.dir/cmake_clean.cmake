file(REMOVE_RECURSE
  "CMakeFiles/bench_ctable.dir/bench_ctable.cpp.o"
  "CMakeFiles/bench_ctable.dir/bench_ctable.cpp.o.d"
  "bench_ctable"
  "bench_ctable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ctable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
