# Empty compiler generated dependencies file for bench_ctable.
# This may be replaced when dependencies are built.
