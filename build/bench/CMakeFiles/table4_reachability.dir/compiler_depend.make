# Empty compiler generated dependencies file for table4_reachability.
# This may be replaced when dependencies are built.
