// Topology generators: structured networks with protected links, feeding
// the FRR builder. These provide the workloads the paper's introduction
// motivates (enterprise / datacenter fabrics) beyond the Figure-1 toy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frr.hpp"

namespace faure::net {

/// An undirected link in a generated topology.
struct Link {
  int64_t a = 0;
  int64_t b = 0;
};

/// A generated topology: nodes are dense ids starting at 1.
struct Topology {
  int64_t nodeCount = 0;
  std::vector<Link> links;

  /// Neighbors of `n` (both directions of the undirected links).
  std::vector<int64_t> neighbors(int64_t n) const;
};

/// Line 1 - 2 - ... - n.
Topology makeLine(int64_t n);

/// Ring over n nodes.
Topology makeRing(int64_t n);

/// Star: hub 1 connected to 2..n.
Topology makeStar(int64_t n);

/// 3-stage folded-Clos ("fat-tree-lite"): `spines` spine nodes each
/// connected to every one of `leaves` leaf nodes; hosts attach per leaf.
/// Node ids: spines first (1..spines), then leaves, then `hostsPerLeaf`
/// hosts per leaf.
Topology makeClos(int64_t spines, int64_t leaves, int64_t hostsPerLeaf);

/// Erdős–Rényi random graph: each pair linked with probability p
/// (deterministic in seed); guaranteed connected by a spanning line.
Topology makeRandom(int64_t n, double p, uint64_t seed);

struct FrrFromTopologyOptions {
  /// A link is protected (gets a failure bit + detour) with this
  /// probability (deterministic in seed).
  double protectedFraction = 0.5;
  uint64_t seed = 1;
  /// Flow name used for all rules.
  std::string flow = "f0";
};

/// Derives a fast-reroute configuration from a topology: shortest-path
/// forwarding towards `dst` (BFS), where each protected link on the tree
/// is guarded by a fresh bit and detours through an alternative neighbor
/// when failed (if one exists on a path to dst). Returns the network and
/// the names of the bits it declared.
struct FrrDerivation {
  FrrNetwork network;
  std::vector<std::string> bits;
};
FrrDerivation deriveFrrTowards(const Topology& topo, int64_t dst,
                               const FrrFromTopologyOptions& opts = {});

}  // namespace faure::net
