// Synthetic BGP-RIB workload generator — substitute for the
// route-views2.oregon-ix.net RIB used in §6 (see DESIGN.md).
//
// The paper's methodology, reproduced here: for each prefix, pick several
// AS paths; one is the primary, the rest are backups ordered by
// preference, and backup k is used exactly when the primary and all
// higher-preference backups have failed. Failure state is encoded by
// shared {0,1} c-variables; the first three are named x_, y_, z_ so that
// Listing 2's failure-pattern queries (q6-q8) apply verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relational/database.hpp"

namespace faure::net {

struct RibConfig {
  /// Number of prefixes (the sweep variable of Table 4).
  size_t numPrefixes = 1000;
  /// AS paths per prefix: 1 primary + (pathsPerPrefix-1) backups. The
  /// generator declares pathsPerPrefix-1 failure bits.
  size_t pathsPerPrefix = 5;
  /// AS numbers are drawn from [3, asPoolSize+2] (1 and 2 are hubs).
  size_t asPoolSize = 1000;
  /// AS-path length range (number of nodes).
  size_t minPathLen = 3;
  size_t maxPathLen = 5;
  /// Probability that a generated path is routed through hub ASes 1->2,
  /// making the q7-style point-to-point query meaningful.
  double hubProbability = 0.3;
  uint64_t seed = 42;
};

struct RibGenResult {
  /// Failure-bit variables, preference order (bits[0] is "x_").
  std::vector<CVarId> bits;
  /// Designated hub ASes (always 1 and 2).
  int64_t hubA = 1;
  int64_t hubB = 2;
  /// Rows materialized into F.
  size_t forwardingRows = 0;
};

/// Generates the forwarding c-table F(flow, from, to) for `cfg` into `db`
/// (flow = the prefix). Deterministic in cfg.seed.
RibGenResult generateRib(rel::Database& db, const RibConfig& cfg,
                         const std::string& tableName = "F");

/// Loads a RIB-like text file: one line per route,
/// `<prefix> <AS> <AS> ...` (first line per prefix = primary, later lines
/// = backups in preference order). Plug-in point for real RIB dumps.
/// Returns the same structure as generateRib.
RibGenResult loadRibText(rel::Database& db, const std::string& text,
                         const std::string& tableName = "F");

}  // namespace faure::net
