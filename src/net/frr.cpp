#include "net/frr.hpp"

#include "smt/formula.hpp"

namespace faure::net {

CVarId FrrNetwork::declareBit(rel::Database& db, const std::string& name) {
  CVarId id = db.cvars().find(name);
  if (id != CVarRegistry::kNotFound) return id;
  return db.cvars().declareInt(name, 0, 1);
}

rel::CTable& FrrNetwork::buildForwarding(rel::Database& db,
                                         const std::string& tableName) const {
  rel::CTable& f = db.has(tableName)
                       ? db.table(tableName)
                       : db.create(rel::Schema(
                             tableName, {{"flow", ValueType::Sym},
                                         {"from", ValueType::Int},
                                         {"to", ValueType::Int}}));
  for (const auto& [flow, rule] : rules_) {
    smt::Formula cond = smt::Formula::top();
    if (!rule.bit.empty()) {
      CVarId bit = declareBit(db, rule.bit);
      cond = smt::Formula::cmp(Value::cvar(bit), smt::CmpOp::Eq,
                               Value::fromInt(rule.whenBitIs));
    }
    f.insert({Value::sym(flow), Value::fromInt(rule.from),
              Value::fromInt(rule.to)},
             std::move(cond));
  }
  return f;
}

FrrNetwork FrrNetwork::figure1() {
  FrrNetwork net;
  const std::string f = "f0";
  net.add(f, {1, 2, "x_", 1});
  net.add(f, {1, 3, "x_", 0});
  net.add(f, {2, 3, "y_", 1});
  net.add(f, {2, 4, "y_", 0});
  net.add(f, {3, 5, "z_", 1});
  net.add(f, {3, 4, "z_", 0});
  net.add(f, {4, 5, "", 1});
  return net;
}

}  // namespace faure::net
