// The Table-4 experiment pipeline (§6): all-pairs reachability by
// recursion (q4-q5) followed by the three failure-pattern queries
// (q6-q8) of Listing 2, with per-query relational ("sql") and solver
// timing — the same columns the paper reports.
#pragma once

#include "faurelog/eval.hpp"
#include "net/rib_gen.hpp"

namespace faure::net {

struct QueryTiming {
  double sqlSeconds = 0.0;
  double solverSeconds = 0.0;
  uint64_t tuples = 0;
};

struct Table4Result {
  QueryTiming q45;  // recursion (all pairs, per flow)
  QueryTiming q6;   // reachability under 2-link failure
  QueryTiming q7;   // hubA -> hubB under 2-link failure incl. (2,3) down
  QueryTiming q8;   // reachability from hubA with at least 1 failure

  /// Resource governance (when EvalOptions::guard is set): how often a
  /// budget cut a query short, and the first trip's reason. Tuple counts
  /// above are then lower bounds (the paper's '-' entries, made precise).
  uint64_t budgetTrips = 0;
  bool incomplete = false;
  std::string degradeReason;
};

/// Runs the pipeline on a database holding the forwarding table F
/// produced by generateRib/loadRibText. Derived relations R, T1, T2, T3
/// are left in `db` for inspection. `opts` applies to every query.
Table4Result runTable4(rel::Database& db, const RibGenResult& rib,
                       smt::SolverBase& solver,
                       const fl::EvalOptions& opts = {});

/// Formats a Table4Result row like the paper's Table 4.
std::string formatTable4Row(size_t numPrefixes, const Table4Result& r);

/// The paper's Table-4 header.
std::string table4Header();

}  // namespace faure::net
