#include "net/topology.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace faure::net {

std::vector<int64_t> Topology::neighbors(int64_t n) const {
  std::vector<int64_t> out;
  for (const auto& l : links) {
    if (l.a == n) out.push_back(l.b);
    if (l.b == n) out.push_back(l.a);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Topology makeLine(int64_t n) {
  if (n < 1) throw EvalError("makeLine: need at least one node");
  Topology t;
  t.nodeCount = n;
  for (int64_t i = 1; i < n; ++i) t.links.push_back({i, i + 1});
  return t;
}

Topology makeRing(int64_t n) {
  if (n < 3) throw EvalError("makeRing: need at least three nodes");
  Topology t = makeLine(n);
  t.links.push_back({n, 1});
  return t;
}

Topology makeStar(int64_t n) {
  if (n < 2) throw EvalError("makeStar: need at least two nodes");
  Topology t;
  t.nodeCount = n;
  for (int64_t i = 2; i <= n; ++i) t.links.push_back({1, i});
  return t;
}

Topology makeClos(int64_t spines, int64_t leaves, int64_t hostsPerLeaf) {
  if (spines < 1 || leaves < 1 || hostsPerLeaf < 0) {
    throw EvalError("makeClos: bad shape");
  }
  Topology t;
  t.nodeCount = spines + leaves + leaves * hostsPerLeaf;
  for (int64_t s = 1; s <= spines; ++s) {
    for (int64_t l = 0; l < leaves; ++l) {
      t.links.push_back({s, spines + 1 + l});
    }
  }
  int64_t host = spines + leaves + 1;
  for (int64_t l = 0; l < leaves; ++l) {
    for (int64_t h = 0; h < hostsPerLeaf; ++h) {
      t.links.push_back({spines + 1 + l, host++});
    }
  }
  return t;
}

Topology makeRandom(int64_t n, double p, uint64_t seed) {
  Topology t = makeLine(n);  // spanning line keeps the graph connected
  util::Rng rng(seed);
  for (int64_t a = 1; a <= n; ++a) {
    for (int64_t b = a + 2; b <= n; ++b) {  // +2: line already has (i,i+1)
      if (rng.chance(p)) t.links.push_back({a, b});
    }
  }
  return t;
}

FrrDerivation deriveFrrTowards(const Topology& topo, int64_t dst,
                               const FrrFromTopologyOptions& opts) {
  if (dst < 1 || dst > topo.nodeCount) {
    throw EvalError("deriveFrrTowards: destination outside the topology");
  }
  // BFS distances from dst.
  std::vector<int64_t> dist(static_cast<size_t>(topo.nodeCount) + 1, -1);
  std::deque<int64_t> queue{dst};
  dist[static_cast<size_t>(dst)] = 0;
  while (!queue.empty()) {
    int64_t n = queue.front();
    queue.pop_front();
    for (int64_t nb : topo.neighbors(n)) {
      if (dist[static_cast<size_t>(nb)] == -1) {
        dist[static_cast<size_t>(nb)] = dist[static_cast<size_t>(n)] + 1;
        queue.push_back(nb);
      }
    }
  }

  util::Rng rng(opts.seed);
  FrrDerivation out;
  for (int64_t n = 1; n <= topo.nodeCount; ++n) {
    if (n == dst || dist[static_cast<size_t>(n)] == -1) continue;
    // Downhill neighbors (closer to dst), in id order for determinism.
    std::vector<int64_t> downhill;
    for (int64_t nb : topo.neighbors(n)) {
      if (dist[static_cast<size_t>(nb)] ==
          dist[static_cast<size_t>(n)] - 1) {
        downhill.push_back(nb);
      }
    }
    int64_t primary = downhill.front();
    bool isProtected =
        downhill.size() > 1 && rng.chance(opts.protectedFraction);
    if (!isProtected) {
      out.network.add(opts.flow, {n, primary, "", 1});
      continue;
    }
    std::string bit = "l" + std::to_string(n) + "_";
    out.bits.push_back(bit);
    out.network.add(opts.flow, {n, primary, bit, 1});
    out.network.add(opts.flow, {n, downhill[1], bit, 0});
  }
  return out;
}

}  // namespace faure::net
