#include "net/pipeline.hpp"

#include <cstdio>

#include "datalog/parser.hpp"

namespace faure::net {

namespace {

QueryTiming timingOf(const fl::EvalResult& res, const std::string& pred) {
  QueryTiming t;
  t.sqlSeconds = res.stats.sqlSeconds;
  t.solverSeconds = res.stats.solverSeconds;
  t.tuples = res.relation(pred).size();
  return t;
}

/// Annotates a closed per-query span with the paper's Table-4 columns.
void noteTiming(obs::Span& span, const QueryTiming& t) {
  if (!span) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", t.sqlSeconds);
  span.note("sql_seconds", buf);
  std::snprintf(buf, sizeof(buf), "%.6f", t.solverSeconds);
  span.note("solver_seconds", buf);
  span.note("tuples", std::to_string(t.tuples));
}

void noteDegradation(const fl::EvalResult& res, Table4Result& out) {
  out.budgetTrips += res.stats.budgetTrips;
  if (res.incomplete && !out.incomplete) {
    out.incomplete = true;
    out.degradeReason = res.degradeReason;
  }
}

}  // namespace

Table4Result runTable4(rel::Database& db, const RibGenResult& rib,
                       smt::SolverBase& solver, const fl::EvalOptions& opts) {
  Table4Result out;
  obs::Span pipelineSpan(opts.tracer, "table4");

  // q4-q5: all-pairs reachability by recursion.
  {
    obs::Span span(opts.tracer, "table4.q45");
    auto res = fl::evalFaure(
        dl::parseProgram("R(f,n1,n2) :- F(f,n1,n2).\n"
                         "R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).\n",
                         db.cvars()),
        db, &solver, opts);
    out.q45 = timingOf(res, "R");
    noteTiming(span, out.q45);
    noteDegradation(res, out);
    db.put(std::move(res.idb.at("R")));
  }
  // q6: reachability under a 2-link failure (exactly one of x_,y_,z_ up).
  {
    obs::Span span(opts.tracer, "table4.q6");
    auto res = fl::evalFaure(
        dl::parseProgram(
            "T1(f,n1,n2) :- R(f,n1,n2), x_ + y_ + z_ = 1.", db.cvars()),
        db, &solver, opts);
    out.q6 = timingOf(res, "T1");
    noteTiming(span, out.q6);
    noteDegradation(res, out);
    db.put(std::move(res.idb.at("T1")));
  }
  // q7: hubA -> hubB under the q6 pattern where (2,3) — bit y_ — failed.
  {
    obs::Span span(opts.tracer, "table4.q7");
    std::string text = "T2(f," + std::to_string(rib.hubA) + "," +
                       std::to_string(rib.hubB) + ") :- T1(f," +
                       std::to_string(rib.hubA) + "," +
                       std::to_string(rib.hubB) + "), y_ = 0.";
    auto res = fl::evalFaure(dl::parseProgram(text, db.cvars()), db, &solver,
                             opts);
    out.q7 = timingOf(res, "T2");
    noteTiming(span, out.q7);
    noteDegradation(res, out);
    db.put(std::move(res.idb.at("T2")));
  }
  // q8: reachability from hubA with at least one of y_, z_ failed.
  {
    obs::Span span(opts.tracer, "table4.q8");
    std::string text = "T3(f," + std::to_string(rib.hubA) +
                       ",n2) :- R(f," + std::to_string(rib.hubA) +
                       ",n2), y_ + z_ < 2.";
    auto res = fl::evalFaure(dl::parseProgram(text, db.cvars()), db, &solver,
                             opts);
    out.q8 = timingOf(res, "T3");
    noteTiming(span, out.q8);
    noteDegradation(res, out);
    db.put(std::move(res.idb.at("T3")));
  }
  if (pipelineSpan && out.incomplete) {
    pipelineSpan.note("incomplete", out.degradeReason);
  }
  return out;
}

std::string table4Header() {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%9s | %9s | %9s %9s %9s | %9s %9s %7s | %9s %9s %8s",
                "#prefix", "q4-q5 sql", "q6 sql", "q6 solver", "#tuples",
                "q7 sql", "q7 solver", "#tuples", "q8 sql", "q8 solver",
                "#tuples");
  return buf;
}

std::string formatTable4Row(size_t numPrefixes, const Table4Result& r) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%9zu | %8.2fs | %8.2fs %8.2fs %9llu | %8.3fs %8.3fs %7llu | %8.2fs "
      "%8.2fs %8llu",
      numPrefixes, r.q45.sqlSeconds + r.q45.solverSeconds, r.q6.sqlSeconds,
      r.q6.solverSeconds, static_cast<unsigned long long>(r.q6.tuples),
      r.q7.sqlSeconds, r.q7.solverSeconds,
      static_cast<unsigned long long>(r.q7.tuples), r.q8.sqlSeconds,
      r.q8.solverSeconds, static_cast<unsigned long long>(r.q8.tuples));
  return buf;
}

}  // namespace faure::net
