#include "net/rib_gen.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "smt/formula.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace faure::net {

namespace {

const char* kBitNames[] = {"x_", "y_", "z_"};

std::vector<CVarId> declareBits(rel::Database& db, size_t count) {
  std::vector<CVarId> bits;
  for (size_t i = 0; i < count; ++i) {
    std::string name = i < 3 ? kBitNames[i] : "b" + std::to_string(i) + "_";
    CVarId id = db.cvars().find(name);
    if (id == CVarRegistry::kNotFound) {
      id = db.cvars().declareInt(name, 0, 1);
    }
    bits.push_back(id);
  }
  return bits;
}

rel::CTable& forwardingTable(rel::Database& db, const std::string& name) {
  if (db.has(name)) return db.table(name);
  return db.create(rel::Schema(name, {{"flow", ValueType::Prefix},
                                      {"from", ValueType::Int},
                                      {"to", ValueType::Int}}));
}

/// Guard for the path at preference position `rank` among `total` paths:
/// the primary (rank 0) needs bit0 = 1; backup k needs bits 0..k-1 = 0
/// and bit k = 1; the least-preferred path is the last resort, used when
/// all bits are 0.
smt::Formula pathGuard(const std::vector<CVarId>& bits, size_t rank,
                       size_t total) {
  std::vector<smt::Formula> parts;
  for (size_t i = 0; i < rank; ++i) {
    parts.push_back(smt::Formula::cmp(Value::cvar(bits[i]), smt::CmpOp::Eq,
                                      Value::fromInt(0)));
  }
  if (rank + 1 < total) {
    parts.push_back(smt::Formula::cmp(Value::cvar(bits[rank]),
                                      smt::CmpOp::Eq, Value::fromInt(1)));
  }
  return smt::Formula::conj(std::move(parts));
}

void emitPath(rel::CTable& f, const Value& flow,
              const std::vector<int64_t>& path, const smt::Formula& guard) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    f.insert({flow, Value::fromInt(path[i]), Value::fromInt(path[i + 1])},
             guard);
  }
}

}  // namespace

RibGenResult generateRib(rel::Database& db, const RibConfig& cfg,
                         const std::string& tableName) {
  if (cfg.pathsPerPrefix < 2) {
    throw EvalError("RibConfig: need at least a primary and one backup");
  }
  util::Rng rng(cfg.seed);
  RibGenResult result;
  result.bits = declareBits(db, cfg.pathsPerPrefix - 1);
  rel::CTable& f = forwardingTable(db, tableName);

  for (size_t p = 0; p < cfg.numPrefixes; ++p) {
    // Prefix 10.a.b.0/24 — unique per p.
    uint32_t addr = (10u << 24) | (static_cast<uint32_t>(p) << 8);
    Value flow = Value::prefix(addr, 24);
    // A per-prefix destination AS shared by all its paths.
    int64_t dst = 3 + static_cast<int64_t>(rng.below(cfg.asPoolSize));
    for (size_t rank = 0; rank < cfg.pathsPerPrefix; ++rank) {
      size_t len = static_cast<size_t>(
          rng.range(static_cast<int64_t>(cfg.minPathLen),
                    static_cast<int64_t>(cfg.maxPathLen)));
      std::vector<int64_t> path;
      if (rng.chance(cfg.hubProbability)) {
        path.push_back(result.hubA);
        path.push_back(result.hubB);
      }
      while (path.size() + 1 < len) {
        int64_t as = 3 + static_cast<int64_t>(rng.below(cfg.asPoolSize));
        if (!path.empty() && path.back() == as) continue;
        if (as == dst) continue;
        path.push_back(as);
      }
      path.push_back(dst);
      if (path.size() < 2) path.insert(path.begin(), result.hubA);
      emitPath(f, flow, path, pathGuard(result.bits, rank,
                                        cfg.pathsPerPrefix));
    }
  }
  result.forwardingRows = f.size();
  return result;
}

RibGenResult loadRibText(rel::Database& db, const std::string& text,
                         const std::string& tableName) {
  // First pass: group routes per prefix to learn the backup count.
  std::map<std::string, std::vector<std::vector<int64_t>>> routes;
  size_t maxPaths = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    std::string prefix;
    fields >> prefix;
    std::vector<int64_t> path;
    int64_t as = 0;
    while (fields >> as) path.push_back(as);
    if (path.size() < 2) {
      throw EvalError("RIB line needs a prefix and at least two ASes: " +
                      line);
    }
    auto& list = routes[prefix];
    list.push_back(std::move(path));
    maxPaths = std::max(maxPaths, list.size());
  }
  if (routes.empty()) throw EvalError("empty RIB input");

  RibGenResult result;
  result.bits = declareBits(db, std::max<size_t>(maxPaths, 2) - 1);
  rel::CTable& f = forwardingTable(db, tableName);
  for (const auto& [prefix, paths] : routes) {
    Value flow = Value::parsePrefix(prefix);
    for (size_t rank = 0; rank < paths.size(); ++rank) {
      emitPath(f, flow, paths[rank],
               pathGuard(result.bits, rank, paths.size()));
    }
  }
  result.forwardingRows = f.size();
  return result;
}

}  // namespace faure::net
