// Fast-reroute network modeling (§4, Figure 1).
//
// A FrrNetwork describes a set of forwarding rules in which some links are
// "protected": each protected link carries a failure bit (a {0,1}-domain
// c-variable; 1 = link up) and a backup next hop used when the bit is 0.
// buildForwarding() emits the single c-table F(flow, from, to) that —
// exactly as the paper argues — captures every failure combination at
// once.
#pragma once

#include <string>
#include <vector>

#include "relational/database.hpp"

namespace faure::net {

/// One forwarding decision at a node for a flow.
struct ForwardingRule {
  int64_t from = 0;
  int64_t to = 0;
  /// Name of the failure bit guarding this hop; empty = unconditional.
  std::string bit;
  /// Hop is used when the bit equals this value (1 = primary on a
  /// protected link, 0 = backup detour).
  int64_t whenBitIs = 1;
};

/// A fast-reroute configuration for a set of flows.
class FrrNetwork {
 public:
  /// Declares a protected link's failure bit in `db` (domain {0,1}).
  /// Returns its id. Idempotent per name.
  static CVarId declareBit(rel::Database& db, const std::string& name);

  /// Adds a rule for `flow`.
  void add(const std::string& flow, ForwardingRule rule) {
    rules_.emplace_back(flow, std::move(rule));
  }

  /// Materializes F(flow, from, to) into `db`, declaring any referenced
  /// bits. Table name defaults to "F".
  rel::CTable& buildForwarding(rel::Database& db,
                               const std::string& tableName = "F") const;

  /// The paper's Figure 1 network: nodes 1..5, protected links (1,2),
  /// (2,3), (3,5) with bits x_, y_, z_ and backups 1->3, 2->4, 3->4;
  /// (4,5) unprotected. One flow "f0".
  static FrrNetwork figure1();

 private:
  std::vector<std::pair<std::string, ForwardingRule>> rules_;
};

}  // namespace faure::net
