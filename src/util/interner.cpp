#include "util/interner.hpp"

#include <cassert>

namespace faure::util {

SymbolTable& SymbolTable::instance() {
  static SymbolTable table;
  return table;
}

SymbolId SymbolTable::intern(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(strings_.size());
  strings_.emplace_back(text);
  // The key view points into the deque element, whose address is stable.
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

const std::string& SymbolTable::text(SymbolId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < strings_.size());
  // Safe to hand out past the unlock: entries are never removed or moved.
  return strings_[id];
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strings_.size();
}

PathTable& PathTable::instance() {
  static PathTable table;
  return table;
}

PathId PathTable::intern(const std::vector<SymbolId>& elems) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(elems);
  if (it != index_.end()) return it->second;
  PathId id = static_cast<PathId>(paths_.size());
  paths_.push_back(elems);
  index_.emplace(paths_.back(), id);
  return id;
}

const std::vector<SymbolId>& PathTable::elems(PathId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < paths_.size());
  return paths_[id];
}

std::string PathTable::text(PathId id) const {
  std::string out = "[";
  const auto& es = elems(id);
  for (size_t i = 0; i < es.size(); ++i) {
    if (i > 0) out += ' ';
    out += SymbolTable::instance().text(es[i]);
  }
  out += ']';
  return out;
}

}  // namespace faure::util
