#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace faure::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string formatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace faure::util
