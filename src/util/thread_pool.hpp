// A small fixed-size worker pool for the parallel fixpoint engine.
//
// Design constraints (DESIGN.md §7 "Parallel execution"):
//   * fixed worker count — evaluation decides its parallelism up front
//     (EvalOptions::threads) and the pool never grows or shrinks;
//   * per-worker deques with work stealing — tasks are distributed
//     round-robin at submission, an idle worker steals from the front of
//     a victim's deque, so a skewed partition does not leave cores idle;
//   * cooperative cancellation — cancel() (or the first task exception)
//     discards queued tasks; *running* tasks are expected to poll their
//     ResourceGuard (every charge observes trips/cancellation) and
//     return or throw promptly;
//   * exception transport — the first exception thrown by any task is
//     captured and rethrown from run() on the calling thread, so a
//     BudgetTrip raised inside a worker degrades the evaluation exactly
//     like the serial engine's throw.
//
// run() is a barrier: it executes a batch and returns when every task of
// that batch has finished (the caller participates, draining tasks
// itself, so a pool with N workers applies N+1 threads to the batch and
// `threads=1` costs no synchronization at all — callers special-case it
// and never construct a pool).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace faure::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `workers` threads (>= 1). The pool applies workers + 1
  /// threads to each run() batch because the caller drains too.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return workers_.size(); }

  /// Runs `tasks` to completion (barrier). Tasks receive the index of
  /// the executing lane in [0, workers()] — lane workers() is the
  /// calling thread — usable as an index into per-lane scratch (each
  /// lane runs at most one task at a time). If any task throws, queued
  /// tasks of the batch are discarded and the first captured exception
  /// is rethrown here after all running tasks finished.
  void run(std::vector<std::function<void(size_t lane)>> tasks);

  /// Discards tasks still queued in the current batch. Running tasks
  /// keep going; run() still waits for them.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static size_t hardwareConcurrency();

 private:
  struct Lane {
    std::mutex mu;
    std::deque<std::function<void(size_t)>> queue;
  };

  bool popOrSteal(size_t lane, std::function<void(size_t)>& task);
  void drain(size_t lane);
  void workerLoop(size_t lane);

  std::vector<std::unique_ptr<Lane>> lanes_;  // one per worker + caller
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // batch lifecycle
  std::condition_variable wake_;   // workers: a batch is available
  std::condition_variable done_;   // caller: batch finished
  uint64_t batch_ = 0;             // generation counter of run() batches
  std::atomic<size_t> pending_{0};  // unfinished tasks of current batch
  std::atomic<bool> cancelled_{false};
  bool stop_ = false;

  std::mutex errorMu_;
  std::exception_ptr firstError_;
};

}  // namespace faure::util
