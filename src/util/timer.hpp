// Monotonic time utilities shared by the engine, the observability layer
// and the benchmark harnesses.
#pragma once

#include <chrono>

namespace faure::util {

/// Seconds on the monotonic clock (std::chrono::steady_clock), measured
/// from an arbitrary epoch. The single clock-sampling helper everything
/// else (Stopwatch, ResourceGuard deadlines, obs::Tracer timestamps)
/// builds on — no hand-rolled chrono arithmetic elsewhere.
inline double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock stopwatch over the monotonic clock.
/// Starts running on construction; elapsed() can be sampled repeatedly.
/// pause()/resume() exclude stretches from the total, and lap() carves
/// the running total into consecutive segments.
class Stopwatch {
 public:
  Stopwatch() : start_(monotonicSeconds()), lapStart_(start_) {}

  /// Restarts the stopwatch (running, totals and laps cleared).
  void reset() {
    start_ = monotonicSeconds();
    lapStart_ = start_;
    accumulated_ = 0.0;
    lapAccumulated_ = 0.0;
    running_ = true;
  }

  /// Seconds elapsed since construction or the last reset(), excluding
  /// paused stretches.
  double elapsed() const {
    return accumulated_ + (running_ ? monotonicSeconds() - start_ : 0.0);
  }

  /// Seconds since the last lap()/reset() (paused stretches excluded),
  /// and starts the next lap. The overall elapsed() keeps running.
  double lap() {
    double now = running_ ? monotonicSeconds() : 0.0;
    double seg = lapAccumulated_ + (running_ ? now - lapStart_ : 0.0);
    lapAccumulated_ = 0.0;
    if (running_) lapStart_ = now;
    return seg;
  }

  /// Stops accumulating time until resume(). Idempotent.
  void pause() {
    if (!running_) return;
    double now = monotonicSeconds();
    accumulated_ += now - start_;
    lapAccumulated_ += now - lapStart_;
    running_ = false;
  }

  /// Restarts accumulation after pause(). Idempotent.
  void resume() {
    if (running_) return;
    start_ = monotonicSeconds();
    lapStart_ = start_;
    running_ = true;
  }

  bool running() const { return running_; }

 private:
  double start_;           // clock at last resume/reset (while running)
  double lapStart_;        // clock at last lap boundary (while running)
  double accumulated_ = 0.0;     // completed running stretches
  double lapAccumulated_ = 0.0;  // completed stretches of the current lap
  bool running_ = true;
};

}  // namespace faure::util
