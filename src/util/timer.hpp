// Monotonic stopwatch used by benchmarks and the Table-4 harness.
#pragma once

#include <chrono>

namespace faure::util {

/// Wall-clock stopwatch over std::chrono::steady_clock.
/// Starts running on construction; elapsed() can be sampled repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace faure::util
