// Deterministic chaos schedule for solver fault injection.
//
// ResourceGuard::failAfter (PR 1) trips the n-th charging call — a
// single, order-dependent fault. A FaultPlan generalizes that idea into
// a *schedule*: given a seed, it decides for every (backend, query,
// attempt) whether that call crashes, times out, or answers a spurious
// Unknown. The decision is a pure hash of the inputs — never of call
// order, wall clock, or thread id — so the same seed injects the same
// faults whether the run is serial, parallel on 8 threads, or replayed
// under a cache: the determinism axis the chaos suite is built on
// (DESIGN.md §9 "Fault tolerance & chaos testing").
//
// The plan is keyed on plain integers (the solver layer passes the
// hash-consed formula hash as `key`) so util stays free of smt types.
// Plans are immutable after configure(); decide() is const and
// thread-safe, so one shared plan serves every SolverPool lane.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace faure::util {

/// What an injected fault looks like to the supervision layer.
enum class FaultKind : uint8_t {
  None,             // no fault: call the backend normally
  Crash,            // the backend "dies": a SolverBackendError
  Timeout,          // the watchdog "fires": treated as a watchdog trip
  SpuriousUnknown,  // the backend "answers" Unknown without working
};

std::string_view faultKindText(FaultKind k);

/// Per-backend fault rates. Probabilities are independent slices of one
/// uniform draw, so crash + timeout + spuriousUnknown must be <= 1.
struct FaultSpec {
  double crash = 0.0;
  double timeout = 0.0;
  double spuriousUnknown = 0.0;
  /// Restrict injection to one SolverPool lane (-1: every lane and the
  /// non-pooled path). Lane-targeted faults exercise lane death and
  /// replacement without touching the serial replay path.
  int lane = -1;
  /// When true (default) the decision re-rolls per retry attempt, so a
  /// bounded retry can clear a fault. When false the fault is permanent
  /// for a given (backend, key): the schedule of a dead engine.
  bool clearsOnRetry = true;
  /// Restrict injection to the query with this key (0: every query).
  /// Single-query faults drive the quarantine tests.
  uint64_t onlyKey = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  /// Installs fault rates for one backend name ("z3", "native", ...).
  /// Backends without a spec never fault.
  void configure(std::string backend, FaultSpec spec);

  bool empty() const { return specs_.empty(); }
  uint64_t seed() const { return seed_; }

  /// The fault (or None) for attempt `attempt` of the query with hash
  /// `key` on `backend`, running on pool lane `lane` (-1 off-pool).
  /// Pure function of the arguments and the seed.
  FaultKind decide(std::string_view backend, uint64_t key, uint32_t attempt,
                   int lane = -1) const;

  /// The default chaos schedule for `seed`: moderate crash / timeout /
  /// spurious-Unknown rates on the *primary* backend tag only. The
  /// last-resort backend of a failover chain is never faulted, so a
  /// supervised run under this plan completes with verdicts equal to an
  /// unfaulted run — the transparency oracle the chaos CI job checks.
  static std::shared_ptr<const FaultPlan> defaultChaos(uint64_t seed);

  /// Reads FAURE_CHAOS_SEED: unset/empty/0 -> nullptr (no chaos),
  /// otherwise defaultChaos(seed).
  static std::shared_ptr<const FaultPlan> fromEnv();

  /// The backend tag defaultChaos() injects into. Supervision labels
  /// its first backend with this tag when chaos is active so env-driven
  /// plans always bite the primary, whatever engine it is.
  static constexpr std::string_view kPrimaryTag = "primary";

 private:
  uint64_t seed_;
  std::vector<std::pair<std::string, FaultSpec>> specs_;
};

}  // namespace faure::util
