#include "util/fault_plan.hpp"

#include <cstdlib>

#include "util/rng.hpp"

namespace faure::util {

std::string_view faultKindText(FaultKind k) {
  switch (k) {
    case FaultKind::None:
      return "none";
    case FaultKind::Crash:
      return "crash";
    case FaultKind::Timeout:
      return "timeout";
    case FaultKind::SpuriousUnknown:
      return "spurious-unknown";
  }
  return "?";
}

namespace {

/// FNV-1a over the backend name: std::hash is implementation-defined,
/// and fault schedules must be identical across toolchains for a seed.
uint64_t fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void FaultPlan::configure(std::string backend, FaultSpec spec) {
  for (auto& [name, existing] : specs_) {
    if (name == backend) {
      existing = spec;
      return;
    }
  }
  specs_.emplace_back(std::move(backend), spec);
}

FaultKind FaultPlan::decide(std::string_view backend, uint64_t key,
                            uint32_t attempt, int lane) const {
  const FaultSpec* spec = nullptr;
  for (const auto& [name, s] : specs_) {
    if (name == backend) {
      spec = &s;
      break;
    }
  }
  if (spec == nullptr) return FaultKind::None;
  if (spec->lane >= 0 && lane != spec->lane) return FaultKind::None;
  if (spec->onlyKey != 0 && key != spec->onlyKey) return FaultKind::None;
  // One uniform draw from a stateless mix of the identifying inputs.
  // Call order never enters, so the schedule is thread-count-invariant.
  uint64_t mix = seed_;
  mix ^= fnv1a(backend) * 0x9e3779b97f4a7c15ULL;
  mix ^= key * 0xc2b2ae3d27d4eb4fULL;
  if (spec->clearsOnRetry) mix ^= (uint64_t{attempt} + 1) * 0xff51afd7ed558ccdULL;
  double u = Rng(mix).uniform();
  if (u < spec->crash) return FaultKind::Crash;
  if (u < spec->crash + spec->timeout) return FaultKind::Timeout;
  if (u < spec->crash + spec->timeout + spec->spuriousUnknown) {
    return FaultKind::SpuriousUnknown;
  }
  return FaultKind::None;
}

std::shared_ptr<const FaultPlan> FaultPlan::defaultChaos(uint64_t seed) {
  auto plan = std::make_shared<FaultPlan>(seed);
  FaultSpec primary;
  primary.crash = 0.05;
  primary.timeout = 0.05;
  primary.spuriousUnknown = 0.10;
  primary.clearsOnRetry = true;
  plan->configure(std::string(kPrimaryTag), primary);
  return plan;
}

std::shared_ptr<const FaultPlan> FaultPlan::fromEnv() {
  const char* s = std::getenv("FAURE_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return nullptr;
  uint64_t seed = std::strtoull(s, nullptr, 10);
  if (seed == 0) return nullptr;
  return defaultChaos(seed);
}

}  // namespace faure::util
