#include "util/resource_guard.hpp"

#include <cstdlib>
#include <limits>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace faure {

namespace {

/// Charges between clock samples: cheap enough to keep charging at a few
/// ns, frequent enough that a deadline is observed well within 2x the
/// configured limit on any realistic workload.
constexpr uint32_t kClockStride = 64;

uint64_t envU64(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  return std::strtoull(s, nullptr, 10);
}

}  // namespace

std::string_view budgetText(Budget b) {
  switch (b) {
    case Budget::None:
      return "none";
    case Budget::Deadline:
      return "deadline";
    case Budget::Steps:
      return "steps";
    case Budget::Tuples:
      return "tuples";
    case Budget::SolverChecks:
      return "solver-checks";
    case Budget::Memory:
      return "memory";
    case Budget::Cancelled:
      return "cancelled";
    case Budget::Fault:
      return "fault-injection";
  }
  return "?";
}

bool ResourceLimits::any() const {
  return deadlineSeconds > 0.0 || maxSteps != 0 || maxTuples != 0 ||
         maxSolverChecks != 0 || maxMemoryBytes != 0 || failAfter != 0;
}

ResourceLimits ResourceLimits::fromEnv() {
  ResourceLimits limits;
  if (const char* s = std::getenv("FAURE_DEADLINE");
      s != nullptr && *s != '\0') {
    limits.deadlineSeconds = std::strtod(s, nullptr);
  }
  limits.maxSteps = envU64("FAURE_MAX_STEPS");
  limits.maxTuples = envU64("FAURE_MAX_TUPLES");
  limits.maxSolverChecks = envU64("FAURE_MAX_SOLVER_CHECKS");
  limits.maxMemoryBytes = envU64("FAURE_MAX_MEMORY");
  limits.failAfter = envU64("FAURE_FAIL_AFTER");
  return limits;
}

void ResourceGuard::arm(const ResourceLimits& limits) {
  limits_ = limits;
  rearm();
}

void ResourceGuard::rearm() {
  active_ = limits_.any();
  tripped_.store(Budget::None, std::memory_order_release);
  steps_.store(0, std::memory_order_relaxed);
  tuples_.store(0, std::memory_order_relaxed);
  solverChecks_.store(0, std::memory_order_relaxed);
  memoryBytes_.store(0, std::memory_order_relaxed);
  charges_.store(0, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  clockCountdown_.store(0, std::memory_order_relaxed);
  if (limits_.deadlineSeconds > 0.0) startSeconds_ = util::monotonicSeconds();
}

void ResourceGuard::failAfter(uint64_t n) {
  limits_.failAfter =
      n == 0 ? 0 : charges_.load(std::memory_order_relaxed) + n;
  active_ = limits_.any();
}

ResourceGuard::Counters ResourceGuard::counters() const {
  Counters c;
  c.steps = steps_.load(std::memory_order_relaxed);
  c.tuples = tuples_.load(std::memory_order_relaxed);
  c.solverChecks = solverChecks_.load(std::memory_order_relaxed);
  c.memoryBytes = memoryBytes_.load(std::memory_order_relaxed);
  c.charges = charges_.load(std::memory_order_relaxed);
  return c;
}

std::string ResourceGuard::reason() const {
  Budget t = trippedBudget();
  if (t == Budget::None) return "";
  std::string out(budgetText(t));
  auto limit = [&](const std::string& text) { out += "(limit=" + text + ")"; };
  switch (t) {
    case Budget::Deadline:
      limit(std::to_string(limits_.deadlineSeconds) + "s");
      break;
    case Budget::Steps:
      limit(std::to_string(limits_.maxSteps));
      break;
    case Budget::Tuples:
      limit(std::to_string(limits_.maxTuples));
      break;
    case Budget::SolverChecks:
      limit(std::to_string(limits_.maxSolverChecks));
      break;
    case Budget::Memory:
      limit(std::to_string(limits_.maxMemoryBytes));
      break;
    case Budget::Fault:
      limit(std::to_string(limits_.failAfter));
      break;
    default:
      break;
  }
  return out;
}

bool ResourceGuard::trip(Budget kind) {
  // First tripper wins; racing workers see the trip at their next
  // charge. The CAS guarantees the observer fires exactly once.
  Budget expected = Budget::None;
  if (tripped_.compare_exchange_strong(expected, kind,
                                       std::memory_order_acq_rel)) {
    if (onTrip_) onTrip_(kind, reason());
  }
  return false;
}

bool ResourceGuard::sampleDeadline() {
  if (limits_.deadlineSeconds <= 0.0) return true;
  if (util::monotonicSeconds() - startSeconds_ >= limits_.deadlineSeconds) {
    return trip(Budget::Deadline);
  }
  return true;
}

bool ResourceGuard::common() {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return trip(Budget::Cancelled);
  }
  uint64_t charges = charges_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (limits_.failAfter != 0 && charges >= limits_.failAfter) {
    return trip(Budget::Fault);
  }
  // fetch_sub hands the zero crossing to exactly one thread, which
  // resets the stride and samples the clock. The transient wrap-around
  // other threads may decrement through only stretches the stride.
  if (clockCountdown_.fetch_sub(1, std::memory_order_relaxed) == 0) {
    clockCountdown_.store(kClockStride, std::memory_order_relaxed);
    if (!sampleDeadline()) return false;
  }
  return true;
}

bool ResourceGuard::charge(Budget kind, uint64_t n,
                           std::atomic<uint64_t>& used, uint64_t limit) {
  if (!active_) return true;
  if (tripped()) return false;
  if (!common()) return false;
  uint64_t now = used.fetch_add(n, std::memory_order_relaxed) + n;
  if (limit != 0 && now > limit) return trip(kind);
  return true;
}

bool ResourceGuard::chargeSteps(uint64_t n) {
  return charge(Budget::Steps, n, steps_, limits_.maxSteps);
}

bool ResourceGuard::chargeTuples(uint64_t n) {
  return charge(Budget::Tuples, n, tuples_, limits_.maxTuples);
}

bool ResourceGuard::chargeSolverChecks(uint64_t n) {
  return charge(Budget::SolverChecks, n, solverChecks_, limits_.maxSolverChecks);
}

bool ResourceGuard::chargeMemory(uint64_t bytes) {
  return charge(Budget::Memory, bytes, memoryBytes_, limits_.maxMemoryBytes);
}

bool ResourceGuard::checkDeadline() {
  if (!active_) return true;
  if (tripped()) return false;
  return common();
}

double ResourceGuard::remainingSeconds() const {
  if (limits_.deadlineSeconds <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  double left =
      limits_.deadlineSeconds - (util::monotonicSeconds() - startSeconds_);
  return left > 0.0 ? left : 0.0;
}

void ResourceGuard::throwTripped() const {
  throw BudgetExceeded(std::string(budgetText(tripped_)), reason());
}

}  // namespace faure
