#include "util/thread_pool.hpp"

namespace faure::util {

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) workers = 1;
  lanes_.reserve(workers + 1);
  for (size_t i = 0; i < workers + 1; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

size_t ThreadPool::hardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool ThreadPool::popOrSteal(size_t lane, std::function<void(size_t)>& task) {
  {
    Lane& own = *lanes_[lane];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      task = std::move(own.queue.front());
      own.queue.pop_front();
      return true;
    }
  }
  // Steal scan, starting just past our own lane so victims differ per
  // thief. Stealing from the front keeps submission order roughly intact.
  for (size_t k = 1; k < lanes_.size(); ++k) {
    Lane& victim = *lanes_[(lane + k) % lanes_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::drain(size_t lane) {
  std::function<void(size_t)> task;
  while (popOrSteal(lane, task)) {
    if (!cancelled_.load(std::memory_order_relaxed)) {
      try {
        task(lane);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errorMu_);
          if (firstError_ == nullptr) firstError_ = std::current_exception();
        }
        cancel();  // a failed task invalidates the rest of the batch
      }
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Notify under mu_ so the completion cannot slip into the gap
      // between the caller's predicate check and its sleep.
      std::lock_guard<std::mutex> lock(mu_);
      done_.notify_all();
    }
    task = nullptr;
  }
}

void ThreadPool::workerLoop(size_t lane) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || batch_ != seen; });
      if (stop_) return;
      seen = batch_;
    }
    drain(lane);
  }
}

void ThreadPool::run(std::vector<std::function<void(size_t)>> tasks) {
  if (tasks.empty()) return;
  cancelled_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(errorMu_);
    firstError_ = nullptr;
  }
  pending_.store(tasks.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < tasks.size(); ++i) {
    Lane& lane = *lanes_[i % lanes_.size()];
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.queue.push_back(std::move(tasks[i]));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++batch_;
  }
  wake_.notify_all();

  // The caller is the extra lane: it drains alongside the workers, then
  // waits for whatever tasks other lanes are still running.
  const size_t callerLane = lanes_.size() - 1;
  drain(callerLane);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock,
               [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(errorMu_);
    err = firstError_;
    firstError_ = nullptr;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace faure::util
