// Resource governance for partial evaluation: deadlines, work budgets,
// cooperative cancellation, and deterministic fault injection.
//
// Fauré's contract is relative completeness — UNKNOWN only when more
// information is genuinely needed. A ResourceGuard extends that contract
// to *resources*: engine layers (the fauré-log fixpoint, the condition
// solvers, the containment pipeline) charge their work against the guard,
// and when a budget trips they degrade instead of running unbounded —
// solvers answer Sat::Unknown, evaluation returns the tuples derived so
// far flagged `incomplete`, the verifier maps both to UNKNOWN with a
// machine-readable reason. "Unknown costs performance, never soundness"
// (smt/solver.hpp) is the degradation axis: partial answers stay sound,
// only completeness is given up.
//
// A default-constructed guard is inactive: every charge is a single flag
// test, nothing ever trips, and engine behaviour is bit-identical to an
// unguarded run. Charging, cancel() and the read accessors are
// thread-safe: the parallel fixpoint engine (DESIGN.md §7) shares one
// guard across all workers, every worker observes a trip at its next
// charge, and the trip observer fires exactly once. Configuration
// (arm/rearm/failAfter/onTrip) still assumes a single thread between
// governed operations.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace faure {

/// The budget classes a guard can trip on. budgetText() gives the stable
/// reason codes documented in DESIGN.md ("Resource governance").
enum class Budget : uint8_t {
  None,          // not tripped
  Deadline,      // wall-clock deadline exceeded
  Steps,         // relational work units (row extensions, rounds)
  Tuples,        // candidate head derivations
  SolverChecks,  // satisfiability checks issued
  Memory,        // approximate engine-tracked bytes appended
  Cancelled,     // cooperative cancellation via cancel()
  Fault,         // deterministic fault injection (failAfter)
};

std::string_view budgetText(Budget b);

/// Limits carried by a guard. Zero (or non-positive for the deadline)
/// means "unlimited" for that class.
struct ResourceLimits {
  double deadlineSeconds = 0.0;
  uint64_t maxSteps = 0;
  uint64_t maxTuples = 0;
  uint64_t maxSolverChecks = 0;
  uint64_t maxMemoryBytes = 0;
  /// Fault injection: trip (Budget::Fault) on the n-th charging call,
  /// whatever its class. Exercises every degradation path in CI without
  /// pathological inputs.
  uint64_t failAfter = 0;

  /// True when any limit (or fault injection) is configured.
  bool any() const;

  /// Reads limits from the environment: FAURE_DEADLINE (seconds),
  /// FAURE_MAX_STEPS, FAURE_MAX_TUPLES, FAURE_MAX_SOLVER_CHECKS,
  /// FAURE_MAX_MEMORY (bytes), FAURE_FAIL_AFTER. Unset variables leave
  /// the corresponding limit unlimited.
  static ResourceLimits fromEnv();
};

/// See file comment. Pass by pointer; a null guard means "ungoverned".
class ResourceGuard {
 public:
  ResourceGuard() = default;
  explicit ResourceGuard(const ResourceLimits& limits) { arm(limits); }

  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;

  /// Work charged so far (for stats; counts only while active).
  struct Counters {
    uint64_t steps = 0;
    uint64_t tuples = 0;
    uint64_t solverChecks = 0;
    uint64_t memoryBytes = 0;
    uint64_t charges = 0;  // charging calls, the failAfter clock
  };

  /// Installs `limits` and re-arms. An all-zero ResourceLimits
  /// deactivates the guard.
  void arm(const ResourceLimits& limits);

  /// Restarts the deadline clock, zeroes counters and clears any trip,
  /// keeping the configured limits. Call before each governed operation.
  void rearm();

  /// Deterministic fault injection: trip on the n-th subsequent charging
  /// call (n = 1 trips the very next charge). 0 disables.
  void failAfter(uint64_t n);

  bool active() const { return active_; }
  bool tripped() const { return trippedBudget() != Budget::None; }
  Budget trippedBudget() const {
    return tripped_.load(std::memory_order_acquire);
  }

  /// Machine-readable trip reason, e.g. "steps(limit=100)" or
  /// "deadline(limit=0.05s)"; empty while not tripped.
  std::string reason() const;

  // Charging. Each returns false when the guard is (now) tripped; the
  // caller must then stop, degrade, and report reason(). Charges on an
  // inactive or already-tripped guard are cheap no-ops.
  bool chargeSteps(uint64_t n = 1);
  bool chargeTuples(uint64_t n = 1);
  bool chargeSolverChecks(uint64_t n = 1);
  bool chargeMemory(uint64_t bytes);

  /// Deadline/cancellation probe without charging any budget counter (it
  /// still ticks the fault-injection clock). Clock sampling is amortized:
  /// roughly every 64th call touches the clock.
  bool checkDeadline();

  /// Seconds left on the deadline; +infinity when none is set, 0 when
  /// expired. Backends with native timeouts (Z3) translate this.
  double remainingSeconds() const;

  /// Cooperative cancellation; safe to call from another thread. The
  /// engine observes it at the next charge and degrades as usual.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  const ResourceLimits& limits() const { return limits_; }

  /// Consistent-enough snapshot of the work charged so far (each field
  /// is read atomically; the set is not a transaction).
  Counters counters() const;

  /// Raises BudgetExceeded carrying the tripped budget kind and limit.
  /// Precondition: tripped().
  [[noreturn]] void throwTripped() const;

  /// Observer invoked exactly once per trip, with the tripped budget and
  /// the machine-readable reason() string. Observability wiring (a
  /// Session or the CLI) points this at obs::Tracer::event so budget
  /// trips become first-class trace events; the guard itself stays free
  /// of any obs dependency. Cold path: runs only when a budget trips.
  void onTrip(std::function<void(Budget, const std::string&)> fn) {
    onTrip_ = std::move(fn);
  }

 private:
  bool charge(Budget kind, uint64_t n, std::atomic<uint64_t>& used,
              uint64_t limit);
  bool common();           // cancellation + fault injection + deadline
  bool sampleDeadline();   // touches the clock
  bool trip(Budget kind);  // records the trip once; always returns false

  ResourceLimits limits_;
  // Counters are individually atomic so concurrent workers can charge
  // without locks; counters() snapshots them into the POD Counters.
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> solverChecks_{0};
  std::atomic<uint64_t> memoryBytes_{0};
  std::atomic<uint64_t> charges_{0};
  std::function<void(Budget, const std::string&)> onTrip_;
  bool active_ = false;
  std::atomic<Budget> tripped_{Budget::None};
  std::atomic<bool> cancelled_{false};
  double startSeconds_ = 0.0;  // monotonic clock at rearm()
  // Charges until the next clock sample; exactly one thread observes the
  // zero crossing (fetch_sub) and samples, so the stride stays amortized
  // under concurrency.
  std::atomic<uint32_t> clockCountdown_{0};
};

}  // namespace faure
