// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace faure::util {

/// Splits `s` on the single character `sep`. Empty fields are kept, so
/// split(",a,", ',') yields {"", "a", ""}.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Formats a duration given in seconds with a sensible unit (us/ms/s).
std::string formatSeconds(double seconds);

}  // namespace faure::util
