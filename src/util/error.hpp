// Error hierarchy for the faure library.
//
// All recoverable failures surface as subclasses of faure::Error so that
// callers can catch either the specific class (ParseError while loading a
// program from text) or the whole family at an API boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace faure {

/// Base class for all errors raised by the faure library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the fauré-log / datalog front end on malformed input text.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when values or schemas are combined at incompatible types,
/// e.g. joining an Int attribute with a Path attribute.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type error: " + what) {}
};

/// Raised during rule evaluation: unknown relation, unsafe rule,
/// non-stratifiable program, arity mismatch, ...
class EvalError : public Error {
 public:
  explicit EvalError(const std::string& what) : Error("eval error: " + what) {}
};

/// A solver backend failed for reasons of its own — the engine is
/// missing (a build without Z3), the backing library raised, or a check
/// aborted inside the backend. Distinct from EvalError (bad input) so
/// fault-tolerance layers (smt::SupervisedSolver, smt::SolverPool) can
/// catch engine trouble and retry / fail over / replace the instance
/// without masking genuine programming errors.
class SolverBackendError : public Error {
 public:
  SolverBackendError(std::string backend, const std::string& what)
      : Error("solver backend '" + backend + "': " + what),
        backend_(std::move(backend)) {}

  /// The failing backend's stable name ("z3", "native", ...).
  const std::string& backend() const { return backend_; }

 private:
  std::string backend_;
};

/// Resource-governance failures (util/resource_guard.hpp). The engine's
/// default is to *degrade* (Sat::Unknown, incomplete results) rather than
/// raise; these surface only where a caller opts into strict budgets.
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what)
      : Error("resource error: " + what) {}
};

/// A configured budget tripped under strict budgets
/// (fl::EvalOptions::throwOnBudget). `budget` is the stable reason code
/// (budgetText: "deadline", "steps", ...); `reason` embeds the limit,
/// e.g. "steps(limit=100)".
class BudgetExceeded : public ResourceError {
 public:
  BudgetExceeded(std::string budget, std::string reason)
      : ResourceError("budget exceeded: " + reason),
        budget_(std::move(budget)),
        reason_(std::move(reason)) {}

  /// The tripped budget kind ("deadline", "steps", "tuples", ...).
  const std::string& budget() const { return budget_; }
  /// Kind plus the configured limit, machine-readable.
  const std::string& reason() const { return reason_; }

 private:
  std::string budget_;
  std::string reason_;
};

}  // namespace faure
