// Error hierarchy for the faure library.
//
// All recoverable failures surface as subclasses of faure::Error so that
// callers can catch either the specific class (ParseError while loading a
// program from text) or the whole family at an API boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace faure {

/// Base class for all errors raised by the faure library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the fauré-log / datalog front end on malformed input text.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when values or schemas are combined at incompatible types,
/// e.g. joining an Int attribute with a Path attribute.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type error: " + what) {}
};

/// Raised during rule evaluation: unknown relation, unsafe rule,
/// non-stratifiable program, arity mismatch, ...
class EvalError : public Error {
 public:
  explicit EvalError(const std::string& what) : Error("eval error: " + what) {}
};

}  // namespace faure
