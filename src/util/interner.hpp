// String and sequence interning.
//
// Values in fauré tuples must be cheap to copy, hash and compare because
// evaluation shuffles millions of them. Symbols (names like "Mkt" or AS
// identifiers) and paths (sequences of symbols like [A,B,C]) are interned
// into process-wide tables and referenced by 32-bit ids.
//
// Interned data is pure string content with no per-problem semantics, so a
// process-wide table is safe; per-problem state (c-variable domains) lives
// in CVarRegistry instead.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace faure::util {

/// Id of an interned string. 0 is a valid id (the first interned string).
using SymbolId = uint32_t;

/// Id of an interned symbol sequence (a "path").
using PathId = uint32_t;

/// Process-wide string interner. Thread-safe: the parallel fixpoint
/// engine formats values (e.g. in error paths) from worker threads, so
/// both interners serialize behind a mutex. Interning is far off the
/// join/derive hot path, so the lock is uncontended in practice.
class SymbolTable {
 public:
  static SymbolTable& instance();

  /// Returns the id for `text`, interning it on first sight.
  SymbolId intern(std::string_view text);

  /// The text behind an id. The reference stays valid for the process
  /// lifetime (strings are never removed or moved).
  const std::string& text(SymbolId id) const;

  /// Number of distinct symbols interned so far.
  size_t size() const;

 private:
  SymbolTable() = default;
  mutable std::mutex mu_;
  // deque: element addresses are stable under growth, so the string_view
  // keys in index_ (which point into the stored strings) stay valid, and
  // references handed out by text() survive later interning.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, SymbolId> index_;
};

/// Process-wide interner for symbol sequences (forwarding paths).
class PathTable {
 public:
  static PathTable& instance();

  /// Returns the id for `elems`, interning on first sight.
  PathId intern(const std::vector<SymbolId>& elems);

  /// The sequence behind an id. Stable for the process lifetime.
  const std::vector<SymbolId>& elems(PathId id) const;

  /// Renders a path as "[A B C]".
  std::string text(PathId id) const;

  size_t size() const;

 private:
  PathTable() = default;

  mutable std::mutex mu_;

  struct VecHash {
    size_t operator()(const std::vector<SymbolId>& v) const {
      size_t h = 0x9e3779b97f4a7c15ULL;
      for (SymbolId s : v) h = h * 1099511628211ULL ^ s;
      return h;
    }
  };

  std::deque<std::vector<SymbolId>> paths_;
  std::unordered_map<std::vector<SymbolId>, PathId, VecHash> index_;
};

/// Convenience: intern a symbol and get its id.
inline SymbolId sym(std::string_view text) {
  return SymbolTable::instance().intern(text);
}

/// Convenience: the text of a symbol id.
inline const std::string& symText(SymbolId id) {
  return SymbolTable::instance().text(id);
}

}  // namespace faure::util
