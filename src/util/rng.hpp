// Deterministic pseudo-random generator for workload synthesis.
//
// Benchmarks and the synthetic RIB generator must be reproducible across
// runs and machines, so we use a fixed SplitMix64 rather than
// std::random_device-seeded engines.
#pragma once

#include <cstdint>

namespace faure::util {

/// SplitMix64: tiny, fast, and statistically adequate for workload
/// generation (not for cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

 private:
  uint64_t state_;
};

}  // namespace faure::util
