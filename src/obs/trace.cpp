#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "util/timer.hpp"

namespace faure::obs {

Tracer::Tracer(TracerOptions opts)
    : opts_(opts), epoch_(util::monotonicSeconds()) {}

size_t Tracer::beginSpan(std::string_view name) {
  double now = util::monotonicSeconds() - epoch_;
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= opts_.maxSpans) {
    ++dropped_;
    stack_.push_back(kNoSpan);  // keep push/pop balanced for endSpan
    return kNoSpan;
  }
  SpanRecord rec;
  rec.id = spans_.size();
  rec.parent = stack_.empty() ? kNoSpan : stack_.back();
  rec.name = std::string(name);
  rec.start = now;
  spans_.push_back(std::move(rec));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::endSpan(size_t id) {
  double now = util::monotonicSeconds() - epoch_;
  std::lock_guard<std::mutex> lock(mu_);
  // Close the innermost open span; `id` identifies it when recorded.
  if (!stack_.empty()) stack_.pop_back();
  if (id != kNoSpan && id < spans_.size()) spans_[id].end = now;
}

void Tracer::annotate(size_t id, std::string_view key,
                      std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kNoSpan || id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(std::string(key), std::string(value));
}

void Tracer::event(std::string_view name, std::string_view detail) {
  double now = util::monotonicSeconds() - epoch_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EventRecord rec;
    rec.ts = now;
    // Innermost *recorded* span (skip dropped sentinels).
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (*it != kNoSpan) {
        rec.span = *it;
        break;
      }
    }
    rec.name = std::string(name);
    rec.detail = std::string(detail);
    events_.push_back(std::move(rec));
  }
  metrics_.counter("events." + std::string(name)).add();
}

double Tracer::elapsedSeconds() const {
  return util::monotonicSeconds() - epoch_;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<EventRecord> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t Tracer::droppedSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

namespace {

void appendSpanLine(std::string& out, const SpanRecord& s, int depth,
                    const std::vector<EventRecord>& events) {
  char buf[64];
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += s.name;
  if (s.end < 0) {
    out += "  (open)";
  } else {
    std::snprintf(buf, sizeof(buf), "  %.6fs", s.duration());
    out += buf;
  }
  for (const auto& [k, v] : s.attrs) {
    out += "  ";
    out += k;
    out += "=";
    out += v;
  }
  out += "\n";
  for (const auto& e : events) {
    if (e.span != s.id) continue;
    out.append(static_cast<size_t>(depth + 1) * 2, ' ');
    out += "! ";
    out += e.name;
    if (!e.detail.empty()) {
      out += ": ";
      out += e.detail;
    }
    std::snprintf(buf, sizeof(buf), "  @%.6fs", e.ts);
    out += buf;
    out += "\n";
  }
}

}  // namespace

std::string Tracer::dumpTree() const {
  std::vector<SpanRecord> spans = this->spans();
  std::vector<EventRecord> events = this->events();

  // Children per span, in recording (= start) order.
  std::vector<std::vector<size_t>> kids(spans.size());
  std::vector<size_t> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent == kNoSpan) {
      roots.push_back(s.id);
    } else {
      kids[s.parent].push_back(s.id);
    }
  }

  std::string out;
  // Iterative DFS to keep deep recursion traces safe.
  std::vector<std::pair<size_t, int>> work;  // (span, depth)
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    work.emplace_back(*it, 0);
  }
  while (!work.empty()) {
    auto [id, depth] = work.back();
    work.pop_back();
    appendSpanLine(out, spans[id], depth, events);
    for (auto it = kids[id].rbegin(); it != kids[id].rend(); ++it) {
      work.emplace_back(*it, depth + 1);
    }
  }
  uint64_t dropped = droppedSpans();
  if (dropped > 0) {
    out += "(" + std::to_string(dropped) + " spans dropped past maxSpans)\n";
  }
  return out;
}

std::string Tracer::chromeTrace() const {
  std::vector<SpanRecord> spans = this->spans();
  std::vector<EventRecord> events = this->events();

  json::Writer w;
  w.beginArray();
  for (const SpanRecord& s : spans) {
    w.beginObject();
    w.member("name", s.name);
    w.member("ph", "X");
    w.member("pid", 1);
    w.member("tid", 1);
    w.member("ts", s.start * 1e6);
    w.member("dur", (s.end < 0 ? 0.0 : s.duration()) * 1e6);
    if (!s.attrs.empty()) {
      w.key("args").beginObject();
      for (const auto& [k, v] : s.attrs) w.member(k, v);
      w.endObject();
    }
    w.endObject();
  }
  for (const EventRecord& e : events) {
    w.beginObject();
    w.member("name", e.name);
    w.member("ph", "i");
    w.member("s", "g");
    w.member("pid", 1);
    w.member("tid", 1);
    w.member("ts", e.ts * 1e6);
    w.key("args").beginObject().member("detail", e.detail).endObject();
    w.endObject();
  }
  w.endArray();
  return w.take();
}

}  // namespace faure::obs
