#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace faure::obs::json {

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) v = v > 0 ? 1e308 : -1e308;
  // Integers (the common case: counters) print without a fraction.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void Writer::comma() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // value completes the `"key":` already emitted
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

Writer& Writer::beginObject() {
  comma();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

Writer& Writer::endObject() {
  out_.push_back('}');
  first_.pop_back();
  return *this;
}

Writer& Writer::beginArray() {
  comma();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

Writer& Writer::endArray() {
  out_.push_back(']');
  first_.pop_back();
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  out_ += quote(k);
  out_.push_back(':');
  pendingKey_ = true;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  comma();
  out_ += quote(s);
  return *this;
}

Writer& Writer::value(double v) {
  comma();
  out_ += number(v);
  return *this;
}

Writer& Writer::value(uint64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

Writer& Writer::value(int64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

Writer& Writer::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  auto it = fields.find(std::string(key));
  return it == fields.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skipWs();
    char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = string();
        return v;
      }
      case 't':
        if (!consume("true")) fail("bad literal");
        return boolean(true);
      case 'f':
        if (!consume("false")) fail("bad literal");
        return boolean(false);
      case 'n':
        if (!consume("null")) fail("bad literal");
        return Value{};
      default:
        return numberValue();
    }
  }

  static Value boolean(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      v.fields[std::move(key)] = value();
      skipWs();
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skipWs();
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling; reports are ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value numberValue() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    Value v;
    v.kind = Value::Kind::Number;
    v.num = d;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).document(); }

}  // namespace faure::obs::json
