// Metrics registry: named counters, gauges and histograms with stable,
// cheap handles.
//
// The registry is the canonical store for engine statistics — the legacy
// per-layer structs (smt::SolverStats, fl::EvalStats) remain as
// compatibility accessors, but an observed run additionally records the
// same quantities here, plus what the structs cannot express: per-rule and
// per-stratum counters, latency histograms, and ResourceGuard budget-trip
// events (obs/trace.hpp). Exporters (obs/report.hpp) snapshot the registry
// into one machine-readable run report.
//
// Cost model: looking a metric up by name takes a mutex; the returned
// handle is a stable pointer valid for the registry's lifetime, and
// updating it is a relaxed atomic op. Engine layers resolve handles once
// (when a tracer is attached) and update them on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace faure::obs {

/// Monotonically increasing count (derivations, solver checks, ...).
class Counter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written value (sizes, configuration echoes, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Streaming summary of observations (per-call latencies, batch sizes):
/// count / sum / min / max, enough for rate and mean without bucket
/// configuration. Not lock-free — observations take a spinlock-sized
/// mutex — but histograms sit off the per-tuple hot path.
class Histogram {
 public:
  void observe(double x);

  struct Summary {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 while count == 0
    double max = 0.0;
  };
  Summary summary() const;
  void reset();

 private:
  mutable std::mutex mu_;
  Summary s_;
};

/// Point-in-time copy of every metric, sorted by name (deterministic
/// export order).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Summary>> histograms;

  /// Counter value by exact name; 0 when absent.
  uint64_t counter(std::string_view name) const;
  /// Histogram summary by exact name; empty summary when absent.
  Histogram::Summary histogram(std::string_view name) const;
};

/// Named metric store. Thread-safe; handles are stable for the registry's
/// lifetime. Names are dotted paths ("eval.derivations",
/// "eval.rule[0:R].inserted") — the catalogue lives in DESIGN.md
/// ("Observability").
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every existing metric (handles stay valid). Used by the
  /// per-operation stats-reset path (faure::Session::resetStats).
  void reset();

 private:
  mutable std::mutex mu_;
  // std::map: stable node addresses and sorted iteration for snapshot().
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace faure::obs
