// Span tracer: a hierarchical timing tree over one engine run.
//
// A Tracer owns (a) the span tree — session → query → stratum → rule →
// join/solver-check, each span a named interval with key=value
// annotations; (b) timestamped events (ResourceGuard budget trips are the
// canonical producer); and (c) the metrics Registry (obs/metrics.hpp).
// Exporters turn the three into a human-readable tree (dumpTree), a
// Chrome trace_event file for about://tracing (chromeTrace), or one
// self-contained JSON run report (obs/report.hpp).
//
// Cost contract: every instrumentation site in the engine takes an
// `obs::Tracer*` and treats null as "tracing disabled" — the disabled
// path is a single pointer test, no strings are built and no clocks are
// sampled, so an untraced run is indistinguishable from the
// pre-observability engine. Metric updates are thread-safe; the span
// *tree* assumes the engine's single evaluation thread (a mutex keeps
// concurrent use memory-safe, but parentage interleaves).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace faure::obs {

/// Sentinel span id: "no enclosing span".
constexpr size_t kNoSpan = static_cast<size_t>(-1);

struct TracerOptions {
  /// Also record the finest spans (per-join, per-solver-check). Off by
  /// default: on solver-heavy runs they dominate the span count.
  bool fineSpans = false;
  /// Span-tree size cap; spans beyond it are dropped (counted in
  /// droppedSpans()) while metrics keep accumulating.
  size_t maxSpans = size_t{1} << 16;
};

struct SpanRecord {
  size_t id = kNoSpan;
  size_t parent = kNoSpan;
  std::string name;
  double start = 0.0;  // seconds since the tracer epoch
  double end = -1.0;   // < 0 while the span is still open
  std::vector<std::pair<std::string, std::string>> attrs;

  double duration() const { return end < 0 ? 0.0 : end - start; }
};

struct EventRecord {
  double ts = 0.0;      // seconds since the tracer epoch
  size_t span = kNoSpan;  // innermost open span when emitted
  std::string name;
  std::string detail;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions opts = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TracerOptions& options() const { return opts_; }
  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }

  /// Opens a span under the innermost open span; returns its id (or
  /// kNoSpan once maxSpans is exceeded). Prefer the Span RAII wrapper.
  size_t beginSpan(std::string_view name);
  void endSpan(size_t id);
  void annotate(size_t id, std::string_view key, std::string_view value);

  /// Records a timestamped event under the innermost open span and bumps
  /// the counter `events.<name>`.
  void event(std::string_view name, std::string_view detail);

  /// Seconds since the tracer was constructed.
  double elapsedSeconds() const;

  std::vector<SpanRecord> spans() const;
  std::vector<EventRecord> events() const;
  uint64_t droppedSpans() const;

  // ---- exporters ----

  /// Human-readable span tree with durations, annotations and inline
  /// events, e.g. for `faure run --trace` on stderr.
  std::string dumpTree() const;

  /// Chrome trace_event JSON (complete "X" events + instant "i" events):
  /// load in about://tracing or Perfetto.
  std::string chromeTrace() const;

 private:
  TracerOptions opts_;
  Registry metrics_;
  double epoch_;  // monotonicSeconds() at construction

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<EventRecord> events_;
  std::vector<size_t> stack_;  // open spans, innermost last
  uint64_t dropped_ = 0;
};

/// RAII span: opens on construction (no-op for a null tracer), closes on
/// destruction — exception-safe, so budget-trip unwinding still closes
/// the tree. Move-only.
class Span {
 public:
  Span() = default;
  Span(Tracer* t, std::string_view name)
      : t_(t), id_(t != nullptr ? t->beginSpan(name) : kNoSpan) {}
  ~Span() { close(); }

  Span(Span&& other) noexcept : t_(other.t_), id_(other.id_) {
    other.t_ = nullptr;
    other.id_ = kNoSpan;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      close();
      t_ = other.t_;
      id_ = other.id_;
      other.t_ = nullptr;
      other.id_ = kNoSpan;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key=value annotation; no-op when tracing is off.
  void note(std::string_view key, std::string_view value) {
    if (t_ != nullptr) t_->annotate(id_, key, value);
  }

  explicit operator bool() const { return t_ != nullptr; }
  size_t id() const { return id_; }

 private:
  void close() {
    if (t_ != nullptr) t_->endSpan(id_);
    t_ = nullptr;
  }

  Tracer* t_ = nullptr;
  size_t id_ = kNoSpan;
};

}  // namespace faure::obs
