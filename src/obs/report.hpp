// Machine-readable run reports: one self-contained JSON document per
// engine run — span tree, metrics snapshot, budget-trip events and
// verdict provenance. The schema is versioned (kReportSchema); consumers
// key on the "schema" field and DESIGN.md ("Observability") documents
// every member. BENCH_*.json perf trajectories and the CLI's
// --metrics output both use this format.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace faure::obs {

/// Schema identifier stamped into every report ("schema" field). Bump the
/// trailing version on any incompatible change.
inline constexpr std::string_view kReportSchema = "faure.run_report/1";

/// Caller-supplied context for a report: which tool produced it, which
/// operation ran, and free-form provenance (input files, verdict, degrade
/// reason, ...) exported as the "info" object.
struct ReportMeta {
  std::string tool = "faure";
  std::string command;
  std::vector<std::pair<std::string, std::string>> info;

  void add(std::string_view key, std::string_view value) {
    info.emplace_back(std::string(key), std::string(value));
  }
};

/// Renders the full run report for `tracer` (spans + events + metrics).
std::string runReportJson(const Tracer& tracer, const ReportMeta& meta);

/// Metrics-only variant for callers without a tracer (spans/events empty).
std::string runReportJson(const Registry& metrics, const ReportMeta& meta);

/// Bench-harness variant: the summary a committed BENCH_*.json wants —
/// info, wall clock, events and the metrics snapshot, but no span tree
/// (raw spans are by far the largest part of a bench report and carry
/// per-epoch timing detail nobody diffs). FAURE_BENCH_FULL_SPANS=1
/// switches back to the full runReportJson for interactive profiling.
/// Everything tools/bench_check.py reads (metrics.gauges) is identical
/// in both shapes.
std::string benchReportJson(const Tracer& tracer, const ReportMeta& meta);

}  // namespace faure::obs
