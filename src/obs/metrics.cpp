#include "obs/metrics.hpp"

#include <algorithm>

namespace faure::obs {

void Histogram::observe(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.count == 0) {
    s_.min = x;
    s_.max = x;
  } else {
    s_.min = std::min(s_.min, x);
    s_.max = std::max(s_.max, x);
  }
  ++s_.count;
  s_.sum += x;
}

Histogram::Summary Histogram::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return s_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  s_ = Summary{};
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

Histogram::Summary MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, s] : histograms) {
    if (n == name) return s;
  }
  return Histogram::Summary{};
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c.value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g.value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h.summary());
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace faure::obs
