// Minimal JSON support for the observability exporters: a string-builder
// writer (enough to emit run reports and Chrome trace files) and a strict
// little parser used to validate reports in tests and tools. No external
// dependencies; numbers are doubles (report values fit comfortably).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace faure::obs::json {

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
std::string quote(std::string_view s);

/// Formats a double compactly ("0.25", "3", "1e-07"); never emits the
/// non-JSON tokens nan/inf (they clamp to 0 / ±1e308).
std::string number(double v);

/// Incremental writer for objects/arrays. Keys and structure are the
/// caller's responsibility; the writer handles quoting, commas and
/// indentation-free compact output.
class Writer {
 public:
  Writer& beginObject();
  Writer& endObject();
  Writer& beginArray();
  Writer& endArray();

  /// Starts a member inside an object: emits `"key":`. Follow with a
  /// value call (or begin*).
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);  // string value
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(uint64_t v);
  Writer& value(int64_t v);
  Writer& value(int v) { return value(static_cast<int64_t>(v)); }
  Writer& value(bool b);
  Writer& null();

  /// Convenience: key + value in one call.
  template <typename T>
  Writer& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  // per open scope: no member emitted yet
  bool pendingKey_ = false;
};

/// Parsed JSON value (object keys sorted; duplicate keys keep the last).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> items;                 // Array
  std::map<std::string, Value> fields;      // Object

  bool isObject() const { return kind == Kind::Object; }
  bool isArray() const { return kind == Kind::Array; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parses exactly one JSON document (trailing whitespace allowed).
/// Throws faure::Error on malformed input.
Value parse(std::string_view text);

}  // namespace faure::obs::json
