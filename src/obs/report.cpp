#include "obs/report.hpp"

#include <cstdlib>

#include "obs/json.hpp"

namespace faure::obs {

namespace {

void writeMeta(json::Writer& w, const ReportMeta& meta) {
  w.member("schema", kReportSchema);
  w.member("tool", meta.tool);
  w.member("command", meta.command);
  w.key("info").beginObject();
  for (const auto& [k, v] : meta.info) w.member(k, v);
  w.endObject();
}

void writeMetrics(json::Writer& w, const Registry& metrics) {
  MetricsSnapshot snap = metrics.snapshot();
  w.key("metrics").beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, v] : snap.counters) w.member(name, v);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, v] : snap.gauges) w.member(name, v);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, s] : snap.histograms) {
    w.key(name).beginObject();
    w.member("count", s.count);
    w.member("sum", s.sum);
    w.member("min", s.min);
    w.member("max", s.max);
    w.member("mean", s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0);
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

void writeSpans(json::Writer& w, const std::vector<SpanRecord>& spans) {
  w.key("spans").beginArray();
  for (const SpanRecord& s : spans) {
    w.beginObject();
    w.member("id", static_cast<uint64_t>(s.id));
    if (s.parent == kNoSpan) {
      w.key("parent").null();
    } else {
      w.member("parent", static_cast<uint64_t>(s.parent));
    }
    w.member("name", s.name);
    w.member("start", s.start);
    w.member("dur", s.end < 0 ? 0.0 : s.duration());
    if (!s.attrs.empty()) {
      w.key("attrs").beginObject();
      for (const auto& [k, v] : s.attrs) w.member(k, v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
}

void writeEvents(json::Writer& w, const std::vector<EventRecord>& events) {
  w.key("events").beginArray();
  for (const EventRecord& e : events) {
    w.beginObject();
    w.member("ts", e.ts);
    if (e.span == kNoSpan) {
      w.key("span").null();
    } else {
      w.member("span", static_cast<uint64_t>(e.span));
    }
    w.member("name", e.name);
    w.member("detail", e.detail);
    w.endObject();
  }
  w.endArray();
}

}  // namespace

std::string runReportJson(const Tracer& tracer, const ReportMeta& meta) {
  json::Writer w;
  w.beginObject();
  writeMeta(w, meta);
  w.member("wall_seconds", tracer.elapsedSeconds());
  w.member("dropped_spans", tracer.droppedSpans());
  writeSpans(w, tracer.spans());
  writeEvents(w, tracer.events());
  writeMetrics(w, tracer.metrics());
  w.endObject();
  return w.take();
}

std::string runReportJson(const Registry& metrics, const ReportMeta& meta) {
  json::Writer w;
  w.beginObject();
  writeMeta(w, meta);
  w.key("spans").beginArray().endArray();
  w.key("events").beginArray().endArray();
  writeMetrics(w, metrics);
  w.endObject();
  return w.take();
}

std::string benchReportJson(const Tracer& tracer, const ReportMeta& meta) {
  if (const char* full = std::getenv("FAURE_BENCH_FULL_SPANS");
      full != nullptr && full[0] == '1') {
    return runReportJson(tracer, meta);
  }
  json::Writer w;
  w.beginObject();
  writeMeta(w, meta);
  w.member("wall_seconds", tracer.elapsedSeconds());
  w.member("dropped_spans", tracer.droppedSpans());
  w.key("spans").beginArray().endArray();
  writeEvents(w, tracer.events());
  writeMetrics(w, tracer.metrics());
  w.endObject();
  return w.take();
}

}  // namespace faure::obs
