#include "faurelog/eval.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "datalog/analysis.hpp"
#include "relational/algebra.hpp"
#include "smt/simplify.hpp"
#include "smt/solver_pool.hpp"
#include "smt/verdict_cache.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace faure::fl {

const rel::CTable& EvalResult::relation(const std::string& pred) const {
  static const rel::CTable kEmpty;
  auto it = idb.find(pred);
  return it == idb.end() ? kEmpty : it->second;
}

bool EvalResult::derived(const std::string& goal, smt::Formula* cond) const {
  const rel::CTable& t = relation(goal);
  if (cond != nullptr) {
    std::vector<smt::Formula> conds;
    for (const auto& row : t.rows()) conds.push_back(row.cond);
    *cond = smt::Formula::disj(std::move(conds));
  }
  return !t.empty();
}

namespace {

using dl::Program;
using dl::Rule;
using dl::Term;

/// A partial c-valuation: values for the rule's program variables (slots
/// fill in literal order) plus the accumulated condition.
struct CFrame {
  std::vector<Value> vals;
  smt::Formula cond;
};

/// Internal control-flow signal: a guard budget tripped mid-fixpoint.
/// Caught in run(), where the partial IDB becomes the degraded result.
/// In a parallel round it may be thrown on a worker thread; the
/// ThreadPool cancels the batch and rethrows it on the engine thread,
/// so the degradation path is shared with serial evaluation.
struct BudgetTrip {};

/// A derived-tuple candidate produced by the (possibly parallel)
/// generation phase of a round: the grounded head values, the
/// accumulated condition, and — when a SolverPool lane pre-checked the
/// condition — the physical verdict to be replayed through the main
/// solver's accounting (smt::SolverBase::consumeDelegated).
struct Candidate {
  std::vector<Value> vals;
  smt::Formula cond;
  bool hasPrecheck = false;
  smt::Sat verdict = smt::Sat::Unknown;
  double seconds = 0.0;
  uint64_t enumerations = 0;
};

/// Partitioning floor: a scan range shorter than this is not worth
/// splitting (chunk bookkeeping would dominate the join work).
constexpr size_t kPartitionMinRows = 1024;

class FaureEvaluator {
 public:
  FaureEvaluator(const Program& p, const rel::Database& db,
                 smt::SolverBase* solver, const EvalOptions& opts,
                 StrataPlan* plan = nullptr)
      : p_(p),
        db_(db),
        solver_(solver),
        opts_(opts),
        plan_(plan),
        guard_(opts.guard),
        tracer_(opts.tracer),
        threads_(resolveThreads(opts)),
        planMode_(resolvePlanMode(opts.plan)) {
    if (solver_ == nullptr &&
        (opts_.pruneWithSolver || opts_.mergeSubsumption)) {
      throw EvalError(
          "evalFaure: solver required for pruning / merge subsumption");
    }
    // Supervision (DESIGN.md §9): wrap the caller's solver for the
    // duration of this evaluation. Must happen before the SolverPool is
    // built so lanes clone the supervised chain, not the bare backend.
    if (opts_.supervision && opts_.supervision->enabled &&
        solver_ != nullptr &&
        dynamic_cast<smt::SupervisedSolver*>(solver_) == nullptr) {
      supervisionWrap_ = std::make_unique<smt::SupervisedSolver>(
          db.cvars(), *opts_.supervision);
      supervisionWrap_->addBackend("primary", solver_);  // borrowed
      if (opts_.supervision->failover) {
        supervisionWrap_->addNativeFallback();
      }
      solver_ = supervisionWrap_.get();
    }
    if (threads_ > 1) {
      // threads_ counts total lanes: the engine thread participates in
      // every pool barrier, so spawn one worker fewer.
      threadPool_ = std::make_unique<util::ThreadPool>(threads_ - 1);
      if (opts_.pruneWithSolver) {
        solverPool_ = std::make_unique<smt::SolverPool>(
            *solver_, threadPool_->workers() + 1);
      }
    }
    cache_ = solver_ != nullptr ? solver_->verdictCache() : nullptr;
    if (cache_ != nullptr) cacheBefore_ = cache_->stats();
  }

  EvalResult run() {
    obs::Span evalSpan(tracer_, "eval");
    util::Stopwatch total;
    double solverBefore = solver_ != nullptr ? solver_->stats().seconds : 0.0;
    uint64_t checksBefore = solver_ != nullptr ? solver_->stats().checks : 0;

    // Solver work counts against the same guard: a deadline that expires
    // inside a condition check trips the whole evaluation, not just the
    // one answer. Likewise solver metrics land in the same registry.
    // Restored on exit so callers keep their own wiring.
    smt::ResourceGuardScope solverGuard(solver_, guard_);
    smt::TracerScope solverTracer(solver_, tracer_);

    dl::checkSafety(p_);
    std::unordered_map<std::string, size_t> external;
    for (const auto& [name, table] : db_.tables()) {
      external.emplace(name, table.schema().arity());
    }
    dl::checkArities(p_, external);
    // A plan brings its own (refined) partition; stratify otherwise.
    // Either way dl::stratify validates stratifiability — the plan's
    // partition was derived from it by the incremental engine.
    dl::Stratification strat =
        plan_ != nullptr ? plan_->strata : dl::stratify(p_);
    if (evalSpan) {
      evalSpan.note("rules", std::to_string(p_.rules.size()));
      evalSpan.note("strata", std::to_string(strat.ruleStrata.size()));
    }
    if (plan_ != nullptr) {
      if (plan_->runStratum.size() != strat.ruleStrata.size()) {
        throw EvalError("evalFaurePlanned: plan covers " +
                        std::to_string(plan_->runStratum.size()) +
                        " strata but the program stratifies into " +
                        std::to_string(strat.ruleStrata.size()));
      }
      // Retained tables must land before any stratum runs: a dirty
      // stratum reads the skipped lower strata through findRelation.
      for (auto& [pred, table] : plan_->retained) {
        idb_.insert_or_assign(pred, std::move(table));
      }
      if (evalSpan) {
        size_t live = 0;
        for (char f : plan_->runStratum) live += f != 0;
        evalSpan.note("planned_strata", std::to_string(live));
      }
    }

    bool degraded = false;
    try {
      for (size_t s = 0; s < strat.ruleStrata.size(); ++s) {
        if (plan_ != nullptr && !plan_->runStratum[s]) continue;
        evalStratum(strat, s);
      }
    } catch (const BudgetTrip&) {
      degraded = true;
      ++stats_.budgetTrips;
    }
    // Timing totals + registry mirror; called on every exit path so a
    // strict-budget throw still leaves complete metrics behind.
    auto finish = [&] {
      if (solver_ != nullptr) {
        stats_.solverSeconds = solver_->stats().seconds - solverBefore;
        stats_.solverChecks = solver_->stats().checks - checksBefore;
      }
      // Under parallel evaluation solverSeconds is cumulative across
      // lanes (delegated checks carry their worker-measured time), so
      // the wall-clock residual is clamped rather than trusted negative.
      stats_.sqlSeconds = std::max(0.0, total.elapsed() - stats_.solverSeconds);
      flushMetrics(degraded);
    };
    if (degraded && opts_.throwOnBudget) {
      if (evalSpan) evalSpan.note("incomplete", guard_->reason());
      finish();
      guard_->throwTripped();
    }
    if (opts_.consolidate) {
      for (auto& [pred, table] : idb_) table.consolidate();
    }
    if (opts_.simplifyResults && !degraded) {
      if (solver_ == nullptr) {
        throw EvalError("evalFaure: simplifyResults requires a solver");
      }
      for (auto& [pred, table] : idb_) {
        for (size_t i = 0; i < table.size(); ++i) {
          table.setCondition(
              i, smt::simplify(table.rows()[i].cond, *solver_));
        }
        table.pruneIf(
            [](const rel::Row& row) { return row.cond.isFalse(); });
      }
    }
    finish();

    EvalResult result;
    result.idb = std::move(idb_);
    result.stats = stats_;
    if (degraded) {
      result.incomplete = true;
      result.tripped = guard_->trippedBudget();
      result.degradeReason = guard_->reason();
      if (evalSpan) evalSpan.note("incomplete", result.degradeReason);
    }
    return result;
  }

 private:
  struct Range {
    size_t lo = 0;
    size_t hi = 0;
  };

  const rel::CTable* findRelation(const std::string& pred) const {
    auto it = idb_.find(pred);
    if (it != idb_.end()) return &it->second;
    return db_.find(pred);
  }

  // IDB table for `pred`; if an EDB relation with the same name exists its
  // rows seed the table (the paper's q19 appends a fact to the EDB Lb).
  rel::CTable& idbTable(const std::string& pred, size_t arity) {
    auto it = idb_.find(pred);
    if (it != idb_.end()) return it->second;
    const rel::CTable* edb = db_.find(pred);
    if (edb != nullptr) {
      if (edb->schema().arity() != arity) {
        throw EvalError("arity mismatch redefining '" + pred + "'");
      }
      return idb_.emplace(pred, *edb).first->second;
    }
    std::vector<rel::Attribute> attrs(arity);
    for (size_t i = 0; i < arity; ++i) {
      attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
    }
    return idb_.emplace(pred, rel::CTable(rel::Schema(pred, attrs)))
        .first->second;
  }

  void evalStratum(const dl::Stratification& strat, size_t s) {
    const auto& ruleIdx = strat.ruleStrata[s];
    if (ruleIdx.empty()) return;
    obs::Span span;
    obs::Counter* rounds = nullptr;
    if (tracer_ != nullptr) {
      std::string tag = "stratum[" + std::to_string(s) + "]";
      rounds = &tracer_->metrics().counter("eval." + tag + ".rounds");
      span = obs::Span(tracer_, tag);
      span.note("rules", std::to_string(ruleIdx.size()));
    }
    std::set<std::string> thisStratum;
    for (size_t ri : ruleIdx) thisStratum.insert(p_.rules[ri].head.pred);
    for (size_t ri : ruleIdx) {
      idbTable(p_.rules[ri].head.pred, p_.rules[ri].head.args.size());
    }

    std::unordered_map<std::string, size_t> deltaStart;
    for (const auto& pred : thisStratum) deltaStart[pred] = 0;

    bool first = true;
    for (size_t iter = 0; iter < opts_.maxIterations; ++iter) {
      ++stats_.iterations;
      if (rounds != nullptr) rounds->add();
      chargeSteps(1);
      std::unordered_map<std::string, size_t> fullEnd;
      for (const auto& pred : thisStratum) {
        fullEnd[pred] = idb_.at(pred).size();
      }
      bool changed = false;
      if (threadPool_ != nullptr) {
        changed = parallelRound(ruleIdx, first, deltaStart, fullEnd,
                                thisStratum);
      } else {
        for (size_t ri : ruleIdx) {
          const Rule& rule = p_.rules[ri];
          std::vector<size_t> recursivePositions;
          for (size_t i = 0; i < rule.body.size(); ++i) {
            const dl::Literal& lit = rule.body[i];
            if (!lit.negated && thisStratum.count(lit.atom.pred) != 0) {
              recursivePositions.push_back(i);
            }
          }
          if (!first && recursivePositions.empty()) continue;
          if (first || !opts_.semiNaive || recursivePositions.empty()) {
            changed |= evalRule(ri, rule, SIZE_MAX, deltaStart, fullEnd,
                                thisStratum);
          } else {
            for (size_t pos : recursivePositions) {
              changed |=
                  evalRule(ri, rule, pos, deltaStart, fullEnd, thisStratum);
            }
          }
        }
      }
      for (const auto& pred : thisStratum) deltaStart[pred] = fullEnd[pred];
      first = false;
      if (!changed) {
        bool grew = false;
        for (const auto& pred : thisStratum) {
          if (idb_.at(pred).size() != fullEnd[pred]) grew = true;
        }
        if (!grew) return;
      }
    }
    throw EvalError("fauré-log fixed point did not converge (cap reached)");
  }

  Range rangeFor(const std::string& pred, size_t deltaPos, size_t thisIndex,
                 const std::unordered_map<std::string, size_t>& deltaStart,
                 const std::unordered_map<std::string, size_t>& fullEnd,
                 const std::set<std::string>& thisStratum,
                 const rel::CTable& table) const {
    if (thisStratum.count(pred) == 0) return Range{0, table.size()};
    size_t end = fullEnd.at(pred);
    if (deltaPos == thisIndex) return Range{deltaStart.at(pred), end};
    return Range{0, end};
  }

  // ---- cost-based join planning (plan.hpp, DESIGN.md §11) ----
  //
  // planFor() runs on the engine thread only: it resolves the physical
  // plan for one (rule, delta position) firing from the round's live
  // cardinalities and ensures every persistent index the plan probes is
  // built/extended *before* worker phases start, so workers touch only
  // immutable JoinIndex state. Three execution paths follow:
  //   off          — planMode_ == Off or no plan: the pristine
  //                  program-order join path, byte-for-byte the
  //                  pre-planner evaluator;
  //   unreordered  — plan kept program order: joinLiteral probes the
  //                  persistent index on its serial key columns instead
  //                  of rebuilding a local one per firing. Enumeration
  //                  order is identical, so no sort is needed;
  //   reordered    — plannedEnumerate() walks literals in plan order,
  //                  pruning only combinations serial evaluation
  //                  provably prunes, then replays each survivor
  //                  through the serial condition sequence (dropping
  //                  the rest) and sorts by serial enumeration rank.
  //                  The resulting frame stream — values, conditions,
  //                  order — is exactly the serial one.

  /// Per-firing physical plan, resolved on the engine thread.
  struct PlanContext {
    const RuleShape* shape = nullptr;
    RulePlan plan;
    size_t deltaLit = SIZE_MAX;
    /// Per positive literal (program order): the relation snapshot.
    std::vector<const rel::CTable*> tables;
    /// Unreordered path: persistent index on each literal's serial key
    /// columns (null when the literal has none).
    std::vector<const rel::JoinIndex*> serialIndex;
    /// Reordered path: persistent index per plan *step* (null = scan).
    std::vector<const rel::JoinIndex*> stepIndex;
  };

  /// The static join shape of rule `ri`, computed once and cached.
  const RuleShape& ruleShape(size_t ri, const Rule& rule) {
    if (shapes_.empty()) shapes_.resize(p_.rules.size());
    if (!shapes_[ri].has_value()) {
      std::vector<std::string> vars = dl::ruleVariables(rule);
      std::unordered_map<std::string, size_t> slotOf;
      for (size_t i = 0; i < vars.size(); ++i) slotOf[vars[i]] = i;
      shapes_[ri] = RuleShape::analyze(rule, slotOf);
    }
    return *shapes_[ri];
  }

  /// Builds (or extends) the persistent index of `table` keyed on
  /// `keyArgs`, with build-vs-extension accounting. Engine thread only.
  const rel::JoinIndex* ensureIndex(const rel::CTable& table,
                                    const std::vector<size_t>& keyArgs) {
    const rel::JoinIndex* existing = table.findJoinIndex(keyArgs);
    size_t before = existing != nullptr ? existing->builtUpTo() : 0;
    const rel::JoinIndex& idx = table.ensureJoinIndex(keyArgs);
    if (existing == nullptr) {
      ++planStats_.indexBuilds;
    } else if (idx.builtUpTo() > before) {
      ++planStats_.indexExtensions;
    }
    return &idx;
  }

  /// Resolves the plan for one (rule, delta position) firing, ensuring
  /// every index it will probe. Returns null when planning is off or
  /// the rule has nothing to plan (the caller falls back to the
  /// pristine path, which also owns error reporting for unknown
  /// relations). Engine thread only.
  std::unique_ptr<PlanContext> planFor(
      size_t ri, const Rule& rule, size_t deltaPos,
      const std::unordered_map<std::string, size_t>& deltaStart,
      const std::unordered_map<std::string, size_t>& fullEnd,
      const std::set<std::string>& thisStratum) {
    if (planMode_ == PlanMode::Off) return nullptr;
    const RuleShape& shape = ruleShape(ri, rule);
    if (shape.lits.empty()) return nullptr;
    auto ctx = std::make_unique<PlanContext>();
    ctx->shape = &shape;
    std::vector<LitStats> litStats;
    litStats.reserve(shape.lits.size());
    for (size_t lp = 0; lp < shape.lits.size(); ++lp) {
      const dl::Literal& lit = rule.body[shape.lits[lp].body];
      const rel::CTable* table = findRelation(lit.atom.pred);
      if (table == nullptr) return nullptr;  // pristine path reports it
      Range range = rangeFor(lit.atom.pred, deltaPos, shape.lits[lp].body,
                             deltaStart, fullEnd, thisStratum, *table);
      litStats.push_back(LitStats{table, range.hi - range.lo});
      ctx->tables.push_back(table);
      if (shape.lits[lp].body == deltaPos) ctx->deltaLit = lp;
    }
    ctx->plan = planRule(shape, ctx->deltaLit, litStats);
    ++planStats_.plans;
    if (ctx->plan.reordered) ++planStats_.reorders;
    for (const PlannedLiteral& pl : ctx->plan.order) {
      planStats_.estRows += static_cast<uint64_t>(
          std::llround(std::max(0.0, pl.estRows)));
    }
    if (ctx->plan.reordered) {
      ctx->stepIndex.resize(ctx->plan.order.size(), nullptr);
      for (size_t step = 0; step < ctx->plan.order.size(); ++step) {
        const PlannedLiteral& pl = ctx->plan.order[step];
        if (pl.keyArgs.empty()) continue;
        ctx->stepIndex[step] =
            ensureIndex(*ctx->tables[pl.lit], pl.keyArgs);
      }
    } else {
      ctx->serialIndex.resize(shape.lits.size(), nullptr);
      for (size_t lp = 0; lp < shape.lits.size(); ++lp) {
        const auto& keys = shape.lits[lp].serialKeyArgs;
        if (keys.empty()) continue;
        ctx->serialIndex[lp] = ensureIndex(*ctx->tables[lp], keys);
      }
    }
    if (planMode_ == PlanMode::Explain &&
        explained_.insert({ri, deltaPos}).second) {
      std::cerr << explainPlan(rule, shape, ctx->plan, ctx->deltaLit,
                               litStats);
    }
    return ctx;
  }

  /// Candidate generation — the pure part of one rule application: join
  /// positives over the round snapshot, filter comparisons and
  /// negations, ground heads. Reads only snapshot-bounded table state
  /// (rangeFor) and the shared guard, so the parallel round runs it on
  /// worker threads unchanged; `tracer` must be null off the engine
  /// thread (the span tree is single-threaded). With `clampLit` set,
  /// the scan range of that body literal is overridden by `clamp` — the
  /// delta-partitioning hook; candidate order is the serial row-major
  /// order restricted to the clamp, so concatenating chunk results in
  /// range order reproduces the serial candidate stream exactly.
  std::vector<Candidate> collectCandidates(
      const Rule& rule, size_t deltaPos,
      const std::unordered_map<std::string, size_t>& deltaStart,
      const std::unordered_map<std::string, size_t>& fullEnd,
      const std::set<std::string>& thisStratum, size_t clampLit, Range clamp,
      obs::Tracer* tracer, const PlanContext* pctx) {
    std::vector<std::string> vars = dl::ruleVariables(rule);
    std::unordered_map<std::string, size_t> slotOf;
    for (size_t i = 0; i < vars.size(); ++i) slotOf[vars[i]] = i;

    std::vector<CFrame> frames{CFrame{std::vector<Value>(vars.size()),
                                      smt::Formula::top()}};
    std::vector<bool> bound(vars.size(), false);

    if (pctx != nullptr && pctx->plan.reordered) {
      frames = plannedEnumerate(rule, *pctx, deltaPos, deltaStart, fullEnd,
                                thisStratum, clampLit, clamp);
    } else {
      size_t litPos = 0;
      for (size_t i = 0; i < rule.body.size() && !frames.empty(); ++i) {
        const dl::Literal& lit = rule.body[i];
        if (lit.negated) continue;
        const rel::CTable* table = findRelation(lit.atom.pred);
        if (table == nullptr) {
          throw EvalError("unknown relation '" + lit.atom.pred + "'");
        }
        const rel::JoinIndex* pidx =
            pctx != nullptr && litPos < pctx->serialIndex.size()
                ? pctx->serialIndex[litPos]
                : nullptr;
        ++litPos;
        Range range = i == clampLit
                          ? clamp
                          : rangeFor(lit.atom.pred, deltaPos, i, deltaStart,
                                     fullEnd, thisStratum, *table);
        if (tracer != nullptr && tracer->options().fineSpans) {
          obs::Span join(tracer, "join");
          join.note("pred", lit.atom.pred);
          joinLiteral(lit.atom, *table, range, slotOf, frames, bound, pidx);
        } else {
          joinLiteral(lit.atom, *table, range, slotOf, frames, bound, pidx);
        }
      }
    }
    if (pctx != nullptr) {
      planStats_.actualRows.fetch_add(frames.size(),
                                      std::memory_order_relaxed);
    }
    // Explicit comparisons become condition atoms.
    for (const auto& cmp : rule.cmps) {
      std::vector<CFrame> kept;
      for (auto& f : frames) {
        smt::Formula c = comparisonFormula(cmp, f, slotOf);
        smt::Formula cond = smt::Formula::conj2(f.cond, c);
        if (cond.isFalse()) continue;
        f.cond = std::move(cond);
        kept.push_back(std::move(f));
      }
      frames = std::move(kept);
    }
    // Negated literals.
    for (const auto& lit : rule.body) {
      if (!lit.negated) continue;
      applyNegation(lit.atom, slotOf, frames);
    }
    // Ground heads.
    std::vector<Candidate> cands;
    cands.reserve(frames.size());
    for (auto& f : frames) {
      Candidate c;
      c.vals.reserve(rule.head.args.size());
      for (const auto& t : rule.head.args) {
        c.vals.push_back(groundTerm(t, f, slotOf));
      }
      c.cond = std::move(f.cond);
      cands.push_back(std::move(c));
    }
    return cands;
  }

  bool evalRule(size_t ri, const Rule& rule, size_t deltaPos,
                const std::unordered_map<std::string, size_t>& deltaStart,
                const std::unordered_map<std::string, size_t>& fullEnd,
                const std::set<std::string>& thisStratum) {
    obs::Span span;
    if (tracer_ != nullptr) {
      curRule_ = &ruleMetrics(ri);
      span = obs::Span(tracer_, ruleTag(ri));
    }
    std::unique_ptr<PlanContext> pctx =
        planFor(ri, rule, deltaPos, deltaStart, fullEnd, thisStratum);
    std::vector<Candidate> cands = collectCandidates(
        rule, deltaPos, deltaStart, fullEnd, thisStratum, SIZE_MAX, Range{},
        tracer_, pctx.get());
    bool changed = false;
    rel::CTable& out = idbTable(rule.head.pred, rule.head.args.size());
    for (auto& c : cands) {
      changed |= derive(out, std::move(c.vals), std::move(c.cond), nullptr);
    }
    curRule_ = nullptr;
    return changed;
  }

  // ---- parallel round (DESIGN.md §7 "Parallel execution") ----
  //
  // One fixpoint round splits into three phases:
  //   A1  candidate generation — one task per (rule, delta position),
  //       large first-literal scans further split into row chunks — on
  //       the thread pool; tasks read only the round snapshot, so they
  //       are mutually independent;
  //   A2  solver prechecks — the candidates are partitioned across
  //       SolverPool lanes and their conditions decided concurrently
  //       (skipped entirely for non-cloneable backends such as Z3);
  //   B   replay — the engine thread consumes candidates in serial task
  //       order through derive(), which performs all order-sensitive
  //       work (subsumption against the growing table, appends, stats,
  //       guard tuple/memory charges) and feeds precomputed verdicts
  //       through the main solver's accounting. Replay order equals
  //       serial derivation order, so tables, conditions and logical
  //       counters are bit-identical to threads=1.

  /// One (rule, delta position) application of the parallel round;
  /// `chunks` partitions the scan of body literal `clampLit` (one whole-
  /// range chunk when clampLit is SIZE_MAX).
  struct RoundTask {
    size_t ri = 0;
    size_t deltaPos = SIZE_MAX;
    size_t clampLit = SIZE_MAX;
    std::vector<Range> chunks;
    std::vector<std::vector<Candidate>> results;  // parallel to chunks
    // Physical plan, resolved (and its indexes ensured) on the engine
    // thread at task-list construction; A1 workers only read it.
    std::unique_ptr<PlanContext> plan;
  };

  /// Decides delta-partitioning for one task: split the scan of the
  /// first positive body literal when it is long enough and the literal
  /// carries no constant argument. (A constant argument keys the join
  /// index, which enumerates indexed rows before wild rows — chunking
  /// such a scan would reorder the candidate stream relative to serial.
  /// Constant-free first literals join with the plain row-order loop,
  /// where chunk concatenation is exactly the serial order.)
  void planPartition(RoundTask& t, const Rule& rule,
                     const std::unordered_map<std::string, size_t>& deltaStart,
                     const std::unordered_map<std::string, size_t>& fullEnd,
                     const std::set<std::string>& thisStratum) {
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const dl::Literal& lit = rule.body[i];
      if (lit.negated) continue;
      for (const Term& term : lit.atom.args) {
        if (term.kind == Term::Kind::Const) return;
      }
      const rel::CTable* table = findRelation(lit.atom.pred);
      if (table == nullptr) return;  // surfaces as EvalError in phase A1
      Range range = rangeFor(lit.atom.pred, t.deltaPos, i, deltaStart,
                             fullEnd, thisStratum, *table);
      size_t n = range.hi - range.lo;
      if (n < kPartitionMinRows) return;
      // 2x headroom for work stealing. With planning on, chunks probe
      // the relation's *persistent* JoinIndex (one build per key-set,
      // shared by every chunk); only the plan=off baseline still pays a
      // local index rebuild per chunk, so the chunk count stays modest.
      size_t want = threads_ * 2;
      size_t rows = std::max<size_t>(kPartitionMinRows / 4, (n + want - 1) / want);
      t.clampLit = i;
      t.chunks.clear();
      for (size_t lo = range.lo; lo < range.hi; lo += rows) {
        t.chunks.push_back(Range{lo, std::min(range.hi, lo + rows)});
      }
      return;  // only the first positive literal can be chunked
    }
  }

  bool parallelRound(const std::vector<size_t>& ruleIdx, bool first,
                     const std::unordered_map<std::string, size_t>& deltaStart,
                     const std::unordered_map<std::string, size_t>& fullEnd,
                     const std::set<std::string>& thisStratum) {
    // Task list in serial evaluation order — replay consumes it in this
    // order, which is the determinism anchor.
    std::vector<RoundTask> tasks;
    for (size_t ri : ruleIdx) {
      const Rule& rule = p_.rules[ri];
      std::vector<size_t> recursivePositions;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const dl::Literal& lit = rule.body[i];
        if (!lit.negated && thisStratum.count(lit.atom.pred) != 0) {
          recursivePositions.push_back(i);
        }
      }
      if (!first && recursivePositions.empty()) continue;
      std::vector<size_t> deltas;
      if (first || !opts_.semiNaive || recursivePositions.empty()) {
        deltas.push_back(SIZE_MAX);
      } else {
        deltas = recursivePositions;
      }
      for (size_t pos : deltas) {
        RoundTask t;
        t.ri = ri;
        t.deltaPos = pos;
        planPartition(t, rule, deltaStart, fullEnd, thisStratum);
        if (t.chunks.empty()) t.chunks.push_back(Range{});  // unpartitioned
        t.results.resize(t.chunks.size());
        t.plan = planFor(ri, rule, pos, deltaStart, fullEnd, thisStratum);
        tasks.push_back(std::move(t));
      }
    }
    if (tasks.empty()) return false;

    // Phase A1: generate candidates in parallel.
    {
      std::vector<std::function<void(size_t)>> jobs;
      for (auto& t : tasks) {
        const Rule& rule = p_.rules[t.ri];
        for (size_t ci = 0; ci < t.chunks.size(); ++ci) {
          jobs.push_back([this, &t, &rule, ci, &deltaStart, &fullEnd,
                          &thisStratum](size_t) {
            t.results[ci] = collectCandidates(
                rule, t.deltaPos, deltaStart, fullEnd, thisStratum,
                t.clampLit, t.chunks[ci], nullptr, t.plan.get());
          });
        }
      }
      threadPool_->run(std::move(jobs));
    }

    // Phase A2: pre-check candidate conditions on the solver pool.
    // Skipped when the backend cannot be cloned (Z3): replay then
    // issues the checks itself, exactly like serial evaluation.
    if (solverPool_ != nullptr && solverPool_->concurrent()) {
      std::vector<Candidate*> pending;
      for (auto& t : tasks) {
        const dl::Atom& head = p_.rules[t.ri].head;
        const rel::CTable& out = idbTable(head.pred, head.args.size());
        for (auto& chunk : t.results) {
          for (auto& c : chunk) {
            // Replay's first filter is syntactic subsumption against
            // the (then-current) table; a candidate already subsumed at
            // snapshot time never reaches the solver there, so checking
            // it here would be wasted work. Candidates that escape this
            // filter but get subsumed during replay simply drop their
            // precheck on the floor — logical accounting stays serial.
            if (smt::impliesSyntactically(c.cond, out.conditionOf(c.vals))) {
              continue;
            }
            // Cache-aware skip: a condition already decided — earlier
            // this round, a previous round, or a previous evaluation
            // sharing the cache — needs no lane dispatch; adopt the
            // memoized verdict as this candidate's precheck. Replay
            // consumes it through the same consumeDelegated path, so
            // logical accounting is unchanged.
            if (cache_ != nullptr && !c.cond.isTrue()) {
              if (auto hit = cache_->lookupCheck(c.cond)) {
                c.verdict = hit->sat;
                c.seconds = 0.0;
                c.enumerations = hit->enumerations;
                c.hasPrecheck = true;
                continue;
              }
            }
            pending.push_back(&c);
          }
        }
      }
      if (!pending.empty()) {
        size_t lanes = threadPool_->workers() + 1;
        size_t slices = std::min(pending.size(), lanes * 2);
        size_t per = (pending.size() + slices - 1) / slices;
        std::vector<std::function<void(size_t)>> jobs;
        for (size_t lo = 0; lo < pending.size(); lo += per) {
          size_t hi = std::min(pending.size(), lo + per);
          jobs.push_back([this, &pending, lo, hi](size_t lane) {
            // Deadline responsiveness: prechecks charge no budget (the
            // replay does), so poll the trip flag between checks.
            if (guard_ != nullptr && !guard_->checkDeadline()) {
              throw BudgetTrip{};
            }
            for (size_t i = lo; i < hi; ++i) {
              if (guard_ != nullptr && guard_->tripped()) throw BudgetTrip{};
              smt::SolverPool::Outcome oc =
                  solverPool_->check(lane, pending[i]->cond);
              pending[i]->verdict = oc.verdict;
              pending[i]->seconds = oc.seconds;
              pending[i]->enumerations = oc.enumerations;
              pending[i]->hasPrecheck = true;
            }
          });
        }
        threadPool_->run(std::move(jobs));
      }
    }

    // Phase B: serial replay in task order.
    bool changed = false;
    for (auto& t : tasks) {
      const Rule& rule = p_.rules[t.ri];
      obs::Span span;
      if (tracer_ != nullptr) {
        curRule_ = &ruleMetrics(t.ri);
        span = obs::Span(tracer_, ruleTag(t.ri));
      }
      rel::CTable& out = idbTable(rule.head.pred, rule.head.args.size());
      for (auto& chunk : t.results) {
        for (auto& c : chunk) {
          changed |= derive(out, std::move(c.vals), std::move(c.cond), &c);
        }
      }
      curRule_ = nullptr;
    }
    return changed;
  }

  // Budget charging: null guard compiles to a flag test, so the
  // ungoverned path stays hot. A trip aborts the fixpoint via BudgetTrip;
  // everything derived so far remains in idb_ as the partial result.
  void chargeSteps(uint64_t n) {
    if (guard_ != nullptr && !guard_->chargeSteps(n)) throw BudgetTrip{};
  }

  void chargeTuple() {
    if (guard_ != nullptr && !guard_->chargeTuples(1)) throw BudgetTrip{};
  }

  void chargeMemory(uint64_t bytes) {
    if (guard_ != nullptr && !guard_->chargeMemory(bytes)) throw BudgetTrip{};
  }

  /// Appends one candidate unless subsumed or contradictory. This is
  /// the order-sensitive core both evaluation modes share: in a
  /// parallel round it runs on the engine thread only, in serial task
  /// order. `pre` (parallel mode) carries a SolverPool verdict for the
  /// condition; it is consumed through the main solver's accounting so
  /// the logical `solver.*` stream matches serial evaluation, and is
  /// simply ignored when subsumption decides first — exactly the checks
  /// a serial run performs are accounted, in the same order.
  bool derive(rel::CTable& out, std::vector<Value> vals, smt::Formula cond,
              const Candidate* pre) {
    if (cond.isFalse()) return false;
    ++stats_.derivations;
    if (curRule_ != nullptr) curRule_->derivations->add();
    chargeTuple();
    // Syntactic subsumption first: most re-derivations repeat a condition
    // (or a weaker conjunction of one) already recorded for the data part.
    smt::Formula existing = out.conditionOf(vals);
    if (smt::impliesSyntactically(cond, existing)) {
      ++stats_.subsumed;
      if (curRule_ != nullptr) curRule_->subsumed->add();
      return false;
    }
    if (opts_.pruneWithSolver) {
      smt::Sat verdict =
          pre != nullptr && pre->hasPrecheck
              ? solver_->consumeDelegated(pre->verdict, pre->seconds,
                                          pre->enumerations)
              : solver_->check(cond);
      if (verdict == smt::Sat::Unsat) {
        ++stats_.prunedUnsat;
        if (curRule_ != nullptr) curRule_->prunedUnsat->add();
        return false;
      }
    }
    bool smallEnough =
        existing.kind() != smt::Formula::Kind::Or ||
        existing.node().kids.size() <= opts_.maxSubsumptionDisjuncts;
    if (opts_.mergeSubsumption && !existing.isFalse() && smallEnough &&
        solver_->implies(cond, existing)) {
      ++stats_.subsumed;
      if (curRule_ != nullptr) curRule_->subsumed->add();
      return false;
    }
    size_t rowBytes = sizeof(rel::Row) + vals.size() * sizeof(Value);
    bool appended = out.append(std::move(vals), std::move(cond));
    if (appended) {
      ++stats_.inserted;
      if (curRule_ != nullptr) curRule_->inserted->add();
      chargeMemory(rowBytes);
    }
    return appended;
  }

  static Value groundTerm(const Term& t, const CFrame& f,
                          const std::unordered_map<std::string, size_t>&
                              slotOf) {
    switch (t.kind) {
      case Term::Kind::Const:
        return t.constant;
      case Term::Kind::CVar:
        return Value::cvar(t.cvar);
      case Term::Kind::Var:
        return f.vals[slotOf.at(t.var)];
    }
    return t.constant;
  }

  // The c-domain match of two values: the condition under which they are
  // equal (True for equal constants, False for distinct constants, an
  // equality atom when a c-variable is involved).
  static smt::Formula matchValues(const Value& a, const Value& b) {
    return smt::Formula::cmp(a, smt::CmpOp::Eq, b);
  }

  /// `pidx` (planned, unreordered path) is the persistent index over
  /// this literal's key columns: probing it enumerates exactly the rows
  /// the local per-firing index would — same buckets, same ascending
  /// order, filtered to `range` — without the O(range) rebuild. Null
  /// keeps the pristine local-index path.
  void joinLiteral(const dl::Atom& atom, const rel::CTable& table,
                   Range range,
                   const std::unordered_map<std::string, size_t>& slotOf,
                   std::vector<CFrame>& frames, std::vector<bool>& bound,
                   const rel::JoinIndex* pidx = nullptr) {
    struct Pos {
      size_t arg;
      enum Kind { Fixed, BoundVar, FreeVar } kind;
      size_t slot = 0;   // vars
      Value value;       // Fixed: constant or c-variable from the rule
    };
    std::vector<Pos> positions;
    positions.reserve(atom.args.size());
    std::vector<bool> nowBound = bound;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      Pos pos;
      pos.arg = i;
      if (t.isVar()) {
        pos.slot = slotOf.at(t.var);
        if (nowBound[pos.slot]) {
          pos.kind = Pos::BoundVar;
        } else {
          pos.kind = Pos::FreeVar;
          nowBound[pos.slot] = true;
        }
      } else {
        pos.kind = Pos::Fixed;
        pos.value = t.asValue();
      }
      positions.push_back(std::move(pos));
    }

    // Key positions: Fixed constants and variables bound BEFORE this
    // literal. A Fixed position holding a rule c-variable matches any row
    // value, and a variable first bound within this atom has no frame
    // value yet — neither can key the index.
    std::vector<size_t> keyArgs;
    for (const auto& pos : positions) {
      if ((pos.kind == Pos::Fixed && pos.value.isConstant()) ||
          (pos.kind == Pos::BoundVar && bound[pos.slot])) {
        keyArgs.push_back(pos.arg);
      }
    }

    const auto& rows = table.rows();
    std::vector<CFrame> out;

    auto extend = [&](const CFrame& f, const rel::Row& row) {
      chargeSteps(1);
      smt::Formula cond = smt::Formula::conj2(f.cond, row.cond);
      if (cond.isFalse()) return;
      CFrame nf{f.vals, smt::Formula()};
      for (const auto& pos : positions) {
        const Value& v = row.vals[pos.arg];
        Value lhs;
        switch (pos.kind) {
          case Pos::Fixed:
            lhs = pos.value;
            break;
          case Pos::BoundVar:
            lhs = nf.vals[pos.slot];
            break;
          case Pos::FreeVar:
            nf.vals[pos.slot] = v;
            continue;
        }
        smt::Formula eq = matchValues(lhs, v);
        if (eq.isFalse()) return;
        cond = smt::Formula::conj2(cond, eq);
        if (cond.isFalse()) return;
      }
      nf.cond = std::move(cond);
      out.push_back(std::move(nf));
    };

    if (keyArgs.empty()) {
      for (const auto& f : frames) {
        for (size_t r = range.lo; r < range.hi; ++r) extend(f, rows[r]);
      }
    } else if (pidx != nullptr && pidx->keyArgs() == keyArgs &&
               pidx->builtUpTo() >= range.hi) {
      // Persistent-index probe. Bucket and wild lists are ascending, so
      // restricting them to [lo, hi) by binary search enumerates the
      // same rows, in the same order, as the local build below.
      auto forRange = [&](const std::vector<size_t>& list, auto&& fn) {
        auto first = std::lower_bound(list.begin(), list.end(), range.lo);
        auto last = std::lower_bound(first, list.end(), range.hi);
        for (auto it = first; it != last; ++it) fn(*it);
      };
      uint64_t probes = 0;
      uint64_t hits = 0;
      for (const auto& f : frames) {
        bool probeWild = false;
        size_t h = rel::JoinIndex::hashInit();
        for (size_t a : keyArgs) {
          const Pos& pos = positions[a];
          const Value& v =
              pos.kind == Pos::Fixed ? pos.value : f.vals[pos.slot];
          if (v.isCVar()) {
            probeWild = true;
            break;
          }
          h = rel::JoinIndex::hashStep(h, v);
        }
        if (probeWild) {
          for (size_t r = range.lo; r < range.hi; ++r) extend(f, rows[r]);
          continue;
        }
        ++probes;
        if (const std::vector<size_t>* bucket = pidx->bucket(h)) {
          forRange(*bucket, [&](size_t r) {
            ++hits;
            extend(f, rows[r]);
          });
        }
        forRange(pidx->wildRows(), [&](size_t r) { extend(f, rows[r]); });
      }
      planStats_.probes.fetch_add(probes, std::memory_order_relaxed);
      planStats_.hits.fetch_add(hits, std::memory_order_relaxed);
    } else {
      // Rows with a c-variable in any key position match any probe; keep
      // them aside and hash the rest.
      std::unordered_map<size_t, std::vector<size_t>> index;
      std::vector<size_t> wildRows;
      for (size_t r = range.lo; r < range.hi; ++r) {
        bool wild = false;
        size_t h = 0xcbf29ce484222325ULL;
        for (size_t a : keyArgs) {
          const Value& v = rows[r].vals[a];
          if (v.isCVar()) {
            wild = true;
            break;
          }
          h = (h ^ v.hash()) * 1099511628211ULL;
        }
        if (wild) {
          wildRows.push_back(r);
        } else {
          index[h].push_back(r);
        }
      }
      for (const auto& f : frames) {
        // A probe value that is itself a c-variable matches any row value,
        // so the index cannot be used for this frame.
        bool probeWild = false;
        size_t h = 0xcbf29ce484222325ULL;
        for (size_t a : keyArgs) {
          const Pos& pos = positions[a];
          const Value& v =
              pos.kind == Pos::Fixed ? pos.value : f.vals[pos.slot];
          if (v.isCVar()) {
            probeWild = true;
            break;
          }
          h = (h ^ v.hash()) * 1099511628211ULL;
        }
        if (probeWild) {
          for (size_t r = range.lo; r < range.hi; ++r) extend(f, rows[r]);
          continue;
        }
        auto it = index.find(h);
        if (it != index.end()) {
          for (size_t r : it->second) extend(f, rows[r]);
        }
        for (size_t r : wildRows) extend(f, rows[r]);
      }
    }
    frames = std::move(out);
    bound = nowBound;
  }

  /// Reordered-plan enumeration. Three phases, together byte-identical
  /// to the serial program-order join (DESIGN.md §11):
  ///
  ///  1. Enumerate row combinations in *plan* order, probing persistent
  ///     indexes. Pruning is restricted to conditions that are provably
  ///     serial-fatal: a constant-vs-constant mismatch on a probe column
  ///     (the serial equality atom folds false), and the conjunction of
  ///     the rows' own conditions folding false (Formula::conj's
  ///     false-folding is subset-monotone — a complement pair among a
  ///     subset of serial's conjuncts persists in the full set). Hash
  ///     collisions with equal-looking buckets and wild rows are
  ///     enumerated, never dropped: the combination set is a superset of
  ///     the serial survivors.
  ///  2. Replay each combination through the serial condition sequence
  ///     — program order, the exact conj2/equality-atom chain of
  ///     joinLiteral's extend — which filters the superset down to
  ///     exactly the serial frame set with exactly the serial formulas.
  ///  3. Sort by serial enumeration rank: per literal in program order,
  ///     the row index, with bucket rows ordered before wild rows when
  ///     the serial path would key that literal (serial enumerates its
  ///     per-frame bucket ascending, then wild rows ascending).
  ///     Lexicographic rank order equals serial frame order; ties are
  ///     impossible (distinct row tuples).
  ///
  /// Step budget: one charge per row attempted in phase 1, none in the
  /// replay — under a reordered plan the charge stream intentionally
  /// tracks the *physical* work, so budget trip points may differ from
  /// plan=off (results never do; the determinism matrix runs
  /// unbudgeted).
  std::vector<CFrame> plannedEnumerate(
      const Rule& rule, const PlanContext& ctx, size_t deltaPos,
      const std::unordered_map<std::string, size_t>& deltaStart,
      const std::unordered_map<std::string, size_t>& fullEnd,
      const std::set<std::string>& thisStratum, size_t clampLit,
      Range clamp) {
    const RuleShape& shape = *ctx.shape;
    size_t nLits = shape.lits.size();

    struct Combo {
      std::vector<size_t> rows;  // by literal position, program order
      smt::Formula acc;          // conjunction of the rows' conditions
    };
    std::vector<Combo> combos{
        Combo{std::vector<size_t>(nLits, SIZE_MAX), smt::Formula::top()}};

    uint64_t probes = 0;
    uint64_t hits = 0;
    auto forRange = [](const std::vector<size_t>& list, Range range,
                      auto&& fn) {
      auto first = std::lower_bound(list.begin(), list.end(), range.lo);
      auto last = std::lower_bound(first, list.end(), range.hi);
      for (auto it = first; it != last; ++it) fn(*it);
    };

    for (size_t step = 0; step < ctx.plan.order.size() && !combos.empty();
         ++step) {
      const PlannedLiteral& pl = ctx.plan.order[step];
      const RuleShape::LitShape& ls = shape.lits[pl.lit];
      const rel::CTable& table = *ctx.tables[pl.lit];
      const auto& rows = table.rows();
      const dl::Literal& lit = rule.body[ls.body];
      Range range =
          ls.body == clampLit
              ? clamp
              : rangeFor(lit.atom.pred, deltaPos, ls.body, deltaStart,
                         fullEnd, thisStratum, table);
      const rel::JoinIndex* idx = ctx.stepIndex[step];

      std::vector<Combo> next;
      std::vector<const Value*> probeVals(pl.probes.size());
      for (const Combo& c : combos) {
        bool wildProbe = pl.probes.empty();
        for (size_t i = 0; i < pl.probes.size(); ++i) {
          const PlannedProbe& p = pl.probes[i];
          probeVals[i] =
              p.fixed ? &p.fixedValue
                      : &ctx.tables[p.srcLit]->rows()[c.rows[p.srcLit]]
                             .vals[p.srcArg];
          if (probeVals[i]->isCVar()) wildProbe = true;
        }
        auto tryRow = [&](size_t r) {
          chargeSteps(1);
          const rel::Row& row = rows[r];
          for (size_t i = 0; i < pl.probes.size(); ++i) {
            const Value& pv = *probeVals[i];
            const Value& rv = row.vals[pl.probes[i].arg];
            // Constant mismatch on a probe column: the serial equality
            // atom folds false — provably serial-fatal, safe to drop.
            if (pv.isConstant() && rv.isConstant() && !(pv == rv)) return;
          }
          smt::Formula acc = smt::Formula::conj2(c.acc, row.cond);
          if (acc.isFalse()) return;  // subset-monotone: serial folds too
          Combo nc;
          nc.rows = c.rows;
          nc.rows[pl.lit] = r;
          nc.acc = std::move(acc);
          next.push_back(std::move(nc));
        };
        if (wildProbe || idx == nullptr) {
          for (size_t r = range.lo; r < range.hi; ++r) tryRow(r);
        } else {
          ++probes;
          size_t h = rel::JoinIndex::hashInit();
          for (const Value* v : probeVals) {
            h = rel::JoinIndex::hashStep(h, *v);
          }
          if (const std::vector<size_t>* bucket = idx->bucket(h)) {
            forRange(*bucket, range, [&](size_t r) {
              ++hits;
              tryRow(r);
            });
          }
          forRange(idx->wildRows(), range, [&](size_t r) { tryRow(r); });
        }
      }
      combos = std::move(next);
    }
    planStats_.probes.fetch_add(probes, std::memory_order_relaxed);
    planStats_.hits.fetch_add(hits, std::memory_order_relaxed);

    // Phase 2 + 3: serial replay, then canonical sort.
    struct Built {
      CFrame frame;
      std::vector<uint64_t> rank;
    };
    std::vector<Built> built;
    built.reserve(combos.size());
    for (const Combo& c : combos) {
      Built b;
      b.frame =
          CFrame{std::vector<Value>(shape.slotCount), smt::Formula::top()};
      b.rank.reserve(nLits);
      bool alive = true;
      for (size_t lp = 0; lp < nLits && alive; ++lp) {
        const RuleShape::LitShape& ls = shape.lits[lp];
        const rel::Row& row = ctx.tables[lp]->rows()[c.rows[lp]];
        // Rank before binding: serial keys this literal on values the
        // frame holds *entering* the literal.
        uint64_t rk = c.rows[lp];
        if (!ls.serialKeyArgs.empty()) {
          bool probeWild = false;
          for (size_t a : ls.serialKeyArgs) {
            const RuleShape::Arg& arg = ls.args[a];
            const Value& v = arg.kind == RuleShape::Arg::Kind::Fixed
                                 ? arg.value
                                 : b.frame.vals[arg.slot];
            if (v.isCVar()) {
              probeWild = true;
              break;
            }
          }
          if (!probeWild) {
            for (size_t a : ls.serialKeyArgs) {
              if (row.vals[a].isCVar()) {
                rk |= uint64_t{1} << 63;
                break;
              }
            }
          }
        }
        b.rank.push_back(rk);
        // Serial extend replay: the exact conj2 sequence of joinLiteral.
        smt::Formula cond = smt::Formula::conj2(b.frame.cond, row.cond);
        if (cond.isFalse()) {
          alive = false;
          break;
        }
        for (size_t a = 0; a < ls.args.size() && alive; ++a) {
          const RuleShape::Arg& arg = ls.args[a];
          const Value& v = row.vals[a];
          Value lhs;
          switch (arg.kind) {
            case RuleShape::Arg::Kind::Fixed:
              lhs = arg.value;
              break;
            case RuleShape::Arg::Kind::BoundVar:
              lhs = b.frame.vals[arg.slot];
              break;
            case RuleShape::Arg::Kind::FreeVar:
              b.frame.vals[arg.slot] = v;
              continue;
          }
          smt::Formula eq = matchValues(lhs, v);
          if (eq.isFalse()) {
            alive = false;
            break;
          }
          cond = smt::Formula::conj2(cond, eq);
          if (cond.isFalse()) alive = false;
        }
        if (alive) b.frame.cond = std::move(cond);
      }
      if (alive) built.push_back(std::move(b));
    }
    std::sort(built.begin(), built.end(),
              [](const Built& a, const Built& b) { return a.rank < b.rank; });
    std::vector<CFrame> frames;
    frames.reserve(built.size());
    for (Built& b : built) frames.push_back(std::move(b.frame));
    return frames;
  }

  smt::Formula comparisonFormula(
      const dl::Comparison& cmp, const CFrame& f,
      const std::unordered_map<std::string, size_t>& slotOf) {
    auto single = [&](const dl::LinExpr& e) -> std::optional<Value> {
      if (e.isSingleTerm()) return groundTerm(e.terms[0].first, f, slotOf);
      return std::nullopt;
    };
    std::optional<Value> lv = single(cmp.lhs);
    std::optional<Value> rv = single(cmp.rhs);
    if (lv && rv) return smt::Formula::cmp(*lv, cmp.op, *rv);
    // Arithmetic comparison: lhs - rhs  op  0 over integer values and
    // integer-typed c-variables.
    smt::LinTerm diff;
    auto accumulate = [&](const dl::LinExpr& e, int64_t sign) {
      diff.cst += sign * e.cst;
      std::vector<std::pair<CVarId, int64_t>> entries = diff.coefs;
      for (const auto& [t, c] : e.terms) {
        Value v = groundTerm(t, f, slotOf);
        if (v.isCVar()) {
          entries.emplace_back(v.asCVar(), sign * c);
        } else if (v.kind() == Value::Kind::Int) {
          diff.cst += sign * c * v.asInt();
        } else {
          throw TypeError("arithmetic on non-integer value " + v.toString());
        }
      }
      diff = smt::LinTerm::make(std::move(entries), diff.cst);
    };
    accumulate(cmp.lhs, 1);
    accumulate(cmp.rhs, -1);
    return smt::Formula::lin(std::move(diff), cmp.op);
  }

  void applyNegation(const dl::Atom& atom,
                     const std::unordered_map<std::string, size_t>& slotOf,
                     std::vector<CFrame>& frames) {
    if (opts_.openWorldNegation != nullptr) {
      applyOpenWorldNegation(atom, slotOf, frames);
      return;
    }
    const rel::CTable* table = findRelation(atom.pred);
    std::vector<CFrame> kept;
    for (auto& f : frames) {
      std::vector<Value> probe;
      probe.reserve(atom.args.size());
      for (const auto& t : atom.args) probe.push_back(groundTerm(t, f, slotOf));
      smt::Formula cond = f.cond;
      if (table != nullptr) {
        for (const auto& row : table->rows()) {
          chargeSteps(1);
          smt::Formula eq = rel::tupleEquality(probe, row.vals);
          if (eq.isFalse()) continue;
          cond = smt::Formula::conj2(
              cond, smt::Formula::neg(smt::Formula::conj2(row.cond, eq)));
          if (cond.isFalse()) break;
        }
      }
      if (cond.isFalse()) continue;
      f.cond = std::move(cond);
      kept.push_back(std::move(f));
    }
    frames = std::move(kept);
  }

  // Open-world negation (containment reduction, §5): ¬B(u) holds exactly
  // when u coincides with a listed negative fact of B.
  void applyOpenWorldNegation(
      const dl::Atom& atom,
      const std::unordered_map<std::string, size_t>& slotOf,
      std::vector<CFrame>& frames) {
    const auto& facts = opts_.openWorldNegation->facts;
    auto it = facts.find(atom.pred);
    std::vector<CFrame> kept;
    for (auto& f : frames) {
      if (it == facts.end()) continue;  // nothing known absent: frame dies
      std::vector<Value> probe;
      probe.reserve(atom.args.size());
      for (const auto& t : atom.args) probe.push_back(groundTerm(t, f, slotOf));
      std::vector<smt::Formula> matches;
      for (const auto& fact : it->second) {
        if (fact.size() != probe.size()) {
          throw EvalError("negative fact arity mismatch for '" + atom.pred +
                          "'");
        }
        smt::Formula eq = rel::tupleEquality(probe, fact);
        if (!eq.isFalse()) matches.push_back(std::move(eq));
      }
      smt::Formula cond =
          smt::Formula::conj2(f.cond, smt::Formula::disj(std::move(matches)));
      if (cond.isFalse()) continue;
      f.cond = std::move(cond);
      kept.push_back(std::move(f));
    }
    frames = std::move(kept);
  }

  // ---- observability (no-ops when tracer_ is null) ----

  /// Per-rule registry handles, resolved once per rule index so the hot
  /// derive() path is pointer bumps, not name lookups.
  struct RuleMetrics {
    obs::Counter* derivations = nullptr;
    obs::Counter* inserted = nullptr;
    obs::Counter* prunedUnsat = nullptr;
    obs::Counter* subsumed = nullptr;
  };

  /// Stable display tag for rule `ri`, e.g. "rule[2:Reach]".
  const std::string& ruleTag(size_t ri) {
    if (ruleTags_.empty()) ruleTags_.resize(p_.rules.size());
    std::string& tag = ruleTags_[ri];
    if (tag.empty()) {
      tag = "rule[" + std::to_string(ri) + ":" + p_.rules[ri].head.pred + "]";
    }
    return tag;
  }

  RuleMetrics& ruleMetrics(size_t ri) {
    if (ruleMetrics_.empty()) ruleMetrics_.resize(p_.rules.size());
    RuleMetrics& m = ruleMetrics_[ri];
    if (m.derivations == nullptr) {
      obs::Registry& reg = tracer_->metrics();
      const std::string base = "eval." + ruleTag(ri) + ".";
      m.derivations = &reg.counter(base + "derivations");
      m.inserted = &reg.counter(base + "inserted");
      m.prunedUnsat = &reg.counter(base + "pruned_unsat");
      m.subsumed = &reg.counter(base + "subsumed");
    }
    return m;
  }

  /// Mirrors the aggregate EvalStats into the registry (`eval.*`). The
  /// per-rule and per-stratum counters accumulate live; the aggregates
  /// flush once per evaluation so both views stay consistent.
  void flushMetrics(bool degraded) {
    if (tracer_ == nullptr) return;
    obs::Registry& reg = tracer_->metrics();
    reg.counter("eval.evaluations").add();
    reg.counter("eval.derivations").add(stats_.derivations);
    reg.counter("eval.inserted").add(stats_.inserted);
    reg.counter("eval.pruned_unsat").add(stats_.prunedUnsat);
    reg.counter("eval.subsumed").add(stats_.subsumed);
    reg.counter("eval.rounds").add(stats_.iterations);
    reg.counter("eval.budget_trips").add(stats_.budgetTrips);
    if (degraded) reg.counter("eval.incomplete").add();
    reg.histogram("eval.sql_seconds").observe(stats_.sqlSeconds);
    reg.histogram("eval.solver_seconds").observe(stats_.solverSeconds);
    // Physical parallel-execution totals. Kept in their own namespace:
    // everything above is serial-identical by construction, everything
    // under eval.par.* describes how the work was scheduled and is
    // expected to vary with the thread count.
    if (threads_ > 1) {
      reg.gauge("eval.par.threads").set(static_cast<double>(threads_));
      if (solverPool_ != nullptr && solverPool_->concurrent()) {
        smt::SolverStats ps = solverPool_->pooledStats();
        reg.counter("eval.par.precheck.checks").add(ps.checks);
        reg.counter("eval.par.precheck.unsat").add(ps.unsat);
        reg.counter("eval.par.precheck.unknown").add(ps.unknown);
        reg.counter("eval.par.precheck.enumerations").add(ps.enumerations);
        reg.gauge("eval.par.precheck.seconds").set(ps.seconds);
        reg.counter("eval.par.lane_replacements")
            .add(solverPool_->laneReplacements());
        reg.counter("eval.par.poisoned_checks")
            .add(solverPool_->poisonedChecks());
      }
    }
    // Join-planner totals (DESIGN.md §11). Physical like eval.par.*:
    // which indexes get built and how many probes hit depends on the
    // plan, and the whole point of the planner is to change physical
    // work — the determinism gate normalizes eval.plan.* away.
    if (planMode_ != PlanMode::Off) {
      reg.counter("eval.plan.plans").add(planStats_.plans);
      reg.counter("eval.plan.reorders").add(planStats_.reorders);
      reg.counter("eval.plan.index_builds").add(planStats_.indexBuilds);
      reg.counter("eval.plan.index_extensions")
          .add(planStats_.indexExtensions);
      reg.counter("eval.plan.probes")
          .add(planStats_.probes.load(std::memory_order_relaxed));
      reg.counter("eval.plan.hits")
          .add(planStats_.hits.load(std::memory_order_relaxed));
      reg.counter("eval.plan.est_rows").add(planStats_.estRows);
      reg.counter("eval.plan.actual_rows")
          .add(planStats_.actualRows.load(std::memory_order_relaxed));
    }
    // Verdict-cache deltas for this evaluation. Physical like eval.par.*
    // — which lookup misses depends on scheduling (two lanes can miss
    // the same formula concurrently) — so the determinism gate
    // normalizes solver.cache.* away; hit *verdicts* are deterministic.
    if (cache_ != nullptr) {
      smt::VerdictCache::Stats cs = cache_->stats();
      reg.counter("solver.cache.hits").add(cs.hits - cacheBefore_.hits);
      reg.counter("solver.cache.misses").add(cs.misses - cacheBefore_.misses);
      reg.counter("solver.cache.evictions")
          .add(cs.evictions - cacheBefore_.evictions);
      reg.gauge("solver.cache.entries").set(static_cast<double>(cs.entries));
    }
  }

  const Program& p_;
  const rel::Database& db_;
  smt::SolverBase* solver_;
  EvalOptions opts_;
  StrataPlan* plan_ = nullptr;  // selective re-evaluation (incremental.hpp)
  ResourceGuard* guard_;
  obs::Tracer* tracer_;
  EvalStats stats_;
  std::map<std::string, rel::CTable> idb_;
  std::vector<std::string> ruleTags_;
  std::vector<RuleMetrics> ruleMetrics_;
  RuleMetrics* curRule_ = nullptr;  // set around derive() by evalRule

  // Supervision wrapper around the caller's (borrowed) solver; solver_
  // points at it when EvalOptions::supervision is enabled. Destroying it
  // restores the caller's verdict cache to the wrapped backend.
  std::unique_ptr<smt::SupervisedSolver> supervisionWrap_;

  // Parallel execution (null / 1 in serial mode).
  size_t threads_ = 1;
  std::unique_ptr<util::ThreadPool> threadPool_;
  std::unique_ptr<smt::SolverPool> solverPool_;

  // The main solver's verdict cache (null when none attached), with its
  // stats snapshot at construction so flushMetrics reports this
  // evaluation's deltas.
  smt::VerdictCache* cache_ = nullptr;
  smt::VerdictCache::Stats cacheBefore_;

  // Cost-based planning (plan.hpp, DESIGN.md §11). Shapes are static
  // per rule; explained_ limits EXPLAIN output to one dump per (rule,
  // delta position) per evaluation. Engine-thread counters are plain;
  // probe/hit/actual-row counts accumulate on A1 workers and use
  // relaxed atomics (totals only, no ordering dependency).
  PlanMode planMode_ = PlanMode::Off;
  std::vector<std::optional<RuleShape>> shapes_;
  std::set<std::pair<size_t, size_t>> explained_;
  struct PlanCounters {
    uint64_t plans = 0;
    uint64_t reorders = 0;
    uint64_t indexBuilds = 0;
    uint64_t indexExtensions = 0;
    uint64_t estRows = 0;
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> actualRows{0};
  } planStats_;
};

}  // namespace

size_t resolveThreads(const EvalOptions& opts) {
  unsigned long t = 1;
  if (opts.threads.has_value()) {
    t = *opts.threads;
  } else if (const char* env = std::getenv("FAURE_THREADS");
             env != nullptr && *env != '\0') {
    t = std::strtoul(env, nullptr, 10);
  }
  if (t == 0) return util::ThreadPool::hardwareConcurrency();
  return static_cast<size_t>(t);
}

EvalResult evalFaure(const dl::Program& p, const rel::Database& db,
                     smt::SolverBase* solver, const EvalOptions& opts) {
  return FaureEvaluator(p, db, solver, opts).run();
}

EvalResult evalFaure(const dl::Program& p, const rel::Database& db) {
  smt::NativeSolver solver(db.cvars());
  return evalFaure(p, db, &solver, EvalOptions{});
}

EvalResult evalFaurePlanned(const dl::Program& p, const rel::Database& db,
                            smt::SolverBase* solver, const EvalOptions& opts,
                            StrataPlan plan) {
  return FaureEvaluator(p, db, solver, opts, &plan).run();
}

}  // namespace faure::fl
