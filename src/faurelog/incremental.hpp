// Incremental what-if evaluation (DESIGN.md §10).
//
// Fauré's headline workload is a *sequence of small edits* to an
// otherwise fixed network: retract a link, add a firewall rule,
// re-decide the constraints. Re-running the whole stratified fixpoint
// per edit wastes exactly the work the stratification already
// localises, so the engine here retains the derived c-tables of a
// completed run (IncrementalState) and, per edit batch, re-fires only
// the strata whose rules transitively touch a changed relation. The
// untouched strata's tables are reused *verbatim* — which is what makes
// the correctness contract checkable at the byte level:
//
//   oracle contract — for any edit script, at any thread count, solver
//   cache on or off, reevaluate() with incrementality enabled produces
//   output byte-identical to a full recompute (FAURE_INCREMENTAL=0).
//
// Evaluation is deterministic (DESIGN.md §7), so a stratum none of
// whose direct or transitive inputs changed derives the same table the
// previous epoch derived; reusing it is not an approximation. Strata
// that *are* affected recompute from scratch against the live EDB and
// the retained lower strata — through the same interner, so the
// VerdictCache carries its hits across epochs (tools/determinism_check
// --edit-script enforces both the byte identity and that the
// incremental path fires strictly fewer rules).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/analysis.hpp"
#include "datalog/ast.hpp"
#include "faurelog/eval.hpp"
#include "faurelog/textio.hpp"
#include "relational/database.hpp"
#include "smt/solver.hpp"

namespace faure::fl {

/// Everything retained from a completed epoch: the per-stratum derived
/// c-tables, the per-rule delta indexes consulted when an edit arrives,
/// and per-predicate provenance counts (how many rows each retained
/// relation carries — the cheap summary the stats report).
struct IncrementalState {
  /// False until the first reevaluate() completes (or after an
  /// incomplete/degraded epoch, which poisons reuse).
  bool valid = false;
  /// Derived tables of the last complete epoch, keyed by predicate.
  std::map<std::string, rel::CTable> idb;
  /// pred -> indices of rules with pred in their body: the delta index
  /// that seeds the affected-predicate closure when pred changes.
  std::map<std::string, std::vector<size_t>> bodyIndex;
  /// pred -> retained row count (provenance summary of `idb`).
  std::map<std::string, uint64_t> provenance;
};

/// Cumulative counters across an engine's lifetime, mirrored into the
/// tracer registry as `eval.inc.*` when EvalOptions::tracer is set.
/// Recorded in *both* modes so the oracle and the incremental path can
/// be compared: a full-recompute epoch counts every rule as refired.
struct IncStats {
  uint64_t epochs = 0;          // completed reevaluate() calls
  uint64_t fullRecomputes = 0;  // epochs that ran every stratum
  uint64_t refiredRules = 0;    // rules in executed strata, summed
  uint64_t skippedRules = 0;    // rules in reused strata, summed
  uint64_t dirtyStrata = 0;     // strata executed, summed
  uint64_t reusedStrata = 0;    // strata reused verbatim, summed
  uint64_t deltaInserts = 0;    // +Fact edits applied
  uint64_t deltaRetracts = 0;   // -Fact edits applied
};

/// The delta API over one (program, database, solver) triple.
///
///   IncrementalEngine eng(program, db, solver, opts);
///   eng.reevaluate();             // epoch 0: full run, baseline retained
///   eng.insertFact("F", {...});   // stage edits (applied to db at once)
///   eng.retractFact("F", {...});
///   eng.reevaluate();             // re-fires only the affected strata
///
/// The engine owns the edit staging and the retained state; the caller
/// keeps owning the database (which the engine mutates through the
/// delta API only) and the solver (whose verdict cache is the cross-
/// epoch reuse vehicle). Mutating the database behind the engine's back
/// invalidates the retained tables silently — call invalidate() after
/// any out-of-band change.
class IncrementalEngine {
 public:
  /// Throws EvalError when `opts` asks for simplifyResults (its solver
  /// rewrites are global, so there is no sound per-stratum reuse).
  /// Incrementality defaults to the FAURE_INCREMENTAL environment
  /// variable — unset or any value but "0" means on.
  IncrementalEngine(dl::Program program, rel::Database& db,
                    smt::SolverBase* solver, EvalOptions opts = {});

  /// Toggles delta propagation. Off = the full-recompute oracle: every
  /// reevaluate() runs every stratum (retained state is still updated,
  /// so re-enabling later reuses it).
  void setIncremental(bool on) { enabled_ = on; }
  bool incremental() const { return enabled_; }

  /// Stages and applies an insertion into base relation `pred` (merged
  /// through CTable::insert, so an existing data part ORs conditions).
  /// Returns true when the table changed. Throws EvalError for an
  /// unknown relation or arity/type mismatch.
  bool insertFact(const std::string& pred, std::vector<Value> vals,
                  smt::Formula cond = smt::Formula::top());

  /// Removes every row of `pred` with exactly this data part; returns
  /// the number of rows removed. A miss (0) still marks the relation
  /// dirty — retracting an absent fact is a no-op edit, not an error.
  size_t retractFact(const std::string& pred,
                     const std::vector<Value>& vals);

  /// Applies a parsed `+Fact(...)` / `-Fact(...)` directive.
  void apply(const Edit& edit);

  /// Recomputes the derived relations: the affected-predicate closure
  /// of the staged edits picks the strata to re-fire, everything else
  /// is served from the retained state (see the oracle contract above).
  /// The first call, any call after invalidate(), and every call with
  /// incrementality off run all strata. An incomplete (budget-tripped)
  /// result is returned as-is and poisons the retained state.
  EvalResult reevaluate();

  /// Drops the retained state; the next reevaluate() is a full run.
  /// Use after mutating the database outside the delta API.
  void invalidate();

  /// Installs another engine's retained state (snapshot forking,
  /// DESIGN.md §12): the adopted tables become this engine's "last
  /// complete epoch", so the next reevaluate() reuses every stratum an
  /// edit does not reach — without ever having run epoch 0 here. Both
  /// engines must be built over the same program, and this engine's
  /// database must currently equal the EDB the adopted state was
  /// derived from (ScenarioSet guarantees both by construction: forks
  /// clone the base database and share the base program). The delta
  /// index is program-derived and kept; tables are copied, carrying
  /// their persistent JoinIndexes.
  void adoptState(const IncrementalState& state);

  const IncrementalState& state() const { return state_; }
  const IncStats& stats() const { return inc_; }
  /// Predicates edited since the last reevaluate().
  const std::set<std::string>& pendingDirty() const { return dirty_; }

 private:
  std::vector<char> planStrata(const std::set<std::string>& affected) const;

  dl::Program p_;
  rel::Database& db_;
  smt::SolverBase* solver_;
  EvalOptions opts_;
  /// The refined evaluation partition: dl::stratify's negation strata
  /// split into topologically-ordered SCC units, so independent rule
  /// families can be skipped independently (eval.hpp StrataPlan).
  dl::Stratification strat_;
  /// Head predicates per unit (dedup'd), aligned with ruleStrata.
  std::vector<std::set<std::string>> stratumHeads_;
  bool enabled_ = true;
  IncrementalState state_;
  IncStats inc_;
  std::set<std::string> dirty_;
  uint64_t pendingInserts_ = 0;
  uint64_t pendingRetracts_ = 0;
};

}  // namespace faure::fl
