#include "faurelog/scenario.hpp"

#include <functional>
#include <utility>

#include "faurelog/textio.hpp"
#include "obs/trace.hpp"
#include "smt/z3_solver.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace faure::fl {

namespace {

bool whitespaceOnly(std::string_view s) {
  return s.find_first_not_of(" \t\r\n") == std::string_view::npos;
}

/// Renders the derived relations exactly as the CLI prints an epoch.
std::string renderTables(const EvalResult& res, const CVarRegistry& reg,
                         const std::string& relation) {
  std::string out;
  for (const auto& [pred, table] : res.idb) {
    if (!relation.empty() && pred != relation) continue;
    out += table.toString(&reg);
    out += '\n';
  }
  return out;
}

}  // namespace

std::vector<Scenario> parseScenarioFile(std::string_view text) {
  std::vector<std::string> blocks;
  std::string cur;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    std::string_view trimmed = line;
    while (!trimmed.empty() &&
           (trimmed.back() == '\r' || trimmed.back() == ' ')) {
      trimmed.remove_suffix(1);
    }
    if (trimmed == "---") {
      blocks.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += line;
      cur += '\n';
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  blocks.push_back(std::move(cur));
  // A file that starts or ends with the delimiter (or trails off in
  // blank lines) did not mean an empty scenario there; interior empty
  // blocks stay — they are valid epoch-0-only scenarios.
  if (!blocks.empty() && whitespaceOnly(blocks.front())) {
    blocks.erase(blocks.begin());
  }
  if (!blocks.empty() && whitespaceOnly(blocks.back())) blocks.pop_back();
  std::vector<Scenario> out;
  out.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    out.push_back({std::to_string(i + 1), std::move(blocks[i])});
  }
  return out;
}

ScenarioSet::ScenarioSet(dl::Program program, rel::Database base,
                         ScenarioSetOptions opts)
    : p_(std::move(program)),
      base_(std::make_unique<rel::Database>(std::move(base))),
      opts_(std::move(opts)) {
  if (opts_.cacheEntries > 0) {
    cache_ = std::make_unique<smt::VerdictCache>(base_->cvars(),
                                                 opts_.cacheEntries);
  }
  // Fail fast on a bad solver name instead of from a worker thread.
  makeForkSolver();
}

EvalOptions ScenarioSet::innerOpts() const {
  EvalOptions o = opts_.eval;
  // Scenario-level parallelism subsumes the inner pool; results are
  // byte-identical at any inner thread count (DESIGN.md §7), so pin
  // serial and never nest pools.
  o.threads = 1;
  return o;
}

std::unique_ptr<smt::SolverBase> ScenarioSet::makeForkSolver() {
  std::unique_ptr<smt::SolverBase> solver;
  if (opts_.solverName == "z3") {
    solver = smt::makeZ3Solver(base_->cvars());
    if (solver == nullptr) throw EvalError("this build has no Z3 backend");
  } else if (opts_.solverName == "native") {
    solver = std::make_unique<smt::NativeSolver>(base_->cvars());
  } else {
    throw EvalError("unknown solver '" + opts_.solverName + "'");
  }
  if (cache_ != nullptr) solver->setVerdictCache(cache_.get());
  if (opts_.supervision.enabled) {
    auto wrapped = std::make_unique<smt::SupervisedSolver>(base_->cvars(),
                                                           opts_.supervision);
    wrapped->addBackend(opts_.solverName, std::move(solver));
    if (opts_.supervision.failover) wrapped->addNativeFallback();
    solver = std::move(wrapped);
  }
  return solver;
}

const EvalResult& ScenarioSet::prepare() {
  if (prepared_) return baseResult_;
  obs::Span span(opts_.eval.tracer, "serve.prepare");
  auto solver = makeForkSolver();
  ResourceGuard guard(opts_.limits);
  EvalOptions eopts = innerOpts();
  if (guard.active()) {
    eopts.guard = &guard;
    solver->setGuard(&guard);
  }
  IncrementalEngine eng(p_, *base_, solver.get(), eopts);
  if (opts_.mode >= 0) eng.setIncremental(opts_.mode == 1);
  baseResult_ = eng.reevaluate();
  baseState_ = eng.state();
  baseOutput_ = "== epoch 0: initial ==\n" +
                renderTables(baseResult_, base_->cvars(), opts_.relation);
  prepared_ = true;
  return baseResult_;
}

ScenarioOutcome ScenarioSet::evaluateOne(const Scenario& s) {
  obs::Span span(opts_.eval.tracer, "serve.scenario");
  if (span) span.note("id", s.id);
  ScenarioOutcome out;
  out.id = s.id;
  out.output = baseOutput_;
  out.epochs = 1;
  if (baseResult_.incomplete) {
    // The shared epoch 0 tripped its budget. Each single run under the
    // same limits would print the same partial epoch and exit 2 without
    // replaying its edits; replicate that verbatim.
    out.exitCode = 2;
    out.message = baseResult_.degradeReason;
    return out;
  }
  rel::Database fork = base_->clone();
  std::vector<Edit> edits;
  try {
    edits = parseEditScript(s.edits, fork);
  } catch (const Error& e) {
    // The single-scenario path parses the script before printing
    // anything, so a parse error means no output at all.
    out.exitCode = 1;
    out.output.clear();
    out.epochs = 0;
    out.message = e.what();
    return out;
  }
  if (edits.empty()) return out;  // epoch 0 only — served from the snapshot
  auto solver = makeForkSolver();
  ResourceGuard guard(opts_.limits);
  EvalOptions eopts = innerOpts();
  if (guard.active()) {
    eopts.guard = &guard;
    solver->setGuard(&guard);
  }
  IncrementalEngine eng(p_, fork, solver.get(), eopts);
  if (opts_.mode >= 0) eng.setIncremental(opts_.mode == 1);
  eng.adoptState(baseState_);
  try {
    for (size_t e = 0; e < edits.size(); ++e) {
      eng.apply(edits[e]);
      out.output += "== epoch " + std::to_string(e + 1) + ": " +
                    formatEdit(edits[e], fork.cvars()) + " ==\n";
      // Budgets are per epoch, like one CLI epoch or Session operation.
      if (guard.active()) guard.rearm();
      EvalResult res = eng.reevaluate();
      ++out.epochs;
      out.output += renderTables(res, fork.cvars(), opts_.relation);
      if (res.incomplete) {
        out.exitCode = 2;
        out.message = res.degradeReason;
        break;  // later edits are not replayed, matching the CLI
      }
    }
  } catch (const Error& e) {
    // A hard engine/solver error mid-scenario: the single run would
    // have printed the epochs so far and died with exit 1.
    out.exitCode = 1;
    out.message = e.what();
  }
  out.inc = eng.stats();
  return out;
}

std::vector<ScenarioOutcome> ScenarioSet::evaluate(
    const std::vector<Scenario>& scenarios) {
  prepare();
  obs::Span span(opts_.eval.tracer, "serve.batch");
  std::vector<ScenarioOutcome> out(scenarios.size());
  auto runOne = [&](size_t i) {
    try {
      out[i] = evaluateOne(scenarios[i]);
    } catch (const Error& e) {
      out[i].id = scenarios[i].id;
      out[i].exitCode = 1;
      out[i].output.clear();
      out[i].message = e.what();
    }
  };
  EvalOptions widthProbe;
  widthProbe.threads = opts_.eval.threads;
  size_t width = std::min(resolveThreads(widthProbe), scenarios.size());
  if (width <= 1) {
    for (size_t i = 0; i < scenarios.size(); ++i) runOne(i);
  } else {
    util::ThreadPool pool(width - 1);  // the caller participates
    std::vector<std::function<void(size_t)>> tasks;
    tasks.reserve(scenarios.size());
    for (size_t i = 0; i < scenarios.size(); ++i) {
      tasks.emplace_back([&runOne, i](size_t) { runOne(i); });
    }
    pool.run(std::move(tasks));
  }
  if (opts_.eval.tracer != nullptr) {
    obs::Registry& m = opts_.eval.tracer->metrics();
    m.counter("serve.scenarios").add(out.size());
    for (const ScenarioOutcome& o : out) {
      m.counter("serve.epochs").add(o.epochs);
      if (o.exitCode == 2) m.counter("serve.degraded").add();
      if (o.exitCode == 1) m.counter("serve.errors").add();
    }
  }
  return out;
}

}  // namespace faure::fl
