// Concurrent what-if scenario evaluation (DESIGN.md §12).
//
// A what-if question rarely comes alone: an operator weighing a
// maintenance window wants "what breaks if link A fails?", "…if B
// fails?", "…if A fails after we add the reroute?" answered against the
// *same* network snapshot. Running `faure whatif` once per question
// re-loads, re-stratifies and — most expensively — re-derives epoch 0
// from scratch every time, even though every question shares it.
//
// ScenarioSet amortizes that shared prefix. It evaluates the base
// program once, retains the completed IncrementalEngine state, and then
// serves N independent edit scripts ("scenarios") by *forking* the
// snapshot: each scenario gets a deep copy of the database (registry
// ids, tables and their persistent JoinIndexes survive the copy) plus a
// copy of the retained per-stratum c-tables, so its first reevaluation
// re-fires only the strata its own edits reach. Forks share the
// read-only parts — the program, the process-wide FormulaInterner, and
// one mutex-protected VerdictCache — so scenario verdicts dedupe
// across the whole set.
//
// Isolation and determinism contract:
//   * outcome bytes are identical to running each scenario's edit
//     script through the single-scenario `faure whatif` path — at any
//     fan-out width, plan on/off, cache on/off (enforced end to end by
//     tools/determinism_check.py --scenarios);
//   * each scenario runs under its own ResourceGuard armed from the
//     shared limits: a budget-tripped scenario reports exit-code-2
//     semantics individually and never poisons its siblings;
//   * a scenario whose edit script fails to parse reports exit-code-1
//     semantics with no output, exactly like the CLI.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.hpp"
#include "faurelog/eval.hpp"
#include "faurelog/incremental.hpp"
#include "relational/database.hpp"
#include "smt/supervised_solver.hpp"
#include "smt/verdict_cache.hpp"
#include "util/resource_guard.hpp"

namespace faure::fl {

/// One independent what-if question: an edit script (textio.hpp
/// `+Fact(...)` / `-Fact(...)` syntax) to replay against the shared
/// base snapshot. An empty script is valid — epoch 0 only.
struct Scenario {
  std::string id;
  std::string edits;
};

/// What one scenario produced. `exitCode` follows the CLI contract
/// (0 definite / 1 hard error / 2 degraded); `output` holds exactly the
/// bytes the single-scenario `faure whatif` path would print to stdout
/// (empty on a parse error, partial up to the tripped epoch on 2).
struct ScenarioOutcome {
  std::string id;
  int exitCode = 0;
  std::string output;
  /// Degrade reason / parse-error text (the single run's stderr line).
  std::string message;
  /// Epochs this scenario covers, counting the shared epoch 0.
  size_t epochs = 0;
  /// The fork engine's counters (epoch 0 is not included — the base
  /// engine ran it once for everyone).
  IncStats inc;
};

struct ScenarioSetOptions {
  /// Inner evaluation defaults (tracer, plan mode, …). `eval.threads`
  /// is reinterpreted as the scenario fan-out width (0 = hardware
  /// concurrency, unset = FAURE_THREADS, else serial); the per-scenario
  /// evaluation itself is pinned serial — scenario-level parallelism
  /// subsumes the inner pool, and results are byte-identical either way.
  EvalOptions eval;
  /// Per-scenario resource governance: every scenario arms its own
  /// guard from these limits, re-armed per epoch like one CLI run.
  ResourceLimits limits;
  /// Per-fork solver supervision (DESIGN.md §9); the chaos plan, being
  /// read-only, is shared across forks.
  smt::SupervisionOptions supervision;
  /// -1: FAURE_INCREMENTAL env; 0: full-recompute oracle; 1: incremental.
  int mode = -1;
  /// Print only this relation ("" = all) — the CLI's --relation.
  std::string relation;
  /// Shared verdict-cache capacity (0 disables; the default follows
  /// FAURE_SOLVER_CACHE like every other entry point).
  size_t cacheEntries = smt::VerdictCache::capacityFromEnv();
  /// "native" or "z3".
  std::string solverName = "native";
};

/// Splits a `---`-delimited scenarios file (the CLI's
/// `whatif --scenarios FILE`) into one Scenario per block, ids "1"…"N".
/// A leading or trailing whitespace-only block (file starts or ends
/// with the delimiter) is dropped; an *interior* empty block is a valid
/// epoch-0-only scenario. tools/determinism_check.py mirrors this split.
std::vector<Scenario> parseScenarioFile(std::string_view text);

class ScenarioSet {
 public:
  /// Takes ownership of the base snapshot; `program` must be parsed
  /// against its registry. Throws EvalError for an unknown solver name
  /// or an unstratifiable program (via the base engine).
  ScenarioSet(dl::Program program, rel::Database base,
              ScenarioSetOptions opts = {});

  ScenarioSet(ScenarioSet&&) = default;
  ScenarioSet& operator=(ScenarioSet&&) = default;

  /// Runs the shared epoch 0 once and retains its state; idempotent.
  /// evaluate() calls it on demand — call it directly to front-load the
  /// cost (a server does this before accepting requests). Returns the
  /// epoch-0 result; if it is incomplete (budget tripped under the
  /// shared limits), every scenario will faithfully replay the partial
  /// epoch with exit-code-2 semantics, matching N single runs.
  const EvalResult& prepare();

  /// Evaluates the scenarios, fanning out over a ThreadPool at the
  /// configured width; outcomes come back in input order regardless of
  /// scheduling. Safe to call repeatedly (a server's request batches);
  /// the base snapshot is never mutated.
  std::vector<ScenarioOutcome> evaluate(
      const std::vector<Scenario>& scenarios);

  const rel::Database& base() const { return *base_; }

 private:
  EvalOptions innerOpts() const;
  std::unique_ptr<smt::SolverBase> makeForkSolver();
  ScenarioOutcome evaluateOne(const Scenario& s);

  dl::Program p_;
  /// Heap-held so the registry address is stable across ScenarioSet
  /// moves: the shared cache and every fork solver hold references
  /// into it.
  std::unique_ptr<rel::Database> base_;
  ScenarioSetOptions opts_;
  /// One cache for the base run and every fork (bound to the base
  /// registry; fork solvers are constructed over that same registry, so
  /// the pointer-identity check in setVerdictCache holds). Null when
  /// cacheEntries == 0.
  std::unique_ptr<smt::VerdictCache> cache_;
  bool prepared_ = false;
  EvalResult baseResult_;
  IncrementalState baseState_;
  /// Epoch-0 bytes (`== epoch 0: initial ==` + tables), rendered once
  /// and prefix-shared by every outcome.
  std::string baseOutput_;
};

}  // namespace faure::fl
