#include "faurelog/textio.hpp"

#include <optional>

#include "datalog/lexer.hpp"
#include "util/error.hpp"

namespace faure::fl {

namespace {

using dl::Tok;
using dl::Token;
using smt::CmpOp;
using smt::Formula;
using smt::LinTerm;

ValueType typeFromName(const Token& t) {
  if (t.text == "int") return ValueType::Int;
  if (t.text == "sym") return ValueType::Sym;
  if (t.text == "prefix") return ValueType::Prefix;
  if (t.text == "path") return ValueType::Path;
  if (t.text == "any") return ValueType::Any;
  throw ParseError("unknown type '" + t.text + "'", t.line, t.column);
}

std::string_view typeKeyword(ValueType t) {
  switch (t) {
    case ValueType::Int:
      return "int";
    case ValueType::Sym:
      return "sym";
    case ValueType::Prefix:
      return "prefix";
    case ValueType::Path:
      return "path";
    case ValueType::Any:
      return "any";
  }
  return "any";
}

class DbParser {
 public:
  explicit DbParser(std::string_view text) : tokens_(dl::lex(text)) {}

  void runInto(rel::Database& db) {
    while (peek().kind != Tok::End) {
      const Token& t = expect(Tok::Ident);
      if (t.text == "var") {
        parseVar(db);
      } else if (t.text == "table") {
        parseTable(db);
      } else if (t.text == "row") {
        parseRow(db);
      } else {
        throw ParseError("expected 'var', 'table' or 'row'", t.line,
                         t.column);
      }
    }
  }

  // +Pred(v, ...) [ '|' condition ]  |  -Pred(v, ...)   per directive.
  std::vector<Edit> runEdits(rel::Database& db) {
    std::vector<Edit> out;
    while (peek().kind != Tok::End) {
      Edit e;
      if (accept(Tok::Plus)) {
        e.kind = Edit::Kind::Insert;
      } else if (accept(Tok::Minus)) {
        e.kind = Edit::Kind::Retract;
      } else {
        fail("expected an edit directive '+Pred(...)' or '-Pred(...)'");
      }
      const Token& name = expect(Tok::Ident);
      if (!db.has(name.text)) {
        throw ParseError("edit to undeclared table '" + name.text + "'",
                         name.line, name.column);
      }
      e.pred = name.text;
      expect(Tok::LParen);
      if (!accept(Tok::RParen)) {
        do {
          e.vals.push_back(value(db));
        } while (accept(Tok::Comma));
        expect(Tok::RParen);
      }
      size_t arity = db.table(name.text).schema().arity();
      if (e.vals.size() != arity) {
        throw ParseError("arity mismatch editing '" + name.text + "': got " +
                             std::to_string(e.vals.size()) + ", want " +
                             std::to_string(arity),
                         name.line, name.column);
      }
      if (peek().kind == Tok::Pipe) {
        if (e.kind == Edit::Kind::Retract) {
          throw ParseError(
              "a retraction takes no condition (it removes the data part "
              "outright)",
              peek().line, peek().column);
        }
        advance();
        e.cond = disjunction(db);
      }
      out.push_back(std::move(e));
    }
    return out;
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }
  [[noreturn]] void fail(const std::string& msg) {
    const Token& t = peek();
    throw ParseError(msg + " (got " + std::string(dl::tokName(t.kind)) + ")",
                     t.line, t.column);
  }
  const Token& expect(Tok kind) {
    if (peek().kind != kind) fail("expected " + std::string(dl::tokName(kind)));
    return advance();
  }
  bool accept(Tok kind) {
    if (peek().kind != kind) return false;
    advance();
    return true;
  }

  // var <name_> <type> [lo hi | { v, v, ... }]
  void parseVar(rel::Database& db) {
    const Token& name = expect(Tok::CVarName);
    ValueType type = typeFromName(expect(Tok::Ident));
    if (peek().kind == Tok::Int ||
        (peek().kind == Tok::Minus && peek(1).kind == Tok::Int)) {
      bool neg = accept(Tok::Minus);
      int64_t lo = expect(Tok::Int).intVal * (neg ? -1 : 1);
      bool neg2 = accept(Tok::Minus);
      int64_t hi = expect(Tok::Int).intVal * (neg2 ? -1 : 1);
      if (type != ValueType::Int) fail("integer range on non-int variable");
      db.cvars().declareInt(name.text, lo, hi);
      return;
    }
    if (accept(Tok::LBrace)) {
      std::vector<Value> domain;
      if (!accept(Tok::RBrace)) {
        do {
          domain.push_back(value(db));
        } while (accept(Tok::Comma));
        expect(Tok::RBrace);
      }
      db.cvars().declare(name.text, type, std::move(domain));
      return;
    }
    db.cvars().declare(name.text, type);
  }

  // table <Name>(<attr> <type>, ...)
  void parseTable(rel::Database& db) {
    const Token& name = expect(Tok::Ident);
    std::vector<rel::Attribute> attrs;
    expect(Tok::LParen);
    if (!accept(Tok::RParen)) {
      do {
        const Token& attr = expect(Tok::Ident);
        ValueType type = typeFromName(expect(Tok::Ident));
        attrs.push_back(rel::Attribute{attr.text, type});
      } while (accept(Tok::Comma));
      expect(Tok::RParen);
    }
    db.create(rel::Schema(name.text, std::move(attrs)));
  }

  // row <Name> <value>... [ '|' condition ]
  void parseRow(rel::Database& db) {
    const Token& name = expect(Tok::Ident);
    if (!db.has(name.text)) {
      throw ParseError("row for undeclared table '" + name.text + "'",
                       name.line, name.column);
    }
    rel::CTable& table = db.table(name.text);
    std::vector<Value> vals;
    for (size_t i = 0; i < table.schema().arity(); ++i) {
      vals.push_back(value(db));
    }
    Formula cond = Formula::top();
    if (accept(Tok::Pipe)) cond = disjunction(db);
    table.insert(std::move(vals), std::move(cond));
  }

  // One c-domain value (constant or declared c-variable).
  Value value(rel::Database& db) {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::Int:
        advance();
        return Value::fromInt(t.intVal);
      case Tok::Minus: {
        advance();
        const Token& n = expect(Tok::Int);
        return Value::fromInt(-n.intVal);
      }
      case Tok::PrefixLit:
        advance();
        return Value::parsePrefix(t.text);
      case Tok::Str:
        advance();
        return Value::sym(t.text);
      case Tok::Ident:
        advance();
        return Value::sym(t.text);
      case Tok::CVarName: {
        advance();
        CVarId id = db.cvars().find(t.text);
        if (id == CVarRegistry::kNotFound) {
          throw ParseError("undeclared c-variable '" + t.text +
                               "' (declare it with 'var' first)",
                           t.line, t.column);
        }
        return Value::cvar(id);
      }
      case Tok::LBracket: {
        advance();
        std::vector<std::string> elems;
        while (!accept(Tok::RBracket)) {
          const Token& e = peek();
          if (e.kind == Tok::Ident) {
            elems.push_back(e.text);
            advance();
          } else if (e.kind == Tok::Int) {
            elems.push_back(std::to_string(e.intVal));
            advance();
          } else {
            fail("expected path element");
          }
          accept(Tok::Comma);
        }
        return Value::path(elems);
      }
      default:
        fail("expected a value");
    }
  }

  // cond := conj { '|' conj } ;  conj := prim { '&' prim }
  // prim := '(' cond ')' | comparison
  Formula disjunction(rel::Database& db) {
    std::vector<Formula> parts{conjunction(db)};
    while (accept(Tok::Pipe)) parts.push_back(conjunction(db));
    return Formula::disj(std::move(parts));
  }

  Formula conjunction(rel::Database& db) {
    std::vector<Formula> parts{primary(db)};
    while (accept(Tok::Amp) || accept(Tok::Comma)) {
      parts.push_back(primary(db));
    }
    return Formula::conj(std::move(parts));
  }

  Formula primary(rel::Database& db) {
    if (accept(Tok::LParen)) {
      Formula f = disjunction(db);
      expect(Tok::RParen);
      return f;
    }
    return comparison(db);
  }

  // linexpr op linexpr, over ground values.
  Formula comparison(rel::Database& db) {
    LinSide lhs = linSide(db);
    CmpOp op;
    switch (peek().kind) {
      case Tok::Eq:
        op = CmpOp::Eq;
        break;
      case Tok::Ne:
        op = CmpOp::Ne;
        break;
      case Tok::Lt:
        op = CmpOp::Lt;
        break;
      case Tok::Le:
        op = CmpOp::Le;
        break;
      case Tok::Gt:
        op = CmpOp::Gt;
        break;
      case Tok::Ge:
        op = CmpOp::Ge;
        break;
      default:
        fail("expected comparison operator");
    }
    advance();
    LinSide rhs = linSide(db);
    // Plain value-vs-value comparison when both sides are single values.
    if (lhs.single.has_value() && rhs.single.has_value()) {
      return Formula::cmp(*lhs.single, op, *rhs.single);
    }
    return Formula::lin(lhs.term.minus(rhs.term), op);
  }

  struct LinSide {
    std::optional<Value> single;  // set when the side is one bare value
    LinTerm term;                 // always populated (Int semantics)
  };

  LinSide linSide(rel::Database& db) {
    LinSide side;
    std::vector<std::pair<CVarId, int64_t>> entries;
    int64_t cst = 0;
    size_t terms = 0;
    int64_t sign = accept(Tok::Minus) ? -1 : 1;
    while (true) {
      int64_t coef = sign;
      if (peek().kind == Tok::Int && peek(1).kind == Tok::Star) {
        coef = sign * advance().intVal;
        advance();  // '*'
      }
      Value v = value(db);
      ++terms;
      if (terms == 1 && coef == sign && sign == 1) side.single = v;
      if (v.isCVar()) {
        entries.emplace_back(v.asCVar(), coef);
      } else if (v.kind() == Value::Kind::Int) {
        cst += coef * v.asInt();
      } else if (terms > 1 || coef != 1) {
        const Token& t = peek();
        throw ParseError("arithmetic on a non-integer value", t.line,
                         t.column);
      }
      if (accept(Tok::Plus)) {
        sign = 1;
      } else if (accept(Tok::Minus)) {
        sign = -1;
      } else {
        break;
      }
      side.single.reset();
    }
    if (terms > 1) side.single.reset();
    side.term = LinTerm::make(std::move(entries), cst);
    return side;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// True when `text` lexes back to a single bare identifier (no quoting
/// needed when formatting).
bool isPlainIdent(const std::string& text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0]))) return false;
  for (char c : text) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '&')) {
      return false;
    }
  }
  // A trailing underscore would lex as a c-variable.
  return text.back() != '_';
}

std::string formatValue(const Value& v, const CVarRegistry& reg) {
  if (v.kind() == Value::Kind::Sym) {
    const std::string& text = util::symText(v.asSym());
    if (isPlainIdent(text)) return text;
    return "'" + text + "'";
  }
  return v.toString(&reg);
}

}  // namespace

rel::Database parseDatabase(std::string_view text) {
  rel::Database db;
  DbParser(text).runInto(db);
  return db;
}

void parseDatabaseInto(std::string_view text, rel::Database& db) {
  DbParser(text).runInto(db);
}

std::string formatDatabase(const rel::Database& db) {
  std::string out;
  const CVarRegistry& reg = db.cvars();
  for (CVarId v = 0; v < reg.size(); ++v) {
    const auto& info = reg.info(v);
    out += "var " + info.name + " " + std::string(typeKeyword(info.type));
    if (!info.domain.empty()) {
      out += " { ";
      for (size_t i = 0; i < info.domain.size(); ++i) {
        if (i > 0) out += ", ";
        out += formatValue(info.domain[i], reg);
      }
      out += " }";
    }
    out += "\n";
  }
  for (const auto& [name, table] : db.tables()) {
    out += "table " + name + "(";
    for (size_t i = 0; i < table.schema().arity(); ++i) {
      if (i > 0) out += ", ";
      const auto& attr = table.schema().attribute(i);
      out += attr.name + " " + std::string(typeKeyword(attr.type));
    }
    out += ")\n";
  }
  for (const auto& [name, table] : db.tables()) {
    for (const auto& row : table.rows()) {
      out += "row " + name;
      for (const auto& v : row.vals) out += " " + formatValue(v, reg);
      if (!row.cond.isTrue()) out += " | " + row.cond.toString(&reg);
      out += "\n";
    }
  }
  return out;
}

std::vector<Edit> parseEditScript(std::string_view text, rel::Database& db) {
  // One directive per line: the lexer discards newlines, so a linear
  // parse would swallow the `+` of the next directive as an arithmetic
  // continuation of the previous condition (`l2_ = 1  +Acl(...)` reads
  // as `l2_ = 1 + Acl(...)`). Each line is lexed on its own, padded
  // with the newlines before it so ParseError positions stay global.
  std::vector<Edit> out;
  size_t lineNo = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    std::string padded(lineNo, '\n');
    padded.append(line);
    std::vector<Edit> parsed = DbParser(padded).runEdits(db);
    for (Edit& e : parsed) out.push_back(std::move(e));
    if (end == std::string_view::npos) break;
    start = end + 1;
    ++lineNo;
  }
  return out;
}

std::string formatEdit(const Edit& e, const CVarRegistry& reg) {
  std::string out(e.kind == Edit::Kind::Insert ? "+" : "-");
  out += e.pred + "(";
  for (size_t i = 0; i < e.vals.size(); ++i) {
    if (i > 0) out += ", ";
    out += formatValue(e.vals[i], reg);
  }
  out += ")";
  if (!e.cond.isTrue()) out += " | " + e.cond.toString(&reg);
  return out;
}

}  // namespace faure::fl
