// Textual database format: declare c-variables, schemas, and conditional
// rows in a plain file, so fauré can be driven without writing C++
// (used by the `faure` CLI and by tests).
//
// Syntax (one statement per line; '%' and '//' start comments):
//
//   var x_ int 0 1                 % integer c-variable with domain [0,1]
//   var p_ int                     % unbounded integer
//   var s_ sym { Mkt, R&D }        % symbol with finite domain
//   var d_ prefix                  % IPv4-prefix-valued unknown
//   var q_ any                     % untyped
//
//   table F(flow sym, from int, to int)
//   table R(a any, b any)          % `any` columns accept every type
//
//   row F f0 1 2 | x_ = 1          % condition after '|': & (and),
//   row F f0 1 3 | x_ = 0 & p_ != 80   %   | (or), parentheses
//   row F f0 4 5                   % no condition = regular tuple
//   row P 1.2.3.4 [A B C]          % prefix and path literals
//   row P 1.2.3.5 s_               % c-variables as data entries
//
// Rows are ground: identifiers denote symbol constants (regardless of
// case), `x_`-style names denote c-variables; there are no program
// variables in this format.
//
// Edit scripts (`faure whatif`, Session::watch) reuse the same value and
// condition grammar with a `--watch`-style directive per line:
//
//   +F(f0, 2, 6) | m_ = 1          % insert a (conditional) fact
//   -F(f0, 2, 3)                   % retract every row with this data part
#pragma once

#include <string_view>
#include <vector>

#include "relational/database.hpp"

namespace faure::fl {

/// Parses the textual format into a fresh database. Throws ParseError
/// (with position info) on malformed input, TypeError/EvalError on
/// inconsistent declarations.
rel::Database parseDatabase(std::string_view text);

/// Parses into an existing database: declarations and rows accumulate
/// (existing c-variables may be referenced; redeclaring a name throws).
void parseDatabaseInto(std::string_view text, rel::Database& db);

/// Serializes a database back into the textual format (modulo comments
/// and ordering); parseDatabase(formatDatabase(db)) reproduces db.
std::string formatDatabase(const rel::Database& db);

/// One what-if directive: insert a conditional fact into, or retract a
/// data part from, a base (EDB) relation.
struct Edit {
  enum class Kind { Insert, Retract };
  Kind kind = Kind::Insert;
  std::string pred;
  std::vector<Value> vals;
  /// Insert-only: the tuple's condition ('true' when none was written).
  /// Retractions remove the data part outright, whatever its condition.
  smt::Formula cond = smt::Formula::top();
};

/// Parses a `+Fact(...)` / `-Fact(...)` edit script against `db`'s
/// declarations (tables must exist, arities must match, c-variables in
/// values or conditions must be declared). The database itself is not
/// modified. Throws ParseError with position info on malformed input.
std::vector<Edit> parseEditScript(std::string_view text, rel::Database& db);

/// Renders an edit back into script syntax (deterministic; used for the
/// `faure whatif` epoch headers).
std::string formatEdit(const Edit& e, const CVarRegistry& reg);

}  // namespace faure::fl
