// Cost-based join planning for fauré-log rule bodies (DESIGN.md §11).
//
// The planner sits between stratification and rule firing: once per
// fixpoint round and (rule, delta-position) pair it reorders the
// positive body literals by estimated selectivity and decides which
// persistent c-table index (rel::JoinIndex) each literal probes. It is
// a *physical* layer only — the evaluator guarantees the candidate
// stream it produces is byte-identical to program-order evaluation by
// replaying every surviving row combination through the serial
// condition-building sequence and restoring serial enumeration order
// with a canonical sort (eval.cpp, "planned enumeration").
//
// What makes a column probe-able under reordering is the *star shape*
// of the serial equality atoms: serial evaluation generates equality
// atoms only between a variable's binder value (its first program-order
// occurrence) and each later occurrence — never between two non-binder
// occurrences. A probe may therefore only key a column on (a) a fixed
// constant, (b) the binder row's value when the binder literal is
// already placed, or (c) for the binder literal itself, the value of an
// already-placed later occurrence (equality is symmetric). Anything
// else could drop combinations serial evaluation keeps.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datalog/ast.hpp"
#include "relational/ctable.hpp"

namespace faure::fl {

/// Planner switch: Off = pristine program-order evaluation, On = plan,
/// Explain = plan and dump each chosen plan to stderr (debugging).
enum class PlanMode { Off, On, Explain };

/// Resolves an optional explicit mode against the FAURE_PLAN
/// environment variable ("off"/"0"/"false" → Off, "explain" → Explain,
/// anything else → On). Unset everywhere defaults to On.
PlanMode resolvePlanMode(const std::optional<PlanMode>& opt);

/// Static join structure of one rule, mirroring exactly how the serial
/// evaluator classifies argument positions (eval.cpp joinLiteral): per
/// positive literal, per argument, whether it is a fixed value, a
/// variable bound earlier (by a previous literal or a previous argument
/// of the same literal), or the binding occurrence. Computed once per
/// rule and cached by the evaluator.
struct RuleShape {
  struct Arg {
    enum class Kind { Fixed, BoundVar, FreeVar } kind = Kind::Fixed;
    size_t slot = 0;          // variable kinds: index into the frame
    Value value;              // Fixed: constant or rule c-variable
    bool boundBefore = false;  // BoundVar bound by an *earlier literal*
  };
  struct LitShape {
    size_t body = 0;  // index into rule.body (positive literal)
    std::vector<Arg> args;
    /// Key columns the serial evaluator hashes on for this literal:
    /// fixed constants plus variables bound by earlier literals.
    std::vector<size_t> serialKeyArgs;
  };
  /// Where a variable slot is bound: (literal position in `lits`, arg).
  struct Binder {
    size_t lit = SIZE_MAX;
    size_t arg = 0;
  };

  std::vector<LitShape> lits;  // positive literals, program order
  size_t slotCount = 0;
  std::vector<Binder> binders;  // per slot
  /// Per slot: every (literal position, arg) occurrence, program order.
  std::vector<std::vector<std::pair<size_t, size_t>>> occurrences;

  static RuleShape analyze(
      const dl::Rule& rule,
      const std::unordered_map<std::string, size_t>& slotOf);
};

/// One key column of a planned probe and where its value comes from: a
/// fixed constant, or a static (literal, arg) source inside the row
/// combination being enumerated. Sources are static so worker threads
/// can evaluate probes without any shared mutable state.
struct PlannedProbe {
  size_t arg = 0;  // column of the probed literal
  bool fixed = false;
  Value fixedValue;   // when fixed
  size_t srcLit = 0;  // else: literal position (program order) ...
  size_t srcArg = 0;  // ... and column the value is read from
};

/// One step of the chosen visit order.
struct PlannedLiteral {
  size_t lit = 0;  // literal position in RuleShape::lits
  std::vector<PlannedProbe> probes;  // ascending by arg; empty = scan
  std::vector<size_t> keyArgs;       // probes' columns (index key-set)
  double estRows = 0.0;              // cost-model estimate (explain)
  bool fromIndexStats = false;       // estimate came from a live index
};

/// The physical plan for one (rule, delta position) firing.
struct RulePlan {
  bool reordered = false;  // visit order differs from program order
  std::vector<PlannedLiteral> order;
};

/// Live cost-model inputs, one per positive literal in program order.
struct LitStats {
  const rel::CTable* table = nullptr;
  size_t rangeRows = 0;  // snapshot scan-range size (delta-aware)
};

/// Greedy selectivity-driven ordering. `deltaLit` (a position into
/// shape.lits, or SIZE_MAX) is pinned first — the semi-naive delta is
/// the intended driver of every recursive firing. Estimates use live
/// index statistics when a persistent index for the candidate key-set
/// already exists, else a bound-column selectivity heuristic; ties
/// break toward program order, and a plan that comes out in program
/// order is flagged unreordered so the evaluator can skip the
/// canonical-sort machinery entirely.
RulePlan planRule(const RuleShape& shape, size_t deltaLit,
                  const std::vector<LitStats>& stats);

/// EXPLAIN rendering: one line per step with scan/probe decision,
/// estimated rows, and the estimate's provenance.
std::string explainPlan(const dl::Rule& rule, const RuleShape& shape,
                        const RulePlan& plan, size_t deltaLit,
                        const std::vector<LitStats>& stats);

}  // namespace faure::fl
