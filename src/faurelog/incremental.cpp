#include "faurelog/incremental.hpp"

#include <cstdlib>
#include <deque>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace faure::fl {

namespace {

bool incrementalFromEnv() {
  const char* env = std::getenv("FAURE_INCREMENTAL");
  return env == nullptr || std::string_view(env) != "0";
}

/// Refines dl::stratify's negation strata into the topologically-
/// ordered SCC condensation of the predicate dependency graph.
///
/// dl::stratify bumps a stratum only across negation, so independent
/// positive rule families (two teams' rules over disjoint relations)
/// all share stratum 0 — at that granularity nothing can be skipped.
/// Here every set of mutually recursive predicates becomes its own
/// evaluation unit; units are emitted in a deterministic dependency
/// order (Kahn's algorithm, ties broken by negation stratum then by
/// lowest rule index), so refinement preserves both the negation
/// semantics (a negated body is always in an earlier unit) and
/// reproducibility (the same program always yields the same partition).
dl::Stratification refineStrata(const dl::Program& p,
                                const dl::Stratification& base) {
  // Predicate dependency edges over the IDB: body -> head.
  std::map<std::string, std::set<std::string>> succ;
  std::set<std::string> idb;
  for (const auto& r : p.rules) idb.insert(r.head.pred);
  for (const auto& r : p.rules) {
    for (const auto& lit : r.body) {
      if (idb.count(lit.atom.pred) != 0 && lit.atom.pred != r.head.pred) {
        succ[lit.atom.pred].insert(r.head.pred);
      }
    }
  }
  // Mutual reachability (programs are small; clarity over asymptotics).
  std::map<std::string, std::set<std::string>> reach;
  for (const auto& pred : idb) {
    std::set<std::string>& r = reach[pred];
    std::vector<std::string> work{pred};
    while (!work.empty()) {
      std::string cur = std::move(work.back());
      work.pop_back();
      auto it = succ.find(cur);
      if (it == succ.end()) continue;
      for (const auto& next : it->second) {
        if (r.insert(next).second) work.push_back(next);
      }
    }
  }
  // Components: preds that reach each other, represented by their
  // lexicographically-smallest member (deterministic).
  std::map<std::string, std::string> compOf;
  for (const auto& a : idb) {
    if (compOf.count(a) != 0) continue;
    compOf[a] = a;
    for (const auto& b : reach[a]) {
      if (reach[b].count(a) != 0) compOf[b] = a;
    }
  }
  // Component metadata + DAG.
  struct Comp {
    int negStratum = 0;
    size_t minRule = SIZE_MAX;
    std::set<std::string> deps;  // component reps this one waits on
  };
  std::map<std::string, Comp> comps;
  for (size_t ri = 0; ri < p.rules.size(); ++ri) {
    const auto& rule = p.rules[ri];
    Comp& c = comps[compOf.at(rule.head.pred)];
    c.minRule = std::min(c.minRule, ri);
    auto it = base.stratumOf.find(rule.head.pred);
    if (it != base.stratumOf.end()) c.negStratum = it->second;
    for (const auto& lit : rule.body) {
      if (idb.count(lit.atom.pred) == 0) continue;
      const std::string& dep = compOf.at(lit.atom.pred);
      if (dep != compOf.at(rule.head.pred)) c.deps.insert(dep);
    }
  }
  // Kahn's algorithm with a deterministic priority.
  dl::Stratification out;
  std::set<std::string> emitted;
  while (emitted.size() < comps.size()) {
    const std::string* best = nullptr;
    for (const auto& [rep, c] : comps) {
      if (emitted.count(rep) != 0) continue;
      bool ready = true;
      for (const auto& dep : c.deps) {
        if (emitted.count(dep) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (best == nullptr ||
          std::make_pair(c.negStratum, c.minRule) <
              std::make_pair(comps.at(*best).negStratum,
                             comps.at(*best).minRule)) {
        best = &rep;
      }
    }
    // base is a valid stratification, so the condensation is acyclic
    // and something is always ready.
    std::vector<size_t> rules;
    for (size_t ri = 0; ri < p.rules.size(); ++ri) {
      if (compOf.at(p.rules[ri].head.pred) == *best) rules.push_back(ri);
    }
    int unit = static_cast<int>(out.ruleStrata.size());
    for (const auto& [pred, rep] : compOf) {
      if (rep == *best) out.stratumOf[pred] = unit;
    }
    out.ruleStrata.push_back(std::move(rules));
    emitted.insert(*best);
  }
  return out;
}

}  // namespace

IncrementalEngine::IncrementalEngine(dl::Program program, rel::Database& db,
                                     smt::SolverBase* solver, EvalOptions opts)
    : p_(std::move(program)),
      db_(db),
      solver_(solver),
      opts_(opts),
      enabled_(incrementalFromEnv()) {
  if (opts_.simplifyResults) {
    throw EvalError(
        "IncrementalEngine: simplifyResults rewrites conditions globally; "
        "per-stratum reuse cannot honour the byte-identity oracle under it");
  }
  // Partition once up front — the units are a property of the program,
  // not of the data, and the plan must name the same units every epoch
  // evaluates. dl::stratify both validates stratifiability and feeds
  // the negation strata the refinement preserves. (Safety/arity checks
  // stay with evalFaure, which sees the live database.)
  strat_ = refineStrata(p_, dl::stratify(p_));
  stratumHeads_.resize(strat_.ruleStrata.size());
  for (size_t s = 0; s < strat_.ruleStrata.size(); ++s) {
    for (size_t ri : strat_.ruleStrata[s]) {
      stratumHeads_[s].insert(p_.rules[ri].head.pred);
    }
  }
  // Per-rule delta index: which rules re-fire when pred changes.
  for (size_t ri = 0; ri < p_.rules.size(); ++ri) {
    for (const auto& lit : p_.rules[ri].body) {
      auto& rules = state_.bodyIndex[lit.atom.pred];
      if (rules.empty() || rules.back() != ri) rules.push_back(ri);
    }
  }
}

bool IncrementalEngine::insertFact(const std::string& pred,
                                   std::vector<Value> vals,
                                   smt::Formula cond) {
  if (!db_.has(pred)) {
    throw EvalError("insertFact: no relation '" + pred + "' in the database");
  }
  bool changed = db_.table(pred).insert(std::move(vals), std::move(cond));
  dirty_.insert(pred);
  ++pendingInserts_;
  return changed;
}

size_t IncrementalEngine::retractFact(const std::string& pred,
                                      const std::vector<Value>& vals) {
  if (!db_.has(pred)) {
    throw EvalError("retractFact: no relation '" + pred + "' in the database");
  }
  size_t removed = db_.table(pred).eraseWithData(vals);
  dirty_.insert(pred);
  ++pendingRetracts_;
  return removed;
}

void IncrementalEngine::apply(const Edit& edit) {
  if (edit.kind == Edit::Kind::Insert) {
    insertFact(edit.pred, edit.vals, edit.cond);
  } else {
    retractFact(edit.pred, edit.vals);
  }
}

void IncrementalEngine::invalidate() { state_.valid = false; }

void IncrementalEngine::adoptState(const IncrementalState& state) {
  state_.idb = state.idb;
  state_.provenance = state.provenance;
  state_.valid = state.valid;
  // state_.bodyIndex stays as the constructor derived it: it is a
  // property of the program, which adopt requires to be shared.
}

std::vector<char> IncrementalEngine::planStrata(
    const std::set<std::string>& affected) const {
  std::vector<char> run(strat_.ruleStrata.size(), 0);
  for (size_t s = 0; s < stratumHeads_.size(); ++s) {
    for (const auto& head : stratumHeads_[s]) {
      if (affected.count(head) != 0) {
        run[s] = 1;
        break;
      }
    }
  }
  return run;
}

EvalResult IncrementalEngine::reevaluate() {
  // Affected-predicate closure over the delta indexes: start from the
  // edited base relations, add the head of every rule whose body
  // touches an affected predicate, iterate to fixpoint. (The closure
  // runs on predicates, so it terminates in |preds| rounds.)
  std::set<std::string> affected = dirty_;
  std::deque<std::string> work(dirty_.begin(), dirty_.end());
  while (!work.empty()) {
    std::string pred = std::move(work.front());
    work.pop_front();
    auto it = state_.bodyIndex.find(pred);
    if (it == state_.bodyIndex.end()) continue;
    for (size_t ri : it->second) {
      const std::string& head = p_.rules[ri].head.pred;
      if (affected.insert(head).second) work.push_back(head);
    }
  }

  bool full = !enabled_ || !state_.valid;
  std::vector<char> run;
  StrataPlan plan;
  if (!full) {
    run = planStrata(affected);
    for (size_t s = 0; s < run.size() && !full; ++s) {
      if (run[s]) continue;
      for (const auto& head : stratumHeads_[s]) {
        auto it = state_.idb.find(head);
        if (it == state_.idb.end()) {
          // The retained epoch never materialised this head — do not
          // guess; fall back to a full run.
          full = true;
          break;
        }
        plan.retained.emplace(head, it->second);
      }
    }
  }
  if (full) {
    plan.retained.clear();
    run.assign(strat_.ruleStrata.size(), 1);
  }
  // Both modes evaluate the SAME refined partition — only the run/skip
  // flags differ — so the oracle comparison is apples to apples at the
  // byte level.
  plan.strata = strat_;
  plan.runStratum = run;

  EvalResult result =
      evalFaurePlanned(p_, db_, solver_, opts_, std::move(plan));

  uint64_t refired = 0, skipped = 0, dirtyStrata = 0, reused = 0;
  for (size_t s = 0; s < strat_.ruleStrata.size(); ++s) {
    if (run[s]) {
      ++dirtyStrata;
      refired += strat_.ruleStrata[s].size();
    } else {
      ++reused;
      skipped += strat_.ruleStrata[s].size();
    }
  }

  ++inc_.epochs;
  if (full) ++inc_.fullRecomputes;
  inc_.refiredRules += refired;
  inc_.skippedRules += skipped;
  inc_.dirtyStrata += dirtyStrata;
  inc_.reusedStrata += reused;
  inc_.deltaInserts += pendingInserts_;
  inc_.deltaRetracts += pendingRetracts_;
  if (opts_.tracer != nullptr) {
    obs::Registry& m = opts_.tracer->metrics();
    m.counter("eval.inc.epochs").add();
    if (full) m.counter("eval.inc.full_recomputes").add();
    m.counter("eval.inc.refired_rules").add(refired);
    m.counter("eval.inc.skipped_rules").add(skipped);
    m.counter("eval.inc.dirty_strata").add(dirtyStrata);
    m.counter("eval.inc.reused_strata").add(reused);
    m.counter("eval.inc.delta_inserts").add(pendingInserts_);
    m.counter("eval.inc.delta_retracts").add(pendingRetracts_);
  }
  dirty_.clear();
  pendingInserts_ = 0;
  pendingRetracts_ = 0;

  if (result.incomplete) {
    // A budget-tripped epoch holds only a partial IDB; reusing it would
    // launder incompleteness into later epochs as silent wrong answers.
    state_.valid = false;
    state_.idb.clear();
    state_.provenance.clear();
    return result;
  }
  state_.idb = result.idb;
  state_.provenance.clear();
  for (const auto& [pred, table] : result.idb) {
    state_.provenance[pred] = table.size();
  }
  state_.valid = true;
  return result;
}

}  // namespace faure::fl
