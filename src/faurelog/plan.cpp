#include "faurelog/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace faure::fl {

PlanMode resolvePlanMode(const std::optional<PlanMode>& opt) {
  if (opt.has_value()) return *opt;
  const char* env = std::getenv("FAURE_PLAN");
  if (env == nullptr || *env == '\0') return PlanMode::On;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "false") == 0) {
    return PlanMode::Off;
  }
  if (std::strcmp(env, "explain") == 0) return PlanMode::Explain;
  return PlanMode::On;
}

RuleShape RuleShape::analyze(
    const dl::Rule& rule,
    const std::unordered_map<std::string, size_t>& slotOf) {
  RuleShape shape;
  shape.slotCount = slotOf.size();
  shape.binders.resize(shape.slotCount);
  shape.occurrences.resize(shape.slotCount);
  // Replay the serial evaluator's bound-variable progression so every
  // Arg::Kind matches joinLiteral's Pos::Kind exactly.
  std::vector<bool> bound(shape.slotCount, false);
  for (size_t bi = 0; bi < rule.body.size(); ++bi) {
    const dl::Literal& lit = rule.body[bi];
    if (lit.negated) continue;
    LitShape ls;
    ls.body = bi;
    size_t litPos = shape.lits.size();
    std::vector<bool> nowBound = bound;
    for (size_t a = 0; a < lit.atom.args.size(); ++a) {
      const dl::Term& t = lit.atom.args[a];
      Arg arg;
      if (t.isVar()) {
        arg.slot = slotOf.at(t.var);
        shape.occurrences[arg.slot].emplace_back(litPos, a);
        if (nowBound[arg.slot]) {
          arg.kind = Arg::Kind::BoundVar;
          arg.boundBefore = bound[arg.slot];
        } else {
          arg.kind = Arg::Kind::FreeVar;
          nowBound[arg.slot] = true;
          shape.binders[arg.slot] = Binder{litPos, a};
        }
      } else {
        arg.kind = Arg::Kind::Fixed;
        arg.value = t.asValue();
      }
      if ((arg.kind == Arg::Kind::Fixed && arg.value.isConstant()) ||
          (arg.kind == Arg::Kind::BoundVar && arg.boundBefore)) {
        ls.serialKeyArgs.push_back(a);
      }
      ls.args.push_back(std::move(arg));
    }
    bound = nowBound;
    shape.lits.push_back(std::move(ls));
  }
  return shape;
}

namespace {

/// Probe columns available for literal `lit` given the literals already
/// placed (`placed`, visit order; `visited` flags by literal position).
/// Implements the star-shape rules from the header comment.
std::vector<PlannedProbe> probesFor(const RuleShape& shape, size_t lit,
                                    const std::vector<size_t>& placed,
                                    const std::vector<bool>& visited) {
  std::vector<PlannedProbe> probes;
  const RuleShape::LitShape& ls = shape.lits[lit];
  for (size_t a = 0; a < ls.args.size(); ++a) {
    const RuleShape::Arg& arg = ls.args[a];
    PlannedProbe probe;
    probe.arg = a;
    switch (arg.kind) {
      case RuleShape::Arg::Kind::Fixed:
        // A fixed rule c-variable matches any row value — no filter.
        if (!arg.value.isConstant()) continue;
        probe.fixed = true;
        probe.fixedValue = arg.value;
        break;
      case RuleShape::Arg::Kind::BoundVar: {
        // Serial atom here: eq(binder value, row value). Only the
        // binder row can feed the probe; a same-literal earlier
        // occurrence (boundBefore == false) binds from this very row.
        const RuleShape::Binder& b = shape.binders[arg.slot];
        if (!arg.boundBefore || !visited[b.lit]) continue;
        probe.srcLit = b.lit;
        probe.srcArg = b.arg;
        break;
      }
      case RuleShape::Arg::Kind::FreeVar: {
        // This is the binder occurrence. Serial atoms link it to every
        // later occurrence, so any placed occurrence works (equality is
        // symmetric); pick the first in visit order for determinism.
        bool found = false;
        for (size_t j : placed) {
          if (j == lit) continue;
          for (const auto& [ol, oa] : shape.occurrences[arg.slot]) {
            if (ol == j) {
              probe.srcLit = ol;
              probe.srcArg = oa;
              found = true;
              break;
            }
          }
          if (found) break;
        }
        if (!found) continue;
        break;
      }
    }
    probes.push_back(std::move(probe));
  }
  return probes;
}

double estimateRows(const RuleShape& shape, size_t lit,
                    const std::vector<PlannedProbe>& probes,
                    const std::vector<LitStats>& stats, bool* fromIndex) {
  (void)shape;
  double n = static_cast<double>(stats[lit].rangeRows);
  *fromIndex = false;
  if (probes.empty()) return n;
  std::vector<size_t> keyArgs;
  keyArgs.reserve(probes.size());
  for (const auto& p : probes) keyArgs.push_back(p.arg);
  const rel::CTable* table = stats[lit].table;
  const rel::JoinIndex* idx =
      table != nullptr ? table->findJoinIndex(keyArgs) : nullptr;
  if (idx != nullptr && idx->builtUpTo() > 0) {
    // Live statistics: expected bucket size plus the wild rows every
    // probe must visit, scaled to the fraction of the table in range.
    double avgBucket = static_cast<double>(idx->indexedRows()) /
                       static_cast<double>(std::max<size_t>(1, idx->bucketCount()));
    double est = (avgBucket + static_cast<double>(idx->wildCount())) *
                 (n / static_cast<double>(idx->builtUpTo()));
    *fromIndex = true;
    return est;
  }
  // Heuristic: each bound key column divides the candidate rows by 4.
  return n / std::pow(4.0, static_cast<double>(probes.size()));
}

}  // namespace

RulePlan planRule(const RuleShape& shape, size_t deltaLit,
                  const std::vector<LitStats>& stats) {
  RulePlan plan;
  size_t count = shape.lits.size();
  std::vector<bool> visited(count, false);
  std::vector<size_t> placed;
  placed.reserve(count);

  auto place = [&](size_t lit) {
    PlannedLiteral pl;
    pl.lit = lit;
    pl.probes = probesFor(shape, lit, placed, visited);
    for (const auto& p : pl.probes) pl.keyArgs.push_back(p.arg);
    pl.estRows =
        estimateRows(shape, lit, pl.probes, stats, &pl.fromIndexStats);
    visited[lit] = true;
    placed.push_back(lit);
    plan.order.push_back(std::move(pl));
  };

  // Delta-aware pinning: the semi-naive delta literal drives the
  // firing; everything else joins against it.
  if (deltaLit != SIZE_MAX) place(deltaLit);

  while (placed.size() < count) {
    size_t best = SIZE_MAX;
    double bestEst = 0.0;
    for (size_t i = 0; i < count; ++i) {
      if (visited[i]) continue;
      bool fromIndex = false;
      std::vector<PlannedProbe> probes = probesFor(shape, i, placed, visited);
      double est = estimateRows(shape, i, probes, stats, &fromIndex);
      // Strict < keeps the lowest literal position on ties, which biases
      // toward program order (and hence the cheap unreordered path).
      if (best == SIZE_MAX || est < bestEst) {
        best = i;
        bestEst = est;
      }
    }
    place(best);
  }

  for (size_t i = 0; i < plan.order.size(); ++i) {
    if (plan.order[i].lit != i) {
      plan.reordered = true;
      break;
    }
  }
  return plan;
}

std::string explainPlan(const dl::Rule& rule, const RuleShape& shape,
                        const RulePlan& plan, size_t deltaLit,
                        const std::vector<LitStats>& stats) {
  std::string out = "plan " + rule.head.toString() + " :- ... ";
  out += plan.reordered ? "[reordered]" : "[program order]";
  if (deltaLit != SIZE_MAX) {
    out += " delta=" +
           rule.body[shape.lits[deltaLit].body].atom.toString();
  }
  out += "\n";
  for (size_t step = 0; step < plan.order.size(); ++step) {
    const PlannedLiteral& pl = plan.order[step];
    const dl::Atom& atom = rule.body[shape.lits[pl.lit].body].atom;
    out += "  " + std::to_string(step + 1) + ". " + atom.toString();
    out += " rows=" + std::to_string(stats[pl.lit].rangeRows);
    if (pl.probes.empty()) {
      out += " scan";
    } else {
      out += " probe[";
      for (size_t i = 0; i < pl.probes.size(); ++i) {
        const PlannedProbe& p = pl.probes[i];
        if (i > 0) out += ",";
        out += "arg" + std::to_string(p.arg) + "=";
        if (p.fixed) {
          out += p.fixedValue.toString();
        } else {
          const dl::Atom& src =
              rule.body[shape.lits[p.srcLit].body].atom;
          out += src.pred + ".arg" + std::to_string(p.srcArg);
        }
      }
      out += "]";
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", pl.estRows);
    out += " est=" + std::string(buf);
    out += pl.fromIndexStats ? " (index stats)" : " (heuristic)";
    out += "\n";
  }
  return out;
}

}  // namespace faure::fl
