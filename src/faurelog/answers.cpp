#include "faurelog/answers.hpp"

#include <set>

namespace faure::fl {

namespace {

bool groundData(const std::vector<Value>& vals) {
  for (const auto& v : vals) {
    if (v.isCVar()) return false;
  }
  return true;
}

}  // namespace

bool isCertain(const rel::CTable& table, const std::vector<Value>& vals,
               smt::SolverBase& solver) {
  smt::Formula cond = table.conditionOf(vals);
  if (cond.isFalse()) return false;
  return solver.implies(smt::Formula::top(), cond);
}

bool isPossible(const rel::CTable& table, const std::vector<Value>& vals,
                smt::SolverBase& solver) {
  smt::Formula cond = table.conditionOf(vals);
  return solver.check(cond) != smt::Sat::Unsat;
}

AnswerClasses classifyAnswers(const rel::CTable& table,
                              smt::SolverBase& solver) {
  AnswerClasses out;
  std::set<std::vector<Value>> seen;
  for (const auto& row : table.rows()) {
    if (!groundData(row.vals)) {
      out.open.push_back(row);
      continue;
    }
    // Classify each data part once, against its full recorded condition
    // (rows may be unconsolidated duplicates).
    if (!seen.insert(row.vals).second) continue;
    smt::Formula cond = table.conditionOf(row.vals);
    if (solver.check(cond) == smt::Sat::Unsat) continue;
    out.possible.push_back(row.vals);
    if (solver.implies(smt::Formula::top(), cond)) {
      out.certain.push_back(row.vals);
    }
  }
  return out;
}

}  // namespace faure::fl
