// Certain and possible answers — the classical query semantics for
// incomplete databases (Imieliński–Lipski), surfaced over fauré-log
// results:
//
//   certain(q)  = tuples in q(I) for EVERY possible world I ∈ rep(T)
//   possible(q) = tuples in q(I) for SOME  possible world I
//
// Over a c-table result these are condition tests: a row is certain when
// its condition is valid, possible when it is satisfiable. Rows whose
// data part contains a c-variable denote families of tuples and are
// reported under `open` (their instantiation differs per world).
#pragma once

#include "relational/ctable.hpp"
#include "smt/solver.hpp"

namespace faure::fl {

struct AnswerClasses {
  /// Ground rows present in every world.
  std::vector<std::vector<Value>> certain;
  /// Ground rows present in at least one world (includes the certain
  /// ones).
  std::vector<std::vector<Value>> possible;
  /// Rows whose data part is not ground (c-variables in columns); their
  /// membership varies by world beyond a yes/no per tuple.
  std::vector<rel::Row> open;
};

/// Classifies every row of a (consolidated) result table. Solver Unknown
/// answers classify conservatively: not certain, but possible.
AnswerClasses classifyAnswers(const rel::CTable& table,
                              smt::SolverBase& solver);

/// True when `vals` (a ground tuple) is a certain answer of `table`:
/// the OR of the conditions recorded for this data part is valid.
bool isCertain(const rel::CTable& table, const std::vector<Value>& vals,
               smt::SolverBase& solver);

/// True when `vals` is a possible answer: some recorded condition for
/// this data part is satisfiable (Unknown counts as possible).
bool isPossible(const rel::CTable& table, const std::vector<Value>& vals,
                smt::SolverBase& solver);

}  // namespace faure::fl
