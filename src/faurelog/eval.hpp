// Fauré-log evaluation over c-tables — the paper's core contribution (§3).
//
// The evaluator implements the c-valuation v^C: program variables range
// over the c-domain (constants ∪ c-variables); a constant in a rule
// matches an equal constant outright and matches a c-variable by
// conjoining the equality into the derived tuple's condition; explicit
// comparisons become condition atoms. Recursion uses a stratified
// semi-naive fixed point; negation is closed-world over the (fully
// computed) lower stratum, contributing the conjunction of the negated
// matches' complements — exactly the c-table difference semantics.
//
// The optional "solver step" mirrors the paper's pipeline (§6): every
// derived condition can be checked and contradictory tuples discarded;
// stats report relational ("sql") time and solver time separately so the
// Table-4 harness can print the same columns as the paper.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datalog/analysis.hpp"
#include "datalog/ast.hpp"
#include "faurelog/plan.hpp"
#include "obs/trace.hpp"
#include "relational/database.hpp"
#include "smt/solver.hpp"
#include "smt/supervised_solver.hpp"
#include "util/resource_guard.hpp"

namespace faure::fl {

/// Explicitly-known-absent tuples, used by the containment reduction
/// (§5): in open-world mode a negated literal matches only these.
struct NegativeFacts {
  /// pred -> list of data parts (over the c-domain) known absent.
  std::map<std::string, std::vector<std::vector<Value>>> facts;

  bool empty() const { return facts.empty(); }
};

struct EvalOptions {
  /// Delta-driven fixed point (ablation: naive re-derivation when false).
  bool semiNaive = true;
  /// Check each derived condition for satisfiability and drop
  /// contradictory tuples (the paper's Z3 step). Soundness does not
  /// depend on it; result size and downstream cost do.
  bool pruneWithSolver = true;
  /// Skip a derived tuple when its condition is semantically implied by
  /// what is already recorded for the same data part. Needed for
  /// termination on condition-growing cycles; syntactic dedup alone
  /// handles the common case.
  bool mergeSubsumption = true;
  /// Skip the *semantic* subsumption check once the recorded condition
  /// has grown past this many disjuncts: against a large disjunction the
  /// check rarely succeeds and its refutation is expensive. The syntactic
  /// check still applies, so termination on finite atom sets is kept.
  size_t maxSubsumptionDisjuncts = 32;
  /// Consolidate rows with equal data parts (OR their conditions) in the
  /// final result.
  bool consolidate = true;
  /// Semantically simplify every result condition (smt/simplify.hpp):
  /// smaller outputs at the cost of extra solver calls. Off by default.
  bool simplifyResults = false;
  /// Open-world negation for the containment reduction: when set, a
  /// negated literal matches only the listed negative facts instead of
  /// complementing the computed relation.
  const NegativeFacts* openWorldNegation = nullptr;
  /// Safety cap on fixed-point rounds.
  size_t maxIterations = 1u << 20;
  /// Resource governance (util/resource_guard.hpp): evaluation charges
  /// joins, derivations and fixpoint rounds against the guard, and when a
  /// budget trips it stops and returns the tuples derived so far with
  /// EvalResult::incomplete set and the tripped budget recorded. Null (the
  /// default) leaves evaluation ungoverned and bit-identical to before.
  ResourceGuard* guard = nullptr;
  /// Strict budgets: throw BudgetExceeded instead of returning an
  /// incomplete result when the guard trips.
  bool throwOnBudget = false;
  /// Parallel evaluation (DESIGN.md §7): total number of threads the
  /// fixpoint engine may use. Unset (the default) consults the
  /// FAURE_THREADS environment variable, falling back to serial; 1
  /// forces serial regardless of the environment; 0 means hardware
  /// concurrency; N > 1 runs candidate generation and solver prechecks
  /// on N threads with a deterministic per-round merge — results and
  /// logical counters are bit-identical to a serial run.
  std::optional<unsigned> threads;
  /// Cost-based join planning (faurelog/plan.hpp, DESIGN.md §11): Off
  /// runs the pristine program-order join path; On reorders body
  /// literals by estimated selectivity and probes persistent c-table
  /// indexes (rel::JoinIndex), with results byte-identical to Off at
  /// any thread count; Explain additionally dumps each chosen plan to
  /// stderr. Unset (the default) consults the FAURE_PLAN environment
  /// variable and falls back to On.
  std::optional<PlanMode> plan;
  /// Fault tolerance (smt/supervised_solver.hpp, DESIGN.md §9): when set
  /// and enabled, the evaluation runs its checks through a
  /// SupervisedSolver wrapped around the caller's solver for the
  /// duration of the run (watchdog, retries, breaker, optional native
  /// failover, optional chaos injection). The caller's solver keeps its
  /// verdict cache afterwards; verdicts shaped by supervision are never
  /// admitted into it. Unset (the default) leaves the solver untouched —
  /// evalFaure never reads supervision settings from the environment;
  /// that activation path belongs to Session and the CLI.
  std::optional<smt::SupervisionOptions> supervision;
  /// Observability (obs/trace.hpp): evaluation records an
  /// eval → stratum → rule span tree and mirrors its statistics —
  /// aggregate, per-stratum and per-rule — into the tracer's metrics
  /// registry (`eval.*` names; DESIGN.md "Observability"). The tracer is
  /// also scope-attached to the solver so `solver.*` metrics land in the
  /// same registry. Null (the default) disables tracing at the cost of
  /// one pointer test per site.
  obs::Tracer* tracer = nullptr;
};

/// Compatibility accessor over one evaluation's counters. The canonical,
/// superset store for an *observed* run is the obs metrics registry
/// (`eval.*`, including per-stratum `eval.stratum[s].*` and per-rule
/// `eval.rule[i:head].*` breakdowns this struct cannot express); every
/// field here is mirrored there when EvalOptions::tracer is set.
struct EvalStats {
  uint64_t derivations = 0;   // candidate head tuples (pre-prune)
  uint64_t inserted = 0;      // rows appended
  uint64_t prunedUnsat = 0;   // dropped by the solver step
  uint64_t subsumed = 0;      // dropped by the merge-subsumption check
  size_t iterations = 0;
  uint64_t budgetTrips = 0;    // evaluations cut short by the guard (0/1)
  double sqlSeconds = 0.0;     // relational work (matching, joining)
  double solverSeconds = 0.0;  // condition satisfiability checks
  uint64_t solverChecks = 0;
};

struct EvalResult {
  std::map<std::string, rel::CTable> idb;
  EvalStats stats;

  /// True when a resource budget tripped and `idb` holds only the tuples
  /// derived before the trip. Every held tuple is still sound (it is
  /// derivable); only completeness is lost — the verifier maps this to
  /// UNKNOWN. `tripped`/`degradeReason` identify the budget that fired.
  bool incomplete = false;
  Budget tripped = Budget::None;
  std::string degradeReason;

  const rel::CTable& relation(const std::string& pred) const;

  /// True when the 0-ary predicate `goal` was derived; `cond` (optional)
  /// receives the disjunction of its derivation conditions.
  bool derived(const std::string& goal, smt::Formula* cond = nullptr) const;
};

/// Evaluates a fauré-log program against `db`. `solver` decides condition
/// satisfiability (pass a NativeSolver over db.cvars(), or a Z3 backend);
/// it may be null only when both pruneWithSolver and mergeSubsumption are
/// disabled.
EvalResult evalFaure(const dl::Program& p, const rel::Database& db,
                     smt::SolverBase* solver, const EvalOptions& opts = {});

/// Selective re-evaluation plan for the incremental engine
/// (incremental.hpp): an explicit evaluation partition, which of its
/// strata to execute, and the derived tables — retained verbatim from a
/// previous epoch — standing in for the skipped ones.
///
/// The plan carries its own Stratification because dl::stratify only
/// separates strata across negation: independent positive rule families
/// all share stratum 0, far too coarse to skip selectively. The
/// incremental engine refines the partition to the topologically-
/// ordered SCC condensation of the predicate dependency graph; the
/// evaluator runs whatever partition the plan names (any rule grouping
/// is sound as long as each predicate's rules sit in one group and
/// groups are in dependency order — negation included, which refinement
/// of a valid stratification preserves).
///
/// The contract that makes table reuse byte-identical to a full
/// recompute is the caller's: `retained` must hold exactly the head
/// predicates of every stratum with runStratum[s] == false, carrying
/// the tables a full run under the SAME partition over the current
/// database would produce. Evaluation is deterministic, so tables from
/// the previous epoch satisfy this whenever no predicate feeding their
/// strata changed.
struct StrataPlan {
  /// The evaluation partition (ruleStrata is what the evaluator runs).
  dl::Stratification strata;
  /// One flag per entry of strata.ruleStrata — false means "skip, the
  /// retained tables already cover this stratum's heads". Size checked
  /// at run time.
  std::vector<char> runStratum;
  /// Derived tables injected for the skipped strata's head predicates.
  std::map<std::string, rel::CTable> retained;
};

/// evalFaure, but only over the strata selected by `plan`; the plan's
/// retained tables are seeded into the result untouched. With an
/// all-true plan this is exactly evalFaure.
EvalResult evalFaurePlanned(const dl::Program& p, const rel::Database& db,
                            smt::SolverBase* solver, const EvalOptions& opts,
                            StrataPlan plan);

/// Convenience: evaluates with a fresh NativeSolver and default options.
EvalResult evalFaure(const dl::Program& p, const rel::Database& db);

/// The thread count an evaluation with `opts` will actually use:
/// resolves the unset-means-FAURE_THREADS default and the 0-means-
/// hardware-concurrency convention (eval layers and the CLI report the
/// same number through this).
size_t resolveThreads(const EvalOptions& opts);

}  // namespace faure::fl
