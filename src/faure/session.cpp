#include "faure/session.hpp"

#include "faurelog/textio.hpp"
#include "smt/z3_solver.hpp"
#include "util/error.hpp"

namespace faure {

Session::Session(Backend backend) : backend_(backend) {
  if (backend_ == Backend::Z3) {
    // Throws a typed SolverBackendError in builds without Z3.
    solver_ = smt::requireZ3Solver(db_.cvars());
  } else {
    solver_ = std::make_unique<smt::NativeSolver>(db_.cvars());
  }
  setSolverCache(smt::VerdictCache::capacityFromEnv());
  if (smt::SupervisionOptions env = smt::SupervisionOptions::fromEnv();
      env.enabled) {
    setSupervision(env);
  }
}

void Session::setSolverCache(size_t entries) {
  if (entries == 0) {
    solver_->setVerdictCache(nullptr);
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<smt::VerdictCache>(db_.cvars(), entries);
  solver_->setVerdictCache(cache_.get());
}

smt::SolverBase& Session::solver() { return *solver_; }

smt::SupervisedSolver* Session::supervisedSolver() {
  return dynamic_cast<smt::SupervisedSolver*>(solver_.get());
}

void Session::setSupervision(const smt::SupervisionOptions& opts) {
  inc_.reset();  // the watch engine holds a raw pointer to the old chain
  if (smt::SupervisedSolver* sup = supervisedSolver(); sup != nullptr) {
    // Unwrap first — takeBackend(0) hands the verdict cache back to the
    // primary — then re-wrap below if the new options are enabled.
    std::unique_ptr<smt::SolverBase> inner = sup->takeBackend(0);
    solver_ = std::move(inner);  // destroys the old wrapper
  }
  if (!opts.enabled) {
    solver_->setTracer(tracer_);
    return;
  }
  auto sup = std::make_unique<smt::SupervisedSolver>(db_.cvars(), opts);
  sup->addBackend(backend_ == Backend::Z3 ? "z3" : "native",
                  std::move(solver_));
  if (opts.failover) sup->addNativeFallback();
  solver_ = std::move(sup);
  solver_->setTracer(tracer_);
}

void Session::setResourceLimits(const ResourceLimits& limits) {
  guard_.arm(limits);
}

void Session::setTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  solver_->setTracer(tracer);
  if (tracer != nullptr) {
    // Budget trips become first-class trace events carrying the guard's
    // machine-readable reason (e.g. "deadline(limit=0.5s)").
    guard_.onTrip([tracer](Budget, const std::string& reason) {
      tracer->event("budget.trip", reason);
    });
  } else {
    guard_.onTrip(nullptr);
  }
}

void Session::resetStats() {
  solver_->resetStats();
  if (tracer_ != nullptr) tracer_->metrics().reset();
}

ResourceGuard* Session::armGuard() {
  if (!guard_.active()) return nullptr;
  guard_.rearm();
  return &guard_;
}

ResourceGuard* Session::beginOperation() {
  if (resetPerOp_) resetStats();
  return armGuard();
}

void Session::load(std::string_view databaseText) {
  inc_.reset();  // out-of-band database growth the watch cannot track
  fl::parseDatabaseInto(databaseText, db_);
}

fl::EvalResult Session::run(std::string_view programText) {
  inc_.reset();  // run() stores IDB into the db behind a watch's back
  dl::Program program = dl::parseProgram(programText, db_.cvars());
  fl::EvalOptions opts = opts_;
  opts.guard = beginOperation();
  opts.tracer = tracer_;
  obs::Span span(tracer_, "session.run");
  fl::EvalResult res = fl::evalFaure(program, db_, solver_.get(), opts);
  for (auto& [pred, table] : res.idb) {
    db_.put(table);
  }
  return res;
}

fl::ScenarioSet Session::scenarios(std::string_view programText) {
  dl::Program program = dl::parseProgram(programText, db_.cvars());
  fl::ScenarioSetOptions sopts;
  sopts.eval = opts_;
  sopts.eval.tracer = tracer_;
  sopts.limits = guard_.active() ? guard_.limits() : ResourceLimits{};
  sopts.solverName = backend_ == Backend::Z3 ? "z3" : "native";
  return fl::ScenarioSet(std::move(program), db_.clone(), std::move(sopts));
}

fl::EvalResult Session::watch(std::string_view programText) {
  dl::Program program = dl::parseProgram(programText, db_.cvars());
  fl::EvalOptions opts = opts_;
  opts.guard = guard_.active() ? &guard_ : nullptr;
  opts.tracer = tracer_;
  inc_ = std::make_unique<fl::IncrementalEngine>(std::move(program), db_,
                                                 solver_.get(), opts);
  return reevaluate();
}

bool Session::insertFact(const std::string& pred, std::vector<Value> vals,
                         smt::Formula cond) {
  if (inc_ == nullptr) throw EvalError("insertFact: no active watch");
  return inc_->insertFact(pred, std::move(vals), std::move(cond));
}

size_t Session::retractFact(const std::string& pred,
                            const std::vector<Value>& vals) {
  if (inc_ == nullptr) throw EvalError("retractFact: no active watch");
  return inc_->retractFact(pred, vals);
}

void Session::applyEdits(std::string_view editScript) {
  if (inc_ == nullptr) throw EvalError("applyEdits: no active watch");
  for (const fl::Edit& e : fl::parseEditScript(editScript, db_)) {
    inc_->apply(e);
  }
}

fl::EvalResult Session::reevaluate() {
  if (inc_ == nullptr) throw EvalError("reevaluate: no active watch");
  beginOperation();  // re-arm the guard: budgets are per epoch
  obs::Span span(tracer_, "session.reevaluate");
  return inc_->reevaluate();
}

verify::StateCheck Session::check(std::string_view constraintText,
                                  std::string name) {
  verify::Constraint c =
      verify::Constraint::parse(std::move(name), constraintText, db_.cvars());
  smt::ResourceGuardScope scope(solver_.get(), beginOperation());
  obs::Span span(tracer_, "session.check");
  return verify::RelativeVerifier::checkOnState(c, db_, *solver_);
}

verify::Verdict Session::subsumed(
    const verify::Constraint& target,
    const std::vector<verify::Constraint>& known) {
  verify::SubsumptionOptions opts;
  opts.guard = beginOperation();
  opts.tracer = tracer_;
  obs::Span span(tracer_, "session.subsumed");
  verify::RelativeVerifier v(db_.cvars(), opts);
  return v.checkSubsumption(target, known);
}

verify::Verdict Session::subsumedAfterUpdate(
    const verify::Constraint& target,
    const std::vector<verify::Constraint>& known, const verify::Update& u) {
  verify::SubsumptionOptions opts;
  opts.guard = beginOperation();
  opts.tracer = tracer_;
  obs::Span span(tracer_, "session.subsumed_after_update");
  verify::RelativeVerifier v(db_.cvars(), opts);
  return v.checkWithUpdate(target, known, u);
}

verify::Constraint Session::constraint(std::string name,
                                       std::string_view text) {
  return verify::Constraint::parse(std::move(name), text, db_.cvars());
}

}  // namespace faure
