// Umbrella header: everything a typical user of the library needs.
#pragma once

#include "datalog/parser.hpp"        // IWYU pragma: export
#include "faure/session.hpp"         // IWYU pragma: export
#include "faurelog/answers.hpp"      // IWYU pragma: export
#include "faurelog/eval.hpp"         // IWYU pragma: export
#include "faurelog/textio.hpp"       // IWYU pragma: export
#include "net/frr.hpp"               // IWYU pragma: export
#include "net/pipeline.hpp"          // IWYU pragma: export
#include "net/rib_gen.hpp"           // IWYU pragma: export
#include "net/topology.hpp"          // IWYU pragma: export
#include "relational/algebra.hpp"    // IWYU pragma: export
#include "relational/worlds.hpp"     // IWYU pragma: export
#include "smt/simplify.hpp"          // IWYU pragma: export
#include "smt/solver.hpp"            // IWYU pragma: export
#include "smt/z3_solver.hpp"         // IWYU pragma: export
#include "verify/templates.hpp"      // IWYU pragma: export
#include "verify/verifier.hpp"       // IWYU pragma: export
