// Session: the high-level entry point tying the layers together — a
// database, a condition solver, and evaluation defaults — so common
// workflows are one-liners:
//
//   faure::Session s;
//   s.load("var x_ int 0 1\n"
//          "table F(flow sym, from int, to int)\n"
//          "row F f0 1 2 | x_ = 1\n");
//   s.run("R(f,a,b) :- F(f,a,b).\n"
//         "R(f,a,b) :- F(f,a,c), R(f,c,b).\n");   // IDB lands in the db
//   auto verdict = s.check("panic :- !R('f0', 1, 2).");
//
// For fine-grained control use the layer APIs directly (faurelog/eval.hpp,
// verify/verifier.hpp); Session is sugar, not a boundary.
#pragma once

#include <memory>
#include <string_view>

#include "faurelog/eval.hpp"
#include "faurelog/incremental.hpp"
#include "faurelog/scenario.hpp"
#include "smt/verdict_cache.hpp"
#include "verify/verifier.hpp"

namespace faure {

class Session {
 public:
  /// Backend for condition satisfiability.
  enum class Backend { Native, Z3 };

  explicit Session(Backend backend = Backend::Native);

  /// The underlying database (tables + c-variable registry).
  rel::Database& db() { return db_; }
  const rel::Database& db() const { return db_; }
  CVarRegistry& vars() { return db_.cvars(); }

  /// Evaluation defaults applied by run()/check().
  fl::EvalOptions& options() { return opts_; }

  /// Parallel evaluation for subsequent run() calls: total evaluation
  /// threads (0 = hardware concurrency, 1 = serial). Results are
  /// bit-identical for every setting (DESIGN.md §7); only wall-clock
  /// and the eval.par.* metrics change. Shorthand for options().threads.
  void setThreads(unsigned n) { opts_.threads = n; }

  /// Cost-based join planning for subsequent run() calls (DESIGN.md
  /// §11): PlanMode::On reorders body literals by estimated selectivity
  /// and probes persistent c-table indexes, PlanMode::Off runs the
  /// pristine program-order join path, PlanMode::Explain additionally
  /// dumps each chosen plan to stderr. Results are byte-identical in
  /// every mode; only wall-clock and the eval.plan.* metrics change.
  /// Shorthand for options().plan.
  void setPlanning(fl::PlanMode m) { opts_.plan = m; }

  /// Arms resource governance (util/resource_guard.hpp) for subsequent
  /// run()/check()/subsumed() calls; each call re-arms the guard, so a
  /// deadline applies per operation. Pass {} (all-zero limits) to
  /// disable. While disabled, behaviour is identical to an ungoverned
  /// session.
  void setResourceLimits(const ResourceLimits& limits);

  /// The session guard — observe trip state after a degraded call, or
  /// cancel() it from another thread to stop a running evaluation.
  ResourceGuard& guard() { return guard_; }

  /// Attaches a tracer (obs/trace.hpp) to the session: run()/check()/
  /// subsumed() open `session.*` spans, the evaluator and solver record
  /// their span trees and metrics into it, and guard budget trips become
  /// `budget.trip` events carrying the guard's machine-readable reason.
  /// Null detaches. The tracer must outlive the session (or a later
  /// setTracer(nullptr)).
  void setTracer(obs::Tracer* tracer);
  obs::Tracer* tracer() const { return tracer_; }

  /// When true (default), solver statistics — and with a tracer attached,
  /// the metrics registry — accumulate across operations: SolverStats
  /// after two run() calls covers both. resetStatsPerOperation(true) makes
  /// each run()/check()/subsumed() start from zero instead, so per-call
  /// stats can be read without bookkeeping deltas.
  void resetStatsPerOperation(bool enable) { resetPerOp_ = enable; }

  /// Zeroes solver statistics and (when a tracer is attached) every
  /// metric in its registry, keeping handles valid. Span/event history is
  /// untouched.
  void resetStats();

  /// The session solver (rebuilt if you exchange the registry wholesale).
  smt::SolverBase& solver();

  /// Fault-tolerant solver execution (smt/supervised_solver.hpp,
  /// DESIGN.md §9): wraps the session solver in a SupervisedSolver —
  /// per-attempt watchdog, bounded deterministic retry, circuit breaker,
  /// optional native failover, optional seeded chaos injection. Passing
  /// opts with enabled == false unwraps back to the bare backend. The
  /// verdict cache moves with the wrap either way; verdicts shaped by
  /// supervision are never admitted into it. A session constructed while
  /// FAURE_RETRIES / FAURE_SOLVER_TIMEOUT_MS / FAURE_FAILOVER /
  /// FAURE_CHAOS_SEED are set starts supervised (SupervisionOptions::
  /// fromEnv()).
  void setSupervision(const smt::SupervisionOptions& opts);

  /// The supervision wrapper when active, else null — read
  /// supervisionStats() / breaker state off it after a degraded run.
  smt::SupervisedSolver* supervisedSolver();

  /// Resizes the session's solver verdict cache (smt/verdict_cache.hpp):
  /// `entries` bounds the LRU map, 0 detaches caching entirely. The
  /// session starts with VerdictCache::capacityFromEnv() (the
  /// FAURE_SOLVER_CACHE variable, default 65536). The cache is shared by
  /// every run()/check()/subsumed() call, so a verification session
  /// amortizes the checks its evaluations already paid for. Resizing
  /// drops all cached verdicts. Results are byte-identical at any
  /// setting — only physical solver work (and solver.cache.* metrics)
  /// changes.
  void setSolverCache(size_t entries);
  smt::VerdictCache* solverCache() const { return cache_.get(); }

  /// Parses database text (docs/LANGUAGE.md) into the session database.
  /// Declarations and rows accumulate across calls; table redeclaration
  /// throws.
  void load(std::string_view databaseText);

  /// Evaluates a fauré-log program against the database; every derived
  /// relation is stored back into the database (so later programs can
  /// build on it) and the result is returned.
  fl::EvalResult run(std::string_view programText);

  /// Evaluates a constraint (panic program) against the database state —
  /// the §5 level-(iii) check.
  verify::StateCheck check(std::string_view constraintText,
                           std::string name = "constraint");

  /// Begins incremental what-if evaluation (DESIGN.md §10) over
  /// `programText`: evaluates it once and retains the derived strata so
  /// subsequent insertFact()/retractFact() + reevaluate() re-fire only
  /// the rules whose bodies touch a changed relation. Unlike run(), a
  /// watched evaluation never stores derived tables back into the
  /// database — the EDB stays pristine so every epoch re-derives from
  /// the same base. Returns the epoch-0 result. A later load(), run()
  /// or setSupervision() ends the watch (the engine would otherwise see
  /// a database or solver it did not track).
  fl::EvalResult watch(std::string_view programText);

  /// Delta API of the active watch — thin forwarding over
  /// fl::IncrementalEngine (incremental.hpp). All throw EvalError when
  /// no watch is active.
  bool insertFact(const std::string& pred, std::vector<Value> vals,
                  smt::Formula cond = smt::Formula::top());
  size_t retractFact(const std::string& pred,
                     const std::vector<Value>& vals);
  /// Parses and applies `+Fact(...)` / `-Fact(...)` directives
  /// (docs: textio.hpp edit scripts).
  void applyEdits(std::string_view editScript);
  /// Re-derives after staged edits; per the oracle contract the result
  /// is byte-identical to a full recompute (FAURE_INCREMENTAL=0).
  fl::EvalResult reevaluate();

  /// The active watch engine (stats, mode toggles), or null.
  fl::IncrementalEngine* incrementalEngine() { return inc_.get(); }

  /// Forks the session state into a concurrent scenario service
  /// (DESIGN.md §12): the returned ScenarioSet owns a deep copy of the
  /// current database plus `programText` parsed against it, inherits
  /// the session's evaluation defaults (options().threads becomes the
  /// scenario fan-out width), tracer, backend choice and resource
  /// limits (applied *per scenario*), and runs its own shared verdict
  /// cache. The session itself is never touched by scenario evaluation,
  /// so watches, runs and scenario batches compose freely.
  fl::ScenarioSet scenarios(std::string_view programText);

  /// Category (i)/(ii) tests against this session's registry.
  verify::Verdict subsumed(const verify::Constraint& target,
                           const std::vector<verify::Constraint>& known);
  verify::Verdict subsumedAfterUpdate(
      const verify::Constraint& target,
      const std::vector<verify::Constraint>& known, const verify::Update& u);

  /// Parses a constraint in this session's registry.
  verify::Constraint constraint(std::string name, std::string_view text);

 private:
  /// Re-arms the guard for one governed operation; returns the guard
  /// pointer to wire into options/solver, or nullptr when ungoverned.
  ResourceGuard* armGuard();

  /// Per-operation prologue: optional stats reset, then guard re-arm.
  ResourceGuard* beginOperation();

  Backend backend_;
  rel::Database db_;
  std::unique_ptr<smt::VerdictCache> cache_;  // before solver_: it outlives it
  std::unique_ptr<smt::SolverBase> solver_;
  fl::EvalOptions opts_;
  ResourceGuard guard_;
  obs::Tracer* tracer_ = nullptr;
  bool resetPerOp_ = false;
  std::unique_ptr<fl::IncrementalEngine> inc_;  // active watch, if any
};

}  // namespace faure
