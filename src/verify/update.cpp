#include "verify/update.hpp"

#include "util/error.hpp"

namespace faure::verify {

namespace {

using dl::Comparison;
using dl::LinExpr;
using dl::Literal;
using dl::Rule;
using dl::Term;

/// One way a literal over an updated relation can be satisfied: an
/// optional occurrence of the base literal plus extra comparisons.
struct Variant {
  bool hasBase = false;
  bool baseNegated = false;
  std::vector<Comparison> cmps;
  bool dead = false;  // a comparison folded to false
};

Comparison makeCmp(const Term& a, smt::CmpOp op, const Term& b) {
  Comparison c;
  c.op = op;
  c.lhs = LinExpr::of(a);
  c.rhs = LinExpr::of(b);
  return c;
}

/// Adds `a op b` to the variant, folding constant-vs-constant cases.
void addCmp(Variant& v, const Term& a, smt::CmpOp op, const Term& b) {
  if (a.isConst() && b.isConst()) {
    bool eq = a.constant == b.constant;
    bool holds = op == smt::CmpOp::Eq ? eq : !eq;
    if (!holds) v.dead = true;
    return;  // trivially true: nothing to add
  }
  if (a == b) {
    if (op == smt::CmpOp::Ne) v.dead = true;
    return;
  }
  v.cmps.push_back(makeCmp(a, op, b));
}

void checkTuple(const UpdateOp& op, size_t arity) {
  if (op.tuple.size() != arity) {
    throw EvalError("update tuple arity mismatch on '" + op.pred + "'");
  }
  for (const auto& t : op.tuple) {
    if (t.isVar()) {
      throw EvalError("update tuple for '" + op.pred +
                      "' must be ground (constants or c-variables)");
    }
  }
}

/// Variants of the k-th version of the literal (k ops applied), given the
/// literal's argument terms.
std::vector<Variant> expand(const std::vector<const UpdateOp*>& ops,
                            size_t k, const std::vector<Term>& args,
                            bool negated) {
  if (k == 0) {
    Variant base;
    base.hasBase = true;
    base.baseNegated = negated;
    return {base};
  }
  std::vector<Variant> prev = expand(ops, k - 1, args, negated);
  const UpdateOp& op = *ops[k - 1];
  std::vector<Variant> out;
  bool opAdds = (op.kind == UpdateOp::Kind::Insert) != negated;
  if (opAdds) {
    // present ∨ u = t   (resp. absent ∨ u = t for a delete under ¬):
    // keep all previous variants and add the tuple-equality variant.
    out = prev;
    Variant eq;
    for (size_t i = 0; i < args.size(); ++i) {
      addCmp(eq, args[i], smt::CmpOp::Eq, op.tuple[i]);
    }
    if (!eq.dead) out.push_back(std::move(eq));
  } else {
    // present ∧ u ≠ t: each previous variant forks per differing column.
    for (const Variant& v : prev) {
      for (size_t i = 0; i < args.size(); ++i) {
        Variant nv = v;
        addCmp(nv, args[i], smt::CmpOp::Ne, op.tuple[i]);
        if (!nv.dead) out.push_back(std::move(nv));
      }
    }
  }
  return out;
}

}  // namespace

Constraint rewriteForUpdate(const Constraint& c, const Update& u) {
  Constraint out;
  out.name = c.name + "'";

  for (const Rule& rule : c.program.rules) {
    // Variants per literal (1 trivial variant for unaffected literals).
    std::vector<std::vector<Variant>> perLiteral;
    for (const Literal& lit : rule.body) {
      std::vector<const UpdateOp*> ops;
      for (const auto& op : u.ops) {
        if (op.pred == lit.atom.pred) {
          checkTuple(op, lit.atom.args.size());
          ops.push_back(&op);
        }
      }
      perLiteral.push_back(
          expand(ops, ops.size(), lit.atom.args, lit.negated));
    }
    // Cartesian product of literal variants -> rewritten rules.
    std::vector<size_t> idx(perLiteral.size(), 0);
    while (true) {
      Rule nr;
      nr.head = rule.head;
      nr.cmps = rule.cmps;
      bool dead = false;
      for (size_t i = 0; i < perLiteral.size(); ++i) {
        const Variant& v = perLiteral[i][idx[i]];
        if (v.dead) {
          dead = true;
          break;
        }
        if (v.hasBase) {
          nr.body.push_back(rule.body[i]);
        }
        nr.cmps.insert(nr.cmps.end(), v.cmps.begin(), v.cmps.end());
      }
      if (!dead) out.program.rules.push_back(std::move(nr));
      // Advance the product counter.
      size_t k = 0;
      while (k < idx.size() && ++idx[k] == perLiteral[k].size()) {
        idx[k] = 0;
        ++k;
      }
      if (k == idx.size() || idx.empty()) break;
    }
  }
  return out;
}

}  // namespace faure::verify
