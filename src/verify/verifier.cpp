#include "verify/verifier.hpp"

#include "faurelog/eval.hpp"
#include "obs/trace.hpp"
#include "smt/simplify.hpp"

namespace faure::verify {

std::string_view verdictText(Verdict v) {
  switch (v) {
    case Verdict::Holds:
      return "holds";
    case Verdict::Unknown:
      return "unknown";
    case Verdict::Violated:
      return "violated";
    case Verdict::ConditionallyViolated:
      return "conditionally-violated";
  }
  return "?";
}

Verdict RelativeVerifier::checkSubsumption(
    const Constraint& target, const std::vector<Constraint>& known) const {
  SubsumptionResult r = subsumes(target, known, reg_, opts_);
  if (r.subsumed) {
    witness_.reset();
    degradeReason_.clear();
    return Verdict::Holds;
  }
  witness_ = r.witness;
  degradeReason_ = r.incomplete ? r.reason : "";
  return Verdict::Unknown;
}

Verdict RelativeVerifier::checkWithUpdate(const Constraint& target,
                                          const std::vector<Constraint>& known,
                                          const Update& u) const {
  Constraint rewritten = rewriteForUpdate(target, u);
  return checkSubsumption(rewritten, known);
}

namespace {

// The actual containment check; the public wrapper adds the
// `verify.check_on_state` span so every return path shares one
// verdict-annotation point.
StateCheck checkOnStateImpl(const Constraint& target, const rel::Database& db,
                            smt::SolverBase& solver) {
  StateCheck out;
  fl::EvalOptions evalOpts;
  evalOpts.guard = solver.guard();    // govern eval and solver alike
  evalOpts.tracer = solver.tracer();  // and observe them alike
  auto res = fl::evalFaure(target.program, db, &solver, evalOpts);
  if (res.incomplete) {
    // Derived-so-far panic tuples cannot decide the verdict: the missing
    // derivations could strengthen the violation condition. Degrade to
    // UNKNOWN — the paper's answer when something is genuinely missing,
    // here resources instead of information.
    out.verdict = Verdict::Unknown;
    out.incomplete = true;
    out.reason = res.degradeReason;
    return out;
  }
  smt::Formula cond;
  if (!res.derived(Constraint::kGoal, &cond)) {
    out.verdict = Verdict::Holds;
    return out;
  }
  // The verdict is parameterized by the *state's* c-variables; c-variables
  // local to the constraint ("traffic on some port p_") are existential
  // and projected out.
  std::vector<CVarId> stateVars;
  for (const auto& [name, table] : db.tables()) {
    (void)name;
    for (CVarId v : table.collectVars()) stateVars.push_back(v);
  }
  std::vector<CVarId> condVars;
  cond.collectVars(condVars);
  std::vector<CVarId> existential;
  for (CVarId v : condVars) {
    bool inState = false;
    for (CVarId s : stateVars) {
      if (s == v) inState = true;
    }
    if (!inState) existential.push_back(v);
  }
  smt::Formula projected =
      smt::projectExistentials(cond, existential, db.cvars());
  // Projection is a sound under-approximation: fall back to the raw
  // condition when it collapses but the raw condition is satisfiable.
  if (!projected.isFalse() || solver.check(cond) == smt::Sat::Unsat) {
    cond = projected;
  }
  cond = smt::simplify(cond, solver);
  out.condition = cond;
  switch (solver.check(cond)) {
    case smt::Sat::Unsat:
      out.verdict = Verdict::Holds;  // panic never realizable
      return out;
    case smt::Sat::Unknown:
      out.verdict = Verdict::Unknown;
      if (solver.guard() != nullptr && solver.guard()->tripped()) {
        out.incomplete = true;
        out.reason = solver.guard()->reason();
      }
      return out;
    case smt::Sat::Sat:
      break;
  }
  // Violated in every world iff the condition is valid.
  if (solver.implies(smt::Formula::top(), cond)) {
    out.verdict = Verdict::Violated;
  } else {
    out.verdict = Verdict::ConditionallyViolated;
  }
  return out;
}

}  // namespace

StateCheck RelativeVerifier::checkOnState(const Constraint& target,
                                          const rel::Database& db,
                                          smt::SolverBase& solver) {
  obs::Tracer* tracer = solver.tracer();
  obs::Span span(tracer, "verify.check_on_state");
  if (span) span.note("constraint", target.name);
  StateCheck out = checkOnStateImpl(target, db, solver);
  std::string_view verdict = verdictText(out.verdict);
  if (span) {
    span.note("verdict", verdict);
    if (out.incomplete) span.note("incomplete", out.reason);
  }
  if (tracer != nullptr) {
    tracer->metrics()
        .counter("verify.verdict." + std::string(verdict))
        .add();
  }
  return out;
}

}  // namespace faure::verify
