#include "verify/verifier.hpp"

#include "faurelog/eval.hpp"
#include "smt/simplify.hpp"

namespace faure::verify {

std::string_view verdictText(Verdict v) {
  switch (v) {
    case Verdict::Holds:
      return "holds";
    case Verdict::Unknown:
      return "unknown";
    case Verdict::Violated:
      return "violated";
    case Verdict::ConditionallyViolated:
      return "conditionally-violated";
  }
  return "?";
}

Verdict RelativeVerifier::checkSubsumption(
    const Constraint& target, const std::vector<Constraint>& known) const {
  SubsumptionResult r = subsumes(target, known, reg_, opts_);
  if (r.subsumed) {
    witness_.reset();
    return Verdict::Holds;
  }
  witness_ = r.witness;
  return Verdict::Unknown;
}

Verdict RelativeVerifier::checkWithUpdate(const Constraint& target,
                                          const std::vector<Constraint>& known,
                                          const Update& u) const {
  Constraint rewritten = rewriteForUpdate(target, u);
  return checkSubsumption(rewritten, known);
}

StateCheck RelativeVerifier::checkOnState(const Constraint& target,
                                          const rel::Database& db,
                                          smt::SolverBase& solver) {
  StateCheck out;
  auto res = fl::evalFaure(target.program, db, &solver, fl::EvalOptions{});
  smt::Formula cond;
  if (!res.derived(Constraint::kGoal, &cond)) {
    out.verdict = Verdict::Holds;
    return out;
  }
  // The verdict is parameterized by the *state's* c-variables; c-variables
  // local to the constraint ("traffic on some port p_") are existential
  // and projected out.
  std::vector<CVarId> stateVars;
  for (const auto& [name, table] : db.tables()) {
    (void)name;
    for (CVarId v : table.collectVars()) stateVars.push_back(v);
  }
  std::vector<CVarId> condVars;
  cond.collectVars(condVars);
  std::vector<CVarId> existential;
  for (CVarId v : condVars) {
    bool inState = false;
    for (CVarId s : stateVars) {
      if (s == v) inState = true;
    }
    if (!inState) existential.push_back(v);
  }
  smt::Formula projected =
      smt::projectExistentials(cond, existential, db.cvars());
  // Projection is a sound under-approximation: fall back to the raw
  // condition when it collapses but the raw condition is satisfiable.
  if (!projected.isFalse() || solver.check(cond) == smt::Sat::Unsat) {
    cond = projected;
  }
  cond = smt::simplify(cond, solver);
  out.condition = cond;
  switch (solver.check(cond)) {
    case smt::Sat::Unsat:
      out.verdict = Verdict::Holds;  // panic never realizable
      return out;
    case smt::Sat::Unknown:
      out.verdict = Verdict::Unknown;
      return out;
    case smt::Sat::Sat:
      break;
  }
  // Violated in every world iff the condition is valid.
  if (solver.implies(smt::Formula::top(), cond)) {
    out.verdict = Verdict::Violated;
  } else {
    out.verdict = Verdict::ConditionallyViolated;
  }
  return out;
}

}  // namespace faure::verify
