// Constraint templates: the network policies that §5-style verification
// is run against, expressed as panic programs over conventional relation
// shapes. These are convenience builders; anything they produce can also
// be written directly in fauré-log text.
//
// Relation conventions (matching net/ and the paper's examples):
//   R(flow, from, to)    computed reachability (q4-q5 output)
//   F(flow, from, to)    forwarding
//   Fw(subnet, server)   firewall deployment      (§5)
//   Lb(subnet, server)   load-balancer deployment (§5)
#pragma once

#include "verify/constraint.hpp"

namespace faure::verify {

/// "flow must reach `to` from `from`": panics when R(flow, from, to) is
/// NOT derivable.
Constraint mustReach(CVarRegistry& reg, const std::string& flow,
                     int64_t from, int64_t to,
                     const std::string& relation = "R");

/// "flow must NOT reach `to` from `from`" (isolation): panics when
/// R(flow, from, to) is derivable.
Constraint mustNotReach(CVarRegistry& reg, const std::string& flow,
                        int64_t from, int64_t to,
                        const std::string& relation = "R");

/// "traffic of `flow` from `from` to `to` must traverse `waypoint`":
/// panics when `to` is reachable while the waypoint leg is broken, i.e.
/// R(f,from,to) holds but not (R(f,from,w) and R(f,w,to)).
Constraint waypoint(CVarRegistry& reg, const std::string& flow,
                    int64_t from, int64_t to, int64_t waypointNode,
                    const std::string& relation = "R");

/// The paper's T1 shape: traffic from `subnet` to `server` must pass a
/// middlebox recorded in `deployedRel` (Fw or Lb). The port is left as a
/// fresh unknown (the constraint applies to every port).
Constraint requireMiddlebox(CVarRegistry& reg, const std::string& subnet,
                            const std::string& server,
                            const std::string& deployedRel,
                            const std::string& trafficRel = "R");

/// Port allow-list (the Cs q18 shape): any traffic row whose port is
/// outside `ports` panics.
Constraint allowedPorts(CVarRegistry& reg, const std::vector<int64_t>& ports,
                        const std::string& trafficRel = "R");

}  // namespace faure::verify
