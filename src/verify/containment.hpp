// Constraint subsumption via the paper's reduction of program containment
// to fauré-log query evaluation (§5, category (i)).
//
// To decide whether known constraints {C1..Ck} subsume a target T (i.e.
// any state violating T violates some Ci), each goal rule of T is:
//   1. unfolded to an EDB-only body,
//   2. frozen: program variables become fresh c-variables (the paper's
//      "substitute the variables with c-variables"); its positive body
//      atoms become a canonical c-table database, its negated atoms a
//      list of explicit negative facts, and its comparisons the premise Δ,
//   3. the union of the Ci programs is evaluated on that canonical
//      database with open-world negation,
//   4. the rule is covered when panic derives with a condition φ such
//      that Δ ⇒ ∃(constraint-local c-vars). φ.
// T is subsumed when every goal rule is covered.
#pragma once

#include <optional>
#include <vector>

#include "relational/database.hpp"
#include "smt/solver.hpp"
#include "smt/verdict_cache.hpp"
#include "verify/constraint.hpp"

namespace faure::verify {

struct SubsumptionOptions {
  size_t maxUnfoldRules = 1024;
  /// Build the per-check solver with these options.
  smt::NativeSolver::Options solverOptions = {};
  /// Capacity of the per-rule solver verdict cache (each unfolded goal
  /// rule evaluates against its own canonical registry, so the cache is
  /// rule-local); 0 disables, nullopt uses
  /// smt::VerdictCache::capacityFromEnv().
  std::optional<size_t> solverCacheCapacity;
  /// Resource governance: the per-rule evaluations and solver checks
  /// charge this guard; a trip degrades the whole test to "not subsumed"
  /// (the verifier's UNKNOWN) with SubsumptionResult::incomplete set.
  ResourceGuard* guard = nullptr;
  /// Observability: a `verify.subsumption` span wrapping one
  /// `verify.rule[i]` span per unfolded goal rule, with the per-check
  /// solver and evaluation wired into the same tracer (obs/trace.hpp).
  obs::Tracer* tracer = nullptr;
};

struct SubsumptionResult {
  bool subsumed = false;
  /// Index (into the unfolded rule list) of the first uncovered rule;
  /// meaningful when !subsumed.
  size_t uncoveredRule = 0;
  /// The uncovered rule itself, for diagnostics.
  dl::Rule witness;
  /// A resource budget tripped before coverage could be decided: the
  /// "uncovered" answer means "ran out of resources", not "found a
  /// counterexample". `reason` is the guard's machine-readable trip code.
  bool incomplete = false;
  std::string reason;
};

/// Does {constraints} subsume `target`? `srcReg` is the registry the
/// programs were parsed with (domains and types of their c-variables are
/// preserved in the canonical databases).
SubsumptionResult subsumes(const Constraint& target,
                           const std::vector<Constraint>& constraints,
                           const CVarRegistry& srcReg,
                           const SubsumptionOptions& opts = {});

}  // namespace faure::verify
