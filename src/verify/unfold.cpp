#include "verify/unfold.hpp"

#include <set>
#include <unordered_map>

#include "util/error.hpp"

namespace faure::verify {

namespace {

using dl::Atom;
using dl::Comparison;
using dl::LinExpr;
using dl::Literal;
using dl::Program;
using dl::Rule;
using dl::Term;

/// Substitution over program variables.
using Subst = std::unordered_map<std::string, Term>;

Term resolve(const Term& t, const Subst& s) {
  if (!t.isVar()) return t;
  auto it = s.find(t.var);
  if (it == s.end()) return t;
  // Chains are short (one level per unification step) but resolve fully.
  return resolve(it->second, s);
}

/// Unifies two terms; equalities between distinct c-domain values that
/// may still coincide (c-var vs constant / other c-var) are recorded as
/// comparisons, mirroring c-valuation.
bool unify(const Term& a, const Term& b, Subst& s,
           std::vector<Comparison>& eqs) {
  Term x = resolve(a, s);
  Term y = resolve(b, s);
  if (x.isVar()) {
    if (y.isVar() && y.var == x.var) return true;
    s.emplace(x.var, y);
    return true;
  }
  if (y.isVar()) {
    s.emplace(y.var, x);
    return true;
  }
  // Both are c-domain values.
  if (x == y) return true;
  if (x.isConst() && y.isConst()) return false;  // distinct constants
  Comparison c;
  c.op = smt::CmpOp::Eq;
  c.lhs = LinExpr::of(x);
  c.rhs = LinExpr::of(y);
  eqs.push_back(std::move(c));
  return true;
}

Term applyTerm(const Term& t, const Subst& s) { return resolve(t, s); }

Atom applyAtom(const Atom& a, const Subst& s) {
  Atom out;
  out.pred = a.pred;
  out.args.reserve(a.args.size());
  for (const auto& t : a.args) out.args.push_back(applyTerm(t, s));
  return out;
}

LinExpr applyLin(const LinExpr& e, const Subst& s) {
  LinExpr out;
  out.cst = e.cst;
  for (const auto& [t, c] : e.terms) {
    Term r = applyTerm(t, s);
    if (r.isConst() && r.constant.kind() == Value::Kind::Int) {
      out.cst += c * r.constant.asInt();
    } else {
      out.terms.emplace_back(std::move(r), c);
    }
  }
  return out;
}

Comparison applyCmp(const Comparison& c, const Subst& s) {
  Comparison out;
  out.op = c.op;
  out.lhs = applyLin(c.lhs, s);
  out.rhs = applyLin(c.rhs, s);
  return out;
}

Rule applyRule(const Rule& r, const Subst& s) {
  Rule out;
  out.head = applyAtom(r.head, s);
  for (const auto& lit : r.body) {
    out.body.push_back(Literal{applyAtom(lit.atom, s), lit.negated});
  }
  for (const auto& c : r.cmps) out.cmps.push_back(applyCmp(c, s));
  return out;
}

/// Renames all program variables of a rule with a unique suffix so that
/// repeated expansions of the same auxiliary rule do not collide.
Rule freshen(const Rule& r, int serial) {
  Subst s;
  std::string suffix = "$" + std::to_string(serial);
  auto renameIn = [&](const Term& t) {
    if (t.isVar() && s.count(t.var) == 0) {
      s.emplace(t.var, Term::variable(t.var + suffix));
    }
  };
  for (const auto& t : r.head.args) renameIn(t);
  for (const auto& lit : r.body) {
    for (const auto& t : lit.atom.args) renameIn(t);
  }
  for (const auto& c : r.cmps) {
    for (const auto& [t, k] : c.lhs.terms) {
      (void)k;
      renameIn(t);
    }
    for (const auto& [t, k] : c.rhs.terms) {
      (void)k;
      renameIn(t);
    }
  }
  return applyRule(r, s);
}

}  // namespace

std::vector<dl::Rule> unfoldGoalRules(const Program& p,
                                      const std::string& goal,
                                      size_t maxRules) {
  std::set<std::string> idb;
  for (const auto& r : p.rules) idb.insert(r.head.pred);

  std::vector<Rule> work;
  for (const auto& r : p.rules) {
    if (r.head.pred == goal) work.push_back(r);
  }
  if (work.empty()) {
    throw EvalError("unfold: no rule derives '" + goal + "'");
  }

  std::vector<Rule> done;
  int serial = 0;
  while (!work.empty()) {
    if (done.size() + work.size() > maxRules) {
      throw EvalError("unfold: expansion exceeds " +
                      std::to_string(maxRules) + " rules");
    }
    Rule r = std::move(work.back());
    work.pop_back();
    // Find the first IDB literal.
    size_t pos = r.body.size();
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (idb.count(r.body[i].atom.pred) != 0) {
        if (r.body[i].negated) {
          throw EvalError("unfold: negated IDB literal '" +
                          r.body[i].atom.pred +
                          "' cannot be flattened; rewrite the constraint");
        }
        pos = i;
        break;
      }
    }
    if (pos == r.body.size()) {
      done.push_back(std::move(r));
      continue;
    }
    const Atom call = r.body[pos].atom;
    for (const auto& defRule : p.rules) {
      if (defRule.head.pred != call.pred) continue;
      if (defRule.head.args.size() != call.args.size()) {
        throw EvalError("unfold: arity mismatch on '" + call.pred + "'");
      }
      Rule def = freshen(defRule, serial++);
      Subst s;
      std::vector<Comparison> eqs;
      bool ok = true;
      for (size_t i = 0; i < call.args.size() && ok; ++i) {
        ok = unify(call.args[i], def.head.args[i], s, eqs);
      }
      if (!ok) continue;
      Rule expanded;
      expanded.head = applyAtom(r.head, s);
      for (size_t i = 0; i < r.body.size(); ++i) {
        if (i == pos) {
          for (const auto& lit : def.body) {
            expanded.body.push_back(
                Literal{applyAtom(lit.atom, s), lit.negated});
          }
        } else {
          expanded.body.push_back(
              Literal{applyAtom(r.body[i].atom, s), r.body[i].negated});
        }
      }
      for (const auto& c : r.cmps) expanded.cmps.push_back(applyCmp(c, s));
      for (const auto& c : def.cmps) expanded.cmps.push_back(applyCmp(c, s));
      for (const auto& c : eqs) expanded.cmps.push_back(applyCmp(c, s));
      work.push_back(std::move(expanded));
    }
  }
  return done;
}

}  // namespace faure::verify
