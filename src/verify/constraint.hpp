// Constraints as 0-ary fauré-log queries (§5, Listing 3).
//
// A constraint is a program deriving the nullary predicate `panic`: the
// constraint HOLDS on a state exactly when evaluating the program yields
// no (satisfiable) panic derivation.
#pragma once

#include <string>

#include "datalog/ast.hpp"
#include "datalog/parser.hpp"

namespace faure::verify {

struct Constraint {
  std::string name;
  dl::Program program;

  /// The violation predicate; `panic` throughout the paper.
  static constexpr const char* kGoal = "panic";

  /// Parses a constraint from fauré-log text, resolving / declaring
  /// c-variables in `reg`.
  static Constraint parse(std::string name, std::string_view text,
                          CVarRegistry& reg) {
    return Constraint{std::move(name), dl::parseProgram(text, reg)};
  }
};

}  // namespace faure::verify
