// Network updates and the constraint rewrite of §5 category (ii).
//
// An Update is an ordered list of tuple insertions/deletions on EDB
// relations (the TE team's "remove load balancing between Mkt and CS, add
// load balancing for R&D and GS"). rewriteForUpdate(C, U) produces the
// constraint C' such that C' holds on the pre-update state exactly when C
// holds on the post-update state — Listing 4's construction, flattened:
// instead of chaining auxiliary predicates (q19-q22), each literal over an
// updated relation is expanded in place:
//
//   positive P(u) after insert t:   P(u)  ∨  u = t     (extra rule)
//   positive P(u) after delete t:   P(u)  ∧  u ≠ t     (one rule per
//                                                       differing column)
//   negated ¬P(u) after insert t:   ¬P(u) ∧  u ≠ t
//   negated ¬P(u) after delete t:   ¬P(u) ∨  u = t
//
// which keeps the rewritten constraint EDB-only (no negated IDB literal),
// so the category (i) machinery applies unchanged.
#pragma once

#include <string>
#include <vector>

#include "verify/constraint.hpp"

namespace faure::verify {

struct UpdateOp {
  enum class Kind { Insert, Delete };
  Kind kind = Kind::Insert;
  std::string pred;
  /// Ground tuple over the c-domain (constants / c-variables only).
  std::vector<dl::Term> tuple;
};

struct Update {
  std::vector<UpdateOp> ops;

  Update& insert(std::string pred, std::vector<dl::Term> tuple) {
    ops.push_back(
        {UpdateOp::Kind::Insert, std::move(pred), std::move(tuple)});
    return *this;
  }
  Update& remove(std::string pred, std::vector<dl::Term> tuple) {
    ops.push_back(
        {UpdateOp::Kind::Delete, std::move(pred), std::move(tuple)});
    return *this;
  }
};

/// Rewrites `c` to reflect `u` (see file comment). Throws EvalError if an
/// update tuple contains a program variable or its arity mismatches the
/// constraint's use of the relation.
Constraint rewriteForUpdate(const Constraint& c, const Update& u);

}  // namespace faure::verify
