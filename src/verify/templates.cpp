#include "verify/templates.hpp"

namespace faure::verify {

namespace {

std::string num(int64_t v) { return std::to_string(v); }

/// Declares a fresh unknown usable in generated rule text and returns its
/// name. The name must both be unused in `reg` and lex as a c-variable
/// (letters/digits with a trailing underscore).
std::string freshUnknown(CVarRegistry& reg, const std::string& stem,
                         ValueType type) {
  for (int i = 0;; ++i) {
    std::string name = stem + std::to_string(i) + "_";
    if (reg.find(name) == CVarRegistry::kNotFound) {
      reg.declare(name, type);
      return name;
    }
  }
}

}  // namespace

Constraint mustReach(CVarRegistry& reg, const std::string& flow,
                     int64_t from, int64_t to, const std::string& relation) {
  std::string text = "panic :- !" + relation + "('" + flow + "', " +
                     num(from) + ", " + num(to) + ").";
  return Constraint::parse(
      "mustReach(" + flow + "," + num(from) + "," + num(to) + ")", text,
      reg);
}

Constraint mustNotReach(CVarRegistry& reg, const std::string& flow,
                        int64_t from, int64_t to,
                        const std::string& relation) {
  std::string text = "panic :- " + relation + "('" + flow + "', " + num(from) +
                     ", " + num(to) + ").";
  return Constraint::parse(
      "mustNotReach(" + flow + "," + num(from) + "," + num(to) + ")", text,
      reg);
}

Constraint waypoint(CVarRegistry& reg, const std::string& flow, int64_t from,
                    int64_t to, int64_t waypointNode,
                    const std::string& relation) {
  // Violated when the end-to-end path exists but either waypoint leg is
  // missing.
  auto leg = [&](int64_t a, int64_t b) {
    return relation + "('" + flow + "', " + num(a) + ", " + num(b) + ")";
  };
  std::string text =
      "panic :- " + leg(from, to) + ", !" + leg(from, waypointNode) + ".\n" +
      "panic :- " + leg(from, to) + ", !" + leg(waypointNode, to) + ".\n";
  return Constraint::parse("waypoint(" + flow + "," + num(from) + "," +
                               num(to) + " via " + num(waypointNode) + ")",
                           text, reg);
}

Constraint requireMiddlebox(CVarRegistry& reg, const std::string& subnet,
                            const std::string& server,
                            const std::string& deployedRel,
                            const std::string& trafficRel) {
  std::string port = freshUnknown(reg, "port", ValueType::Int);
  std::string text = "panic :- " + trafficRel + "('" + subnet + "', '" +
                     server + "', " + port + "), !" + deployedRel + "('" +
                     subnet + "', '" + server + "').";
  return Constraint::parse(
      "requireMiddlebox(" + subnet + "->" + server + " via " + deployedRel +
          ")",
      text, reg);
}

Constraint allowedPorts(CVarRegistry& reg, const std::vector<int64_t>& ports,
                        const std::string& trafficRel) {
  std::string subnet = freshUnknown(reg, "subnet", ValueType::Any);
  std::string server = freshUnknown(reg, "server", ValueType::Any);
  std::string port = freshUnknown(reg, "port", ValueType::Int);
  std::string text = "panic :- " + trafficRel + "(" + subnet + ", " + server +
                     ", " + port + ")";
  for (int64_t p : ports) text += ", " + port + " != " + num(p);
  text += ".";
  return Constraint::parse("allowedPorts", text, reg);
}

}  // namespace faure::verify
