#include "verify/containment.hpp"

#include <memory>
#include <set>
#include <unordered_map>

#include "faurelog/eval.hpp"
#include "util/error.hpp"
#include "verify/unfold.hpp"

namespace faure::verify {

namespace {

using dl::Comparison;
using dl::LinExpr;
using dl::Rule;
using dl::Term;

/// Maps a flat rule's terms into the c-domain: constants stay, the rule's
/// own c-variables stay (they denote the state's unknowns), and program
/// variables freeze to fresh c-variables.
class Freezer {
 public:
  explicit Freezer(CVarRegistry& reg) : reg_(reg) {}

  Value map(const Term& t) {
    switch (t.kind) {
      case Term::Kind::Const:
        return t.constant;
      case Term::Kind::CVar:
        return Value::cvar(t.cvar);
      case Term::Kind::Var: {
        auto it = frozen_.find(t.var);
        if (it != frozen_.end()) return Value::cvar(it->second);
        CVarId id = reg_.declareFresh(t.var + "$f", ValueType::Any);
        frozen_.emplace(t.var, id);
        return Value::cvar(id);
      }
    }
    return t.constant;
  }

 private:
  CVarRegistry& reg_;
  std::unordered_map<std::string, CVarId> frozen_;
};

smt::Formula linToFormula(const Comparison& cmp, Freezer& fz) {
  auto single = [&](const LinExpr& e) -> std::optional<Value> {
    if (e.isSingleTerm()) return fz.map(e.terms[0].first);
    return std::nullopt;
  };
  std::optional<Value> lv = single(cmp.lhs);
  std::optional<Value> rv = single(cmp.rhs);
  if (lv && rv) return smt::Formula::cmp(*lv, cmp.op, *rv);
  smt::LinTerm diff;
  std::vector<std::pair<CVarId, int64_t>> entries;
  auto accumulate = [&](const LinExpr& e, int64_t sign) {
    diff.cst += sign * e.cst;
    for (const auto& [t, c] : e.terms) {
      Value v = fz.map(t);
      if (v.isCVar()) {
        entries.emplace_back(v.asCVar(), sign * c);
      } else if (v.kind() == Value::Kind::Int) {
        diff.cst += sign * c * v.asInt();
      } else {
        throw TypeError("arithmetic on non-integer constant in constraint");
      }
    }
  };
  accumulate(cmp.lhs, 1);
  accumulate(cmp.rhs, -1);
  return smt::Formula::lin(smt::LinTerm::make(std::move(entries), diff.cst),
                           cmp.op);
}

rel::Schema anySchema(const std::string& name, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(name, attrs);
}

/// Checks coverage of one frozen target rule by the constraint union.
/// Sets *incomplete when a resource budget tripped before the answer was
/// decided (the returned "false" then means UNKNOWN, not uncovered).
bool ruleCovered(const Rule& r, const dl::Program& constraintUnion,
                 const CVarRegistry& srcReg,
                 const SubsumptionOptions& opts, bool* incomplete) {
  rel::Database canonical;
  canonical.cvars() = srcReg;  // preserve c-var ids, types and domains
  Freezer fz(canonical.cvars());

  fl::NegativeFacts negatives;
  std::vector<smt::Formula> premiseParts;

  for (const auto& lit : r.body) {
    std::vector<Value> vals;
    vals.reserve(lit.atom.args.size());
    for (const auto& t : lit.atom.args) vals.push_back(fz.map(t));
    if (lit.negated) {
      negatives.facts[lit.atom.pred].push_back(std::move(vals));
    } else {
      if (!canonical.has(lit.atom.pred)) {
        canonical.create(anySchema(lit.atom.pred, lit.atom.args.size()));
      }
      canonical.table(lit.atom.pred).insert(std::move(vals));
    }
  }
  for (const auto& cmp : r.cmps) premiseParts.push_back(linToFormula(cmp, fz));
  smt::Formula premise = smt::Formula::conj(std::move(premiseParts));

  // Relations the constraints read positively but the canonical database
  // does not mention are empty, not unknown.
  std::set<std::string> idb;
  for (const auto& rule : constraintUnion.rules) idb.insert(rule.head.pred);
  for (const auto& rule : constraintUnion.rules) {
    for (const auto& lit : rule.body) {
      if (!lit.negated && idb.count(lit.atom.pred) == 0 &&
          !canonical.has(lit.atom.pred)) {
        canonical.create(anySchema(lit.atom.pred, lit.atom.args.size()));
      }
    }
  }

  // Universal variables: everything the frozen rule itself mentions.
  std::vector<CVarId> universal;
  for (const auto& [name, table] : canonical.tables()) {
    (void)name;
    for (CVarId v : table.collectVars()) universal.push_back(v);
  }
  for (const auto& [pred, facts] : negatives.facts) {
    (void)pred;
    for (const auto& fact : facts) {
      for (const Value& v : fact) {
        if (v.isCVar()) universal.push_back(v.asCVar());
      }
    }
  }
  premise.collectVars(universal);

  smt::NativeSolver solver(canonical.cvars(), opts.solverOptions);
  solver.setGuard(opts.guard);
  solver.setTracer(opts.tracer);
  // The canonical database clones the source registry and then freezes
  // rule-local variables into it, so a session-level cache (bound to the
  // *source* registry) cannot be shared here; a rule-local cache still
  // amortizes the repeated conditions of the constraint-union fixpoint
  // and the final premise-implication below.
  size_t cacheCap = opts.solverCacheCapacity.value_or(
      smt::VerdictCache::capacityFromEnv());
  std::unique_ptr<smt::VerdictCache> cache;
  if (cacheCap > 0) {
    cache = std::make_unique<smt::VerdictCache>(canonical.cvars(), cacheCap);
    solver.setVerdictCache(cache.get());
  }
  if (solver.check(premise) == smt::Sat::Unsat) {
    return true;  // the target rule can never fire: vacuously covered
  }

  fl::EvalOptions evalOpts;
  evalOpts.openWorldNegation = &negatives;
  evalOpts.guard = opts.guard;
  evalOpts.tracer = opts.tracer;
  auto res = fl::evalFaure(constraintUnion, canonical, &solver, evalOpts);
  if (res.incomplete) {
    *incomplete = true;
    return false;
  }

  smt::Formula phi;
  if (!res.derived(Constraint::kGoal, &phi)) return false;

  // Constraint-local c-variables are rule-scoped existentials.
  std::vector<CVarId> phiVars;
  phi.collectVars(phiVars);
  std::vector<CVarId> existential;
  for (CVarId v : phiVars) {
    bool isUniversal = false;
    for (CVarId u : universal) {
      if (u == v) isUniversal = true;
    }
    if (!isUniversal) existential.push_back(v);
  }
  smt::Formula projected =
      smt::projectExistentials(phi, existential, canonical.cvars());
  bool covered = solver.implies(premise, projected);
  if (!covered && opts.guard != nullptr && opts.guard->tripped()) {
    *incomplete = true;
  }
  return covered;
}

}  // namespace

SubsumptionResult subsumes(const Constraint& target,
                           const std::vector<Constraint>& constraints,
                           const CVarRegistry& srcReg,
                           const SubsumptionOptions& opts) {
  dl::Program constraintUnion;
  for (const auto& c : constraints) {
    constraintUnion = dl::Program::concat(constraintUnion, c.program);
  }
  std::vector<Rule> flat =
      unfoldGoalRules(target.program, Constraint::kGoal, opts.maxUnfoldRules);

  obs::Span span(opts.tracer, "verify.subsumption");
  if (span) {
    span.note("target", target.name);
    span.note("goal_rules", std::to_string(flat.size()));
  }

  SubsumptionResult result;
  for (size_t i = 0; i < flat.size(); ++i) {
    obs::Span ruleSpan;
    if (opts.tracer != nullptr) {
      ruleSpan = obs::Span(opts.tracer,
                           "verify.rule[" + std::to_string(i) + "]");
    }
    bool incomplete = false;
    bool covered =
        ruleCovered(flat[i], constraintUnion, srcReg, opts, &incomplete);
    if (ruleSpan) {
      ruleSpan.note("covered", covered ? "true" : "false");
      if (incomplete) ruleSpan.note("incomplete", "true");
    }
    if (!covered) {
      result.subsumed = false;
      result.uncoveredRule = i;
      result.witness = flat[i];
      result.incomplete = incomplete;
      if (incomplete && opts.guard != nullptr) {
        result.reason = opts.guard->reason();
      }
      if (span) span.note("subsumed", incomplete ? "unknown" : "false");
      return result;
    }
  }
  result.subsumed = true;
  if (span) span.note("subsumed", "true");
  return result;
}

}  // namespace faure::verify
