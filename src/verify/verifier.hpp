// The relative-complete verifier (§2, §5): a cascade of tests, each
// complete relative to the information available, answering UNKNOWN only
// when more information is genuinely needed.
//
//   level (i)   constraint definitions only      -> subsumption test
//   level (ii)  definitions + the update         -> rewrite, then (i)
//   level (iii) the (partial) network state      -> direct evaluation
#pragma once

#include <optional>

#include "relational/database.hpp"
#include "verify/containment.hpp"
#include "verify/update.hpp"

namespace faure::verify {

enum class Verdict {
  Holds,                  // certain, with the information used
  Unknown,                // more information needed (never "wrong")
  Violated,               // violated in every possible world
  ConditionallyViolated,  // violated in some worlds; condition available
};

std::string_view verdictText(Verdict v);

/// Outcome of a state-level (level iii) check.
struct StateCheck {
  Verdict verdict = Verdict::Holds;
  /// When ConditionallyViolated/Violated: the violation condition over
  /// the state's c-variables.
  smt::Formula condition;
  /// UNKNOWN because a resource budget tripped (not because information
  /// was missing); `reason` carries the guard's machine-readable code,
  /// e.g. "deadline(limit=0.5s)" — the reason codes are catalogued in
  /// DESIGN.md ("Resource governance & degradation").
  bool incomplete = false;
  std::string reason;
};

class RelativeVerifier {
 public:
  /// `srcReg` is the registry the constraint programs were parsed with.
  explicit RelativeVerifier(const CVarRegistry& srcReg,
                            SubsumptionOptions opts = {})
      : reg_(srcReg), opts_(std::move(opts)) {}

  /// Category (i): is `target` guaranteed by constraints known to hold?
  /// Holds or Unknown.
  Verdict checkSubsumption(const Constraint& target,
                           const std::vector<Constraint>& known) const;

  /// Category (ii): also use the update — verify that `target` still
  /// holds after `u`, given constraints maintained across the update.
  /// Holds or Unknown.
  Verdict checkWithUpdate(const Constraint& target,
                          const std::vector<Constraint>& known,
                          const Update& u) const;

  /// Level (iii): evaluate the constraint on a (possibly partial) state.
  static StateCheck checkOnState(const Constraint& target,
                                 const rel::Database& db,
                                 smt::SolverBase& solver);

  /// Diagnostics from the last failed subsumption (the uncovered rule).
  const std::optional<dl::Rule>& lastWitness() const { return witness_; }

  /// Non-empty when the last Unknown was a resource-budget degradation
  /// rather than genuinely missing information.
  const std::string& lastDegradeReason() const { return degradeReason_; }

 private:
  const CVarRegistry& reg_;
  SubsumptionOptions opts_;
  mutable std::optional<dl::Rule> witness_;
  mutable std::string degradeReason_;
};

}  // namespace faure::verify
