// Rule unfolding: flattens a constraint program's goal rules into rules
// whose bodies reference only EDB predicates, by resolving auxiliary IDB
// literals against their defining rules (the Vt/Vs pattern of Listing 3).
//
// Needed by the §5 containment reduction, which freezes the body of each
// goal rule into a canonical database — that body must be EDB-only.
#pragma once

#include "datalog/ast.hpp"

namespace faure::verify {

/// All EDB-only unfoldings of the rules deriving `goal`. C-variables in
/// auxiliary heads unify with call-site constants by emitting equality
/// comparisons (mirroring fauré-log's c-valuation). Throws EvalError on a
/// negated IDB literal or when the expansion exceeds `maxRules`.
std::vector<dl::Rule> unfoldGoalRules(const dl::Program& p,
                                      const std::string& goal,
                                      size_t maxRules = 1024);

}  // namespace faure::verify
