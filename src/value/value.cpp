#include "value/value.hpp"

#include <charconv>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace faure {

std::string_view typeName(ValueType t) {
  switch (t) {
    case ValueType::Int:
      return "Int";
    case ValueType::Sym:
      return "Sym";
    case ValueType::Prefix:
      return "Prefix";
    case ValueType::Path:
      return "Path";
    case ValueType::Any:
      return "Any";
  }
  return "?";
}

Value Value::prefix(uint32_t addr, uint8_t len) {
  if (len > 32) throw TypeError("prefix length > 32");
  Value x;
  x.kind_ = Kind::Prefix;
  // Normalize: zero the bits below the mask so equal prefixes compare equal.
  uint32_t mask = len == 0 ? 0 : (0xffffffffu << (32 - len));
  x.pfx_ = Pfx{addr & mask, len};
  return x;
}

namespace {

uint32_t parseOctet(std::string_view s) {
  unsigned v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size() || v > 255) {
    throw TypeError("bad IPv4 octet '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace

Value Value::parsePrefix(std::string_view text) {
  uint8_t len = 32;
  size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    unsigned l = 0;
    auto rest = text.substr(slash + 1);
    auto [p, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), l);
    if (ec != std::errc() || p != rest.data() + rest.size() || l > 32) {
      throw TypeError("bad prefix length in '" + std::string(text) + "'");
    }
    len = static_cast<uint8_t>(l);
    text = text.substr(0, slash);
  }
  auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    throw TypeError("bad IPv4 address '" + std::string(text) + "'");
  }
  uint32_t addr = 0;
  for (const auto& part : parts) addr = (addr << 8) | parseOctet(part);
  return prefix(addr, len);
}

Value Value::path(const std::vector<std::string>& names) {
  std::vector<util::SymbolId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) ids.push_back(util::sym(n));
  return pathId(util::PathTable::instance().intern(ids));
}

ValueType Value::constantType() const {
  switch (kind_) {
    case Kind::Int:
      return ValueType::Int;
    case Kind::Sym:
      return ValueType::Sym;
    case Kind::Prefix:
      return ValueType::Prefix;
    case Kind::Path:
      return ValueType::Path;
    case Kind::CVar:
      throw TypeError("constantType() called on a c-variable");
  }
  return ValueType::Any;
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  switch (a.kind_) {
    case Value::Kind::Int:
      return a.int_ < b.int_;
    case Value::Kind::Sym:
      return a.sym_ < b.sym_;
    case Value::Kind::Prefix:
      return a.pfx_.addr != b.pfx_.addr ? a.pfx_.addr < b.pfx_.addr
                                        : a.pfx_.len < b.pfx_.len;
    case Value::Kind::Path:
      return a.path_ < b.path_;
    case Value::Kind::CVar:
      return a.var_ < b.var_;
  }
  return false;
}

size_t Value::hash() const {
  uint64_t payload;
  switch (kind_) {
    case Kind::Int:
      payload = static_cast<uint64_t>(int_);
      break;
    case Kind::Sym:
      payload = sym_;
      break;
    case Kind::Prefix:
      payload = (static_cast<uint64_t>(pfx_.addr) << 8) | pfx_.len;
      break;
    case Kind::Path:
      payload = path_;
      break;
    case Kind::CVar:
      payload = var_;
      break;
    default:
      payload = 0;
  }
  uint64_t z = payload + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(kind_) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>(z ^ (z >> 31));
}

std::string Value::toString(const CVarRegistry* reg) const {
  switch (kind_) {
    case Kind::Int:
      return std::to_string(int_);
    case Kind::Sym:
      return util::symText(sym_);
    case Kind::Path:
      return util::PathTable::instance().text(path_);
    case Kind::Prefix: {
      std::string out = std::to_string((pfx_.addr >> 24) & 0xff) + "." +
                        std::to_string((pfx_.addr >> 16) & 0xff) + "." +
                        std::to_string((pfx_.addr >> 8) & 0xff) + "." +
                        std::to_string(pfx_.addr & 0xff);
      if (pfx_.len != 32) out += "/" + std::to_string(pfx_.len);
      return out;
    }
    case Kind::CVar:
      if (reg != nullptr && var_ < reg->size()) return reg->info(var_).name;
      return "?" + std::to_string(var_);
  }
  return "?";
}

size_t hashValues(const std::vector<Value>& vals) {
  size_t h = 0xcbf29ce484222325ULL;
  for (const auto& v : vals) h = (h ^ v.hash()) * 1099511628211ULL;
  return h;
}

CVarId CVarRegistry::declare(std::string_view name, ValueType type,
                             std::vector<Value> domain) {
  std::string key(name);
  if (index_.count(key) != 0) {
    throw TypeError("c-variable '" + key + "' already declared");
  }
  for (const auto& v : domain) {
    if (!v.isConstant()) {
      throw TypeError("domain of '" + key + "' must contain constants only");
    }
  }
  CVarId id = static_cast<CVarId>(vars_.size());
  vars_.push_back(Info{key, type, std::move(domain)});
  index_.emplace(std::move(key), id);
  return id;
}

CVarId CVarRegistry::declareInt(std::string_view name, int64_t lo,
                                int64_t hi) {
  if (lo > hi) throw TypeError("empty integer domain");
  std::vector<Value> domain;
  domain.reserve(static_cast<size_t>(hi - lo + 1));
  for (int64_t v = lo; v <= hi; ++v) domain.push_back(Value::fromInt(v));
  return declare(name, ValueType::Int, std::move(domain));
}

CVarId CVarRegistry::declareFresh(std::string_view stem, ValueType type,
                                  std::vector<Value> domain) {
  std::string base(stem);
  std::string name = base;
  int suffix = 0;
  while (index_.count(name) != 0) {
    name = base + std::to_string(++suffix);
  }
  return declare(name, type, std::move(domain));
}

void CVarRegistry::setDomain(CVarId id, std::vector<Value> domain) {
  if (id >= vars_.size()) throw TypeError("unknown c-variable id");
  for (const auto& v : domain) {
    if (!v.isConstant()) {
      throw TypeError("domain of '" + vars_[id].name +
                      "' must contain constants only");
    }
  }
  vars_[id].domain = std::move(domain);
  ++mutationEpoch_;
}

CVarId CVarRegistry::find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNotFound : it->second;
}

const CVarRegistry::Info& CVarRegistry::info(CVarId id) const {
  if (id >= vars_.size()) throw TypeError("unknown c-variable id");
  return vars_[id];
}

bool CVarRegistry::allFinite() const {
  for (const auto& v : vars_) {
    if (v.domain.empty()) return false;
  }
  return true;
}

uint64_t CVarRegistry::worldCount(uint64_t cap) const {
  uint64_t count = 1;
  for (const auto& v : vars_) {
    if (v.domain.empty()) return 0;
    if (count > cap / v.domain.size()) return cap;
    count *= v.domain.size();
  }
  return count;
}

}  // namespace faure
