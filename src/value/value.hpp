// Value: one element of the c-domain (dom^C in the paper, §3).
//
// A Value is either a constant — integer, interned symbol, IPv4 prefix, or
// interned path — or a c-variable standing for a currently-unknown
// constant. Values are 16-byte trivially copyable handles so relations can
// hold millions of them; symbols and paths are interned (util/interner).
//
// C-variable *semantics* (name, type, finite domain) live in CVarRegistry,
// one registry per problem instance; Value stores only the id.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/interner.hpp"

namespace faure {

/// Attribute / value types. `Any` is used for attributes whose type is not
/// pinned by a schema (e.g. intermediate query results).
enum class ValueType : uint8_t { Int, Sym, Prefix, Path, Any };

/// Renders a type name ("Int", "Sym", ...).
std::string_view typeName(ValueType t);

/// Id of a c-variable within a CVarRegistry.
using CVarId = uint32_t;

class CVarRegistry;

/// One element of the c-domain.
class Value {
 public:
  enum class Kind : uint8_t { Int, Sym, Prefix, Path, CVar };

  /// Default-constructs the integer 0; needed for container resizing.
  Value() : kind_(Kind::Int), int_(0) {}

  // -- Factories -----------------------------------------------------------

  static Value fromInt(int64_t v) {
    Value x;
    x.kind_ = Kind::Int;
    x.int_ = v;
    return x;
  }

  static Value sym(std::string_view text) {
    return symId(util::sym(text));
  }

  static Value symId(util::SymbolId id) {
    Value x;
    x.kind_ = Kind::Sym;
    x.sym_ = id;
    return x;
  }

  /// Prefix from numeric address and mask length (0..32).
  static Value prefix(uint32_t addr, uint8_t len);

  /// Parses "1.2.3.4" (len 32) or "10.0.0.0/8". Throws TypeError on
  /// malformed input.
  static Value parsePrefix(std::string_view text);

  /// Path from symbol names, e.g. {"A","B","C"}.
  static Value path(const std::vector<std::string>& names);

  static Value pathId(util::PathId id) {
    Value x;
    x.kind_ = Kind::Path;
    x.path_ = id;
    return x;
  }

  static Value cvar(CVarId id) {
    Value x;
    x.kind_ = Kind::CVar;
    x.var_ = id;
    return x;
  }

  // -- Inspection ----------------------------------------------------------

  Kind kind() const { return kind_; }
  bool isCVar() const { return kind_ == Kind::CVar; }
  bool isConstant() const { return kind_ != Kind::CVar; }

  int64_t asInt() const { return int_; }
  util::SymbolId asSym() const { return sym_; }
  util::PathId asPath() const { return path_; }
  CVarId asCVar() const { return var_; }
  uint32_t prefixAddr() const { return pfx_.addr; }
  uint8_t prefixLen() const { return pfx_.len; }

  /// The ValueType of a constant. CVar type is owned by the registry, so
  /// calling this on a c-variable throws TypeError.
  ValueType constantType() const;

  // -- Comparison / hashing (raw identity, NOT c-domain equality: a CVar
  //    only equals the same CVar id; condition-level equality is the
  //    solver's job) ------------------------------------------------------

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::Int:
        return a.int_ == b.int_;
      case Kind::Sym:
        return a.sym_ == b.sym_;
      case Kind::Prefix:
        return a.pfx_.addr == b.pfx_.addr && a.pfx_.len == b.pfx_.len;
      case Kind::Path:
        return a.path_ == b.path_;
      case Kind::CVar:
        return a.var_ == b.var_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order for use in sorted containers; orders by kind, then payload.
  friend bool operator<(const Value& a, const Value& b);

  size_t hash() const;

  /// Human-readable rendering. If `reg` is given, c-variables print their
  /// declared name ("x_"), otherwise "?<id>".
  std::string toString(const CVarRegistry* reg = nullptr) const;

 private:
  struct Pfx {
    uint32_t addr;
    uint8_t len;
  };

  Kind kind_;
  union {
    int64_t int_;
    util::SymbolId sym_;
    Pfx pfx_;
    util::PathId path_;
    CVarId var_;
  };
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.hash(); }
};

/// Hash of a value sequence (tuple data part).
size_t hashValues(const std::vector<Value>& vals);

/// Per-problem registry of c-variables: name, type, and (optionally) a
/// finite domain. The solver consults domains for completeness and for
/// possible-world enumeration (loss-less checks, §4).
class CVarRegistry {
 public:
  struct Info {
    std::string name;
    ValueType type = ValueType::Any;
    /// Explicit finite domain, empty when the domain is unbounded.
    std::vector<Value> domain;
  };

  /// Declares a fresh c-variable. Throws TypeError if `name` is already
  /// declared.
  CVarId declare(std::string_view name, ValueType type,
                 std::vector<Value> domain = {});

  /// Declares an integer c-variable ranging over [lo, hi].
  CVarId declareInt(std::string_view name, int64_t lo, int64_t hi);

  /// Declares a fresh variable with a generated unique name based on
  /// `stem` (used by freeze/containment rewrites, §5).
  CVarId declareFresh(std::string_view stem, ValueType type,
                      std::vector<Value> domain = {});

  /// Id of a declared name, or -1 (as CVarId max) if unknown.
  static constexpr CVarId kNotFound = static_cast<CVarId>(-1);
  CVarId find(std::string_view name) const;

  const Info& info(CVarId id) const;
  size_t size() const { return vars_.size(); }

  /// Replaces the finite domain of an already-declared variable (empty =
  /// unbounded). Changing an existing variable's semantics can flip the
  /// verdict of any formula mentioning it, so this bumps mutationEpoch().
  /// Throws TypeError on an unknown id or a non-constant domain element.
  void setDomain(CVarId id, std::vector<Value> domain);

  /// Incremented by every mutation of an *existing* variable (setDomain).
  /// Declaring fresh variables does not count: a formula built before the
  /// declaration cannot mention the new variable, so no cached verdict
  /// about it can be stale. smt::VerdictCache compares this to decide
  /// when to invalidate.
  uint64_t mutationEpoch() const { return mutationEpoch_; }

  /// True if every declared variable has a finite domain, i.e. the set of
  /// possible worlds is enumerable.
  bool allFinite() const;

  /// Product of domain sizes (clamped to `cap`); 0 if some domain is
  /// unbounded.
  uint64_t worldCount(uint64_t cap = UINT64_MAX) const;

 private:
  std::vector<Info> vars_;
  std::unordered_map<std::string, CVarId> index_;
  uint64_t mutationEpoch_ = 0;
};

}  // namespace faure

namespace std {
template <>
struct hash<faure::Value> {
  size_t operator()(const faure::Value& v) const { return v.hash(); }
};
}  // namespace std
