#include "relational/database.hpp"

#include "util/error.hpp"

namespace faure::rel {

Database Database::clone() const {
  Database fork;
  fork.cvars_ = cvars_;    // member-wise copy: CVarIds and domains survive
  fork.tables_ = tables_;  // CTable copies carry their JoinIndexes
  return fork;
}

CTable& Database::create(Schema schema) {
  std::string name = schema.name();
  auto [it, inserted] = tables_.emplace(name, CTable(std::move(schema)));
  if (!inserted) throw EvalError("table '" + name + "' already exists");
  return it->second;
}

CTable& Database::put(CTable table) {
  std::string name = table.schema().name();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return tables_.emplace(name, std::move(table)).first->second;
  }
  it->second = std::move(table);
  return it->second;
}

CTable& Database::table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw EvalError("unknown table '" + name + "'");
  return it->second;
}

const CTable& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw EvalError("unknown table '" + name + "'");
  return it->second;
}

const CTable* Database::find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::string Database::toString() const {
  std::string out;
  for (const auto& [name, table] : tables_) {
    out += table.toString(&cvars_);
    out += "\n";
  }
  return out;
}

}  // namespace faure::rel
