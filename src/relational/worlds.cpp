#include "relational/worlds.hpp"

#include "util/error.hpp"

namespace faure::rel {

GroundRelation instantiate(const CTable& table, const smt::Assignment& a) {
  GroundRelation out;
  for (const auto& row : table.rows()) {
    smt::Formula cond = smt::substitute(row.cond, a);
    if (cond.isFalse()) continue;
    if (!cond.isTrue()) {
      throw EvalError("instantiate: condition not ground under assignment: " +
                      row.cond.toString());
    }
    std::vector<Value> vals;
    vals.reserve(row.vals.size());
    for (const Value& v : row.vals) {
      if (v.isCVar()) {
        auto it = a.find(v.asCVar());
        if (it == a.end()) {
          throw EvalError("instantiate: data entry not ground");
        }
        vals.push_back(it->second);
      } else {
        vals.push_back(v);
      }
    }
    out.insert(std::move(vals));
  }
  return out;
}

namespace {

void worldRec(
    const Database& db, const std::vector<CVarId>& vars, size_t i,
    smt::Assignment& acc,
    const std::function<void(const smt::Assignment&, const World&)>& fn) {
  if (i == vars.size()) {
    World w;
    for (const auto& [name, table] : db.tables()) {
      w.emplace(name, instantiate(table, acc));
    }
    fn(acc, w);
    return;
  }
  CVarId v = vars[i];
  for (const Value& val : db.cvars().info(v).domain) {
    acc[v] = val;
    worldRec(db, vars, i + 1, acc, fn);
  }
  acc.erase(v);
}

}  // namespace

bool forEachWorld(
    const Database& db, uint64_t cap,
    const std::function<void(const smt::Assignment&, const World&)>& fn) {
  const CVarRegistry& reg = db.cvars();
  if (!reg.allFinite()) return false;
  if (reg.worldCount(cap) >= cap && reg.worldCount(cap) == cap) return false;
  std::vector<CVarId> vars;
  vars.reserve(reg.size());
  for (CVarId v = 0; v < reg.size(); ++v) vars.push_back(v);
  smt::Assignment acc;
  worldRec(db, vars, 0, acc, fn);
  return true;
}

std::set<GroundRelation> repOfTable(const CTable& table,
                                    const CVarRegistry& reg, uint64_t cap) {
  if (!reg.allFinite() || reg.worldCount(cap) == cap) {
    throw EvalError("repOfTable: world space not enumerable");
  }
  std::vector<CVarId> vars;
  for (CVarId v = 0; v < reg.size(); ++v) vars.push_back(v);
  std::set<GroundRelation> rep;
  // Reuse the recursive enumeration by viewing the table as a one-table
  // database sharing `reg`.
  std::function<void(size_t, smt::Assignment&)> rec =
      [&](size_t i, smt::Assignment& acc) {
        if (i == vars.size()) {
          rep.insert(instantiate(table, acc));
          return;
        }
        for (const Value& val : reg.info(vars[i]).domain) {
          acc[vars[i]] = val;
          rec(i + 1, acc);
        }
        acc.erase(vars[i]);
      };
  smt::Assignment acc;
  rec(0, acc);
  return rep;
}

}  // namespace faure::rel
