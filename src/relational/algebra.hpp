// Extended relational algebra over c-tables (§3, "C-table and Why
// SQL/pure-datalog Fall Short").
//
// Each operator follows Imieliński–Lipski: the data part is manipulated
// like ordinary relational algebra while conditions are conjoined with the
// (in)equality constraints the operator introduces. Rows whose condition
// folds to `false` syntactically are dropped eagerly; semantic pruning of
// contradictory-but-unfolded conditions is a separate solver pass
// (pruneUnsat).
#pragma once

#include "relational/ctable.hpp"
#include "smt/solver.hpp"

namespace faure::rel {

/// σ — keeps rows where `attribute(col) op constant` can hold, conjoining
/// the comparison into the row condition when the entry is a c-variable.
CTable select(const CTable& in, size_t col, smt::CmpOp op, const Value& rhs);

/// σ over two columns of the same table.
CTable selectCols(const CTable& in, size_t colA, smt::CmpOp op, size_t colB);

/// π — projects to `cols` (in the given order); rows that collapse to the
/// same data part have their conditions OR-ed.
CTable project(const CTable& in, const std::vector<size_t>& cols,
               std::string resultName);

/// ⋈ — joins on equality of the given column pairs. The result schema is
/// the concatenation of both schemas (right-hand attribute names get the
/// relation name as prefix when they collide).
CTable join(const CTable& lhs, const CTable& rhs,
            const std::vector<std::pair<size_t, size_t>>& on,
            std::string resultName);

/// ∪ — schema-compatible union; conditions of equal data parts merge.
CTable unionAll(const CTable& a, const CTable& b, std::string resultName);

/// Relation rename.
CTable rename(const CTable& in, std::string newName);

/// Difference a − b under c-table semantics: each row of `a` survives with
/// its condition conjoined with the negation of every matching row of `b`.
CTable difference(const CTable& a, const CTable& b, std::string resultName);

/// Condition stating the component-wise equality of two data parts (folds
/// to `false` when two distinct constants align).
smt::Formula tupleEquality(const std::vector<Value>& a,
                           const std::vector<Value>& b);

/// The "Z3 step" of the paper's pipeline: removes rows whose condition is
/// definitely unsatisfiable. Returns the number of rows removed.
size_t pruneUnsat(CTable& table, smt::SolverBase& solver);

}  // namespace faure::rel
