// Conditional tables (c-tables) — the data model of fauré (§3, Table 2).
//
// A c-table is a relation whose tuples may contain c-variables and carry a
// boolean condition (smt::Formula) over those variables. It represents the
// set of regular relations ("possible worlds") obtained by instantiating
// every c-variable with a constant from its domain and keeping exactly the
// tuples whose condition holds.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "smt/formula.hpp"
#include "value/value.hpp"

namespace faure::rel {

/// A named, typed attribute.
struct Attribute {
  std::string name;
  ValueType type = ValueType::Any;
};

/// Relation schema: name + attributes.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<Attribute> attrs)
      : name_(std::move(name)), attrs_(std::move(attrs)) {
    byName_.reserve(attrs_.size());
    for (size_t i = 0; i < attrs_.size(); ++i) {
      byName_.emplace(attrs_[i].name, i);  // first occurrence wins
    }
  }

  const std::string& name() const { return name_; }
  size_t arity() const { return attrs_.size(); }
  const std::vector<Attribute>& attributes() const { return attrs_; }
  const Attribute& attribute(size_t i) const { return attrs_.at(i); }

  /// Index of the attribute named `name`, or SIZE_MAX.
  size_t indexOf(std::string_view name) const;

  /// A copy with a different relation name (algebra `rename`).
  Schema renamed(std::string newName) const {
    return Schema(std::move(newName), attrs_);
  }

 private:
  // Heterogeneous lookup so indexOf(string_view) never allocates.
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string name_;
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, size_t, NameHash, std::equal_to<>> byName_;
};

/// One conditional tuple: the data part plus its condition.
struct Row {
  std::vector<Value> vals;
  smt::Formula cond;  // defaults to `true` (a regular tuple)

  Row() = default;
  Row(std::vector<Value> v, smt::Formula c)
      : vals(std::move(v)), cond(std::move(c)) {}
};

/// A conditional table.
///
/// Rows with identical data parts are merged on insertion by OR-ing their
/// conditions, so the table is a function {data part} -> condition. Rows
/// whose condition folds to `false` are dropped.
class CTable {
 public:
  CTable() = default;
  explicit CTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts (or merges) a conditional tuple. Returns true if the table
  /// changed — a new data part appeared or an existing row's condition
  /// grew (syntactically). Throws EvalError on arity mismatch and
  /// TypeError when a constant value contradicts the attribute type.
  bool insert(std::vector<Value> vals, smt::Formula cond = smt::Formula());

  /// Convenience: inserts a tuple of constants with condition `true`.
  bool insertConcrete(std::vector<Value> vals) {
    return insert(std::move(vals), smt::Formula::top());
  }

  /// Appends a row without merging: the fixed-point evaluator needs
  /// append-only row storage (duplicate data parts denote the OR of their
  /// conditions). Rows with a `false` condition are still skipped.
  /// Returns true if a row was appended.
  bool append(std::vector<Value> vals, smt::Formula cond);

  /// Indices of all rows sharing this exact data part.
  std::vector<size_t> rowsWithData(const std::vector<Value>& vals) const;

  /// Merges duplicate data parts by OR-ing their conditions (undoes
  /// append-mode duplication). When nothing merges the table is left
  /// untouched (no rebuild, row order preserved); otherwise rows keep
  /// first-occurrence order of their data parts.
  void consolidate();

  /// The condition of the data part: OR over all rows carrying it, or
  /// `false` when absent. (Raw identity on c-variables, as in rows().)
  smt::Formula conditionOf(const std::vector<Value>& vals) const;

  /// Removes rows whose condition `pred` maps to false (used by the
  /// solver-pruning step). Returns the number of removed rows.
  size_t pruneIf(const std::function<bool(const Row&)>& pred);

  /// Removes every row with exactly this data part (any condition) —
  /// the retraction primitive of the incremental engine. Returns the
  /// number of removed rows (0 when the data part is absent; row order
  /// of the survivors is preserved). Throws EvalError on arity mismatch.
  size_t eraseWithData(const std::vector<Value>& vals);

  /// Replaces a row's condition in place (index into rows()).
  void setCondition(size_t rowIndex, smt::Formula cond);

  /// Collects all c-variables appearing in data parts or conditions.
  std::vector<CVarId> collectVars() const;

  /// Multi-line rendering in the paper's layout: values then condition.
  std::string toString(const CVarRegistry* reg = nullptr) const;

 private:
  void checkRow(const std::vector<Value>& vals) const;

  Schema schema_;
  std::vector<Row> rows_;
  // data-part hash -> row indices (open chain), for O(1) merge on insert.
  std::unordered_map<size_t, std::vector<size_t>> index_;
};

}  // namespace faure::rel
