// Conditional tables (c-tables) — the data model of fauré (§3, Table 2).
//
// A c-table is a relation whose tuples may contain c-variables and carry a
// boolean condition (smt::Formula) over those variables. It represents the
// set of regular relations ("possible worlds") obtained by instantiating
// every c-variable with a constant from its domain and keeping exactly the
// tuples whose condition holds.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "smt/formula.hpp"
#include "value/value.hpp"

namespace faure::rel {

/// A named, typed attribute.
struct Attribute {
  std::string name;
  ValueType type = ValueType::Any;
};

/// Relation schema: name + attributes.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<Attribute> attrs)
      : name_(std::move(name)), attrs_(std::move(attrs)) {
    byName_.reserve(attrs_.size());
    for (size_t i = 0; i < attrs_.size(); ++i) {
      byName_.emplace(attrs_[i].name, i);  // first occurrence wins
    }
  }

  const std::string& name() const { return name_; }
  size_t arity() const { return attrs_.size(); }
  const std::vector<Attribute>& attributes() const { return attrs_; }
  const Attribute& attribute(size_t i) const { return attrs_.at(i); }

  /// Index of the attribute named `name`, or SIZE_MAX.
  size_t indexOf(std::string_view name) const;

  /// A copy with a different relation name (algebra `rename`).
  Schema renamed(std::string newName) const {
    return Schema(std::move(newName), attrs_);
  }

 private:
  // Heterogeneous lookup so indexOf(string_view) never allocates.
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string name_;
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, size_t, NameHash, std::equal_to<>> byName_;
};

struct Row;

/// A persistent secondary index over one key-column set of a c-table
/// (DESIGN.md §11). Rows whose key columns are all constants are hashed
/// (FNV-1a over the column values, in key order) into buckets of
/// ascending row indices; rows with a c-variable in any key column match
/// every probe and are kept aside in an ascending `wildRows` list. The
/// index is built lazily and extended by watermark: `builtUpTo` is the
/// number of table rows covered, and extending only scans the new
/// suffix — the append-only fixpoint loop pays O(new rows), not
/// O(table) per firing.
///
/// Probes are *candidate* lookups: a bucket may contain hash collisions,
/// so callers must re-check key values (the evaluator's per-position
/// equality atoms do exactly that). Bucket and wild lists stay sorted
/// ascending under every maintenance path, which is what lets the
/// evaluator reproduce its serial enumeration order from an index probe.
class JoinIndex {
 public:
  JoinIndex() = default;
  explicit JoinIndex(std::vector<size_t> keyArgs)
      : keyArgs_(std::move(keyArgs)) {}

  // FNV-1a accumulation over key values — kept in one place so the
  // evaluator's probe hashing and the index's row hashing cannot drift.
  static size_t hashInit() { return 0xcbf29ce484222325ULL; }
  static size_t hashStep(size_t h, const Value& v) {
    return (h ^ v.hash()) * 1099511628211ULL;
  }

  const std::vector<size_t>& keyArgs() const { return keyArgs_; }
  size_t builtUpTo() const { return builtUpTo_; }
  size_t bucketCount() const { return buckets_.size(); }
  size_t indexedRows() const { return indexedRows_; }
  size_t wildCount() const { return wild_.size(); }

  /// Rows hashing to `h` (ascending), or null when the bucket is empty.
  const std::vector<size_t>* bucket(size_t h) const {
    auto it = buckets_.find(h);
    return it == buckets_.end() ? nullptr : &it->second;
  }
  /// Rows with a c-variable in a key column (ascending).
  const std::vector<size_t>& wildRows() const { return wild_; }

  /// Covers rows [builtUpTo, rows.size()) — appends to buckets/wild in
  /// ascending order. Called by CTable::ensureJoinIndex.
  void extend(const std::vector<Row>& rows);

  /// Row-compaction maintenance: `oldToNew[i]` is row i's new index, or
  /// SIZE_MAX when row i was removed (the remap must be monotone over
  /// survivors, which CTable::pruneIf guarantees). Bucket and wild lists
  /// stay ascending; the watermark becomes the survivor count of the
  /// covered prefix.
  void remap(const std::vector<size_t>& oldToNew);

 private:
  std::vector<size_t> keyArgs_;
  std::unordered_map<size_t, std::vector<size_t>> buckets_;
  std::vector<size_t> wild_;
  size_t indexedRows_ = 0;
  size_t builtUpTo_ = 0;
};

/// One conditional tuple: the data part plus its condition.
struct Row {
  std::vector<Value> vals;
  smt::Formula cond;  // defaults to `true` (a regular tuple)

  Row() = default;
  Row(std::vector<Value> v, smt::Formula c)
      : vals(std::move(v)), cond(std::move(c)) {}
};

/// A conditional table.
///
/// Rows with identical data parts are merged on insertion by OR-ing their
/// conditions, so the table is a function {data part} -> condition. Rows
/// whose condition folds to `false` are dropped.
class CTable {
 public:
  CTable() = default;
  explicit CTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts (or merges) a conditional tuple. Returns true if the table
  /// changed — a new data part appeared or an existing row's condition
  /// grew (syntactically). Throws EvalError on arity mismatch and
  /// TypeError when a constant value contradicts the attribute type.
  bool insert(std::vector<Value> vals, smt::Formula cond = smt::Formula());

  /// Convenience: inserts a tuple of constants with condition `true`.
  bool insertConcrete(std::vector<Value> vals) {
    return insert(std::move(vals), smt::Formula::top());
  }

  /// Appends a row without merging: the fixed-point evaluator needs
  /// append-only row storage (duplicate data parts denote the OR of their
  /// conditions). Rows with a `false` condition are still skipped.
  /// Returns true if a row was appended.
  bool append(std::vector<Value> vals, smt::Formula cond);

  /// Indices of all rows sharing this exact data part.
  std::vector<size_t> rowsWithData(const std::vector<Value>& vals) const;

  /// Merges duplicate data parts by OR-ing their conditions (undoes
  /// append-mode duplication). When nothing merges the table is left
  /// untouched (no rebuild, row order preserved); otherwise rows keep
  /// first-occurrence order of their data parts.
  void consolidate();

  /// The condition of the data part: OR over all rows carrying it, or
  /// `false` when absent. (Raw identity on c-variables, as in rows().)
  smt::Formula conditionOf(const std::vector<Value>& vals) const;

  /// Removes rows whose condition `pred` maps to false (used by the
  /// solver-pruning step). Returns the number of removed rows.
  size_t pruneIf(const std::function<bool(const Row&)>& pred);

  /// Removes every row with exactly this data part (any condition) —
  /// the retraction primitive of the incremental engine. Returns the
  /// number of removed rows (0 when the data part is absent; row order
  /// of the survivors is preserved). Throws EvalError on arity mismatch.
  size_t eraseWithData(const std::vector<Value>& vals);

  /// Replaces a row's condition in place (index into rows()).
  void setCondition(size_t rowIndex, smt::Formula cond);

  /// Collects all c-variables appearing in data parts or conditions.
  std::vector<CVarId> collectVars() const;

  // ---- persistent join indexes (DESIGN.md §11) ----
  //
  // Secondary indexes are a by-value cache over rows(): they survive
  // copies and moves (the incremental engine's epoch retention copies
  // tables wholesale, carrying their indexes), are extended lazily by
  // watermark under append/insert, remapped in place under pruneIf /
  // eraseWithData, and dropped by a consolidating rebuild (the merge
  // renumbers rows unpredictably; the next probe rebuilds). They never
  // affect relation contents — every accessor is const.

  /// The index keyed on `keyArgs` (attribute positions, ascending),
  /// created on first use and extended to cover all current rows.
  /// NOT thread-safe against concurrent CTable access: the evaluator
  /// calls this only from its engine thread, before worker phases that
  /// probe the returned (node-stable) reference.
  const JoinIndex& ensureJoinIndex(const std::vector<size_t>& keyArgs) const;

  /// The index keyed on `keyArgs` if it exists (possibly stale — check
  /// builtUpTo()), else null. Never builds; safe for cost estimation.
  const JoinIndex* findJoinIndex(const std::vector<size_t>& keyArgs) const;

  /// Number of distinct key-sets currently indexed.
  size_t joinIndexCount() const { return joinIndexes_.size(); }

  /// Multi-line rendering in the paper's layout: values then condition.
  std::string toString(const CVarRegistry* reg = nullptr) const;

 private:
  void checkRow(const std::vector<Value>& vals) const;

  Schema schema_;
  std::vector<Row> rows_;
  // data-part hash -> row indices (open chain), for O(1) merge on insert.
  std::unordered_map<size_t, std::vector<size_t>> index_;
  // key-column set -> secondary index. Ordered map for deterministic
  // iteration and node stability (worker threads hold JoinIndex
  // references across a round while the engine thread may create other
  // entries between rounds). Mutable: a cache over rows_, maintained
  // from const accessors.
  mutable std::map<std::vector<size_t>, JoinIndex> joinIndexes_;
};

}  // namespace faure::rel
