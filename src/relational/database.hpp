// A fauré database: named c-tables plus the c-variable registry that gives
// the c-variables their meaning (PATH' = {P^i, C} in Table 2).
#pragma once

#include <map>
#include <string>

#include "relational/ctable.hpp"

namespace faure::rel {

class Database {
 public:
  Database() = default;

  // Databases own registries; copying one by accident is usually a bug in
  // calling code, so be explicit.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Explicit deep copy for snapshot forking (scenario.hpp): the
  /// registry copy preserves every CVarId and domain, table copies
  /// carry their persistent JoinIndexes, and the shared-structure parts
  /// of each row (interned formulas and symbols) stay shared. Forks are
  /// fully independent for mutation — edits to a clone never touch the
  /// original.
  Database clone() const;

  CVarRegistry& cvars() { return cvars_; }
  const CVarRegistry& cvars() const { return cvars_; }

  /// Creates an empty table; throws EvalError if the name exists.
  CTable& create(Schema schema);

  /// Inserts or replaces a table under its schema name.
  CTable& put(CTable table);

  bool has(const std::string& name) const { return tables_.count(name) != 0; }

  /// Table by name; throws EvalError when absent.
  CTable& table(const std::string& name);
  const CTable& table(const std::string& name) const;

  /// Table by name, or nullptr.
  const CTable* find(const std::string& name) const;

  const std::map<std::string, CTable>& tables() const { return tables_; }

  std::string toString() const;

 private:
  CVarRegistry cvars_;
  std::map<std::string, CTable> tables_;
};

}  // namespace faure::rel
