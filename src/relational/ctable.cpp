#include "relational/ctable.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace faure::rel {

size_t Schema::indexOf(std::string_view name) const {
  auto it = byName_.find(name);
  return it == byName_.end() ? SIZE_MAX : it->second;
}

void JoinIndex::extend(const std::vector<Row>& rows) {
  for (size_t r = builtUpTo_; r < rows.size(); ++r) {
    bool wild = false;
    size_t h = hashInit();
    for (size_t a : keyArgs_) {
      const Value& v = rows[r].vals[a];
      if (v.isCVar()) {
        wild = true;
        break;
      }
      h = hashStep(h, v);
    }
    if (wild) {
      wild_.push_back(r);
    } else {
      buckets_[h].push_back(r);
      ++indexedRows_;
    }
  }
  builtUpTo_ = rows.size();
}

void JoinIndex::remap(const std::vector<size_t>& oldToNew) {
  auto remapList = [&](std::vector<size_t>& list) {
    size_t out = 0;
    for (size_t r : list) {
      size_t nr = r < oldToNew.size() ? oldToNew[r] : SIZE_MAX;
      if (nr != SIZE_MAX) list[out++] = nr;
    }
    list.resize(out);
  };
  indexedRows_ = 0;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    remapList(it->second);
    if (it->second.empty()) {
      it = buckets_.erase(it);
    } else {
      indexedRows_ += it->second.size();
      ++it;
    }
  }
  remapList(wild_);
  size_t covered = 0;
  for (size_t r = 0; r < builtUpTo_ && r < oldToNew.size(); ++r) {
    covered += oldToNew[r] != SIZE_MAX;
  }
  builtUpTo_ = covered;
}

const JoinIndex& CTable::ensureJoinIndex(
    const std::vector<size_t>& keyArgs) const {
  auto it = joinIndexes_.find(keyArgs);
  if (it == joinIndexes_.end()) {
    it = joinIndexes_.emplace(keyArgs, JoinIndex(keyArgs)).first;
  }
  if (it->second.builtUpTo() < rows_.size()) it->second.extend(rows_);
  return it->second;
}

const JoinIndex* CTable::findJoinIndex(
    const std::vector<size_t>& keyArgs) const {
  auto it = joinIndexes_.find(keyArgs);
  return it == joinIndexes_.end() ? nullptr : &it->second;
}

void CTable::checkRow(const std::vector<Value>& vals) const {
  if (vals.size() != schema_.arity()) {
    throw EvalError("arity mismatch inserting into '" + schema_.name() +
                    "': got " + std::to_string(vals.size()) + ", want " +
                    std::to_string(schema_.arity()));
  }
  for (size_t i = 0; i < vals.size(); ++i) {
    ValueType want = schema_.attribute(i).type;
    if (want == ValueType::Any || vals[i].isCVar()) continue;
    if (vals[i].constantType() != want) {
      throw TypeError("attribute '" + schema_.attribute(i).name + "' of '" +
                      schema_.name() + "' expects " +
                      std::string(typeName(want)) + ", got " +
                      vals[i].toString());
    }
  }
}

bool CTable::insert(std::vector<Value> vals, smt::Formula cond) {
  checkRow(vals);
  if (cond.isFalse()) return false;
  size_t h = hashValues(vals);
  auto& bucket = index_[h];
  for (size_t idx : bucket) {
    if (rows_[idx].vals == vals) {
      smt::Formula merged = smt::Formula::disj2(rows_[idx].cond, cond);
      if (merged == rows_[idx].cond) return false;
      rows_[idx].cond = std::move(merged);
      return true;
    }
  }
  bucket.push_back(rows_.size());
  rows_.emplace_back(std::move(vals), std::move(cond));
  return true;
}

bool CTable::append(std::vector<Value> vals, smt::Formula cond) {
  checkRow(vals);
  if (cond.isFalse()) return false;
  index_[hashValues(vals)].push_back(rows_.size());
  rows_.emplace_back(std::move(vals), std::move(cond));
  return true;
}

std::vector<size_t> CTable::rowsWithData(const std::vector<Value>& vals) const {
  std::vector<size_t> out;
  auto it = index_.find(hashValues(vals));
  if (it == index_.end()) return out;
  for (size_t idx : it->second) {
    if (rows_[idx].vals == vals) out.push_back(idx);
  }
  return out;
}

void CTable::consolidate() {
  // Append-mode duplication is the exception, not the rule: scan the
  // hash index for repeated data parts first and leave the table
  // untouched — row order included — when nothing would merge. A row
  // whose condition was forced to `false` (setCondition) also triggers
  // the rebuild, which drops it, preserving the historical contract.
  bool rebuild = false;
  for (const auto& row : rows_) {
    if (row.cond.isFalse()) {
      rebuild = true;
      break;
    }
  }
  for (auto it = index_.begin(); !rebuild && it != index_.end(); ++it) {
    const std::vector<size_t>& bucket = it->second;
    for (size_t i = 1; i < bucket.size() && !rebuild; ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (rows_[bucket[i]].vals == rows_[bucket[j]].vals) {
          rebuild = true;
          break;
        }
      }
    }
  }
  if (!rebuild) return;

  CTable merged(schema_);
  merged.rows_.reserve(rows_.size());
  merged.index_.reserve(index_.size());
  for (auto& row : rows_) {
    merged.insert(std::move(row.vals), std::move(row.cond));
  }
  // The merge renumbers rows, so the move-assignment deliberately
  // replaces joinIndexes_ with `merged`'s empty map: secondary indexes
  // are dropped here and rebuilt lazily on next use. The no-rebuild
  // path above keeps them (rows untouched).
  *this = std::move(merged);
}

smt::Formula CTable::conditionOf(const std::vector<Value>& vals) const {
  auto it = index_.find(hashValues(vals));
  if (it == index_.end()) return smt::Formula::bottom();
  std::vector<smt::Formula> conds;
  for (size_t idx : it->second) {
    if (rows_[idx].vals == vals) conds.push_back(rows_[idx].cond);
  }
  return smt::Formula::disj(std::move(conds));
}

size_t CTable::pruneIf(const std::function<bool(const Row&)>& pred) {
  std::vector<Row> kept;
  kept.reserve(rows_.size());
  size_t removed = 0;
  // Survivor remap for the secondary indexes: monotone (row order is
  // preserved), SIZE_MAX marks removal.
  std::vector<size_t> oldToNew(rows_.size(), SIZE_MAX);
  for (size_t i = 0; i < rows_.size(); ++i) {
    Row& row = rows_[i];
    if (pred(row)) {
      ++removed;
    } else {
      oldToNew[i] = kept.size();
      kept.push_back(std::move(row));
    }
  }
  // Rows were moved into `kept` either way; put them back before any
  // early return or the table is left holding moved-from husks.
  rows_ = std::move(kept);
  if (removed == 0) return 0;
  index_.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    index_[hashValues(rows_[i].vals)].push_back(i);
  }
  for (auto& [keys, jidx] : joinIndexes_) jidx.remap(oldToNew);
  return removed;
}

size_t CTable::eraseWithData(const std::vector<Value>& vals) {
  checkRow(vals);
  // The index answers "is it even here" in O(1); only a hit pays the
  // pruneIf scan-and-rebuild.
  if (rowsWithData(vals).empty()) return 0;
  return pruneIf([&](const Row& row) { return row.vals == vals; });
}

void CTable::setCondition(size_t rowIndex, smt::Formula cond) {
  rows_.at(rowIndex).cond = std::move(cond);
}

std::vector<CVarId> CTable::collectVars() const {
  std::vector<CVarId> vars;
  for (const auto& row : rows_) {
    for (const auto& v : row.vals) {
      if (v.isCVar()) vars.push_back(v.asCVar());
    }
    row.cond.collectVars(vars);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::string CTable::toString(const CVarRegistry* reg) const {
  std::string out = schema_.name() + "(";
  for (size_t i = 0; i < schema_.arity(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.attribute(i).name;
  }
  out += ")\n";
  for (const auto& row : rows_) {
    out += "  ";
    for (size_t i = 0; i < row.vals.size(); ++i) {
      if (i > 0) out += "\t";
      out += row.vals[i].toString(reg);
    }
    if (!row.cond.isTrue()) out += "\t| " + row.cond.toString(reg);
    out += "\n";
  }
  return out;
}

}  // namespace faure::rel
