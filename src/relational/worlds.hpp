// Possible-world semantics: rep(T) — the set of regular databases a
// c-table database stands for (§3). Used to validate the paper's central
// loss-less claim: fauré-log answers on the c-table coincide with the
// per-world answers over rep(T).
#pragma once

#include <functional>
#include <map>
#include <set>

#include "relational/database.hpp"
#include "smt/transform.hpp"

namespace faure::rel {

/// A fully instantiated relation: ground tuples only.
using GroundRelation = std::set<std::vector<Value>>;

/// A possible world: relation name -> ground relation.
using World = std::map<std::string, GroundRelation>;

/// Instantiates one table under a total assignment: substitutes data-part
/// c-variables and keeps exactly the rows whose condition evaluates to
/// true. Throws EvalError if the assignment leaves a condition or a data
/// entry non-ground.
GroundRelation instantiate(const CTable& table, const smt::Assignment& a);

/// Enumerates every total assignment of the database's c-variables (all
/// domains must be finite and the world count must not exceed `cap`) and
/// invokes `fn` with the assignment and the instantiated world.
/// Returns false — without calling `fn` — when enumeration is infeasible.
bool forEachWorld(
    const Database& db, uint64_t cap,
    const std::function<void(const smt::Assignment&, const World&)>& fn);

/// rep() of a single table: the set of distinct ground relations it can
/// denote. Enumeration is over the variables of the owning database's
/// registry, so pass the database the table came from (or a derived one
/// that shares its registry).
std::set<GroundRelation> repOfTable(const CTable& table,
                                    const CVarRegistry& reg,
                                    uint64_t cap = 1u << 20);

}  // namespace faure::rel
