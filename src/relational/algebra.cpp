#include "relational/algebra.hpp"

#include "util/error.hpp"

namespace faure::rel {

CTable select(const CTable& in, size_t col, smt::CmpOp op, const Value& rhs) {
  if (col >= in.schema().arity()) throw EvalError("select: bad column");
  CTable out(in.schema());
  for (const auto& row : in.rows()) {
    smt::Formula c = smt::Formula::cmp(row.vals[col], op, rhs);
    smt::Formula cond = smt::Formula::conj2(row.cond, c);
    if (!cond.isFalse()) out.insert(row.vals, std::move(cond));
  }
  return out;
}

CTable selectCols(const CTable& in, size_t colA, smt::CmpOp op, size_t colB) {
  if (colA >= in.schema().arity() || colB >= in.schema().arity()) {
    throw EvalError("selectCols: bad column");
  }
  CTable out(in.schema());
  for (const auto& row : in.rows()) {
    smt::Formula c = smt::Formula::cmp(row.vals[colA], op, row.vals[colB]);
    smt::Formula cond = smt::Formula::conj2(row.cond, c);
    if (!cond.isFalse()) out.insert(row.vals, std::move(cond));
  }
  return out;
}

CTable project(const CTable& in, const std::vector<size_t>& cols,
               std::string resultName) {
  std::vector<Attribute> attrs;
  attrs.reserve(cols.size());
  for (size_t c : cols) {
    if (c >= in.schema().arity()) throw EvalError("project: bad column");
    attrs.push_back(in.schema().attribute(c));
  }
  CTable out(Schema(std::move(resultName), std::move(attrs)));
  for (const auto& row : in.rows()) {
    std::vector<Value> vals;
    vals.reserve(cols.size());
    for (size_t c : cols) vals.push_back(row.vals[c]);
    out.insert(std::move(vals), row.cond);
  }
  return out;
}

CTable join(const CTable& lhs, const CTable& rhs,
            const std::vector<std::pair<size_t, size_t>>& on,
            std::string resultName) {
  std::vector<Attribute> attrs = lhs.schema().attributes();
  for (const auto& a : rhs.schema().attributes()) {
    Attribute copy = a;
    if (lhs.schema().indexOf(copy.name) != SIZE_MAX) {
      copy.name = rhs.schema().name() + "." + copy.name;
    }
    attrs.push_back(std::move(copy));
  }
  CTable out(Schema(std::move(resultName), std::move(attrs)));
  for (const auto& r1 : lhs.rows()) {
    for (const auto& r2 : rhs.rows()) {
      smt::Formula cond = smt::Formula::conj2(r1.cond, r2.cond);
      bool dead = cond.isFalse();
      for (const auto& [a, b] : on) {
        if (dead) break;
        cond = smt::Formula::conj2(
            cond, smt::Formula::cmp(r1.vals.at(a), smt::CmpOp::Eq,
                                    r2.vals.at(b)));
        dead = cond.isFalse();
      }
      if (dead) continue;
      std::vector<Value> vals = r1.vals;
      vals.insert(vals.end(), r2.vals.begin(), r2.vals.end());
      out.insert(std::move(vals), std::move(cond));
    }
  }
  return out;
}

CTable unionAll(const CTable& a, const CTable& b, std::string resultName) {
  if (a.schema().arity() != b.schema().arity()) {
    throw EvalError("union: arity mismatch");
  }
  CTable out(a.schema().renamed(std::move(resultName)));
  for (const auto& row : a.rows()) out.insert(row.vals, row.cond);
  for (const auto& row : b.rows()) out.insert(row.vals, row.cond);
  return out;
}

CTable rename(const CTable& in, std::string newName) {
  CTable out(in.schema().renamed(std::move(newName)));
  for (const auto& row : in.rows()) out.insert(row.vals, row.cond);
  return out;
}

smt::Formula tupleEquality(const std::vector<Value>& a,
                           const std::vector<Value>& b) {
  std::vector<smt::Formula> eqs;
  eqs.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    eqs.push_back(smt::Formula::cmp(a[i], smt::CmpOp::Eq, b[i]));
  }
  return smt::Formula::conj(std::move(eqs));
}

CTable difference(const CTable& a, const CTable& b, std::string resultName) {
  if (a.schema().arity() != b.schema().arity()) {
    throw EvalError("difference: arity mismatch");
  }
  CTable out(a.schema().renamed(std::move(resultName)));
  for (const auto& r1 : a.rows()) {
    smt::Formula cond = r1.cond;
    for (const auto& r2 : b.rows()) {
      if (cond.isFalse()) break;
      smt::Formula present =
          smt::Formula::conj2(r2.cond, tupleEquality(r1.vals, r2.vals));
      cond = smt::Formula::conj2(cond, smt::Formula::neg(present));
    }
    if (!cond.isFalse()) out.insert(r1.vals, std::move(cond));
  }
  return out;
}

size_t pruneUnsat(CTable& table, smt::SolverBase& solver) {
  return table.pruneIf([&](const Row& row) {
    return solver.check(row.cond) == smt::Sat::Unsat;
  });
}

}  // namespace faure::rel
