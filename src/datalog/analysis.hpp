// Static analysis of fauré-log programs: safety (range restriction),
// arity consistency, and stratification for negation + recursion.
//
// The paper leans on "static analysis readily available in pure datalog"
// (§1, §5); these are the checks and decompositions every evaluation and
// the containment machinery build on.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.hpp"

namespace faure::dl {

/// Result of stratifying a program.
struct Stratification {
  /// Stratum of each IDB predicate. EDB predicates are implicitly below
  /// stratum 0.
  std::unordered_map<std::string, int> stratumOf;
  /// Rule indices (into Program::rules) grouped by stratum, in evaluation
  /// order.
  std::vector<std::vector<size_t>> ruleStrata;
};

/// Computes a stratification; throws EvalError when the program has
/// negation through recursion (not stratifiable).
Stratification stratify(const Program& p);

/// Range-restriction check: every program variable used in the head, in a
/// negated literal, or in a comparison must be bound by a positive body
/// literal; facts must be ground. Throws EvalError on violation.
void checkSafety(const Program& p);

/// Each predicate must be used with one arity throughout. `externalArity`
/// supplies arities of EDB relations (e.g. from a Database's schemas).
/// Throws EvalError on mismatch.
void checkArities(
    const Program& p,
    const std::unordered_map<std::string, size_t>& externalArity = {});

/// All program variables of a rule, in first-occurrence order.
std::vector<std::string> ruleVariables(const Rule& r);

}  // namespace faure::dl
