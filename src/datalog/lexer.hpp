// Tokenizer for the fauré-log text syntax.
//
// Surface syntax (ASCII rendering of the paper's notation):
//
//   R(f,n1,n2) :- F(f,n1,n3), R(f,n3,n2).          % recursion (q5)
//   T1(f,n1,n2) :- R(f,n1,n2), x_ + y_ + z_ = 1.   % c-vars end in '_'
//   panic :- R(Mkt, CS, p_), !Fw(Mkt, CS).         % negation, 0-ary head
//   Lb2(x_,y_) :- Lb1(x_,y_)[x_ != Mkt].           % per-atom annotation
//   P(1.2.3.4, [ABC]).                              % prefix & path literals
//
// Identifiers may contain '&' ("R&D"). '%' and '//' start line comments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace faure::dl {

enum class Tok : uint8_t {
  Ident,     // predicate / variable / symbol constant
  CVarName,  // identifier ending in '_'
  Int,
  PrefixLit,  // 1.2.3.4 or 10.0.0.0/8 (text in Token::text)
  Str,        // quoted symbol
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Pipe,  // '|' — used by the textual database format (textio)
  Comma,
  Dot,
  ColonDash,  // :-
  Bang,       // ! (negation; '!=' lexes as Ne)
  Amp,        // & (conjunction inside annotations)
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  End,
};

std::string_view tokName(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;     // Ident / CVarName / PrefixLit / Str payload
  int64_t intVal = 0;   // Int payload
  int line = 1;
  int column = 1;
};

/// Tokenizes the whole input; throws ParseError on bad characters.
std::vector<Token> lex(std::string_view text);

}  // namespace faure::dl
