#include "datalog/parser.hpp"

#include <cctype>

#include "datalog/lexer.hpp"
#include "util/error.hpp"

namespace faure::dl {

namespace {

bool isArithOrCmp(Tok t) {
  switch (t) {
    case Tok::Eq:
    case Tok::Ne:
    case Tok::Lt:
    case Tok::Le:
    case Tok::Gt:
    case Tok::Ge:
    case Tok::Plus:
    case Tok::Minus:
    case Tok::Star:
      return true;
    default:
      return false;
  }
}

class Parser {
 public:
  Parser(std::string_view text, CVarRegistry& reg)
      : tokens_(lex(text)), reg_(reg) {}

  Program program() {
    Program p;
    while (peek().kind != Tok::End) p.rules.push_back(rule());
    return p;
  }

  Rule singleRule() {
    Rule r = rule();
    expect(Tok::End);
    return r;
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& advance() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& msg) {
    const Token& t = peek();
    throw ParseError(msg + " (got " + std::string(tokName(t.kind)) + ")",
                     t.line, t.column);
  }

  const Token& expect(Tok kind) {
    if (peek().kind != kind) {
      fail("expected " + std::string(tokName(kind)));
    }
    return advance();
  }

  bool accept(Tok kind) {
    if (peek().kind != kind) return false;
    advance();
    return true;
  }

  Rule rule() {
    Rule r;
    r.head = atom();
    if (peek().kind == Tok::LBracket) annotation(r.cmps, /*headDrop=*/true);
    if (accept(Tok::ColonDash)) {
      do {
        bodyItem(r);
      } while (accept(Tok::Comma));
    }
    expect(Tok::Dot);
    return r;
  }

  void bodyItem(Rule& r) {
    const Token& t = peek();
    if (t.kind == Tok::Bang) {
      advance();
      Literal lit;
      lit.negated = true;
      lit.atom = atom();
      if (peek().kind == Tok::LBracket) {
        // `!B(u)[c]` is ambiguous (does c scope under the negation?);
        // write the condition as a separate comparison instead.
        fail("condition annotations on negated atoms are not supported");
      }
      r.body.push_back(std::move(lit));
      return;
    }
    // An identifier followed by '(' is a positive literal. A bare
    // identifier NOT followed by an arithmetic/comparison operator is a
    // 0-ary literal. Everything else is a comparison.
    if (t.kind == Tok::Ident &&
        (peek(1).kind == Tok::LParen || !isArithOrCmp(peek(1).kind))) {
      Literal lit;
      lit.atom = atom();
      if (peek().kind == Tok::LBracket) annotation(r.cmps, false);
      r.body.push_back(std::move(lit));
      return;
    }
    r.cmps.push_back(comparison());
  }

  Atom atom() {
    Atom a;
    a.pred = expect(Tok::Ident).text;
    if (accept(Tok::LParen)) {
      if (!accept(Tok::RParen)) {
        do {
          a.args.push_back(term());
        } while (accept(Tok::Comma));
        expect(Tok::RParen);
      }
    }
    return a;
  }

  // Parses a `[...]` annotation. Bare identifiers are condition
  // metavariables (the φ of the paper) and are dropped — the evaluator
  // propagates tuple conditions implicitly. Everything else must be a
  // comparison and lands in `cmps`. `headDrop` marks head annotations,
  // where even comparisons are redundant restatements of the body
  // condition; we still parse them but drop everything to avoid double
  // counting.
  void annotation(std::vector<Comparison>& cmps, bool headDrop) {
    expect(Tok::LBracket);
    if (!accept(Tok::RBracket)) {
      do {
        if (peek().kind == Tok::Ident && !isArithOrCmp(peek(1).kind) &&
            peek(1).kind != Tok::LParen) {
          advance();  // metavariable
          continue;
        }
        Comparison c = comparison();
        if (!headDrop) cmps.push_back(std::move(c));
      } while (accept(Tok::Comma) || accept(Tok::Amp));
    }
    expect(Tok::RBracket);
  }

  Comparison comparison() {
    Comparison c;
    c.lhs = linExpr();
    switch (peek().kind) {
      case Tok::Eq:
        c.op = smt::CmpOp::Eq;
        break;
      case Tok::Ne:
        c.op = smt::CmpOp::Ne;
        break;
      case Tok::Lt:
        c.op = smt::CmpOp::Lt;
        break;
      case Tok::Le:
        c.op = smt::CmpOp::Le;
        break;
      case Tok::Gt:
        c.op = smt::CmpOp::Gt;
        break;
      case Tok::Ge:
        c.op = smt::CmpOp::Ge;
        break;
      default:
        fail("expected comparison operator");
    }
    advance();
    c.rhs = linExpr();
    return c;
  }

  LinExpr linExpr() {
    LinExpr e;
    bool negate = accept(Tok::Minus);
    linTerm(e, negate ? -1 : 1);
    while (true) {
      if (accept(Tok::Plus)) {
        linTerm(e, 1);
      } else if (accept(Tok::Minus)) {
        linTerm(e, -1);
      } else {
        return e;
      }
    }
  }

  void linTerm(LinExpr& e, int64_t sign) {
    if (peek().kind == Tok::Int) {
      int64_t k = advance().intVal;
      if (accept(Tok::Star)) {
        Term t = term();
        e.terms.emplace_back(std::move(t), sign * k);
      } else {
        e.cst += sign * k;
      }
      return;
    }
    Term t = term();
    e.terms.emplace_back(std::move(t), sign);
  }

  Term term() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::Int:
        advance();
        return Term::constant_(Value::fromInt(t.intVal));
      case Tok::Minus: {
        advance();
        const Token& n = expect(Tok::Int);
        return Term::constant_(Value::fromInt(-n.intVal));
      }
      case Tok::PrefixLit:
        advance();
        return Term::constant_(Value::parsePrefix(t.text));
      case Tok::Str:
        advance();
        return Term::constant_(Value::sym(t.text));
      case Tok::LBracket:
        return pathLiteral();
      case Tok::CVarName: {
        advance();
        CVarId id = reg_.find(t.text);
        if (id == CVarRegistry::kNotFound) {
          id = reg_.declare(t.text, ValueType::Any);
        }
        return Term::cvariable(id);
      }
      case Tok::Ident: {
        advance();
        // Lowercase-initial identifiers are program variables; everything
        // else is a symbol constant (Mkt, CS, R&D, ...).
        if (std::islower(static_cast<unsigned char>(t.text[0]))) {
          return Term::variable(t.text);
        }
        return Term::constant_(Value::sym(t.text));
      }
      default:
        fail("expected a term");
    }
  }

  Term pathLiteral() {
    expect(Tok::LBracket);
    std::vector<std::string> elems;
    while (!accept(Tok::RBracket)) {
      const Token& t = peek();
      if (t.kind == Tok::Ident) {
        elems.push_back(t.text);
        advance();
      } else if (t.kind == Tok::Int) {
        elems.push_back(std::to_string(t.intVal));
        advance();
      } else {
        fail("expected path element");
      }
      accept(Tok::Comma);
    }
    return Term::constant_(Value::path(elems));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  CVarRegistry& reg_;
};

}  // namespace

Program parseProgram(std::string_view text, CVarRegistry& reg) {
  return Parser(text, reg).program();
}

Rule parseRule(std::string_view text, CVarRegistry& reg) {
  return Parser(text, reg).singleRule();
}

}  // namespace faure::dl
