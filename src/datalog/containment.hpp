// Classical query/program containment via canonical (frozen) databases.
//
// This is the textbook machinery (Chandra–Merlin; Abiteboul–Hull–Vianu
// ch. 6, the paper's [2, 25]) that the paper's §5 reduction sidesteps:
// containment of conjunctive queries is decided by freezing the body of
// the contained query into a canonical database and evaluating the
// containing query on it. Exposed here both as the baseline comparator
// for bench_containment and as a differential oracle for the fauré-log
// reduction (verify/containment.hpp).
//
// Scope: positive rules only (no negation); comparisons are rejected —
// with comparisons one canonical database no longer suffices. The
// fauré-log reduction handles those by construction.
#pragma once

#include "datalog/ast.hpp"
#include "datalog/pure_eval.hpp"

namespace faure::dl {

/// Conjunctive-query containment q1 ⊆ q2 for single positive rules with
/// identical head predicates: freezes q1's body and head, evaluates q2 on
/// the canonical database, and checks that the frozen head is derived.
/// Throws EvalError when a rule uses negation or comparisons.
bool cqContained(const Rule& q1, const Rule& q2);

/// Program-level test used for constraints (0-ary `goal` heads, §5
/// category (i)): every rule of `sub` whose head is `goal` must, on its
/// canonical database, make `super` derive `goal`.
/// Positive rules only.
bool constraintSubsumedCanonical(const Program& sub, const Program& super,
                                 const std::string& goal = "panic");

}  // namespace faure::dl
