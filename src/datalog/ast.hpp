// Abstract syntax shared by pure datalog and fauré-log (§3, eq. 1 and 3).
//
// A rule is
//
//   H(u) :- B1(u1), ..., Bn(un), C1, ..., Cm.
//
// where the free tuples u, ui mix program variables (x, y, n1 ...),
// constants, and — in fauré-log — c-variables (written with a trailing
// underscore: x_, y_, p_). The Ci are explicit comparisons over the
// c-domain, including linear forms such as `x_ + y_ + z_ = 1`.
//
// The paper's per-atom condition annotations `[φ]` come in two flavours:
// condition metavariables (φ — the tuple's own condition, which our
// evaluator propagates implicitly) are accepted and dropped by the parser;
// concrete annotations such as `Lb1(x_,y_)[x_ != Mkt]` are parsed into the
// rule's comparison list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smt/formula.hpp"
#include "value/value.hpp"

namespace faure::dl {

/// One argument position of an atom.
struct Term {
  enum class Kind : uint8_t { Const, Var, CVar };

  Kind kind = Kind::Const;
  Value constant;   // Kind::Const
  std::string var;  // Kind::Var
  CVarId cvar = 0;  // Kind::CVar

  static Term constant_(Value v) {
    Term t;
    t.kind = Kind::Const;
    t.constant = v;
    return t;
  }
  static Term variable(std::string name) {
    Term t;
    t.kind = Kind::Var;
    t.var = std::move(name);
    return t;
  }
  static Term cvariable(CVarId id) {
    Term t;
    t.kind = Kind::CVar;
    t.cvar = id;
    return t;
  }

  bool isVar() const { return kind == Kind::Var; }
  bool isConst() const { return kind == Kind::Const; }
  bool isCVar() const { return kind == Kind::CVar; }

  /// The c-domain value of a non-variable term (constant or c-variable).
  Value asValue() const;

  friend bool operator==(const Term& a, const Term& b);

  std::string toString(const CVarRegistry* reg = nullptr) const;
};

/// A linear expression over terms: sum(coef_i * term_i) + cst. Every term
/// must be integer-valued at evaluation time.
struct LinExpr {
  std::vector<std::pair<Term, int64_t>> terms;
  int64_t cst = 0;

  static LinExpr of(Term t) {
    LinExpr e;
    e.terms.emplace_back(std::move(t), 1);
    return e;
  }
  static LinExpr constant(int64_t c) {
    LinExpr e;
    e.cst = c;
    return e;
  }

  bool isSingleTerm() const { return terms.size() == 1 && cst == 0 &&
                                     terms[0].second == 1; }

  std::string toString(const CVarRegistry* reg = nullptr) const;
};

/// An explicit comparison `lhs op rhs` in a rule body.
struct Comparison {
  smt::CmpOp op = smt::CmpOp::Eq;
  LinExpr lhs;
  LinExpr rhs;

  std::string toString(const CVarRegistry* reg = nullptr) const;
};

/// A predicate applied to terms.
struct Atom {
  std::string pred;
  std::vector<Term> args;

  std::string toString(const CVarRegistry* reg = nullptr) const;
};

/// A body literal: possibly negated atom.
struct Literal {
  Atom atom;
  bool negated = false;

  std::string toString(const CVarRegistry* reg = nullptr) const;
};

/// One rule. Facts are rules with an empty body and a ground head.
struct Rule {
  Atom head;
  std::vector<Literal> body;
  std::vector<Comparison> cmps;

  bool isFact() const { return body.empty() && cmps.empty(); }

  std::string toString(const CVarRegistry* reg = nullptr) const;
};

/// A datalog / fauré-log program.
struct Program {
  std::vector<Rule> rules;

  /// Predicates defined by some rule head (the IDB).
  std::vector<std::string> idbPredicates() const;

  /// All predicate names, IDB and EDB.
  std::vector<std::string> predicates() const;

  /// Concatenates two programs (used when checking a constraint set).
  static Program concat(const Program& a, const Program& b);

  std::string toString(const CVarRegistry* reg = nullptr) const;
};

}  // namespace faure::dl
