#include "datalog/lexer.hpp"

#include <cctype>

#include "util/error.hpp"

namespace faure::dl {

std::string_view tokName(Tok t) {
  switch (t) {
    case Tok::Ident:
      return "identifier";
    case Tok::CVarName:
      return "c-variable";
    case Tok::Int:
      return "integer";
    case Tok::PrefixLit:
      return "prefix";
    case Tok::Str:
      return "string";
    case Tok::LParen:
      return "'('";
    case Tok::RParen:
      return "')'";
    case Tok::LBracket:
      return "'['";
    case Tok::RBracket:
      return "']'";
    case Tok::LBrace:
      return "'{'";
    case Tok::RBrace:
      return "'}'";
    case Tok::Pipe:
      return "'|'";
    case Tok::Comma:
      return "','";
    case Tok::Dot:
      return "'.'";
    case Tok::ColonDash:
      return "':-'";
    case Tok::Bang:
      return "'!'";
    case Tok::Amp:
      return "'&'";
    case Tok::Eq:
      return "'='";
    case Tok::Ne:
      return "'!='";
    case Tok::Lt:
      return "'<'";
    case Tok::Le:
      return "'<='";
    case Tok::Gt:
      return "'>'";
    case Tok::Ge:
      return "'>='";
    case Tok::Plus:
      return "'+'";
    case Tok::Minus:
      return "'-'";
    case Tok::Star:
      return "'*'";
    case Tok::End:
      return "end of input";
  }
  return "?";
}

namespace {

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool identCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '&';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skipSpaceAndComments();
      Token t = next();
      bool end = t.kind == Tok::End;
      out.push_back(std::move(t));
      if (end) return out;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError(msg, line_, col_);
  }

  char peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '%' || (c == '/' && peek(1) == '/')) {
        while (pos_ < text_.size() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  Token make(Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = col_;
    return t;
  }

  Token next() {
    if (pos_ >= text_.size()) return make(Tok::End);
    Token t = make(Tok::End);
    char c = peek();
    if (identStart(c)) {
      std::string word;
      while (pos_ < text_.size() && identCont(peek())) word += advance();
      if (word == "not") {
        t.kind = Tok::Bang;
        return t;
      }
      t.kind = word.size() > 1 && word.back() == '_' ? Tok::CVarName
                                                     : Tok::Ident;
      t.text = std::move(word);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return lexNumber();
    advance();
    switch (c) {
      case '(':
        t.kind = Tok::LParen;
        return t;
      case ')':
        t.kind = Tok::RParen;
        return t;
      case '[':
        t.kind = Tok::LBracket;
        return t;
      case ']':
        t.kind = Tok::RBracket;
        return t;
      case '{':
        t.kind = Tok::LBrace;
        return t;
      case '}':
        t.kind = Tok::RBrace;
        return t;
      case '|':
        t.kind = Tok::Pipe;
        return t;
      case ',':
        t.kind = Tok::Comma;
        return t;
      case '.':
        t.kind = Tok::Dot;
        return t;
      case '+':
        t.kind = Tok::Plus;
        return t;
      case '-':
        t.kind = Tok::Minus;
        return t;
      case '*':
        t.kind = Tok::Star;
        return t;
      case '&':
        t.kind = Tok::Amp;
        return t;
      case ':':
        if (peek() == '-') {
          advance();
          t.kind = Tok::ColonDash;
          return t;
        }
        fail("expected ':-'");
      case '!':
        if (peek() == '=') {
          advance();
          t.kind = Tok::Ne;
          return t;
        }
        t.kind = Tok::Bang;
        return t;
      case '=':
        t.kind = Tok::Eq;
        return t;
      case '<':
        if (peek() == '=') {
          advance();
          t.kind = Tok::Le;
          return t;
        }
        t.kind = Tok::Lt;
        return t;
      case '>':
        if (peek() == '=') {
          advance();
          t.kind = Tok::Ge;
          return t;
        }
        t.kind = Tok::Gt;
        return t;
      case '\'':
      case '"': {
        std::string word;
        while (pos_ < text_.size() && peek() != c) word += advance();
        if (pos_ >= text_.size()) fail("unterminated string literal");
        advance();  // closing quote
        t.kind = Tok::Str;
        t.text = std::move(word);
        return t;
      }
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token lexNumber() {
    Token t = make(Tok::Int);
    std::string digits;
    auto scanDigits = [&] {
      std::string d;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(peek()))) {
        d += advance();
      }
      return d;
    };
    digits = scanDigits();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      // IPv4 literal: d.d.d.d[/len]
      std::string text = digits;
      for (int i = 0; i < 3; ++i) {
        if (peek() != '.') fail("malformed IPv4 literal");
        advance();
        std::string oct = scanDigits();
        if (oct.empty()) fail("malformed IPv4 literal");
        text += "." + oct;
      }
      if (peek() == '/') {
        advance();
        std::string len = scanDigits();
        if (len.empty()) fail("malformed prefix length");
        text += "/" + len;
      }
      t.kind = Tok::PrefixLit;
      t.text = std::move(text);
      return t;
    }
    t.intVal = std::stoll(digits);
    return t;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view text) { return Lexer(text).run(); }

}  // namespace faure::dl
