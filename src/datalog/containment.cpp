#include "datalog/containment.hpp"

#include <set>
#include <unordered_map>

#include "util/error.hpp"

namespace faure::dl {

namespace {

void requirePositive(const Rule& r, const char* who) {
  if (!r.cmps.empty()) {
    throw EvalError(std::string(who) +
                    ": comparisons are outside the canonical-database "
                    "method; use the fauré-log reduction");
  }
  for (const auto& lit : r.body) {
    if (lit.negated) {
      throw EvalError(std::string(who) +
                      ": negation is outside the canonical-database "
                      "method; use the fauré-log reduction");
    }
  }
}

/// Maps the rule's variables and c-variables to fresh frozen constants.
class Freezer {
 public:
  Value freeze(const Term& t) {
    switch (t.kind) {
      case Term::Kind::Const:
        return t.constant;
      case Term::Kind::Var: {
        auto [it, inserted] = vars_.emplace(t.var, Value());
        if (inserted) it->second = fresh();
        return it->second;
      }
      case Term::Kind::CVar: {
        auto [it, inserted] = cvars_.emplace(t.cvar, Value());
        if (inserted) it->second = fresh();
        return it->second;
      }
    }
    return t.constant;
  }

 private:
  Value fresh() {
    return Value::sym("@frz" + std::to_string(counter_++));
  }

  std::unordered_map<std::string, Value> vars_;
  std::unordered_map<CVarId, Value> cvars_;
  int counter_ = 0;
};

rel::Schema anonymousSchema(const std::string& pred, size_t arity) {
  std::vector<rel::Attribute> attrs(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
  }
  return rel::Schema(pred, std::move(attrs));
}

/// Builds the canonical database of a rule body under `fz`.
rel::Database canonicalDb(const Rule& r, Freezer& fz) {
  rel::Database db;
  for (const auto& lit : r.body) {
    std::vector<Value> vals;
    vals.reserve(lit.atom.args.size());
    for (const auto& t : lit.atom.args) vals.push_back(fz.freeze(t));
    if (!db.has(lit.atom.pred)) {
      db.create(anonymousSchema(lit.atom.pred, lit.atom.args.size()));
    }
    db.table(lit.atom.pred).insertConcrete(std::move(vals));
  }
  return db;
}

/// EDB relations `p` reads that are absent from `db` are empty, not
/// unknown; create them so evaluation does not reject the program.
void createMissingEdb(rel::Database& db, const Program& p) {
  std::set<std::string> idb;
  for (const auto& r : p.rules) idb.insert(r.head.pred);
  for (const auto& r : p.rules) {
    for (const auto& lit : r.body) {
      if (idb.count(lit.atom.pred) == 0 && !db.has(lit.atom.pred)) {
        db.create(anonymousSchema(lit.atom.pred, lit.atom.args.size()));
      }
    }
  }
}

}  // namespace

bool cqContained(const Rule& q1, const Rule& q2) {
  requirePositive(q1, "cqContained");
  requirePositive(q2, "cqContained");
  if (q1.head.pred != q2.head.pred ||
      q1.head.args.size() != q2.head.args.size()) {
    throw EvalError("cqContained: incompatible heads");
  }
  Freezer fz;
  rel::Database db = canonicalDb(q1, fz);
  std::vector<Value> frozenHead;
  frozenHead.reserve(q1.head.args.size());
  for (const auto& t : q1.head.args) frozenHead.push_back(fz.freeze(t));

  Program p;
  p.rules.push_back(q2);
  createMissingEdb(db, p);
  PureEvalResult res = evalPure(p, db);
  return !res.relation(q2.head.pred).conditionOf(frozenHead).isFalse();
}

bool constraintSubsumedCanonical(const Program& sub, const Program& super,
                                 const std::string& goal) {
  for (const auto& r : super.rules) requirePositive(r, "subsumption");
  bool sawGoal = false;
  for (const auto& r : sub.rules) {
    if (r.head.pred != goal) continue;
    sawGoal = true;
    requirePositive(r, "subsumption");
    Freezer fz;
    rel::Database db = canonicalDb(r, fz);
    createMissingEdb(db, super);
    PureEvalResult res = evalPure(super, db);
    const rel::CTable& panics = res.relation(goal);
    if (panics.empty()) return false;
  }
  if (!sawGoal) {
    throw EvalError("subsumption: no '" + goal + "' rule in subsumee");
  }
  return true;
}

}  // namespace faure::dl
