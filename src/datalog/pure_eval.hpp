// Pure (ground) datalog evaluation — eq. 2 of the paper.
//
// This is the classical engine fauré-log extends: relations hold constants
// only, valuation maps program variables to constants, and negation is
// closed-world over the computed strata. It serves three roles here:
//   1. the baseline the paper departs from (benchmarked against the
//      c-table engine on ground data),
//   2. the substrate of classical canonical-database containment
//      (containment.hpp), and
//   3. a differential-testing oracle: fauré-log on a c-table must agree
//      with pure datalog run on every possible world.
#pragma once

#include <map>
#include <string>

#include "datalog/ast.hpp"
#include "relational/database.hpp"

namespace faure::dl {

struct PureEvalOptions {
  /// Semi-naive (delta-driven) fixed point; naive re-derives everything
  /// each round. Exposed to make the ablation measurable.
  bool semiNaive = true;
  /// Hard cap on fixed-point rounds (safety net; pure datalog always
  /// terminates, this guards engine bugs).
  size_t maxIterations = 1u << 20;
};

struct PureEvalStats {
  uint64_t derivations = 0;  // head tuples produced (incl. duplicates)
  uint64_t inserted = 0;     // distinct tuples added
  size_t iterations = 0;     // fixed-point rounds across all strata
};

struct PureEvalResult {
  /// Computed IDB relations (EDB relations are not copied).
  std::map<std::string, rel::CTable> idb;
  PureEvalStats stats;

  /// Rows of a derived predicate (empty table if never derived).
  const rel::CTable& relation(const std::string& pred) const;
};

/// Evaluates `p` against the ground EDB in `db`. Throws EvalError if any
/// referenced EDB tuple contains a c-variable or a non-trivial condition
/// (use the fauré-log evaluator for those), or if the program is unsafe /
/// not stratifiable.
PureEvalResult evalPure(const Program& p, const rel::Database& db,
                        const PureEvalOptions& opts = {});

}  // namespace faure::dl
