#include "datalog/ast.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace faure::dl {

Value Term::asValue() const {
  switch (kind) {
    case Kind::Const:
      return constant;
    case Kind::CVar:
      return Value::cvar(cvar);
    case Kind::Var:
      throw EvalError("asValue() on an unbound program variable '" + var +
                      "'");
  }
  return constant;
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Term::Kind::Const:
      return a.constant == b.constant;
    case Term::Kind::Var:
      return a.var == b.var;
    case Term::Kind::CVar:
      return a.cvar == b.cvar;
  }
  return false;
}

std::string Term::toString(const CVarRegistry* reg) const {
  switch (kind) {
    case Kind::Const:
      return constant.toString(reg);
    case Kind::Var:
      return var;
    case Kind::CVar:
      return Value::cvar(cvar).toString(reg);
  }
  return "?";
}

std::string LinExpr::toString(const CVarRegistry* reg) const {
  if (terms.empty()) return std::to_string(cst);
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    const auto& [t, c] = terms[i];
    if (i == 0) {
      if (c == -1) out += "-";
      else if (c != 1) out += std::to_string(c) + "*";
    } else {
      out += c < 0 ? " - " : " + ";
      int64_t a = c < 0 ? -c : c;
      if (a != 1) out += std::to_string(a) + "*";
    }
    out += t.toString(reg);
  }
  if (cst != 0) {
    out += cst < 0 ? " - " : " + ";
    out += std::to_string(cst < 0 ? -cst : cst);
  }
  return out;
}

std::string Comparison::toString(const CVarRegistry* reg) const {
  return lhs.toString(reg) + " " + std::string(smt::opText(op)) + " " +
         rhs.toString(reg);
}

std::string Atom::toString(const CVarRegistry* reg) const {
  if (args.empty()) return pred;
  std::string out = pred + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].toString(reg);
  }
  return out + ")";
}

std::string Literal::toString(const CVarRegistry* reg) const {
  return (negated ? "!" : "") + atom.toString(reg);
}

std::string Rule::toString(const CVarRegistry* reg) const {
  std::string out = head.toString(reg);
  if (isFact()) return out + ".";
  out += " :- ";
  bool first = true;
  for (const auto& lit : body) {
    if (!first) out += ", ";
    out += lit.toString(reg);
    first = false;
  }
  for (const auto& cmp : cmps) {
    if (!first) out += ", ";
    out += cmp.toString(reg);
    first = false;
  }
  return out + ".";
}

std::vector<std::string> Program::idbPredicates() const {
  std::vector<std::string> out;
  for (const auto& r : rules) {
    if (std::find(out.begin(), out.end(), r.head.pred) == out.end()) {
      out.push_back(r.head.pred);
    }
  }
  return out;
}

std::vector<std::string> Program::predicates() const {
  std::vector<std::string> out = idbPredicates();
  for (const auto& r : rules) {
    for (const auto& lit : r.body) {
      if (std::find(out.begin(), out.end(), lit.atom.pred) == out.end()) {
        out.push_back(lit.atom.pred);
      }
    }
  }
  return out;
}

Program Program::concat(const Program& a, const Program& b) {
  Program p = a;
  p.rules.insert(p.rules.end(), b.rules.begin(), b.rules.end());
  return p;
}

std::string Program::toString(const CVarRegistry* reg) const {
  std::string out;
  for (const auto& r : rules) {
    out += r.toString(reg);
    out += "\n";
  }
  return out;
}

}  // namespace faure::dl
