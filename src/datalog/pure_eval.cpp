#include "datalog/pure_eval.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>

#include "datalog/analysis.hpp"
#include "util/error.hpp"

namespace faure::dl {

const rel::CTable& PureEvalResult::relation(const std::string& pred) const {
  static const rel::CTable kEmpty;
  auto it = idb.find(pred);
  return it == idb.end() ? kEmpty : it->second;
}

namespace {

/// A program variable binding frame: slot per variable of the current
/// rule, with a statically known bound/unbound discipline (slots fill in
/// literal order, so validity is tracked by the caller).
using Frame = std::vector<Value>;

class PureEvaluator {
 public:
  PureEvaluator(const Program& p, const rel::Database& db,
                const PureEvalOptions& opts)
      : p_(p), db_(db), opts_(opts) {}

  PureEvalResult run() {
    checkSafety(p_);
    std::unordered_map<std::string, size_t> external;
    for (const auto& [name, table] : db_.tables()) {
      external.emplace(name, table.schema().arity());
    }
    checkArities(p_, external);
    Stratification strat = stratify(p_);

    for (size_t s = 0; s < strat.ruleStrata.size(); ++s) {
      evalStratum(strat, s);
    }
    PureEvalResult result;
    result.idb = std::move(idb_);
    result.stats = stats_;
    return result;
  }

 private:
  struct Range {
    size_t lo = 0;
    size_t hi = 0;
  };

  const rel::CTable* findRelation(const std::string& pred) const {
    auto it = idb_.find(pred);
    if (it != idb_.end()) return &it->second;
    const rel::CTable* t = db_.find(pred);
    if (t != nullptr) checkGround(*t);
    return t;
  }

  static void checkGround(const rel::CTable& t) {
    for (const auto& row : t.rows()) {
      if (!row.cond.isTrue()) {
        throw EvalError("pure datalog over conditional table '" +
                        t.schema().name() + "'; use the fauré-log engine");
      }
      for (const auto& v : row.vals) {
        if (v.isCVar()) {
          throw EvalError("pure datalog over c-variables in '" +
                          t.schema().name() + "'; use the fauré-log engine");
        }
      }
    }
  }

  rel::CTable& idbTable(const std::string& pred, size_t arity) {
    auto it = idb_.find(pred);
    if (it != idb_.end()) return it->second;
    std::vector<rel::Attribute> attrs(arity);
    for (size_t i = 0; i < arity; ++i) {
      attrs[i] = rel::Attribute{"a" + std::to_string(i), ValueType::Any};
    }
    return idb_.emplace(pred, rel::CTable(rel::Schema(pred, attrs)))
        .first->second;
  }

  void evalStratum(const Stratification& strat, size_t s) {
    const auto& ruleIdx = strat.ruleStrata[s];
    if (ruleIdx.empty()) return;
    // Recursive predicates: IDB preds of this stratum.
    std::set<std::string> thisStratum;
    for (size_t ri : ruleIdx) thisStratum.insert(p_.rules[ri].head.pred);
    // Make sure result tables exist even if nothing derives.
    for (size_t ri : ruleIdx) {
      idbTable(p_.rules[ri].head.pred, p_.rules[ri].head.args.size());
    }

    std::unordered_map<std::string, size_t> deltaStart;  // per recursive pred
    for (const auto& pred : thisStratum) {
      deltaStart[pred] = 0;
    }

    bool first = true;
    for (size_t iter = 0; iter < opts_.maxIterations; ++iter) {
      ++stats_.iterations;
      // Snapshot sizes: rows appended this round stay invisible until the
      // next round.
      std::unordered_map<std::string, size_t> fullEnd;
      for (const auto& pred : thisStratum) {
        fullEnd[pred] = idb_.at(pred).size();
      }
      bool changed = false;
      for (size_t ri : ruleIdx) {
        const Rule& rule = p_.rules[ri];
        std::vector<size_t> recursivePositions;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const Literal& lit = rule.body[i];
          if (!lit.negated && thisStratum.count(lit.atom.pred) != 0) {
            recursivePositions.push_back(i);
          }
        }
        if (!first && recursivePositions.empty()) continue;
        if (first || !opts_.semiNaive || recursivePositions.empty()) {
          changed |= evalRule(rule, SIZE_MAX, deltaStart, fullEnd,
                              thisStratum);
        } else {
          for (size_t pos : recursivePositions) {
            changed |=
                evalRule(rule, pos, deltaStart, fullEnd, thisStratum);
          }
        }
      }
      for (const auto& pred : thisStratum) deltaStart[pred] = fullEnd[pred];
      first = false;
      if (!changed) {
        // One extra round may still be needed if rows were appended after
        // their pred's snapshot; converged when no pred grew either.
        bool grew = false;
        for (const auto& pred : thisStratum) {
          if (idb_.at(pred).size() != fullEnd[pred]) grew = true;
        }
        if (!grew) return;
      }
    }
    throw EvalError("fixed point did not converge within iteration cap");
  }

  Range rangeFor(const std::string& pred, size_t litIndex, size_t deltaPos,
                 size_t thisIndex,
                 const std::unordered_map<std::string, size_t>& deltaStart,
                 const std::unordered_map<std::string, size_t>& fullEnd,
                 const std::set<std::string>& thisStratum,
                 const rel::CTable& table) const {
    (void)litIndex;
    if (thisStratum.count(pred) == 0) return Range{0, table.size()};
    size_t end = fullEnd.at(pred);
    if (deltaPos == thisIndex) return Range{deltaStart.at(pred), end};
    return Range{0, end};
  }

  // Evaluates one rule; `deltaPos` selects which recursive body literal is
  // restricted to the last round's delta (SIZE_MAX = none; full ranges).
  bool evalRule(const Rule& rule, size_t deltaPos,
                const std::unordered_map<std::string, size_t>& deltaStart,
                const std::unordered_map<std::string, size_t>& fullEnd,
                const std::set<std::string>& thisStratum) {
    std::vector<std::string> vars = ruleVariables(rule);
    std::unordered_map<std::string, size_t> slotOf;
    for (size_t i = 0; i < vars.size(); ++i) slotOf[vars[i]] = i;

    std::vector<Frame> frames{Frame(vars.size())};
    std::vector<bool> bound(vars.size(), false);
    // Positive literals in written order.
    for (size_t i = 0; i < rule.body.size() && !frames.empty(); ++i) {
      const Literal& lit = rule.body[i];
      if (lit.negated) continue;
      const rel::CTable* table = findRelation(lit.atom.pred);
      if (table == nullptr) {
        throw EvalError("unknown relation '" + lit.atom.pred + "'");
      }
      Range range = rangeFor(lit.atom.pred, i, deltaPos, i, deltaStart,
                             fullEnd, thisStratum, *table);
      joinLiteral(lit.atom, *table, range, slotOf, frames, bound);
    }
    // Comparisons.
    for (const auto& cmp : rule.cmps) {
      std::vector<Frame> kept;
      for (auto& f : frames) {
        if (evalComparison(cmp, f, slotOf)) kept.push_back(std::move(f));
      }
      frames = std::move(kept);
    }
    // Negated literals (closed world over fully computed relations).
    for (const auto& lit : rule.body) {
      if (!lit.negated) continue;
      const rel::CTable* table = findRelation(lit.atom.pred);
      std::vector<Frame> kept;
      for (auto& f : frames) {
        std::vector<Value> probe;
        probe.reserve(lit.atom.args.size());
        for (const auto& t : lit.atom.args) {
          probe.push_back(groundTerm(t, f, slotOf));
        }
        bool present =
            table != nullptr && !table->conditionOf(probe).isFalse();
        if (!present) kept.push_back(std::move(f));
      }
      frames = std::move(kept);
    }
    // Derive heads.
    bool changed = false;
    rel::CTable& out = idbTable(rule.head.pred, rule.head.args.size());
    for (const auto& f : frames) {
      std::vector<Value> head;
      head.reserve(rule.head.args.size());
      for (const auto& t : rule.head.args) {
        head.push_back(groundTerm(t, f, slotOf));
      }
      ++stats_.derivations;
      if (out.insertConcrete(std::move(head))) {
        ++stats_.inserted;
        changed = true;
      }
    }
    return changed;
  }

  static Value groundTerm(const Term& t, const Frame& f,
                          const std::unordered_map<std::string, size_t>&
                              slotOf) {
    if (t.isConst()) return t.constant;
    if (t.isCVar()) {
      throw EvalError("c-variable in a pure datalog rule; use fauré-log");
    }
    return f[slotOf.at(t.var)];
  }

  // Joins the current frames with one positive literal via a hash index
  // on the literal's bound positions.
  void joinLiteral(const Atom& atom, const rel::CTable& table, Range range,
                   const std::unordered_map<std::string, size_t>& slotOf,
                   std::vector<Frame>& frames, std::vector<bool>& bound) {
    // Classify argument positions.
    struct Pos {
      size_t arg;
      enum { Const, BoundVar, FreeVar } kind;
      size_t slot = 0;  // for vars
      Value value;      // for consts
    };
    std::vector<Pos> positions;
    positions.reserve(atom.args.size());
    // First occurrence of a variable within this atom binds it; later
    // occurrences within the same atom must match (e.g. E(x,x)).
    std::vector<bool> nowBound = bound;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      Pos pos;
      pos.arg = i;
      if (t.isConst()) {
        pos.kind = Pos::Const;
        pos.value = t.constant;
      } else if (t.isCVar()) {
        throw EvalError("c-variable in a pure datalog rule; use fauré-log");
      } else {
        pos.slot = slotOf.at(t.var);
        if (nowBound[pos.slot]) {
          pos.kind = Pos::BoundVar;
        } else {
          pos.kind = Pos::FreeVar;
          nowBound[pos.slot] = true;
        }
      }
      positions.push_back(std::move(pos));
    }

    // Build the probe key layout: constants and variables bound BEFORE
    // this literal. A repeated variable first bound within this atom is
    // classified BoundVar for matching, but its frame slot holds no value
    // yet, so it must not participate in the key.
    std::vector<size_t> keyArgs;
    for (const auto& pos : positions) {
      if (pos.kind == Pos::Const ||
          (pos.kind == Pos::BoundVar && bound[pos.slot])) {
        keyArgs.push_back(pos.arg);
      }
    }

    const auto& rows = table.rows();
    std::vector<Frame> out;

    // Attempts to extend frame `f` with one row; pushes the extension.
    auto extend = [&](const Frame& f, const std::vector<Value>& rowVals) {
      Frame nf = f;
      for (const auto& pos : positions) {
        const Value& v = rowVals[pos.arg];
        switch (pos.kind) {
          case Pos::Const:
            if (!(v == pos.value)) return;
            break;
          case Pos::BoundVar:
            if (!(v == nf[pos.slot])) return;
            break;
          case Pos::FreeVar:
            nf[pos.slot] = v;
            break;
        }
      }
      // Repeated free variables within the atom (e.g. E(x,x)): the last
      // assignment wins above, so verify every free position agrees.
      for (const auto& pos : positions) {
        if (pos.kind == Pos::FreeVar && !(rowVals[pos.arg] == nf[pos.slot])) {
          return;
        }
      }
      out.push_back(std::move(nf));
    };

    if (keyArgs.empty()) {
      // Cross product with the whole range.
      for (const auto& f : frames) {
        for (size_t r = range.lo; r < range.hi; ++r) {
          extend(f, rows[r].vals);
        }
      }
    } else {
      // Hash rows in range by key values.
      std::unordered_map<size_t, std::vector<size_t>> index;
      for (size_t r = range.lo; r < range.hi; ++r) {
        size_t h = 0xcbf29ce484222325ULL;
        for (size_t a : keyArgs) {
          h = (h ^ rows[r].vals[a].hash()) * 1099511628211ULL;
        }
        index[h].push_back(r);
      }
      for (const auto& f : frames) {
        size_t h = 0xcbf29ce484222325ULL;
        for (size_t a : keyArgs) {
          const Pos& pos = positions[a];
          const Value& v =
              pos.kind == Pos::Const ? pos.value : f[pos.slot];
          h = (h ^ v.hash()) * 1099511628211ULL;
        }
        auto it = index.find(h);
        if (it == index.end()) continue;
        for (size_t r : it->second) {
          extend(f, rows[r].vals);
        }
      }
    }
    frames = std::move(out);
    bound = nowBound;
  }

  bool evalComparison(const Comparison& cmp, const Frame& f,
                      const std::unordered_map<std::string, size_t>& slotOf) {
    // Single-term vs single-term: direct value comparison (any type for
    // =/!=). Otherwise both sides must fold to integers.
    auto groundSide = [&](const LinExpr& e) -> std::optional<Value> {
      if (e.isSingleTerm()) return groundTerm(e.terms[0].first, f, slotOf);
      return std::nullopt;
    };
    std::optional<Value> lv = groundSide(cmp.lhs);
    std::optional<Value> rv = groundSide(cmp.rhs);
    if (lv && rv && (lv->kind() != Value::Kind::Int ||
                     rv->kind() != Value::Kind::Int)) {
      if (cmp.op == smt::CmpOp::Eq) return *lv == *rv;
      if (cmp.op == smt::CmpOp::Ne) return *lv != *rv;
      throw EvalError("ordered comparison on non-integer values");
    }
    auto intSide = [&](const LinExpr& e) {
      int64_t acc = e.cst;
      for (const auto& [t, c] : e.terms) {
        Value v = groundTerm(t, f, slotOf);
        if (v.kind() != Value::Kind::Int) {
          throw EvalError("arithmetic on non-integer value " + v.toString());
        }
        acc += c * v.asInt();
      }
      return acc;
    };
    return smt::evalIntCmp(intSide(cmp.lhs), cmp.op, intSide(cmp.rhs));
  }

  const Program& p_;
  const rel::Database& db_;
  PureEvalOptions opts_;
  PureEvalStats stats_;
  std::map<std::string, rel::CTable> idb_;
};

}  // namespace

PureEvalResult evalPure(const Program& p, const rel::Database& db,
                        const PureEvalOptions& opts) {
  return PureEvaluator(p, db, opts).run();
}

}  // namespace faure::dl
