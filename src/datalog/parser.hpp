// Recursive-descent parser for fauré-log programs (and plain datalog,
// which is the c-variable-free special case).
//
// C-variables are resolved against — or declared into — the registry given
// by the caller, so programs can reference variables whose domains were
// declared programmatically (e.g. link-state bits x_, y_, z_ of §4).
#pragma once

#include <string_view>

#include "datalog/ast.hpp"

namespace faure::dl {

/// Parses a whole program. Throws ParseError with line/column on bad
/// syntax. Undeclared c-variables are declared into `reg` with type Any
/// and an unbounded domain.
Program parseProgram(std::string_view text, CVarRegistry& reg);

/// Parses a single rule (must consume all input up to the final '.').
Rule parseRule(std::string_view text, CVarRegistry& reg);

}  // namespace faure::dl
