#include "datalog/analysis.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace faure::dl {

std::vector<std::string> ruleVariables(const Rule& r) {
  std::vector<std::string> out;
  auto add = [&](const Term& t) {
    if (t.isVar() &&
        std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  };
  for (const auto& a : r.head.args) add(a);
  for (const auto& lit : r.body) {
    for (const auto& a : lit.atom.args) add(a);
  }
  for (const auto& c : r.cmps) {
    for (const auto& [t, k] : c.lhs.terms) {
      (void)k;
      add(t);
    }
    for (const auto& [t, k] : c.rhs.terms) {
      (void)k;
      add(t);
    }
  }
  return out;
}

Stratification stratify(const Program& p) {
  // Collect IDB predicates; everything else is EDB (stratum "-1", treated
  // as 0 with no constraints).
  std::set<std::string> idb;
  for (const auto& r : p.rules) idb.insert(r.head.pred);

  std::unordered_map<std::string, int> stratum;
  for (const auto& pred : idb) stratum[pred] = 0;

  // Fixpoint of the standard constraints:
  //   positive dep:  stratum[head] >= stratum[body]
  //   negative dep:  stratum[head] >= stratum[body] + 1
  // If a stratum exceeds |IDB| the constraints have a cycle through
  // negation.
  const int limit = static_cast<int>(idb.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& r : p.rules) {
      int& h = stratum[r.head.pred];
      for (const auto& lit : r.body) {
        if (idb.count(lit.atom.pred) == 0) continue;
        int b = stratum[lit.atom.pred];
        int need = lit.negated ? b + 1 : b;
        if (h < need) {
          h = need;
          if (h > limit) {
            throw EvalError(
                "program is not stratifiable (recursion through negation "
                "involving '" +
                r.head.pred + "')");
          }
          changed = true;
        }
      }
    }
  }

  Stratification s;
  s.stratumOf = stratum;
  int maxStratum = 0;
  for (const auto& [pred, st] : stratum) maxStratum = std::max(maxStratum, st);
  s.ruleStrata.assign(static_cast<size_t>(maxStratum) + 1, {});
  for (size_t i = 0; i < p.rules.size(); ++i) {
    s.ruleStrata[static_cast<size_t>(stratum[p.rules[i].head.pred])]
        .push_back(i);
  }
  return s;
}

void checkSafety(const Program& p) {
  for (const auto& r : p.rules) {
    std::set<std::string> positive;
    for (const auto& lit : r.body) {
      if (lit.negated) continue;
      for (const auto& t : lit.atom.args) {
        if (t.isVar()) positive.insert(t.var);
      }
    }
    auto require = [&](const Term& t, const char* where) {
      if (t.isVar() && positive.count(t.var) == 0) {
        throw EvalError("unsafe rule (" + r.toString() + "): variable '" +
                        t.var + "' in " + where +
                        " is not bound by a positive body literal");
      }
    };
    for (const auto& t : r.head.args) require(t, "the head");
    for (const auto& lit : r.body) {
      if (!lit.negated) continue;
      for (const auto& t : lit.atom.args) require(t, "a negated literal");
    }
    for (const auto& c : r.cmps) {
      for (const auto& [t, k] : c.lhs.terms) {
        (void)k;
        require(t, "a comparison");
      }
      for (const auto& [t, k] : c.rhs.terms) {
        (void)k;
        require(t, "a comparison");
      }
    }
  }
}

void checkArities(
    const Program& p,
    const std::unordered_map<std::string, size_t>& externalArity) {
  std::unordered_map<std::string, size_t> arity = externalArity;
  auto use = [&](const Atom& a) {
    auto [it, inserted] = arity.emplace(a.pred, a.args.size());
    if (!inserted && it->second != a.args.size()) {
      throw EvalError("predicate '" + a.pred + "' used with arity " +
                      std::to_string(a.args.size()) + " and " +
                      std::to_string(it->second));
    }
  };
  for (const auto& r : p.rules) {
    use(r.head);
    for (const auto& lit : r.body) use(lit.atom);
  }
}

}  // namespace faure::dl
