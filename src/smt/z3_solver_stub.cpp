#include "smt/z3_solver.hpp"

namespace faure::smt {

bool z3Available() { return false; }

std::unique_ptr<SolverBase> makeZ3Solver(const CVarRegistry&) {
  return nullptr;
}

}  // namespace faure::smt
