#include "smt/z3_solver.hpp"

#include "util/error.hpp"

namespace faure::smt {

bool z3Available() { return false; }

std::unique_ptr<SolverBase> makeZ3Solver(const CVarRegistry&) {
  return nullptr;
}

std::unique_ptr<SolverBase> requireZ3Solver(const CVarRegistry&) {
  throw SolverBackendError(
      "z3", "backend unavailable: this build was compiled without Z3");
}

}  // namespace faure::smt
